package midas

import (
	"context"
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/federation"
	"repro/internal/ires"
	"repro/internal/moo"
	"repro/internal/stats"
	"repro/internal/tpch"
	"repro/internal/workload"
)

// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each benchmark
// logs its rendered table once (go test -bench . -v shows them); the
// `midasctl` command prints the same tables standalone.

var logOnce sync.Map

func logTableOnce(b *testing.B, key string, t *experiments.Table) {
	b.Helper()
	if _, done := logOnce.LoadOrStore(key, true); !done {
		b.Log("\n" + t.Render())
	}
}

// BenchmarkTable1Pricing regenerates the instance-pricing catalog
// (paper Table 1).
func BenchmarkTable1Pricing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table1Pricing()
		if len(t.Rows) != 11 {
			b.Fatalf("table 1 rows = %d", len(t.Rows))
		}
		logTableOnce(b, "t1", t)
	}
}

// BenchmarkTable2R2Growth recomputes R² versus window size on the
// paper's published dataset (paper Table 2).
func BenchmarkTable2R2Growth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table2R2()
		if err != nil {
			b.Fatal(err)
		}
		logTableOnce(b, "t2", t)
	}
}

// benchMRE runs one Tables-3/4 campaign per iteration.
func benchMRE(b *testing.B, sf float64, key, title string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMRE(sf, experiments.MREOptions{
			Reps: 3, HistorySize: 60, TestQueries: 30, Seed: int64(i) * 31,
		})
		if err != nil {
			b.Fatal(err)
		}
		logTableOnce(b, key, experiments.MRETable(res, title))
	}
}

// BenchmarkTable3MRE100MiB regenerates the MRE comparison at the
// paper's 100 MiB scale (paper Table 3).
func BenchmarkTable3MRE100MiB(b *testing.B) {
	benchMRE(b, 0.1, "t3", "Table 3: Comparison of mean relative error with 100MiB TPC-H dataset.")
}

// BenchmarkTable4MRE1GiB regenerates the MRE comparison at the paper's
// 1 GiB scale (paper Table 4).
func BenchmarkTable4MRE1GiB(b *testing.B) {
	benchMRE(b, 1, "t4", "Table 4: Comparison of mean relative error with 1GiB TPC-H dataset.")
}

// BenchmarkFig3MOQPApproaches contrasts GA-based MOQP with repeated
// Weighted Sum Model optimization (paper Figure 3).
func BenchmarkFig3MOQPApproaches(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t, err := experiments.RunFig3(experiments.Fig3Options{PolicyChanges: 5, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		logTableOnce(b, "f3", t)
	}
}

// BenchmarkExample31PlanSpace measures estimation throughput over a
// large space of equivalent QEPs (paper Example 3.1).
func BenchmarkExample31PlanSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t, err := experiments.RunExample31(experiments.Example31Options{Plans: 500, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		logTableOnce(b, "e31", t)
	}
}

// BenchmarkAblationWindowGrowth: grow-by-one vs doubling windows.
func BenchmarkAblationWindowGrowth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationWindowGrowth(experiments.AblationOptions{Reps: 1, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		logTableOnce(b, "ab-growth", t)
	}
}

// BenchmarkAblationR2Threshold: sweep of R²require.
func BenchmarkAblationR2Threshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationR2Threshold(experiments.AblationOptions{Reps: 1, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		logTableOnce(b, "ab-r2", t)
	}
}

// BenchmarkAblationRecency: most-recent window vs uniform sampling.
func BenchmarkAblationRecency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationRecency(experiments.AblationOptions{Reps: 1, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		logTableOnce(b, "ab-rec", t)
	}
}

// BenchmarkAblationComposite: monolithic vs operator-level DREAM.
func BenchmarkAblationComposite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationComposite(experiments.AblationOptions{Reps: 1, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		logTableOnce(b, "ab-comp", t)
	}
}

// BenchmarkAblationOptimizer: NSGA-II vs exhaustive Pareto enumeration.
func BenchmarkAblationOptimizer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationOptimizer(experiments.AblationOptions{Reps: 1, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		logTableOnce(b, "ab-opt", t)
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the core components.

// BenchmarkDREAMEstimate measures one Algorithm 1 call over a realistic
// federated history.
func BenchmarkDREAMEstimate(b *testing.B) {
	h, err := core.NewHistory(federation.FeatureDim, federation.Metrics...)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(1)
	for i := 0; i < 120; i++ {
		x := []float64{rng.Uniform(50, 150), rng.Uniform(5, 15), float64(rng.Intn(4) + 1), float64(rng.Intn(4) + 1), float64(rng.Intn(2))}
		costs := []float64{10 + 0.1*x[0] + rng.Normal(0, 2), 0.01 + 0.001*x[0]}
		if err := h.Append(core.Observation{X: x, Costs: costs}); err != nil {
			b.Fatal(err)
		}
	}
	est, err := core.NewEstimator(core.Config{MMax: 21})
	if err != nil {
		b.Fatal(err)
	}
	x := []float64{100, 10, 2, 2, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.EstimateCostValue(h, x); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDREAMEstimateUncached measures Algorithm 1 with the model cache
// disabled over the realistic federated history. The workload knobs
// stay outside the function so the two named variants below keep their
// meanings (and their merge-base comparability in the benchgate)
// stable.
func benchDREAMEstimateUncached(b *testing.B, timeNoise, moneyNoise, requiredR2 float64) {
	b.Helper()
	h, err := core.NewHistory(federation.FeatureDim, federation.Metrics...)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(1)
	for i := 0; i < 120; i++ {
		x := []float64{rng.Uniform(50, 150), rng.Uniform(5, 15), float64(rng.Intn(4) + 1), float64(rng.Intn(4) + 1), float64(rng.Intn(2))}
		costs := []float64{10 + 0.1*x[0], 0.01 + 0.001*x[0]}
		if timeNoise > 0 {
			costs[0] += rng.Normal(0, timeNoise)
		}
		if moneyNoise > 0 {
			costs[1] += rng.Normal(0, moneyNoise)
		}
		if err := h.Append(core.Observation{X: x, Costs: costs}); err != nil {
			b.Fatal(err)
		}
	}
	est, err := core.NewEstimator(core.Config{RequiredR2: requiredR2, MMax: 21, CacheSize: -1})
	if err != nil {
		b.Fatal(err)
	}
	x := []float64{100, 10, 2, 2, 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.EstimateCostValue(h, x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDREAMEstimateUncached is the same measurement as
// BenchmarkDREAMEstimate with the model cache disabled — the seed
// repo's sequential estimation path, kept (workload unchanged since
// PR 1, so the benchgate's merge-base comparison stays meaningful) as
// the baseline the parallel pipeline is judged against. On this
// near-clean data the search converges at the minimal window, so it
// measures the fixed per-estimate cost, not window growth.
func BenchmarkDREAMEstimateUncached(b *testing.B) {
	benchDREAMEstimateUncached(b, 2, 0, 0) // PR-1 workload: σ=2 on time, exact money, default R²require
}

// BenchmarkDREAMEstimateUncachedCold is the cost every cold tenant,
// restart recovery and cache-thrashing workload pays per estimate when
// conditions drift: noise high enough (and R²require strict enough)
// that the window search actually grows to Mmax. This is the regime
// the incremental shared-Gram solver attacks (~11x over the legacy
// per-window loop).
func BenchmarkDREAMEstimateUncachedCold(b *testing.B) {
	benchDREAMEstimateUncached(b, 6, 0.06, 0.999)
}

// ---------------------------------------------------------------------------
// Cold window searches: Algorithm 1 with nothing amortized — no model
// cache, and data noisy enough that every search grows its window all
// the way to Mmax. This is the benchmark family the incremental
// shared-Gram search is judged (and regression-gated) on: ns/op must
// scale linearly in M, and allocs/op must stay flat as the window
// grows (the fitter pool makes steady-state growth allocation-free).

// benchWindowSearchCold measures one full uncached window search over
// l features with the window forced to grow from l+2 to mmax.
func benchWindowSearchCold(b *testing.B, l, mmax int) {
	b.Helper()
	h, err := core.NewHistory(l, "time_s", "money_usd")
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(1)
	for i := 0; i < mmax+8; i++ {
		x := make([]float64, l)
		var base float64
		for j := range x {
			x[j] = rng.Uniform(0, 10)
			base += x[j]
		}
		costs := []float64{base + rng.Normal(0, 50), 0.1*base + rng.Normal(0, 5)}
		if err := h.Append(core.Observation{X: x, Costs: costs}); err != nil {
			b.Fatal(err)
		}
	}
	// RequiredR2 = 1 is unreachable on noisy data, so every call
	// deterministically pays the full growth loop to Mmax — the
	// worst-case search. (A realistic 0.8 threshold can converge at the
	// minimal window by overfitting luck: with m barely above L+2 the
	// fit has almost no residual degrees of freedom.)
	est, err := core.NewEstimator(core.Config{RequiredR2: 1, MMax: mmax, CacheSize: -1})
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, l)
	for j := range x {
		x[j] = 5
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est2, err := est.EstimateCostValue(h, x)
		if err != nil {
			b.Fatal(err)
		}
		if est2.WindowSize != mmax {
			b.Fatalf("window stopped at %d, want full growth to %d", est2.WindowSize, mmax)
		}
	}
}

// BenchmarkWindowSearchCold spans feature dimension (L2 vs L6) and
// window cap (M32 vs M256); the M256 cases are where the legacy
// quadratic loop drowned.
func BenchmarkWindowSearchCold(b *testing.B) {
	for _, c := range []struct {
		name    string
		l, mmax int
	}{
		{"L2/M32", 2, 32},
		{"L2/M256", 2, 256},
		{"L6/M32", 6, 32},
		{"L6/M256", 6, 256},
	} {
		b.Run(c.name, func(b *testing.B) { benchWindowSearchCold(b, c.l, c.mmax) })
	}
}

// ---------------------------------------------------------------------------
// Parallel plan-space estimation (paper Example 3.1, tentpole of the
// concurrent pipeline): sweep every enumerated QEP of a query through
// the Modelling module, sequentially vs. fanned out over the worker
// pool with the per-(history, version) model cache.

// benchPlanSweep builds a scheduler with the given estimation knobs,
// bootstraps a history, and measures full plan-space sweeps via
// OptimizeWSM (estimate every QEP + weighted-sum selection; no
// execution, so the history — and the model fit — stay fixed).
func benchPlanSweep(b *testing.B, q tpch.QueryID, workers, cacheSize int) {
	b.Helper()
	fed, err := federation.DefaultTopology(1)
	if err != nil {
		b.Fatal(err)
	}
	cal, err := federation.Calibrate(fed, 0.004, 1)
	if err != nil {
		b.Fatal(err)
	}
	exec, err := federation.NewScaledExecutor(fed, cal, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	model, err := ires.NewDREAMModel(core.Config{
		MMax:      3 * (federation.FeatureDim + 2),
		CacheSize: cacheSize,
	})
	if err != nil {
		b.Fatal(err)
	}
	sched, err := ires.NewSchedulerWithConfig(fed, exec, model, ires.SchedulerConfig{
		NodeChoices: []int{1, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16},
		Seed:        1,
		Parallelism: workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := sched.Bootstrap(q, 30); err != nil {
		b.Fatal(err)
	}
	pol := ires.Policy{Weights: []float64{1, 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.OptimizeWSM(q, pol); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQ12SweepSequential is the seed behaviour: one worker, no
// model cache — every plan pays a full Algorithm 1 window search.
func BenchmarkQ12SweepSequential(b *testing.B) { benchPlanSweep(b, tpch.QueryQ12, 1, -1) }

// BenchmarkQ12SweepParallel is the concurrent pipeline: GOMAXPROCS
// workers sharing one cached model fit per history version.
func BenchmarkQ12SweepParallel(b *testing.B) { benchPlanSweep(b, tpch.QueryQ12, 0, 0) }

// BenchmarkQ12SweepParallelUncached isolates the worker-pool
// contribution: parallel fan-out, cache off.
func BenchmarkQ12SweepParallelUncached(b *testing.B) { benchPlanSweep(b, tpch.QueryQ12, 0, -1) }

// BenchmarkQ13SweepSequential / Parallel repeat the contrast on the
// second-largest plan space.
func BenchmarkQ13SweepSequential(b *testing.B) { benchPlanSweep(b, tpch.QueryQ13, 1, -1) }
func BenchmarkQ13SweepParallel(b *testing.B)   { benchPlanSweep(b, tpch.QueryQ13, 0, 0) }

// benchWidePlanSweep measures one warm PlanSweep over a WideTopology
// lattice of 2·maxNodes² QEPs under the given prune policy (nil = the
// default full sweep). The model cache is warmed outside the timer, so
// the measurement isolates per-plan estimation work — the cost the
// prune layer exists to cut. Distinct from benchPlanSweep above, which
// drives OptimizeWSM on the default two-site topology.
func benchWidePlanSweep(b *testing.B, maxNodes int, prune ires.PrunePolicy) {
	b.Helper()
	fed, err := federation.WideTopology(1, maxNodes)
	if err != nil {
		b.Fatal(err)
	}
	cal, err := federation.Calibrate(fed, 0.004, 1)
	if err != nil {
		b.Fatal(err)
	}
	exec, err := federation.NewScaledExecutor(fed, cal, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	model, err := ires.NewDREAMModel(core.Config{MMax: 3 * (federation.FeatureDim + 2)})
	if err != nil {
		b.Fatal(err)
	}
	sched, err := ires.NewSchedulerWithConfig(fed, exec, model, ires.SchedulerConfig{
		NodeChoices: federation.NodeRange(maxNodes),
		Seed:        1,
		Prune:       prune,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := sched.Bootstrap(tpch.QueryQ12, 24); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sched.PlanSweep(ctx, tpch.QueryQ12); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.PlanSweep(ctx, tpch.QueryQ12); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanSweep contrasts the default full sweep with GreedyPrune
// at two lattice sizes: P200 (maxNodes 10) and P18200 (maxNodes 96, the
// paper's Example 3.1 regime of 18,200+ equivalent QEPs). The Greedy
// cases use the policy's default budget and must stay well under their
// Full counterparts — this family is regression-gated by the benchgate.
func BenchmarkPlanSweep(b *testing.B) {
	for _, pol := range []struct {
		name  string
		prune func() ires.PrunePolicy
	}{
		{"Full", func() ires.PrunePolicy { return nil }},
		{"Greedy", func() ires.PrunePolicy { return ires.GreedyPrune(0) }},
	} {
		for _, sz := range []struct {
			name     string
			maxNodes int
		}{
			{"P200", 10},
			{"P18200", 96},
		} {
			b.Run(pol.name+"/"+sz.name, func(b *testing.B) {
				benchWidePlanSweep(b, sz.maxNodes, pol.prune())
			})
		}
	}
}

// BenchmarkNSGAIIZdt1 measures the optimizer on the standard ZDT1
// benchmark problem.
func BenchmarkNSGAIIZdt1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := moo.NSGAII(zdt1Bench{dim: 8}, moo.NSGAIIConfig{
			PopSize: 40, Generations: 20, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

type zdt1Bench struct{ dim int }

func (z zdt1Bench) Bounds() (lo, hi []float64) {
	lo = make([]float64, z.dim)
	hi = make([]float64, z.dim)
	for i := range hi {
		hi[i] = 1
	}
	return lo, hi
}

func (z zdt1Bench) Evaluate(x []float64) []float64 {
	f1 := x[0]
	g := 1.0
	for _, v := range x[1:] {
		g += 9 * v / float64(z.dim-1)
	}
	h := 1 - math.Sqrt(f1/g)
	return []float64{f1, g * h}
}

// BenchmarkTPCHGenerate measures the data generator at SF 0.01.
func BenchmarkTPCHGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := tpch.Generate(0.01, tpch.GenOptions{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFederatedQ12Execution measures one full relational execution
// of Q12 across the federation at SF 0.005.
func BenchmarkFederatedQ12Execution(b *testing.B) {
	fed, err := federation.DefaultTopology(1)
	if err != nil {
		b.Fatal(err)
	}
	db, err := tpch.Generate(0.005, tpch.GenOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	ex := federation.NewFullExecutor(fed, db)
	plan := federation.Plan{Query: tpch.QueryQ12, JoinAtLeft: true, NodesLeft: 2, NodesRight: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Execute(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQ1Engine measures the single-table pricing-summary plan over
// generated data at SF 0.005.
func BenchmarkQ1Engine(b *testing.B) {
	db, err := tpch.Generate(0.005, tpch.GenOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rel := engine.ToRelationQ1(db)
	plan := engine.BuildQ1Plan(tpch.DefaultQ1Params())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := engine.Run(plan, map[string]*engine.Relation{"lineitem": rel}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaledExecution measures the statistics-replay executor used
// by the paper-scale experiments.
func BenchmarkScaledExecution(b *testing.B) {
	fed, err := federation.DefaultTopology(1)
	if err != nil {
		b.Fatal(err)
	}
	cal, err := federation.Calibrate(fed, 0.004, 1)
	if err != nil {
		b.Fatal(err)
	}
	ex, err := federation.NewScaledExecutor(fed, cal, 1)
	if err != nil {
		b.Fatal(err)
	}
	plan := federation.Plan{Query: tpch.QueryQ12, JoinAtLeft: true, NodesLeft: 2, NodesRight: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Execute(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalRound measures one full workload evaluation round
// (seed + test + scoring) for a single model at small size.
func BenchmarkEvalRound(b *testing.B) {
	h, err := workload.NewHarness(1)
	if err != nil {
		b.Fatal(err)
	}
	models, err := workload.PaperModels(1)
	if err != nil {
		b.Fatal(err)
	}
	dreamOnly := models[len(models)-1:]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Run(workload.EvalConfig{
			Query: tpch.QueryQ12, SF: 0.1, HistorySize: 30, TestQueries: 10, Seed: int64(i),
		}, dreamOnly); err != nil {
			b.Fatal(err)
		}
	}
}
