// Estimation study: a miniature of the paper's Tables 3 and 4.
//
// For each TPC-H query the paper studies (Q12, Q13, Q14, Q17), this
// example evaluates the five Modelling configurations — the Best-ML
// baseline over observation windows N, 2N, 3N and unbounded, and
// DREAM — on identical drifting federated workloads, and prints the
// Mean Relative Error of their execution-time estimates (eq. 15).
//
// The full-strength campaign (more repetitions, both scales) runs via
// `midasctl table3` / `midasctl table4` or the root benchmarks.
//
// Run with: go run ./examples/estimation_study
package main

import (
	"fmt"
	"log"

	midas "repro"
)

func main() {
	const seed = 5
	fmt.Println("Mini Table 3: MRE of execution-time estimates, 100 MiB federation")
	fmt.Println()
	fmt.Printf("%-6s", "Query")
	names := []string{"BMLN", "BML2N", "BML3N", "BML", "DREAM"}
	for _, n := range names {
		fmt.Printf("%8s", n)
	}
	fmt.Println()

	for _, q := range midas.AllQueries {
		h, err := midas.NewEvalHarness(seed + int64(q))
		if err != nil {
			log.Fatal(err)
		}
		models, err := midas.PaperModels(seed + int64(q))
		if err != nil {
			log.Fatal(err)
		}
		res, err := h.Run(midas.EvalConfig{
			Query:       q,
			SF:          0.1, // ≈100 MiB
			HistorySize: 60,
			TestQueries: 30,
			Seed:        seed + int64(q),
		}, models)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d", int(q))
		best := ""
		bestV := -1.0
		for _, n := range names {
			v := res.Scores[n].TimeMRE
			if best == "" || v < bestV {
				best, bestV = n, v
			}
			fmt.Printf("%8.3f", v)
		}
		fmt.Printf("   best: %s\n", best)
	}
	fmt.Println()
	fmt.Println("Lower is better. Expected shape (paper Tables 3/4): DREAM lowest or")
	fmt.Println("near-lowest on every query; unbounded-history BML degraded by drift.")
}
