// Quickstart: DREAM in ten minutes.
//
// This example shows the paper's core idea in isolation, without the
// federation: estimate a cost metric with Multiple Linear Regression
// over a *dynamic* window of recent history (Algorithm 1). The
// simulated environment drifts — the cost coefficients change halfway
// through, as a cloud's load does — and DREAM keeps tracking it while
// a full-history fit drags the stale regime along.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	midas "repro"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// A history of executions with two features (data size in MiB,
	// node count) and two cost metrics (time, money).
	hist, err := midas.NewHistory(2, "time_s", "money_usd")
	if err != nil {
		log.Fatal(err)
	}

	// Regime 1: time = 5 + 0.10·size + 2·nodes.
	// Regime 2 (after observation 60): the site got busy — everything
	// is 2.2× slower. Old observations are now "expired information".
	record := func(n int, timeScale float64) {
		for i := 0; i < n; i++ {
			size := 50 + rng.Float64()*100
			nodes := float64(rng.Intn(4) + 1)
			timeC := (5 + 0.10*size + 2*nodes) * timeScale * (1 + 0.03*rng.NormFloat64())
			moneyC := timeC * 0.002 * nodes
			if err := hist.Append(midas.Observation{
				X:     []float64{size, nodes},
				Costs: []float64{timeC, moneyC},
			}); err != nil {
				log.Fatal(err)
			}
		}
	}
	record(60, 1.0)
	record(25, 2.2)

	dream, err := midas.NewDREAMEstimator(midas.DREAMConfig{
		RequiredR2: midas.DefaultRequiredR2, // the paper's 0.8
		MMax:       20,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Estimate a new plan: 120 MiB on 2 nodes, in the busy regime.
	x := []float64{120, 2}
	est, err := dream.EstimateCostValue(hist, x)
	if err != nil {
		log.Fatal(err)
	}
	truth := (5 + 0.10*120 + 2*2) * 2.2

	fmt.Println("DREAM quickstart — dynamic-window cost estimation")
	fmt.Printf("history: %d observations (regime change at #60)\n\n", hist.Len())
	fmt.Printf("plan features: size=%.0f MiB, nodes=%.0f\n", x[0], x[1])
	fmt.Printf("true time under current regime: %.1f s\n\n", truth)
	fmt.Printf("DREAM window: %d most recent observations (converged=%v, %d refits)\n",
		est.WindowSize, est.Converged, est.Refits)
	for _, m := range est.Metrics {
		fmt.Printf("  %-10s estimate=%8.3f   R²=%.3f\n", m.Metric, m.Value, m.R2)
	}

	// Contrast: a single MLR over the whole history mixes both regimes.
	var all []midas.Sample
	for i := 0; i < hist.Len(); i++ {
		obs := hist.At(i)
		all = append(all, midas.Sample{X: obs.X, C: obs.Costs[0]})
	}
	full, err := midas.FitMLR(all)
	if err != nil {
		log.Fatal(err)
	}
	fullPred, err := full.Predict(x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull-history MLR estimate: %.3f s (stale: off by %.0f%%)\n",
		fullPred, 100*absRel(fullPred, truth))
	fmt.Printf("DREAM estimate:            %.3f s (off by %.0f%%)\n",
		est.Metrics[0].Value, 100*absRel(est.Metrics[0].Value, truth))
}

func absRel(pred, truth float64) float64 {
	d := (pred - truth) / truth
	if d < 0 {
		return -d
	}
	return d
}
