// Multi-Objective Query Processing, two ways (the paper's Figure 3).
//
// Given the same estimated plan space, this example contrasts:
//
//  1. the GA path — NSGA-II searches the plan space once, producing a
//     Pareto plan set; each user policy then just selects inside it
//     (Algorithm 2, BestInPareto);
//  2. the Weighted Sum Model path — every policy change re-scalarizes
//     and re-optimizes the whole space.
//
// It also shows the raw optimizer on a textbook problem (Schaffer's
// two-objective function) so the NSGA-II machinery can be seen working
// without the federation around it.
//
// Run with: go run ./examples/moqp_pareto
package main

import (
	"fmt"
	"log"
	"sort"

	midas "repro"
)

// schaffer is the classic single-variable bi-objective problem:
// f1 = x², f2 = (x−2)²; Pareto set is x ∈ [0, 2].
type schaffer struct{}

func (schaffer) Bounds() (lo, hi []float64) { return []float64{-10}, []float64{10} }
func (schaffer) Evaluate(x []float64) []float64 {
	return []float64{x[0] * x[0], (x[0] - 2) * (x[0] - 2)}
}

func main() {
	// Part 1: NSGA-II on Schaffer's problem.
	res, err := midas.NSGAII(schaffer{}, midas.NSGAIIConfig{PopSize: 40, Generations: 40, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(res.Front, func(i, j int) bool { return res.Front[i].Costs[0] < res.Front[j].Costs[0] })
	fmt.Printf("NSGA-II on Schaffer's problem: %d Pareto points from %d evaluations\n",
		len(res.Front), res.Evaluations)
	for i, ind := range res.Front {
		if i%8 == 0 {
			fmt.Printf("  x=%6.3f  f=(%.3f, %.3f)\n", ind.X[0], ind.Costs[0], ind.Costs[1])
		}
	}
	fmt.Println()

	// Part 2: the same machinery on the federated plan space.
	const seed = 23
	fed, err := midas.NewDefaultFederation(seed)
	if err != nil {
		log.Fatal(err)
	}
	cal, err := midas.Calibrate(fed, 0.004, seed)
	if err != nil {
		log.Fatal(err)
	}
	exec, err := midas.NewScaledExecutor(fed, cal, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	model, err := midas.NewDREAMModel(midas.DREAMConfig{MMax: 3 * (midas.FeatureDim + 2)})
	if err != nil {
		log.Fatal(err)
	}
	sched, err := midas.NewScheduler(fed, exec, model, []int{1, 2, 4, 8, 16}, seed)
	if err != nil {
		log.Fatal(err)
	}
	if err := sched.Bootstrap(midas.QueryQ14, 30); err != nil {
		log.Fatal(err)
	}

	ga, err := sched.OptimizeGA(midas.QueryQ14, midas.NSGAIIConfig{PopSize: 40, Generations: 20, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GA path: Pareto plan set of %d plans, built with %d model evaluations (paid once)\n",
		len(ga.Plans), ga.ModelEvaluations)
	for i, p := range ga.Plans {
		fmt.Printf("  %-34v est time %7.2f s   est money $%.5f\n", p, ga.Costs[i][0], ga.Costs[i][1])
	}
	fmt.Println()

	policies := []struct {
		name string
		pol  midas.Policy
	}{
		{"fast (90% time)", midas.Policy{Weights: []float64{0.9, 0.1}}},
		{"balanced", midas.Policy{Weights: []float64{0.5, 0.5}}},
		{"cheap (90% money)", midas.Policy{Weights: []float64{0.1, 0.9}}},
	}
	fmt.Println("policy changes: GA selects within the precomputed set; WSM re-optimizes")
	totalWSM := 0
	for _, pc := range policies {
		gaPlan, err := ga.Select(pc.pol)
		if err != nil {
			log.Fatal(err)
		}
		wsm, err := sched.OptimizeWSM(midas.QueryQ14, pc.pol)
		if err != nil {
			log.Fatal(err)
		}
		totalWSM += wsm.ModelEvaluations
		fmt.Printf("  %-18s GA→ %-32v WSM→ %-32v (+%d evals)\n",
			pc.name, gaPlan, wsm.Plan, wsm.ModelEvaluations)
	}
	fmt.Printf("\ntotals: GA %d evaluations once; WSM %d evaluations across %d policies\n",
		ga.ModelEvaluations, totalWSM, len(policies))
}
