// Hospital data sharing across a cloud federation — the scenario the
// paper opens with (and its Example 2.1): patient records live in one
// hospital's cloud (a Hive deployment on Amazon), visit/billing records
// in another (PostgreSQL on Microsoft Azure). A cross-hospital study
// joins the two, and MIDAS must pick a Query Execution Plan under the
// clinician's policy:
//
//   - an emergency diagnosis wants answers fast, money is secondary;
//   - a retrospective research study runs on a grant budget.
//
// The TPC-H tables play the medical roles (orders = hospital visits,
// customer = patients): Q13 computes the distribution of visits per
// patient, a staple epidemiology query.
//
// Run with: go run ./examples/hospital_sharing
package main

import (
	"fmt"
	"log"

	midas "repro"
)

func main() {
	const seed = 11

	fmt.Println("MIDAS federated medical study: visits-per-patient distribution (TPC-H Q13)")
	fmt.Println()

	// The federation: hospital A's cloud (Hive on Amazon a1.xlarge)
	// holds the big fact tables; hospital B's cloud (PostgreSQL on
	// Azure B2MS) holds the reference tables.
	fed, err := midas.NewDefaultFederation(seed)
	if err != nil {
		log.Fatal(err)
	}
	for name, site := range fed.Sites {
		fmt.Printf("site %-15s provider=%-9s engine=%-8s instance=%s (max %d nodes)\n",
			name, site.Provider.Name, site.Engine.Name, site.Instance, site.MaxNodes)
	}
	fmt.Println()

	// Calibrate engine statistics once, then run the shared dataset at
	// ≈100 MiB scale.
	cal, err := midas.Calibrate(fed, 0.004, seed)
	if err != nil {
		log.Fatal(err)
	}
	exec, err := midas.NewScaledExecutor(fed, cal, 0.1)
	if err != nil {
		log.Fatal(err)
	}

	model, err := midas.NewDREAMModel(midas.DREAMConfig{MMax: 3 * (midas.FeatureDim + 2)})
	if err != nil {
		log.Fatal(err)
	}
	sched, err := midas.NewScheduler(fed, exec, model, []int{1, 2, 4, 8}, seed)
	if err != nil {
		log.Fatal(err)
	}

	// Warm the execution history (IReS needs observations before its
	// Modelling module can estimate).
	if err := sched.Bootstrap(midas.QueryQ13, 30); err != nil {
		log.Fatal(err)
	}

	// Policy 1: emergency — minimize time, generous budget.
	emergency := midas.Policy{Weights: []float64{1, 0.05}}
	dec, err := sched.Submit(midas.QueryQ13, emergency)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("EMERGENCY policy (time-weighted):")
	report(dec)

	// Policy 2: research — minimize money, and hard-cap the time at
	// twice the emergency plan's estimate (Algorithm 2's constraint B).
	research := midas.Policy{
		Weights:     []float64{0.05, 1},
		Constraints: []float64{dec.Estimated[0] * 2},
	}
	dec2, err := sched.Submit(midas.QueryQ13, research)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("RESEARCH policy (budget-weighted, time ≤ 2× emergency estimate):")
	report(dec2)

	if dec2.Outcome.MoneyUSD <= dec.Outcome.MoneyUSD {
		fmt.Println("the research plan spent no more money than the emergency plan, as requested")
	}
}

func report(dec *midas.Decision) {
	fmt.Printf("  plan space %d QEPs → Pareto set %d\n", dec.PlanSpace, dec.ParetoSize)
	fmt.Printf("  chosen: %v\n", dec.Plan)
	fmt.Printf("  estimated: %.1f s / $%.5f   measured: %.1f s / $%.5f\n",
		dec.Estimated[0], dec.Estimated[1], dec.Outcome.TimeS, dec.Outcome.MoneyUSD)
	fmt.Printf("  breakdown: prep %.1fs|%.1fs  ship %.1fs (%.1f MiB)  final %.1fs\n\n",
		dec.Outcome.LeftTimeS, dec.Outcome.RightTimeS, dec.Outcome.ShipTimeS,
		dec.Outcome.ShippedBytes/1024/1024, dec.Outcome.FinalTimeS)
}
