# Single source of truth for the commands CI and humans run.
# `make help` lists the targets.

GO ?= go

.PHONY: all build vet fmt-check lint test test-short bench bench-smoke help

all: build lint test

## build: compile every package
build:
	$(GO) build ./...

## vet: run go vet over the module
vet:
	$(GO) vet ./...

## fmt-check: fail if any file needs gofmt
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## lint: vet + gofmt check
lint: vet fmt-check

## test: full test suite with the race detector
test:
	$(GO) test -race ./...

## test-short: quick feedback loop without the race detector
test-short:
	$(GO) test ./...

## bench: run every benchmark properly (slow)
bench:
	$(GO) test -run '^$$' -bench . ./...

## bench-smoke: one iteration of every benchmark — proves bench code builds and runs
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

help:
	@grep -E '^## ' Makefile | sed 's/^## /  /'
