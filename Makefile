# Single source of truth for the commands CI and humans run.
# `make help` lists the targets.

GO ?= go

# Coverage floor (percent) enforced on the packages new code lands in.
COVER_FLOOR ?= 60
COVER_PKGS ?= ./internal/server ./internal/core ./internal/histstore ./internal/metrics ./internal/cluster ./internal/scenario

# The regression-gated benchmarks: the Q12/Q13 serving sweeps, the
# cold (uncached) window searches the incremental shared-Gram solver
# owns, the pooled serving hot path (ServeHotPath reports allocs/op,
# the zero-alloc regression signal), and the PlanSweep full-vs-greedy
# family over the wide (Example 3.1) lattice. The minimum of COUNT
# runs is compared by cmd/benchgate in CI. The fsync-bound ServeDurable
# and WALAppend* benchmarks are deliberately NOT gated — fsync latency
# is hardware noise a CI gate must not key on.
SWEEP_PATTERN ?= Q1[23]Sweep|WindowSearchCold|DREAMEstimateUncached|ServeHotPath|PlanSweep|RouteLookup
SWEEP_COUNT ?= 5

# Where `make profile-sweep` drops its CPU profiles.
PROFILE_DIR ?= profiles

.PHONY: all build vet fmt-check lint linkcheck test test-short bench bench-smoke bench-sweep bench-json ablate-prune scenarios profile-sweep profile-serve cover help

all: build lint test

## build: compile every package
build:
	$(GO) build ./...

## vet: run go vet over the module
vet:
	$(GO) vet ./...

## fmt-check: fail if any file needs gofmt
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## lint: vet + gofmt check
lint: vet fmt-check

## linkcheck: validate markdown cross-links and anchors (offline, no external URLs)
linkcheck:
	$(GO) run ./cmd/linkcheck README.md DESIGN.md docs

## test: full test suite with the race detector
test:
	$(GO) test -race ./...

## test-short: quick feedback loop without the race detector
test-short:
	$(GO) test ./...

## bench: run every benchmark properly (slow)
bench:
	$(GO) test -run '^$$' -bench . ./...

## bench-smoke: one iteration of every benchmark — proves bench code builds and runs
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

## bench-sweep: repeated runs of the regression-gated sweep + cold-search benchmarks
bench-sweep:
	$(GO) test -run '^$$' -bench '$(SWEEP_PATTERN)' -benchtime 10x -count $(SWEEP_COUNT) .

## ablate-prune: full-vs-GreedyPrune quality smoke — fails if pruned decisions drift past tolerance
ablate-prune:
	$(GO) test -run TestAblationPrune -v ./internal/experiments

## scenarios: the fixed-seed scenario sweep — MRE, regret and p99 per (arrival × chaos) cell
scenarios:
	$(GO) run ./cmd/midasctl scenarios

## profile-sweep: CPU profile of the cold window-search benchmarks into $(PROFILE_DIR)/
profile-sweep:
	mkdir -p $(PROFILE_DIR)
	$(GO) test -run '^$$' -bench 'WindowSearchCold' -benchtime 200x \
		-cpuprofile $(PROFILE_DIR)/cold-sweep.cpu.pprof \
		-o $(PROFILE_DIR)/cold-sweep.test .
	@echo "profile written; inspect with: go tool pprof $(PROFILE_DIR)/cold-sweep.test $(PROFILE_DIR)/cold-sweep.cpu.pprof"

## profile-serve: CPU + allocation profiles of the serving hot path into $(PROFILE_DIR)/
profile-serve:
	mkdir -p $(PROFILE_DIR)
	$(GO) test -run '^$$' -bench 'ServeHotPath' -benchtime 3s \
		-cpuprofile $(PROFILE_DIR)/serve.cpu.pprof \
		-memprofile $(PROFILE_DIR)/serve.mem.pprof \
		-o $(PROFILE_DIR)/serve.test .
	@echo "profiles written; inspect with:"
	@echo "  go tool pprof $(PROFILE_DIR)/serve.test $(PROFILE_DIR)/serve.cpu.pprof"
	@echo "  go tool pprof -sample_index=alloc_objects $(PROFILE_DIR)/serve.test $(PROFILE_DIR)/serve.mem.pprof"

## bench-json: one iteration of every benchmark as test2json events (BENCH_*.json artifacts)
bench-json:
	$(GO) test -run '^$$' -bench . -benchtime 1x -json ./...

## cover: enforce the coverage floor on the serving and estimation cores
cover:
	@set -e; for pkg in $(COVER_PKGS); do \
		out="$$($(GO) test -cover $$pkg)"; echo "$$out"; \
		pct="$$(echo "$$out" | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p')"; \
		if [ -z "$$pct" ]; then echo "no coverage reported for $$pkg"; exit 1; fi; \
		if ! awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN{exit !(p+0 >= f+0)}'; then \
			echo "FAIL: $$pkg coverage $$pct% is below the $(COVER_FLOOR)% floor"; exit 1; \
		fi; \
	done

help:
	@grep -E '^## ' Makefile | sed 's/^## /  /'
