// Package midas is the public API of this reproduction of "Dynamic
// estimation for medical data management in a cloud federation"
// (Le, Kantere, d'Orazio — DARLI-AP @ EDBT/ICDT 2019).
//
// The package re-exports the user-facing surface of the internal
// packages as one coherent API:
//
//   - DREAM (the paper's contribution): multi-metric cost estimation
//     over a dynamic window of recent execution history (Algorithm 1).
//   - The MIDAS federation: sites pairing cloud providers with database
//     engines, a TPC-H catalog split across them, QEP enumeration, and
//     executors that measure plan cost under drifting cloud load.
//   - The IReS-style scheduler: Modelling (DREAM or Best-ML baselines),
//     Multi-Objective Optimization (NSGA-II / NSGA-G / WSM), and
//     BestInPareto plan selection (Algorithm 2).
//   - The evaluation harness regenerating the paper's Tables 1–4,
//     Figure 3 and Example 3.1.
//
// # Quick start
//
//	fed, _ := midas.NewDefaultFederation(42)
//	cal, _ := midas.Calibrate(fed, 0.004, 42)
//	exec, _ := midas.NewScaledExecutor(fed, cal, 0.1) // ≈100 MiB TPC-H
//	model, _ := midas.NewDREAMModel(midas.DREAMConfig{})
//	sched, _ := midas.NewScheduler(fed, exec, model, nil, 42)
//	_ = sched.Bootstrap(midas.QueryQ12, 20)
//	dec, _ := sched.Submit(midas.QueryQ12, midas.Policy{Weights: []float64{1, 1}})
//	fmt.Printf("picked %v: est %v, actual %.1fs / $%.4f\n",
//		dec.Plan, dec.Estimated, dec.Outcome.TimeS, dec.Outcome.MoneyUSD)
//
// See examples/ for complete programs and DESIGN.md for the system
// inventory.
package midas

import (
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/federation"
	"repro/internal/histstore"
	"repro/internal/ires"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/moo"
	"repro/internal/regression"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/tpch"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// DREAM (paper Section 3, Algorithm 1)

// DREAMConfig parameterizes the DREAM estimator; see core.Config.
type DREAMConfig = core.Config

// DREAMEstimator runs Algorithm 1 over an execution History.
type DREAMEstimator = core.Estimator

// History is an append-only log of plan executions (features + costs).
// Safe for concurrent appenders and readers.
type History = core.History

// HistorySnapshot is an immutable point-in-time view of a History;
// concurrent estimation rounds score every plan against one snapshot.
type HistorySnapshot = core.Snapshot

// Observation is one execution record.
type Observation = core.Observation

// Estimate is the result of one EstimateCostValue call.
type Estimate = core.Estimate

// Window policies for DREAM (paper default: most recent observations).
const (
	MostRecent    = core.MostRecent
	UniformSample = core.UniformSample
)

// Growth policies for DREAM's window (paper default: grow by one).
const (
	GrowByOne = core.GrowByOne
	Doubling  = core.Doubling
)

// DefaultRequiredR2 is the paper's R²require = 0.8.
const DefaultRequiredR2 = core.DefaultRequiredR2

// DefaultModelCacheSize bounds the estimator's per-(history, version)
// model cache: the window search of Algorithm 1 is independent of the
// plan being estimated, so one fit serves every QEP of a scheduling
// round. Set DREAMConfig.CacheSize to tune (negative disables).
const DefaultModelCacheSize = core.DefaultCacheSize

// NewDREAMEstimator validates a config and returns a DREAM estimator.
func NewDREAMEstimator(cfg DREAMConfig) (*DREAMEstimator, error) {
	return core.NewEstimator(cfg)
}

// NewHistory creates an execution history for the given feature
// dimension and metric names.
func NewHistory(dim int, metrics ...string) (*History, error) {
	return core.NewHistory(dim, metrics...)
}

// LoadHistory reads a history previously written with History.Save —
// the legacy whole-file format, still readable as the one-way import
// path into a durable store (DurableHistoryStore.ImportLegacy). New
// code should keep histories in a store instead of Save/Load files.
var LoadHistory = core.LoadHistory

// ---------------------------------------------------------------------------
// Durable history store (WAL + snapshots)

type (
	// HistoryStore is the scheduler's durable-history seam: set
	// SchedulerConfig.Store (or ServerConfig.Store for midasd-style
	// serving) and query histories are recovered from it on first
	// touch and persisted through it on every recorded execution.
	HistoryStore = ires.HistoryStore
	// DurableHistoryStore implements HistoryStore on disk: one shard
	// per history holding a CRC-framed append-only WAL plus a
	// compacting snapshot, with deterministic, torn-tail-tolerant
	// crash recovery. See internal/histstore.
	DurableHistoryStore = histstore.Store
	// HistoryStoreOptions tunes a DurableHistoryStore (WAL fsync).
	HistoryStoreOptions = histstore.Options
	// HistorySink is core's write-ahead tee: every History.Append
	// flows through the attached sink before becoming visible.
	HistorySink = core.HistorySink
	// ServerStoreConfig makes a QueryServer's tenant histories durable
	// (ServerConfig.Store): data directory, checkpoint interval, WAL
	// fsync. cmd/midasd exposes these as -data-dir,
	// -checkpoint-interval and -wal-fsync.
	ServerStoreConfig = server.StoreConfig
)

// OpenHistoryStore opens (creating the directory if needed) a durable
// history store rooted at dir. Histories opened through the store are
// recovered from its snapshot + WAL and warm-start any scheduler they
// are wired into.
func OpenHistoryStore(dir string, opts HistoryStoreOptions) (*DurableHistoryStore, error) {
	return histstore.Open(dir, opts)
}

// ---------------------------------------------------------------------------
// Observability (metrics + structured logs)

type (
	// MetricsRegistry is a zero-dependency, concurrency-safe metrics
	// registry (counters, gauges, fixed-bucket histograms with
	// p50/p90/p99 extraction) that renders the Prometheus text format.
	// Every layer of the serving stack publishes into one: set
	// ServerConfig.Metrics (or SchedulerConfig.Metrics +
	// MetricsFederation for a bare scheduler, HistoryStoreOptions.Metrics
	// for a bare store) and scrape it via Registry.Handler — which is
	// what midasd serves at GET /metrics. Instrumentation is
	// observation-only: metered and unmetered runs make byte-identical
	// decisions.
	MetricsRegistry = metrics.Registry
	// Counter is a monotonically non-decreasing metric.
	Counter = metrics.Counter
	// Gauge is a metric that can go up and down.
	Gauge = metrics.Gauge
	// Histogram buckets observations and extracts approximate
	// quantiles (Quantile(0.5), …).
	Histogram = metrics.Histogram
	// EstimatorStats is the DREAM estimator's observation-only
	// instrumentation: window searches, refits, the most recent fitted
	// window size (the drift signal), and model-cache hits/misses. Read
	// it with DREAMEstimator.Stats.
	EstimatorStats = core.EstimatorStats
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// MetricDefBuckets is the default histogram bucket ladder (1 ms–30 s),
// sized for request and sweep latencies.
var MetricDefBuckets = metrics.DefBuckets

// MetricExponentialBuckets builds n histogram bucket bounds starting
// at start and growing by factor.
func MetricExponentialBuckets(start, factor float64, n int) []float64 {
	return metrics.ExponentialBuckets(start, factor, n)
}

// ---------------------------------------------------------------------------
// Regression and baseline learners

// Sample pairs a feature vector with an observed cost.
type Sample = regression.Sample

// MLRModel is a fitted Multiple Linear Regression model (paper §2.5).
type MLRModel = regression.Model

// FitMLR solves the normal equations B = (AᵀA)⁻¹AᵀC over the samples.
func FitMLR(samples []Sample) (*MLRModel, error) {
	return regression.Fit(samples, regression.FitOptions{})
}

// Learner trains single-metric cost predictors (Best-ML candidates).
type Learner = ml.Learner

// Predictor is a trained cost model.
type Predictor = ml.Predictor

// The IReS Modelling learners named in the paper, plus the robust
// regressor from its Rousseeuw & Leroy reference.
type (
	// LeastSquares is ordinary least-squares MLR.
	LeastSquares = ml.LeastSquares
	// Bagging aggregates bootstrap-trained base models.
	Bagging = ml.Bagging
	// MLP is a single-hidden-layer perceptron.
	MLP = ml.MLP
	// BML cross-validates the candidates and keeps the best.
	BML = ml.BML
	// Huber is an IRLS robust regressor (down-weights latency spikes).
	Huber = ml.Huber
)

// ---------------------------------------------------------------------------
// Multi-objective optimization (paper §2.3, §3, Algorithm 2)

// Problem is a continuous multi-objective minimization problem.
type Problem = moo.Problem

// NSGAIIConfig tunes the genetic optimizers.
type NSGAIIConfig = moo.NSGAIIConfig

// NSGAII runs the Non-dominated Sorting Genetic Algorithm II.
func NSGAII(p Problem, cfg NSGAIIConfig) (*moo.Result, error) { return moo.NSGAII(p, cfg) }

// NSGAG runs the authors' grid-based NSGA variant.
func NSGAG(p Problem, cfg NSGAIIConfig, divisions int) (*moo.Result, error) {
	return moo.NSGAG(p, cfg, divisions)
}

// SPEA2 runs the Strength Pareto Evolutionary Algorithm 2 (paper
// reference [37]).
func SPEA2(p Problem, cfg NSGAIIConfig) (*moo.Result, error) { return moo.SPEA2(p, cfg) }

// MOEADConfig parameterizes MOEA/D.
type MOEADConfig = moo.MOEADConfig

// MOEAD runs the decomposition-based optimizer (paper reference [36]).
func MOEAD(p Problem, cfg MOEADConfig) (*moo.Result, error) { return moo.MOEAD(p, cfg) }

// KneePoint selects the knee of a two-objective Pareto set — a
// weight-free selection strategy (paper future work).
func KneePoint(costs [][]float64) (int, error) { return moo.KneePoint(costs) }

// EpsilonConstraint minimizes one objective under bounds on the others.
func EpsilonConstraint(costs [][]float64, primary int, epsilons []float64) (int, error) {
	return moo.EpsilonConstraint(costs, primary, epsilons)
}

// Lexicographic selects by objective priority with tolerance bands.
func Lexicographic(costs [][]float64, order []int, tolerance float64) (int, error) {
	return moo.Lexicographic(costs, order, tolerance)
}

// ParetoFront returns the indices of non-dominated cost vectors.
func ParetoFront(costs [][]float64) ([]int, error) { return moo.ParetoFront(costs) }

// BestInPareto implements the paper's Algorithm 2.
func BestInPareto(costs [][]float64, weights, constraints []float64) (int, error) {
	return moo.BestInPareto(costs, weights, constraints)
}

// WeightedSum scalarizes a cost vector with normalized weights.
func WeightedSum(costs, weights []float64) (float64, error) {
	return moo.WeightedSum(costs, weights)
}

// ---------------------------------------------------------------------------
// Cloud federation substrate

// The pay-as-you-go substrate of the paper's Table 1.
type (
	// Provider is one cloud vendor's catalog: instance types, storage
	// and egress pricing.
	Provider = cloud.Provider
	// InstanceType is one rentable machine shape (vCPU, memory,
	// hourly price).
	InstanceType = cloud.InstanceType
	// Cluster is a rented set of instances at one site.
	Cluster = cloud.Cluster
	// Link models the network between two sites (bandwidth, egress
	// pricing).
	Link = cloud.Link
	// LoadProcess is the drifting background-load model an executor
	// samples per execution.
	LoadProcess = cloud.LoadProcess
)

// Provider catalogs from the paper's Table 1 (plus Google for the
// architecture figure's three-cloud setup).
var (
	Amazon    = cloud.Amazon
	Microsoft = cloud.Microsoft
	Google    = cloud.Google
)

// EngineProfile is a simulated database engine personality.
type EngineProfile = engine.Profile

// The engines of the paper's Figure 1.
var (
	HiveProfile     = engine.Hive
	PostgresProfile = engine.Postgres
	SparkProfile    = engine.Spark
)

// ---------------------------------------------------------------------------
// Federation, plans, executors

type (
	// Federation is the MIDAS topology (sites, catalog, links).
	Federation = federation.Federation
	// FederationConfig assembles a Federation.
	FederationConfig = federation.Config
	// Site pairs a provider with an engine at one location.
	Site = federation.Site
	// Plan is one equivalent QEP of a two-table query.
	Plan = federation.Plan
	// Outcome is the measured cost of one execution.
	Outcome = federation.Outcome
	// Executor runs plans (FullExecutor or ScaledExecutor).
	Executor = federation.Executor
	// FullExecutor executes relational plans over generated data.
	FullExecutor = federation.FullExecutor
	// ScaledExecutor replays calibrated statistics at any data scale.
	ScaledExecutor = federation.ScaledExecutor
	// Calibration holds per-query operator statistics per unit SF.
	Calibration = federation.Calibration
	// PlanLattice is a query's full QEP space in factored form (join
	// side × left choice × right choice) — sized, indexable and
	// enumerable without materializing the plans until asked.
	// Federation.PlanLattice builds one; Federation.EnumeratePlans
	// remains the batch convenience over it.
	PlanLattice = federation.PlanLattice
	// PlanIterator streams a lattice's plans in deterministic order
	// (Next/Reset), with random access through At — the lazy seam
	// PrunePolicy implementations pull from.
	PlanIterator = federation.PlanIterator
)

// ErrBadNodeChoices tags cluster-size menu validation failures (empty
// menu, non-positive or duplicate entries); test with errors.Is.
var ErrBadNodeChoices = federation.ErrBadNodeChoices

// ValidateNodeChoices rejects malformed cluster-size menus up front.
func ValidateNodeChoices(nodeChoices []int) error {
	return federation.ValidateNodeChoices(nodeChoices)
}

// NodeRange returns the dense menu {1, 2, …, n} — the knob that grows
// the QEP lattice toward the paper's Example 3.1 regime.
func NodeRange(n int) []int { return federation.NodeRange(n) }

// NewWideFederation is the paper's two-site deployment with both
// sites' cluster caps raised to maxNodes: with the NodeRange(maxNodes)
// menu the lattice holds 2·maxNodes² QEPs (18,432 at maxNodes 96 —
// Example 3.1's 18,200-plan regime).
func NewWideFederation(seed int64, maxNodes int) (*Federation, error) {
	return federation.WideTopology(seed, maxNodes)
}

// Metrics are the cost objectives (time_s, money_usd).
var Metrics = federation.Metrics

// FeatureDim is the plan feature dimension (paper Example 2.1 features
// plus the join-placement indicator).
const FeatureDim = federation.FeatureDim

// NewFederation validates and builds a federation.
func NewFederation(cfg FederationConfig) (*Federation, error) { return federation.New(cfg) }

// NewDefaultFederation reproduces the paper's two-site Hive+PostgreSQL
// deployment across Amazon and Microsoft.
func NewDefaultFederation(seed int64) (*Federation, error) {
	return federation.DefaultTopology(seed)
}

// NewThreeCloudFederation adds a Spark-on-Google site, realizing the
// three-provider architecture of the paper's Figure 1.
func NewThreeCloudFederation(seed int64) (*Federation, error) {
	return federation.ThreeCloudTopology(seed)
}

// NewFlakyExecutor wraps an executor with deterministic transient
// failures, for chaos testing.
func NewFlakyExecutor(inner Executor, failureProb float64, seed int64) (*federation.FlakyExecutor, error) {
	return federation.NewFlakyExecutor(inner, failureProb, seed)
}

// NewRetryingExecutor wraps an executor with retry-on-transient
// behaviour.
func NewRetryingExecutor(inner Executor, maxRetries int) (*federation.RetryingExecutor, error) {
	return federation.NewRetryingExecutor(inner, maxRetries)
}

// NewFullExecutor runs plans for real over a generated database.
func NewFullExecutor(fed *Federation, db *tpch.Database) *FullExecutor {
	return federation.NewFullExecutor(fed, db)
}

// Calibrate measures per-query operator statistics at a small scale.
func Calibrate(fed *Federation, calibSF float64, seed int64) (*Calibration, error) {
	return federation.Calibrate(fed, calibSF, seed)
}

// NewScaledExecutor replays calibrated statistics at scale sf.
func NewScaledExecutor(fed *Federation, cal *Calibration, sf float64) (*ScaledExecutor, error) {
	return federation.NewScaledExecutor(fed, cal, sf)
}

// ---------------------------------------------------------------------------
// TPC-H

// Database is a generated TPC-H population.
type Database = tpch.Database

// QueryID names the studied queries (Q12, Q13, Q14, Q17).
type QueryID = tpch.QueryID

// The paper's evaluation queries.
const (
	QueryQ12 = tpch.QueryQ12
	QueryQ13 = tpch.QueryQ13
	QueryQ14 = tpch.QueryQ14
	QueryQ17 = tpch.QueryQ17
)

// AllQueries lists the evaluation queries in paper order.
var AllQueries = tpch.AllQueries

// GenerateTPCH builds a deterministic TPC-H population; SF 1 ≈ 1 GB.
func GenerateTPCH(sf float64, seed int64) (*Database, error) {
	return tpch.Generate(sf, tpch.GenOptions{Seed: seed})
}

// ---------------------------------------------------------------------------
// IReS scheduler pipeline

type (
	// Scheduler is the MIDAS/IReS pipeline instance.
	Scheduler = ires.Scheduler
	// CostModel is the Modelling module contract.
	CostModel = ires.CostModel
	// DREAMModel adapts DREAM to the Modelling contract.
	DREAMModel = ires.DREAMModel
	// CompositeDREAMModel is the operator-level DREAM variant.
	CompositeDREAMModel = ires.CompositeDREAMModel
	// BMLModel is the windowed Best-ML baseline.
	BMLModel = ires.BMLModel
	// Policy is the user query policy (weights + constraints).
	Policy = ires.Policy
	// Decision reports one scheduling round.
	Decision = ires.Decision
	// SchedulerConfig adds the parallel-estimation and durability
	// knobs: Parallelism bounds the worker pool that fans plan
	// estimation out (0 = GOMAXPROCS, 1 = sequential), CacheSize tunes
	// the Modelling module's per-(history, version) model cache, and
	// Store injects a durable HistoryStore the scheduler recovers from
	// and records through. Decisions are byte-identical for any
	// setting with deterministic models (the default; the
	// UniformSample window ablation is the exception — see
	// Scheduler.Parallelism), including across a store-backed restart.
	SchedulerConfig = ires.SchedulerConfig
	// PlanSource is the streaming plan-supply seam: anything that can
	// hand the scheduler plans one at a time (Next/Reset/Size/At). A
	// federation PlanIterator is the canonical implementation.
	PlanSource = ires.PlanSource
	// PrunePolicy decides which QEPs of the lattice a sweep actually
	// estimates. Set SchedulerConfig.Prune; nil means FullSweep. The
	// interface is closed — use the constructors below.
	PrunePolicy = ires.PrunePolicy
)

// FullSweep estimates every plan — the paper's behavior and the
// default when SchedulerConfig.Prune is nil.
func FullSweep() PrunePolicy { return ires.FullSweep() }

// GreedyPrune estimates at most budget plans (0 = a size-derived
// default): a coarse lattice scaffold followed by a cost-ordered walk
// around the running Pareto front that stops early once a whole chunk
// of candidates is dominated. Deterministic at any Parallelism.
func GreedyPrune(budget int) PrunePolicy { return ires.GreedyPrune(budget) }

// TopKPrune estimates a deterministic uniform sample of k plans
// (0 = a size-derived default) — the simple baseline GreedyPrune is
// judged against.
func TopKPrune(k int, seed int64) PrunePolicy { return ires.TopK(k, seed) }

// ParsePrunePolicy resolves a policy by name ("", "full", "greedy",
// "topk") plus budget — the form config files and midasd flags use.
func ParsePrunePolicy(name string, budget int) (PrunePolicy, error) {
	return ires.ParsePrunePolicy(name, budget)
}

// NewDREAMModel builds a DREAM Modelling module.
func NewDREAMModel(cfg DREAMConfig) (*DREAMModel, error) { return ires.NewDREAMModel(cfg) }

// NewCompositeDREAMModel builds the operator-level DREAM Modelling
// module (requires histories recorded with BreakdownMetrics).
func NewCompositeDREAMModel(cfg DREAMConfig) (*CompositeDREAMModel, error) {
	return ires.NewCompositeDREAMModel(cfg)
}

// BreakdownMetrics extends Metrics with per-operator timings.
var BreakdownMetrics = federation.BreakdownMetrics

// NewScheduler assembles the pipeline.
func NewScheduler(fed *Federation, exec Executor, model CostModel, nodeChoices []int, seed int64) (*Scheduler, error) {
	return ires.NewScheduler(fed, exec, model, nodeChoices, seed)
}

// NewSchedulerWithConfig assembles the pipeline with explicit
// parallelism and model-cache knobs.
func NewSchedulerWithConfig(fed *Federation, exec Executor, model CostModel, cfg SchedulerConfig) (*Scheduler, error) {
	return ires.NewSchedulerWithConfig(fed, exec, model, cfg)
}

// ---------------------------------------------------------------------------
// Serving layer

type (
	// Sweep is the policy-independent half of a scheduling round; a
	// serving layer shares one sweep across concurrent submissions of
	// the same query (see Scheduler.PlanSweep / DecideFromSweep).
	Sweep = ires.Sweep
	// QueryServer hosts named federations behind the HTTP/JSON API
	// (POST /v1/queries, GET /v1/history/{query}, /v1/stats, /healthz)
	// with bounded admission, same-query sweep batching and graceful
	// drain. cmd/midasd is the standalone daemon.
	QueryServer = server.Server
	// ServerConfig assembles a QueryServer.
	ServerConfig = server.Config
	// ServerFederationSpec declares one hosted federation.
	ServerFederationSpec = server.FederationSpec
	// QueryRequest is the body of POST /v1/queries; cmd/midasload
	// speaks the same contract.
	QueryRequest = server.QueryRequest
	// QueryResponse reports one completed scheduling round over the
	// wire.
	QueryResponse = server.QueryResponse
	// LoadConfig parameterizes one load-generation run against a
	// serving instance.
	LoadConfig = workload.LoadConfig
	// LoadReport summarizes a load run: QPS, latency percentiles,
	// per-status counts.
	LoadReport = workload.LoadReport
	// OpenLoadConfig parameterizes an open-loop (schedule-driven)
	// load run.
	OpenLoadConfig = workload.OpenLoadConfig
	// ScenarioSpec names one scenario: an arrival process, a rate, an
	// event budget, and a chaos profile, all under one seed.
	ScenarioSpec = scenario.Spec
	// ScenarioEvent is one (offset, federation, query) arrival of a
	// generated or recorded trace.
	ScenarioEvent = scenario.Event
	// ChaosProfile names a fault-injection preset for the simulated
	// cloud.
	ChaosProfile = cloud.ChaosProfile
)

// NewQueryServer builds the configured federations (calibration +
// bootstrap; the slow part) and returns a ready server.
func NewQueryServer(cfg ServerConfig) (*QueryServer, error) { return server.New(cfg) }

// LoadFederationSpecs reads a JSON federation config file.
var LoadFederationSpecs = server.LoadSpecsFile

// RunLoad drives N concurrent closed-loop clients against a serving
// instance and reports sustained QPS and latency percentiles.
var RunLoad = workload.RunLoad

// RunOpenLoad fires a pre-generated event schedule at a serving
// instance open-loop (arrivals decoupled from service rate) and
// reports through the same summarization path as RunLoad.
var RunOpenLoad = workload.RunOpenLoad

// Scenario engine: seeded arrival schedules, byte-exact trace
// record/replay, and chaos attachment over the simulated cloud.
var (
	// ScenarioMatrix returns the standard (arrival × chaos) scenario
	// grid under one base seed.
	ScenarioMatrix = scenario.Matrix
	// WriteTrace / ReadTrace serialize an event schedule to the
	// CRC-framed trace format midasload records and replays.
	WriteTrace = scenario.WriteTrace
	ReadTrace  = scenario.ReadTrace
	// AttachChaos wires a fault-injection profile onto every site of a
	// federation; DetachChaos restores the well-behaved cloud.
	AttachChaos = scenario.AttachChaos
	DetachChaos = scenario.DetachChaos
	// ParseChaosProfile resolves a named chaos profile (see
	// ChaosProfileNames).
	ParseChaosProfile = cloud.ParseChaosProfile
	// ChaosProfileNames lists the named chaos profiles.
	ChaosProfileNames = cloud.ChaosProfileNames
)

// ---------------------------------------------------------------------------
// Evaluation harness

type (
	// EvalConfig parameterizes one MRE evaluation run.
	EvalConfig = workload.EvalConfig
	// EvalHarness owns the federation and calibration of a campaign.
	EvalHarness = workload.Harness
	// ModelSpec names one model under evaluation.
	ModelSpec = workload.ModelSpec
	// ResultTable is a rendered experiment table.
	ResultTable = experiments.Table
)

// NewEvalHarness builds an evaluation harness on the default topology.
func NewEvalHarness(seed int64) (*EvalHarness, error) { return workload.NewHarness(seed) }

// PaperModels returns the five Modelling configurations of Tables 3/4.
func PaperModels(seed int64) ([]ModelSpec, error) { return workload.PaperModels(seed) }
