package midas

import (
	"bytes"
	"math"
	"testing"
)

// The root-package tests exercise the public facade end to end, the way
// a downstream user would.

func TestFacadeFullPipeline(t *testing.T) {
	fed, err := NewDefaultFederation(71)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := Calibrate(fed, 0.004, 71)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := NewScaledExecutor(fed, cal, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	model, err := NewDREAMModel(DREAMConfig{MMax: 3 * (FeatureDim + 2)})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewScheduler(fed, exec, model, nil, 71)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Bootstrap(QueryQ12, 20); err != nil {
		t.Fatal(err)
	}
	dec, err := sched.Submit(QueryQ12, Policy{Weights: []float64{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Outcome.TimeS <= 0 || dec.Outcome.MoneyUSD < 0 {
		t.Fatalf("degenerate outcome %+v", dec.Outcome)
	}
	if len(dec.Estimated) != len(Metrics) {
		t.Fatalf("estimate dim %d", len(dec.Estimated))
	}
}

// TestFacadeParallelScheduler drives the concurrent pipeline through
// the public API: GOMAXPROCS workers, model cache on, and a history
// snapshot taken mid-run.
func TestFacadeParallelScheduler(t *testing.T) {
	fed, err := NewDefaultFederation(19)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := Calibrate(fed, 0.004, 19)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := NewScaledExecutor(fed, cal, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	model, err := NewDREAMModel(DREAMConfig{MMax: 3 * (FeatureDim + 2)})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewSchedulerWithConfig(fed, exec, model, SchedulerConfig{
		Seed:        19,
		Parallelism: 0, // GOMAXPROCS
		CacheSize:   DefaultModelCacheSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Bootstrap(QueryQ12, 20); err != nil {
		t.Fatal(err)
	}
	dec, err := sched.Submit(QueryQ12, Policy{Weights: []float64{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Outcome.TimeS <= 0 {
		t.Fatalf("degenerate outcome %+v", dec.Outcome)
	}
	var snap *HistorySnapshot = sched.History(QueryQ12).Snapshot()
	if snap.Len() != 21 { // 20 bootstrap runs + 1 submitted round
		t.Fatalf("snapshot Len = %d, want 21", snap.Len())
	}
	hits, misses := model.Est.CacheStats()
	if hits+misses == 0 {
		t.Fatal("model cache never consulted")
	}
}

func TestFacadeDREAMAndPersistence(t *testing.T) {
	h, err := NewHistory(1, "time_s")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		x := float64(i%7 + 1)
		if err := h.Append(Observation{X: []float64{x}, Costs: []float64{3 * x}}); err != nil {
			t.Fatal(err)
		}
	}
	est, err := NewDREAMEstimator(DREAMConfig{RequiredR2: DefaultRequiredR2})
	if err != nil {
		t.Fatal(err)
	}
	e, err := est.EstimateCostValue(h, []float64{4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Values()[0]-12) > 1e-6 {
		t.Errorf("estimate = %v, want 12", e.Values()[0])
	}
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	h2, err := LoadHistory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Len() != h.Len() {
		t.Fatalf("round-trip lost observations: %d vs %d", h2.Len(), h.Len())
	}
}

func TestFacadeLearners(t *testing.T) {
	samples := make([]Sample, 40)
	for i := range samples {
		x := float64(i%9 + 1)
		samples[i] = Sample{X: []float64{x}, C: 2 + 5*x}
	}
	for _, l := range []Learner{LeastSquares{}, Bagging{Seed: 1}, MLP{Seed: 1, Epochs: 100}, BML{Seed: 1}, Huber{}} {
		p, err := l.Train(samples)
		if err != nil {
			t.Fatalf("%s: %v", l.Name(), err)
		}
		v, err := p.Predict([]float64{5})
		if err != nil {
			t.Fatalf("%s: %v", l.Name(), err)
		}
		if math.Abs(v-27) > 5 {
			t.Errorf("%s predicts %v, want ≈27", l.Name(), v)
		}
	}
	m, err := FitMLR(samples)
	if err != nil {
		t.Fatal(err)
	}
	if m.R2 < 0.999 {
		t.Errorf("MLR R² = %v on exact data", m.R2)
	}
}

func TestFacadeMOO(t *testing.T) {
	costs := [][]float64{{1, 9}, {3, 3}, {9, 1}, {9, 9}}
	front, err := ParetoFront(costs)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) != 3 {
		t.Errorf("front = %v, want 3 members", front)
	}
	i, err := BestInPareto(costs, []float64{1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if i != 1 {
		t.Errorf("BestInPareto = %d, want 1", i)
	}
	k, err := KneePoint(costs[:3])
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Errorf("knee = %d, want 1", k)
	}
	e, err := EpsilonConstraint(costs, 0, []float64{math.Inf(1), 5})
	if err != nil {
		t.Fatal(err)
	}
	if e != 1 {
		t.Errorf("epsilon = %d, want 1", e)
	}
	l, err := Lexicographic(costs, []int{1, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l != 2 {
		t.Errorf("lexicographic = %d, want 2", l)
	}
	s, err := WeightedSum([]float64{2, 4}, []float64{1, 1})
	if err != nil || s != 3 {
		t.Errorf("WeightedSum = %v, %v", s, err)
	}
}

func TestFacadeThreeCloudAndChaos(t *testing.T) {
	fed, err := NewThreeCloudFederation(72)
	if err != nil {
		t.Fatal(err)
	}
	if len(fed.Sites) != 3 {
		t.Fatalf("sites = %d", len(fed.Sites))
	}
	cal, err := Calibrate(fed, 0.004, 72)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := NewScaledExecutor(fed, cal, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	flaky, err := NewFlakyExecutor(exec, 0.3, 72)
	if err != nil {
		t.Fatal(err)
	}
	retry, err := NewRetryingExecutor(flaky, 8)
	if err != nil {
		t.Fatal(err)
	}
	plan := Plan{Query: QueryQ13, JoinAtLeft: true, NodesLeft: 2, NodesRight: 2}
	out, err := retry.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if out.TimeS <= 0 {
		t.Fatal("degenerate outcome")
	}
}

func TestFacadeTPCHAndFullExecutor(t *testing.T) {
	db, err := GenerateTPCH(0.003, 73)
	if err != nil {
		t.Fatal(err)
	}
	if db.TotalBytes() <= 0 {
		t.Fatal("empty database")
	}
	fed, err := NewDefaultFederation(73)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewFullExecutor(fed, db)
	out, err := ex.Execute(Plan{Query: QueryQ14, JoinAtLeft: true, NodesLeft: 2, NodesRight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Result == nil || len(out.Result.Rows) != 1 {
		t.Fatal("Q14 result missing")
	}
}

func TestFacadeProviders(t *testing.T) {
	for _, p := range []*Provider{Amazon(), Microsoft(), Google()} {
		if len(p.Instances) == 0 {
			t.Errorf("%s catalog empty", p.Name)
		}
	}
	if HiveProfile().Name != "hive" || PostgresProfile().Name != "postgres" || SparkProfile().Name != "spark" {
		t.Error("engine profiles misnamed")
	}
	if len(AllQueries) != 4 {
		t.Errorf("AllQueries = %v", AllQueries)
	}
}

func TestFacadeEvalHarness(t *testing.T) {
	h, err := NewEvalHarness(74)
	if err != nil {
		t.Fatal(err)
	}
	models, err := PaperModels(74)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Run(EvalConfig{Query: QueryQ17, SF: 0.05, HistorySize: 25, TestQueries: 8, Seed: 74}, models)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 5 {
		t.Errorf("scored %d models", len(res.Scores))
	}
}
