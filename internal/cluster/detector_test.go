package cluster

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeProbe is a controllable probe: per-peer pass/fail toggled at will.
type fakeProbe struct {
	mu   sync.Mutex
	fail map[string]bool
}

func (f *fakeProbe) probe(_ context.Context, peer Member) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail[peer.ID] {
		return errors.New("probe refused")
	}
	return nil
}

func (f *fakeProbe) set(id string, failing bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fail[id] = failing
}

func waitStatus(t *testing.T, d *Detector, id string, want PeerStatus) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if d.Status(id) == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("peer %s never reached %v (currently %v)", id, want, d.Status(id))
}

func TestDetectorTransitions(t *testing.T) {
	fp := &fakeProbe{fail: map[string]bool{}}
	peers := []Member{{ID: "b", Addr: "http://b"}, {ID: "c", Addr: "http://c"}}
	d := NewDetector(DetectorConfig{
		ProbeInterval: 2 * time.Millisecond,
		SuspectAfter:  2,
		DownAfter:     4,
	}, peers, fp.probe)

	var mu sync.Mutex
	var transitions []string
	d.OnTransition = func(peer Member, from, to PeerStatus) {
		mu.Lock()
		transitions = append(transitions, peer.ID+":"+from.String()+"->"+to.String())
		mu.Unlock()
	}
	d.Start()
	defer d.Stop()

	// All healthy: stays up.
	time.Sleep(20 * time.Millisecond)
	if got := d.Status("b"); got != PeerUp {
		t.Fatalf("healthy peer b status %v, want up", got)
	}

	// Kill b's probes: suspect after 2 misses, down after 4.
	fp.set("b", true)
	waitStatus(t, d, "b", PeerSuspect)
	if !d.AnySuspect() {
		t.Fatal("AnySuspect() = false while b is suspect")
	}
	waitStatus(t, d, "b", PeerDown)
	if d.AnySuspect() {
		t.Fatal("AnySuspect() = true after b moved past suspect to down")
	}
	if got := d.Status("c"); got != PeerUp {
		t.Fatalf("peer c status %v, want up (its probes never failed)", got)
	}

	// Recovery: one answered probe snaps b straight back to up.
	fp.set("b", false)
	waitStatus(t, d, "b", PeerUp)

	mu.Lock()
	defer mu.Unlock()
	want := []string{"b:up->suspect", "b:suspect->down", "b:down->up"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestDetectorSnapshotAndUnknownPeer(t *testing.T) {
	fp := &fakeProbe{fail: map[string]bool{"b": true}}
	d := NewDetector(DetectorConfig{
		ProbeInterval: 2 * time.Millisecond,
		SuspectAfter:  1,
		DownAfter:     2,
	}, []Member{{ID: "b", Addr: "http://b"}}, fp.probe)
	d.Start()
	defer d.Stop()

	waitStatus(t, d, "b", PeerDown)
	snap := d.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d peers, want 1", len(snap))
	}
	h := snap["b"]
	if h.Status != PeerDown || h.Misses < 2 || h.Member.Addr != "http://b" {
		t.Fatalf("snapshot for b = %+v", h)
	}
	// The local node (or any unknown ID) reads as up: the detector only
	// renders judgment on peers it probes.
	if got := d.Status("self"); got != PeerUp {
		t.Fatalf("unknown peer status %v, want up", got)
	}
}

func TestDetectorProbeCallbackAndStop(t *testing.T) {
	fp := &fakeProbe{fail: map[string]bool{}}
	d := NewDetector(DetectorConfig{ProbeInterval: 2 * time.Millisecond},
		[]Member{{ID: "b"}}, fp.probe)
	var seen atomic.Int32
	d.OnProbe = func(peer Member, rtt time.Duration, err error) {
		if peer.ID != "b" || err != nil || rtt < 0 {
			t.Errorf("unexpected probe observation: peer=%s rtt=%v err=%v", peer.ID, rtt, err)
		}
		seen.Add(1)
	}
	d.Start()
	d.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for seen.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if seen.Load() < 3 {
		t.Fatalf("observed only %d probes", seen.Load())
	}
	d.Stop()
	d.Stop() // idempotent
}

func TestDetectorConfigDefaults(t *testing.T) {
	var c DetectorConfig
	c.setDefaults()
	if c.ProbeInterval != time.Second || c.ProbeTimeout != time.Second {
		t.Fatalf("interval/timeout defaults: %v/%v", c.ProbeInterval, c.ProbeTimeout)
	}
	if c.SuspectAfter != 3 || c.DownAfter != 6 {
		t.Fatalf("threshold defaults: %d/%d", c.SuspectAfter, c.DownAfter)
	}
	if c.MaxBackoff != 8*time.Second {
		t.Fatalf("backoff default: %v", c.MaxBackoff)
	}
	// DownAfter must always exceed SuspectAfter.
	c2 := DetectorConfig{SuspectAfter: 5, DownAfter: 2}
	c2.setDefaults()
	if c2.DownAfter <= c2.SuspectAfter {
		t.Fatalf("DownAfter %d not above SuspectAfter %d", c2.DownAfter, c2.SuspectAfter)
	}
}
