package cluster

import (
	"fmt"
	"testing"
)

func testMembers(n int) []Member {
	ms := make([]Member, n)
	for i := range ms {
		ms[i] = Member{ID: fmt.Sprintf("n%d", i+1), Addr: fmt.Sprintf("http://10.0.0.%d:8642", i+1)}
	}
	return ms
}

func tenantNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("federation-%04d", i)
	}
	return out
}

// Determinism: every node that knows the same member set must compute
// the same placement, regardless of the order members were listed in.
func TestRingDeterministicAcrossBuilds(t *testing.T) {
	ms := testMembers(5)
	a, err := NewRing(ms, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Same set, reversed declaration order.
	rev := make([]Member, len(ms))
	for i, m := range ms {
		rev[len(ms)-1-i] = m
	}
	b, err := NewRing(rev, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, fed := range tenantNames(500) {
		if ao, bo := a.Owner(fed), b.Owner(fed); ao != bo {
			t.Fatalf("placement of %q differs across builds: %v vs %v", fed, ao, bo)
		}
	}
}

// Minimal movement: adding or removing one of N members must move at
// most ~2/N of the keys (consistent hashing's defining property; the
// factor 2 leaves slack for vnode variance).
func TestRingMinimalMovement(t *testing.T) {
	const nKeys = 2000
	keys := tenantNames(nKeys)
	for _, n := range []int{3, 5, 8} {
		ms := testMembers(n)
		before, err := NewRing(ms, 128)
		if err != nil {
			t.Fatal(err)
		}
		grown, err := NewRing(append(testMembers(n), Member{ID: "n999", Addr: "x"}), 128)
		if err != nil {
			t.Fatal(err)
		}
		shrunk, err := NewRing(ms[:n-1], 128)
		if err != nil {
			t.Fatal(err)
		}
		var movedJoin, movedLeave int
		for _, k := range keys {
			o := before.Owner(k)
			if grown.Owner(k) != o {
				movedJoin++
			}
			if shrunk.Owner(k) != o {
				movedLeave++
			}
		}
		// Join: only keys captured by the new member move; expected
		// fraction 1/(n+1), allowed 2/(n+1).
		if limit := 2 * nKeys / (n + 1); movedJoin > limit {
			t.Errorf("n=%d: join moved %d/%d keys, limit %d", n, movedJoin, nKeys, limit)
		}
		// Leave: only the departed member's keys move; expected 1/n,
		// allowed 2/n.
		if limit := 2 * nKeys / n; movedLeave > limit {
			t.Errorf("n=%d: leave moved %d/%d keys, limit %d", n, movedLeave, nKeys, limit)
		}
		// And every key moved by the join must now live on the joiner.
		for _, k := range keys {
			if g := grown.Owner(k); g != before.Owner(k) && g.ID != "n999" {
				t.Fatalf("join moved %q to %v, not the new member", k, g)
			}
		}
	}
}

// Placement balance: with 128 vnodes no member should own a wildly
// disproportionate share. This is a sanity bound (3x fair share), not a
// tight one — the guarantee of interest is movement, not perfection.
func TestRingRoughBalance(t *testing.T) {
	r, err := NewRing(testMembers(4), 128)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const nKeys = 4000
	for _, k := range tenantNames(nKeys) {
		counts[r.Owner(k).ID]++
	}
	for id, c := range counts {
		if c > 3*nKeys/4 {
			t.Errorf("member %s owns %d/%d keys", id, c, nKeys)
		}
		if c == 0 {
			t.Errorf("member %s owns nothing", id)
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]Member{{ID: ""}}, 0); err == nil {
		t.Error("empty member ID accepted")
	}
	if _, err := NewRing([]Member{{ID: "a"}, {ID: "a"}}, 0); err == nil {
		t.Error("duplicate member ID accepted")
	}
}

func TestNextDistinct(t *testing.T) {
	r, err := NewRing(testMembers(3), 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range tenantNames(200) {
		owner := r.Owner(k)
		standby, ok := r.NextDistinct(k, owner.ID)
		if !ok {
			t.Fatalf("no standby for %q in a 3-member ring", k)
		}
		if standby.ID == owner.ID {
			t.Fatalf("standby for %q equals owner %s", k, owner.ID)
		}
	}
	solo, err := NewRing(testMembers(1), 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := solo.NextDistinct("x", "n1"); ok {
		t.Error("single-member ring produced a standby")
	}
}

func TestTableOverridesAndEpochs(t *testing.T) {
	r, err := NewRing(testMembers(3), 64)
	if err != nil {
		t.Fatal(err)
	}
	t0 := NewTable(r)
	if t0.Epoch() != 1 {
		t.Fatalf("boot epoch = %d, want 1", t0.Epoch())
	}
	fed := "paper"
	ringOwner := t0.Owner(fed)
	// Move fed to a different member.
	var target string
	for _, m := range r.Members() {
		if m.ID != ringOwner.ID {
			target = m.ID
			break
		}
	}
	t1, ok := t0.WithOverride(fed, target)
	if !ok {
		t.Fatal("override to a known member rejected")
	}
	if t1.Epoch() != 2 {
		t.Fatalf("epoch after override = %d, want 2", t1.Epoch())
	}
	if got := t1.Owner(fed).ID; got != target {
		t.Fatalf("overridden owner = %s, want %s", got, target)
	}
	// Original table untouched (copy-on-write).
	if got := t0.Owner(fed); got != ringOwner {
		t.Fatalf("t0 mutated: owner now %v", got)
	}
	// Standby of an overridden tenant differs from the new owner.
	if sb, ok := t1.Standby(fed); !ok || sb.ID == target {
		t.Fatalf("standby %v invalid for overridden owner %s", sb, target)
	}
	// Unknown member rejected.
	if _, ok := t1.WithOverride(fed, "nope"); ok {
		t.Error("override to unknown member accepted")
	}
	// Epoch adoption never goes backwards.
	if t2 := t1.WithEpochAtLeast(1); t2.Epoch() != t1.Epoch() {
		t.Errorf("WithEpochAtLeast lowered the epoch to %d", t2.Epoch())
	}
	if t2 := t1.WithEpochAtLeast(9); t2.Epoch() != 9 || t2.Owner(fed).ID != target {
		t.Errorf("WithEpochAtLeast(9) = epoch %d owner %s", t2.Epoch(), t2.Owner(fed).ID)
	}
	// Round-trip the override set through the wire form.
	t3 := t0.WithOverrides(t1.Epoch(), t1.Overrides())
	if t3.Owner(fed).ID != target || t3.Epoch() != t1.Epoch() {
		t.Errorf("WithOverrides round-trip: epoch %d owner %s", t3.Epoch(), t3.Owner(fed).ID)
	}
}

// The routing lookup is on every request path of every non-owner and
// the owner alike; it must not allocate.
func TestOwnerLookupZeroAllocs(t *testing.T) {
	r, err := NewRing(testMembers(5), 128)
	if err != nil {
		t.Fatal(err)
	}
	tab, _ := NewTable(r).WithOverride("federation-0003", "n1")
	keys := tenantNames(16)
	var sink Member
	allocs := testing.AllocsPerRun(1000, func() {
		for _, k := range keys {
			sink = tab.Owner(k)
		}
	})
	if allocs != 0 {
		t.Fatalf("Table.Owner allocates %.1f times per 16 lookups, want 0", allocs)
	}
	_ = sink
}
