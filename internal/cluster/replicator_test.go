package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collectShip is a ShipFunc capturing delivered frames in order.
type collectShip struct {
	mu     sync.Mutex
	frames []byte
	next   uint64
	calls  int
	fail   error
}

func (c *collectShip) ship(shard string, from uint64, frames []byte, count int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.fail != nil {
		return c.fail
	}
	if from != c.next {
		return errors.New("ship out of order")
	}
	c.frames = append(c.frames, frames...)
	c.next = from + uint64(count)
	return nil
}

func TestReplicatorShipsInOrderAndWaits(t *testing.T) {
	c := &collectShip{}
	r := NewReplicator(c.ship)
	r.Arm("Q12", 0)
	var want []byte
	for seq := uint64(0); seq < 50; seq++ {
		frame := []byte{byte(seq), byte(seq >> 8), 0xab}
		want = append(want, frame...)
		r.AppendFrame("Q12", seq, frame)
	}
	for seq := uint64(0); seq < 50; seq++ {
		if err := r.WaitFrame("Q12", seq); err != nil {
			t.Fatalf("WaitFrame(%d): %v", seq, err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if string(c.frames) != string(want) {
		t.Fatalf("shipped bytes differ: got %d bytes, want %d", len(c.frames), len(want))
	}
	if c.next != 50 {
		t.Fatalf("standby at seq %d, want 50", c.next)
	}
}

func TestReplicatorDisarmedDropsEverything(t *testing.T) {
	c := &collectShip{}
	r := NewReplicator(c.ship)
	r.AppendFrame("Q12", 0, []byte{1})
	if err := r.WaitFrame("Q12", 0); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.calls != 0 {
		t.Fatalf("disarmed shard shipped %d times", c.calls)
	}
}

func TestReplicatorDegradeOnShipFailure(t *testing.T) {
	c := &collectShip{fail: errors.New("standby down")}
	r := NewReplicator(c.ship)
	degraded := make(chan string, 1)
	r.OnDegrade = func(shard string, err error) { degraded <- shard }
	r.Arm("Q12", 0)
	r.AppendFrame("Q12", 0, []byte{1})
	select {
	case sh := <-degraded:
		if sh != "Q12" {
			t.Fatalf("degraded shard %q", sh)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnDegrade never fired")
	}
	if !r.Degraded("Q12") {
		t.Fatal("shard not marked degraded")
	}
	// Waits no longer block, appends no longer ship.
	if err := r.WaitFrame("Q12", 99); err != nil {
		t.Fatalf("degraded WaitFrame: %v", err)
	}
	r.AppendFrame("Q12", 1, []byte{2})
	// Re-arming after a fresh full sync resumes streaming.
	c.mu.Lock()
	c.fail = nil
	c.next = 10
	c.mu.Unlock()
	r.Arm("Q12", 10)
	r.AppendFrame("Q12", 10, []byte{3})
	if err := r.WaitFrame("Q12", 10); err != nil {
		t.Fatal(err)
	}
	if !r.Streaming("Q12") {
		t.Fatal("re-armed shard not streaming")
	}
}

func TestReplicatorDegradeOnSequenceGap(t *testing.T) {
	c := &collectShip{}
	r := NewReplicator(c.ship)
	r.Arm("Q12", 0)
	r.AppendFrame("Q12", 0, []byte{1})
	if err := r.WaitFrame("Q12", 0); err != nil {
		t.Fatal(err)
	}
	// Skip seq 1: the mirror can no longer promise a contiguous suffix.
	r.AppendFrame("Q12", 2, []byte{3})
	if !r.Degraded("Q12") {
		t.Fatal("sequence gap did not degrade the stream")
	}
}

func TestReplicatorHoldBuffersUntilRelease(t *testing.T) {
	c := &collectShip{next: 5}
	r := NewReplicator(c.ship)
	r.Hold("Q12", 5)
	r.AppendFrame("Q12", 5, []byte{1})
	r.AppendFrame("Q12", 6, []byte{2})
	// Nothing ships while held, but acks are NOT blocked: until the
	// full sync completes the shard is in its local-durability window,
	// so a hung standby must not stall the write path.
	waited := make(chan struct{})
	go func() {
		_ = r.WaitFrame("Q12", 5)
		close(waited)
	}()
	select {
	case <-waited:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitFrame blocked on a held shard")
	}
	time.Sleep(10 * time.Millisecond)
	c.mu.Lock()
	if c.calls != 0 {
		t.Fatalf("held shard shipped %d times", c.calls)
	}
	c.mu.Unlock()
	r.Release("Q12")
	// Once streaming, acks wait for shipment again.
	if err := r.WaitFrame("Q12", 6); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if string(c.frames) != string([]byte{1, 2}) || c.next != 7 {
		t.Fatalf("after release: frames=%v next=%d", c.frames, c.next)
	}
}

func TestReplicatorHeldBufferOverflowDegrades(t *testing.T) {
	c := &collectShip{}
	r := NewReplicator(c.ship)
	var degraded atomic.Bool
	r.OnDegrade = func(string, error) { degraded.Store(true) }
	r.Hold("Q12", 0)
	// A standby hung mid-sync cannot buffer frames forever: past the
	// cap the stream degrades to local durability.
	frame := make([]byte, 1<<20)
	for seq := uint64(0); seq < 16; seq++ {
		r.AppendFrame("Q12", seq, frame)
		if r.Degraded("Q12") {
			break
		}
	}
	if !r.Degraded("Q12") || !degraded.Load() {
		t.Fatal("held buffer grew past the cap without degrading")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.calls != 0 {
		t.Fatalf("degraded held shard shipped %d times", c.calls)
	}
}

func TestReplicatorDisarmReleasesWaiters(t *testing.T) {
	block := make(chan struct{})
	r := NewReplicator(func(shard string, from uint64, frames []byte, count int) error {
		<-block
		return nil
	})
	r.Arm("Q12", 0)
	r.AppendFrame("Q12", 0, []byte{1})
	done := make(chan struct{})
	go func() {
		_ = r.WaitFrame("Q12", 0)
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	r.DisarmAll()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Disarm left a waiter blocked")
	}
	close(block)
}
