package cluster

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// RouteLog persists the epoch-versioned routing overrides to disk so a
// restarted node recovers the last table it committed *before* any
// gossip reaches it — a former owner whose federations were taken over
// while it was down must redirect, not serve, from the moment it boots.
//
// The format is a tiny append log with the same framing and torn-tail
// discipline as the histstore WAL: each record is
//
//	length uint32 LE  payload byte count
//	crc    uint32 LE  CRC-32C (Castagnoli) of the payload
//	payload           JSON {"epoch": N, "overrides": {fed: memberID}}
//
// On open the log replays every intact frame and truncates at the first
// torn or corrupt one, so a crash mid-append loses at most the record
// being written — and that record's table is re-committed by the next
// gossip exchange anyway. Appends are fsynced: table commits are rare
// (ownership changes only), so durability costs nothing measurable.
type RouteLog struct {
	mu        sync.Mutex
	f         *os.File
	path      string
	size      int64
	epoch     uint64
	overrides map[string]string
	closed    bool
}

// routeRecord is the JSON payload of one frame.
type routeRecord struct {
	Epoch     uint64            `json:"epoch"`
	Overrides map[string]string `json:"overrides,omitempty"`
}

const (
	routeFrameHeaderSize = 8
	// maxRoutePayload bounds one record; a larger length field is
	// corruption, not an allocation request.
	maxRoutePayload = 1 << 20
	// routeLogCompactBytes triggers a rewrite keeping only the latest
	// record — the log's whole point is its last intact frame.
	routeLogCompactBytes = 1 << 16
)

var routeCRCTable = crc32.MakeTable(crc32.Castagnoli)

// OpenRouteLog opens (creating if needed) the route log at path and
// recovers the last intact record. The parent directory is created.
func OpenRouteLog(path string) (*RouteLog, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("cluster: route log: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: route log: %w", err)
	}
	l := &RouteLog{f: f, path: path}
	validEnd, err := scanRouteLog(f, func(rec routeRecord) {
		// Frames are appended with monotonically increasing epochs, but
		// take the max anyway — concurrent committers can persist out of
		// order across a crash boundary.
		if rec.Epoch >= l.epoch {
			l.epoch = rec.Epoch
			l.overrides = rec.Overrides
		}
	})
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("cluster: route log %s: %w", path, err)
	}
	// Torn-tail discipline: truncate to the valid prefix so the next
	// append starts on a frame boundary.
	if fi, statErr := f.Stat(); statErr == nil && fi.Size() > validEnd {
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("cluster: route log %s: %w", path, err)
		}
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("cluster: route log %s: %w", path, err)
	}
	l.size = validEnd
	return l, nil
}

// scanRouteLog reads frames in order, invoking fn for each intact one,
// and returns the byte offset at which the valid prefix ends. Torn or
// corrupt frames end the scan with a nil error (the caller truncates
// there); reader I/O failures are returned as errors.
func scanRouteLog(r io.Reader, fn func(routeRecord)) (int64, error) {
	br := bufio.NewReader(r)
	var off int64
	header := make([]byte, routeFrameHeaderSize)
	var payload []byte
	for {
		if _, err := io.ReadFull(br, header); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return off, nil
			}
			return off, err
		}
		n := binary.LittleEndian.Uint32(header)
		crc := binary.LittleEndian.Uint32(header[4:])
		if n == 0 || n > maxRoutePayload {
			return off, nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return off, nil
			}
			return off, err
		}
		if crc32.Checksum(payload, routeCRCTable) != crc {
			return off, nil
		}
		var rec routeRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return off, nil
		}
		fn(rec)
		off += int64(routeFrameHeaderSize) + int64(n)
	}
}

// appendRouteFrame appends one complete frame (header + payload) to buf.
func appendRouteFrame(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, routeCRCTable))
	return append(buf, payload...)
}

// Last returns the recovered (or most recently appended) table state:
// epoch 0 means the log holds nothing.
func (l *RouteLog) Last() (epoch uint64, overrides map[string]string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]string, len(l.overrides))
	for fed, id := range l.overrides {
		out[fed] = id
	}
	return l.epoch, out
}

// Append durably records one committed table. Epochs only move forward:
// an append at or below the last recorded epoch is a no-op (concurrent
// committers may persist out of order; the highest epoch is the one
// that must survive).
func (l *RouteLog) Append(epoch uint64, overrides map[string]string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("cluster: route log %s is closed", l.path)
	}
	if epoch <= l.epoch {
		return nil
	}
	payload, err := json.Marshal(routeRecord{Epoch: epoch, Overrides: overrides})
	if err != nil {
		return fmt.Errorf("cluster: route log: %w", err)
	}
	frame := appendRouteFrame(nil, payload)
	if l.size+int64(len(frame)) > routeLogCompactBytes {
		return l.compactLocked(epoch, overrides, frame)
	}
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("cluster: route log %s: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("cluster: route log %s: %w", l.path, err)
	}
	l.size += int64(len(frame))
	l.epoch = epoch
	l.overrides = overrides
	return nil
}

// compactLocked rewrites the log as a single frame — temp file, fsync,
// rename, exactly the histstore snapshot discipline — and swaps the
// open handle to it. Caller holds l.mu.
func (l *RouteLog) compactLocked(epoch uint64, overrides map[string]string, frame []byte) error {
	tmp := l.path + ".tmp"
	tf, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("cluster: route log compact: %w", err)
	}
	if _, err = tf.Write(frame); err == nil {
		err = tf.Sync()
	}
	if err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("cluster: route log compact: %w", err)
	}
	if err := os.Rename(tmp, l.path); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("cluster: route log compact: %w", err)
	}
	l.f.Close()
	l.f = tf
	l.size = int64(len(frame))
	l.epoch = epoch
	l.overrides = overrides
	return nil
}

// Close releases the file handle; later Appends fail.
func (l *RouteLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}
