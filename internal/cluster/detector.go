package cluster

import (
	"context"
	"sync"
	"time"
)

// PeerStatus is the failure detector's judgment of one peer.
type PeerStatus int32

const (
	// PeerUp: the peer answered its most recent probe.
	PeerUp PeerStatus = iota
	// PeerSuspect: SuspectAfter consecutive probes went unanswered.
	// Suspicion is deliberately a distinct state from death: rebalancing
	// pauses on it, but nothing is promoted yet.
	PeerSuspect
	// PeerDown: DownAfter consecutive probes went unanswered — the
	// detector's confirmed-death verdict, the trigger for auto-failover.
	PeerDown
)

func (s PeerStatus) String() string {
	switch s {
	case PeerUp:
		return "up"
	case PeerSuspect:
		return "suspect"
	case PeerDown:
		return "down"
	}
	return "unknown"
}

// DetectorConfig tunes the probe cadence and the suspicion thresholds.
type DetectorConfig struct {
	// ProbeInterval is the gap between probes to a responsive peer
	// (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round-trip (default ProbeInterval).
	ProbeTimeout time.Duration
	// SuspectAfter is the consecutive missed probes before a peer turns
	// suspect (default 3).
	SuspectAfter int
	// DownAfter is the consecutive missed probes before a suspect peer
	// is declared down (default 2×SuspectAfter).
	DownAfter int
	// MaxBackoff caps the probe gap for a down peer. Probing a corpse
	// backs off exponentially — interval, 2×, 4×, … — so a long outage
	// costs a trickle of probes, not a steady hammer; one answered probe
	// resets the cadence (default 8×ProbeInterval).
	MaxBackoff time.Duration
}

func (c *DetectorConfig) setDefaults() {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.ProbeInterval
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3
	}
	if c.DownAfter <= c.SuspectAfter {
		c.DownAfter = 2 * c.SuspectAfter
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 8 * c.ProbeInterval
	}
}

// Probe checks one peer's liveness; any error counts as a miss. The
// server wires this to GET /v1/cluster/health, which doubles as the
// carrier for the peer's replication-health report.
type Probe func(ctx context.Context, peer Member) error

// PeerHealth is one peer's externally visible detector state.
type PeerHealth struct {
	Member Member
	Status PeerStatus
	// Misses is the current consecutive-failure count.
	Misses int
	// RTT is the last successful probe's round trip (0 before one).
	RTT time.Duration
	// LastUp is when the peer last answered (zero before it ever has).
	LastUp time.Time
}

// Detector is a heartbeat/suspicion failure detector: one goroutine per
// peer probes at ProbeInterval, counts consecutive misses, and walks
// the peer through up → suspect → down. It is transport-agnostic — the
// probe is injected — so it unit-tests without a server.
type Detector struct {
	cfg   DetectorConfig
	probe Probe

	// OnTransition, if set, is invoked (outside locks, from the peer's
	// probe goroutine) on every status change.
	OnTransition func(peer Member, from, to PeerStatus)
	// OnProbe, if set, observes every probe outcome — the metrics hook
	// for RTT histograms.
	OnProbe func(peer Member, rtt time.Duration, err error)

	mu    sync.Mutex
	peers map[string]*peerState

	stop    chan struct{}
	done    sync.WaitGroup
	started bool
}

type peerState struct {
	member Member
	status PeerStatus
	misses int
	rtt    time.Duration
	lastUp time.Time
	// gap is the current probe interval; grows exponentially while the
	// peer is down.
	gap time.Duration
}

// NewDetector builds a detector over peers (the probing node excluded
// by the caller). Call Start to begin probing.
func NewDetector(cfg DetectorConfig, peers []Member, probe Probe) *Detector {
	cfg.setDefaults()
	d := &Detector{
		cfg:   cfg,
		probe: probe,
		peers: make(map[string]*peerState, len(peers)),
		stop:  make(chan struct{}),
	}
	for _, m := range peers {
		d.peers[m.ID] = &peerState{member: m, gap: cfg.ProbeInterval}
	}
	return d
}

// Start launches one probe goroutine per peer. Idempotent.
func (d *Detector) Start() {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return
	}
	d.started = true
	states := make([]*peerState, 0, len(d.peers))
	for _, p := range d.peers {
		states = append(states, p)
	}
	d.mu.Unlock()
	for _, p := range states {
		d.done.Add(1)
		go d.watch(p)
	}
}

// Stop halts probing and waits for the probe goroutines to exit.
func (d *Detector) Stop() {
	d.mu.Lock()
	if !d.started {
		d.mu.Unlock()
		return
	}
	select {
	case <-d.stop:
	default:
		close(d.stop)
	}
	d.mu.Unlock()
	d.done.Wait()
}

// watch is one peer's probe loop.
func (d *Detector) watch(p *peerState) {
	defer d.done.Done()
	timer := time.NewTimer(d.cfg.ProbeInterval)
	defer timer.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-timer.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), d.cfg.ProbeTimeout)
		began := time.Now()
		err := d.probe(ctx, p.member)
		cancel()
		rtt := time.Since(began)
		if d.OnProbe != nil {
			d.OnProbe(p.member, rtt, err)
		}
		timer.Reset(d.record(p, err, rtt))
	}
}

// record folds one probe outcome into the peer's state, fires the
// transition hook, and returns the gap until the next probe.
func (d *Detector) record(p *peerState, err error, rtt time.Duration) time.Duration {
	d.mu.Lock()
	from := p.status
	if err == nil {
		p.misses = 0
		p.status = PeerUp
		p.rtt = rtt
		p.lastUp = time.Now()
		p.gap = d.cfg.ProbeInterval
	} else {
		p.misses++
		switch {
		case p.misses >= d.cfg.DownAfter:
			p.status = PeerDown
			// Exponential backoff while dead, capped: the detector keeps
			// watching for a comeback without hammering the corpse.
			if p.gap *= 2; p.gap > d.cfg.MaxBackoff {
				p.gap = d.cfg.MaxBackoff
			}
		case p.misses >= d.cfg.SuspectAfter:
			p.status = PeerSuspect
		}
	}
	to := p.status
	gap := p.gap
	d.mu.Unlock()
	if to != from && d.OnTransition != nil {
		d.OnTransition(p.member, from, to)
	}
	return gap
}

// Status returns the detector's current judgment of one peer; unknown
// IDs (including the local node) read as up.
func (d *Detector) Status(id string) PeerStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	if p, ok := d.peers[id]; ok {
		return p.status
	}
	return PeerUp
}

// AnySuspect reports whether any peer is currently in the suspect
// state — the rebalancer's pause condition: suspicion means the member
// set is unsettled, and moving tenants under it risks moving them twice.
func (d *Detector) AnySuspect() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, p := range d.peers {
		if p.status == PeerSuspect {
			return true
		}
	}
	return false
}

// Snapshot returns every peer's current health, for observability
// surfaces (metrics gauges, the cluster-status CLI).
func (d *Detector) Snapshot() map[string]PeerHealth {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]PeerHealth, len(d.peers))
	for id, p := range d.peers {
		out[id] = PeerHealth{
			Member: p.member,
			Status: p.status,
			Misses: p.misses,
			RTT:    p.rtt,
			LastUp: p.lastUp,
		}
	}
	return out
}
