package cluster

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRouteLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "routes.wal")
	l, err := OpenRouteLog(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if epoch, _ := l.Last(); epoch != 0 {
		t.Fatalf("fresh log epoch = %d, want 0", epoch)
	}
	if err := l.Append(3, map[string]string{"alpha": "b"}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Append(5, map[string]string{"alpha": "b", "beta": "c"}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, err := OpenRouteLog(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	epoch, overrides := l2.Last()
	if epoch != 5 {
		t.Fatalf("recovered epoch = %d, want 5", epoch)
	}
	if overrides["alpha"] != "b" || overrides["beta"] != "c" || len(overrides) != 2 {
		t.Fatalf("recovered overrides = %v", overrides)
	}
}

func TestRouteLogMonotonicEpochs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "routes.wal")
	l, err := OpenRouteLog(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	if err := l.Append(7, map[string]string{"alpha": "b"}); err != nil {
		t.Fatalf("append: %v", err)
	}
	// Stale and equal epochs are silently skipped: the newest committed
	// table must not be clobbered by a lagging concurrent persist.
	if err := l.Append(6, map[string]string{"alpha": "z"}); err != nil {
		t.Fatalf("stale append: %v", err)
	}
	if err := l.Append(7, map[string]string{"alpha": "z"}); err != nil {
		t.Fatalf("equal append: %v", err)
	}
	epoch, overrides := l.Last()
	if epoch != 7 || overrides["alpha"] != "b" {
		t.Fatalf("got epoch %d overrides %v, want 7/{alpha:b}", epoch, overrides)
	}
}

func TestRouteLogTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "routes.wal")
	l, err := OpenRouteLog(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := l.Append(2, map[string]string{"alpha": "b"}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Append(4, map[string]string{"alpha": "c"}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Chop the tail mid-frame: the epoch-4 record becomes torn and must
	// be discarded, surfacing the epoch-2 table.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}

	l2, err := OpenRouteLog(path)
	if err != nil {
		t.Fatalf("reopen torn: %v", err)
	}
	epoch, overrides := l2.Last()
	if epoch != 2 || overrides["alpha"] != "b" {
		t.Fatalf("after torn tail: epoch %d overrides %v, want 2/{alpha:b}", epoch, overrides)
	}
	// The log must keep working after truncation — append and recover.
	if err := l2.Append(9, map[string]string{"alpha": "d"}); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	l3, err := OpenRouteLog(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l3.Close()
	if epoch, overrides := l3.Last(); epoch != 9 || overrides["alpha"] != "d" {
		t.Fatalf("final state: epoch %d overrides %v, want 9/{alpha:d}", epoch, overrides)
	}
}

func TestRouteLogCorruptPayloadTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "routes.wal")
	l, err := OpenRouteLog(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := l.Append(2, map[string]string{"alpha": "b"}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Append(4, map[string]string{"alpha": "c"}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Flip a byte inside the second frame's payload: CRC mismatch.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	raw[len(raw)-3] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}

	l2, err := OpenRouteLog(path)
	if err != nil {
		t.Fatalf("reopen corrupt: %v", err)
	}
	defer l2.Close()
	if epoch, overrides := l2.Last(); epoch != 2 || overrides["alpha"] != "b" {
		t.Fatalf("after corruption: epoch %d overrides %v, want 2/{alpha:b}", epoch, overrides)
	}
}

func TestRouteLogCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "routes.wal")
	l, err := OpenRouteLog(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Enough appends to blow past the compaction threshold several times.
	overrides := map[string]string{}
	for i := 0; i < 26; i++ {
		overrides[string(rune('a'+i))+"-federation-with-a-reasonably-long-name"] = "member-b"
	}
	var epoch uint64
	for i := 0; i < 200; i++ {
		epoch = uint64(i + 1)
		if err := l.Append(epoch, overrides); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if fi.Size() > routeLogCompactBytes {
		t.Fatalf("log size %d exceeds compaction bound %d", fi.Size(), routeLogCompactBytes)
	}
	l2, err := OpenRouteLog(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	gotEpoch, gotOverrides := l2.Last()
	if gotEpoch != epoch {
		t.Fatalf("recovered epoch %d, want %d", gotEpoch, epoch)
	}
	if len(gotOverrides) != len(overrides) {
		t.Fatalf("recovered %d overrides, want %d", len(gotOverrides), len(overrides))
	}
}

func TestRouteLogAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "routes.wal")
	l, err := OpenRouteLog(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := l.Append(1, nil); err == nil {
		t.Fatal("append after close succeeded, want error")
	}
}
