package cluster

// Table is one immutable version of the cluster routing state: the
// ring, an epoch counter, and a set of overrides recording tenants that
// have been handed off away from their ring position. Tables are
// copy-on-write — mutators return a new *Table with a higher epoch —
// so a server can publish the current table through an atomic pointer
// and route lookups stay lock-free and allocation-free.
//
// Epochs order tables: when two nodes disagree (mid-handoff gossip
// races), the higher epoch wins. Epoch 1 is the boot table; every
// override bump increments it.
type Table struct {
	ring      *Ring
	epoch     uint64
	overrides map[string]int32 // federation -> index into ring.members
}

// NewTable wraps ring in a boot table at epoch 1 with no overrides.
func NewTable(ring *Ring) *Table {
	return &Table{ring: ring, epoch: 1}
}

// Epoch returns the table's version.
func (t *Table) Epoch() uint64 { return t.epoch }

// Ring returns the underlying ring.
func (t *Table) Ring() *Ring { return t.ring }

// Owner returns the member that owns federation fed, honoring
// overrides. Zero allocations.
func (t *Table) Owner(fed string) Member {
	if t.overrides != nil {
		if idx, ok := t.overrides[fed]; ok {
			return t.ring.members[idx]
		}
	}
	return t.ring.Owner(fed)
}

// Standby returns the replication target for fed: the first ring member
// clockwise of fed's position that is not the current owner. ok is
// false on a single-member ring.
func (t *Table) Standby(fed string) (Member, bool) {
	return t.ring.NextDistinct(fed, t.Owner(fed).ID)
}

// Member resolves a member ID.
func (t *Table) Member(id string) (Member, bool) {
	for _, m := range t.ring.members {
		if m.ID == id {
			return m, true
		}
	}
	return Member{}, false
}

// memberIndex returns the position of id in the sorted member set.
func (t *Table) memberIndex(id string) (int32, bool) {
	for i, m := range t.ring.members {
		if m.ID == id {
			return int32(i), true
		}
	}
	return 0, false
}

// WithOverride returns a copy of t at epoch+1 in which fed is owned by
// member ownerID. An override matching the ring placement is recorded
// anyway: the epoch bump is the point (it invalidates stale tables),
// and a later ring change must not silently move the tenant back.
// Returns t unchanged if ownerID is not a member.
func (t *Table) WithOverride(fed, ownerID string) (*Table, bool) {
	idx, ok := t.memberIndex(ownerID)
	if !ok {
		return t, false
	}
	nt := &Table{
		ring:      t.ring,
		epoch:     t.epoch + 1,
		overrides: make(map[string]int32, len(t.overrides)+1),
	}
	for k, v := range t.overrides {
		nt.overrides[k] = v
	}
	nt.overrides[fed] = idx
	return nt, true
}

// WithEpochAtLeast returns t if its epoch already reaches e, or a copy
// bumped to e. Used when adopting gossip: a node that learns of epoch e
// must never again publish a lower one.
func (t *Table) WithEpochAtLeast(e uint64) *Table {
	if t.epoch >= e {
		return t
	}
	nt := &Table{ring: t.ring, epoch: e, overrides: t.overrides}
	return nt
}

// Overrides returns a copy of the override map (federation -> member
// ID), for serialization.
func (t *Table) Overrides() map[string]string {
	if len(t.overrides) == 0 {
		return nil
	}
	out := make(map[string]string, len(t.overrides))
	for fed, idx := range t.overrides {
		out[fed] = t.ring.members[idx].ID
	}
	return out
}

// WithOverrides returns a copy of t at exactly epoch e with the given
// override set (federation -> member ID); unknown member IDs are
// dropped. Used to adopt a peer's gossiped table wholesale.
func (t *Table) WithOverrides(e uint64, overrides map[string]string) *Table {
	nt := &Table{ring: t.ring, epoch: e}
	if len(overrides) > 0 {
		nt.overrides = make(map[string]int32, len(overrides))
		for fed, id := range overrides {
			if idx, ok := t.memberIndex(id); ok {
				nt.overrides[fed] = idx
			}
		}
	}
	return nt
}
