package cluster

import (
	"fmt"
	"sync"
)

// ShipFunc delivers a batch of contiguous raw WAL frames for one shard
// to the standby. from is the sequence number of the first frame in the
// batch; frames is the concatenated on-disk framing (len+crc+payload,
// exactly as histstore wrote them); count is how many frames the batch
// holds. A non-nil error degrades the shard's replication.
type ShipFunc func(shard string, from uint64, frames []byte, count int) error

// replState is a shard's replication mode.
type replState int32

const (
	// replDisarmed: no standby stream; appends are dropped, waits
	// return immediately. The state of every shard before its first
	// full sync and after a handoff away.
	replDisarmed replState = iota
	// replHeld: a full sync is in flight. Frames are buffered (the
	// stream stays contiguous with the sync point) but not shipped
	// until Release confirms the standby imported the snapshot — or
	// Disarm abandons the sync. Acks do NOT wait: until the sync
	// completes the shard is still in its degraded-to-local-durability
	// window, and blocking writes on a standby that may be hung is
	// exactly the stall the held state must not cause.
	replHeld
	// replStreaming: the standby holds a contiguous prefix; new frames
	// are buffered and shipped in batches, and acks wait for shipment.
	replStreaming
	// replDegraded: a ship failed. The stream is abandoned — acks fall
	// back to local durability — until the next full sync re-arms it.
	replDegraded
)

// replShard is the per-shard stream state.
type replShard struct {
	mu    sync.Mutex
	cond  *sync.Cond
	state replState

	buf      []byte // concatenated frames not yet handed to the shipper
	bufFrom  uint64 // seq of the first frame in buf
	bufCount int
	synced   uint64 // every seq < synced is on the standby
	shipping bool   // a shipper goroutine is active
}

// Replicator ships one store's WAL appends to a standby, shard by
// shard. It implements histstore.Mirror: AppendFrame is called under
// the shard lock (so the frame order here is exactly the WAL order) and
// must not block; WaitFrame is called outside the lock before a write
// is acknowledged and blocks until the frame is shipped — or returns
// immediately once the shard is degraded, trading replica currency for
// availability rather than failing writes when the standby is down.
type Replicator struct {
	ship ShipFunc
	// OnDegrade, if set, is invoked (outside locks) when a shard's
	// stream breaks; the server uses it for logging and metrics.
	OnDegrade func(shard string, err error)

	mu     sync.Mutex
	shards map[string]*replShard
}

// NewReplicator builds a replicator delivering through ship. All shards
// start disarmed; Arm each one after a full sync.
func NewReplicator(ship ShipFunc) *Replicator {
	return &Replicator{ship: ship, shards: make(map[string]*replShard)}
}

func (r *Replicator) shard(name string) *replShard {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.shards[name]
	if !ok {
		s = &replShard{}
		s.cond = sync.NewCond(&s.mu)
		r.shards[name] = s
	}
	return s
}

// Arm marks shard as streaming with the standby holding every frame
// below next. Call it at the exact point the full-sync snapshot was
// cut — under the same lock that orders WAL appends — so the stream is
// contiguous with the shipped state.
func (r *Replicator) Arm(shard string, next uint64) {
	r.arm(shard, next, replStreaming)
}

// Hold is the first half of a two-phase Arm: the stream starts
// buffering at next (call it at the sync cut, under the WAL lock, like
// Arm) but nothing ships until Release confirms the standby actually
// imported the synced state. Without the hold, frames appended during
// the sync transfer could reach the standby before the snapshot they
// extend. Acks are not blocked while held — the shard was running on
// local durability before the sync began and keeps doing so until the
// stream is actually live — so a hung standby can slow only its own
// re-arm, never the write path.
func (r *Replicator) Hold(shard string, next uint64) {
	r.arm(shard, next, replHeld)
}

func (r *Replicator) arm(shard string, next uint64, st replState) {
	s := r.shard(shard)
	s.mu.Lock()
	s.state = st
	s.buf = nil
	s.bufFrom = next
	s.bufCount = 0
	s.synced = next
	s.mu.Unlock()
}

// Release completes a Hold: the standby holds the synced state, so
// buffered frames may ship and acks may proceed. No-op unless the
// shard is held (a concurrent Disarm or degrade wins).
func (r *Replicator) Release(shard string) {
	s := r.shard(shard)
	s.mu.Lock()
	if s.state == replHeld {
		s.state = replStreaming
		if s.bufCount > 0 && !s.shipping {
			s.shipping = true
			go r.run(shard, s)
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Disarm stops shard's stream (handoff away, store close). Pending
// waiters are released.
func (r *Replicator) Disarm(shard string) {
	s := r.shard(shard)
	s.mu.Lock()
	s.state = replDisarmed
	s.buf = nil
	s.bufCount = 0
	s.cond.Broadcast()
	s.mu.Unlock()
}

// DisarmAll disarms every shard.
func (r *Replicator) DisarmAll() {
	r.mu.Lock()
	names := make([]string, 0, len(r.shards))
	for name := range r.shards {
		names = append(names, name)
	}
	r.mu.Unlock()
	for _, name := range names {
		r.Disarm(name)
	}
}

// Degraded reports whether shard's stream has broken since it was last
// armed.
func (r *Replicator) Degraded(shard string) bool {
	s := r.shard(shard)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == replDegraded
}

// Streaming reports whether shard is actively replicating.
func (r *Replicator) Streaming(shard string) bool {
	s := r.shard(shard)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == replStreaming
}

// maxBufferedBytes bounds the frames buffered for shipment per shard.
// A held stream no longer blocks acks, so a standby hung mid-sync would
// otherwise let the buffer grow without bound; past this the stream
// degrades to local durability and waits for the next full sync.
const maxBufferedBytes = 8 << 20

// AppendFrame buffers one raw WAL frame for shipment. Called under the
// shard's WAL lock; must not block or ship inline.
func (r *Replicator) AppendFrame(shard string, seq uint64, frame []byte) {
	s := r.shard(shard)
	s.mu.Lock()
	if s.state != replStreaming && s.state != replHeld {
		s.mu.Unlock()
		return
	}
	if want := s.bufFrom + uint64(s.bufCount); seq != want {
		// A discontinuity means the mirror missed frames (e.g. armed
		// against a stale sync point); the stream is no longer an exact
		// suffix, so it must degrade rather than ship a gap.
		s.state = replDegraded
		s.buf = nil
		s.bufCount = 0
		s.cond.Broadcast()
		s.mu.Unlock()
		if r.OnDegrade != nil {
			r.OnDegrade(shard, errSeqGap{shard: shard, want: want, got: seq})
		}
		return
	}
	if len(s.buf)+len(frame) > maxBufferedBytes {
		s.state = replDegraded
		s.buf = nil
		s.bufCount = 0
		s.cond.Broadcast()
		s.mu.Unlock()
		if r.OnDegrade != nil {
			r.OnDegrade(shard, fmt.Errorf("cluster: replication buffer for %s exceeded %d bytes (standby stalled)",
				shard, maxBufferedBytes))
		}
		return
	}
	s.buf = append(s.buf, frame...)
	s.bufCount++
	if s.state == replStreaming && !s.shipping {
		s.shipping = true
		go r.run(shard, s)
	}
	s.mu.Unlock()
}

// run drains the shard's buffer in batches until it is empty or the
// stream breaks. One goroutine per shard at a time (s.shipping).
func (r *Replicator) run(shard string, s *replShard) {
	for {
		s.mu.Lock()
		if s.state != replStreaming || s.bufCount == 0 {
			s.shipping = false
			s.mu.Unlock()
			return
		}
		batch := s.buf
		from := s.bufFrom
		count := s.bufCount
		s.buf = nil
		s.bufFrom = from + uint64(count)
		s.bufCount = 0
		s.mu.Unlock()

		err := r.ship(shard, from, batch, count)

		s.mu.Lock()
		if err != nil {
			s.state = replDegraded
			s.buf = nil
			s.bufCount = 0
			s.shipping = false
			s.cond.Broadcast()
			s.mu.Unlock()
			if r.OnDegrade != nil {
				r.OnDegrade(shard, err)
			}
			return
		}
		if s.state == replStreaming && s.synced < from+uint64(count) {
			s.synced = from + uint64(count)
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// WaitFrame blocks until the frame with sequence seq has been shipped
// to the standby, the shard degrades, or the shard is disarmed. It
// never returns an error: degraded replication falls back to local
// durability by design (the caller's fsync already happened). A held
// shard does not block either — until its full sync completes the
// shard is still in the local-durability window, and a hung standby
// must not stall the write path for the whole sync attempt.
func (r *Replicator) WaitFrame(shard string, seq uint64) error {
	s := r.shard(shard)
	s.mu.Lock()
	for s.state == replStreaming && s.synced <= seq {
		s.cond.Wait()
	}
	s.mu.Unlock()
	return nil
}

// errSeqGap reports a mirror discontinuity.
type errSeqGap struct {
	shard     string
	want, got uint64
}

func (e errSeqGap) Error() string {
	return fmt.Sprintf("cluster: replication stream gap on %s: want seq %d, got %d",
		e.shard, e.want, e.got)
}
