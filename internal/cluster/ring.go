// Package cluster implements the placement and replication machinery
// behind midasd's multi-node mode: a consistent-hash ring with virtual
// nodes that maps federation names to owning replicas, an
// epoch-versioned routing table layered on top (copy-on-write, safe to
// publish through an atomic pointer), and a WAL-frame replicator that
// ships appends to a standby.
//
// The ring is deterministic: every node that knows the same member set
// computes the same placement, so the cluster needs no coordinator —
// routing disagreements are bounded to handoff windows and resolved by
// the table epoch (higher epoch wins).
package cluster

import (
	"fmt"
	"sort"
)

// Member is one midasd replica: a stable identity plus the base URL
// peers and clients reach it at.
type Member struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// DefaultVirtualNodes is the per-member vnode count when RingConfig
// leaves it zero. 128 points per member keeps the expected placement
// imbalance under ~10% for small clusters while a full ring rebuild
// stays microseconds.
const DefaultVirtualNodes = 128

// vnode is one point on the hash circle.
type vnode struct {
	hash   uint64
	member int32 // index into Ring.members
}

// Ring is an immutable consistent-hash ring over a member set. Build
// once with NewRing; lookups are lock-free and allocation-free.
type Ring struct {
	members []Member // sorted by ID
	weights []uint64 // per-member rendezvous seed, parallel to members
	vnodes  []vnode  // sorted by (hash, member ID)
}

// fnv1a64 hashes s with 64-bit FNV-1a. Inlining the loop (rather than
// using hash/fnv) avoids the []byte conversion and keeps Owner at zero
// allocations.
func fnv1a64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// mix64 is the splitmix64 finalizer: a cheap avalanche that decorrelates
// the vnode points of one member and the rendezvous scores of one key.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewRing builds a ring over members with vnodesPer virtual nodes each
// (DefaultVirtualNodes when <= 0). Member IDs must be unique and
// non-empty. The input slice is copied; order does not matter.
func NewRing(members []Member, vnodesPer int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodesPer <= 0 {
		vnodesPer = DefaultVirtualNodes
	}
	ms := append([]Member(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
	for i, m := range ms {
		if m.ID == "" {
			return nil, fmt.Errorf("cluster: member with empty ID")
		}
		if i > 0 && ms[i-1].ID == m.ID {
			return nil, fmt.Errorf("cluster: duplicate member ID %q", m.ID)
		}
	}
	r := &Ring{
		members: ms,
		weights: make([]uint64, len(ms)),
		vnodes:  make([]vnode, 0, len(ms)*vnodesPer),
	}
	for i, m := range ms {
		seed := fnv1a64(m.ID)
		r.weights[i] = seed
		for v := 0; v < vnodesPer; v++ {
			r.vnodes = append(r.vnodes, vnode{
				hash:   mix64(seed + uint64(v)*0x9e3779b97f4a7c15),
				member: int32(i),
			})
		}
	}
	// Sort by hash; ties (astronomically rare, but placement must be
	// identical on every node) break by member ID so the slice order is
	// fully determined by the member set.
	sort.Slice(r.vnodes, func(i, j int) bool {
		a, b := r.vnodes[i], r.vnodes[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return r.members[a.member].ID < r.members[b.member].ID
	})
	return r, nil
}

// Members returns the sorted member set (shared slice; do not mutate).
func (r *Ring) Members() []Member { return r.members }

// Size returns the number of members.
func (r *Ring) Size() int { return len(r.members) }

// succ returns the index of the first vnode clockwise of key's hash
// (wrapping), i.e. the start of the search for the key's owner.
func (r *Ring) succ(key string) int {
	h := fnv1a64(key)
	// Inline binary search (sort.Search's func value would allocate on
	// capture-free paths anyway; this keeps the lookup branch-predictable).
	lo, hi := 0, len(r.vnodes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.vnodes[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.vnodes) {
		lo = 0
	}
	// Rendezvous tiebreak: if several vnodes collide on the exact same
	// hash point, the owner is the member with the highest mixed
	// (weight, key-hash) score rather than whichever sorted first — the
	// score depends only on (member ID, key), so every node agrees and
	// no single member captures all collision points.
	if end := lo + 1; end < len(r.vnodes) && r.vnodes[end].hash == r.vnodes[lo].hash {
		best, bestScore := lo, mix64(r.weights[r.vnodes[lo].member]^h)
		for i := end; i < len(r.vnodes) && r.vnodes[i].hash == r.vnodes[lo].hash; i++ {
			if s := mix64(r.weights[r.vnodes[i].member] ^ h); s > bestScore {
				best, bestScore = i, s
			}
		}
		lo = best
	}
	return lo
}

// Owner returns the member owning key. Zero allocations.
func (r *Ring) Owner(key string) Member {
	return r.members[r.vnodes[r.succ(key)].member]
}

// NextDistinct walks clockwise from key's position and returns the
// first member whose ID differs from excludeID — the natural standby
// for a key owned by excludeID. ok is false when every member is
// excluded (single-member ring).
func (r *Ring) NextDistinct(key, excludeID string) (Member, bool) {
	start := r.succ(key)
	n := len(r.vnodes)
	for i := 0; i < n; i++ {
		m := r.members[r.vnodes[(start+i)%n].member]
		if m.ID != excludeID {
			return m, true
		}
	}
	return Member{}, false
}
