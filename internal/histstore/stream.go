package histstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
)

// Shard transfer wire format — the histstore side of cluster handoff
// and standby replication. A shard export is a short sequence of
// CRC-framed sections, each
//
//	kind uint32 LE  sectionSnapshot or sectionWAL
//	len  uint32 LE  payload byte count
//	crc  uint32 LE  CRC-32C (Castagnoli) of the payload
//	payload
//
// followed by a sectionEnd marker with an empty payload. The snapshot
// payload is the shard's snapshot.json bytes verbatim (empty when the
// shard has never checkpointed) and the WAL payload is the raw wal.log
// framing — the same bytes scanWAL replays, so the importing side
// recovers with exactly the code path a restart uses.

const (
	sectionSnapshot = 1
	sectionWAL      = 2
	sectionEnd      = 3

	sectionHeaderSize = 12
	// maxSectionPayload bounds one section (a full snapshot or WAL);
	// far above any real shard, far below an allocation attack.
	maxSectionPayload = 1 << 30
)

// writeSection frames one section onto w.
func writeSection(w io.Writer, kind uint32, payload []byte) error {
	var hdr [sectionHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], kind)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readSection reads and CRC-validates one section from r.
func readSection(r io.Reader) (kind uint32, payload []byte, err error) {
	var hdr [sectionHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	kind = binary.LittleEndian.Uint32(hdr[0:])
	n := binary.LittleEndian.Uint32(hdr[4:])
	crc := binary.LittleEndian.Uint32(hdr[8:])
	if n > maxSectionPayload {
		return 0, nil, fmt.Errorf("histstore: section of %d bytes exceeds the %d limit", n, maxSectionPayload)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	if crc32.Checksum(payload, crcTable) != crc {
		return 0, nil, errors.New("histstore: section crc mismatch")
	}
	return kind, payload, nil
}

// ExportShard streams the named open shard's durable state — snapshot
// plus WAL — to w in the section format above. The shard lock is held
// for the duration, so the export is a consistent point-in-time cut:
// no append lands between the exported WAL tail and the cut.
//
// arm, when non-nil, is invoked under that same lock with the sequence
// number of the next append — the exact point a replication mirror must
// resume from for its stream to be contiguous with the exported state.
func (s *Store) ExportShard(name string, w io.Writer, arm func(next uint64)) error {
	s.mu.Lock()
	sh := s.shards[name]
	s.mu.Unlock()
	if sh == nil {
		return fmt.Errorf("histstore: export of unopened shard %q", name)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.broken != nil {
		return fmt.Errorf("histstore: shard unusable: %w", sh.broken)
	}
	snap, err := os.ReadFile(filepath.Join(sh.dir, snapshotName))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("histstore: export %q: %w", name, err)
	}
	wal, err := os.ReadFile(filepath.Join(sh.dir, walName))
	if err != nil {
		return fmt.Errorf("histstore: export %q: %w", name, err)
	}
	if err := writeSection(w, sectionSnapshot, snap); err != nil {
		return fmt.Errorf("histstore: export %q: %w", name, err)
	}
	if err := writeSection(w, sectionWAL, wal); err != nil {
		return fmt.Errorf("histstore: export %q: %w", name, err)
	}
	if err := writeSection(w, sectionEnd, nil); err != nil {
		return fmt.Errorf("histstore: export %q: %w", name, err)
	}
	if arm != nil {
		arm(sh.nextSeq)
	}
	return nil
}

// ImportShard installs an exported shard stream as the named shard's
// durable state, replacing whatever the shard directory held (stale
// state from an earlier ownership of the same tenant must not survive
// a re-import). The shard must not be open; open it afterwards with
// OpenHistory, which replays the imported state through the ordinary
// recovery path.
func (s *Store) ImportShard(name string, r io.Reader) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, open := s.shards[name]; open {
		return fmt.Errorf("histstore: import into open shard %q", name)
	}
	s.closeReplica(name)
	var snap, wal []byte
	var haveSnap, haveWAL bool
	for {
		kind, payload, err := readSection(r)
		if err != nil {
			return fmt.Errorf("histstore: import %q: %w", name, err)
		}
		switch kind {
		case sectionSnapshot:
			snap, haveSnap = payload, true
		case sectionWAL:
			wal, haveWAL = payload, true
		case sectionEnd:
			if !haveSnap || !haveWAL {
				return fmt.Errorf("histstore: import %q: truncated stream", name)
			}
			return s.installShard(name, snap, wal)
		default:
			return fmt.Errorf("histstore: import %q: unknown section kind %d", name, kind)
		}
	}
}

// installShard validates and atomically writes an imported shard's
// files. Caller holds s.mu.
func (s *Store) installShard(name string, snap, wal []byte) error {
	// Validate before touching disk: the snapshot must parse and the
	// WAL must be wholly intact — an export is a clean cut, so a torn
	// tail here is transfer corruption, not a crash artifact.
	if len(snap) > 0 {
		if _, err := loadSnapshotBytes(snap); err != nil {
			return fmt.Errorf("histstore: import %q: snapshot: %w", name, err)
		}
	}
	validEnd, err := scanWAL(bytes.NewReader(wal), func(uint64, core.Observation) error { return nil })
	if err != nil {
		return fmt.Errorf("histstore: import %q: wal: %w", name, err)
	}
	if validEnd != int64(len(wal)) {
		return fmt.Errorf("histstore: import %q: wal corrupt at byte %d of %d", name, validEnd, len(wal))
	}
	dir := s.shardDir(name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("histstore: import %q: %w", name, err)
	}
	snapPath := filepath.Join(dir, snapshotName)
	if len(snap) > 0 {
		if err := writeFileDurable(snapPath, snap); err != nil {
			return fmt.Errorf("histstore: import %q: %w", name, err)
		}
	} else if err := os.Remove(snapPath); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("histstore: import %q: %w", name, err)
	}
	if err := writeFileDurable(filepath.Join(dir, walName), wal); err != nil {
		return fmt.Errorf("histstore: import %q: %w", name, err)
	}
	return nil
}

// writeFileDurable writes path atomically: temp file, fsync, rename.
func writeFileDurable(path string, data []byte) error {
	tmp := path + tmpSuffix
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err = f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// ErrReplicaGap reports that a replica frame batch starts beyond the
// replica's current tail — frames are missing, and appending the batch
// would record a hole. The stream must be re-established with a full
// sync (ImportShard).
var ErrReplicaGap = errors.New("histstore: replica frame batch leaves a sequence gap")

// replica is the standby-side state of one mirrored shard: an open WAL
// handle positioned at the tail plus the next expected sequence.
type replica struct {
	f    *os.File
	next uint64
}

// openReplica loads (or creates) the replica state for name. Caller
// holds s.replMu.
func (s *Store) openReplica(name string) (*replica, error) {
	if r, ok := s.replicas[name]; ok {
		return r, nil
	}
	dir := s.shardDir(name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	next := uint64(0)
	if raw, err := os.ReadFile(filepath.Join(dir, snapshotName)); err == nil {
		n, err := loadSnapshotBytes(raw)
		if err != nil {
			return nil, fmt.Errorf("replica snapshot: %w", err)
		}
		next = n
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	validEnd, err := scanWAL(f, func(seq uint64, _ core.Observation) error {
		// Replica WALs are written in order, so the last intact frame
		// defines the tail (duplicates below next were overlap-skipped
		// at append time and cannot appear).
		if seq >= next {
			next = seq + 1
		}
		return nil
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	// Same torn-tail policy as a real open: truncate to the valid
	// prefix so the next append starts on a frame boundary.
	if fi, statErr := f.Stat(); statErr == nil && fi.Size() > validEnd {
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	r := &replica{f: f, next: next}
	if s.replicas == nil {
		s.replicas = make(map[string]*replica)
	}
	s.replicas[name] = r
	return r, nil
}

// closeReplica drops the cached replica handle for name, if any.
// Callers hold s.mu (lock order: s.mu, then s.replMu).
func (s *Store) closeReplica(name string) {
	s.replMu.Lock()
	if r, ok := s.replicas[name]; ok {
		r.f.Close()
		delete(s.replicas, name)
	}
	s.replMu.Unlock()
}

// AppendReplicaFrames appends a batch of contiguous raw WAL frames —
// exactly as a Mirror received them — to the named shard's replica WAL.
// from is the sequence of the batch's first frame. Overlap with frames
// already on the replica is skipped (shipping retries may resend);
// a batch starting beyond the replica tail fails with ErrReplicaGap.
// Returns the replica's next expected sequence.
//
// The shard must not be open as a live history on this store.
func (s *Store) AppendReplicaFrames(name string, from uint64, frames []byte) (uint64, error) {
	// replMu is acquired while s.mu is still held: a takeover's
	// OpenHistory (which runs under s.mu and closes the replica handle
	// under replMu) cannot interleave between the open-check and the
	// append, so a replica handle can never be re-opened on a wal.log a
	// now-live shard is appending to.
	s.mu.Lock()
	if _, open := s.shards[name]; open {
		s.mu.Unlock()
		return 0, fmt.Errorf("histstore: replica append to open shard %q", name)
	}
	s.replMu.Lock()
	s.mu.Unlock()
	defer s.replMu.Unlock()
	r, err := s.openReplica(name)
	if err != nil {
		return 0, fmt.Errorf("histstore: replica %q: %w", name, err)
	}
	if from > r.next {
		return r.next, fmt.Errorf("%w: shard %q has %d, batch starts at %d", ErrReplicaGap, name, r.next, from)
	}
	// Walk the batch's framing to find where the overlap ends, checking
	// that the sequence numbers are in fact contiguous from `from`.
	skip := int64(0)
	seq := from
	validEnd, err := scanWAL(bytes.NewReader(frames), func(gotSeq uint64, _ core.Observation) error {
		if gotSeq != seq {
			return fmt.Errorf("frame %d out of order (want %d)", gotSeq, seq)
		}
		seq++
		if gotSeq < r.next {
			skip = -1 // marker: recompute below via a second pass
		}
		return nil
	})
	if err != nil {
		return r.next, fmt.Errorf("histstore: replica %q: %w", name, err)
	}
	if validEnd != int64(len(frames)) {
		return r.next, fmt.Errorf("histstore: replica %q: corrupt frame batch at byte %d of %d", name, validEnd, len(frames))
	}
	if seq <= r.next {
		return r.next, nil // entire batch already applied
	}
	// Find the byte offset of the first new frame (sequence r.next).
	var offset int64
	if skip != 0 {
		cur := from
		rest := frames
		for cur < r.next {
			n := binary.LittleEndian.Uint32(rest)
			adv := int64(frameHeaderSize) + int64(n)
			offset += adv
			rest = rest[adv:]
			cur++
		}
	}
	if _, err := r.f.Write(frames[offset:]); err != nil {
		return r.next, fmt.Errorf("histstore: replica %q: %w", name, err)
	}
	if s.opts.Fsync || s.opts.GroupCommit {
		// The source counts a shipped frame as replicated; give the
		// replica the same crash durability class as the primary WAL.
		if err := r.f.Sync(); err != nil {
			return r.next, fmt.Errorf("histstore: replica %q: %w", name, err)
		}
	}
	r.next = seq
	return r.next, nil
}

// ReplicaSeq reports the next sequence the named replica shard expects
// (0 for an empty replica). Useful for observability and tests. Like
// AppendReplicaFrames it refuses to touch a shard that is open as a
// live history — opening a replica handle would scan (and possibly
// torn-tail-truncate) a WAL mid-append.
func (s *Store) ReplicaSeq(name string) (uint64, error) {
	s.mu.Lock()
	if _, open := s.shards[name]; open {
		s.mu.Unlock()
		return 0, fmt.Errorf("histstore: replica query of open shard %q", name)
	}
	s.replMu.Lock()
	s.mu.Unlock()
	defer s.replMu.Unlock()
	r, err := s.openReplica(name)
	if err != nil {
		return 0, fmt.Errorf("histstore: replica %q: %w", name, err)
	}
	return r.next, nil
}

// loadSnapshotBytes parses a snapshot document and returns its
// observation count.
func loadSnapshotBytes(raw []byte) (uint64, error) {
	h, err := core.LoadHistory(bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	return uint64(h.Len()), nil
}
