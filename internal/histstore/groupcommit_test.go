package histstore

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// gcObs is a deterministic observation keyed by (writer, index): every
// float is exactly representable, so recovered state can be compared
// for byte-identical equality, not approximate closeness.
func gcObs(writer, i int) core.Observation {
	return core.Observation{
		X:     []float64{float64(writer), float64(i)},
		Costs: []float64{float64(writer) + 0.5, float64(i)*2 + 0.25},
	}
}

func gcOpen(t testing.TB, dir string, opts Options) (*Store, *core.History) {
	t.Helper()
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	h, err := st.OpenHistory("q", 2, []string{"time_s", "money_usd"})
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	return st, h
}

// TestGroupCommitRecoveryEquivalence drives an identical append (and
// mid-stream checkpoint) sequence through a group-commit store and a
// per-append-fsync control, and asserts both recover byte-identical
// state: group commit changes when fsyncs happen, never what is
// recovered.
func TestGroupCommitRecoveryEquivalence(t *testing.T) {
	dirGC, dirCtl := t.TempDir(), t.TempDir()
	stGC, hGC := gcOpen(t, dirGC, Options{GroupCommit: true})
	stCtl, hCtl := gcOpen(t, dirCtl, Options{Fsync: true})
	const n = 120
	for i := 0; i < n; i++ {
		o := gcObs(0, i)
		if err := hGC.Append(o); err != nil {
			t.Fatalf("group-commit append %d: %v", i, err)
		}
		if err := hCtl.Append(o); err != nil {
			t.Fatalf("control append %d: %v", i, err)
		}
		if i == n/2 {
			if err := stGC.CheckpointAll(); err != nil {
				t.Fatal(err)
			}
			if err := stCtl.CheckpointAll(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := stGC.Close(); err != nil {
		t.Fatal(err)
	}
	if err := stCtl.Close(); err != nil {
		t.Fatal(err)
	}

	stGC2, hGC2 := gcOpen(t, dirGC, Options{})
	defer stGC2.Close()
	stCtl2, hCtl2 := gcOpen(t, dirCtl, Options{})
	defer stCtl2.Close()
	if hGC2.Len() != n || hCtl2.Len() != n {
		t.Fatalf("recovered %d (group commit) and %d (control), want %d", hGC2.Len(), hCtl2.Len(), n)
	}
	for i := 0; i < n; i++ {
		a, b := hGC2.At(i), hCtl2.At(i)
		for j := range a.X {
			if a.X[j] != b.X[j] {
				t.Fatalf("observation %d feature %d: group commit %v, control %v", i, j, a.X[j], b.X[j])
			}
		}
		for j := range a.Costs {
			if a.Costs[j] != b.Costs[j] {
				t.Fatalf("observation %d cost %d: group commit %v, control %v", i, j, a.Costs[j], b.Costs[j])
			}
		}
	}
}

// TestGroupCommitConcurrentAppends hammers one shard from many
// goroutines (run with -race to check the committer/appender
// synchronization) and then asserts every acknowledged append survives
// a close + recovery, with per-writer order preserved.
func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	st, h := gcOpen(t, dir, Options{GroupCommit: true, CommitInterval: 200 * time.Microsecond})
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := h.Append(gcObs(w, i)); err != nil {
					t.Errorf("writer %d append %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, h2 := gcOpen(t, dir, Options{})
	defer st2.Close()
	if h2.Len() != writers*perWriter {
		t.Fatalf("recovered %d observations, want %d", h2.Len(), writers*perWriter)
	}
	// Each writer appended sequentially, so its observations must
	// appear in index order within the recovered log.
	next := make([]int, writers)
	for i := 0; i < h2.Len(); i++ {
		o := h2.At(i)
		w, idx := int(o.X[0]), int(o.X[1])
		if w < 0 || w >= writers {
			t.Fatalf("observation %d has unknown writer %d", i, w)
		}
		if idx != next[w] {
			t.Fatalf("writer %d observation out of order: got index %d, want %d", w, idx, next[w])
		}
		next[w]++
		want := gcObs(w, idx)
		if o.Costs[0] != want.Costs[0] || o.Costs[1] != want.Costs[1] {
			t.Fatalf("observation %d corrupted: %v, want %v", i, o.Costs, want.Costs)
		}
	}
}

// TestGroupCommitCloseFailsLateAppends verifies the committer shutdown
// contract: appends completed before Close stay durable, appends after
// Close fail instead of being silently dropped.
func TestGroupCommitCloseFailsLateAppends(t *testing.T) {
	dir := t.TempDir()
	st, h := gcOpen(t, dir, Options{GroupCommit: true})
	for i := 0; i < 10; i++ {
		if err := h.Append(gcObs(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Append(gcObs(0, 10)); err == nil {
		t.Fatal("append after Close succeeded; want an error")
	}
	if h.Len() != 10 {
		t.Fatalf("failed append mutated memory: len %d, want 10", h.Len())
	}
}

// TestGroupCommitCheckpointReleasesWaiters covers the checkpoint
// watermark path: a checkpoint makes everything durable, so it must
// count as covering any not-yet-group-fsynced appends.
func TestGroupCommitCheckpointReleasesWaiters(t *testing.T) {
	dir := t.TempDir()
	// An hour-long commit interval: only checkpoints (and close) make
	// appends durable, so an Append returning proves the checkpoint
	// advanced the watermark.
	st, h := gcOpen(t, dir, Options{GroupCommit: true, CommitInterval: time.Hour})
	done := make(chan error, 1)
	go func() { done <- h.Append(gcObs(0, 0)) }()
	// Wait for the append to land in the WAL (visible in memory), then
	// checkpoint; the append's durability wait must resolve.
	for i := 0; h.Len() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if h.Len() != 1 {
		t.Fatal("append never reached the WAL")
	}
	if err := st.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("append: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("append still blocked after checkpoint; watermark not advanced")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// SIGKILL crash test: a child process appends through group commit and
// reports each acknowledged write on stdout; the parent kills it
// mid-stream (no cleanup, no final fsync) and asserts that recovery
// holds every acknowledged write, in per-writer order, byte-identical
// to what was appended.

const crashDirEnv = "HISTSTORE_CRASH_DIR"

// TestGroupCommitCrashChild is the re-exec helper body, not a test: it
// only runs when the parent set crashDirEnv, and then appends until
// killed.
func TestGroupCommitCrashChild(t *testing.T) {
	dir := os.Getenv(crashDirEnv)
	if dir == "" {
		t.Skip("crash-child helper; driven by TestGroupCommitCrashRecovery")
	}
	st, h := gcOpen(t, dir, Options{GroupCommit: true, CommitInterval: 200 * time.Microsecond})
	defer st.Close()
	var mu sync.Mutex
	out := bufio.NewWriter(os.Stdout)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				if err := h.Append(gcObs(w, i)); err != nil {
					return
				}
				// The ack line leaves the process before the next append:
				// anything the parent reads was durably acknowledged.
				mu.Lock()
				fmt.Fprintf(out, "acked %d %d\n", w, i)
				out.Flush()
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
}

func TestGroupCommitCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestGroupCommitCrashChild$")
	cmd.Env = append(os.Environ(), crashDirEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Collect acknowledged writes until enough group commits happened,
	// then SIGKILL mid-stream.
	acked := make(map[[2]int]bool)
	sc := bufio.NewScanner(stdout)
	for len(acked) < 400 && sc.Scan() {
		var w, i int
		if _, err := fmt.Sscanf(sc.Text(), "acked %d %d", &w, &i); err == nil {
			acked[[2]int{w, i}] = true
		}
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()
	if len(acked) < 400 {
		t.Fatalf("child exited after only %d acks", len(acked))
	}

	st, h := gcOpen(t, dir, Options{})
	defer st.Close()
	// Every recovered observation is byte-identical to what its writer
	// appended, and per-writer order is intact (torn-tail truncation may
	// only drop unacknowledged suffixes).
	seen := make(map[[2]int]bool, h.Len())
	next := make(map[int]int)
	for i := 0; i < h.Len(); i++ {
		o := h.At(i)
		w, idx := int(o.X[0]), int(o.X[1])
		want := gcObs(w, idx)
		if o.X[0] != want.X[0] || o.X[1] != want.X[1] ||
			o.Costs[0] != want.Costs[0] || o.Costs[1] != want.Costs[1] {
			t.Fatalf("recovered observation %d corrupted: X=%v Costs=%v", i, o.X, o.Costs)
		}
		if idx != next[w] {
			t.Fatalf("writer %d out of order after recovery: got %d, want %d", w, idx, next[w])
		}
		next[w]++
		seen[[2]int{w, idx}] = true
	}
	lost := 0
	for k := range acked {
		if !seen[k] {
			lost++
			t.Errorf("acknowledged write lost: writer %d index %d", k[0], k[1])
		}
	}
	if lost == 0 {
		t.Logf("SIGKILL after %d acks: recovered %d observations, no acknowledged write lost", len(acked), h.Len())
	}
}
