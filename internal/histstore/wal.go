package histstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/core"
)

// WAL framing: every record is
//
//	length uint32 LE  payload byte count
//	crc    uint32 LE  CRC-32C (Castagnoli) of the payload
//	payload:
//	  seq  uint64 LE  global observation index, 0-based across the
//	                  shard's lifetime (snapshot + WAL)
//	  nx   uint16 LE  feature count
//	  nc   uint16 LE  cost count
//	  x    nx × float64 LE
//	  c    nc × float64 LE
//
// The sequence number makes replay idempotent against any crash point
// in the checkpoint protocol: frames already covered by the snapshot
// are skipped by seq, so "snapshot renamed but WAL not yet compacted"
// recovers to exactly the same history as a clean shutdown.

const (
	frameHeaderSize = 8
	// maxFramePayload bounds a single record; anything larger in the
	// length field is treated as corruption, not an allocation request.
	maxFramePayload = 1 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// framePayloadSize is the payload byte count for one observation.
func framePayloadSize(o core.Observation) int {
	return 8 + 2 + 2 + 8*(len(o.X)+len(o.Costs))
}

// appendFrame appends one complete frame (header + payload) to buf.
func appendFrame(buf []byte, seq uint64, o core.Observation) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(framePayloadSize(o)))
	crcAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // patched below
	payloadAt := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(o.X)))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(o.Costs)))
	for _, v := range o.X {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, v := range o.Costs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	binary.LittleEndian.PutUint32(buf[crcAt:], crc32.Checksum(buf[payloadAt:], crcTable))
	return buf
}

// decodePayload parses a CRC-validated payload.
func decodePayload(p []byte) (seq uint64, o core.Observation, err error) {
	if len(p) < 12 {
		return 0, o, errors.New("histstore: payload shorter than fixed fields")
	}
	seq = binary.LittleEndian.Uint64(p)
	nx := int(binary.LittleEndian.Uint16(p[8:]))
	nc := int(binary.LittleEndian.Uint16(p[10:]))
	if len(p) != 12+8*(nx+nc) {
		return 0, o, errors.New("histstore: payload size disagrees with counts")
	}
	o.X = make([]float64, nx)
	o.Costs = make([]float64, nc)
	at := 12
	for i := range o.X {
		o.X[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[at:]))
		at += 8
	}
	for i := range o.Costs {
		o.Costs[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[at:]))
		at += 8
	}
	return seq, o, nil
}

// scanWAL reads frames from r in order, invoking fn for each intact
// one, and returns the byte offset at which the valid prefix ends. A
// torn or corrupt frame — short header, impossible length, short
// payload, CRC mismatch, undecodable payload — ends the scan at that
// frame's start offset with a nil error: the caller truncates there
// and the log is whole again. Reader I/O failures and fn errors are
// returned as errors (an fn rejection is a consistency problem, not
// corruption — the caller must not truncate on it).
func scanWAL(r io.Reader, fn func(seq uint64, o core.Observation) error) (int64, error) {
	br := bufio.NewReader(r)
	var off int64
	header := make([]byte, frameHeaderSize)
	var payload []byte
	for {
		if _, err := io.ReadFull(br, header); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return off, nil
			}
			return off, err
		}
		n := binary.LittleEndian.Uint32(header)
		crc := binary.LittleEndian.Uint32(header[4:])
		if n == 0 || n > maxFramePayload {
			return off, nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return off, nil
			}
			return off, err
		}
		if crc32.Checksum(payload, crcTable) != crc {
			return off, nil
		}
		seq, o, err := decodePayload(payload)
		if err != nil {
			return off, nil
		}
		if err := fn(seq, o); err != nil {
			return off, err
		}
		off += int64(frameHeaderSize) + int64(n)
	}
}
