package histstore

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

var testMetrics = []string{"time_s", "money_usd"}

func openStore(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func openHist(t *testing.T, s *Store, name string) *core.History {
	t.Helper()
	h, err := s.OpenHistory(name, 1, testMetrics)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// obsAt builds the deterministic i-th test observation.
func obsAt(i int) core.Observation {
	return core.Observation{
		X:     []float64{float64(i)},
		Costs: []float64{2 * float64(i), 3 * float64(i)},
	}
}

func appendN(t *testing.T, h *core.History, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		if err := h.Append(obsAt(i)); err != nil {
			t.Fatal(err)
		}
	}
}

// wantPrefix asserts h holds exactly the first n test observations.
func wantPrefix(t *testing.T, h *core.History, n int) {
	t.Helper()
	if h.Len() != n {
		t.Fatalf("history len = %d, want %d", h.Len(), n)
	}
	for i := 0; i < n; i++ {
		got, want := h.At(i), obsAt(i)
		if got.X[0] != want.X[0] || got.Costs[0] != want.Costs[0] || got.Costs[1] != want.Costs[1] {
			t.Fatalf("observation %d = %+v, want %+v", i, got, want)
		}
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	h := openHist(t, s, "Q12")
	appendN(t, h, 0, 9)
	// Same store, same name: the identical live history comes back.
	if again := openHist(t, s, "Q12"); again != h {
		t.Fatal("reopening within one store did not return the cached history")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Fresh process: recovery replays the WAL (no snapshot yet).
	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	h2 := openHist(t, s2, "Q12")
	wantPrefix(t, h2, 9)
	// The recovered history keeps persisting.
	appendN(t, h2, 9, 3)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := openStore(t, dir, Options{})
	defer s3.Close()
	wantPrefix(t, openHist(t, s3, "Q12"), 12)
}

// TestRecoveredEstimatesIdentical is the determinism contract: a
// recovered history produces byte-identical DREAM estimates.
func TestRecoveredEstimatesIdentical(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	h := openHist(t, s, "Q13")
	appendN(t, h, 0, 20)
	est, err := core.NewEstimator(core.Config{MMax: 10})
	if err != nil {
		t.Fatal(err)
	}
	want, err := est.EstimateCostValue(h, []float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	got, err := est.EstimateCostValue(openHist(t, s2, "Q13"), []float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if got.WindowSize != want.WindowSize || got.Converged != want.Converged {
		t.Fatalf("window fit differs: %d/%v vs %d/%v",
			got.WindowSize, got.Converged, want.WindowSize, want.Converged)
	}
	for i := range want.Metrics {
		if got.Metrics[i].Value != want.Metrics[i].Value || got.Metrics[i].R2 != want.Metrics[i].R2 {
			t.Fatalf("metric %d estimate differs: %+v vs %+v", i, got.Metrics[i], want.Metrics[i])
		}
	}
}

func TestCheckpointCompactsWAL(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	h := openHist(t, s, "Q12")
	appendN(t, h, 0, 8)

	walPath := filepath.Join(dir, "Q12", walName)
	before, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if before.Size() == 0 {
		t.Fatal("wal empty before checkpoint")
	}
	if err := s.Checkpoint("Q12", h.Snapshot()); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != 0 {
		t.Fatalf("wal holds %d bytes after full checkpoint, want 0", after.Size())
	}
	if _, err := os.Stat(filepath.Join(dir, "Q12", snapshotName)); err != nil {
		t.Fatalf("no snapshot after checkpoint: %v", err)
	}

	// Appends after the checkpoint land in the (fresh) WAL; recovery
	// stitches snapshot + suffix back together.
	appendN(t, h, 8, 4)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	wantPrefix(t, openHist(t, s2, "Q12"), 12)
}

// TestCheckpointWithStaleSnapshot: a snapshot taken before further
// appends compacts only its prefix; the newer records stay in the WAL.
func TestCheckpointWithStaleSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	h := openHist(t, s, "Q12")
	appendN(t, h, 0, 5)
	snap := h.Snapshot() // covers 5
	appendN(t, h, 5, 3)  // 3 more after the snapshot was taken
	if err := s.Checkpoint("Q12", snap); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(dir, "Q12", walName))
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(3 * (frameHeaderSize + framePayloadSize(obsAt(0)))); fi.Size() != want {
		t.Fatalf("wal holds %d bytes after partial checkpoint, want %d", fi.Size(), want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	wantPrefix(t, openHist(t, s2, "Q12"), 8)
}

// TestRecoverySkipsCoveredFrames simulates a crash between the
// checkpoint's snapshot rename and its WAL compaction: the WAL still
// holds every frame, the snapshot covers a prefix, and replay must not
// duplicate the overlap.
func TestRecoverySkipsCoveredFrames(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	h := openHist(t, s, "Q12")
	appendN(t, h, 0, 7)
	walPath := filepath.Join(dir, "Q12", walName)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint("Q12", h.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Undo the compaction, as if the crash hit before the WAL rewrite.
	if err := os.WriteFile(walPath, full, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	wantPrefix(t, openHist(t, s2, "Q12"), 7)
}

// TestTornTailEveryByteOffset is the crash-recovery property test:
// whatever byte the WAL is cut at inside its final frame, replay comes
// back with a valid prefix — no panic, no partial record — and the
// shard keeps working.
func TestTornTailEveryByteOffset(t *testing.T) {
	const n = 6
	master := t.TempDir()
	s := openStore(t, master, Options{})
	appendN(t, openHist(t, s, "Q12"), 0, n)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	walBytes, err := os.ReadFile(filepath.Join(master, "Q12", walName))
	if err != nil {
		t.Fatal(err)
	}
	frameSize := frameHeaderSize + framePayloadSize(obsAt(0))
	if len(walBytes) != n*frameSize {
		t.Fatalf("wal is %d bytes, want %d", len(walBytes), n*frameSize)
	}
	tailStart := (n - 1) * frameSize
	for cut := tailStart; cut < len(walBytes); cut++ {
		dir := t.TempDir()
		if err := os.MkdirAll(filepath.Join(dir, "Q12"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "Q12", walName), walBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2 := openStore(t, dir, Options{})
		h := openHist(t, s2, "Q12")
		wantN := n - 1 // every cut leaves the tail frame incomplete
		if h.Len() != wantN {
			t.Fatalf("cut at %d: recovered %d observations, want %d", cut, h.Len(), wantN)
		}
		wantPrefix(t, h, wantN)
		// The torn tail was truncated: appending and re-recovering
		// yields a clean continuation.
		appendN(t, h, wantN, 1)
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
		s3 := openStore(t, dir, Options{})
		wantPrefix(t, openHist(t, s3, "Q12"), wantN+1)
		if err := s3.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCorruptMidFrameTruncates: a bit flip inside an interior frame
// ends replay there; the valid prefix before it survives.
func TestCorruptMidFrameTruncates(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	appendN(t, openHist(t, s, "Q12"), 0, 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "Q12", walName)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	frameSize := frameHeaderSize + framePayloadSize(obsAt(0))
	raw[2*frameSize+frameHeaderSize+3] ^= 0xff // payload of frame 2
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	wantPrefix(t, openHist(t, s2, "Q12"), 2)
	// Frames 3 and 4 sat behind the corruption and are gone; the file
	// must have been truncated so new appends extend the valid prefix.
	if fi, err := os.Stat(walPath); err != nil || fi.Size() != int64(2*frameSize) {
		t.Fatalf("wal size = %v (err %v), want %d", fi.Size(), err, 2*frameSize)
	}
}

func TestImportLegacy(t *testing.T) {
	legacy, err := core.NewHistory(1, testMetrics...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := legacy.Append(obsAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := legacy.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.Bytes()

	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	defer s.Close()
	if err := s.ImportLegacy("Q12", bytes.NewReader(saved)); err != nil {
		t.Fatal(err)
	}
	h := openHist(t, s, "Q12")
	wantPrefix(t, h, 6)
	// One-way: with durable state in place, a second import is refused.
	if err := s.ImportLegacy("Q12", bytes.NewReader(saved)); err == nil {
		t.Fatal("import over existing shard accepted")
	}
	// Garbage never lands on disk.
	if err := s.ImportLegacy("Q14", strings.NewReader("not json")); err == nil {
		t.Fatal("garbage import accepted")
	}
	if _, err := os.Stat(filepath.Join(dir, "Q14", snapshotName)); !os.IsNotExist(err) {
		t.Fatalf("garbage import left a snapshot: %v", err)
	}
}

func TestOpenHistoryShapeMismatch(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	// Shard A: WAL only. Shard B: compacted into a snapshot.
	appendN(t, openHist(t, s, "A"), 0, 3)
	hb := openHist(t, s, "B")
	appendN(t, hb, 0, 3)
	if err := s.Checkpoint("B", hb.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	// A mismatched open must fail loudly, not truncate good records.
	if _, err := s2.OpenHistory("A", 2, testMetrics); err == nil {
		t.Fatal("dim mismatch against WAL accepted")
	}
	if _, err := s2.OpenHistory("B", 2, testMetrics); err == nil {
		t.Fatal("dim mismatch against snapshot accepted")
	}
	if _, err := s2.OpenHistory("B", 1, []string{"other", "names"}); err == nil {
		t.Fatal("metric mismatch against snapshot accepted")
	}
	// The failed opens destroyed nothing: correct shapes still recover.
	s3 := openStore(t, dir, Options{})
	defer s3.Close()
	wantPrefix(t, openHist(t, s3, "A"), 3)
	wantPrefix(t, openHist(t, s3, "B"), 3)
}

func TestFsyncOptionAppends(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Fsync: true})
	h := openHist(t, s, "Q12")
	appendN(t, h, 0, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	wantPrefix(t, openHist(t, s2, "Q12"), 3)
}

func TestAppendAfterCloseFailsCleanly(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	h := openHist(t, s, "Q12")
	appendN(t, h, 0, 2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Append(obsAt(2)); err == nil {
		t.Fatal("append after Close succeeded")
	}
	// Write-ahead contract: the failed append is not in memory either.
	if h.Len() != 2 {
		t.Fatalf("history len = %d after failed append, want 2", h.Len())
	}
}

// TestConcurrentAppendsAndCheckpoints drives appenders against periodic
// checkpoints under the race detector, then verifies the recovered
// history is identical to the live one — WAL order is memory order.
func TestConcurrentAppendsAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	h := openHist(t, s, "Q12")
	const (
		appenders = 4
		perWorker = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < appenders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				o := core.Observation{
					X:     []float64{float64(w*perWorker + i)},
					Costs: []float64{1, 2},
				}
				if err := h.Append(o); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var cpWG sync.WaitGroup
	cpWG.Add(1)
	go func() {
		defer cpWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := s.Checkpoint("Q12", h.Snapshot()); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	cpWG.Wait()
	if t.Failed() {
		return
	}
	if err := s.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	h2 := openHist(t, s2, "Q12")
	if h2.Len() != h.Len() {
		t.Fatalf("recovered %d observations, live has %d", h2.Len(), h.Len())
	}
	for i := 0; i < h.Len(); i++ {
		if h.At(i).X[0] != h2.At(i).X[0] {
			t.Fatalf("observation %d diverged: live %v, recovered %v", i, h.At(i).X, h2.At(i).X)
		}
	}
}

func TestShardNameEscaping(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	defer s.Close()
	// A hostile name must stay inside the store root.
	h, err := s.OpenHistory("../escape/Q12", 1, testMetrics)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, h, 0, 1)
	if _, err := os.Stat(filepath.Join(dir, "..", "escape")); !os.IsNotExist(err) {
		t.Fatal("shard escaped the store root")
	}
}
