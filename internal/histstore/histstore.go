// Package histstore is the durable execution-history store: the state
// DREAM's estimation quality is made of, kept alive across restarts,
// crashes and drains.
//
// A Store owns one root directory and shards it by history name (the
// serving layer uses one Store per federation and one shard per query).
// Each shard is
//
//	<root>/<name>/snapshot.json   compacting snapshot (the legacy
//	                              History.Save format, see
//	                              internal/core/persist.go)
//	<root>/<name>/wal.log         CRC-framed append-only WAL of the
//	                              observations since that snapshot
//
// Appends flow in through core.HistorySink: OpenHistory returns a
// *core.History wired so every Append lands in the WAL before it
// becomes visible in memory (write-ahead). Checkpoint atomically
// replaces the snapshot with a newer point-in-time view and compacts
// the WAL down to the uncovered suffix.
//
// Recovery is deterministic and torn-tail-tolerant: replay = snapshot +
// WAL suffix, with frames already covered by the snapshot skipped by
// sequence number and the log truncated at the first corrupt frame. A
// recovered history holds byte-identical observations in identical
// order to the history that wrote it, so DREAM's window fit — and every
// estimate derived from it — is identical too.
package histstore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

const (
	snapshotName = "snapshot.json"
	walName      = "wal.log"
	tmpSuffix    = ".tmp"
)

// Default group-commit knobs; see Options.
const (
	// DefaultCommitBatchSize fsyncs early once this many appends are
	// buffered, bounding how much acknowledged-but-unsynced work one
	// flush covers.
	DefaultCommitBatchSize = 128
)

// Options tunes a Store.
type Options struct {
	// Fsync syncs the WAL file after every appended record: durable
	// against machine crashes at a large per-append cost. Without it
	// (the default) an append survives any process crash — the write
	// has left the process before Append returns — but sits in the OS
	// page cache until the kernel flushes it.
	Fsync bool
	// GroupCommit provides Fsync's machine-crash durability at a
	// fraction of its cost: appends land in the WAL immediately but the
	// fsync is issued by a per-shard committer goroutine that coalesces
	// every append buffered since the previous flush into one sync. An
	// append is only acknowledged — Append on the shard's History only
	// returns — after the fsync covering it has returned, so no
	// acknowledged write can be lost to a crash, exactly as with Fsync.
	// When set, Fsync's per-append sync is skipped (the group fsync
	// supersedes it).
	GroupCommit bool
	// CommitInterval is the committer's max-delay: how long it waits
	// for companion appends before issuing the fsync. The default (<=
	// 0) adds no delay at all — the committer syncs as soon as it is
	// free, and batches form naturally from the appends that arrive
	// while the previous fsync is in flight. A positive interval
	// trades per-append latency for larger batches, which only pays
	// off on devices whose sync cost dwarfs the wait (e.g. spinning
	// disks).
	CommitInterval time.Duration
	// CommitBatchSize is the committer's max-batch: once this many
	// appends are waiting, the fsync is issued without waiting out
	// CommitInterval. 0 defaults to DefaultCommitBatchSize.
	CommitBatchSize int
	// Mirror, when non-nil, observes every WAL append for replication:
	// AppendFrame is invoked under the shard lock immediately after the
	// frame reaches the local WAL (so mirror order is exactly WAL
	// order) with the raw on-disk frame bytes — the mirror must copy
	// them before returning and must not block. WaitFrame is invoked
	// outside the shard lock before the append is acknowledged; a
	// mirror that replicates synchronously blocks there until the
	// frame is on the standby (or it has decided to degrade).
	Mirror Mirror
	// Metrics, when non-nil, registers the store's health instruments
	// (WAL append latency, checkpoint duration and failures, recovery
	// time and recovered observation counts) on the given registry,
	// labeled store=MetricsStore. Purely observational: a metered store
	// persists and recovers byte-identical state to an unmetered one.
	Metrics *metrics.Registry
	// MetricsStore is the value of the "store" label on every series
	// this store emits; empty defaults to the base name of the root
	// directory (the serving layer's per-tenant directory name).
	MetricsStore string
}

// Mirror receives a copy of every WAL append; see Options.Mirror.
// internal/cluster.Replicator is the production implementation.
type Mirror interface {
	// AppendFrame delivers one raw WAL frame. Called under the shard
	// lock: must copy frame and return without blocking.
	AppendFrame(shard string, seq uint64, frame []byte)
	// WaitFrame blocks until the frame with sequence seq is replicated
	// (or replication for the shard has been abandoned). Called outside
	// the shard lock, after local durability.
	WaitFrame(shard string, seq uint64) error
}

// Store is a root directory of named, independently recoverable
// history shards. All methods are safe for concurrent use.
type Store struct {
	root string
	opts Options
	obs  *storeObs // nil when Options.Metrics is unset

	mu     sync.Mutex
	shards map[string]*shard

	// Replica shards: WAL files this store appends raw mirrored frames
	// to without ever opening them as histories (the standby half of
	// cluster replication). Keyed by shard name, lazily initialised.
	replMu   sync.Mutex
	replicas map[string]*replica
}

// storeObs bundles the store's bound instruments, shared by every
// shard.
type storeObs struct {
	walAppendSeconds   *metrics.Histogram
	checkpointSeconds  *metrics.Histogram
	checkpoints        *metrics.Counter
	checkpointFailures *metrics.Counter
	recoverySeconds    *metrics.Histogram
	recoveredObs       *metrics.Counter
	tornTails          *metrics.Counter
	commitBatch        *metrics.Histogram
	fsyncsAvoided      *metrics.Counter
}

// newStoreObs registers the store's instruments; see Options.Metrics.
func newStoreObs(reg *metrics.Registry, store string) *storeObs {
	// Appends are ~1 µs, checkpoints and recoveries span ms to seconds;
	// two bucket ladders keep both ends readable.
	appendBuckets := metrics.ExponentialBuckets(1e-6, 4, 12) // 1 µs .. ~4 s
	fileOpBuckets := metrics.ExponentialBuckets(1e-4, 4, 10) // 100 µs .. ~26 s
	return &storeObs{
		walAppendSeconds: reg.HistogramVec("midas_histstore_wal_append_seconds",
			"Latency of one write-ahead WAL append (including fsync when enabled).",
			appendBuckets, "store").With(store),
		checkpointSeconds: reg.HistogramVec("midas_histstore_checkpoint_seconds",
			"Duration of one shard checkpoint (snapshot replace + WAL compaction).",
			fileOpBuckets, "store").With(store),
		checkpoints: reg.CounterVec("midas_histstore_checkpoints_total",
			"Completed shard checkpoints (no-op checkpoints included).",
			"store").With(store),
		checkpointFailures: reg.CounterVec("midas_histstore_checkpoint_failures_total",
			"Shard checkpoints that failed.",
			"store").With(store),
		recoverySeconds: reg.HistogramVec("midas_histstore_recovery_seconds",
			"Duration of one shard open (snapshot load + WAL replay).",
			fileOpBuckets, "store").With(store),
		recoveredObs: reg.CounterVec("midas_histstore_recovered_observations_total",
			"Observations recovered from durable state across shard opens.",
			"store").With(store),
		tornTails: reg.CounterVec("midas_histstore_torn_tails_total",
			"WAL tails truncated at a torn or corrupt frame during recovery.",
			"store").With(store),
		commitBatch: reg.HistogramVec("midas_histstore_commit_batch_size",
			"Appends acknowledged by one group-commit fsync; a mean near 1 means group commit is not coalescing.",
			metrics.ExponentialBuckets(1, 2, 11), // 1 .. 1024
			"store").With(store),
		fsyncsAvoided: reg.CounterVec("midas_histstore_fsyncs_avoided_total",
			"Fsyncs the per-append policy would have issued that group commit coalesced away.",
			"store").With(store),
	}
}

// Open creates (if needed) the root directory and returns a Store over
// it. Shards are recovered lazily, on first OpenHistory.
func Open(root string, opts Options) (*Store, error) {
	if root == "" {
		return nil, errors.New("histstore: empty root directory")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("histstore: %w", err)
	}
	if opts.GroupCommit && opts.CommitBatchSize <= 0 {
		opts.CommitBatchSize = DefaultCommitBatchSize
	}
	s := &Store{root: root, opts: opts, shards: make(map[string]*shard)}
	if opts.Metrics != nil {
		label := opts.MetricsStore
		if label == "" {
			label = filepath.Base(root)
		}
		s.obs = newStoreObs(opts.Metrics, label)
	}
	return s, nil
}

// Root reports the store's root directory.
func (s *Store) Root() string { return s.root }

// shardDir maps a shard name to its directory; names are path-escaped
// so any query or tenant name is a single safe path element.
func (s *Store) shardDir(name string) string {
	return filepath.Join(s.root, url.PathEscape(name))
}

// OpenHistory opens (recovering, if durable state exists) or creates
// the named shard and returns its live history: appends to the returned
// History are written ahead to the shard's WAL, and the observations
// recovered from snapshot + WAL are already in it. Repeated calls with
// the same name return the same *core.History. dim and metrics must
// match any previously persisted state.
func (s *Store) OpenHistory(name string, dim int, metrics []string) (*core.History, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sh, ok := s.shards[name]; ok {
		return sh.hist, nil
	}
	// A standby promoting this shard (takeover) stops mirroring it the
	// moment it becomes a live history; release the replica handle so
	// the open owns the WAL file exclusively.
	s.closeReplica(name)
	sh, err := s.openShard(name, dim, metrics)
	if err != nil {
		return nil, err
	}
	s.shards[name] = sh
	return sh.hist, nil
}

func (s *Store) openShard(name string, dim int, metricNames []string) (*shard, error) {
	began := time.Now()
	dir := s.shardDir(name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("histstore: shard %q: %w", name, err)
	}
	// Leftover temp files are failed checkpoints; the durable state
	// they were meant to replace is still intact.
	_ = os.Remove(filepath.Join(dir, snapshotName+tmpSuffix))
	_ = os.Remove(filepath.Join(dir, walName+tmpSuffix))

	h, snapCount, err := loadSnapshot(filepath.Join(dir, snapshotName), dim, metricNames)
	if err != nil {
		return nil, fmt.Errorf("histstore: shard %q: %w", name, err)
	}
	wal, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("histstore: shard %q: %w", name, err)
	}
	validEnd, err := scanWAL(wal, func(seq uint64, o core.Observation) error {
		if seq < uint64(h.Len()) {
			// Already applied: either covered by the snapshot (a
			// checkpoint renamed the new snapshot but crashed before
			// compacting the WAL) or a duplicate frame (handoff and
			// replication streams may deliver overlapping suffixes).
			// Replay is idempotent: skip, don't fail.
			return nil
		}
		// A frame from the future, though: these frames passed their
		// CRC, so a sequence gap is not a torn write — it means
		// observations between h.Len() and seq are missing (a store
		// opened with the wrong configuration, or genuine data loss),
		// and truncating would destroy good data. Fail the open instead.
		if seq > uint64(h.Len()) {
			return fmt.Errorf("wal sequence gap: frame %d, history has %d observations", seq, h.Len())
		}
		return h.Append(o)
	})
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("histstore: shard %q: replaying wal: %w", name, err)
	}
	// Drop the torn tail (a crash mid-write) so the next append starts
	// on a clean frame boundary.
	if fi, statErr := wal.Stat(); statErr == nil && fi.Size() > validEnd {
		if err := wal.Truncate(validEnd); err != nil {
			wal.Close()
			return nil, fmt.Errorf("histstore: shard %q: truncating torn wal tail: %w", name, err)
		}
		if s.obs != nil {
			s.obs.tornTails.Inc()
		}
	}
	if _, err := wal.Seek(validEnd, io.SeekStart); err != nil {
		wal.Close()
		return nil, fmt.Errorf("histstore: shard %q: %w", name, err)
	}
	sh := &shard{
		name:      name,
		dir:       dir,
		opts:      s.opts,
		obs:       s.obs,
		hist:      h,
		wal:       wal,
		nextSeq:   uint64(h.Len()),
		snapCount: snapCount,
	}
	if s.opts.GroupCommit {
		// Everything replayed so far is durable (it was read back off
		// disk), so the committer starts with an empty pending window.
		sh.gcSynced = sh.nextSeq
		sh.gcCond = sync.NewCond(&sh.gcMu)
		sh.gcKick = make(chan struct{}, 1)
		sh.gcFull = make(chan struct{}, 1)
		sh.gcStop = make(chan struct{})
		sh.gcDone = make(chan struct{})
		go sh.commitLoop()
	}
	h.SetSink(sh)
	if s.obs != nil {
		s.obs.recoverySeconds.Observe(time.Since(began).Seconds())
		s.obs.recoveredObs.Add(float64(h.Len()))
	}
	return sh, nil
}

// loadSnapshot reads the shard snapshot if present (validating its
// shape against the requested one) or starts an empty history.
func loadSnapshot(path string, dim int, metrics []string) (*core.History, uint64, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		h, err := core.NewHistory(dim, metrics...)
		return h, 0, err
	}
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	h, err := core.LoadHistory(f)
	if err != nil {
		return nil, 0, err
	}
	if h.Dim() != dim {
		return nil, 0, fmt.Errorf("snapshot has dim %d, want %d", h.Dim(), dim)
	}
	hm := h.Metrics()
	if len(hm) != len(metrics) {
		return nil, 0, fmt.Errorf("snapshot has %d metrics, want %d", len(hm), len(metrics))
	}
	for i := range hm {
		if hm[i] != metrics[i] {
			return nil, 0, fmt.Errorf("snapshot metric %d is %q, want %q", i, hm[i], metrics[i])
		}
	}
	return h, uint64(h.Len()), nil
}

// Checkpoint compacts the named shard: the snapshot file is atomically
// replaced with snap (write temp, fsync, rename) and the WAL is
// rewritten down to the records snap does not cover. snap must be a
// snapshot of the history OpenHistory returned for this shard. A crash
// at any point leaves a recoverable shard: replay skips WAL records the
// surviving snapshot already covers.
func (s *Store) Checkpoint(name string, snap *core.Snapshot) error {
	s.mu.Lock()
	sh := s.shards[name]
	s.mu.Unlock()
	if sh == nil {
		return fmt.Errorf("histstore: checkpoint of unopened shard %q", name)
	}
	return sh.checkpoint(snap)
}

// CheckpointAll compacts every open shard against its history's current
// snapshot.
func (s *Store) CheckpointAll() error {
	s.mu.Lock()
	shards := make([]*shard, 0, len(s.shards))
	for _, sh := range s.shards {
		shards = append(shards, sh)
	}
	s.mu.Unlock()
	for _, sh := range shards {
		if err := sh.checkpoint(sh.hist.Snapshot()); err != nil {
			return err
		}
	}
	return nil
}

// ImportLegacy installs a document written by core.History.Save as the
// named shard's base snapshot — the one-way migration path off the
// legacy whole-file JSON format. The shard must not be open and must
// not already hold durable state.
func (s *Store) ImportLegacy(name string, r io.Reader) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, open := s.shards[name]; open {
		return fmt.Errorf("histstore: legacy import into open shard %q", name)
	}
	dir := s.shardDir(name)
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err == nil {
		return fmt.Errorf("histstore: shard %q already has a snapshot", name)
	}
	if fi, err := os.Stat(filepath.Join(dir, walName)); err == nil && fi.Size() > 0 {
		return fmt.Errorf("histstore: shard %q already has WAL records", name)
	}
	raw, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("histstore: legacy import: %w", err)
	}
	if _, err := core.LoadHistory(bytes.NewReader(raw)); err != nil {
		return fmt.Errorf("histstore: legacy import: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("histstore: legacy import: %w", err)
	}
	tmp := filepath.Join(dir, snapshotName+tmpSuffix)
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("histstore: legacy import: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapshotName)); err != nil {
		return fmt.Errorf("histstore: legacy import: %w", err)
	}
	return nil
}

// Close stops every shard's group committer (after one final covering
// fsync, so no acknowledged-in-flight append is abandoned) and closes
// every open shard's WAL handle. Appends to histories opened through
// the store fail afterwards (and, per the write-ahead contract, leave
// the in-memory history unchanged). Checkpoint first: Close does not
// compact.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for name, sh := range s.shards {
		if sh.gcCond != nil {
			close(sh.gcStop)
			<-sh.gcDone
			sh.gcMu.Lock()
			sh.gcClosed = true
			sh.gcCond.Broadcast()
			sh.gcMu.Unlock()
		}
		sh.mu.Lock()
		if err := sh.wal.Close(); err != nil && first == nil {
			first = err
		}
		sh.mu.Unlock()
		delete(s.shards, name)
	}
	s.replMu.Lock()
	for name, r := range s.replicas {
		if err := r.f.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.replicas, name)
	}
	s.replMu.Unlock()
	return first
}

// shard is one named history's durable state. It implements
// core.HistorySink, so the History it recovered writes every new
// observation through it.
type shard struct {
	name string
	dir  string
	opts Options
	obs  *storeObs // nil when the store is unmetered
	hist *core.History

	mu        sync.Mutex
	wal       *os.File
	buf       []byte // frame scratch, reused across appends
	nextSeq   uint64 // sequence of the next record to append
	snapCount uint64 // observations covered by snapshot.json
	// broken, once set, fails every subsequent append and checkpoint:
	// the WAL handle can no longer be trusted to reach durable storage
	// (e.g. the post-compaction reopen failed, leaving the handle on
	// the replaced inode), and acknowledging writes would silently
	// break the write-ahead contract.
	broken error

	// Group-commit state; initialised (and the committer goroutine
	// started) only when Options.GroupCommit is set. Lock order is
	// sh.mu → gcMu, never the reverse: the committer and the append
	// path take gcMu while holding sh.mu, waiters take gcMu alone.
	gcMu     sync.Mutex
	gcCond   *sync.Cond    // broadcast on gcSynced / gcErr / gcClosed changes
	gcSynced uint64        // sequences below this are covered by an fsync
	gcErr    error         // sticky first group-fsync failure
	gcClosed bool          // Close ran; no further fsync will ever come
	gcKick   chan struct{} // buffered(1): un-synced appends exist
	gcFull   chan struct{} // buffered(1): max-batch reached, skip the delay
	gcStop   chan struct{}
	gcDone   chan struct{}
}

var _ core.PendingSink = (*shard)(nil)

// RecordObservation implements core.HistorySink: frame the observation
// and append it to the WAL (write-ahead — the caller only makes the
// observation visible in memory after this returns nil). It is called
// with the owning History's lock held, which makes WAL order identical
// to in-memory order by construction.
func (sh *shard) RecordObservation(o core.Observation) error {
	if sh.opts.GroupCommit {
		// Direct callers get the same durability as the pending path:
		// write, then block until the covering group fsync returns.
		ticket, err := sh.RecordObservationPending(o)
		if err != nil {
			return err
		}
		return sh.WaitObservation(ticket)
	}
	sh.mu.Lock()
	if sh.broken != nil {
		sh.mu.Unlock()
		return fmt.Errorf("histstore: shard unusable: %w", sh.broken)
	}
	var began time.Time
	if sh.obs != nil {
		began = time.Now()
	}
	sh.buf = appendFrame(sh.buf[:0], sh.nextSeq, o)
	if _, err := sh.wal.Write(sh.buf); err != nil {
		sh.mu.Unlock()
		return fmt.Errorf("histstore: wal append: %w", err)
	}
	if sh.opts.Fsync {
		if err := sh.wal.Sync(); err != nil {
			sh.mu.Unlock()
			return fmt.Errorf("histstore: wal fsync: %w", err)
		}
	}
	seq := sh.nextSeq
	sh.nextSeq++
	if sh.opts.Mirror != nil {
		sh.opts.Mirror.AppendFrame(sh.name, seq, sh.buf)
	}
	if sh.obs != nil {
		sh.obs.walAppendSeconds.Observe(time.Since(began).Seconds())
	}
	sh.mu.Unlock()
	if sh.opts.Mirror != nil {
		return sh.opts.Mirror.WaitFrame(sh.name, seq)
	}
	return nil
}

// RecordObservationPending implements core.PendingSink: append the frame
// to the WAL (write-ahead, under the owning History's lock like
// RecordObservation) but defer durability to the covering group fsync,
// which the caller waits for via WaitObservation after releasing the
// History lock. Without GroupCommit the store has no deferred-durability
// window, so this is RecordObservation with a no-op ticket.
func (sh *shard) RecordObservationPending(o core.Observation) (uint64, error) {
	if !sh.opts.GroupCommit {
		return 0, sh.RecordObservation(o)
	}
	sh.mu.Lock()
	if sh.broken != nil {
		sh.mu.Unlock()
		return 0, fmt.Errorf("histstore: shard unusable: %w", sh.broken)
	}
	var began time.Time
	if sh.obs != nil {
		began = time.Now()
	}
	sh.buf = appendFrame(sh.buf[:0], sh.nextSeq, o)
	if _, err := sh.wal.Write(sh.buf); err != nil {
		sh.mu.Unlock()
		return 0, fmt.Errorf("histstore: wal append: %w", err)
	}
	ticket := sh.nextSeq
	sh.nextSeq++
	if sh.opts.Mirror != nil {
		sh.opts.Mirror.AppendFrame(sh.name, ticket, sh.buf)
	}
	if sh.obs != nil {
		sh.obs.walAppendSeconds.Observe(time.Since(began).Seconds())
	}
	sh.gcMu.Lock()
	full := ticket+1-sh.gcSynced >= uint64(sh.opts.CommitBatchSize)
	sh.gcMu.Unlock()
	sh.mu.Unlock()
	// Wake the committer; when the batch is full, also tell it to skip
	// its max-delay. Both channels are buffered(1), so a pending token
	// means "state already reflects this" and dropping is correct.
	select {
	case sh.gcKick <- struct{}{}:
	default:
	}
	if full {
		select {
		case sh.gcFull <- struct{}{}:
		default:
		}
	}
	return ticket, nil
}

// WaitObservation implements core.PendingSink: block until the ticket's
// append is durable (its covering fsync returned), the committer hit a
// sticky error, or the store closed. Durability wins over a sticky
// error: a write the disk has already accepted is acknowledged even if
// a later fsync failed.
func (sh *shard) WaitObservation(ticket uint64) error {
	if !sh.opts.GroupCommit {
		return nil
	}
	sh.gcMu.Lock()
	for {
		if sh.gcSynced > ticket {
			break
		}
		if sh.gcErr != nil {
			err := sh.gcErr
			sh.gcMu.Unlock()
			return fmt.Errorf("histstore: group commit: %w", err)
		}
		if sh.gcClosed {
			sh.gcMu.Unlock()
			return errors.New("histstore: store closed before group commit")
		}
		sh.gcCond.Wait()
	}
	sh.gcMu.Unlock()
	// Locally durable; now wait for the mirror (which never fails an
	// acknowledged-durable write — it degrades instead).
	if sh.opts.Mirror != nil {
		return sh.opts.Mirror.WaitFrame(sh.name, ticket)
	}
	return nil
}

// commitLoop is the shard's committer goroutine: woken by the first
// append after a flush, it issues the one fsync covering everything
// written so far. With no CommitInterval the sync starts immediately —
// batches form naturally from the appends that pile up while the
// previous fsync is in flight; with one, the committer first waits up
// to the interval for companions (cut short when the batch fills or
// the store closes).
func (sh *shard) commitLoop() {
	defer close(sh.gcDone)
	var timer *time.Timer
	for {
		select {
		case <-sh.gcStop:
			// Final flush so every in-flight waiter resolves durable.
			sh.syncBatch()
			return
		case <-sh.gcKick:
		}
		if d := sh.opts.CommitInterval; d > 0 {
			if timer == nil {
				timer = time.NewTimer(d)
			} else {
				timer.Reset(d)
			}
			select {
			case <-timer.C:
			case <-sh.gcFull:
				if !timer.Stop() {
					<-timer.C
				}
			case <-sh.gcStop:
				if !timer.Stop() {
					<-timer.C
				}
				sh.syncBatch()
				return
			}
		}
		sh.syncBatch()
	}
}

// syncBatch fsyncs the WAL once and advances the durable watermark over
// every append written before the sync, waking their waiters. Called
// only from commitLoop.
func (sh *shard) syncBatch() {
	sh.mu.Lock()
	if sh.broken != nil {
		err := sh.broken
		sh.mu.Unlock()
		sh.gcMu.Lock()
		if sh.gcErr == nil {
			sh.gcErr = err
		}
		sh.gcCond.Broadcast()
		sh.gcMu.Unlock()
		return
	}
	target := sh.nextSeq
	sh.gcMu.Lock()
	pending := target > sh.gcSynced
	sh.gcMu.Unlock()
	if !pending {
		sh.mu.Unlock()
		return
	}
	err := sh.wal.Sync()
	if err != nil {
		// An fsync the kernel rejected may have dropped dirty pages;
		// nothing appended afterwards could be trusted either.
		sh.broken = fmt.Errorf("group-commit fsync: %w", err)
	}
	sh.mu.Unlock()
	sh.gcMu.Lock()
	defer sh.gcMu.Unlock()
	if err != nil {
		if sh.gcErr == nil {
			sh.gcErr = err
		}
	} else if target > sh.gcSynced {
		batch := target - sh.gcSynced
		sh.gcSynced = target
		if sh.obs != nil {
			sh.obs.commitBatch.Observe(float64(batch))
			sh.obs.fsyncsAvoided.Add(float64(batch - 1))
		}
	}
	sh.gcCond.Broadcast()
}

func (sh *shard) checkpoint(snap *core.Snapshot) (err error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.obs != nil {
		began := time.Now()
		defer func() {
			if err != nil {
				sh.obs.checkpointFailures.Inc()
				return
			}
			sh.obs.checkpoints.Inc()
			sh.obs.checkpointSeconds.Observe(time.Since(began).Seconds())
		}()
	}
	if sh.broken != nil {
		return fmt.Errorf("histstore: shard unusable: %w", sh.broken)
	}
	count := uint64(snap.Len())
	if count < sh.snapCount {
		// A snapshot older than the durable one cannot move the shard
		// forward; keep what is on disk.
		return nil
	}
	if count == sh.snapCount && sh.nextSeq == sh.snapCount {
		return nil // nothing new since the last checkpoint
	}
	snapPath := filepath.Join(sh.dir, snapshotName)
	tmp := snapPath + tmpSuffix
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("histstore: checkpoint: %w", err)
	}
	if err := core.SaveSnapshot(snap, f); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("histstore: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, snapPath); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("histstore: checkpoint: %w", err)
	}
	// From here on the new snapshot is the durable truth; compact the
	// WAL down to the suffix it does not cover. Appends are blocked on
	// sh.mu, so the file cannot grow under the rewrite.
	if err := sh.rewriteWAL(count); err != nil {
		return err
	}
	sh.snapCount = count
	if sh.gcCond != nil {
		// The checkpoint fsynced the snapshot and the compacted WAL, so
		// every append written so far is durable; release any waiters
		// without charging the committer another fsync.
		sh.gcMu.Lock()
		if sh.nextSeq > sh.gcSynced {
			sh.gcSynced = sh.nextSeq
		}
		sh.gcCond.Broadcast()
		sh.gcMu.Unlock()
	}
	return nil
}

// rewriteWAL replaces the WAL with only the frames whose sequence is
// not covered by the snapshot, via write-temp + rename.
func (sh *shard) rewriteWAL(covered uint64) error {
	walPath := filepath.Join(sh.dir, walName)
	src, err := os.Open(walPath)
	if err != nil {
		return fmt.Errorf("histstore: compacting wal: %w", err)
	}
	tmpPath := walPath + tmpSuffix
	dst, err := os.Create(tmpPath)
	if err != nil {
		src.Close()
		return fmt.Errorf("histstore: compacting wal: %w", err)
	}
	var buf []byte
	_, err = scanWAL(src, func(seq uint64, o core.Observation) error {
		if seq < covered {
			return nil
		}
		buf = appendFrame(buf[:0], seq, o)
		_, werr := dst.Write(buf)
		return werr
	})
	src.Close()
	if err == nil {
		err = dst.Sync()
	}
	if cerr := dst.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("histstore: compacting wal: %w", err)
	}
	if err := os.Rename(tmpPath, walPath); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("histstore: compacting wal: %w", err)
	}
	// The old handle still points at the replaced (now unlinked) inode;
	// reopen. If the reopen fails the shard is unusable: writes through
	// the stale handle would be acknowledged yet land in a deleted
	// file, so mark it broken and fail loudly instead.
	wal, err := os.OpenFile(walPath, os.O_RDWR, 0o644)
	if err != nil {
		sh.broken = fmt.Errorf("reopening compacted wal: %w", err)
		return fmt.Errorf("histstore: %w", sh.broken)
	}
	if _, err := wal.Seek(0, io.SeekEnd); err != nil {
		wal.Close()
		sh.broken = fmt.Errorf("seeking compacted wal: %w", err)
		return fmt.Errorf("histstore: %w", sh.broken)
	}
	sh.wal.Close()
	sh.wal = wal
	return nil
}
