package histstore

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/federation"
)

// benchObs mirrors the serving layer's observation shape: the
// federation feature vector and the (time, money) cost pair.
func benchObs(i int) core.Observation {
	x := make([]float64, federation.FeatureDim)
	for j := range x {
		x[j] = float64(i + j)
	}
	return core.Observation{X: x, Costs: []float64{float64(i), float64(i) / 2}}
}

// BenchmarkWALAppend measures one durable append through the full
// History → sink → frame → write path, without fsync (the serving
// default the <10% sweep-overhead budget is set against).
func BenchmarkWALAppend(b *testing.B) {
	s, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	h, err := s.OpenHistory("bench", federation.FeatureDim, federation.Metrics)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Append(benchObs(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendFsync is the durable-against-power-loss variant.
func BenchmarkWALAppendFsync(b *testing.B) {
	s, err := Open(b.TempDir(), Options{Fsync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	h, err := s.OpenHistory("bench", federation.FeatureDim, federation.Metrics)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Append(benchObs(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendGroupCommit measures durable appends under group
// commit with concurrent writers: every iteration is acknowledged only
// after a covering fsync, but parallel appends coalesce onto shared
// fsyncs, so per-append cost collapses toward the no-fsync path as
// parallelism grows. Compare against BenchmarkWALAppendFsync at the
// same -cpu to see the coalescing win.
func BenchmarkWALAppendGroupCommit(b *testing.B) {
	s, err := Open(b.TempDir(), Options{GroupCommit: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	h, err := s.OpenHistory("bench", federation.FeatureDim, federation.Metrics)
	if err != nil {
		b.Fatal(err)
	}
	// Appenders block on fsync, not CPU: run many goroutines per core
	// so batches actually form even on small machines.
	b.SetParallelism(32)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if err := h.Append(benchObs(i)); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkRecovery measures a cold open replaying snapshot + WAL at a
// few realistic history sizes (half snapshotted, half in the WAL).
func BenchmarkRecovery(b *testing.B) {
	for _, size := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", size), func(b *testing.B) {
			dir := b.TempDir()
			s, err := Open(dir, Options{})
			if err != nil {
				b.Fatal(err)
			}
			h, err := s.OpenHistory("bench", federation.FeatureDim, federation.Metrics)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < size/2; i++ {
				if err := h.Append(benchObs(i)); err != nil {
					b.Fatal(err)
				}
			}
			if err := s.Checkpoint("bench", h.Snapshot()); err != nil {
				b.Fatal(err)
			}
			for i := size / 2; i < size; i++ {
				if err := h.Append(benchObs(i)); err != nil {
					b.Fatal(err)
				}
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s2, err := Open(dir, Options{})
				if err != nil {
					b.Fatal(err)
				}
				h2, err := s2.OpenHistory("bench", federation.FeatureDim, federation.Metrics)
				if err != nil {
					b.Fatal(err)
				}
				if h2.Len() != size {
					b.Fatalf("recovered %d, want %d", h2.Len(), size)
				}
				if err := s2.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
