package histstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// walFrames reads a shard's raw WAL bytes and the byte offset of every
// frame boundary (including 0 and the final offset).
func walFrames(t *testing.T, dir, shard string) ([]byte, []int64) {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(dir, shard, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	bounds := []int64{0}
	off := int64(0)
	for off < int64(len(raw)) {
		n := binary.LittleEndian.Uint32(raw[off:])
		off += int64(frameHeaderSize) + int64(n)
		bounds = append(bounds, off)
	}
	return raw, bounds
}

// TestReplayIdempotentEveryBoundary is the satellite property test:
// duplicate the WAL suffix starting at every frame boundary (the shape
// an overlapping handoff stream produces) and truncate at every frame
// boundary, and recovery must deterministically yield the longest
// applied prefix — never fail the open, never double-apply.
func TestReplayIdempotentEveryBoundary(t *testing.T) {
	const n = 12
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	appendN(t, openHist(t, s, "Q12"), 0, n)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	raw, bounds := walFrames(t, dir, "Q12")
	if len(bounds) != n+1 {
		t.Fatalf("expected %d frames, found %d", n, len(bounds)-1)
	}
	walPath := filepath.Join(dir, "Q12", "wal.log")

	for i, b := range bounds {
		// Duplicate the suffix raw[b:]: frames b..n appear twice.
		dup := append(append([]byte(nil), raw...), raw[b:]...)
		if err := os.WriteFile(walPath, dup, 0o644); err != nil {
			t.Fatal(err)
		}
		s := openStore(t, dir, Options{})
		wantPrefix(t, openHist(t, s, "Q12"), n)
		s.Close()

		// Truncate at the boundary: only frames below i survive.
		if err := os.WriteFile(walPath, raw[:b], 0o644); err != nil {
			t.Fatal(err)
		}
		s = openStore(t, dir, Options{})
		wantPrefix(t, openHist(t, s, "Q12"), i)
		s.Close()

		// Restore for the next round.
		if err := os.WriteFile(walPath, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// A duplicated *prefix* (whole-log resend) must also replay cleanly.
func TestReplayWholeLogDuplicated(t *testing.T) {
	const n = 7
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	appendN(t, openHist(t, s, "Q12"), 0, n)
	s.Close()
	raw, _ := walFrames(t, dir, "Q12")
	walPath := filepath.Join(dir, "Q12", "wal.log")
	if err := os.WriteFile(walPath, append(append([]byte(nil), raw...), raw...), 0o644); err != nil {
		t.Fatal(err)
	}
	s = openStore(t, dir, Options{})
	defer s.Close()
	wantPrefix(t, openHist(t, s, "Q12"), n)
}

// A true gap — a missing frame in the middle — is data loss and must
// still fail the open rather than silently skipping history.
func TestReplayGapStillFails(t *testing.T) {
	const n = 6
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	appendN(t, openHist(t, s, "Q12"), 0, n)
	s.Close()
	raw, bounds := walFrames(t, dir, "Q12")
	// Remove frame 2.
	gap := append(append([]byte(nil), raw[:bounds[2]]...), raw[bounds[3]:]...)
	walPath := filepath.Join(dir, "Q12", "wal.log")
	if err := os.WriteFile(walPath, gap, 0o644); err != nil {
		t.Fatal(err)
	}
	s = openStore(t, dir, Options{})
	defer s.Close()
	if _, err := s.OpenHistory("Q12", 1, testMetrics); err == nil || !strings.Contains(err.Error(), "sequence gap") {
		t.Fatalf("gapped WAL opened with err = %v, want sequence gap failure", err)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	src := openStore(t, srcDir, Options{})
	defer src.Close()
	h := openHist(t, src, "Q12")
	appendN(t, h, 0, 15)
	// Checkpoint part of the history so the export carries both a
	// snapshot and a WAL suffix.
	if err := src.Checkpoint("Q12", h.Snapshot()); err != nil {
		t.Fatal(err)
	}
	appendN(t, h, 15, 5)

	var buf bytes.Buffer
	var armed uint64
	if err := src.ExportShard("Q12", &buf, func(next uint64) { armed = next }); err != nil {
		t.Fatal(err)
	}
	if armed != 20 {
		t.Fatalf("arm callback got next=%d, want 20", armed)
	}

	dst := openStore(t, dstDir, Options{})
	defer dst.Close()
	if err := dst.ImportShard("Q12", bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	wantPrefix(t, openHist(t, dst, "Q12"), 20)

	// Import must replace stale prior state, not merge with it.
	dst2Dir := t.TempDir()
	dst2 := openStore(t, dst2Dir, Options{})
	stale := openHist(t, dst2, "Q12")
	if err := stale.Append(core.Observation{X: []float64{99}, Costs: []float64{1, 1}}); err != nil {
		t.Fatal(err)
	}
	dst2.Close()
	dst2 = openStore(t, dst2Dir, Options{})
	defer dst2.Close()
	if err := dst2.ImportShard("Q12", bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	wantPrefix(t, openHist(t, dst2, "Q12"), 20)
}

func TestExportImportGuards(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	defer s.Close()
	if err := s.ExportShard("nope", &bytes.Buffer{}, nil); err == nil {
		t.Error("export of unopened shard succeeded")
	}
	openHist(t, s, "Q12")
	var buf bytes.Buffer
	if err := s.ExportShard("Q12", &buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.ImportShard("Q12", bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("import into open shard succeeded")
	}
	// Corrupt stream: flip a payload byte.
	raw := buf.Bytes()
	raw[len(raw)-sectionHeaderSize-1] ^= 0xff
	if err := s.ImportShard("Q13", bytes.NewReader(raw)); err == nil {
		t.Error("corrupt import stream accepted")
	}
}

func TestReplicaAppendOverlapAndGap(t *testing.T) {
	// Source shard: 10 observations, exported at 4.
	srcDir := t.TempDir()
	src := openStore(t, srcDir, Options{})
	defer src.Close()
	h := openHist(t, src, "Q12")
	appendN(t, h, 0, 4)
	var syncBuf bytes.Buffer
	if err := src.ExportShard("Q12", &syncBuf, nil); err != nil {
		t.Fatal(err)
	}
	appendN(t, h, 4, 6)
	raw, bounds := walFrames(t, srcDir, "Q12")

	dst := openStore(t, t.TempDir(), Options{})
	defer dst.Close()
	if err := dst.ImportShard("Q12", bytes.NewReader(syncBuf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if next, err := dst.ReplicaSeq("Q12"); err != nil || next != 4 {
		t.Fatalf("replica at %d (%v), want 4", next, err)
	}
	// Ship frames 4..7, overlapping from 2.
	if next, err := dst.AppendReplicaFrames("Q12", 2, raw[bounds[2]:bounds[7]]); err != nil || next != 7 {
		t.Fatalf("overlap append: next=%d err=%v", next, err)
	}
	// Re-ship the same batch: no-op.
	if next, err := dst.AppendReplicaFrames("Q12", 2, raw[bounds[2]:bounds[7]]); err != nil || next != 7 {
		t.Fatalf("duplicate append: next=%d err=%v", next, err)
	}
	// A gap (skipping frames 7..8) must be rejected.
	if _, err := dst.AppendReplicaFrames("Q12", 9, raw[bounds[9]:]); !errors.Is(err, ErrReplicaGap) {
		t.Fatalf("gap append err = %v, want ErrReplicaGap", err)
	}
	// Finish the stream and promote: the replica opens as a live
	// history holding exactly the source's observations.
	if next, err := dst.AppendReplicaFrames("Q12", 7, raw[bounds[7]:]); err != nil || next != 10 {
		t.Fatalf("tail append: next=%d err=%v", next, err)
	}
	wantPrefix(t, openHist(t, dst, "Q12"), 10)
	// Once open, further replica appends must be refused.
	if _, err := dst.AppendReplicaFrames("Q12", 10, nil); err == nil {
		t.Error("replica append to open shard succeeded")
	}
	if _, err := dst.ReplicaSeq("Q12"); err == nil {
		t.Error("replica query of open shard succeeded")
	}
}

// TestReplicaAppendVsPromotionRace hammers the takeover interleaving:
// replica appends racing the OpenHistory that promotes the shard to a
// live history. The open-check and the append are atomic with respect
// to the promotion, so every append either lands before the shard goes
// live or is refused — never a second handle on the live WAL.
func TestReplicaAppendVsPromotionRace(t *testing.T) {
	srcDir := t.TempDir()
	src := openStore(t, srcDir, Options{})
	defer src.Close()
	h := openHist(t, src, "Q12")
	appendN(t, h, 0, 12)
	raw, bounds := walFrames(t, srcDir, "Q12")

	dst := openStore(t, t.TempDir(), Options{})
	defer dst.Close()
	if next, err := dst.AppendReplicaFrames("Q12", 0, raw[:bounds[6]]); err != nil || next != 6 {
		t.Fatalf("seed append: next=%d err=%v", next, err)
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				// Overlapping suffix batches, as a retrying shipper sends.
				_, _ = dst.AppendReplicaFrames("Q12", 4, raw[bounds[4]:])
			}
		}()
	}
	wg.Add(1)
	var promoted *core.History
	go func() {
		defer wg.Done()
		<-start
		var err error
		promoted, err = dst.OpenHistory("Q12", 1, testMetrics)
		if err != nil {
			t.Errorf("promotion open: %v", err)
		}
	}()
	close(start)
	wg.Wait()
	// The promoted history is an intact prefix of the source, and the
	// shard refuses replica traffic from here on.
	if promoted == nil || promoted.Len() < 6 || promoted.Len() > 12 {
		t.Fatalf("promoted history has %d observations, want 6..12", promoted.Len())
	}
	wantPrefix(t, promoted, promoted.Len())
	if _, err := dst.AppendReplicaFrames("Q12", 4, raw[bounds[4]:]); err == nil {
		t.Error("replica append to promoted shard succeeded")
	}
}

// mirrorLog is a test Mirror recording (seq, frame) pairs.
type mirrorLog struct {
	mu     sync.Mutex
	shards map[string][]byte
	seqs   map[string][]uint64
	waits  map[string]uint64
}

func newMirrorLog() *mirrorLog {
	return &mirrorLog{shards: map[string][]byte{}, seqs: map[string][]uint64{}, waits: map[string]uint64{}}
}

func (m *mirrorLog) AppendFrame(shard string, seq uint64, frame []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shards[shard] = append(m.shards[shard], frame...)
	m.seqs[shard] = append(m.seqs[shard], seq)
}

func (m *mirrorLog) WaitFrame(shard string, seq uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if seq+1 > m.waits[shard] {
		m.waits[shard] = seq + 1
	}
	return nil
}

// The mirror sees every append, in WAL order, with the on-disk bytes.
func TestMirrorReceivesWALOrder(t *testing.T) {
	for _, gc := range []bool{false, true} {
		m := newMirrorLog()
		dir := t.TempDir()
		s := openStore(t, dir, Options{Mirror: m, GroupCommit: gc})
		appendN(t, openHist(t, s, "Q12"), 0, 20)
		s.Close()
		raw, _ := walFrames(t, dir, "Q12")
		m.mu.Lock()
		if !bytes.Equal(m.shards["Q12"], raw) {
			t.Errorf("gc=%v: mirrored bytes differ from WAL (%d vs %d bytes)", gc, len(m.shards["Q12"]), len(raw))
		}
		for i, seq := range m.seqs["Q12"] {
			if seq != uint64(i) {
				t.Errorf("gc=%v: mirror frame %d carried seq %d", gc, i, seq)
			}
		}
		if m.waits["Q12"] != 20 {
			t.Errorf("gc=%v: WaitFrame high-water %d, want 20", gc, m.waits["Q12"])
		}
		m.mu.Unlock()
	}
}
