package cloud

import (
	"errors"
	"math"
	"testing"

	"repro/internal/stats"
)

func TestPaperTable1Catalog(t *testing.T) {
	// Spot-check the exact prices published in Table 1.
	amazon := Amazon()
	for _, tc := range []struct {
		name  string
		vcpu  int
		mem   float64
		price float64
	}{
		{"a1.medium", 1, 2, 0.0049},
		{"a1.large", 2, 4, 0.0098},
		{"a1.xlarge", 4, 8, 0.0197},
		{"a1.2xlarge", 8, 16, 0.0394},
		{"a1.4xlarge", 16, 32, 0.0788},
	} {
		it, err := amazon.Instance(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		if it.VCPU != tc.vcpu || it.MemoryGiB != tc.mem || it.PricePerHour != tc.price {
			t.Errorf("%s = %+v, want vCPU=%d mem=%v price=%v", tc.name, it, tc.vcpu, tc.mem, tc.price)
		}
		if it.StorageGiB != 0 {
			t.Errorf("%s: Amazon a1 family is EBS-only, got storage %v", tc.name, it.StorageGiB)
		}
	}
	microsoft := Microsoft()
	for _, tc := range []struct {
		name    string
		vcpu    int
		mem     float64
		storage float64
		price   float64
	}{
		{"B1S", 1, 1, 2, 0.011},
		{"B1MS", 1, 2, 4, 0.021},
		{"B2S", 2, 4, 8, 0.042},
		{"B2MS", 2, 8, 16, 0.084},
		{"B4MS", 4, 16, 32, 0.166},
		{"B8MS", 8, 32, 64, 0.333},
	} {
		it, err := microsoft.Instance(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		if it.VCPU != tc.vcpu || it.MemoryGiB != tc.mem || it.StorageGiB != tc.storage || it.PricePerHour != tc.price {
			t.Errorf("%s = %+v, want %+v", tc.name, it, tc)
		}
	}
}

func TestPaperPricingObservation(t *testing.T) {
	// The paper notes Amazon instances are cheaper than comparable
	// Microsoft instances (without storage). Check a like-for-like pair:
	// a1.large (2 vCPU, 4 GiB) vs B2S (2 vCPU, 4 GiB).
	a, err := Amazon().Instance("a1.large")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Microsoft().Instance("B2S")
	if err != nil {
		t.Fatal(err)
	}
	if a.PricePerHour >= m.PricePerHour {
		t.Errorf("a1.large (%v) should undercut B2S (%v)", a.PricePerHour, m.PricePerHour)
	}
}

func TestUnknownInstance(t *testing.T) {
	if _, err := Amazon().Instance("m5.large"); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("got %v, want ErrUnknownInstance", err)
	}
}

func TestGoogleCatalogNonEmpty(t *testing.T) {
	g := Google()
	if len(g.Instances) == 0 {
		t.Fatal("Google catalog is empty")
	}
	if _, err := g.Instance("e2-medium"); err != nil {
		t.Fatal(err)
	}
}

func TestCluster(t *testing.T) {
	c, err := NewCluster(Amazon(), "a1.xlarge", 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalVCPU() != 12 {
		t.Errorf("TotalVCPU = %d, want 12", c.TotalVCPU())
	}
	if c.TotalMemoryGiB() != 24 {
		t.Errorf("TotalMemoryGiB = %v, want 24", c.TotalMemoryGiB())
	}
	wantHourly := 3 * 0.0197
	if math.Abs(c.PricePerHour()-wantHourly) > 1e-12 {
		t.Errorf("PricePerHour = %v, want %v", c.PricePerHour(), wantHourly)
	}
	// One hour costs the hourly price; zero/negative duration is free.
	if math.Abs(c.Cost(3600)-wantHourly) > 1e-12 {
		t.Errorf("Cost(3600) = %v, want %v", c.Cost(3600), wantHourly)
	}
	if c.Cost(-5) != 0 {
		t.Error("negative duration should cost 0")
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(Amazon(), "a1.medium", 0); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := NewCluster(Amazon(), "nope", 2); !errors.Is(err, ErrUnknownInstance) {
		t.Errorf("got %v, want ErrUnknownInstance", err)
	}
}

func TestLinkTransferTime(t *testing.T) {
	l := Link{BandwidthMiBps: 100, LatencyS: 0.05}
	// 100 MiB at 100 MiB/s = 1s + latency.
	got := l.TransferTime(100 * 1024 * 1024)
	if math.Abs(got-1.05) > 1e-9 {
		t.Errorf("TransferTime = %v, want 1.05", got)
	}
	if l.TransferTime(0) != 0 || l.TransferTime(-1) != 0 {
		t.Error("empty transfer should take no time")
	}
}

func TestTransferCost(t *testing.T) {
	// 1 GiB out of Amazon at $0.09/GiB.
	got := TransferCost(Amazon(), 1024*1024*1024)
	if math.Abs(got-0.09) > 1e-12 {
		t.Errorf("TransferCost = %v, want 0.09", got)
	}
	if TransferCost(Amazon(), 0) != 0 {
		t.Error("zero bytes should cost 0")
	}
}

func TestLoadProcessBounds(t *testing.T) {
	lp := NewLoadProcess(1)
	for i := 0; i < 5000; i++ {
		f := lp.Tick()
		if f < lp.MinFactor || f > lp.MaxFactor {
			t.Fatalf("tick %d: factor %v outside [%v, %v]", i, f, lp.MinFactor, lp.MaxFactor)
		}
	}
}

func TestLoadProcessVaries(t *testing.T) {
	lp := NewLoadProcess(2)
	var o stats.Online
	for i := 0; i < 2000; i++ {
		o.Add(lp.Tick())
	}
	if o.StdDev() < 0.01 {
		t.Errorf("load process is nearly constant (σ = %v); no drift to estimate under", o.StdDev())
	}
	if o.Mean() < 0.5 || o.Mean() > 2 {
		t.Errorf("load mean %v drifted implausibly far from nominal", o.Mean())
	}
}

func TestLoadProcessDeterministic(t *testing.T) {
	a, b := NewLoadProcess(7), NewLoadProcess(7)
	for i := 0; i < 100; i++ {
		if a.Tick() != b.Tick() {
			t.Fatal("same-seed load processes diverged")
		}
	}
}

func TestLoadProcessCurrent(t *testing.T) {
	lp := NewLoadProcess(3)
	lp.Tick()
	c1 := lp.Current()
	c2 := lp.Current()
	if c1 != c2 {
		t.Error("Current should not advance state")
	}
	if c1 < lp.MinFactor || c1 > lp.MaxFactor {
		t.Errorf("Current = %v outside clamp", c1)
	}
}
