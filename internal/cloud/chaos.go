package cloud

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"repro/internal/stats"
)

// ChaosProfile parameterizes the fault classes a scenario can inject
// into the simulated federation: whole-site outages, stragglers
// (noisy-neighbour slowdowns), transient price spikes, and autoscaling
// pool resizes. All faults are expressed as multiplicative windows —
// a load multiplier applied after the LoadProcess clamp (so an outage
// is not clamped back into the normal operating range) or a price
// multiplier consulted by Cluster.Cost and TransferCost.
//
// A zero profile injects nothing; the exported helpers below hold the
// named profiles the scenario matrix runs.
type ChaosProfile struct {
	Name string

	// Outage: the site is effectively unavailable — work queued behind
	// it stretches by OutageFactor.
	OutageProb             float64 // per-tick start probability when idle
	OutageMinT, OutageMaxT int     // window length in ticks
	OutageFactor           float64 // load multiplier during the window
	// Straggler: the site limps along several times slower than nominal.
	StragglerProb                float64
	StragglerMinT, StragglerMaxT int
	StragglerFactor              float64
	// Price spike: spot-market style transient price surge.
	SpikeProb            float64
	SpikeMinT, SpikeMaxT int
	SpikeFactor          float64
	// Pool resize: the autoscaler grows or shrinks the shared pool; the
	// effective per-query capacity multiplier is drawn uniformly from
	// [ResizeLo, ResizeHi] (values < 1 mean the pool grew).
	ResizeProb             float64
	ResizeMinT, ResizeMaxT int
	ResizeLo, ResizeHi     float64
}

// Enabled reports whether the profile can inject any fault at all.
func (p ChaosProfile) Enabled() bool {
	return p.OutageProb > 0 || p.StragglerProb > 0 || p.SpikeProb > 0 || p.ResizeProb > 0
}

// chaosProfiles is the registry of named profiles. Probabilities are
// per *load-process tick* (one tick per plan execution touching the
// site), so a 0.01 outage probability yields roughly one outage per
// hundred executions.
var chaosProfiles = map[string]ChaosProfile{
	"none": {Name: "none"},
	"outages": {
		Name:       "outages",
		OutageProb: 0.010, OutageMinT: 5, OutageMaxT: 20, OutageFactor: 25,
	},
	"stragglers": {
		Name:          "stragglers",
		StragglerProb: 0.050, StragglerMinT: 3, StragglerMaxT: 12, StragglerFactor: 4,
	},
	"price-spikes": {
		Name:      "price-spikes",
		SpikeProb: 0.040, SpikeMinT: 10, SpikeMaxT: 40, SpikeFactor: 3,
	},
	"autoscale": {
		Name:       "autoscale",
		ResizeProb: 0.050, ResizeMinT: 8, ResizeMaxT: 30, ResizeLo: 0.5, ResizeHi: 2.0,
	},
	"mixed": {
		Name:       "mixed",
		OutageProb: 0.006, OutageMinT: 5, OutageMaxT: 20, OutageFactor: 25,
		StragglerProb: 0.030, StragglerMinT: 3, StragglerMaxT: 12, StragglerFactor: 4,
		SpikeProb: 0.025, SpikeMinT: 10, SpikeMaxT: 40, SpikeFactor: 3,
		ResizeProb: 0.030, ResizeMinT: 8, ResizeMaxT: 30, ResizeLo: 0.5, ResizeHi: 2.0,
	},
}

// ChaosProfileNames lists the named profiles, sorted, for flag help.
func ChaosProfileNames() []string {
	names := make([]string, 0, len(chaosProfiles))
	for n := range chaosProfiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseChaosProfile resolves a profile by name ("none", "outages",
// "stragglers", "price-spikes", "autoscale", "mixed").
func ParseChaosProfile(name string) (ChaosProfile, error) {
	if name == "" {
		name = "none"
	}
	p, ok := chaosProfiles[name]
	if !ok {
		return ChaosProfile{}, fmt.Errorf("cloud: unknown chaos profile %q (have %s)",
			name, strings.Join(ChaosProfileNames(), ", "))
	}
	return p, nil
}

// Chaos is a deterministic fault injector for one federation. It hands
// out one SiteChaos per site name; each site's fault schedule is driven
// by an independent RNG whose seed derives from the engine seed and the
// site name, so the schedule is reproducible regardless of the order
// sites are attached or ticked in.
type Chaos struct {
	Profile ChaosProfile
	seed    int64

	mu    sync.Mutex
	sites map[string]*SiteChaos
}

// NewChaos builds a fault injector with the given profile and seed.
func NewChaos(profile ChaosProfile, seed int64) *Chaos {
	return &Chaos{Profile: profile, seed: seed, sites: make(map[string]*SiteChaos)}
}

// Site returns the (lazily created) per-site injector for name.
func (c *Chaos) Site(name string) *SiteChaos {
	c.mu.Lock()
	defer c.mu.Unlock()
	sc, ok := c.sites[name]
	if !ok {
		h := fnv.New64a()
		_, _ = h.Write([]byte(name))
		sc = &SiteChaos{
			profile:   c.Profile,
			rng:       stats.NewRNG(c.seed ^ int64(h.Sum64()>>1)),
			loadMult:  1,
			priceMult: 1,
		}
		c.sites[name] = sc
	}
	return sc
}

// FaultCounts aggregates the windows every site injector has opened —
// the observability handle the scenario tables report.
type FaultCounts struct {
	Outages, Stragglers, Spikes, Resizes int
}

// Counts sums fault windows across all sites.
func (c *Chaos) Counts() FaultCounts {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t FaultCounts
	for _, sc := range c.sites {
		fc := sc.Counts()
		t.Outages += fc.Outages
		t.Stragglers += fc.Stragglers
		t.Spikes += fc.Spikes
		t.Resizes += fc.Resizes
	}
	return t
}

// SiteChaos is the per-site fault schedule. Chaos time advances with
// the site's LoadProcess ticks: each Tick consults advance(tick), which
// replays any skipped ticks so the schedule is a pure function of
// (profile, seed, tick) — the determinism the scenario engine pins.
type SiteChaos struct {
	profile ChaosProfile

	mu     sync.Mutex
	rng    *stats.RNG
	cursor int

	loadMult   float64
	loadUntil  int
	priceMult  float64
	priceUntil int

	counts FaultCounts
}

// advance moves the schedule forward to tick and returns the active
// load multiplier (1 when no fault window is open).
func (s *SiteChaos) advance(tick int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.cursor < tick {
		s.cursor++
		s.step(s.cursor)
	}
	return s.loadMult
}

// step opens new fault windows at tick t when none is active. At most
// one load-affecting window (outage > straggler > resize, in priority
// order) and one price window are open at a time.
func (s *SiteChaos) step(t int) {
	p := s.profile
	if t >= s.loadUntil {
		s.loadMult = 1
		switch {
		case p.OutageProb > 0 && s.rng.Bernoulli(p.OutageProb):
			s.loadMult = p.OutageFactor
			s.loadUntil = t + s.window(p.OutageMinT, p.OutageMaxT)
			s.counts.Outages++
		case p.StragglerProb > 0 && s.rng.Bernoulli(p.StragglerProb):
			s.loadMult = p.StragglerFactor
			s.loadUntil = t + s.window(p.StragglerMinT, p.StragglerMaxT)
			s.counts.Stragglers++
		case p.ResizeProb > 0 && s.rng.Bernoulli(p.ResizeProb):
			s.loadMult = s.rng.Uniform(p.ResizeLo, p.ResizeHi)
			s.loadUntil = t + s.window(p.ResizeMinT, p.ResizeMaxT)
			s.counts.Resizes++
		}
	}
	if t >= s.priceUntil {
		s.priceMult = 1
		if p.SpikeProb > 0 && s.rng.Bernoulli(p.SpikeProb) {
			s.priceMult = p.SpikeFactor
			s.priceUntil = t + s.window(p.SpikeMinT, p.SpikeMaxT)
			s.counts.Spikes++
		}
	}
}

func (s *SiteChaos) window(lo, hi int) int {
	if hi <= lo {
		return maxInt(lo, 1)
	}
	return lo + s.rng.Intn(hi-lo+1)
}

// current returns the active load multiplier without advancing time.
func (s *SiteChaos) current() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loadMult
}

// PriceFactor returns the active price multiplier (1 outside spikes).
func (s *SiteChaos) PriceFactor() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.priceMult
}

// Counts reports how many fault windows this site has opened.
func (s *SiteChaos) Counts() FaultCounts {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
