package cloud

import (
	"math"
	"testing"
)

func TestParseChaosProfile(t *testing.T) {
	for _, name := range ChaosProfileNames() {
		p, err := ParseChaosProfile(name)
		if err != nil {
			t.Fatalf("ParseChaosProfile(%q): %v", name, err)
		}
		if p.Name != name {
			t.Fatalf("profile %q carries name %q", name, p.Name)
		}
		if name == "none" && p.Enabled() {
			t.Fatal("profile none must inject nothing")
		}
		if name != "none" && !p.Enabled() {
			t.Fatalf("profile %q injects nothing", name)
		}
	}
	if _, err := ParseChaosProfile(""); err != nil {
		t.Fatalf("empty profile should resolve to none: %v", err)
	}
	if _, err := ParseChaosProfile("lava"); err == nil {
		t.Fatal("unknown profile must error")
	}
}

// chaosTrace advances one site schedule n ticks and records the load
// and price multipliers at every tick.
func chaosTrace(c *Chaos, site string, n int) (load, price []float64) {
	sc := c.Site(site)
	for i := 1; i <= n; i++ {
		load = append(load, sc.advance(i))
		price = append(price, sc.PriceFactor())
	}
	return load, price
}

func TestChaosSameSeedSameSchedule(t *testing.T) {
	prof, _ := ParseChaosProfile("mixed")
	l1, p1 := chaosTrace(NewChaos(prof, 7), "hive-aws", 600)
	l2, p2 := chaosTrace(NewChaos(prof, 7), "hive-aws", 600)
	for i := range l1 {
		if l1[i] != l2[i] || p1[i] != p2[i] {
			t.Fatalf("tick %d: same seed diverged: load %v vs %v, price %v vs %v",
				i, l1[i], l2[i], p1[i], p2[i])
		}
	}
	l3, _ := chaosTrace(NewChaos(prof, 8), "hive-aws", 600)
	same := true
	for i := range l1 {
		if l1[i] != l3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 600-tick schedules")
	}
}

// The per-site seed derives from the site name, so a site's schedule
// must not depend on which other sites were attached first.
func TestChaosSiteScheduleIndependentOfAttachOrder(t *testing.T) {
	prof, _ := ParseChaosProfile("mixed")
	a := NewChaos(prof, 21)
	a.Site("left")
	la, _ := chaosTrace(a, "right", 400)
	b := NewChaos(prof, 21)
	lb, _ := chaosTrace(b, "right", 400) // "left" never attached
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("tick %d: schedule depends on attach order: %v vs %v", i, la[i], lb[i])
		}
	}
}

func TestChaosOutageEscapesLoadClamp(t *testing.T) {
	lp := NewLoadProcess(3)
	prof := ChaosProfile{Name: "always-out", OutageProb: 1, OutageMinT: 5, OutageMaxT: 5, OutageFactor: 25}
	lp.AttachChaos(NewChaos(prof, 3).Site("s"))
	f := lp.Tick()
	if f <= lp.MaxFactor {
		t.Fatalf("outage multiplier was clamped away: factor %v <= MaxFactor %v", f, lp.MaxFactor)
	}
	if c := lp.Current(); c <= lp.MaxFactor {
		t.Fatalf("Current must see the open outage window too, got %v", c)
	}
}

func TestChaosNilAttachChangesNothing(t *testing.T) {
	plain := NewLoadProcess(11)
	attached := NewLoadProcess(11)
	attached.AttachChaos(nil)
	for i := 0; i < 200; i++ {
		if a, b := plain.Tick(), attached.Tick(); a != b {
			t.Fatalf("tick %d: nil chaos changed the load process: %v vs %v", i, a, b)
		}
	}
}

func TestChaosPriceSpikeScalesCosts(t *testing.T) {
	p := Amazon()
	cl, err := NewCluster(p, "a1.large", 4)
	if err != nil {
		t.Fatal(err)
	}
	base := cl.Cost(3600)
	baseEgress := TransferCost(p, 1<<30)

	prof := ChaosProfile{Name: "always-spike", SpikeProb: 1, SpikeMinT: 10, SpikeMaxT: 10, SpikeFactor: 3}
	sc := NewChaos(prof, 5).Site("s")
	sc.advance(1) // open the spike window
	p.AttachChaos(sc)

	if got, want := cl.Cost(3600), 3*base; math.Abs(got-want) > 1e-12 {
		t.Fatalf("spiked cluster cost = %v, want %v", got, want)
	}
	if got, want := TransferCost(p, 1<<30), 3*baseEgress; math.Abs(got-want) > 1e-12 {
		t.Fatalf("spiked egress cost = %v, want %v", got, want)
	}

	p.AttachChaos(nil)
	if got := cl.Cost(3600); got != base {
		t.Fatalf("detached cost = %v, want base %v", got, base)
	}
}

func TestChaosCountsWindows(t *testing.T) {
	prof, _ := ParseChaosProfile("mixed")
	c := NewChaos(prof, 13)
	chaosTrace(c, "a", 2000)
	chaosTrace(c, "b", 2000)
	fc := c.Counts()
	total := fc.Outages + fc.Stragglers + fc.Spikes + fc.Resizes
	if total == 0 {
		t.Fatal("mixed profile opened no fault windows in 4000 ticks")
	}
	if fc.Spikes == 0 {
		t.Fatal("mixed profile opened no price-spike windows in 4000 ticks")
	}
}
