// Package cloud models the federation substrate the paper's system runs
// on: cloud service providers with heterogeneous instance catalogs and
// pay-as-you-go pricing (paper Table 1), per-site clusters of virtual
// machines, a wide-area transfer model between sites, and time-varying
// load processes that create the variance DREAM is designed to absorb.
//
// The paper ran on a private cloud; this package is the documented
// substitution (see DESIGN.md): it reproduces the *variance classes*
// the paper attributes to federations — heterogeneous hardware,
// drifting load, wide-range communication and divergent pricing —
// in a deterministic, seedable simulator.
package cloud

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// ErrUnknownInstance is returned when an instance type is not in a
// provider's catalog.
var ErrUnknownInstance = errors.New("cloud: unknown instance type")

// InstanceType describes one purchasable VM shape.
type InstanceType struct {
	Name         string
	VCPU         int
	MemoryGiB    float64
	StorageGiB   float64 // 0 means remote-only storage (EBS-style)
	PricePerHour float64 // USD
}

// Provider is a cloud service provider with an instance catalog.
type Provider struct {
	Name      string
	Instances []InstanceType
	// EgressPerGiB is the price of data leaving the provider (USD/GiB).
	EgressPerGiB float64

	// chaos, when attached, scales prices during injected spike windows.
	// Atomic so attachment can race with concurrent cost evaluations.
	chaos atomic.Pointer[SiteChaos]
}

// AttachChaos routes this provider's pricing through a per-site fault
// injector; Cluster.Cost and TransferCost multiply by its PriceFactor.
// A nil injector detaches.
func (p *Provider) AttachChaos(sc *SiteChaos) { p.chaos.Store(sc) }

// priceFactor is the active price multiplier (1 when no chaos is
// attached or no spike window is open).
func (p *Provider) priceFactor() float64 {
	if sc := p.chaos.Load(); sc != nil {
		return sc.PriceFactor()
	}
	return 1
}

// Instance looks up an instance type by name.
func (p *Provider) Instance(name string) (InstanceType, error) {
	for _, it := range p.Instances {
		if it.Name == name {
			return it, nil
		}
	}
	return InstanceType{}, fmt.Errorf("%w: %q at provider %q", ErrUnknownInstance, name, p.Name)
}

// Amazon returns the Amazon catalog of the paper's Table 1 (a1 family,
// EBS-only storage).
func Amazon() *Provider {
	return &Provider{
		Name:         "Amazon",
		EgressPerGiB: 0.09,
		Instances: []InstanceType{
			{Name: "a1.medium", VCPU: 1, MemoryGiB: 2, StorageGiB: 0, PricePerHour: 0.0049},
			{Name: "a1.large", VCPU: 2, MemoryGiB: 4, StorageGiB: 0, PricePerHour: 0.0098},
			{Name: "a1.xlarge", VCPU: 4, MemoryGiB: 8, StorageGiB: 0, PricePerHour: 0.0197},
			{Name: "a1.2xlarge", VCPU: 8, MemoryGiB: 16, StorageGiB: 0, PricePerHour: 0.0394},
			{Name: "a1.4xlarge", VCPU: 16, MemoryGiB: 32, StorageGiB: 0, PricePerHour: 0.0788},
		},
	}
}

// Microsoft returns the Microsoft catalog of the paper's Table 1
// (B family, bundled storage).
func Microsoft() *Provider {
	return &Provider{
		Name:         "Microsoft",
		EgressPerGiB: 0.087,
		Instances: []InstanceType{
			{Name: "B1S", VCPU: 1, MemoryGiB: 1, StorageGiB: 2, PricePerHour: 0.011},
			{Name: "B1MS", VCPU: 1, MemoryGiB: 2, StorageGiB: 4, PricePerHour: 0.021},
			{Name: "B2S", VCPU: 2, MemoryGiB: 4, StorageGiB: 8, PricePerHour: 0.042},
			{Name: "B2MS", VCPU: 2, MemoryGiB: 8, StorageGiB: 16, PricePerHour: 0.084},
			{Name: "B4MS", VCPU: 4, MemoryGiB: 16, StorageGiB: 32, PricePerHour: 0.166},
			{Name: "B8MS", VCPU: 8, MemoryGiB: 32, StorageGiB: 64, PricePerHour: 0.333},
		},
	}
}

// Google returns a representative third catalog so examples can span
// the three providers named in the paper's architecture figure.
func Google() *Provider {
	return &Provider{
		Name:         "Google",
		EgressPerGiB: 0.08,
		Instances: []InstanceType{
			{Name: "e2-small", VCPU: 2, MemoryGiB: 2, StorageGiB: 0, PricePerHour: 0.0134},
			{Name: "e2-medium", VCPU: 2, MemoryGiB: 4, StorageGiB: 0, PricePerHour: 0.0268},
			{Name: "e2-standard-4", VCPU: 4, MemoryGiB: 16, StorageGiB: 0, PricePerHour: 0.1073},
			{Name: "e2-standard-8", VCPU: 8, MemoryGiB: 32, StorageGiB: 0, PricePerHour: 0.2146},
		},
	}
}

// Cluster is a homogeneous group of VMs rented at one provider.
type Cluster struct {
	Provider *Provider
	Type     InstanceType
	Nodes    int
}

// NewCluster validates and builds a cluster.
func NewCluster(p *Provider, instanceName string, nodes int) (*Cluster, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("cloud: cluster needs at least one node, got %d", nodes)
	}
	it, err := p.Instance(instanceName)
	if err != nil {
		return nil, err
	}
	return &Cluster{Provider: p, Type: it, Nodes: nodes}, nil
}

// TotalVCPU returns the aggregate vCPU count.
func (c *Cluster) TotalVCPU() int { return c.Nodes * c.Type.VCPU }

// TotalMemoryGiB returns the aggregate memory.
func (c *Cluster) TotalMemoryGiB() float64 { return float64(c.Nodes) * c.Type.MemoryGiB }

// PricePerHour returns the aggregate rental price.
func (c *Cluster) PricePerHour() float64 { return float64(c.Nodes) * c.Type.PricePerHour }

// Cost returns the pay-as-you-go monetary cost of occupying the whole
// cluster for the given number of seconds. Billing is per-second, the
// granularity all three providers converged on.
func (c *Cluster) Cost(seconds float64) float64 {
	if seconds < 0 {
		return 0
	}
	return c.PricePerHour() * seconds / 3600 * c.Provider.priceFactor()
}

// Link models a wide-area connection between two sites.
type Link struct {
	// BandwidthMiBps is the sustained throughput in MiB/s.
	BandwidthMiBps float64
	// LatencyS is the one-way setup latency in seconds.
	LatencyS float64
}

// TransferTime returns the seconds needed to ship the given number of
// bytes across the link.
func (l Link) TransferTime(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return l.LatencyS + bytes/(l.BandwidthMiBps*1024*1024)
}

// TransferCost returns the egress charge for shipping bytes out of the
// source provider.
func TransferCost(from *Provider, bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return from.EgressPerGiB * bytes / (1024 * 1024 * 1024) * from.priceFactor()
}

// LoadProcess is a time-varying multiplicative load factor for one
// site. It combines a random walk (tenant churn), occasional persistent
// jump shocks (VM migrations, noisy-neighbour arrivals), a diurnal wave
// (office-hours load) and white noise — the "load evolution" and
// "variability of environment" of the paper's Section 1. Values are
// clamped to [MinFactor, MaxFactor].
type LoadProcess struct {
	// Walk step standard deviation per tick; default 0.12.
	WalkStd float64
	// JumpProb is the per-tick probability of a persistent level shift;
	// default 0.06.
	JumpProb float64
	// JumpStd is the standard deviation of a jump; default 0.40.
	JumpStd float64
	// DiurnalAmplitude of the sinusoidal component; default 0.2.
	DiurnalAmplitude float64
	// DiurnalPeriod in ticks; default 120.
	DiurnalPeriod float64
	// NoiseStd of the per-observation white noise; default 0.05.
	NoiseStd float64
	// MinFactor/MaxFactor clamp the factor; defaults 0.4 and 3.0.
	MinFactor, MaxFactor float64

	mu    sync.Mutex
	rng   *stats.RNG
	walk  float64
	tick  int
	chaos *SiteChaos
}

// AttachChaos routes this load process through a per-site fault
// injector. The injector's multiplier is applied *after* the
// [MinFactor, MaxFactor] clamp so an outage can push the factor far
// outside the normal operating range — that is the point of the fault.
// A nil injector detaches.
func (lp *LoadProcess) AttachChaos(sc *SiteChaos) {
	lp.mu.Lock()
	lp.chaos = sc
	lp.mu.Unlock()
}

// NewLoadProcess returns a load process with the given seed; zero
// fields take the documented defaults. The defaults make the drift the
// *dominant* variance source (walk + diurnal swing well above the white
// noise), matching the paper's premise that long-gone observations are
// expired information rather than extra signal.
func NewLoadProcess(seed int64) *LoadProcess {
	return &LoadProcess{
		WalkStd:          0.12,
		JumpProb:         0.06,
		JumpStd:          0.40,
		DiurnalAmplitude: 0.2,
		DiurnalPeriod:    120,
		NoiseStd:         0.05,
		MinFactor:        0.4,
		MaxFactor:        3.0,
		rng:              stats.NewRNG(seed),
	}
}

// Tick advances simulated time one step and returns the current load
// factor (1.0 = nominal). Safe for concurrent use: a serving layer
// executes plans from many goroutines against one shared federation.
func (lp *LoadProcess) Tick() float64 {
	lp.mu.Lock()
	defer lp.mu.Unlock()
	lp.tick++
	lp.walk += lp.rng.Normal(0, lp.WalkStd)
	if lp.JumpProb > 0 && lp.rng.Bernoulli(lp.JumpProb) {
		lp.walk += lp.rng.Normal(0, lp.JumpStd)
	}
	// Keep the walk itself loosely bounded so factors cannot drift
	// beyond recovery over long experiments.
	if lp.walk > 1 {
		lp.walk = 1
	}
	if lp.walk < -0.6 {
		lp.walk = -0.6
	}
	diurnal := lp.DiurnalAmplitude * math.Sin(2*math.Pi*float64(lp.tick)/lp.DiurnalPeriod)
	noise := lp.rng.Normal(0, lp.NoiseStd)
	f := 1 + lp.walk + diurnal + noise
	if f < lp.MinFactor {
		f = lp.MinFactor
	}
	if f > lp.MaxFactor {
		f = lp.MaxFactor
	}
	if lp.chaos != nil {
		f *= lp.chaos.advance(lp.tick)
	}
	return f
}

// Current returns the load factor without advancing time (diurnal and
// walk state as of the last Tick, without fresh noise).
func (lp *LoadProcess) Current() float64 {
	lp.mu.Lock()
	defer lp.mu.Unlock()
	diurnal := lp.DiurnalAmplitude * math.Sin(2*math.Pi*float64(lp.tick)/lp.DiurnalPeriod)
	f := 1 + lp.walk + diurnal
	if f < lp.MinFactor {
		f = lp.MinFactor
	}
	if f > lp.MaxFactor {
		f = lp.MaxFactor
	}
	if lp.chaos != nil {
		f *= lp.chaos.current()
	}
	return f
}
