package moo

import (
	"math"
	"testing"
)

// frontQuality returns the mean distance of a front to the true ZDT1
// front f2 = 1 − sqrt(f1) plus its f1 spread.
func frontQuality(front []Individual) (meanDist, spread float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, ind := range front {
		want := 1 - math.Sqrt(ind.Costs[0])
		meanDist += math.Abs(ind.Costs[1] - want)
		if ind.Costs[0] < lo {
			lo = ind.Costs[0]
		}
		if ind.Costs[0] > hi {
			hi = ind.Costs[0]
		}
	}
	return meanDist / float64(len(front)), hi - lo
}

func TestSPEA2OnSchaffer(t *testing.T) {
	res, err := SPEA2(schaffer{}, NSGAIIConfig{PopSize: 40, Generations: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	for _, ind := range res.Front {
		if ind.X[0] < -0.3 || ind.X[0] > 2.3 {
			t.Errorf("SPEA2 front member x = %v outside Pareto set [0,2]", ind.X[0])
		}
	}
	if res.Evaluations == 0 {
		t.Error("no evaluations counted")
	}
}

func TestSPEA2OnZDT1(t *testing.T) {
	res, err := SPEA2(zdt1{dim: 6}, NSGAIIConfig{PopSize: 60, Generations: 80, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	dist, spread := frontQuality(res.Front)
	if dist > 0.25 {
		t.Errorf("SPEA2 mean distance to ZDT1 front = %v, want < 0.25", dist)
	}
	if spread < 0.4 {
		t.Errorf("SPEA2 f1 spread = %v, want ≥ 0.4", spread)
	}
}

func TestSPEA2FrontNonDominated(t *testing.T) {
	res, err := SPEA2(zdt1{dim: 4}, NSGAIIConfig{PopSize: 30, Generations: 25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range res.Front {
		for j, b := range res.Front {
			if i == j {
				continue
			}
			dom, err := ParetoDominates(a.Costs, b.Costs)
			if err != nil {
				t.Fatal(err)
			}
			if dom {
				t.Fatalf("front member %d dominates %d", i, j)
			}
		}
	}
}

func TestSPEA2Deterministic(t *testing.T) {
	run := func() []Individual {
		res, err := SPEA2(schaffer{}, NSGAIIConfig{PopSize: 16, Generations: 10, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res.Front
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("same-seed SPEA2 runs differ: %d vs %d front members", len(a), len(b))
	}
	for i := range a {
		if a[i].Costs[0] != b[i].Costs[0] {
			t.Fatal("same-seed SPEA2 runs produced different fronts")
		}
	}
}

func TestSPEA2BadBounds(t *testing.T) {
	if _, err := SPEA2(badBounds{}, NSGAIIConfig{PopSize: 4, Generations: 1}); err == nil {
		t.Error("inverted bounds accepted")
	}
}

func TestMOEADOnSchaffer(t *testing.T) {
	res, err := MOEAD(schaffer{}, MOEADConfig{Subproblems: 50, Generations: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	for _, ind := range res.Front {
		if ind.X[0] < -0.3 || ind.X[0] > 2.3 {
			t.Errorf("MOEA/D front member x = %v outside Pareto set", ind.X[0])
		}
	}
}

func TestMOEADOnZDT1(t *testing.T) {
	res, err := MOEAD(zdt1{dim: 6}, MOEADConfig{Subproblems: 60, Generations: 120, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	dist, spread := frontQuality(res.Front)
	if dist > 0.25 {
		t.Errorf("MOEA/D mean distance to ZDT1 front = %v, want < 0.25", dist)
	}
	if spread < 0.4 {
		t.Errorf("MOEA/D f1 spread = %v, want ≥ 0.4", spread)
	}
}

func TestMOEADDefaultsAndDeterminism(t *testing.T) {
	run := func() *Result {
		res, err := MOEAD(schaffer{}, MOEADConfig{Subproblems: 20, Generations: 10, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Front) != len(b.Front) {
		t.Fatal("same-seed MOEA/D runs differ")
	}
	if a.Evaluations != b.Evaluations {
		t.Fatal("evaluation counts differ between same-seed runs")
	}
	// Defaults path: zero config values.
	if _, err := MOEAD(schaffer{}, MOEADConfig{Subproblems: 8, Generations: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestMOEADRejectsNon2Objective(t *testing.T) {
	if _, err := MOEAD(threeObj{}, MOEADConfig{Subproblems: 8, Generations: 2}); err == nil {
		t.Error("3-objective problem accepted by 2-objective MOEA/D")
	}
}

type threeObj struct{}

func (threeObj) Bounds() (lo, hi []float64) { return []float64{0}, []float64{1} }
func (threeObj) Evaluate(x []float64) []float64 {
	return []float64{x[0], 1 - x[0], x[0] * x[0]}
}

// TestOptimizersComparableOnZDT1 cross-checks that all four optimizers
// land on the same front within tolerance — the ablation the paper's
// §2.4 implies when it lists them as interchangeable candidates.
func TestOptimizersComparableOnZDT1(t *testing.T) {
	type runner struct {
		name string
		run  func() (*Result, error)
	}
	for _, r := range []runner{
		{"nsga2", func() (*Result, error) {
			return NSGAII(zdt1{dim: 6}, NSGAIIConfig{PopSize: 60, Generations: 80, Seed: 11})
		}},
		{"nsgag", func() (*Result, error) {
			return NSGAG(zdt1{dim: 6}, NSGAIIConfig{PopSize: 60, Generations: 80, Seed: 11}, 6)
		}},
		{"spea2", func() (*Result, error) {
			return SPEA2(zdt1{dim: 6}, NSGAIIConfig{PopSize: 60, Generations: 80, Seed: 11})
		}},
		{"moead", func() (*Result, error) {
			return MOEAD(zdt1{dim: 6}, MOEADConfig{Subproblems: 60, Generations: 80, Seed: 11})
		}},
	} {
		res, err := r.run()
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		dist, _ := frontQuality(res.Front)
		if dist > 0.3 {
			t.Errorf("%s: mean distance to ZDT1 front = %v, want < 0.3", r.name, dist)
		}
	}
}
