package moo

import (
	"math"
	"sort"

	"repro/internal/stats"
)

// NSGAG runs NSGA-G, the grid-based NSGA variant the authors proposed
// in companion work (Le, Kantere, d'Orazio, BPOD@BigData 2018) and cite
// as a Multi-Objective Optimizer candidate. It follows the NSGA-II
// loop but replaces crowding-distance truncation of the final partial
// front with *grid selection*: the objective space of the front is cut
// into Divisions^M cells and survivors are drawn round-robin from the
// least-populated cells, which spreads the front at lower selection
// cost than sorting every objective.
func NSGAG(p Problem, cfg NSGAIIConfig, divisions int) (*Result, error) {
	if divisions <= 0 {
		divisions = 4
	}
	lo, hi, err := validateBounds(p)
	if err != nil {
		return nil, err
	}
	dim := len(lo)
	if cfg.PopSize <= 0 {
		cfg.PopSize = 100
	}
	if cfg.PopSize%2 == 1 {
		cfg.PopSize++
	}
	if cfg.Generations <= 0 {
		cfg.Generations = 100
	}
	if cfg.CrossoverProb <= 0 {
		cfg.CrossoverProb = 0.9
	}
	if cfg.MutationProb <= 0 {
		cfg.MutationProb = 1 / float64(dim)
	}
	if cfg.EtaCrossover <= 0 {
		cfg.EtaCrossover = 15
	}
	if cfg.EtaMutation <= 0 {
		cfg.EtaMutation = 20
	}
	rng := stats.NewRNG(cfg.Seed)
	workers := resolveWorkers(cfg.Workers)

	evals := 0
	pop := evalBatch(p, randomPopulation(cfg.PopSize, lo, hi, rng), workers)
	evals += len(pop)

	for gen := 0; gen < cfg.Generations; gen++ {
		ranks, crowd, err := rankAndCrowd(pop)
		if err != nil {
			return nil, err
		}
		childXs := make([][]float64, 0, cfg.PopSize)
		for len(childXs) < cfg.PopSize {
			p1 := tournament(pop, ranks, crowd, rng)
			p2 := tournament(pop, ranks, crowd, rng)
			c1, c2 := sbxCrossover(p1.X, p2.X, lo, hi, cfg, rng)
			polynomialMutate(c1, lo, hi, cfg, rng)
			polynomialMutate(c2, lo, hi, cfg, rng)
			childXs = append(childXs, c1, c2)
		}
		evals += len(childXs)
		combined := append(pop, evalBatch(p, childXs, workers)...)
		pop, err = gridSelection(combined, cfg.PopSize, divisions, rng)
		if err != nil {
			return nil, err
		}
	}

	costs := costsOf(pop)
	fronts, err := NonDominatedSort(costs)
	if err != nil {
		return nil, err
	}
	res := &Result{Population: pop, Evaluations: evals}
	for rank, front := range fronts {
		for _, i := range front {
			pop[i].Rank = rank
		}
	}
	for _, i := range fronts[0] {
		res.Front = append(res.Front, pop[i])
	}
	return res, nil
}

// gridSelection keeps n individuals: whole fronts first, then fills the
// remainder from the partial front by drawing round-robin from the
// least-populated grid cells.
func gridSelection(combined []Individual, n, divisions int, rng *stats.RNG) ([]Individual, error) {
	costs := costsOf(combined)
	fronts, err := NonDominatedSort(costs)
	if err != nil {
		return nil, err
	}
	out := make([]Individual, 0, n)
	for _, front := range fronts {
		if len(out)+len(front) <= n {
			for _, i := range front {
				out = append(out, combined[i])
			}
			continue
		}
		need := n - len(out)
		for _, i := range pickFromGrid(costs, front, need, divisions, rng) {
			out = append(out, combined[i])
		}
		break
	}
	return out, nil
}

// pickFromGrid buckets the front into grid cells over its own
// objective-space bounding box and draws `need` members, visiting the
// emptiest cells first and picking randomly inside each cell.
func pickFromGrid(costs [][]float64, front []int, need, divisions int, rng *stats.RNG) []int {
	if need >= len(front) {
		return front
	}
	nObj := len(costs[front[0]])
	lo := make([]float64, nObj)
	hi := make([]float64, nObj)
	for m := range lo {
		lo[m], hi[m] = math.Inf(1), math.Inf(-1)
	}
	for _, i := range front {
		for m, v := range costs[i] {
			if v < lo[m] {
				lo[m] = v
			}
			if v > hi[m] {
				hi[m] = v
			}
		}
	}
	cellOf := func(i int) string {
		// Encode the cell coordinates compactly; nObj is small (2–3).
		key := make([]byte, 0, nObj*2)
		for m, v := range costs[i] {
			var c int
			if hi[m] > lo[m] {
				c = int(float64(divisions) * (v - lo[m]) / (hi[m] - lo[m]))
				if c == divisions {
					c = divisions - 1
				}
			}
			key = append(key, byte(m), byte(c))
		}
		return string(key)
	}
	cells := make(map[string][]int)
	for _, i := range front {
		k := cellOf(i)
		cells[k] = append(cells[k], i)
	}
	keys := make([]string, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	// Emptiest cells first; deterministic tie-break on the key.
	sort.Slice(keys, func(a, b int) bool {
		if len(cells[keys[a]]) != len(cells[keys[b]]) {
			return len(cells[keys[a]]) < len(cells[keys[b]])
		}
		return keys[a] < keys[b]
	})
	picked := make([]int, 0, need)
	for len(picked) < need {
		for _, k := range keys {
			members := cells[k]
			if len(members) == 0 {
				continue
			}
			j := rng.Intn(len(members))
			picked = append(picked, members[j])
			cells[k] = append(members[:j], members[j+1:]...)
			if len(picked) == need {
				break
			}
		}
	}
	return picked
}
