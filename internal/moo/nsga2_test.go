package moo

import (
	"math"
	"testing"
)

// zdt1 is the standard ZDT1 benchmark: convex Pareto front
// f2 = 1 − sqrt(f1) at g = 1 (all decision vars beyond the first are 0).
type zdt1 struct{ dim int }

func (z zdt1) Bounds() (lo, hi []float64) {
	lo = make([]float64, z.dim)
	hi = make([]float64, z.dim)
	for i := range hi {
		hi[i] = 1
	}
	return lo, hi
}

func (z zdt1) Evaluate(x []float64) []float64 {
	f1 := x[0]
	g := 1.0
	for _, v := range x[1:] {
		g += 9 * v / float64(z.dim-1)
	}
	h := 1 - math.Sqrt(f1/g)
	return []float64{f1, g * h}
}

// schaffer is Schaffer's single-variable problem: f1 = x², f2 = (x−2)²;
// the Pareto set is x ∈ [0, 2].
type schaffer struct{}

func (schaffer) Bounds() (lo, hi []float64) { return []float64{-10}, []float64{10} }
func (schaffer) Evaluate(x []float64) []float64 {
	return []float64{x[0] * x[0], (x[0] - 2) * (x[0] - 2)}
}

func TestNSGAIIOnSchaffer(t *testing.T) {
	res, err := NSGAII(schaffer{}, NSGAIIConfig{PopSize: 60, Generations: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	for _, ind := range res.Front {
		if ind.X[0] < -0.1 || ind.X[0] > 2.1 {
			t.Errorf("front member x = %v outside Pareto set [0,2]", ind.X[0])
		}
		if ind.Rank != 0 {
			t.Errorf("front member has rank %d", ind.Rank)
		}
	}
	if res.Evaluations == 0 {
		t.Error("no evaluations counted")
	}
}

func TestNSGAIIOnZDT1(t *testing.T) {
	res, err := NSGAII(zdt1{dim: 8}, NSGAIIConfig{PopSize: 80, Generations: 120, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Front quality: mean distance to the true front f2 = 1 − sqrt(f1)
	// should be small.
	var dist float64
	for _, ind := range res.Front {
		want := 1 - math.Sqrt(ind.Costs[0])
		dist += math.Abs(ind.Costs[1] - want)
	}
	dist /= float64(len(res.Front))
	if dist > 0.15 {
		t.Errorf("mean distance to true ZDT1 front = %v, want < 0.15", dist)
	}
	// Spread: the front should cover a reasonable range of f1.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, ind := range res.Front {
		if ind.Costs[0] < lo {
			lo = ind.Costs[0]
		}
		if ind.Costs[0] > hi {
			hi = ind.Costs[0]
		}
	}
	if hi-lo < 0.5 {
		t.Errorf("front f1 spread = %v, want ≥ 0.5", hi-lo)
	}
}

func TestNSGAIIFrontIsNonDominated(t *testing.T) {
	res, err := NSGAII(zdt1{dim: 5}, NSGAIIConfig{PopSize: 40, Generations: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range res.Front {
		for j, b := range res.Front {
			if i == j {
				continue
			}
			dom, err := ParetoDominates(a.Costs, b.Costs)
			if err != nil {
				t.Fatal(err)
			}
			if dom {
				t.Fatalf("front member %d dominates member %d", i, j)
			}
		}
	}
}

func TestNSGAIIDeterministic(t *testing.T) {
	run := func() []Individual {
		res, err := NSGAII(schaffer{}, NSGAIIConfig{PopSize: 20, Generations: 10, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return res.Front
	}
	f1, f2 := run(), run()
	if len(f1) != len(f2) {
		t.Fatalf("same-seed runs differ in front size: %d vs %d", len(f1), len(f2))
	}
	for i := range f1 {
		if f1[i].Costs[0] != f2[i].Costs[0] || f1[i].Costs[1] != f2[i].Costs[1] {
			t.Fatal("same-seed runs produced different fronts")
		}
	}
}

func TestNSGAIIBadBounds(t *testing.T) {
	if _, err := NSGAII(badBounds{}, NSGAIIConfig{PopSize: 4, Generations: 1}); err == nil {
		t.Error("inverted bounds accepted")
	}
}

type badBounds struct{}

func (badBounds) Bounds() (lo, hi []float64)     { return []float64{1}, []float64{0} }
func (badBounds) Evaluate(x []float64) []float64 { return []float64{x[0]} }

func TestNSGAGOnSchaffer(t *testing.T) {
	res, err := NSGAG(schaffer{}, NSGAIIConfig{PopSize: 60, Generations: 60, Seed: 4}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	for _, ind := range res.Front {
		if ind.X[0] < -0.2 || ind.X[0] > 2.2 {
			t.Errorf("NSGA-G front member x = %v outside Pareto set", ind.X[0])
		}
	}
}

func TestNSGAGDefaultDivisions(t *testing.T) {
	if _, err := NSGAG(schaffer{}, NSGAIIConfig{PopSize: 10, Generations: 3, Seed: 5}, 0); err != nil {
		t.Fatal(err)
	}
}

func TestAssignCrowdingBoundariesInfinite(t *testing.T) {
	costs := [][]float64{{0, 3}, {1, 2}, {2, 1}, {3, 0}}
	crowd := make([]float64, 4)
	assignCrowding(costs, []int{0, 1, 2, 3}, crowd)
	if !math.IsInf(crowd[0], 1) || !math.IsInf(crowd[3], 1) {
		t.Errorf("boundary crowding not infinite: %v", crowd)
	}
	if crowd[1] <= 0 || crowd[2] <= 0 {
		t.Errorf("interior crowding not positive: %v", crowd)
	}
}
