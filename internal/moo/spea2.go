package moo

import (
	"math"
	"sort"

	"repro/internal/stats"
)

// SPEA2 implements the Strength Pareto Evolutionary Algorithm 2
// (Zitzler, Laumanns, Thiele 2001), one of the Pareto-dominance
// optimizers the paper lists as Multi-Objective Optimizer candidates
// (its reference [37]). It maintains a fixed-size archive of the best
// individuals; fitness combines dominance *strength* with a k-nearest-
// neighbour density estimate, and archive truncation removes the most
// crowded members first.
func SPEA2(p Problem, cfg NSGAIIConfig) (*Result, error) {
	lo, hi, err := validateBounds(p)
	if err != nil {
		return nil, err
	}
	dim := len(lo)
	if cfg.PopSize <= 0 {
		cfg.PopSize = 100
	}
	if cfg.Generations <= 0 {
		cfg.Generations = 100
	}
	if cfg.CrossoverProb <= 0 {
		cfg.CrossoverProb = 0.9
	}
	if cfg.MutationProb <= 0 {
		cfg.MutationProb = 1 / float64(dim)
	}
	if cfg.EtaCrossover <= 0 {
		cfg.EtaCrossover = 15
	}
	if cfg.EtaMutation <= 0 {
		cfg.EtaMutation = 20
	}
	archiveSize := cfg.PopSize
	rng := stats.NewRNG(cfg.Seed)
	workers := resolveWorkers(cfg.Workers)

	evals := 0
	pop := evalBatch(p, randomPopulation(cfg.PopSize, lo, hi, rng), workers)
	evals += len(pop)
	var archive []Individual

	for gen := 0; gen <= cfg.Generations; gen++ {
		union := append(append([]Individual{}, pop...), archive...)
		fitness, err := spea2Fitness(union)
		if err != nil {
			return nil, err
		}
		// Environmental selection: all non-dominated members (fitness
		// < 1); truncate or fill to archiveSize.
		var next []int
		for i, f := range fitness {
			if f < 1 {
				next = append(next, i)
			}
		}
		switch {
		case len(next) > archiveSize:
			next = spea2Truncate(union, next, archiveSize)
		case len(next) < archiveSize:
			// Fill with the best dominated individuals.
			rest := make([]int, 0, len(union)-len(next))
			inNext := make(map[int]bool, len(next))
			for _, i := range next {
				inNext[i] = true
			}
			for i := range union {
				if !inNext[i] {
					rest = append(rest, i)
				}
			}
			sort.Slice(rest, func(a, b int) bool { return fitness[rest[a]] < fitness[rest[b]] })
			for _, i := range rest {
				if len(next) == archiveSize {
					break
				}
				next = append(next, i)
			}
		}
		archive = make([]Individual, len(next))
		for i, idx := range next {
			archive[i] = union[idx]
		}
		if gen == cfg.Generations {
			break
		}

		// Mating selection: binary tournaments on the archive by
		// fitness (recomputed over the archive slice order).
		archFitness, err := spea2Fitness(archive)
		if err != nil {
			return nil, err
		}
		tournament := func() Individual {
			a, b := rng.Intn(len(archive)), rng.Intn(len(archive))
			if archFitness[a] <= archFitness[b] {
				return archive[a]
			}
			return archive[b]
		}
		childXs := make([][]float64, 0, cfg.PopSize+1)
		for len(childXs) < cfg.PopSize {
			p1, p2 := tournament(), tournament()
			c1, c2 := sbxCrossover(p1.X, p2.X, lo, hi, cfg, rng)
			polynomialMutate(c1, lo, hi, cfg, rng)
			polynomialMutate(c2, lo, hi, cfg, rng)
			childXs = append(childXs, c1, c2)
		}
		evals += len(childXs)
		pop = evalBatch(p, childXs, workers)[:cfg.PopSize]
	}

	// Report the non-dominated members of the final archive.
	costs := costsOf(archive)
	fronts, err := NonDominatedSort(costs)
	if err != nil {
		return nil, err
	}
	res := &Result{Population: archive, Evaluations: evals}
	for rank, front := range fronts {
		for _, i := range front {
			archive[i].Rank = rank
		}
	}
	for _, i := range fronts[0] {
		res.Front = append(res.Front, archive[i])
	}
	return res, nil
}

// spea2Fitness computes R(i) + D(i): raw fitness (sum of strengths of
// dominators) plus the k-NN density term.
func spea2Fitness(pop []Individual) ([]float64, error) {
	n := len(pop)
	strength := make([]int, n)
	dominators := make([][]int, n) // dominators[i]: indices dominating i
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dom, err := ParetoDominates(pop[i].Costs, pop[j].Costs)
			if err != nil {
				return nil, err
			}
			if dom {
				strength[i]++
				dominators[j] = append(dominators[j], i)
			}
		}
	}
	k := int(math.Sqrt(float64(n)))
	if k < 1 {
		k = 1
	}
	fitness := make([]float64, n)
	dists := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		raw := 0.0
		for _, d := range dominators[i] {
			raw += float64(strength[d])
		}
		dists = dists[:0]
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dists = append(dists, objDistance(pop[i].Costs, pop[j].Costs))
		}
		sort.Float64s(dists)
		kd := 0.0
		if len(dists) > 0 {
			idx := k - 1
			if idx >= len(dists) {
				idx = len(dists) - 1
			}
			kd = dists[idx]
		}
		fitness[i] = raw + 1/(kd+2)
	}
	return fitness, nil
}

// spea2Truncate removes archive members whose nearest neighbour is
// closest, one at a time, until size members remain.
func spea2Truncate(pop []Individual, members []int, size int) []int {
	current := append([]int{}, members...)
	for len(current) > size {
		// Find the member with the minimal distance to its nearest
		// remaining neighbour.
		worst, worstDist := -1, math.Inf(1)
		for a, i := range current {
			nearest := math.Inf(1)
			for b, j := range current {
				if a == b {
					continue
				}
				if d := objDistance(pop[i].Costs, pop[j].Costs); d < nearest {
					nearest = d
				}
			}
			if nearest < worstDist {
				worst, worstDist = a, nearest
			}
		}
		current = append(current[:worst], current[worst+1:]...)
	}
	return current
}

func objDistance(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
