package moo

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// MOEADConfig parameterizes MOEA/D.
type MOEADConfig struct {
	// Subproblems is the number of weight vectors (population size);
	// defaults to 100.
	Subproblems int
	// Neighbors is the neighbourhood size T; defaults to 10% of the
	// subproblems (at least 2).
	Neighbors int
	// Generations defaults to 100.
	Generations int
	// CrossoverProb, EtaCrossover, MutationProb, EtaMutation follow the
	// NSGA-II defaults.
	CrossoverProb float64
	EtaCrossover  float64
	MutationProb  float64
	EtaMutation   float64
	// Seed makes runs reproducible.
	Seed int64
	// Workers parallelizes the initial-population evaluation
	// (0 sequential, negative GOMAXPROCS, else literal). The
	// generational loop itself is inherently sequential — each child
	// updates the neighbourhood the next child's parents are drawn
	// from — so only initialization fans out. With Workers > 1 the
	// Problem's Evaluate must be safe for concurrent use.
	Workers int
}

// MOEAD implements MOEA/D (Zhang & Li 2007, the paper's reference [36]):
// the multi-objective problem is decomposed into scalar subproblems via
// Tchebycheff aggregation over a uniform spread of weight vectors, and
// each subproblem is optimized using solutions of its neighbours.
// Two-objective problems only — which covers the paper's (time, money)
// MOQP space.
func MOEAD(p Problem, cfg MOEADConfig) (*Result, error) {
	lo, hi, err := validateBounds(p)
	if err != nil {
		return nil, err
	}
	dim := len(lo)
	if cfg.Subproblems <= 1 {
		cfg.Subproblems = 100
	}
	if cfg.Neighbors <= 1 {
		cfg.Neighbors = cfg.Subproblems / 10
		if cfg.Neighbors < 2 {
			cfg.Neighbors = 2
		}
	}
	if cfg.Neighbors > cfg.Subproblems {
		cfg.Neighbors = cfg.Subproblems
	}
	if cfg.Generations <= 0 {
		cfg.Generations = 100
	}
	ga := NSGAIIConfig{
		CrossoverProb: cfg.CrossoverProb,
		EtaCrossover:  cfg.EtaCrossover,
		MutationProb:  cfg.MutationProb,
		EtaMutation:   cfg.EtaMutation,
	}
	if ga.CrossoverProb <= 0 {
		ga.CrossoverProb = 0.9
	}
	if ga.MutationProb <= 0 {
		ga.MutationProb = 1 / float64(dim)
	}
	if ga.EtaCrossover <= 0 {
		ga.EtaCrossover = 15
	}
	if ga.EtaMutation <= 0 {
		ga.EtaMutation = 20
	}
	rng := stats.NewRNG(cfg.Seed)

	evals := 0
	eval := func(x []float64) []float64 {
		evals++
		return p.Evaluate(x)
	}

	n := cfg.Subproblems
	// Uniform weight vectors for two objectives.
	weights := make([][2]float64, n)
	for i := range weights {
		w := float64(i) / float64(n-1)
		weights[i] = [2]float64{w, 1 - w}
	}
	// Neighbourhoods: the T closest weight vectors.
	neighbors := make([][]int, n)
	for i := range neighbors {
		idx := make([]int, n)
		for j := range idx {
			idx[j] = j
		}
		sort.Slice(idx, func(a, b int) bool {
			da := math.Abs(weights[idx[a]][0] - weights[i][0])
			db := math.Abs(weights[idx[b]][0] - weights[i][0])
			return da < db
		})
		neighbors[i] = idx[:cfg.Neighbors]
	}

	pop := evalBatch(p, randomPopulation(n, lo, hi, rng), resolveWorkers(cfg.Workers))
	evals += n
	nObj := len(pop[0].Costs)
	if nObj != 2 {
		return nil, fmt.Errorf("moo: MOEAD supports exactly 2 objectives, problem has %d", nObj)
	}

	// Ideal point z*.
	z := []float64{math.Inf(1), math.Inf(1)}
	updateIdeal := func(c []float64) {
		for m := 0; m < 2; m++ {
			if c[m] < z[m] {
				z[m] = c[m]
			}
		}
	}
	for i := range pop {
		updateIdeal(pop[i].Costs)
	}
	tcheby := func(c []float64, w [2]float64) float64 {
		// max of w_m · |c_m − z_m| with a small floor on weights so
		// extreme vectors still consider both objectives.
		best := 0.0
		for m := 0; m < 2; m++ {
			wm := w[m]
			if wm < 1e-4 {
				wm = 1e-4
			}
			if v := wm * math.Abs(c[m]-z[m]); v > best {
				best = v
			}
		}
		return best
	}

	for gen := 0; gen < cfg.Generations; gen++ {
		for i := 0; i < n; i++ {
			nb := neighbors[i]
			p1 := pop[nb[rng.Intn(len(nb))]]
			p2 := pop[nb[rng.Intn(len(nb))]]
			c1, _ := sbxCrossover(p1.X, p2.X, lo, hi, ga, rng)
			polynomialMutate(c1, lo, hi, ga, rng)
			child := Individual{X: c1, Costs: eval(c1)}
			updateIdeal(child.Costs)
			for _, j := range nb {
				if tcheby(child.Costs, weights[j]) < tcheby(pop[j].Costs, weights[j]) {
					pop[j] = child
				}
			}
		}
	}

	costs := costsOf(pop)
	fronts, err := NonDominatedSort(costs)
	if err != nil {
		return nil, err
	}
	res := &Result{Population: pop, Evaluations: evals}
	for rank, front := range fronts {
		for _, i := range front {
			pop[i].Rank = rank
		}
	}
	seen := make(map[string]bool)
	for _, i := range fronts[0] {
		key := fmt.Sprint(pop[i].Costs)
		if seen[key] {
			continue
		}
		seen[key] = true
		res.Front = append(res.Front, pop[i])
	}
	return res, nil
}
