// Package moo implements the multi-objective machinery of the paper's
// Sections 2.3 and 3: Pareto dominance over cost vectors (eqs. 1–3),
// Pareto sets/fronts (eq. 4 and eq. 13), the NSGA-II evolutionary
// optimizer the paper applies in the Multi-Objective Optimizer module,
// the grid-based NSGA-G variant the authors proposed in companion work,
// the Weighted Sum Model baseline, and Algorithm 2 (BestInPareto).
//
// All objectives are minimized, matching eq. 13.
package moo

import (
	"errors"
	"fmt"
)

// ErrDimension is returned when cost vectors of different lengths are
// compared.
var ErrDimension = errors.New("moo: mismatched objective dimensions")

// Dominates reports whether cost vector a dominates b: aₙ ≤ bₙ for all
// objectives (paper eq. 1). Note that a vector dominates itself under
// this (weak) definition; use StrictlyDominates for eq. 3.
func Dominates(a, b []float64) (bool, error) {
	if len(a) != len(b) {
		return false, fmt.Errorf("%w: %d vs %d", ErrDimension, len(a), len(b))
	}
	for i := range a {
		if a[i] > b[i] {
			return false, nil
		}
	}
	return true, nil
}

// StrictlyDominates reports whether aₙ < bₙ for all objectives (paper
// eq. 3, StriDom).
func StrictlyDominates(a, b []float64) (bool, error) {
	if len(a) != len(b) {
		return false, fmt.Errorf("%w: %d vs %d", ErrDimension, len(a), len(b))
	}
	for i := range a {
		if a[i] >= b[i] {
			return false, nil
		}
	}
	return true, nil
}

// ParetoDominates is the standard Pareto relation used by NSGA-II:
// a ≤ b in every objective and a < b in at least one.
func ParetoDominates(a, b []float64) (bool, error) {
	if len(a) != len(b) {
		return false, fmt.Errorf("%w: %d vs %d", ErrDimension, len(a), len(b))
	}
	strictlyBetter := false
	for i := range a {
		switch {
		case a[i] > b[i]:
			return false, nil
		case a[i] < b[i]:
			strictlyBetter = true
		}
	}
	return strictlyBetter, nil
}

// ParetoFront returns the indices of the non-dominated cost vectors in
// costs — the Pareto set of eq. 13's trade-off space. Ties (identical
// vectors) are all kept.
func ParetoFront(costs [][]float64) ([]int, error) {
	var front []int
	for i, ci := range costs {
		dominated := false
		for j, cj := range costs {
			if i == j {
				continue
			}
			dom, err := ParetoDominates(cj, ci)
			if err != nil {
				return nil, err
			}
			if dom {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front, nil
}

// NonDominatedSort partitions costs into fronts F₁, F₂, … where F₁ is
// the Pareto front, F₂ is the front after removing F₁, and so on — the
// fast non-dominated sort at the heart of NSGA-II (Deb et al. 2002).
func NonDominatedSort(costs [][]float64) ([][]int, error) {
	n := len(costs)
	dominatedBy := make([][]int, n) // dominatedBy[i]: solutions i dominates
	domCount := make([]int, n)      // number of solutions dominating i
	var first []int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dom, err := ParetoDominates(costs[i], costs[j])
			if err != nil {
				return nil, err
			}
			if dom {
				dominatedBy[i] = append(dominatedBy[i], j)
			} else {
				dom, err = ParetoDominates(costs[j], costs[i])
				if err != nil {
					return nil, err
				}
				if dom {
					domCount[i]++
				}
			}
		}
		if domCount[i] == 0 {
			first = append(first, i)
		}
	}
	var fronts [][]int
	cur := first
	for len(cur) > 0 {
		fronts = append(fronts, cur)
		var next []int
		for _, i := range cur {
			for _, j := range dominatedBy[i] {
				domCount[j]--
				if domCount[j] == 0 {
					next = append(next, j)
				}
			}
		}
		cur = next
	}
	return fronts, nil
}
