package moo

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// zdt1 (defined in nsga2_test.go) has a pure Evaluate, so it is
// trivially safe for concurrent use.

// countingProblem wraps zdt1 with an atomic evaluation counter.
type countingProblem struct {
	zdt1
	n int64
}

func (c *countingProblem) Evaluate(x []float64) []float64 {
	atomic.AddInt64(&c.n, 1)
	return c.zdt1.Evaluate(x)
}

func renderResult(r *Result) string {
	out := ""
	for _, ind := range r.Front {
		out += fmt.Sprintf("%v->%v;", ind.X, ind.Costs)
	}
	return fmt.Sprintf("evals=%d front=%s", r.Evaluations, out)
}

// TestOptimizersDeterministicAcrossWorkers runs every population-based
// optimizer sequentially and with a saturated worker pool and demands
// byte-identical results: parallel fitness evaluation must be invisible
// to the search.
func TestOptimizersDeterministicAcrossWorkers(t *testing.T) {
	cfg := func(workers int) NSGAIIConfig {
		return NSGAIIConfig{PopSize: 20, Generations: 8, Seed: 5, Workers: workers}
	}
	cases := []struct {
		name string
		run  func(p Problem, workers int) (*Result, error)
	}{
		{"NSGAII", func(p Problem, w int) (*Result, error) { return NSGAII(p, cfg(w)) }},
		{"NSGAG", func(p Problem, w int) (*Result, error) { return NSGAG(p, cfg(w), 4) }},
		{"SPEA2", func(p Problem, w int) (*Result, error) { return SPEA2(p, cfg(w)) }},
		{"MOEAD", func(p Problem, w int) (*Result, error) {
			return MOEAD(p, MOEADConfig{Subproblems: 20, Generations: 8, Seed: 5, Workers: w})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seqRes, err := tc.run(zdt1{dim: 6}, 0)
			if err != nil {
				t.Fatal(err)
			}
			parRes, err := tc.run(zdt1{dim: 6}, -1)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := renderResult(parRes), renderResult(seqRes); got != want {
				t.Fatalf("parallel result diverges from sequential:\nseq: %s\npar: %s", want, got)
			}
		})
	}
}

// TestWorkersEvaluationCount: parallel evaluation performs exactly the
// same number of objective evaluations as the sequential loop.
func TestWorkersEvaluationCount(t *testing.T) {
	seqP := &countingProblem{zdt1: zdt1{dim: 6}}
	parP := &countingProblem{zdt1: zdt1{dim: 6}}
	cfgSeq := NSGAIIConfig{PopSize: 16, Generations: 5, Seed: 2, Workers: 0}
	cfgPar := cfgSeq
	cfgPar.Workers = 4
	a, err := NSGAII(seqP, cfgSeq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NSGAII(parP, cfgPar)
	if err != nil {
		t.Fatal(err)
	}
	if seqP.n != parP.n {
		t.Fatalf("evaluation counts differ: sequential %d, parallel %d", seqP.n, parP.n)
	}
	if a.Evaluations != b.Evaluations {
		t.Fatalf("reported Evaluations differ: %d vs %d", a.Evaluations, b.Evaluations)
	}
	if int64(a.Evaluations) != seqP.n {
		t.Fatalf("reported %d evaluations, problem saw %d", a.Evaluations, seqP.n)
	}
}

// TestResolveWorkers pins the knob semantics.
func TestResolveWorkers(t *testing.T) {
	if got := resolveWorkers(0); got != 1 {
		t.Errorf("resolveWorkers(0) = %d, want 1", got)
	}
	if got := resolveWorkers(3); got != 3 {
		t.Errorf("resolveWorkers(3) = %d, want 3", got)
	}
	if got := resolveWorkers(-1); got < 1 {
		t.Errorf("resolveWorkers(-1) = %d, want >= 1", got)
	}
}
