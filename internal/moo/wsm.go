package moo

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoPlans is returned when a selection runs over an empty plan set.
var ErrNoPlans = errors.New("moo: no plans to select from")

// ErrWeights is returned for invalid weighted-sum weights.
var ErrWeights = errors.New("moo: invalid weights")

// WeightedSum scalarizes a cost vector with the Weighted Sum Model
// (Helff & Orazio 2016): Σ wₙ·cₙ. Weights must be non-negative and not
// all zero; they are normalized to sum to 1 so scores are comparable
// across weight settings.
func WeightedSum(costs, weights []float64) (float64, error) {
	if len(costs) != len(weights) {
		return 0, fmt.Errorf("%w: %d costs vs %d weights", ErrDimension, len(costs), len(weights))
	}
	var wSum float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return 0, fmt.Errorf("%w: negative or NaN weight %v", ErrWeights, w)
		}
		wSum += w
	}
	if wSum == 0 {
		return 0, fmt.Errorf("%w: weights sum to zero", ErrWeights)
	}
	var s float64
	for i, c := range costs {
		s += (weights[i] / wSum) * c
	}
	return s, nil
}

// ArgminWeightedSum returns the index of the plan with the smallest
// weighted-sum score. Used both as the WSM baseline optimizer (paper
// Figure 3, right path) and inside BestInPareto.
func ArgminWeightedSum(costs [][]float64, weights []float64) (int, error) {
	if len(costs) == 0 {
		return 0, ErrNoPlans
	}
	best := -1
	bestScore := math.Inf(1)
	for i, c := range costs {
		s, err := WeightedSum(c, weights)
		if err != nil {
			return 0, err
		}
		if s < bestScore {
			best, bestScore = i, s
		}
	}
	return best, nil
}

// BestInPareto implements the paper's Algorithm 2: given the cost
// vectors of a Pareto plan set P, per-metric constraints B (a plan is
// feasible when cₙ(p) ≤ Bₙ for every constrained metric n ≤ |B|) and
// weighted-sum preferences S, return the index of the selected plan.
// If no plan satisfies the constraints, the weighted-sum winner over
// the whole set is returned (Algorithm 2 line 6).
func BestInPareto(costs [][]float64, weights, constraints []float64) (int, error) {
	if len(costs) == 0 {
		return 0, ErrNoPlans
	}
	if len(constraints) > len(costs[0]) {
		return 0, fmt.Errorf("%w: %d constraints for %d metrics", ErrDimension, len(constraints), len(costs[0]))
	}
	var feasible []int
	for i, c := range costs {
		ok := true
		for n, b := range constraints {
			if c[n] > b {
				ok = false
				break
			}
		}
		if ok {
			feasible = append(feasible, i)
		}
	}
	if len(feasible) == 0 {
		return ArgminWeightedSum(costs, weights)
	}
	sub := make([][]float64, len(feasible))
	for i, idx := range feasible {
		sub[i] = costs[idx]
	}
	best, err := ArgminWeightedSum(sub, weights)
	if err != nil {
		return 0, err
	}
	return feasible[best], nil
}

// NormalizeCosts rescales each objective column to [0,1] across the
// plan set (min-max). WSM comparisons across metrics with different
// units (seconds vs dollars) are meaningless without this step.
// Constant columns map to 0. The input is not modified.
func NormalizeCosts(costs [][]float64) [][]float64 {
	if len(costs) == 0 {
		return nil
	}
	nObj := len(costs[0])
	lo := make([]float64, nObj)
	hi := make([]float64, nObj)
	for m := 0; m < nObj; m++ {
		lo[m], hi[m] = math.Inf(1), math.Inf(-1)
	}
	for _, c := range costs {
		for m, v := range c {
			if v < lo[m] {
				lo[m] = v
			}
			if v > hi[m] {
				hi[m] = v
			}
		}
	}
	out := make([][]float64, len(costs))
	for i, c := range costs {
		row := make([]float64, nObj)
		for m, v := range c {
			if hi[m] > lo[m] {
				row[m] = (v - lo[m]) / (hi[m] - lo[m])
			}
		}
		out[i] = row
	}
	return out
}
