package moo

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestWeightedSum(t *testing.T) {
	s, err := WeightedSum([]float64{10, 20}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s != 15 { // normalized weights 0.5/0.5
		t.Errorf("WeightedSum = %v, want 15", s)
	}
	s, err = WeightedSum([]float64{10, 20}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s != 10 {
		t.Errorf("single-objective WSM = %v, want 10", s)
	}
}

func TestWeightedSumErrors(t *testing.T) {
	if _, err := WeightedSum([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrDimension) {
		t.Errorf("got %v, want ErrDimension", err)
	}
	if _, err := WeightedSum([]float64{1, 2}, []float64{-1, 2}); !errors.Is(err, ErrWeights) {
		t.Errorf("negative weight: got %v, want ErrWeights", err)
	}
	if _, err := WeightedSum([]float64{1, 2}, []float64{0, 0}); !errors.Is(err, ErrWeights) {
		t.Errorf("zero weights: got %v, want ErrWeights", err)
	}
}

func TestArgminWeightedSum(t *testing.T) {
	costs := [][]float64{{10, 1}, {1, 10}, {4, 4}}
	i, err := ArgminWeightedSum(costs, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if i != 2 {
		t.Errorf("balanced weights pick %d, want 2", i)
	}
	i, err = ArgminWeightedSum(costs, []float64{1, 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if i != 1 {
		t.Errorf("time-heavy weights pick %d, want 1", i)
	}
	if _, err := ArgminWeightedSum(nil, []float64{1}); !errors.Is(err, ErrNoPlans) {
		t.Errorf("got %v, want ErrNoPlans", err)
	}
}

func TestBestInParetoConstraintsSatisfiable(t *testing.T) {
	// Algorithm 2 with feasible subset: plan 0 violates the budget, so
	// the winner must come from {1, 2}.
	costs := [][]float64{
		{1, 100}, // fastest, too expensive
		{5, 10},
		{8, 5},
	}
	weights := []float64{1, 1}
	budget := []float64{math.Inf(1), 20} // money ≤ 20
	i, err := BestInPareto(costs, weights, budget)
	if err != nil {
		t.Fatal(err)
	}
	if i == 0 {
		t.Error("selected plan violates the monetary constraint")
	}
	// Among feasible plans {1,2}: scores 7.5 vs 6.5 → plan 2.
	if i != 2 {
		t.Errorf("selected %d, want 2", i)
	}
}

func TestBestInParetoConstraintsUnsatisfiable(t *testing.T) {
	// Algorithm 2 line 6: no feasible plan → weighted-sum over all.
	costs := [][]float64{{10, 10}, {2, 2}}
	i, err := BestInPareto(costs, []float64{1, 1}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if i != 1 {
		t.Errorf("fallback selected %d, want 1", i)
	}
}

func TestBestInParetoFewerConstraintsThanMetrics(t *testing.T) {
	// |B| < |N|: only the first metric is constrained (n ≤ |B|).
	costs := [][]float64{{10, 1}, {1, 10}}
	i, err := BestInPareto(costs, []float64{1, 1}, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if i != 1 {
		t.Errorf("selected %d, want 1 (only plan with c₁ ≤ 5)", i)
	}
}

func TestBestInParetoErrors(t *testing.T) {
	if _, err := BestInPareto(nil, []float64{1}, nil); !errors.Is(err, ErrNoPlans) {
		t.Errorf("got %v, want ErrNoPlans", err)
	}
	if _, err := BestInPareto([][]float64{{1}}, []float64{1}, []float64{1, 2}); !errors.Is(err, ErrDimension) {
		t.Errorf("too many constraints: got %v, want ErrDimension", err)
	}
}

func TestNormalizeCosts(t *testing.T) {
	norm := NormalizeCosts([][]float64{{0, 100}, {10, 200}, {5, 150}})
	want := [][]float64{{0, 0}, {1, 1}, {0.5, 0.5}}
	for i := range want {
		for j := range want[i] {
			if math.Abs(norm[i][j]-want[i][j]) > 1e-12 {
				t.Errorf("norm[%d][%d] = %v, want %v", i, j, norm[i][j], want[i][j])
			}
		}
	}
	// Constant column maps to zero.
	norm = NormalizeCosts([][]float64{{5, 1}, {5, 2}})
	if norm[0][0] != 0 || norm[1][0] != 0 {
		t.Errorf("constant column not zeroed: %v", norm)
	}
	if NormalizeCosts(nil) != nil {
		t.Error("nil input should return nil")
	}
}

// Property: BestInPareto always returns an index in range, and when
// constraints admit at least one plan the winner satisfies them.
func TestPropertyBestInParetoFeasibility(t *testing.T) {
	f := func(raw []float64, b1 float64) bool {
		n := len(raw) / 2
		if n == 0 || n > 30 || math.IsNaN(b1) {
			return true
		}
		costs := make([][]float64, n)
		for i := 0; i < n; i++ {
			a, b := math.Abs(raw[2*i]), math.Abs(raw[2*i+1])
			if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
				return true
			}
			costs[i] = []float64{a, b}
		}
		budget := []float64{math.Abs(math.Mod(b1, 1000))}
		idx, err := BestInPareto(costs, []float64{1, 1}, budget)
		if err != nil {
			return false
		}
		if idx < 0 || idx >= n {
			return false
		}
		anyFeasible := false
		for _, c := range costs {
			if c[0] <= budget[0] {
				anyFeasible = true
				break
			}
		}
		if anyFeasible && costs[idx][0] > budget[0] {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
