package moo

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true},
		{[]float64{1, 3}, []float64{2, 2}, false},
		{[]float64{2, 2}, []float64{2, 2}, true}, // weak dominance (eq. 1)
		{[]float64{1, 2}, []float64{1, 2}, true},
	}
	for _, c := range cases {
		got, err := Dominates(c.a, c.b)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if _, err := Dominates([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrDimension) {
		t.Errorf("got %v, want ErrDimension", err)
	}
}

func TestStrictlyDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true},
		{[]float64{1, 2}, []float64{2, 2}, false}, // equality blocks strictness
		{[]float64{2, 2}, []float64{2, 2}, false},
	}
	for _, c := range cases {
		got, err := StrictlyDominates(c.a, c.b)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("StrictlyDominates(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if _, err := StrictlyDominates([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrDimension) {
		t.Errorf("got %v, want ErrDimension", err)
	}
}

func TestParetoDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true},
		{[]float64{1, 2}, []float64{2, 2}, true}, // better in one, equal in other
		{[]float64{2, 2}, []float64{2, 2}, false},
		{[]float64{3, 1}, []float64{2, 2}, false},
	}
	for _, c := range cases {
		got, err := ParetoDominates(c.a, c.b)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("ParetoDominates(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestParetoFront(t *testing.T) {
	costs := [][]float64{
		{1, 5}, // front
		{2, 4}, // front
		{3, 3}, // front
		{3, 5}, // dominated by {3,3} and {2,4}
		{5, 1}, // front
		{6, 6}, // dominated
	}
	front, err := ParetoFront(costs)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{0: true, 1: true, 2: true, 4: true}
	if len(front) != len(want) {
		t.Fatalf("front = %v, want indices %v", front, want)
	}
	for _, i := range front {
		if !want[i] {
			t.Errorf("index %d in front but is dominated", i)
		}
	}
}

func TestParetoFrontIdenticalPoints(t *testing.T) {
	costs := [][]float64{{1, 1}, {1, 1}, {2, 2}}
	front, err := ParetoFront(costs)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) != 2 {
		t.Errorf("identical optima: front = %v, want both copies kept", front)
	}
}

func TestNonDominatedSort(t *testing.T) {
	costs := [][]float64{
		{1, 1}, // F1
		{2, 2}, // F2
		{3, 3}, // F3
		{1, 4}, // F1 (incomparable with {1,1}? no: {1,1} dominates {1,4}) → F2
		{4, 1}, // dominated by {1,1} → F2
	}
	fronts, err := NonDominatedSort(costs)
	if err != nil {
		t.Fatal(err)
	}
	if len(fronts[0]) != 1 || fronts[0][0] != 0 {
		t.Errorf("F1 = %v, want [0]", fronts[0])
	}
	total := 0
	for _, f := range fronts {
		total += len(f)
	}
	if total != len(costs) {
		t.Errorf("fronts cover %d points, want %d", total, len(costs))
	}
}

// Property: every point in a later front is dominated by some point in
// an earlier front, and F1 equals ParetoFront.
func TestPropertyNonDominatedSortLayers(t *testing.T) {
	f := func(raw []float64) bool {
		// Build 2-objective points from the raw stream.
		n := len(raw) / 2
		if n < 2 || n > 40 {
			return true
		}
		costs := make([][]float64, n)
		for i := 0; i < n; i++ {
			a, b := raw[2*i], raw[2*i+1]
			if a != a || b != b { // NaN
				return true
			}
			costs[i] = []float64{a, b}
		}
		fronts, err := NonDominatedSort(costs)
		if err != nil {
			return false
		}
		pf, err := ParetoFront(costs)
		if err != nil {
			return false
		}
		if len(fronts[0]) != len(pf) {
			return false
		}
		// Every member of front k>0 must be dominated by some member of
		// front k-1.
		for k := 1; k < len(fronts); k++ {
			for _, i := range fronts[k] {
				dominated := false
				for _, j := range fronts[k-1] {
					d, err := ParetoDominates(costs[j], costs[i])
					if err != nil {
						return false
					}
					if d {
						dominated = true
						break
					}
				}
				if !dominated {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: dominance is transitive and antisymmetric (modulo equality).
func TestPropertyDominanceLaws(t *testing.T) {
	f := func(a, b, c [3]float64) bool {
		av, bv, cv := a[:], b[:], c[:]
		ab, _ := ParetoDominates(av, bv)
		bc, _ := ParetoDominates(bv, cv)
		ac, _ := ParetoDominates(av, cv)
		if ab && bc && !ac {
			return false // transitivity violated
		}
		ba, _ := ParetoDominates(bv, av)
		return !(ab && ba) // antisymmetry
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
