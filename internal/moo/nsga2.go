package moo

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// Problem defines a continuous multi-objective minimization problem
// over a box-bounded decision space (eq. 13: minimize F(x) over Ω ⊆ Rᴸ).
type Problem interface {
	// Bounds returns the per-dimension [lo, hi] box of the decision space.
	Bounds() (lo, hi []float64)
	// Evaluate maps a decision vector to its objective vector.
	Evaluate(x []float64) []float64
}

// NSGAIIConfig parameterizes the genetic algorithm.
type NSGAIIConfig struct {
	// PopSize is the population size; defaults to 100 (even).
	PopSize int
	// Generations defaults to 100.
	Generations int
	// CrossoverProb defaults to 0.9 (SBX).
	CrossoverProb float64
	// MutationProb defaults to 1/L (polynomial mutation).
	MutationProb float64
	// EtaCrossover and EtaMutation are the SBX / polynomial-mutation
	// distribution indices; default 15 and 20.
	EtaCrossover float64
	EtaMutation  float64
	// Seed makes runs reproducible.
	Seed int64
	// Workers bounds the fitness-evaluation worker pool: 0 evaluates
	// sequentially (historical behaviour), a negative value uses
	// GOMAXPROCS, anything else is taken literally. With Workers > 1
	// the Problem's Evaluate must be safe for concurrent use. Results
	// are identical for any value: all random draws happen on the main
	// loop before evaluations are fanned out.
	Workers int
}

// Individual is one evaluated member of the final population.
type Individual struct {
	X     []float64
	Costs []float64
	Rank  int // front index, 0 = Pareto front of the final population
}

// Result is the output of an NSGA-II run.
type Result struct {
	// Front is the first non-dominated front of the final population.
	Front []Individual
	// Population is the full final population (diagnostics).
	Population []Individual
	// Evaluations counts objective evaluations performed.
	Evaluations int
}

// NSGAII runs the Non-dominated Sorting Genetic Algorithm II (Deb et
// al. 2002) — the optimizer the paper plugs into IReS's Multi-Objective
// Optimizer to produce the Pareto QEP set.
func NSGAII(p Problem, cfg NSGAIIConfig) (*Result, error) {
	lo, hi, err := validateBounds(p)
	if err != nil {
		return nil, err
	}
	dim := len(lo)
	if cfg.PopSize <= 0 {
		cfg.PopSize = 100
	}
	if cfg.PopSize%2 == 1 {
		cfg.PopSize++
	}
	if cfg.Generations <= 0 {
		cfg.Generations = 100
	}
	if cfg.CrossoverProb <= 0 {
		cfg.CrossoverProb = 0.9
	}
	if cfg.MutationProb <= 0 {
		cfg.MutationProb = 1 / float64(dim)
	}
	if cfg.EtaCrossover <= 0 {
		cfg.EtaCrossover = 15
	}
	if cfg.EtaMutation <= 0 {
		cfg.EtaMutation = 20
	}
	rng := stats.NewRNG(cfg.Seed)
	workers := resolveWorkers(cfg.Workers)

	evals := 0
	pop := evalBatch(p, randomPopulation(cfg.PopSize, lo, hi, rng), workers)
	evals += len(pop)

	for gen := 0; gen < cfg.Generations; gen++ {
		ranks, crowd, err := rankAndCrowd(pop)
		if err != nil {
			return nil, err
		}
		childXs := make([][]float64, 0, cfg.PopSize)
		for len(childXs) < cfg.PopSize {
			p1 := tournament(pop, ranks, crowd, rng)
			p2 := tournament(pop, ranks, crowd, rng)
			c1, c2 := sbxCrossover(p1.X, p2.X, lo, hi, cfg, rng)
			polynomialMutate(c1, lo, hi, cfg, rng)
			polynomialMutate(c2, lo, hi, cfg, rng)
			childXs = append(childXs, c1, c2)
		}
		evals += len(childXs)
		combined := append(pop, evalBatch(p, childXs, workers)...)
		pop, err = environmentalSelection(combined, cfg.PopSize)
		if err != nil {
			return nil, err
		}
	}

	// Final ranking for the result.
	costs := costsOf(pop)
	fronts, err := NonDominatedSort(costs)
	if err != nil {
		return nil, err
	}
	res := &Result{Population: pop, Evaluations: evals}
	for rank, front := range fronts {
		for _, i := range front {
			pop[i].Rank = rank
		}
	}
	for _, i := range fronts[0] {
		res.Front = append(res.Front, pop[i])
	}
	return res, nil
}

// randomPopulation draws popSize decision vectors uniformly from the
// bounds box, consuming the RNG in the same order as the historical
// generate-then-evaluate loop.
func randomPopulation(popSize int, lo, hi []float64, rng *stats.RNG) [][]float64 {
	xs := make([][]float64, popSize)
	for i := range xs {
		x := make([]float64, len(lo))
		for j := range x {
			x[j] = rng.Uniform(lo[j], hi[j])
		}
		xs[i] = x
	}
	return xs
}

func costsOf(pop []Individual) [][]float64 {
	costs := make([][]float64, len(pop))
	for i := range pop {
		costs[i] = pop[i].Costs
	}
	return costs
}

// rankAndCrowd computes front ranks and crowding distances for the
// population.
func rankAndCrowd(pop []Individual) (ranks []int, crowd []float64, err error) {
	costs := costsOf(pop)
	fronts, err := NonDominatedSort(costs)
	if err != nil {
		return nil, nil, err
	}
	ranks = make([]int, len(pop))
	crowd = make([]float64, len(pop))
	for rank, front := range fronts {
		for _, i := range front {
			ranks[i] = rank
		}
		assignCrowding(costs, front, crowd)
	}
	return ranks, crowd, nil
}

// assignCrowding writes NSGA-II crowding distances for the members of
// one front into crowd.
func assignCrowding(costs [][]float64, front []int, crowd []float64) {
	if len(front) == 0 {
		return
	}
	nObj := len(costs[front[0]])
	for _, i := range front {
		crowd[i] = 0
	}
	idx := make([]int, len(front))
	for m := 0; m < nObj; m++ {
		copy(idx, front)
		sort.Slice(idx, func(a, b int) bool { return costs[idx[a]][m] < costs[idx[b]][m] })
		lo, hi := costs[idx[0]][m], costs[idx[len(idx)-1]][m]
		crowd[idx[0]] = math.Inf(1)
		crowd[idx[len(idx)-1]] = math.Inf(1)
		if hi == lo {
			continue
		}
		for k := 1; k < len(idx)-1; k++ {
			crowd[idx[k]] += (costs[idx[k+1]][m] - costs[idx[k-1]][m]) / (hi - lo)
		}
	}
}

// tournament is the binary crowded-comparison tournament: lower rank
// wins; ties break on larger crowding distance.
func tournament(pop []Individual, ranks []int, crowd []float64, rng *stats.RNG) Individual {
	a, b := rng.Intn(len(pop)), rng.Intn(len(pop))
	switch {
	case ranks[a] < ranks[b]:
		return pop[a]
	case ranks[b] < ranks[a]:
		return pop[b]
	case crowd[a] > crowd[b]:
		return pop[a]
	default:
		return pop[b]
	}
}

// environmentalSelection keeps the best n individuals of the combined
// parent+offspring population by (rank, crowding).
func environmentalSelection(combined []Individual, n int) ([]Individual, error) {
	costs := costsOf(combined)
	fronts, err := NonDominatedSort(costs)
	if err != nil {
		return nil, err
	}
	out := make([]Individual, 0, n)
	crowd := make([]float64, len(combined))
	for _, front := range fronts {
		if len(out)+len(front) <= n {
			for _, i := range front {
				out = append(out, combined[i])
			}
			continue
		}
		// Partial front: keep the most spread-out members.
		assignCrowding(costs, front, crowd)
		sorted := make([]int, len(front))
		copy(sorted, front)
		sort.Slice(sorted, func(a, b int) bool { return crowd[sorted[a]] > crowd[sorted[b]] })
		for _, i := range sorted[:n-len(out)] {
			out = append(out, combined[i])
		}
		break
	}
	return out, nil
}

// sbxCrossover performs simulated binary crossover, returning two
// children clamped to the bounds.
func sbxCrossover(p1, p2, lo, hi []float64, cfg NSGAIIConfig, rng *stats.RNG) ([]float64, []float64) {
	dim := len(p1)
	c1 := make([]float64, dim)
	c2 := make([]float64, dim)
	copy(c1, p1)
	copy(c2, p2)
	if rng.Float64() > cfg.CrossoverProb {
		return c1, c2
	}
	for j := 0; j < dim; j++ {
		if rng.Float64() > 0.5 || p1[j] == p2[j] {
			continue
		}
		u := rng.Float64()
		var beta float64
		if u <= 0.5 {
			beta = math.Pow(2*u, 1/(cfg.EtaCrossover+1))
		} else {
			beta = math.Pow(1/(2*(1-u)), 1/(cfg.EtaCrossover+1))
		}
		v1 := 0.5 * ((1+beta)*p1[j] + (1-beta)*p2[j])
		v2 := 0.5 * ((1-beta)*p1[j] + (1+beta)*p2[j])
		c1[j] = clamp(v1, lo[j], hi[j])
		c2[j] = clamp(v2, lo[j], hi[j])
	}
	return c1, c2
}

// polynomialMutate applies polynomial mutation in place.
func polynomialMutate(x, lo, hi []float64, cfg NSGAIIConfig, rng *stats.RNG) {
	for j := range x {
		if rng.Float64() > cfg.MutationProb {
			continue
		}
		span := hi[j] - lo[j]
		if span == 0 {
			continue
		}
		u := rng.Float64()
		var delta float64
		if u < 0.5 {
			delta = math.Pow(2*u, 1/(cfg.EtaMutation+1)) - 1
		} else {
			delta = 1 - math.Pow(2*(1-u), 1/(cfg.EtaMutation+1))
		}
		x[j] = clamp(x[j]+delta*span, lo[j], hi[j])
	}
}

// validateBounds checks a problem's decision-space box.
func validateBounds(p Problem) (lo, hi []float64, err error) {
	lo, hi = p.Bounds()
	if len(lo) != len(hi) || len(lo) == 0 {
		return nil, nil, fmt.Errorf("moo: invalid bounds: |lo|=%d |hi|=%d", len(lo), len(hi))
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return nil, nil, fmt.Errorf("moo: bounds inverted at dimension %d: [%v, %v]", i, lo[i], hi[i])
		}
	}
	return lo, hi, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
