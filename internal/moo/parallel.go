package moo

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Population evaluation is embarrassingly parallel: each individual's
// objective vector is a pure function of its decision vector, while all
// the stochastic steps (initialization, tournaments, crossover,
// mutation) stay on the single seeded RNG of the main loop. The
// optimizers therefore draw every decision vector of a batch first and
// only then fan the evaluations out, which keeps runs byte-identical
// for any worker count.

// resolveWorkers maps a config's Workers knob to a pool size:
// 0 keeps the historical sequential behaviour, negative selects
// GOMAXPROCS, anything else is taken literally.
func resolveWorkers(w int) int {
	switch {
	case w == 0:
		return 1
	case w < 0:
		return runtime.GOMAXPROCS(0)
	default:
		return w
	}
}

// evalBatch evaluates a batch of decision vectors into Individuals,
// preserving input order — the shared population-evaluation step of
// every optimizer in this package.
func evalBatch(p Problem, xs [][]float64, workers int) []Individual {
	costs := evalAll(p, xs, workers)
	batch := make([]Individual, len(xs))
	for i := range xs {
		batch[i] = Individual{X: xs[i], Costs: costs[i]}
	}
	return batch
}

// evalAll evaluates every decision vector and returns the objective
// vectors in input order. With workers > 1 the evaluations run on a
// bounded pool; Problem.Evaluate must then be safe for concurrent use.
func evalAll(p Problem, xs [][]float64, workers int) [][]float64 {
	out := make([][]float64, len(xs))
	if workers > len(xs) {
		workers = len(xs)
	}
	if workers <= 1 || len(xs) < 2 {
		for i, x := range xs {
			out[i] = p.Evaluate(x)
		}
		return out
	}
	var (
		next int64 = -1
		wg   sync.WaitGroup
	)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(xs) {
					return
				}
				out[i] = p.Evaluate(xs[i])
			}
		}()
	}
	wg.Wait()
	return out
}
