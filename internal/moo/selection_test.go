package moo

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestKneePoint(t *testing.T) {
	// A convex front with an obvious knee at (2, 2): the extremes are
	// (0, 10) and (10, 0), and (2,2) bulges toward the origin.
	costs := [][]float64{
		{0, 10},
		{1, 4},
		{2, 2},
		{4, 1},
		{10, 0},
	}
	i, err := KneePoint(costs)
	if err != nil {
		t.Fatal(err)
	}
	if i != 2 {
		t.Errorf("knee = %d (%v), want 2", i, costs[i])
	}
}

func TestKneePointEdgeCases(t *testing.T) {
	if _, err := KneePoint(nil); !errors.Is(err, ErrNoPlans) {
		t.Errorf("empty: got %v, want ErrNoPlans", err)
	}
	if _, err := KneePoint([][]float64{{1, 2, 3}}); !errors.Is(err, ErrObjectiveCount) {
		t.Errorf("3 objectives: got %v, want ErrObjectiveCount", err)
	}
	i, err := KneePoint([][]float64{{5, 5}})
	if err != nil || i != 0 {
		t.Errorf("singleton: got %d, %v", i, err)
	}
	// Identical points: degenerate but must not error.
	if _, err := KneePoint([][]float64{{1, 1}, {1, 1}}); err != nil {
		t.Errorf("identical points: %v", err)
	}
}

func TestEpsilonConstraint(t *testing.T) {
	costs := [][]float64{
		{1, 100}, // fastest but expensive
		{5, 10},
		{8, 5},
	}
	// Minimize time subject to money ≤ 20 → plan 1.
	i, err := EpsilonConstraint(costs, 0, []float64{math.Inf(1), 20})
	if err != nil {
		t.Fatal(err)
	}
	if i != 1 {
		t.Errorf("selected %d, want 1", i)
	}
	// Unbounded epsilon = plain argmin of the primary.
	i, err = EpsilonConstraint(costs, 0, []float64{math.Inf(1), math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	if i != 0 {
		t.Errorf("unconstrained selected %d, want 0", i)
	}
	// Infeasible everywhere → closest to feasibility (plan 2: violation 5-1=4).
	i, err = EpsilonConstraint(costs, 0, []float64{math.Inf(1), 1})
	if err != nil {
		t.Fatal(err)
	}
	if i != 2 {
		t.Errorf("infeasible fallback selected %d, want 2", i)
	}
}

func TestEpsilonConstraintErrors(t *testing.T) {
	if _, err := EpsilonConstraint(nil, 0, nil); !errors.Is(err, ErrNoPlans) {
		t.Errorf("got %v, want ErrNoPlans", err)
	}
	costs := [][]float64{{1, 2}}
	if _, err := EpsilonConstraint(costs, 5, []float64{1, 2}); !errors.Is(err, ErrDimension) {
		t.Errorf("bad primary: got %v, want ErrDimension", err)
	}
	if _, err := EpsilonConstraint(costs, 0, []float64{1}); !errors.Is(err, ErrDimension) {
		t.Errorf("bad epsilons: got %v, want ErrDimension", err)
	}
}

func TestLexicographic(t *testing.T) {
	costs := [][]float64{
		{10, 1},
		{10.05, 0.5}, // within 1% of the best time, cheaper
		{20, 0.1},
	}
	// Time first with 1% tolerance → plan 1 wins on money tie-break.
	i, err := Lexicographic(costs, []int{0, 1}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if i != 1 {
		t.Errorf("selected %d, want 1", i)
	}
	// Zero tolerance → strict: plan 0.
	i, err = Lexicographic(costs, []int{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if i != 0 {
		t.Errorf("strict selected %d, want 0", i)
	}
	// Money first → plan 2.
	i, err = Lexicographic(costs, []int{1, 0}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if i != 2 {
		t.Errorf("money-first selected %d, want 2", i)
	}
}

func TestLexicographicNegativeValuesAndErrors(t *testing.T) {
	// Negative costs: tolerance band must widen downward.
	costs := [][]float64{{-10, 5}, {-9.95, 1}}
	i, err := Lexicographic(costs, []int{0, 1}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if i != 1 {
		t.Errorf("negative-cost tolerance selected %d, want 1", i)
	}
	if _, err := Lexicographic(nil, []int{0}, 0); !errors.Is(err, ErrNoPlans) {
		t.Errorf("got %v, want ErrNoPlans", err)
	}
	if _, err := Lexicographic(costs, nil, 0); !errors.Is(err, ErrDimension) {
		t.Errorf("empty order: got %v, want ErrDimension", err)
	}
	if _, err := Lexicographic(costs, []int{0, 0}, 0); !errors.Is(err, ErrDimension) {
		t.Errorf("repeated objective: got %v, want ErrDimension", err)
	}
	if _, err := Lexicographic(costs, []int{7}, 0); !errors.Is(err, ErrDimension) {
		t.Errorf("out-of-range objective: got %v, want ErrDimension", err)
	}
	// Negative tolerance normalizes to 0 rather than erroring.
	if _, err := Lexicographic(costs, []int{0}, -1); err != nil {
		t.Errorf("negative tolerance: %v", err)
	}
}

// Property: every strategy returns an index in range, and the knee is
// never a dominated point of the set.
func TestPropertySelectionsInRangeAndSane(t *testing.T) {
	f := func(raw []float64) bool {
		n := len(raw) / 2
		if n == 0 || n > 25 {
			return true
		}
		costs := make([][]float64, n)
		for i := 0; i < n; i++ {
			a, b := math.Abs(raw[2*i]), math.Abs(raw[2*i+1])
			if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) || a > 1e12 || b > 1e12 {
				return true
			}
			costs[i] = []float64{a, b}
		}
		k, err := KneePoint(costs)
		if err != nil || k < 0 || k >= n {
			return false
		}
		e, err := EpsilonConstraint(costs, 0, []float64{math.Inf(1), math.Inf(1)})
		if err != nil || e < 0 || e >= n {
			return false
		}
		l, err := Lexicographic(costs, []int{0, 1}, 0.05)
		if err != nil || l < 0 || l >= n {
			return false
		}
		// Epsilon-unconstrained must be a primary-objective minimizer.
		for _, c := range costs {
			if c[0] < costs[e][0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
