package moo

import (
	"errors"
	"fmt"
	"math"
)

// This file implements alternative strategies for choosing one plan out
// of a Pareto set — the paper's concluding future-work item ("we will
// also define new strategies to choose QEPs in a Pareto Set"), built
// alongside the weighted-sum BestInPareto of Algorithm 2.

// ErrObjectiveCount is returned when a strategy does not support the
// cost vectors' dimensionality.
var ErrObjectiveCount = errors.New("moo: unsupported objective count")

// KneePoint returns the index of the knee of a two-objective Pareto
// set: the point farthest (on normalized axes) from the line joining
// the two extreme points. The knee is the "best bang for the buck"
// plan — moving away from it trades a lot of one objective for little
// of the other — and needs no user weights at all.
func KneePoint(costs [][]float64) (int, error) {
	if len(costs) == 0 {
		return 0, ErrNoPlans
	}
	if len(costs[0]) != 2 {
		return 0, fmt.Errorf("%w: knee selection needs 2 objectives, got %d", ErrObjectiveCount, len(costs[0]))
	}
	if len(costs) == 1 {
		return 0, nil
	}
	norm := NormalizeCosts(costs)
	// Extreme points on the normalized axes.
	bestF1, bestF2 := 0, 0
	for i, c := range norm {
		if c[0] < norm[bestF1][0] || (c[0] == norm[bestF1][0] && c[1] < norm[bestF1][1]) {
			bestF1 = i
		}
		if c[1] < norm[bestF2][1] || (c[1] == norm[bestF2][1] && c[0] < norm[bestF2][0]) {
			bestF2 = i
		}
	}
	a, b := norm[bestF1], norm[bestF2]
	dx, dy := b[0]-a[0], b[1]-a[1]
	length := math.Hypot(dx, dy)
	if length == 0 {
		// Degenerate set (all identical after normalization): any
		// member is a knee.
		return bestF1, nil
	}
	best, bestDist := bestF1, -1.0
	for i, c := range norm {
		// Perpendicular distance to the extreme-point line; points on
		// the convex side (toward the ideal point) score positive.
		dist := math.Abs(dx*(a[1]-c[1])-dy*(a[0]-c[0])) / length
		if dist > bestDist {
			best, bestDist = i, dist
		}
	}
	return best, nil
}

// EpsilonConstraint minimizes the primary objective subject to upper
// bounds on the others: plan i is feasible when costs[i][m] ≤
// epsilons[m] for every non-primary objective m with a finite bound.
// epsilons is indexed like the cost vectors; the primary entry is
// ignored. If nothing is feasible, the plan closest to feasibility
// (smallest total constraint violation) is returned.
func EpsilonConstraint(costs [][]float64, primary int, epsilons []float64) (int, error) {
	if len(costs) == 0 {
		return 0, ErrNoPlans
	}
	nObj := len(costs[0])
	if primary < 0 || primary >= nObj {
		return 0, fmt.Errorf("%w: primary objective %d of %d", ErrDimension, primary, nObj)
	}
	if len(epsilons) != nObj {
		return 0, fmt.Errorf("%w: %d epsilons for %d objectives", ErrDimension, len(epsilons), nObj)
	}
	best, bestVal := -1, math.Inf(1)
	fallback, fallbackViolation := -1, math.Inf(1)
	for i, c := range costs {
		violation := 0.0
		for m, e := range epsilons {
			if m == primary || math.IsInf(e, 1) {
				continue
			}
			if c[m] > e {
				violation += c[m] - e
			}
		}
		if violation == 0 {
			if c[primary] < bestVal {
				best, bestVal = i, c[primary]
			}
		} else if violation < fallbackViolation {
			fallback, fallbackViolation = i, violation
		}
	}
	if best >= 0 {
		return best, nil
	}
	return fallback, nil
}

// Lexicographic orders objectives by priority: the plan minimizing the
// first objective wins; ties within `tolerance` (relative) fall through
// to the next objective, and so on. order lists objective indices by
// decreasing priority and must be a permutation prefix (non-repeating,
// in range).
func Lexicographic(costs [][]float64, order []int, tolerance float64) (int, error) {
	if len(costs) == 0 {
		return 0, ErrNoPlans
	}
	nObj := len(costs[0])
	if len(order) == 0 {
		return 0, fmt.Errorf("%w: empty priority order", ErrDimension)
	}
	seen := make(map[int]bool, len(order))
	for _, m := range order {
		if m < 0 || m >= nObj {
			return 0, fmt.Errorf("%w: objective %d of %d", ErrDimension, m, nObj)
		}
		if seen[m] {
			return 0, fmt.Errorf("%w: objective %d repeated in priority order", ErrDimension, m)
		}
		seen[m] = true
	}
	if tolerance < 0 {
		tolerance = 0
	}
	candidates := make([]int, len(costs))
	for i := range candidates {
		candidates[i] = i
	}
	for _, m := range order {
		bestVal := math.Inf(1)
		for _, i := range candidates {
			if costs[i][m] < bestVal {
				bestVal = costs[i][m]
			}
		}
		cut := bestVal * (1 + tolerance)
		if bestVal < 0 {
			cut = bestVal * (1 - tolerance)
		}
		next := candidates[:0]
		for _, i := range candidates {
			if costs[i][m] <= cut {
				next = append(next, i)
			}
		}
		candidates = next
		if len(candidates) == 1 {
			break
		}
	}
	return candidates[0], nil
}
