package engine

import (
	"fmt"
	"sort"
)

// MergeJoin is the sort-merge alternative to HashJoin: both inputs are
// sorted on their key columns and merged, grouping duplicate keys. It
// produces exactly the same rows as HashJoin (up to row order) but a
// different execution-cost signature — two extra blocking sort stages
// and no build-side hash table — which is what a cost-based physical
// optimizer trades on. Keys must be int64 or string, and both sides
// must use the same key type.
type MergeJoin struct {
	Left, Right       Node
	LeftKey, RightKey string
	Type              JoinType
}

// Execute implements Node.
func (j *MergeJoin) Execute(ctx *Context) (*Relation, error) {
	left, err := j.Left.Execute(ctx)
	if err != nil {
		return nil, err
	}
	right, err := j.Right.Execute(ctx)
	if err != nil {
		return nil, err
	}
	lk, err := left.Schema.Index(j.LeftKey)
	if err != nil {
		return nil, err
	}
	rk, err := right.Schema.Index(j.RightKey)
	if err != nil {
		return nil, err
	}

	lrows, err := sortedByKey(left.Rows, lk)
	if err != nil {
		return nil, fmt.Errorf("engine: merge join left input: %w", err)
	}
	rrows, err := sortedByKey(right.Rows, rk)
	if err != nil {
		return nil, fmt.Errorf("engine: merge join right input: %w", err)
	}

	outSchema := joinSchema(left.Schema, right.Schema)
	out := &Relation{Schema: outSchema}
	nullRight := make(Row, len(right.Schema))

	li, ri := 0, 0
	for li < len(lrows) {
		// Advance the right side to the left key.
		for ri < len(rrows) {
			c, err := compareKeys(rrows[ri][rk], lrows[li][lk])
			if err != nil {
				return nil, err
			}
			if c >= 0 {
				break
			}
			ri++
		}
		matchStart := ri
		matched := false
		for ri < len(rrows) {
			c, err := compareKeys(rrows[ri][rk], lrows[li][lk])
			if err != nil {
				return nil, err
			}
			if c != 0 {
				break
			}
			matched = true
			out.Rows = append(out.Rows, concatRows(lrows[li], rrows[ri]))
			ri++
		}
		if !matched && j.Type == LeftOuter {
			out.Rows = append(out.Rows, concatRows(lrows[li], nullRight))
		}
		// The next left row may share this key: rewind the right cursor
		// to the start of the matching group.
		if li+1 < len(lrows) {
			c, err := compareKeys(lrows[li+1][lk], lrows[li][lk])
			if err != nil {
				return nil, err
			}
			if c == 0 {
				ri = matchStart
			}
		}
		li++
	}

	// Cost signature: the two sorts are stage barriers on top of the
	// merge itself.
	ctx.Stats.RowsProcessed += len(left.Rows) + len(right.Rows) + len(out.Rows)
	ctx.Stats.ShuffleBytes += left.ApproxBytes() + right.ApproxBytes()
	ctx.Stats.Stages += 3 // sort left, sort right, merge
	return out, nil
}

// joinSchema builds the concatenated output schema, disambiguating
// duplicate right-side names with an "r_" prefix (same rule as HashJoin).
func joinSchema(left, right Schema) Schema {
	out := make(Schema, 0, len(left)+len(right))
	out = append(out, left...)
	seen := make(map[string]bool, len(left))
	for _, c := range left {
		seen[c] = true
	}
	for _, c := range right {
		if seen[c] {
			c = "r_" + c
		}
		out = append(out, c)
	}
	return out
}

// sortedByKey returns rows sorted by the key column without mutating
// the input slice.
func sortedByKey(rows []Row, key int) ([]Row, error) {
	if len(rows) == 0 {
		return rows, nil
	}
	// Validate the key type once.
	switch rows[0][key].(type) {
	case int64, string:
	default:
		return nil, fmt.Errorf("engine: unsortable join key type %T", rows[0][key])
	}
	out := make([]Row, len(rows))
	copy(out, rows)
	var sortErr error
	sort.SliceStable(out, func(a, b int) bool {
		c, err := compareKeys(out[a][key], out[b][key])
		if err != nil && sortErr == nil {
			sortErr = err
		}
		return c < 0
	})
	return out, sortErr
}

// compareKeys orders two join keys of identical dynamic type.
func compareKeys(a, b any) (int, error) {
	switch av := a.(type) {
	case int64:
		bv, ok := b.(int64)
		if !ok {
			return 0, fmt.Errorf("engine: mixed join key types %T and %T", a, b)
		}
		switch {
		case av < bv:
			return -1, nil
		case av > bv:
			return 1, nil
		}
		return 0, nil
	case string:
		bv, ok := b.(string)
		if !ok {
			return 0, fmt.Errorf("engine: mixed join key types %T and %T", a, b)
		}
		switch {
		case av < bv:
			return -1, nil
		case av > bv:
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("engine: unsupported join key type %T", a)
}

// PickJoin is a minimal cost-based physical chooser: hash join when the
// build (right) side fits comfortably relative to the probe side, merge
// join when both sides are large and of similar size (where the hash
// table would dominate memory). The thresholds mirror the classic
// optimizer rule of thumb; tests pin the behaviour rather than the
// constants.
func PickJoin(left, right Node, leftKey, rightKey string, leftRows, rightRows int, typ JoinType) Node {
	const ratioForHash = 4 // probe ≥ 4× build → hash join is clearly right
	if rightRows*ratioForHash <= leftRows || rightRows < 10_000 {
		return &HashJoin{Left: left, Right: right, LeftKey: leftKey, RightKey: rightKey, Type: typ}
	}
	return &MergeJoin{Left: left, Right: right, LeftKey: leftKey, RightKey: rightKey, Type: typ}
}
