// Package engine is a small relational query engine plus the simulated
// execution-cost profiles of the two database engines the paper's
// evaluation federates: Hive (MapReduce-style batch engine: expensive
// job startup and stage barriers, scan throughput that scales with the
// cluster) and PostgreSQL (single-node row store: negligible startup,
// no horizontal scaling).
//
// The operators compute real answers over generated TPC-H data — so
// correctness is testable against the reference implementations in
// package tpch — while execution *time* is simulated from the operator
// statistics through an engine Profile, which is what lets experiments
// run a 1 GiB-scale federation in milliseconds and lets the cloud layer
// inject load variance deterministically.
package engine

import (
	"errors"
	"fmt"
	"sort"
)

// ErrUnknownColumn is returned when a plan references a missing column.
var ErrUnknownColumn = errors.New("engine: unknown column")

// ErrUnknownTable is returned when a scan references an unregistered table.
var ErrUnknownTable = errors.New("engine: unknown table")

// Row is one tuple; values are int64, float64, string or nil (for
// outer-join padding).
type Row []any

// Schema is an ordered list of column names.
type Schema []string

// Index returns the position of a column.
func (s Schema) Index(name string) (int, error) {
	for i, c := range s {
		if c == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: %q in schema %v", ErrUnknownColumn, name, []string(s))
}

// Relation is a materialized table: a schema plus rows.
type Relation struct {
	Name   string
	Schema Schema
	Rows   []Row
}

// ApproxBytes estimates the relation's in-flight size, used by the
// shipping and shuffle cost models (12 bytes per value is a reasonable
// average across int/float/short-string columns).
func (r *Relation) ApproxBytes() float64 {
	return float64(len(r.Rows)*len(r.Schema)) * 12
}

// Stats accumulates the work a plan performed; engine profiles turn
// these into simulated seconds.
type Stats struct {
	RowsScanned   int // rows read by scans
	RowsProcessed int // rows flowing through non-scan operators
	RowsOutput    int // rows in the final result
	ShuffleBytes  float64
	// Stages counts blocking operators (joins, aggregates, sorts):
	// each is a stage barrier / separate job in a MapReduce engine.
	Stages int
}

// Context carries the table registry, accumulated stats and the
// memoization cache for Cached nodes during one execution.
type Context struct {
	Tables map[string]*Relation
	Stats  Stats
	cache  map[*Cached]*Relation
}

// NewContext returns an execution context over the given tables.
func NewContext(tables map[string]*Relation) *Context {
	return &Context{Tables: tables, cache: make(map[*Cached]*Relation)}
}

// Node is one operator of a physical plan.
type Node interface {
	Execute(ctx *Context) (*Relation, error)
}

// ---------------------------------------------------------------------------
// Scan

// Scan reads a registered table.
type Scan struct {
	Table string
}

// Execute implements Node.
func (s *Scan) Execute(ctx *Context) (*Relation, error) {
	rel, ok := ctx.Tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTable, s.Table)
	}
	ctx.Stats.RowsScanned += len(rel.Rows)
	return rel, nil
}

// ---------------------------------------------------------------------------
// Filter

// Pred evaluates a predicate against a row; idx maps column names to
// positions and is computed once per execution.
type Pred func(row Row, idx map[string]int) (bool, error)

// Filter keeps the rows matching Pred.
type Filter struct {
	In   Node
	Pred Pred
}

// Execute implements Node.
func (f *Filter) Execute(ctx *Context) (*Relation, error) {
	in, err := f.In.Execute(ctx)
	if err != nil {
		return nil, err
	}
	idx := indexOf(in.Schema)
	out := &Relation{Schema: in.Schema}
	for _, row := range in.Rows {
		keep, err := f.Pred(row, idx)
		if err != nil {
			return nil, err
		}
		if keep {
			out.Rows = append(out.Rows, row)
		}
	}
	ctx.Stats.RowsProcessed += len(in.Rows)
	return out, nil
}

// ---------------------------------------------------------------------------
// Project

// Project keeps a subset of columns, in order.
type Project struct {
	In   Node
	Cols []string
}

// Execute implements Node.
func (p *Project) Execute(ctx *Context) (*Relation, error) {
	in, err := p.In.Execute(ctx)
	if err != nil {
		return nil, err
	}
	positions := make([]int, len(p.Cols))
	for i, c := range p.Cols {
		pos, err := in.Schema.Index(c)
		if err != nil {
			return nil, err
		}
		positions[i] = pos
	}
	out := &Relation{Schema: Schema(p.Cols), Rows: make([]Row, len(in.Rows))}
	for i, row := range in.Rows {
		nr := make(Row, len(positions))
		for j, pos := range positions {
			nr[j] = row[pos]
		}
		out.Rows[i] = nr
	}
	ctx.Stats.RowsProcessed += len(in.Rows)
	return out, nil
}

// ---------------------------------------------------------------------------
// HashJoin

// JoinType selects inner or left-outer semantics.
type JoinType int

// Join types.
const (
	Inner JoinType = iota
	LeftOuter
)

// HashJoin joins two inputs on single equality keys. The right side is
// built into a hash table; left rows probe it. Output schema is the
// left schema followed by the right schema (right columns prefixed with
// the right relation's key column untouched — callers project as
// needed; duplicate names are disambiguated with a "r_" prefix).
type HashJoin struct {
	Left, Right       Node
	LeftKey, RightKey string
	Type              JoinType
}

// Execute implements Node.
func (j *HashJoin) Execute(ctx *Context) (*Relation, error) {
	left, err := j.Left.Execute(ctx)
	if err != nil {
		return nil, err
	}
	right, err := j.Right.Execute(ctx)
	if err != nil {
		return nil, err
	}
	lk, err := left.Schema.Index(j.LeftKey)
	if err != nil {
		return nil, err
	}
	rk, err := right.Schema.Index(j.RightKey)
	if err != nil {
		return nil, err
	}

	outSchema := joinSchema(left.Schema, right.Schema)

	build := make(map[any][]Row, len(right.Rows))
	for _, row := range right.Rows {
		k := row[rk]
		build[k] = append(build[k], row)
	}

	out := &Relation{Schema: outSchema}
	nullRight := make(Row, len(right.Schema))
	for _, lrow := range left.Rows {
		matches := build[lrow[lk]]
		if len(matches) == 0 {
			if j.Type == LeftOuter {
				out.Rows = append(out.Rows, concatRows(lrow, nullRight))
			}
			continue
		}
		for _, rrow := range matches {
			out.Rows = append(out.Rows, concatRows(lrow, rrow))
		}
	}
	ctx.Stats.RowsProcessed += len(left.Rows) + len(right.Rows) + len(out.Rows)
	ctx.Stats.ShuffleBytes += left.ApproxBytes() + right.ApproxBytes()
	ctx.Stats.Stages++
	return out, nil
}

func concatRows(a, b Row) Row {
	out := make(Row, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// ---------------------------------------------------------------------------
// Aggregate

// AggKind is the aggregate function family.
type AggKind int

// Aggregate kinds.
const (
	Count AggKind = iota // COUNT(*) or conditional count via Where
	Sum
	Avg
)

// ValueFn extracts a numeric value from a row.
type ValueFn func(row Row, idx map[string]int) (float64, error)

// AggSpec is one output aggregate.
type AggSpec struct {
	As   string
	Kind AggKind
	// Val feeds Sum/Avg; ignored for Count.
	Val ValueFn
	// Where, when set, restricts which rows feed this aggregate —
	// the CASE WHEN … THEN 1 ELSE 0 pattern of Q12.
	Where Pred
}

// Aggregate groups rows by the GroupBy columns (empty = one global
// group) and computes the Aggs. Output schema is GroupBy ++ agg names.
type Aggregate struct {
	In      Node
	GroupBy []string
	Aggs    []AggSpec
}

type aggState struct {
	key    []any
	counts []int64
	sums   []float64
}

// Execute implements Node.
func (a *Aggregate) Execute(ctx *Context) (*Relation, error) {
	in, err := a.In.Execute(ctx)
	if err != nil {
		return nil, err
	}
	idx := indexOf(in.Schema)
	groupPos := make([]int, len(a.GroupBy))
	for i, c := range a.GroupBy {
		pos, err := in.Schema.Index(c)
		if err != nil {
			return nil, err
		}
		groupPos[i] = pos
	}

	groups := make(map[string]*aggState)
	order := make([]string, 0)
	keyBuf := make([]byte, 0, 64)
	for _, row := range in.Rows {
		keyBuf = keyBuf[:0]
		for _, pos := range groupPos {
			keyBuf = append(keyBuf, fmt.Sprint(row[pos])...)
			keyBuf = append(keyBuf, 0)
		}
		k := string(keyBuf)
		st, ok := groups[k]
		if !ok {
			key := make([]any, len(groupPos))
			for i, pos := range groupPos {
				key[i] = row[pos]
			}
			st = &aggState{
				key:    key,
				counts: make([]int64, len(a.Aggs)),
				sums:   make([]float64, len(a.Aggs)),
			}
			groups[k] = st
			order = append(order, k)
		}
		for i, spec := range a.Aggs {
			if spec.Where != nil {
				ok, err := spec.Where(row, idx)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			st.counts[i]++
			if spec.Kind == Sum || spec.Kind == Avg {
				v, err := spec.Val(row, idx)
				if err != nil {
					return nil, err
				}
				st.sums[i] += v
			}
		}
	}
	// A global aggregate over zero rows still yields one all-zero row,
	// matching SQL semantics for COUNT/SUM over empty input.
	if len(groupPos) == 0 && len(order) == 0 {
		groups[""] = &aggState{
			counts: make([]int64, len(a.Aggs)),
			sums:   make([]float64, len(a.Aggs)),
		}
		order = append(order, "")
	}

	outSchema := make(Schema, 0, len(a.GroupBy)+len(a.Aggs))
	outSchema = append(outSchema, a.GroupBy...)
	for _, spec := range a.Aggs {
		outSchema = append(outSchema, spec.As)
	}
	out := &Relation{Schema: outSchema, Rows: make([]Row, 0, len(order))}
	for _, k := range order {
		st := groups[k]
		row := make(Row, 0, len(outSchema))
		row = append(row, st.key...)
		for i, spec := range a.Aggs {
			switch spec.Kind {
			case Count:
				row = append(row, st.counts[i])
			case Sum:
				row = append(row, st.sums[i])
			case Avg:
				if st.counts[i] == 0 {
					row = append(row, 0.0)
				} else {
					row = append(row, st.sums[i]/float64(st.counts[i]))
				}
			}
		}
		out.Rows = append(out.Rows, row)
	}
	ctx.Stats.RowsProcessed += len(in.Rows)
	ctx.Stats.Stages++
	return out, nil
}

// ---------------------------------------------------------------------------
// Map

// MapFn rewrites one row.
type MapFn func(row Row, idx map[string]int) (Row, error)

// Map applies a row-wise transformation with a new schema (e.g. the
// final ratio computation of Q14).
type Map struct {
	In  Node
	Out Schema
	Fn  MapFn
}

// Execute implements Node.
func (m *Map) Execute(ctx *Context) (*Relation, error) {
	in, err := m.In.Execute(ctx)
	if err != nil {
		return nil, err
	}
	idx := indexOf(in.Schema)
	out := &Relation{Schema: m.Out, Rows: make([]Row, len(in.Rows))}
	for i, row := range in.Rows {
		nr, err := m.Fn(row, idx)
		if err != nil {
			return nil, err
		}
		out.Rows[i] = nr
	}
	ctx.Stats.RowsProcessed += len(in.Rows)
	return out, nil
}

// ---------------------------------------------------------------------------
// Sort and Limit

// Sort orders rows with a comparison function.
type Sort struct {
	In   Node
	Less func(a, b Row, idx map[string]int) bool
}

// Execute implements Node.
func (s *Sort) Execute(ctx *Context) (*Relation, error) {
	in, err := s.In.Execute(ctx)
	if err != nil {
		return nil, err
	}
	idx := indexOf(in.Schema)
	out := &Relation{Schema: in.Schema, Rows: make([]Row, len(in.Rows))}
	copy(out.Rows, in.Rows)
	sort.SliceStable(out.Rows, func(i, j int) bool { return s.Less(out.Rows[i], out.Rows[j], idx) })
	ctx.Stats.RowsProcessed += len(in.Rows)
	ctx.Stats.Stages++
	return out, nil
}

// Limit keeps the first N rows.
type Limit struct {
	In Node
	N  int
}

// Execute implements Node.
func (l *Limit) Execute(ctx *Context) (*Relation, error) {
	in, err := l.In.Execute(ctx)
	if err != nil {
		return nil, err
	}
	n := l.N
	if n > len(in.Rows) {
		n = len(in.Rows)
	}
	return &Relation{Schema: in.Schema, Rows: in.Rows[:n]}, nil
}

// ---------------------------------------------------------------------------
// Cached

// Cached memoizes its child's result within one Context so plans can
// reuse a subtree (Q17 consumes its lineitem ⋈ part join twice) without
// recomputing or double-counting stats.
type Cached struct {
	In Node
}

// Execute implements Node.
func (c *Cached) Execute(ctx *Context) (*Relation, error) {
	if rel, ok := ctx.cache[c]; ok {
		return rel, nil
	}
	rel, err := c.In.Execute(ctx)
	if err != nil {
		return nil, err
	}
	ctx.cache[c] = rel
	return rel, nil
}

// Run executes a plan over the registered tables and returns the result
// relation plus the accumulated operator statistics.
func Run(plan Node, tables map[string]*Relation) (*Relation, Stats, error) {
	ctx := NewContext(tables)
	rel, err := plan.Execute(ctx)
	if err != nil {
		return nil, ctx.Stats, err
	}
	ctx.Stats.RowsOutput = len(rel.Rows)
	return rel, ctx.Stats, nil
}

func indexOf(s Schema) map[string]int {
	idx := make(map[string]int, len(s))
	for i, c := range s {
		idx[c] = i
	}
	return idx
}
