package engine

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// runBothJoins executes a hash join and a merge join over the same
// inputs and returns their row sets canonicalized for comparison.
func runBothJoins(t *testing.T, tables map[string]*Relation, lk, rk string, typ JoinType) (hash, merge []string) {
	t.Helper()
	canon := func(rel *Relation) []string {
		out := make([]string, len(rel.Rows))
		for i, row := range rel.Rows {
			out[i] = fmt.Sprintf("%v", row)
		}
		sort.Strings(out)
		return out
	}
	hj := &HashJoin{Left: &Scan{Table: "l"}, Right: &Scan{Table: "r"}, LeftKey: lk, RightKey: rk, Type: typ}
	mj := &MergeJoin{Left: &Scan{Table: "l"}, Right: &Scan{Table: "r"}, LeftKey: lk, RightKey: rk, Type: typ}
	hrel, _, err := Run(hj, tables)
	if err != nil {
		t.Fatal(err)
	}
	mrel, _, err := Run(mj, tables)
	if err != nil {
		t.Fatal(err)
	}
	return canon(hrel), canon(mrel)
}

func TestMergeJoinMatchesHashJoinInner(t *testing.T) {
	h, m := runBothJoins(t, joinFixtures(), "k", "k", Inner)
	if len(h) != len(m) {
		t.Fatalf("row counts differ: hash %d, merge %d", len(h), len(m))
	}
	for i := range h {
		if h[i] != m[i] {
			t.Fatalf("row %d differs:\n hash  %s\n merge %s", i, h[i], m[i])
		}
	}
}

func TestMergeJoinMatchesHashJoinLeftOuter(t *testing.T) {
	h, m := runBothJoins(t, joinFixtures(), "k", "k", LeftOuter)
	if len(h) != len(m) {
		t.Fatalf("row counts differ: hash %d, merge %d", len(h), len(m))
	}
	for i := range h {
		if h[i] != m[i] {
			t.Fatalf("row %d differs:\n hash  %s\n merge %s", i, h[i], m[i])
		}
	}
}

func TestMergeJoinStringKeys(t *testing.T) {
	tables := map[string]*Relation{
		"l": {Schema: Schema{"k", "v"}, Rows: []Row{{"b", int64(1)}, {"a", int64(2)}, {"c", int64(3)}}},
		"r": {Schema: Schema{"k", "w"}, Rows: []Row{{"a", 1.5}, {"b", 2.5}, {"b", 3.5}}},
	}
	h, m := runBothJoins(t, tables, "k", "k", Inner)
	if len(h) != 3 || len(m) != 3 {
		t.Fatalf("expected 3 rows, got hash %d merge %d", len(h), len(m))
	}
	for i := range h {
		if h[i] != m[i] {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestMergeJoinDuplicateKeysBothSides(t *testing.T) {
	// 2 left × 3 right rows with key 1 → 6 output rows.
	tables := map[string]*Relation{
		"l": {Schema: Schema{"k", "v"}, Rows: []Row{{int64(1), "x"}, {int64(1), "y"}, {int64(2), "z"}}},
		"r": {Schema: Schema{"k", "w"}, Rows: []Row{{int64(1), 1.0}, {int64(1), 2.0}, {int64(1), 3.0}}},
	}
	h, m := runBothJoins(t, tables, "k", "k", Inner)
	if len(m) != 6 {
		t.Fatalf("merge join produced %d rows, want 6", len(m))
	}
	for i := range h {
		if h[i] != m[i] {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestMergeJoinStageAccounting(t *testing.T) {
	tables := joinFixtures()
	mj := &MergeJoin{Left: &Scan{Table: "l"}, Right: &Scan{Table: "r"}, LeftKey: "k", RightKey: "k"}
	_, st, err := Run(mj, tables)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stages != 3 {
		t.Errorf("merge join stages = %d, want 3 (sort+sort+merge)", st.Stages)
	}
}

func TestMergeJoinErrors(t *testing.T) {
	tables := joinFixtures()
	mj := &MergeJoin{Left: &Scan{Table: "l"}, Right: &Scan{Table: "r"}, LeftKey: "nope", RightKey: "k"}
	if _, _, err := Run(mj, tables); err == nil {
		t.Error("bad key accepted")
	}
	// Unsortable key type (float64).
	bad := map[string]*Relation{
		"l": {Schema: Schema{"k"}, Rows: []Row{{1.5}}},
		"r": {Schema: Schema{"k"}, Rows: []Row{{2.5}}},
	}
	mj2 := &MergeJoin{Left: &Scan{Table: "l"}, Right: &Scan{Table: "r"}, LeftKey: "k", RightKey: "k"}
	if _, _, err := Run(mj2, bad); err == nil {
		t.Error("float64 join key accepted")
	}
}

func TestCompareKeysMixedTypes(t *testing.T) {
	if _, err := compareKeys(int64(1), "a"); err == nil {
		t.Error("mixed int/string keys accepted")
	}
	if _, err := compareKeys("a", int64(1)); err == nil {
		t.Error("mixed string/int keys accepted")
	}
	if _, err := compareKeys(1.5, 1.5); err == nil {
		t.Error("float keys accepted")
	}
}

func TestPickJoin(t *testing.T) {
	l, r := &Scan{Table: "l"}, &Scan{Table: "r"}
	// Small build side → hash join.
	if _, ok := PickJoin(l, r, "k", "k", 1_000_000, 500, Inner).(*HashJoin); !ok {
		t.Error("small build side should pick hash join")
	}
	// Similar large sides → merge join.
	if _, ok := PickJoin(l, r, "k", "k", 100_000, 90_000, Inner).(*MergeJoin); !ok {
		t.Error("similar large sides should pick merge join")
	}
	// Probe ≫ build → hash join even when build is large.
	if _, ok := PickJoin(l, r, "k", "k", 1_000_000, 50_000, Inner).(*HashJoin); !ok {
		t.Error("probe ≫ build should pick hash join")
	}
}

// Property: merge join equals hash join on random int-keyed inputs.
func TestPropertyMergeEqualsHash(t *testing.T) {
	rng := stats.NewRNG(5)
	f := func(nL, nR uint8, outer bool) bool {
		lRows := make([]Row, int(nL%30))
		for i := range lRows {
			lRows[i] = Row{int64(rng.Intn(8)), int64(i)}
		}
		rRows := make([]Row, int(nR%30))
		for i := range rRows {
			rRows[i] = Row{int64(rng.Intn(8)), float64(i)}
		}
		tables := map[string]*Relation{
			"l": {Schema: Schema{"k", "v"}, Rows: lRows},
			"r": {Schema: Schema{"k", "w"}, Rows: rRows},
		}
		typ := Inner
		if outer {
			typ = LeftOuter
		}
		hj := &HashJoin{Left: &Scan{Table: "l"}, Right: &Scan{Table: "r"}, LeftKey: "k", RightKey: "k", Type: typ}
		mj := &MergeJoin{Left: &Scan{Table: "l"}, Right: &Scan{Table: "r"}, LeftKey: "k", RightKey: "k", Type: typ}
		hrel, _, err := Run(hj, tables)
		if err != nil {
			return false
		}
		mrel, _, err := Run(mj, tables)
		if err != nil {
			return false
		}
		return len(hrel.Rows) == len(mrel.Rows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
