package engine

import "math"

// Profile is the simulated-cost personality of a database engine: how
// operator statistics translate into wall-clock seconds on a cluster of
// a given size under a given load factor.
type Profile struct {
	Name string
	// StartupS is the fixed cost of launching any query (job
	// submission, container spin-up for Hive; connection + planning
	// for PostgreSQL).
	StartupS float64
	// PerStageS is the barrier cost per blocking operator (MapReduce
	// job scheduling); ~0 for pipelined engines.
	PerStageS float64
	// SecPerRow is the per-row processing cost on a single node.
	SecPerRow float64
	// ShuffleMiBps is the intra-cluster shuffle bandwidth; joins and
	// aggregates move ShuffleBytes through it. Zero disables the term.
	ShuffleMiBps float64
	// ParallelExponent is the scaling exponent: work divides by
	// nodes^ParallelExponent (1 = perfect scaling, 0 = none).
	ParallelExponent float64
	// MaxUsefulNodes caps the parallelism (1 for single-node engines).
	MaxUsefulNodes int
}

// Hive returns the batch-engine profile: expensive startup and stage
// barriers, near-linear scan scaling across the cluster.
func Hive() Profile {
	return Profile{
		Name:             "hive",
		StartupS:         9,
		PerStageS:        5,
		SecPerRow:        2.5e-6,
		ShuffleMiBps:     180,
		ParallelExponent: 0.85,
		MaxUsefulNodes:   64,
	}
}

// Spark returns the in-memory cluster-engine profile (the third engine
// of the paper's Figure 1): lighter job startup than Hive (no MapReduce
// job scheduling, but still JVM/driver spin-up), cheap stage barriers
// thanks to in-memory shuffles, near-linear scaling.
func Spark() Profile {
	return Profile{
		Name:             "spark",
		StartupS:         3.5,
		PerStageS:        0.8,
		SecPerRow:        2.0e-6,
		ShuffleMiBps:     400,
		ParallelExponent: 0.9,
		MaxUsefulNodes:   64,
	}
}

// Postgres returns the row-store profile: instant startup, efficient
// single-node execution, no horizontal scaling.
func Postgres() Profile {
	return Profile{
		Name:             "postgres",
		StartupS:         0.08,
		PerStageS:        0.01,
		SecPerRow:        1.6e-6,
		ShuffleMiBps:     0,
		ParallelExponent: 0,
		MaxUsefulNodes:   1,
	}
}

// SimulateSeconds converts operator statistics into simulated seconds
// for a cluster of the given node count under the given multiplicative
// load factor (1 = nominal). It is deterministic; stochastic noise is
// the federation layer's responsibility.
func (p Profile) SimulateSeconds(st Stats, nodes int, load float64) float64 {
	if nodes < 1 {
		nodes = 1
	}
	if nodes > p.MaxUsefulNodes && p.MaxUsefulNodes > 0 {
		nodes = p.MaxUsefulNodes
	}
	if load <= 0 {
		load = 1
	}
	speedup := math.Pow(float64(nodes), p.ParallelExponent)
	rows := float64(st.RowsScanned + st.RowsProcessed)
	t := p.StartupS + float64(st.Stages)*p.PerStageS
	t += rows * p.SecPerRow / speedup
	if p.ShuffleMiBps > 0 && st.ShuffleBytes > 0 {
		t += st.ShuffleBytes / (p.ShuffleMiBps * 1024 * 1024)
	}
	// Load multiplies the whole job: on a busy cluster, scheduling,
	// scanning and shuffling all queue behind co-tenants.
	return t * load
}
