package engine

import (
	"math"
	"testing"

	"repro/internal/tpch"
)

func TestQ1PlanMatchesReference(t *testing.T) {
	db := genDB(t)
	rel, st, err := Run(BuildQ1Plan(tpch.DefaultQ1Params()),
		map[string]*Relation{"lineitem": ToRelationQ1(db)})
	if err != nil {
		t.Fatal(err)
	}
	want := tpch.Q1(db, tpch.DefaultQ1Params())
	if len(rel.Rows) != len(want) {
		t.Fatalf("engine Q1 has %d groups, reference has %d", len(rel.Rows), len(want))
	}
	idx := map[string]int{}
	for i, c := range rel.Schema {
		idx[c] = i
	}
	for i, w := range want {
		row := rel.Rows[i]
		if row[idx["l_returnflag"]].(string) != string(w.ReturnFlag) ||
			row[idx["l_linestatus"]].(string) != string(w.LineStatus) {
			t.Fatalf("group %d keys: engine (%v,%v), reference (%c,%c)",
				i, row[idx["l_returnflag"]], row[idx["l_linestatus"]], w.ReturnFlag, w.LineStatus)
		}
		checks := []struct {
			col  string
			want float64
		}{
			{"sum_qty", w.SumQty},
			{"sum_base_price", w.SumBase},
			{"sum_disc_price", w.SumDisc},
			{"sum_charge", w.SumCharge},
			{"avg_qty", w.AvgQty},
			{"avg_price", w.AvgPrice},
			{"avg_disc", w.AvgDisc},
		}
		for _, c := range checks {
			got := row[idx[c.col]].(float64)
			if math.Abs(got-c.want) > 1e-6*(1+math.Abs(c.want)) {
				t.Errorf("group %d %s: engine %v, reference %v", i, c.col, got, c.want)
			}
		}
		if row[idx["count_order"]].(int64) != w.Count {
			t.Errorf("group %d count: engine %v, reference %v", i, row[idx["count_order"]], w.Count)
		}
	}
	if st.Stages == 0 {
		t.Error("Q1 accounted no stages")
	}
}

func TestQ6PlanMatchesReference(t *testing.T) {
	db := genDB(t)
	rel, _, err := Run(BuildQ6Plan(tpch.DefaultQ6Params()),
		map[string]*Relation{"lineitem": ToRelationQ1(db)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 1 {
		t.Fatalf("Q6 returned %d rows, want 1", len(rel.Rows))
	}
	got := rel.Rows[0][0].(float64)
	want := tpch.Q6(db, tpch.DefaultQ6Params())
	if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
		t.Errorf("engine Q6 = %v, reference = %v", got, want)
	}
	if want <= 0 {
		t.Error("Q6 reference revenue is zero — generated data never hits the filter band")
	}
}

func TestQ1GroupCount(t *testing.T) {
	// The returnflag/linestatus combinations are constrained by the
	// generator: R/A only before mid-1995 (status F), N after. Expect
	// the classic 4 groups (A|F, N|F, N|O, R|F).
	db := genDB(t)
	rows := tpch.Q1(db, tpch.DefaultQ1Params())
	if len(rows) != 4 {
		t.Errorf("Q1 produced %d groups, want 4", len(rows))
	}
}

func TestQ6ParameterSensitivity(t *testing.T) {
	db := genDB(t)
	base := tpch.Q6(db, tpch.DefaultQ6Params())
	wider := tpch.Q6(db, tpch.Q6Params{
		StartDate: tpch.MakeDate(1994, 1, 1), Discount: 0.06, Quantity: 50,
	})
	if wider <= base {
		t.Errorf("raising the quantity cap should add revenue: %v vs %v", wider, base)
	}
	empty := tpch.Q6(db, tpch.Q6Params{
		StartDate: tpch.MakeDate(2005, 1, 1), Discount: 0.06, Quantity: 24,
	})
	if empty != 0 {
		t.Errorf("out-of-range window returned %v", empty)
	}
}
