package engine

import (
	"math"
	"testing"

	"repro/internal/tpch"
)

// runFederated executes a QueryPlan the way the federation does: prep
// plans against the base tables, final plan against the shipped preps.
func runFederated(t *testing.T, db *tpch.Database, qp *QueryPlan) (*Relation, Stats) {
	t.Helper()
	leftBase, err := ToRelation(db, qp.LeftTable)
	if err != nil {
		t.Fatal(err)
	}
	rightBase, err := ToRelation(db, qp.RightTable)
	if err != nil {
		t.Fatal(err)
	}
	leftRel, st1, err := Run(qp.LeftPrep, map[string]*Relation{qp.LeftTable: leftBase})
	if err != nil {
		t.Fatal(err)
	}
	rightRel, st2, err := Run(qp.RightPrep, map[string]*Relation{qp.RightTable: rightBase})
	if err != nil {
		t.Fatal(err)
	}
	finalRel, st3, err := Run(qp.Final, map[string]*Relation{"left": leftRel, "right": rightRel})
	if err != nil {
		t.Fatal(err)
	}
	total := Stats{
		RowsScanned:   st1.RowsScanned + st2.RowsScanned + st3.RowsScanned,
		RowsProcessed: st1.RowsProcessed + st2.RowsProcessed + st3.RowsProcessed,
		RowsOutput:    st3.RowsOutput,
		ShuffleBytes:  st1.ShuffleBytes + st2.ShuffleBytes + st3.ShuffleBytes,
		Stages:        st1.Stages + st2.Stages + st3.Stages,
	}
	return finalRel, total
}

func genDB(t *testing.T) *tpch.Database {
	t.Helper()
	db, err := tpch.Generate(0.01, tpch.GenOptions{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestToRelationUnknown(t *testing.T) {
	db := genDB(t)
	if _, err := ToRelation(db, "partsupp"); err == nil {
		t.Error("unsupported table accepted")
	}
}

func TestBuildPlanUnknown(t *testing.T) {
	if _, err := BuildPlan(tpch.QueryID(99)); err == nil {
		t.Error("unknown query accepted")
	}
}

func TestQ12PlanMatchesReference(t *testing.T) {
	db := genDB(t)
	qp, err := BuildPlan(tpch.QueryQ12)
	if err != nil {
		t.Fatal(err)
	}
	rel, st := runFederated(t, db, qp)
	want := tpch.Q12(db, tpch.DefaultQ12Params())
	if len(rel.Rows) != len(want) {
		t.Fatalf("engine Q12 has %d groups, reference has %d", len(rel.Rows), len(want))
	}
	for i, w := range want {
		row := rel.Rows[i]
		if row[0].(string) != w.ShipMode ||
			row[1].(int64) != w.HighLineCount ||
			row[2].(int64) != w.LowLineCount {
			t.Errorf("group %d: engine %v, reference %+v", i, row, w)
		}
	}
	if st.Stages == 0 || st.RowsScanned == 0 {
		t.Error("stats not accumulated across federated execution")
	}
}

func TestQ13PlanMatchesReference(t *testing.T) {
	db := genDB(t)
	qp, err := BuildPlan(tpch.QueryQ13)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := runFederated(t, db, qp)
	want := tpch.Q13(db, tpch.DefaultQ13Params())
	if len(rel.Rows) != len(want) {
		t.Fatalf("engine Q13 has %d groups, reference has %d", len(rel.Rows), len(want))
	}
	for i, w := range want {
		row := rel.Rows[i]
		if row[0].(int64) != w.CCount || row[1].(int64) != w.CustDist {
			t.Errorf("row %d: engine (%v, %v), reference (%d, %d)",
				i, row[0], row[1], w.CCount, w.CustDist)
		}
	}
}

func TestQ14PlanMatchesReference(t *testing.T) {
	db := genDB(t)
	qp, err := BuildPlan(tpch.QueryQ14)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := runFederated(t, db, qp)
	if len(rel.Rows) != 1 {
		t.Fatalf("Q14 returned %d rows, want 1", len(rel.Rows))
	}
	got := rel.Rows[0][0].(float64)
	want := tpch.Q14(db, tpch.DefaultQ14Params())
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("engine Q14 = %v, reference = %v", got, want)
	}
}

func TestQ17PlanMatchesReference(t *testing.T) {
	db := genDB(t)
	qp, err := BuildPlan(tpch.QueryQ17)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := runFederated(t, db, qp)
	if len(rel.Rows) != 1 {
		t.Fatalf("Q17 returned %d rows, want 1", len(rel.Rows))
	}
	got := rel.Rows[0][0].(float64)
	want := tpch.Q17(db, tpch.DefaultQ17Params())
	if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
		t.Errorf("engine Q17 = %v, reference = %v", got, want)
	}
}

func TestAllPlansHaveMetadata(t *testing.T) {
	for _, q := range tpch.AllQueries {
		qp, err := BuildPlan(q)
		if err != nil {
			t.Fatal(err)
		}
		if qp.LeftPrep == nil || qp.RightPrep == nil || qp.Final == nil {
			t.Errorf("%v: plan has nil pieces", q)
		}
		wantL, wantR := q.Tables()
		if qp.LeftTable != wantL || qp.RightTable != wantR {
			t.Errorf("%v: tables (%s, %s), want (%s, %s)",
				q, qp.LeftTable, qp.RightTable, wantL, wantR)
		}
	}
}

func TestLikePattern(t *testing.T) {
	if !likePattern("xx special yy requests zz", "special", "requests") {
		t.Error("should match")
	}
	if likePattern("requests then special", "special", "requests") {
		t.Error("order must matter")
	}
	if likePattern("nothing", "special", "requests") {
		t.Error("should not match")
	}
}

func TestProfiles(t *testing.T) {
	st := Stats{RowsScanned: 1_000_000, RowsProcessed: 2_000_000, Stages: 2, ShuffleBytes: 50 * 1024 * 1024}
	hive, pg := Hive(), Postgres()

	h1 := hive.SimulateSeconds(st, 1, 1)
	h8 := hive.SimulateSeconds(st, 8, 1)
	if h8 >= h1 {
		t.Errorf("hive does not speed up with nodes: 1→%v, 8→%v", h1, h8)
	}
	p1 := pg.SimulateSeconds(st, 1, 1)
	p8 := pg.SimulateSeconds(st, 8, 1)
	if p1 != p8 {
		t.Errorf("postgres should ignore extra nodes: 1→%v, 8→%v", p1, p8)
	}
	// Hive pays startup: tiny jobs are faster on postgres.
	tiny := Stats{RowsScanned: 1000, RowsProcessed: 1000, Stages: 1}
	if hive.SimulateSeconds(tiny, 8, 1) < pg.SimulateSeconds(tiny, 1, 1) {
		t.Error("hive should lose on tiny inputs due to startup cost")
	}
	// Load factor scales the variable part.
	lo := hive.SimulateSeconds(st, 4, 0.5)
	hi := hive.SimulateSeconds(st, 4, 2.0)
	if hi <= lo {
		t.Errorf("load factor has no effect: %v vs %v", lo, hi)
	}
	// Defensive paths: nodes < 1 and load ≤ 0 normalize.
	if hive.SimulateSeconds(st, 0, -1) <= 0 {
		t.Error("degenerate inputs should still simulate positive time")
	}
}

func TestProfileCrossover(t *testing.T) {
	// The federation premise: hive wins on big scans with many nodes,
	// postgres wins on small ones.
	hive, pg := Hive(), Postgres()
	big := Stats{RowsScanned: 30_000_000, RowsProcessed: 30_000_000, Stages: 2}
	if hive.SimulateSeconds(big, 16, 1) >= pg.SimulateSeconds(big, 1, 1) {
		t.Error("hive/16 should beat postgres on a 30M-row workload")
	}
	small := Stats{RowsScanned: 100_000, RowsProcessed: 100_000, Stages: 2}
	if pg.SimulateSeconds(small, 1, 1) >= hive.SimulateSeconds(small, 16, 1) {
		t.Error("postgres should beat hive on a 100k-row workload")
	}
}
