package engine

import "repro/internal/tpch"

// Engine plans for the single-table TPC-H queries (Q1, Q6). These do
// not cross sites — the federation layer handles the paper's two-table
// studies — but they exercise the scan/filter/aggregate pipeline on its
// own and serve as engine-level workloads for profiling.

// BuildQ1Plan returns the Pricing Summary Report plan over the
// registered "lineitem" table.
func BuildQ1Plan(p tpch.Q1Params) Node {
	cutoff := int64(tpch.MakeDate(1998, 12, 1).AddDays(-p.DeltaDays))
	qty := func(row Row, idx map[string]int) (float64, error) {
		return colFloat(row, idx, "l_quantity")
	}
	base := func(row Row, idx map[string]int) (float64, error) {
		return colFloat(row, idx, "l_extendedprice")
	}
	discPrice := func(row Row, idx map[string]int) (float64, error) {
		price, err := colFloat(row, idx, "l_extendedprice")
		if err != nil {
			return 0, err
		}
		disc, err := colFloat(row, idx, "l_discount")
		if err != nil {
			return 0, err
		}
		return price * (1 - disc), nil
	}
	charge := func(row Row, idx map[string]int) (float64, error) {
		dp, err := discPrice(row, idx)
		if err != nil {
			return 0, err
		}
		tax, err := colFloat(row, idx, "l_tax")
		if err != nil {
			return 0, err
		}
		return dp * (1 + tax), nil
	}
	disc := func(row Row, idx map[string]int) (float64, error) {
		return colFloat(row, idx, "l_discount")
	}
	return &Sort{
		In: &Aggregate{
			In: &Filter{
				In: &Scan{Table: "lineitem"},
				Pred: func(row Row, idx map[string]int) (bool, error) {
					ship, err := colInt(row, idx, "l_shipdate")
					if err != nil {
						return false, err
					}
					return ship <= cutoff, nil
				},
			},
			GroupBy: []string{"l_returnflag", "l_linestatus"},
			Aggs: []AggSpec{
				{As: "sum_qty", Kind: Sum, Val: qty},
				{As: "sum_base_price", Kind: Sum, Val: base},
				{As: "sum_disc_price", Kind: Sum, Val: discPrice},
				{As: "sum_charge", Kind: Sum, Val: charge},
				{As: "avg_qty", Kind: Avg, Val: qty},
				{As: "avg_price", Kind: Avg, Val: base},
				{As: "avg_disc", Kind: Avg, Val: disc},
				{As: "count_order", Kind: Count},
			},
		},
		Less: func(a, b Row, idx map[string]int) bool {
			af, bf := a[idx["l_returnflag"]].(string), b[idx["l_returnflag"]].(string)
			if af != bf {
				return af < bf
			}
			return a[idx["l_linestatus"]].(string) < b[idx["l_linestatus"]].(string)
		},
	}
}

// BuildQ6Plan returns the Forecasting Revenue Change plan over the
// registered "lineitem" table; the result is a single revenue value.
func BuildQ6Plan(p tpch.Q6Params) Node {
	start, end := int64(p.StartDate), int64(p.StartDate.AddYears(1))
	lo, hi := p.Discount-0.01, p.Discount+0.01
	const eps = 1e-9
	return &Aggregate{
		In: &Filter{
			In: &Scan{Table: "lineitem"},
			Pred: func(row Row, idx map[string]int) (bool, error) {
				ship, err := colInt(row, idx, "l_shipdate")
				if err != nil {
					return false, err
				}
				if ship < start || ship >= end {
					return false, nil
				}
				disc, err := colFloat(row, idx, "l_discount")
				if err != nil {
					return false, err
				}
				if disc < lo-eps || disc > hi+eps {
					return false, nil
				}
				qty, err := colFloat(row, idx, "l_quantity")
				if err != nil {
					return false, err
				}
				return qty < p.Quantity, nil
			},
		},
		Aggs: []AggSpec{{
			As: "revenue", Kind: Sum,
			Val: func(row Row, idx map[string]int) (float64, error) {
				price, err := colFloat(row, idx, "l_extendedprice")
				if err != nil {
					return 0, err
				}
				disc, err := colFloat(row, idx, "l_discount")
				if err != nil {
					return 0, err
				}
				return price * disc, nil
			},
		}},
	}
}

// ToRelationQ1 converts lineitem with the extra columns Q1 needs
// (returnflag, linestatus, tax) that the two-table plans omit.
func ToRelationQ1(db *tpch.Database) *Relation {
	rel := &Relation{Name: "lineitem", Schema: Schema{
		"l_quantity", "l_extendedprice", "l_discount", "l_tax",
		"l_returnflag", "l_linestatus", "l_shipdate",
	}}
	rel.Rows = make([]Row, len(db.Lineitems))
	for i := range db.Lineitems {
		l := &db.Lineitems[i]
		rel.Rows[i] = Row{
			l.Quantity, l.ExtendedPrice, l.Discount, l.Tax,
			string(l.ReturnFlag), string(l.LineStatus), int64(l.ShipDate),
		}
	}
	return rel
}
