package engine

import (
	"errors"
	"testing"
)

func testRelation() *Relation {
	return &Relation{
		Name:   "t",
		Schema: Schema{"id", "grp", "val"},
		Rows: []Row{
			{int64(1), "a", 10.0},
			{int64(2), "a", 20.0},
			{int64(3), "b", 30.0},
			{int64(4), "b", 40.0},
			{int64(5), "c", 50.0},
		},
	}
}

func run(t *testing.T, plan Node, tables map[string]*Relation) (*Relation, Stats) {
	t.Helper()
	rel, st, err := Run(plan, tables)
	if err != nil {
		t.Fatal(err)
	}
	return rel, st
}

func TestSchemaIndex(t *testing.T) {
	s := Schema{"a", "b"}
	i, err := s.Index("b")
	if err != nil || i != 1 {
		t.Errorf("Index(b) = %d, %v", i, err)
	}
	if _, err := s.Index("z"); !errors.Is(err, ErrUnknownColumn) {
		t.Errorf("got %v, want ErrUnknownColumn", err)
	}
}

func TestScan(t *testing.T) {
	tables := map[string]*Relation{"t": testRelation()}
	rel, st := run(t, &Scan{Table: "t"}, tables)
	if len(rel.Rows) != 5 {
		t.Errorf("scan returned %d rows, want 5", len(rel.Rows))
	}
	if st.RowsScanned != 5 {
		t.Errorf("RowsScanned = %d, want 5", st.RowsScanned)
	}
	if _, _, err := Run(&Scan{Table: "missing"}, tables); !errors.Is(err, ErrUnknownTable) {
		t.Errorf("got %v, want ErrUnknownTable", err)
	}
}

func TestFilter(t *testing.T) {
	tables := map[string]*Relation{"t": testRelation()}
	plan := &Filter{
		In: &Scan{Table: "t"},
		Pred: func(row Row, idx map[string]int) (bool, error) {
			return row[idx["val"]].(float64) > 25, nil
		},
	}
	rel, st := run(t, plan, tables)
	if len(rel.Rows) != 3 {
		t.Errorf("filter kept %d rows, want 3", len(rel.Rows))
	}
	if st.RowsProcessed != 5 {
		t.Errorf("RowsProcessed = %d, want 5", st.RowsProcessed)
	}
}

func TestFilterError(t *testing.T) {
	tables := map[string]*Relation{"t": testRelation()}
	plan := &Filter{
		In:   &Scan{Table: "t"},
		Pred: func(Row, map[string]int) (bool, error) { return false, errors.New("boom") },
	}
	if _, _, err := Run(plan, tables); err == nil {
		t.Error("predicate error swallowed")
	}
}

func TestProject(t *testing.T) {
	tables := map[string]*Relation{"t": testRelation()}
	rel, _ := run(t, &Project{In: &Scan{Table: "t"}, Cols: []string{"val", "id"}}, tables)
	if len(rel.Schema) != 2 || rel.Schema[0] != "val" || rel.Schema[1] != "id" {
		t.Errorf("projected schema = %v", rel.Schema)
	}
	if rel.Rows[0][0] != 10.0 || rel.Rows[0][1] != int64(1) {
		t.Errorf("projected row = %v", rel.Rows[0])
	}
	if _, _, err := Run(&Project{In: &Scan{Table: "t"}, Cols: []string{"zzz"}}, tables); !errors.Is(err, ErrUnknownColumn) {
		t.Errorf("got %v, want ErrUnknownColumn", err)
	}
}

func joinFixtures() map[string]*Relation {
	return map[string]*Relation{
		"l": {
			Schema: Schema{"k", "lv"},
			Rows:   []Row{{int64(1), "x"}, {int64(2), "y"}, {int64(3), "z"}},
		},
		"r": {
			Schema: Schema{"k", "rv"},
			Rows:   []Row{{int64(1), 100.0}, {int64(1), 200.0}, {int64(3), 300.0}},
		},
	}
}

func TestHashJoinInner(t *testing.T) {
	plan := &HashJoin{
		Left: &Scan{Table: "l"}, Right: &Scan{Table: "r"},
		LeftKey: "k", RightKey: "k",
	}
	rel, st := run(t, plan, joinFixtures())
	// k=1 matches twice, k=3 once, k=2 drops → 3 output rows.
	if len(rel.Rows) != 3 {
		t.Fatalf("inner join output %d rows, want 3", len(rel.Rows))
	}
	// Duplicate column names get r_ prefixed.
	if _, err := rel.Schema.Index("r_k"); err != nil {
		t.Errorf("schema %v lacks disambiguated r_k", rel.Schema)
	}
	if st.Stages != 1 {
		t.Errorf("Stages = %d, want 1", st.Stages)
	}
	if st.ShuffleBytes <= 0 {
		t.Error("join should account shuffle bytes")
	}
}

func TestHashJoinLeftOuter(t *testing.T) {
	plan := &HashJoin{
		Left: &Scan{Table: "l"}, Right: &Scan{Table: "r"},
		LeftKey: "k", RightKey: "k", Type: LeftOuter,
	}
	rel, _ := run(t, plan, joinFixtures())
	// k=2 survives with nil padding → 4 rows.
	if len(rel.Rows) != 4 {
		t.Fatalf("left outer join output %d rows, want 4", len(rel.Rows))
	}
	var sawNull bool
	idx, _ := rel.Schema.Index("rv")
	for _, row := range rel.Rows {
		if row[idx] == nil {
			sawNull = true
		}
	}
	if !sawNull {
		t.Error("no nil padding for unmatched left row")
	}
}

func TestHashJoinBadKey(t *testing.T) {
	plan := &HashJoin{
		Left: &Scan{Table: "l"}, Right: &Scan{Table: "r"},
		LeftKey: "nope", RightKey: "k",
	}
	if _, _, err := Run(plan, joinFixtures()); !errors.Is(err, ErrUnknownColumn) {
		t.Errorf("got %v, want ErrUnknownColumn", err)
	}
}

func TestAggregateGrouped(t *testing.T) {
	tables := map[string]*Relation{"t": testRelation()}
	plan := &Aggregate{
		In:      &Scan{Table: "t"},
		GroupBy: []string{"grp"},
		Aggs: []AggSpec{
			{As: "n", Kind: Count},
			{As: "total", Kind: Sum, Val: func(row Row, idx map[string]int) (float64, error) {
				return row[idx["val"]].(float64), nil
			}},
			{As: "mean", Kind: Avg, Val: func(row Row, idx map[string]int) (float64, error) {
				return row[idx["val"]].(float64), nil
			}},
		},
	}
	rel, st := run(t, plan, tables)
	if len(rel.Rows) != 3 {
		t.Fatalf("aggregate produced %d groups, want 3", len(rel.Rows))
	}
	byGrp := map[string]Row{}
	for _, row := range rel.Rows {
		byGrp[row[0].(string)] = row
	}
	a := byGrp["a"]
	if a[1] != int64(2) || a[2] != 30.0 || a[3] != 15.0 {
		t.Errorf("group a = %v, want [a 2 30 15]", a)
	}
	if st.Stages != 1 {
		t.Errorf("Stages = %d, want 1", st.Stages)
	}
}

func TestAggregateConditionalCount(t *testing.T) {
	tables := map[string]*Relation{"t": testRelation()}
	plan := &Aggregate{
		In: &Scan{Table: "t"},
		Aggs: []AggSpec{{
			As: "big", Kind: Count,
			Where: func(row Row, idx map[string]int) (bool, error) {
				return row[idx["val"]].(float64) >= 30, nil
			},
		}},
	}
	rel, _ := run(t, plan, tables)
	if len(rel.Rows) != 1 || rel.Rows[0][0] != int64(3) {
		t.Errorf("conditional count = %v, want [[3]]", rel.Rows)
	}
}

func TestAggregateGlobalOnEmptyInput(t *testing.T) {
	tables := map[string]*Relation{"e": {Schema: Schema{"x"}, Rows: nil}}
	plan := &Aggregate{
		In:   &Scan{Table: "e"},
		Aggs: []AggSpec{{As: "n", Kind: Count}},
	}
	rel, _ := run(t, plan, tables)
	if len(rel.Rows) != 1 || rel.Rows[0][0] != int64(0) {
		t.Errorf("global aggregate over empty input = %v, want one zero row", rel.Rows)
	}
}

func TestAggregateAvgEmptyGroupGuard(t *testing.T) {
	// Avg with a Where that never fires yields 0, not NaN.
	tables := map[string]*Relation{"t": testRelation()}
	plan := &Aggregate{
		In: &Scan{Table: "t"},
		Aggs: []AggSpec{{
			As: "avg_none", Kind: Avg,
			Val:   func(row Row, idx map[string]int) (float64, error) { return 1, nil },
			Where: func(Row, map[string]int) (bool, error) { return false, nil },
		}},
	}
	rel, _ := run(t, plan, tables)
	if rel.Rows[0][0] != 0.0 {
		t.Errorf("empty Avg = %v, want 0", rel.Rows[0][0])
	}
}

func TestMap(t *testing.T) {
	tables := map[string]*Relation{"t": testRelation()}
	plan := &Map{
		In:  &Scan{Table: "t"},
		Out: Schema{"doubled"},
		Fn: func(row Row, idx map[string]int) (Row, error) {
			return Row{row[idx["val"]].(float64) * 2}, nil
		},
	}
	rel, _ := run(t, plan, tables)
	if rel.Rows[0][0] != 20.0 {
		t.Errorf("map = %v, want 20", rel.Rows[0][0])
	}
}

func TestSortAndLimit(t *testing.T) {
	tables := map[string]*Relation{"t": testRelation()}
	plan := &Limit{
		N: 2,
		In: &Sort{
			In: &Scan{Table: "t"},
			Less: func(a, b Row, idx map[string]int) bool {
				return a[idx["val"]].(float64) > b[idx["val"]].(float64)
			},
		},
	}
	rel, _ := run(t, plan, tables)
	if len(rel.Rows) != 2 {
		t.Fatalf("limit kept %d rows, want 2", len(rel.Rows))
	}
	if rel.Rows[0][2] != 50.0 || rel.Rows[1][2] != 40.0 {
		t.Errorf("sorted rows = %v", rel.Rows)
	}
	// Limit larger than input is a no-op.
	rel, _ = run(t, &Limit{N: 99, In: &Scan{Table: "t"}}, tables)
	if len(rel.Rows) != 5 {
		t.Errorf("oversized limit kept %d rows, want 5", len(rel.Rows))
	}
}

func TestCachedExecutesOnce(t *testing.T) {
	tables := map[string]*Relation{"t": testRelation()}
	cached := &Cached{In: &Scan{Table: "t"}}
	// Join the cached node with itself: without memoization the scan
	// would count 10 scanned rows; with it, 5.
	plan := &HashJoin{
		Left: cached, Right: cached,
		LeftKey: "id", RightKey: "id",
	}
	rel, st := run(t, plan, tables)
	if len(rel.Rows) != 5 {
		t.Fatalf("self join produced %d rows, want 5", len(rel.Rows))
	}
	if st.RowsScanned != 5 {
		t.Errorf("RowsScanned = %d, want 5 (cached subtree re-executed)", st.RowsScanned)
	}
}

func TestRunReportsOutputRows(t *testing.T) {
	tables := map[string]*Relation{"t": testRelation()}
	_, st := run(t, &Scan{Table: "t"}, tables)
	if st.RowsOutput != 5 {
		t.Errorf("RowsOutput = %d, want 5", st.RowsOutput)
	}
}

func TestApproxBytes(t *testing.T) {
	r := testRelation()
	if r.ApproxBytes() != float64(5*3*12) {
		t.Errorf("ApproxBytes = %v, want %v", r.ApproxBytes(), 5*3*12)
	}
}
