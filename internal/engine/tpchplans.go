package engine

import (
	"fmt"

	"repro/internal/tpch"
)

// This file bridges the TPC-H population into engine relations and
// builds the physical plans of the paper's four evaluation queries.
// Each query is split federation-style into three pieces: a *left
// preparation* plan (scan + pushed-down filters/projection on the fact
// table's site), a *right preparation* plan (same for the dimension
// table's site), and a *final* plan (join + aggregation at whichever
// site the optimizer picks) that consumes the shipped prep results
// registered as tables "left" and "right".

// ToRelation converts a generated TPC-H table into an engine relation.
// Only the columns the evaluation queries read are materialized.
func ToRelation(db *tpch.Database, table string) (*Relation, error) {
	switch table {
	case "lineitem":
		rel := &Relation{Name: table, Schema: Schema{
			"l_orderkey", "l_partkey", "l_quantity", "l_extendedprice",
			"l_discount", "l_shipdate", "l_commitdate", "l_receiptdate", "l_shipmode",
		}}
		rel.Rows = make([]Row, len(db.Lineitems))
		for i := range db.Lineitems {
			l := &db.Lineitems[i]
			rel.Rows[i] = Row{
				int64(l.OrderKey), int64(l.PartKey), l.Quantity, l.ExtendedPrice,
				l.Discount, int64(l.ShipDate), int64(l.CommitDate), int64(l.ReceiptDate), l.ShipMode,
			}
		}
		return rel, nil
	case "orders":
		rel := &Relation{Name: table, Schema: Schema{
			"o_orderkey", "o_custkey", "o_orderpriority", "o_comment",
		}}
		rel.Rows = make([]Row, len(db.Orders))
		for i := range db.Orders {
			o := &db.Orders[i]
			rel.Rows[i] = Row{int64(o.OrderKey), int64(o.CustKey), o.OrderPriority, o.Comment}
		}
		return rel, nil
	case "customer":
		rel := &Relation{Name: table, Schema: Schema{"c_custkey"}}
		rel.Rows = make([]Row, len(db.Customers))
		for i := range db.Customers {
			rel.Rows[i] = Row{int64(db.Customers[i].CustKey)}
		}
		return rel, nil
	case "part":
		rel := &Relation{Name: table, Schema: Schema{
			"p_partkey", "p_brand", "p_type", "p_container",
		}}
		rel.Rows = make([]Row, len(db.Parts))
		for i := range db.Parts {
			p := &db.Parts[i]
			rel.Rows[i] = Row{int64(p.PartKey), p.Brand, p.Type, p.Container}
		}
		return rel, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownTable, table)
}

// QueryPlan is the federated decomposition of one evaluation query.
type QueryPlan struct {
	Query tpch.QueryID
	// LeftTable/RightTable name the base tables of the two prep plans.
	LeftTable, RightTable string
	// LeftPrep/RightPrep run at the sites owning the tables.
	LeftPrep, RightPrep Node
	// Final runs at the join site over tables "left" and "right".
	Final Node
}

// BuildPlan constructs the federated plan of a studied query with the
// spec's default substitution parameters.
func BuildPlan(q tpch.QueryID) (*QueryPlan, error) {
	switch q {
	case tpch.QueryQ12:
		return buildQ12(), nil
	case tpch.QueryQ13:
		return buildQ13(), nil
	case tpch.QueryQ14:
		return buildQ14(), nil
	case tpch.QueryQ17:
		return buildQ17(), nil
	}
	return nil, fmt.Errorf("engine: no plan builder for query %v", q)
}

func colInt(row Row, idx map[string]int, name string) (int64, error) {
	i, ok := idx[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownColumn, name)
	}
	v, ok := row[i].(int64)
	if !ok {
		return 0, fmt.Errorf("engine: column %q is %T, want int64", name, row[i])
	}
	return v, nil
}

func colFloat(row Row, idx map[string]int, name string) (float64, error) {
	i, ok := idx[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownColumn, name)
	}
	v, ok := row[i].(float64)
	if !ok {
		return 0, fmt.Errorf("engine: column %q is %T, want float64", name, row[i])
	}
	return v, nil
}

func colString(row Row, idx map[string]int, name string) (string, error) {
	i, ok := idx[name]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownColumn, name)
	}
	v, ok := row[i].(string)
	if !ok {
		return "", fmt.Errorf("engine: column %q is %T, want string", name, row[i])
	}
	return v, nil
}

func buildQ12() *QueryPlan {
	p := tpch.DefaultQ12Params()
	start, end := int64(p.StartDate), int64(p.StartDate.AddYears(1))
	modes := map[string]bool{}
	for _, m := range p.ShipModes {
		modes[m] = true
	}
	left := &Project{
		In: &Filter{
			In: &Scan{Table: "lineitem"},
			Pred: func(row Row, idx map[string]int) (bool, error) {
				mode, err := colString(row, idx, "l_shipmode")
				if err != nil {
					return false, err
				}
				if !modes[mode] {
					return false, nil
				}
				commit, err := colInt(row, idx, "l_commitdate")
				if err != nil {
					return false, err
				}
				receipt, err := colInt(row, idx, "l_receiptdate")
				if err != nil {
					return false, err
				}
				ship, err := colInt(row, idx, "l_shipdate")
				if err != nil {
					return false, err
				}
				return commit < receipt && ship < commit && receipt >= start && receipt < end, nil
			},
		},
		Cols: []string{"l_orderkey", "l_shipmode"},
	}
	right := &Project{
		In:   &Scan{Table: "orders"},
		Cols: []string{"o_orderkey", "o_orderpriority"},
	}
	isHigh := func(row Row, idx map[string]int) (bool, error) {
		prio, err := colString(row, idx, "o_orderpriority")
		if err != nil {
			return false, err
		}
		return prio == "1-URGENT" || prio == "2-HIGH", nil
	}
	isLow := func(row Row, idx map[string]int) (bool, error) {
		high, err := isHigh(row, idx)
		return !high, err
	}
	final := &Sort{
		In: &Aggregate{
			In: &HashJoin{
				Left:    &Scan{Table: "left"},
				Right:   &Scan{Table: "right"},
				LeftKey: "l_orderkey", RightKey: "o_orderkey",
			},
			GroupBy: []string{"l_shipmode"},
			Aggs: []AggSpec{
				{As: "high_line_count", Kind: Count, Where: isHigh},
				{As: "low_line_count", Kind: Count, Where: isLow},
			},
		},
		Less: func(a, b Row, idx map[string]int) bool {
			return a[idx["l_shipmode"]].(string) < b[idx["l_shipmode"]].(string)
		},
	}
	return &QueryPlan{
		Query: tpch.QueryQ12, LeftTable: "lineitem", RightTable: "orders",
		LeftPrep: left, RightPrep: right, Final: final,
	}
}

func buildQ13() *QueryPlan {
	p := tpch.DefaultQ13Params()
	// Left prep: orders surviving the comment filter.
	left := &Project{
		In: &Filter{
			In: &Scan{Table: "orders"},
			Pred: func(row Row, idx map[string]int) (bool, error) {
				comment, err := colString(row, idx, "o_comment")
				if err != nil {
					return false, err
				}
				return !likePattern(comment, p.Word1, p.Word2), nil
			},
		},
		Cols: []string{"o_orderkey", "o_custkey"},
	}
	right := &Project{In: &Scan{Table: "customer"}, Cols: []string{"c_custkey"}}
	// Final: customer ⟕ filtered-orders, count orders per customer,
	// histogram the counts.
	perCustomer := &Aggregate{
		In: &HashJoin{
			Left:    &Scan{Table: "right"}, // customer drives the outer join
			Right:   &Scan{Table: "left"},
			LeftKey: "c_custkey", RightKey: "o_custkey",
			Type: LeftOuter,
		},
		GroupBy: []string{"c_custkey"},
		Aggs: []AggSpec{{
			As: "c_count", Kind: Count,
			Where: func(row Row, idx map[string]int) (bool, error) {
				return row[idx["o_orderkey"]] != nil, nil
			},
		}},
	}
	final := &Sort{
		In: &Aggregate{
			In:      perCustomer,
			GroupBy: []string{"c_count"},
			Aggs:    []AggSpec{{As: "custdist", Kind: Count}},
		},
		Less: func(a, b Row, idx map[string]int) bool {
			ad, bd := a[idx["custdist"]].(int64), b[idx["custdist"]].(int64)
			if ad != bd {
				return ad > bd
			}
			return a[idx["c_count"]].(int64) > b[idx["c_count"]].(int64)
		},
	}
	return &QueryPlan{
		Query: tpch.QueryQ13, LeftTable: "orders", RightTable: "customer",
		LeftPrep: left, RightPrep: right, Final: final,
	}
}

func buildQ14() *QueryPlan {
	p := tpch.DefaultQ14Params()
	start, end := int64(p.StartDate), int64(p.StartDate.AddMonths(1))
	left := &Project{
		In: &Filter{
			In: &Scan{Table: "lineitem"},
			Pred: func(row Row, idx map[string]int) (bool, error) {
				ship, err := colInt(row, idx, "l_shipdate")
				if err != nil {
					return false, err
				}
				return ship >= start && ship < end, nil
			},
		},
		Cols: []string{"l_partkey", "l_extendedprice", "l_discount"},
	}
	right := &Project{In: &Scan{Table: "part"}, Cols: []string{"p_partkey", "p_type"}}
	revenue := func(row Row, idx map[string]int) (float64, error) {
		price, err := colFloat(row, idx, "l_extendedprice")
		if err != nil {
			return 0, err
		}
		disc, err := colFloat(row, idx, "l_discount")
		if err != nil {
			return 0, err
		}
		return price * (1 - disc), nil
	}
	final := &Map{
		In: &Aggregate{
			In: &HashJoin{
				Left:    &Scan{Table: "left"},
				Right:   &Scan{Table: "right"},
				LeftKey: "l_partkey", RightKey: "p_partkey",
			},
			Aggs: []AggSpec{
				{As: "promo_revenue_sum", Kind: Sum, Val: revenue,
					Where: func(row Row, idx map[string]int) (bool, error) {
						t, err := colString(row, idx, "p_type")
						if err != nil {
							return false, err
						}
						return len(t) >= 5 && t[:5] == "PROMO", nil
					}},
				{As: "total_revenue", Kind: Sum, Val: revenue},
			},
		},
		Out: Schema{"promo_revenue"},
		Fn: func(row Row, idx map[string]int) (Row, error) {
			promo := row[idx["promo_revenue_sum"]].(float64)
			total := row[idx["total_revenue"]].(float64)
			if total == 0 {
				return Row{0.0}, nil
			}
			return Row{100 * promo / total}, nil
		},
	}
	return &QueryPlan{
		Query: tpch.QueryQ14, LeftTable: "lineitem", RightTable: "part",
		LeftPrep: left, RightPrep: right, Final: final,
	}
}

func buildQ17() *QueryPlan {
	p := tpch.DefaultQ17Params()
	left := &Project{
		In:   &Scan{Table: "lineitem"},
		Cols: []string{"l_partkey", "l_quantity", "l_extendedprice"},
	}
	right := &Project{
		In: &Filter{
			In: &Scan{Table: "part"},
			Pred: func(row Row, idx map[string]int) (bool, error) {
				brand, err := colString(row, idx, "p_brand")
				if err != nil {
					return false, err
				}
				container, err := colString(row, idx, "p_container")
				if err != nil {
					return false, err
				}
				return brand == p.Brand && container == p.Container, nil
			},
		},
		Cols: []string{"p_partkey"},
	}
	joined := &Cached{In: &HashJoin{
		Left:    &Scan{Table: "left"},
		Right:   &Scan{Table: "right"},
		LeftKey: "l_partkey", RightKey: "p_partkey",
	}}
	avgQty := &Aggregate{
		In:      joined,
		GroupBy: []string{"p_partkey"},
		Aggs: []AggSpec{{
			As: "avg_qty", Kind: Avg,
			Val: func(row Row, idx map[string]int) (float64, error) {
				return colFloat(row, idx, "l_quantity")
			},
		}},
	}
	withAvg := &HashJoin{
		Left:    joined,
		Right:   avgQty,
		LeftKey: "l_partkey", RightKey: "p_partkey",
	}
	final := &Map{
		In: &Aggregate{
			In: &Filter{
				In: withAvg,
				Pred: func(row Row, idx map[string]int) (bool, error) {
					qty, err := colFloat(row, idx, "l_quantity")
					if err != nil {
						return false, err
					}
					avg, err := colFloat(row, idx, "avg_qty")
					if err != nil {
						return false, err
					}
					return qty < 0.2*avg, nil
				},
			},
			Aggs: []AggSpec{{
				As: "sum_price", Kind: Sum,
				Val: func(row Row, idx map[string]int) (float64, error) {
					return colFloat(row, idx, "l_extendedprice")
				},
			}},
		},
		Out: Schema{"avg_yearly"},
		Fn: func(row Row, idx map[string]int) (Row, error) {
			return Row{row[idx["sum_price"]].(float64) / 7.0}, nil
		},
	}
	return &QueryPlan{
		Query: tpch.QueryQ17, LeftTable: "lineitem", RightTable: "part",
		LeftPrep: left, RightPrep: right, Final: final,
	}
}

// likePattern mirrors tpch.matchesLikePattern for plan predicates
// (LIKE '%w1%w2%').
func likePattern(s, w1, w2 string) bool {
	for i := 0; i+len(w1) <= len(s); i++ {
		if s[i:i+len(w1)] == w1 {
			rest := s[i+len(w1):]
			for j := 0; j+len(w2) <= len(rest); j++ {
				if rest[j:j+len(w2)] == w2 {
					return true
				}
			}
			return false
		}
	}
	return false
}
