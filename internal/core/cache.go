package core

import "sync"

// The model cache exploits a structural property of Algorithm 1: the
// window search — which windows are tried, which models are fitted,
// where it converges — depends only on the history contents, never on
// the plan being estimated. A scheduler estimating tens of thousands of
// equivalent QEPs against one history (paper Example 3.1) therefore
// needs exactly one window search per history version; every further
// plan costs only one prediction per metric.

// DefaultCacheSize is the default bound on cached window fits. One
// entry is retained per (history, version) pair, so the bound is the
// number of distinct query templates × history versions estimated
// between evictions — generous for a scheduler that appends one
// observation per round.
const DefaultCacheSize = 64

// fitKey identifies one immutable history state.
type fitKey struct {
	owner   *History
	version uint64
}

// fitEntry is a single-flight cache slot: concurrent estimators racing
// on a fresh key all wait on one window search instead of fitting the
// same models in parallel.
type fitEntry struct {
	once sync.Once
	fit  *windowFit
	err  error
}

// fitCache is a bounded FIFO map of window fits. FIFO (not LRU) is
// deliberate: keys are monotonically growing history versions, so the
// oldest entry is also the least likely to be requested again.
type fitCache struct {
	mu     sync.Mutex
	max    int
	order  []fitKey
	m      map[fitKey]*fitEntry
	hits   uint64
	misses uint64
}

func newFitCache(max int) *fitCache {
	if max < 1 {
		max = 1
	}
	return &fitCache{max: max, m: make(map[fitKey]*fitEntry, max)}
}

// get returns the cached fit for k, computing it at most once across
// concurrent callers. Errors are cached too: a window search that fails
// for one plan fails identically for every plan of the same version.
func (c *fitCache) get(k fitKey, compute func() (*windowFit, error)) (*windowFit, error) {
	c.mu.Lock()
	e, ok := c.m[k]
	if ok {
		c.hits++
	} else {
		c.misses++
		e = &fitEntry{}
		c.m[k] = e
		c.order = append(c.order, k)
		for len(c.order) > c.max {
			delete(c.m, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.mu.Unlock()
	e.once.Do(func() { e.fit, e.err = compute() })
	return e.fit, e.err
}

func (c *fitCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
