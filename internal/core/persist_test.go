package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestHistorySaveLoadRoundTrip(t *testing.T) {
	h := mustHistory(t, 2, "time", "money")
	rng := stats.NewRNG(1)
	if err := fillLinear(h, rng, 25, 0.5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadHistory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != h.Len() || got.Dim() != h.Dim() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", got.Len(), got.Dim(), h.Len(), h.Dim())
	}
	gm, hm := got.Metrics(), h.Metrics()
	for i := range hm {
		if gm[i] != hm[i] {
			t.Fatalf("metrics differ: %v vs %v", gm, hm)
		}
	}
	for i := 0; i < h.Len(); i++ {
		a, b := h.At(i), got.At(i)
		for j := range a.X {
			if a.X[j] != b.X[j] {
				t.Fatalf("observation %d feature %d differs", i, j)
			}
		}
		for j := range a.Costs {
			if a.Costs[j] != b.Costs[j] {
				t.Fatalf("observation %d cost %d differs", i, j)
			}
		}
	}

	// Estimates over original and reloaded history are identical.
	est := mustEstimator(t, Config{MMax: 12})
	e1, err := est.EstimateCostValue(h, []float64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := est.EstimateCostValue(got, []float64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range e1.Metrics {
		if e1.Metrics[i].Value != e2.Metrics[i].Value {
			t.Fatal("reloaded history changes estimates")
		}
	}
}

func TestLoadHistoryRejectsGarbage(t *testing.T) {
	if _, err := LoadHistory(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadHistory(strings.NewReader(`{"version":99,"dim":1,"metrics":["t"]}`)); !errors.Is(err, ErrBadSnapshot) {
		t.Error("wrong version accepted")
	}
	if _, err := LoadHistory(strings.NewReader(`{"version":1,"dim":0,"metrics":["t"]}`)); !errors.Is(err, ErrBadSnapshot) {
		t.Error("zero dim accepted")
	}
	if _, err := LoadHistory(strings.NewReader(`{"version":1,"dim":1,"metrics":[]}`)); !errors.Is(err, ErrBadSnapshot) {
		t.Error("no metrics accepted")
	}
	// Observation shape mismatch.
	bad := `{"version":1,"dim":2,"metrics":["t"],"observations":[{"x":[1],"costs":[1]}]}`
	if _, err := LoadHistory(strings.NewReader(bad)); !errors.Is(err, ErrBadSnapshot) {
		t.Error("bad observation accepted")
	}
}

func TestSaveEmptyHistory(t *testing.T) {
	h := mustHistory(t, 1, "t")
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadHistory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("empty history round-trip has %d observations", got.Len())
	}
}
