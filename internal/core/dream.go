// Package core implements DREAM — the Dynamic Regression Algorithm that
// is the paper's primary contribution (Section 3, Algorithm 1).
//
// DREAM estimates the multi-metric cost vector of a query execution
// plan with Multiple Linear Regression fitted over a *dynamic* window
// of the most recent historical observations. The window starts at the
// statistically minimal size m = L+2 and grows one observation at a
// time until the coefficient of determination R² of every per-metric
// model reaches a user-required threshold (R²require, 0.8 in the
// paper) or the window hits Mmax. Keeping the window small both cuts
// the cost of estimating the (potentially tens of thousands of)
// equivalent plans in a cloud federation (paper Example 3.1) and keeps
// expired observations — stale under cloud load drift — out of the
// model.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/regression"
	"repro/internal/stats"
)

// DefaultRequiredR2 is the paper's recommended fit-quality threshold:
// "R² should be greater than 0.8 to provide a sufficient quality of
// service level."
const DefaultRequiredR2 = 0.8

// ErrNoMetrics is returned when a history is built with no cost metrics.
var ErrNoMetrics = errors.New("core: history needs at least one metric")

// ErrInsufficientHistory is returned when fewer than L+2 observations
// exist, below which no MLR model is defined.
var ErrInsufficientHistory = errors.New("core: insufficient history")

// ErrMetricCount is returned when an observation's cost vector does not
// match the history's metric set.
var ErrMetricCount = errors.New("core: observation metric count mismatch")

// Observation is one completed execution: the feature vector that was
// known before running (data sizes, node counts, …) and the cost vector
// that was measured afterwards, one entry per metric.
type Observation struct {
	X     []float64
	Costs []float64
}

// HistorySink receives every observation appended to a History, in
// append order, before the observation becomes visible in memory — the
// seam a durable store (internal/histstore) plugs into without core
// knowing anything about disks. RecordObservation is called with the
// History's internal lock held, so implementations must not call back
// into the History; they should do their own (brief) synchronization
// and I/O and return.
type HistorySink interface {
	// RecordObservation persists one validated observation. An error
	// aborts the append: the observation is NOT added to the in-memory
	// history, preserving write-ahead semantics (durable state is never
	// behind a state the caller observed).
	RecordObservation(o Observation) error
}

// PendingSink is the group-commit extension of HistorySink: the sink
// may defer the expensive durability step (an fsync) and coalesce it
// across many appends, as long as each append can later block until a
// flush covering it has completed. History.Append uses it when the
// attached sink implements it: the write happens under the History
// lock (preserving WAL order == memory order), while the durability
// wait happens after the lock is released — which is exactly what lets
// concurrent appends pile onto one fsync instead of serializing a disk
// flush each.
type PendingSink interface {
	HistorySink
	// RecordObservationPending persists o write-ahead like
	// RecordObservation but may leave it buffered; it returns a ticket
	// for WaitObservation. Called with the History lock held.
	RecordObservationPending(o Observation) (ticket uint64, err error)
	// WaitObservation blocks until the ticketed observation is durable
	// to the sink's configured level (e.g. its covering fsync has
	// returned) or the sink has failed. Called WITHOUT the History
	// lock. A non-nil error means durability was not achieved; the
	// in-memory append has already happened and is not rolled back —
	// callers must treat the error as "do not acknowledge this write".
	WaitObservation(ticket uint64) error
}

// History is an append-only, time-ordered log of observations for one
// operator or query template. Index 0 is the oldest observation.
//
// A History is safe for concurrent use: appends take a write lock and
// bump a version counter, reads take a read lock. Concurrent estimators
// should grab a Snapshot once and work against that immutable view, so
// one scheduling round sees one consistent history even while executed
// plans stream observations in. Do not copy a History after first use.
type History struct {
	metrics []string
	dim     int

	mu      sync.RWMutex
	obs     []Observation
	version uint64
	sink    HistorySink
	// pending is sink's PendingSink view, resolved once at SetSink so
	// Append does not pay a type assertion per call; nil when the sink
	// does not support deferred durability.
	pending PendingSink
}

// NewHistory creates a history for the given feature dimension and
// named cost metrics (e.g. "time_s", "money_usd").
func NewHistory(dim int, metrics ...string) (*History, error) {
	if len(metrics) == 0 {
		return nil, ErrNoMetrics
	}
	if dim <= 0 {
		return nil, fmt.Errorf("core: non-positive feature dimension %d", dim)
	}
	ms := make([]string, len(metrics))
	copy(ms, metrics)
	return &History{metrics: ms, dim: dim}, nil
}

// Metrics returns the metric names in cost-vector order.
func (h *History) Metrics() []string {
	out := make([]string, len(h.metrics))
	copy(out, h.metrics)
	return out
}

// Dim returns the feature dimension L.
func (h *History) Dim() int { return h.dim }

// Len returns the number of observations.
func (h *History) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.obs)
}

// Version returns a counter that increments on every Append. A fitted
// model is valid for exactly one (history, version) pair, which is the
// key the estimator's model cache uses.
func (h *History) Version() uint64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.version
}

// SetSink attaches (or, with nil, detaches) a durability sink. Every
// subsequent Append writes through the sink before the observation
// becomes visible in memory, and the sink sees observations in exactly
// the order the history holds them. Attach the sink before handing the
// History to appenders; observations appended earlier are not replayed
// into it.
func (h *History) SetSink(sink HistorySink) {
	pending, _ := sink.(PendingSink)
	h.mu.Lock()
	h.sink = sink
	h.pending = pending
	h.mu.Unlock()
}

// Append records a completed execution. With a sink attached the
// observation is persisted first (write-ahead): a sink error aborts the
// append and the in-memory history is unchanged. With a PendingSink the
// durability wait runs after the history lock is released, so
// concurrent appenders coalesce onto shared flushes; a wait error means
// the observation is in memory but its durability is unconfirmed — the
// caller must not acknowledge the write.
func (h *History) Append(o Observation) error {
	if len(o.X) != h.dim {
		return fmt.Errorf("core: observation has %d features, history wants %d", len(o.X), h.dim)
	}
	if len(o.Costs) != len(h.metrics) {
		return fmt.Errorf("%w: got %d costs, want %d", ErrMetricCount, len(o.Costs), len(h.metrics))
	}
	x := make([]float64, len(o.X))
	copy(x, o.X)
	c := make([]float64, len(o.Costs))
	copy(c, o.Costs)
	stored := Observation{X: x, Costs: c}
	h.mu.Lock()
	var (
		ticket  uint64
		pending PendingSink
	)
	if h.pending != nil {
		t, err := h.pending.RecordObservationPending(stored)
		if err != nil {
			h.mu.Unlock()
			return fmt.Errorf("core: history sink: %w", err)
		}
		ticket, pending = t, h.pending
	} else if h.sink != nil {
		if err := h.sink.RecordObservation(stored); err != nil {
			h.mu.Unlock()
			return fmt.Errorf("core: history sink: %w", err)
		}
	}
	h.obs = append(h.obs, stored)
	h.version++
	h.mu.Unlock()
	if pending != nil {
		if err := pending.WaitObservation(ticket); err != nil {
			return fmt.Errorf("core: history sink: %w", err)
		}
	}
	return nil
}

// At returns the i-th observation, oldest first.
func (h *History) At(i int) Observation {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.obs[i]
}

// Snapshot captures an immutable view of the current history. The
// returned snapshot is safe to read without locking while other
// goroutines keep appending: observations are never mutated in place,
// so the captured prefix stays valid forever.
func (h *History) Snapshot() *Snapshot {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return &Snapshot{
		owner:   h,
		version: h.version,
		obs:     h.obs[:len(h.obs):len(h.obs)],
	}
}

// Snapshot is a point-in-time immutable view of a History. All methods
// are safe for concurrent use without further locking.
type Snapshot struct {
	owner   *History
	version uint64
	obs     []Observation
}

// Len returns the number of observations in the snapshot.
func (s *Snapshot) Len() int { return len(s.obs) }

// At returns the i-th observation, oldest first.
func (s *Snapshot) At(i int) Observation { return s.obs[i] }

// Dim returns the feature dimension L.
func (s *Snapshot) Dim() int { return s.owner.dim }

// Metrics returns the metric names in cost-vector order.
func (s *Snapshot) Metrics() []string { return s.owner.Metrics() }

// Version reports the history version the snapshot was taken at.
func (s *Snapshot) Version() uint64 { return s.version }

func (s *Snapshot) metricName(n int) string { return s.owner.metrics[n] }

// metricSamples materializes the m selected observations as regression
// samples for metric index n.
func metricSamples(obs []Observation, n int) []regression.Sample {
	out := make([]regression.Sample, len(obs))
	for i, o := range obs {
		out[i] = regression.Sample{X: o.X, C: o.Costs[n]}
	}
	return out
}

// GrowthPolicy selects how the window expands when fit quality is
// insufficient. The paper's Algorithm 1 uses GrowByOne; Doubling is an
// ablation that trades window tightness for fewer refits.
type GrowthPolicy int

const (
	// GrowByOne increments m by 1 per iteration (paper, Algorithm 1
	// line 11: "m = m + 1").
	GrowByOne GrowthPolicy = iota
	// Doubling doubles the window per iteration (clamped to Mmax).
	Doubling
)

// WindowPolicy selects which observations enter a window of size m.
type WindowPolicy int

const (
	// MostRecent takes the m newest observations (DREAM's choice: the
	// new training set "has the updated value and avoids using the
	// expired information").
	MostRecent WindowPolicy = iota
	// UniformSample draws m observations uniformly from the whole
	// history — the recency ablation.
	UniformSample
)

// Config parameterizes a DREAM estimator.
type Config struct {
	// RequiredR2 is the per-metric fit threshold; a single global value
	// applied to all metrics. Defaults to DefaultRequiredR2.
	RequiredR2 float64
	// MMax caps the window size (Algorithm 1's Mmax). Zero means "the
	// whole available history".
	MMax int
	// Growth selects the window growth schedule.
	Growth GrowthPolicy
	// Window selects which observations form a window of size m.
	Window WindowPolicy
	// Seed drives UniformSample; ignored for MostRecent.
	Seed int64
	// CacheSize bounds the per-(history, version) model cache: the
	// window search of Algorithm 1 does not depend on the plan being
	// estimated, so its fitted models are reused for every plan
	// estimated against the same history version. Zero selects
	// DefaultCacheSize; a negative value disables caching. The cache
	// only applies to the MostRecent window policy — UniformSample
	// redraws its window on every call by design.
	CacheSize int
}

// Estimator runs Algorithm 1 against a History. It is safe for
// concurrent use by multiple goroutines.
type Estimator struct {
	cfg Config

	mu         sync.Mutex // guards rng and idxScratch (UniformSample window draws)
	rng        *stats.RNG
	idxScratch []int // partial Fisher–Yates scratch, reused across draws

	// fitters pools the incremental shared-Gram fitters so a window
	// search in steady state performs O(1) allocations regardless of how
	// far the window grows; each in-flight search owns one fitter.
	fitters sync.Pool

	cacheMu sync.Mutex
	cache   *fitCache // nil when caching is disabled

	// Observation-only instrumentation counters (see Stats): they are
	// written with atomics on the side of the fit path and never read
	// by it, so they cannot perturb any estimate.
	windowSearches   atomic.Uint64
	refitsTotal      atomic.Uint64
	incrementalSteps atomic.Uint64
	refitsAvoided    atomic.Uint64
	lastWindowSize   atomic.Int64
	lastConverged    atomic.Bool
}

// NewEstimator validates the configuration and returns an estimator.
func NewEstimator(cfg Config) (*Estimator, error) {
	if cfg.RequiredR2 == 0 {
		cfg.RequiredR2 = DefaultRequiredR2
	}
	if cfg.RequiredR2 < 0 || cfg.RequiredR2 > 1 {
		return nil, fmt.Errorf("core: RequiredR2 %v outside [0,1]", cfg.RequiredR2)
	}
	if cfg.MMax < 0 {
		return nil, fmt.Errorf("core: negative MMax %d", cfg.MMax)
	}
	e := &Estimator{cfg: cfg, rng: stats.NewRNG(cfg.Seed)}
	e.SetCacheSize(cfg.CacheSize)
	return e, nil
}

// SetCacheSize resizes (or, with a negative n, disables) the model
// cache. Resizing drops all cached fits. Zero restores
// DefaultCacheSize.
func (e *Estimator) SetCacheSize(n int) {
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	if n < 0 || e.cfg.Window != MostRecent {
		e.cache = nil
		return
	}
	if n == 0 {
		n = DefaultCacheSize
	}
	e.cache = newFitCache(n)
}

// CacheStats reports model-cache hits and misses since construction or
// the last SetCacheSize call. Both are zero when caching is disabled.
func (e *Estimator) CacheStats() (hits, misses uint64) {
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	if e.cache == nil {
		return 0, 0
	}
	return e.cache.stats()
}

// EstimatorStats is a point-in-time view of the estimator's
// observation-only instrumentation — the numbers an operator watches
// to see Algorithm 1 working (and drifting) in a live process.
type EstimatorStats struct {
	// WindowSearches counts completed runs of the window-growth loop;
	// with the model cache on, this is the number of distinct history
	// versions estimated against.
	WindowSearches uint64
	// Refits counts MLR fits across all searches — the paper's
	// Example 3.1 computational-cost signal, cumulative. Each fit is now
	// a back-substitution against the shared Gram factor rather than a
	// from-scratch normal-equation solve, so the count stays comparable
	// across the legacy and incremental paths while the per-fit cost
	// dropped by roughly the window size.
	Refits uint64
	// IncrementalSteps counts rank-1 observation updates folded into
	// shared-Gram fitters — the work the incremental search actually
	// performs per window growth step (O(L²+K·L) each).
	IncrementalSteps uint64
	// RefitsAvoided counts the full-window batch refits the legacy
	// Algorithm 1 loop would have performed that the incremental search
	// skipped by reusing the accumulated Gram as the window grew: every
	// growth round after a search's first would have refit each metric
	// over the whole window from scratch.
	RefitsAvoided uint64
	// LastWindowSize is the final m of the most recent window search.
	// Under drift the search needs more observations to reach the
	// required R², so this growing toward Mmax is the operator's
	// leading signal that execution conditions are moving.
	LastWindowSize int
	// LastConverged reports whether that search reached RequiredR2 on
	// every metric before exhausting the window.
	LastConverged bool
	// CacheHits and CacheMisses mirror CacheStats.
	CacheHits, CacheMisses uint64
}

// Stats returns the estimator's instrumentation counters. It is safe
// for concurrent use and never blocks an in-flight estimate.
func (e *Estimator) Stats() EstimatorStats {
	hits, misses := e.CacheStats()
	return EstimatorStats{
		WindowSearches:   e.windowSearches.Load(),
		Refits:           e.refitsTotal.Load(),
		IncrementalSteps: e.incrementalSteps.Load(),
		RefitsAvoided:    e.refitsAvoided.Load(),
		LastWindowSize:   int(e.lastWindowSize.Load()),
		LastConverged:    e.lastConverged.Load(),
		CacheHits:        hits,
		CacheMisses:      misses,
	}
}

// MetricEstimate is the per-metric output of Algorithm 1.
type MetricEstimate struct {
	Metric string
	Value  float64 // ĉₙ(p): the predicted cost
	R2     float64 // fit quality of the model that produced Value
	// StdErr is the OLS standard error of a new observation at the
	// plan's features; 0 when the window had no residual degrees of
	// freedom (treat as unknown width, not certainty).
	StdErr float64
	Model  *regression.Model
}

// Estimate is the result of one EstimateCostValue call.
type Estimate struct {
	Metrics []MetricEstimate
	// WindowSize is the final m: the size of the "new training set"
	// DREAM hands to Modelling (paper Figure 2).
	WindowSize int
	// Converged reports whether every metric reached RequiredR2 before
	// the window was exhausted.
	Converged bool
	// Refits counts model fits performed across all metrics — the
	// computational-cost signal for the Example 3.1 experiment.
	Refits int
}

// Values returns the predicted cost vector in metric order.
func (e *Estimate) Values() []float64 {
	out := make([]float64, len(e.Metrics))
	for i, m := range e.Metrics {
		out[i] = m.Value
	}
	return out
}

// EstimateCostValue implements Algorithm 1: predict the cost vector of
// a plan with feature vector x from the smallest window of history that
// explains the observed variance well enough.
func (e *Estimator) EstimateCostValue(h *History, x []float64) (*Estimate, error) {
	return e.EstimateSnapshot(h.Snapshot(), x)
}

// EstimateSnapshot runs Algorithm 1 against a point-in-time history
// snapshot. Concurrent estimators fanning one scheduling round over
// many plans should take the snapshot once so every plan is scored
// against the same history version (and hits the same cached fit).
func (e *Estimator) EstimateSnapshot(s *Snapshot, x []float64) (*Estimate, error) {
	if len(x) != s.Dim() {
		return nil, fmt.Errorf("core: plan has %d features, history has %d", len(x), s.Dim())
	}
	minM := regression.MinObservations(s.Dim())
	if s.Len() < minM {
		return nil, fmt.Errorf("%w: have %d observations, need %d", ErrInsufficientHistory, s.Len(), minM)
	}

	fit, err := e.fitFor(s, minM)
	if err != nil {
		return nil, err
	}
	est := &Estimate{
		Metrics:    make([]MetricEstimate, len(fit.models)),
		WindowSize: fit.windowSize,
		Converged:  fit.converged,
		Refits:     fit.refits,
	}
	for n := range fit.models {
		v, se, err := fit.models[n].PredictWithInterval(x)
		if err != nil {
			return nil, err
		}
		est.Metrics[n] = MetricEstimate{
			Metric: s.metricName(n),
			Value:  v,
			R2:     fit.r2s[n],
			StdErr: se,
			Model:  fit.models[n],
		}
	}
	return est, nil
}

// windowFit is the plan-independent output of Algorithm 1's window
// search: the fitted per-metric models and the search statistics. It is
// what the model cache stores, keyed by (history, version).
type windowFit struct {
	models     []*regression.Model
	r2s        []float64
	windowSize int
	converged  bool
	// refits counts the model fits the search performed. Estimates
	// served from cache report the producing search's count, so the
	// Example 3.1 computational-cost signal stays comparable across
	// cached and uncached runs.
	refits int
}

// fitFor returns the window-search result for the snapshot, serving it
// from the model cache when possible.
func (e *Estimator) fitFor(s *Snapshot, minM int) (*windowFit, error) {
	e.cacheMu.Lock()
	cache := e.cache
	e.cacheMu.Unlock()
	if cache == nil {
		return e.searchWindow(s, minM)
	}
	return cache.get(fitKey{owner: s.owner, version: s.version}, func() (*windowFit, error) {
		return e.searchWindow(s, minM)
	})
}

// searchWindow is Algorithm 1's window-growth loop: fit every metric on
// the current window, grow until all models reach RequiredR2 or the
// window hits Mmax. MostRecent windows grow at their old end, so the
// search runs incrementally against one shared-Gram fitter
// (searchWindowIncremental); UniformSample redraws the whole window per
// step by design and keeps the per-window batch path
// (searchWindowSampled).
func (e *Estimator) searchWindow(s *Snapshot, minM int) (*windowFit, error) {
	mmax := e.cfg.MMax
	if mmax == 0 || mmax > s.Len() {
		mmax = s.Len()
	}
	if mmax < minM {
		mmax = minM
	}

	var (
		fit *windowFit
		err error
	)
	if e.cfg.Window == UniformSample {
		fit, err = e.searchWindowSampled(s, minM, mmax)
	} else {
		fit, err = e.searchWindowIncremental(s, minM, mmax)
	}
	if err != nil {
		return nil, err
	}
	e.windowSearches.Add(1)
	e.refitsTotal.Add(uint64(fit.refits))
	e.lastWindowSize.Store(int64(fit.windowSize))
	e.lastConverged.Store(fit.converged)
	return fit, nil
}

// searchWindowSampled is the legacy per-window loop, retained for the
// UniformSample recency ablation: each step redraws an unrelated
// window, so there is no shared state to update incrementally.
func (e *Estimator) searchWindowSampled(s *Snapshot, minM, mmax int) (*windowFit, error) {
	nMetrics := len(s.owner.metrics)
	fit := &windowFit{
		models: make([]*regression.Model, nMetrics),
		r2s:    make([]float64, nMetrics),
	}
	for i := range fit.r2s {
		fit.r2s[i] = -1 // "R²n ← ∅" (Algorithm 1 line 3): no model yet
	}

	m := minM
	for {
		window := e.window(s, m)
		allGood := true
		for n := 0; n < nMetrics; n++ {
			model, err := regression.Fit(metricSamples(window, n), regression.FitOptions{})
			if err != nil {
				return nil, fmt.Errorf("core: metric %q window %d: %w", s.metricName(n), m, err)
			}
			fit.refits++
			fit.models[n] = model
			fit.r2s[n] = model.R2
			if model.R2 < e.cfg.RequiredR2 {
				allGood = false
			}
		}
		if allGood {
			fit.converged = true
			break
		}
		if m >= mmax {
			break
		}
		m = e.grow(m, mmax)
	}
	fit.windowSize = m
	return fit, nil
}

// TrainingWindow returns the reduced training set DREAM would hand to a
// downstream Modelling module (paper Figure 2): the most recent m
// observations where m is the converged window size for plan features
// x. It is exposed so external learners can be trained on DREAM-sized
// windows.
func (e *Estimator) TrainingWindow(h *History, x []float64) ([]Observation, error) {
	s := h.Snapshot()
	est, err := e.EstimateSnapshot(s, x)
	if err != nil {
		return nil, err
	}
	window := e.window(s, est.WindowSize)
	out := make([]Observation, len(window))
	copy(out, window)
	return out, nil
}

func (e *Estimator) grow(m, mmax int) int {
	switch e.cfg.Growth {
	case Doubling:
		m *= 2
	default:
		m++
	}
	if m > mmax {
		m = mmax
	}
	return m
}

func (e *Estimator) window(s *Snapshot, m int) []Observation {
	if m > s.Len() {
		m = s.Len()
	}
	switch e.cfg.Window {
	case UniformSample:
		// Partial Fisher–Yates: draw exactly the m indices the window
		// needs (m swaps, m variates) instead of permuting the whole
		// history, with the index scratch reused across draws. Only the
		// returned window escapes the lock; the scratch never does.
		out := make([]Observation, m)
		e.mu.Lock()
		n := s.Len()
		if cap(e.idxScratch) < n {
			e.idxScratch = make([]int, n)
		}
		idx := e.idxScratch[:n]
		for i := range idx {
			idx[i] = i
		}
		for i := 0; i < m; i++ {
			j := i + e.rng.Intn(n-i)
			idx[i], idx[j] = idx[j], idx[i]
			out[i] = s.obs[idx[i]]
		}
		e.mu.Unlock()
		return out
	default:
		return s.obs[s.Len()-m:]
	}
}
