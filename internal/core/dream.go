// Package core implements DREAM — the Dynamic Regression Algorithm that
// is the paper's primary contribution (Section 3, Algorithm 1).
//
// DREAM estimates the multi-metric cost vector of a query execution
// plan with Multiple Linear Regression fitted over a *dynamic* window
// of the most recent historical observations. The window starts at the
// statistically minimal size m = L+2 and grows one observation at a
// time until the coefficient of determination R² of every per-metric
// model reaches a user-required threshold (R²require, 0.8 in the
// paper) or the window hits Mmax. Keeping the window small both cuts
// the cost of estimating the (potentially tens of thousands of)
// equivalent plans in a cloud federation (paper Example 3.1) and keeps
// expired observations — stale under cloud load drift — out of the
// model.
package core

import (
	"errors"
	"fmt"

	"repro/internal/regression"
	"repro/internal/stats"
)

// DefaultRequiredR2 is the paper's recommended fit-quality threshold:
// "R² should be greater than 0.8 to provide a sufficient quality of
// service level."
const DefaultRequiredR2 = 0.8

// ErrNoMetrics is returned when a history is built with no cost metrics.
var ErrNoMetrics = errors.New("core: history needs at least one metric")

// ErrInsufficientHistory is returned when fewer than L+2 observations
// exist, below which no MLR model is defined.
var ErrInsufficientHistory = errors.New("core: insufficient history")

// ErrMetricCount is returned when an observation's cost vector does not
// match the history's metric set.
var ErrMetricCount = errors.New("core: observation metric count mismatch")

// Observation is one completed execution: the feature vector that was
// known before running (data sizes, node counts, …) and the cost vector
// that was measured afterwards, one entry per metric.
type Observation struct {
	X     []float64
	Costs []float64
}

// History is an append-only, time-ordered log of observations for one
// operator or query template. Index 0 is the oldest observation.
type History struct {
	metrics []string
	dim     int
	obs     []Observation
}

// NewHistory creates a history for the given feature dimension and
// named cost metrics (e.g. "time_s", "money_usd").
func NewHistory(dim int, metrics ...string) (*History, error) {
	if len(metrics) == 0 {
		return nil, ErrNoMetrics
	}
	if dim <= 0 {
		return nil, fmt.Errorf("core: non-positive feature dimension %d", dim)
	}
	ms := make([]string, len(metrics))
	copy(ms, metrics)
	return &History{metrics: ms, dim: dim}, nil
}

// Metrics returns the metric names in cost-vector order.
func (h *History) Metrics() []string {
	out := make([]string, len(h.metrics))
	copy(out, h.metrics)
	return out
}

// Dim returns the feature dimension L.
func (h *History) Dim() int { return h.dim }

// Len returns the number of observations.
func (h *History) Len() int { return len(h.obs) }

// Append records a completed execution.
func (h *History) Append(o Observation) error {
	if len(o.X) != h.dim {
		return fmt.Errorf("core: observation has %d features, history wants %d", len(o.X), h.dim)
	}
	if len(o.Costs) != len(h.metrics) {
		return fmt.Errorf("%w: got %d costs, want %d", ErrMetricCount, len(o.Costs), len(h.metrics))
	}
	x := make([]float64, len(o.X))
	copy(x, o.X)
	c := make([]float64, len(o.Costs))
	copy(c, o.Costs)
	h.obs = append(h.obs, Observation{X: x, Costs: c})
	return nil
}

// At returns the i-th observation, oldest first.
func (h *History) At(i int) Observation { return h.obs[i] }

// metricSamples materializes the m selected observations as regression
// samples for metric index n.
func metricSamples(obs []Observation, n int) []regression.Sample {
	out := make([]regression.Sample, len(obs))
	for i, o := range obs {
		out[i] = regression.Sample{X: o.X, C: o.Costs[n]}
	}
	return out
}

// GrowthPolicy selects how the window expands when fit quality is
// insufficient. The paper's Algorithm 1 uses GrowByOne; Doubling is an
// ablation that trades window tightness for fewer refits.
type GrowthPolicy int

const (
	// GrowByOne increments m by 1 per iteration (paper, Algorithm 1
	// line 11: "m = m + 1").
	GrowByOne GrowthPolicy = iota
	// Doubling doubles the window per iteration (clamped to Mmax).
	Doubling
)

// WindowPolicy selects which observations enter a window of size m.
type WindowPolicy int

const (
	// MostRecent takes the m newest observations (DREAM's choice: the
	// new training set "has the updated value and avoids using the
	// expired information").
	MostRecent WindowPolicy = iota
	// UniformSample draws m observations uniformly from the whole
	// history — the recency ablation.
	UniformSample
)

// Config parameterizes a DREAM estimator.
type Config struct {
	// RequiredR2 is the per-metric fit threshold; a single global value
	// applied to all metrics. Defaults to DefaultRequiredR2.
	RequiredR2 float64
	// MMax caps the window size (Algorithm 1's Mmax). Zero means "the
	// whole available history".
	MMax int
	// Growth selects the window growth schedule.
	Growth GrowthPolicy
	// Window selects which observations form a window of size m.
	Window WindowPolicy
	// Seed drives UniformSample; ignored for MostRecent.
	Seed int64
}

// Estimator runs Algorithm 1 against a History.
type Estimator struct {
	cfg Config
	rng *stats.RNG
}

// NewEstimator validates the configuration and returns an estimator.
func NewEstimator(cfg Config) (*Estimator, error) {
	if cfg.RequiredR2 == 0 {
		cfg.RequiredR2 = DefaultRequiredR2
	}
	if cfg.RequiredR2 < 0 || cfg.RequiredR2 > 1 {
		return nil, fmt.Errorf("core: RequiredR2 %v outside [0,1]", cfg.RequiredR2)
	}
	if cfg.MMax < 0 {
		return nil, fmt.Errorf("core: negative MMax %d", cfg.MMax)
	}
	return &Estimator{cfg: cfg, rng: stats.NewRNG(cfg.Seed)}, nil
}

// MetricEstimate is the per-metric output of Algorithm 1.
type MetricEstimate struct {
	Metric string
	Value  float64 // ĉₙ(p): the predicted cost
	R2     float64 // fit quality of the model that produced Value
	// StdErr is the OLS standard error of a new observation at the
	// plan's features; 0 when the window had no residual degrees of
	// freedom (treat as unknown width, not certainty).
	StdErr float64
	Model  *regression.Model
}

// Estimate is the result of one EstimateCostValue call.
type Estimate struct {
	Metrics []MetricEstimate
	// WindowSize is the final m: the size of the "new training set"
	// DREAM hands to Modelling (paper Figure 2).
	WindowSize int
	// Converged reports whether every metric reached RequiredR2 before
	// the window was exhausted.
	Converged bool
	// Refits counts model fits performed across all metrics — the
	// computational-cost signal for the Example 3.1 experiment.
	Refits int
}

// Values returns the predicted cost vector in metric order.
func (e *Estimate) Values() []float64 {
	out := make([]float64, len(e.Metrics))
	for i, m := range e.Metrics {
		out[i] = m.Value
	}
	return out
}

// EstimateCostValue implements Algorithm 1: predict the cost vector of
// a plan with feature vector x from the smallest window of history that
// explains the observed variance well enough.
func (e *Estimator) EstimateCostValue(h *History, x []float64) (*Estimate, error) {
	if len(x) != h.Dim() {
		return nil, fmt.Errorf("core: plan has %d features, history has %d", len(x), h.Dim())
	}
	l := h.Dim()
	minM := regression.MinObservations(l)
	if h.Len() < minM {
		return nil, fmt.Errorf("%w: have %d observations, need %d", ErrInsufficientHistory, h.Len(), minM)
	}
	mmax := e.cfg.MMax
	if mmax == 0 || mmax > h.Len() {
		mmax = h.Len()
	}
	if mmax < minM {
		mmax = minM
	}

	nMetrics := len(h.metrics)
	est := &Estimate{Metrics: make([]MetricEstimate, nMetrics)}
	models := make([]*regression.Model, nMetrics)
	r2s := make([]float64, nMetrics)
	for i := range r2s {
		r2s[i] = -1 // "R²n ← ∅" (Algorithm 1 line 3): no model yet
	}

	m := minM
	for {
		window := e.window(h, m)
		allGood := true
		for n := 0; n < nMetrics; n++ {
			model, err := regression.Fit(metricSamples(window, n), regression.FitOptions{})
			if err != nil {
				return nil, fmt.Errorf("core: metric %q window %d: %w", h.metrics[n], m, err)
			}
			est.Refits++
			models[n] = model
			r2s[n] = model.R2
			if model.R2 < e.cfg.RequiredR2 {
				allGood = false
			}
		}
		if allGood {
			est.Converged = true
			break
		}
		if m >= mmax {
			break
		}
		m = e.grow(m, mmax)
	}

	est.WindowSize = m
	for n := 0; n < nMetrics; n++ {
		v, se, err := models[n].PredictWithInterval(x)
		if err != nil {
			return nil, err
		}
		est.Metrics[n] = MetricEstimate{
			Metric: h.metrics[n],
			Value:  v,
			R2:     r2s[n],
			StdErr: se,
			Model:  models[n],
		}
	}
	return est, nil
}

// TrainingWindow returns the reduced training set DREAM would hand to a
// downstream Modelling module (paper Figure 2): the most recent m
// observations where m is the converged window size for plan features
// x. It is exposed so external learners can be trained on DREAM-sized
// windows.
func (e *Estimator) TrainingWindow(h *History, x []float64) ([]Observation, error) {
	est, err := e.EstimateCostValue(h, x)
	if err != nil {
		return nil, err
	}
	window := e.window(h, est.WindowSize)
	out := make([]Observation, len(window))
	copy(out, window)
	return out, nil
}

func (e *Estimator) grow(m, mmax int) int {
	switch e.cfg.Growth {
	case Doubling:
		m *= 2
	default:
		m++
	}
	if m > mmax {
		m = mmax
	}
	return m
}

func (e *Estimator) window(h *History, m int) []Observation {
	if m > h.Len() {
		m = h.Len()
	}
	switch e.cfg.Window {
	case UniformSample:
		idx := e.rng.Perm(h.Len())[:m]
		out := make([]Observation, m)
		for i, j := range idx {
			out[i] = h.obs[j]
		}
		return out
	default:
		return h.obs[h.Len()-m:]
	}
}
