package core

import (
	"fmt"

	"repro/internal/regression"
)

// The incremental window search.
//
// The legacy Algorithm 1 loop paid O(M²·L²·K) per search: every growth
// step re-ran a batch fit for every metric, rebuilding the m×(L+1)
// design matrix and recomputing AᵀA from scratch — even though the
// design matrix is identical across all K metrics of a window, and a
// MostRecent window of size m+1 is the size-m window plus exactly one
// older observation. Both redundancies fall to the shared-Gram
// incremental fitter:
//
//   - one fitter carries AᵀA and all K right-hand sides, so a growth
//     step is a single rank-1 update (order-independent Gram sums make
//     "the window grew at its old end" a plain AddObservation);
//   - each window size factors the Gram once (Cholesky) and
//     back-substitutes K times, with SSE derived from βᵀ(Aᵀc) so R²
//     needs no second pass over the window.
//
// Total: O(M·L² + M·(L³ + K·L²)) per search — linear in the window
// instead of quadratic, and O(1) steady-state allocations thanks to the
// estimator's fitter pool.

// fitterFor hands out a pooled fitter reshaped for the snapshot's
// dimensions. Callers must return it with e.fitters.Put when the search
// is done (models materialized), never before.
func (e *Estimator) fitterFor(l, k int) *regression.IncrementalFitter {
	if f, ok := e.fitters.Get().(*regression.IncrementalFitter); ok {
		f.Reset(l, k)
		return f
	}
	return regression.NewIncrementalFitter(l, k)
}

// searchWindowIncremental runs Algorithm 1's window-growth loop for
// MostRecent windows by feeding observations into one shared-Gram
// fitter as the window grows.
func (e *Estimator) searchWindowIncremental(s *Snapshot, minM, mmax int) (*windowFit, error) {
	nMetrics := len(s.owner.metrics)
	fitter := e.fitterFor(s.Dim(), nMetrics)
	defer e.fitters.Put(fitter)

	obs := s.obs
	total := len(obs)
	// feed folds obs[from:to) into the fitter. Observation order never
	// affects the Gram sums, so growing the window at its old end needs
	// no special handling.
	feed := func(from, to int) error {
		for i := from; i < to; i++ {
			if err := fitter.AddObservation(obs[i].X, obs[i].Costs); err != nil {
				return err
			}
		}
		return nil
	}

	fit := &windowFit{
		models: make([]*regression.Model, nMetrics),
		r2s:    make([]float64, nMetrics),
	}
	m := minM
	if err := feed(total-m, total); err != nil {
		return nil, err
	}
	rounds := 0
	for {
		if err := fitter.Solve(regression.FitOptions{}); err != nil {
			return nil, fmt.Errorf("core: window %d: %w", m, err)
		}
		rounds++
		fit.refits += nMetrics
		allGood := true
		for n := 0; n < nMetrics; n++ {
			if fitter.R2(n) < e.cfg.RequiredR2 {
				allGood = false
				break
			}
		}
		if allGood {
			fit.converged = true
			break
		}
		if m >= mmax {
			break
		}
		newM := e.grow(m, mmax)
		if err := feed(total-newM, total-m); err != nil {
			return nil, err
		}
		m = newM
	}

	// Materialize owned models from the final window: the only
	// allocations of the whole search, and independent of how far the
	// window grew. All K models share one interval factor.
	factor := fitter.SharedFactor()
	for n := 0; n < nMetrics; n++ {
		fit.models[n] = fitter.Model(n, factor)
		fit.r2s[n] = fitter.R2(n)
	}
	fit.windowSize = m
	e.incrementalSteps.Add(uint64(fitter.N()))
	e.refitsAvoided.Add(uint64((rounds - 1) * nMetrics))
	return fit, nil
}
