package core

import (
	"fmt"
	"sync"
	"testing"
)

// seedHistory builds a 1-feature history with n noisy-linear
// observations, enough for the default window search to work with.
func seedHistory(t testing.TB, n int) *History {
	t.Helper()
	h, err := NewHistory(1, "time_s", "money_usd")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		x := float64(i % 17)
		noise := float64(i%5) * 0.3
		if err := h.Append(Observation{
			X:     []float64{x},
			Costs: []float64{2*x + 1 + noise, 0.5*x + noise},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

// TestConcurrentEstimateWhileAppending hammers one History from many
// estimator goroutines while a writer keeps appending — the shape of a
// live scheduler where executed plans stream observations in while a
// new round estimates thousands of QEPs. Run under -race this verifies
// the History/Estimator locking.
func TestConcurrentEstimateWhileAppending(t *testing.T) {
	h := seedHistory(t, 30)
	est, err := NewEstimator(Config{MMax: 12})
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers    = 8
		estimates  = 200
		appends    = 200
		savePasses = 20
	)
	var wg sync.WaitGroup
	errc := make(chan error, readers+2)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < appends; i++ {
			x := float64(i % 13)
			if err := h.Append(Observation{
				X:     []float64{x},
				Costs: []float64{2*x + 1, 0.5 * x},
			}); err != nil {
				errc <- err
				return
			}
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < estimates; i++ {
				e, err := est.EstimateCostValue(h, []float64{float64((r + i) % 10)})
				if err != nil {
					errc <- err
					return
				}
				if len(e.Metrics) != 2 {
					errc <- fmt.Errorf("estimate has %d metrics, want 2", len(e.Metrics))
					return
				}
			}
		}(r)
	}
	// Concurrent persistence: Save must snapshot cleanly mid-append.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < savePasses; i++ {
			if err := h.Save(discard{}); err != nil {
				errc <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestSnapshotImmutableUnderAppend verifies a snapshot is a frozen view:
// appends after the snapshot do not change what it exposes.
func TestSnapshotImmutableUnderAppend(t *testing.T) {
	h := seedHistory(t, 10)
	s := h.Snapshot()
	if s.Len() != 10 {
		t.Fatalf("snapshot Len = %d, want 10", s.Len())
	}
	v := s.Version()
	last := s.At(9)

	for i := 0; i < 50; i++ {
		if err := h.Append(Observation{X: []float64{99}, Costs: []float64{1, 1}}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 10 {
		t.Errorf("snapshot Len changed to %d after appends", s.Len())
	}
	if s.Version() != v {
		t.Errorf("snapshot version changed: %d -> %d", v, s.Version())
	}
	if got := s.At(9); got.X[0] != last.X[0] || got.Costs[0] != last.Costs[0] {
		t.Errorf("snapshot observation changed: %+v -> %+v", last, got)
	}
	if h.Len() != 60 {
		t.Errorf("history Len = %d, want 60", h.Len())
	}
	if h.Version() == v {
		t.Error("history version did not advance on append")
	}
}

// TestCachedEstimateMatchesUncached asserts the model cache is purely a
// performance optimization: every field of the estimate is identical
// with and without it.
func TestCachedEstimateMatchesUncached(t *testing.T) {
	h := seedHistory(t, 40)
	cached, err := NewEstimator(Config{MMax: 15})
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := NewEstimator(Config{MMax: 15, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		x := []float64{float64(i % 9)}
		a, err := cached.EstimateCostValue(h, x)
		if err != nil {
			t.Fatal(err)
		}
		b, err := uncached.EstimateCostValue(h, x)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := fmt.Sprintf("%+v", a.Values()), fmt.Sprintf("%+v", b.Values()); got != want {
			t.Fatalf("plan %d: cached values %s != uncached %s", i, got, want)
		}
		if a.WindowSize != b.WindowSize || a.Converged != b.Converged || a.Refits != b.Refits {
			t.Fatalf("plan %d: search stats diverge: cached {m=%d conv=%v refits=%d} uncached {m=%d conv=%v refits=%d}",
				i, a.WindowSize, a.Converged, a.Refits, b.WindowSize, b.Converged, b.Refits)
		}
		for n := range a.Metrics {
			am, bm := a.Metrics[n], b.Metrics[n]
			if am.R2 != bm.R2 || am.StdErr != bm.StdErr {
				t.Fatalf("plan %d metric %d: R2/StdErr diverge", i, n)
			}
		}
	}
}

// TestCacheReusesFitAcrossPlans is the Example 3.1 win in miniature:
// estimating many plans against one history version performs exactly
// one window search.
func TestCacheReusesFitAcrossPlans(t *testing.T) {
	h := seedHistory(t, 40)
	est, err := NewEstimator(Config{MMax: 15})
	if err != nil {
		t.Fatal(err)
	}
	const plans = 50
	for i := 0; i < plans; i++ {
		if _, err := est.EstimateCostValue(h, []float64{float64(i % 7)}); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := est.CacheStats()
	if misses != 1 {
		t.Errorf("misses = %d, want 1 (one window search per history version)", misses)
	}
	if hits != plans-1 {
		t.Errorf("hits = %d, want %d", hits, plans-1)
	}

	// A new observation invalidates the fit: next estimate re-searches.
	if err := h.Append(Observation{X: []float64{3}, Costs: []float64{7, 1.5}}); err != nil {
		t.Fatal(err)
	}
	if _, err := est.EstimateCostValue(h, []float64{2}); err != nil {
		t.Fatal(err)
	}
	_, misses = est.CacheStats()
	if misses != 2 {
		t.Errorf("misses after append = %d, want 2", misses)
	}
}

// TestCacheDisabledForUniformSample: the recency ablation redraws its
// window per call, so caching must be off regardless of CacheSize.
func TestCacheDisabledForUniformSample(t *testing.T) {
	h := seedHistory(t, 40)
	est, err := NewEstimator(Config{MMax: 15, Window: UniformSample, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := est.EstimateCostValue(h, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := est.CacheStats()
	if hits != 0 || misses != 0 {
		t.Errorf("UniformSample used the cache: hits=%d misses=%d", hits, misses)
	}
}

// TestCacheEviction keeps the cache bounded as history versions grow.
func TestCacheEviction(t *testing.T) {
	h := seedHistory(t, 40)
	est, err := NewEstimator(Config{MMax: 15, CacheSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := est.EstimateCostValue(h, []float64{1}); err != nil {
			t.Fatal(err)
		}
		if err := h.Append(Observation{X: []float64{2}, Costs: []float64{5, 1}}); err != nil {
			t.Fatal(err)
		}
	}
	_, misses := est.CacheStats()
	if misses != 10 {
		t.Errorf("misses = %d, want 10 (every append invalidates)", misses)
	}
}
