package core

import (
	"errors"
	"testing"
)

// recordingSink captures appended observations; failAfter > 0 makes the
// sink error once that many observations were recorded.
type recordingSink struct {
	obs       []Observation
	failAfter int
}

var errSinkFull = errors.New("sink full")

func (s *recordingSink) RecordObservation(o Observation) error {
	if s.failAfter > 0 && len(s.obs) >= s.failAfter {
		return errSinkFull
	}
	s.obs = append(s.obs, o)
	return nil
}

func TestHistorySinkSeesAppendsInOrder(t *testing.T) {
	h := mustHistory(t, 1, "t")
	sink := &recordingSink{}
	h.SetSink(sink)
	for i := 0; i < 5; i++ {
		if err := h.Append(Observation{X: []float64{float64(i)}, Costs: []float64{float64(i) * 2}}); err != nil {
			t.Fatal(err)
		}
	}
	if len(sink.obs) != 5 {
		t.Fatalf("sink saw %d observations, want 5", len(sink.obs))
	}
	for i, o := range sink.obs {
		if o.X[0] != float64(i) || o.Costs[0] != float64(i)*2 {
			t.Fatalf("sink observation %d out of order: %+v", i, o)
		}
	}
	// Detach: further appends bypass the sink.
	h.SetSink(nil)
	if err := h.Append(Observation{X: []float64{9}, Costs: []float64{9}}); err != nil {
		t.Fatal(err)
	}
	if len(sink.obs) != 5 {
		t.Fatalf("detached sink still saw appends: %d", len(sink.obs))
	}
}

func TestHistorySinkErrorAbortsAppend(t *testing.T) {
	h := mustHistory(t, 1, "t")
	h.SetSink(&recordingSink{failAfter: 2})
	var err error
	for i := 0; i < 3; i++ {
		err = h.Append(Observation{X: []float64{1}, Costs: []float64{1}})
	}
	if !errors.Is(err, errSinkFull) {
		t.Fatalf("append error = %v, want errSinkFull", err)
	}
	// Write-ahead: the failed append is not in memory, and the version
	// only advanced for the durable ones.
	if h.Len() != 2 {
		t.Fatalf("history len = %d after sink failure, want 2", h.Len())
	}
	if h.Version() != 2 {
		t.Fatalf("history version = %d, want 2", h.Version())
	}
	// Invalid observations are rejected before they reach the sink.
	sink := &recordingSink{}
	h.SetSink(sink)
	if err := h.Append(Observation{X: []float64{1, 2}, Costs: []float64{1}}); err == nil {
		t.Fatal("bad observation accepted")
	}
	if len(sink.obs) != 0 {
		t.Fatal("invalid observation reached the sink")
	}
}
