package core

import (
	"errors"
	"testing"
)

// recordingSink captures appended observations; failAfter > 0 makes the
// sink error once that many observations were recorded.
type recordingSink struct {
	obs       []Observation
	failAfter int
}

var errSinkFull = errors.New("sink full")

func (s *recordingSink) RecordObservation(o Observation) error {
	if s.failAfter > 0 && len(s.obs) >= s.failAfter {
		return errSinkFull
	}
	s.obs = append(s.obs, o)
	return nil
}

func TestHistorySinkSeesAppendsInOrder(t *testing.T) {
	h := mustHistory(t, 1, "t")
	sink := &recordingSink{}
	h.SetSink(sink)
	for i := 0; i < 5; i++ {
		if err := h.Append(Observation{X: []float64{float64(i)}, Costs: []float64{float64(i) * 2}}); err != nil {
			t.Fatal(err)
		}
	}
	if len(sink.obs) != 5 {
		t.Fatalf("sink saw %d observations, want 5", len(sink.obs))
	}
	for i, o := range sink.obs {
		if o.X[0] != float64(i) || o.Costs[0] != float64(i)*2 {
			t.Fatalf("sink observation %d out of order: %+v", i, o)
		}
	}
	// Detach: further appends bypass the sink.
	h.SetSink(nil)
	if err := h.Append(Observation{X: []float64{9}, Costs: []float64{9}}); err != nil {
		t.Fatal(err)
	}
	if len(sink.obs) != 5 {
		t.Fatalf("detached sink still saw appends: %d", len(sink.obs))
	}
}

// pendingSink fakes a group-commit sink: Pending stages the
// observation and hands out a ticket; Wait records which tickets were
// awaited (and can fail to model a lost fsync).
type pendingSink struct {
	hist        *History // when non-nil, WaitObservation reads it (lock-order probe)
	obs         []Observation
	tickets     uint64
	waited      []uint64
	directCalls int
	pendingErr  error
	waitErr     error
}

func (s *pendingSink) RecordObservation(o Observation) error {
	s.directCalls++
	return nil
}

func (s *pendingSink) RecordObservationPending(o Observation) (uint64, error) {
	if s.pendingErr != nil {
		return 0, s.pendingErr
	}
	s.obs = append(s.obs, o)
	tk := s.tickets
	s.tickets++
	return tk, nil
}

func (s *pendingSink) WaitObservation(ticket uint64) error {
	if s.hist != nil {
		// Reading the history from Wait deadlocks if Append still holds
		// the write lock — this enforces the documented contract that
		// WaitObservation runs after the lock is released.
		_ = s.hist.Len()
	}
	s.waited = append(s.waited, ticket)
	return s.waitErr
}

func TestHistoryPendingSinkPath(t *testing.T) {
	h := mustHistory(t, 1, "t")
	sink := &pendingSink{hist: h}
	h.SetSink(sink)
	for i := 0; i < 4; i++ {
		if err := h.Append(Observation{X: []float64{float64(i)}, Costs: []float64{float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	// The pending path was used — never the plain RecordObservation —
	// and every ticket was awaited, in issue order.
	if sink.directCalls != 0 {
		t.Fatalf("plain RecordObservation called %d times on a PendingSink", sink.directCalls)
	}
	if len(sink.obs) != 4 || len(sink.waited) != 4 {
		t.Fatalf("pending %d / waited %d, want 4 / 4", len(sink.obs), len(sink.waited))
	}
	for i, tk := range sink.waited {
		if tk != uint64(i) {
			t.Fatalf("wait %d got ticket %d", i, tk)
		}
	}
}

func TestHistoryPendingErrorAbortsAppend(t *testing.T) {
	h := mustHistory(t, 1, "t")
	sink := &pendingSink{pendingErr: errSinkFull}
	h.SetSink(sink)
	err := h.Append(Observation{X: []float64{1}, Costs: []float64{1}})
	if !errors.Is(err, errSinkFull) {
		t.Fatalf("append error = %v, want errSinkFull", err)
	}
	// Write-ahead failed, so memory must not hold the observation.
	if h.Len() != 0 || h.Version() != 0 {
		t.Fatalf("failed pending append reached memory: len %d version %d", h.Len(), h.Version())
	}
	if len(sink.waited) != 0 {
		t.Fatal("WaitObservation called for a failed pending append")
	}
}

func TestHistoryWaitErrorKeepsObservation(t *testing.T) {
	h := mustHistory(t, 1, "t")
	sink := &pendingSink{waitErr: errSinkFull}
	h.SetSink(sink)
	err := h.Append(Observation{X: []float64{1}, Costs: []float64{1}})
	if !errors.Is(err, errSinkFull) {
		t.Fatalf("append error = %v, want errSinkFull", err)
	}
	// A wait failure means "do not acknowledge durability", not "roll
	// back": the WAL frame was written before the wait, so memory must
	// match the log.
	if h.Len() != 1 || h.Version() != 1 {
		t.Fatalf("wait failure rolled back memory: len %d version %d", h.Len(), h.Version())
	}
}

func TestHistorySinkErrorAbortsAppend(t *testing.T) {
	h := mustHistory(t, 1, "t")
	h.SetSink(&recordingSink{failAfter: 2})
	var err error
	for i := 0; i < 3; i++ {
		err = h.Append(Observation{X: []float64{1}, Costs: []float64{1}})
	}
	if !errors.Is(err, errSinkFull) {
		t.Fatalf("append error = %v, want errSinkFull", err)
	}
	// Write-ahead: the failed append is not in memory, and the version
	// only advanced for the durable ones.
	if h.Len() != 2 {
		t.Fatalf("history len = %d after sink failure, want 2", h.Len())
	}
	if h.Version() != 2 {
		t.Fatalf("history version = %d, want 2", h.Version())
	}
	// Invalid observations are rejected before they reach the sink.
	sink := &recordingSink{}
	h.SetSink(sink)
	if err := h.Append(Observation{X: []float64{1, 2}, Costs: []float64{1}}); err == nil {
		t.Fatal("bad observation accepted")
	}
	if len(sink.obs) != 0 {
		t.Fatal("invalid observation reached the sink")
	}
}
