package core

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/regression"
	"repro/internal/stats"
)

// The legacy per-window batch loop (searchWindowSampled) is the
// reference implementation of Algorithm 1: for MostRecent windows it
// fits every metric from scratch at every growth step, exactly what the
// incremental shared-Gram search replaced. These tests hold the two
// equivalent — same chosen window, same convergence, same coefficients
// and R² within 1e-9, same ridge-fallback behavior — across randomized
// histories, which is what lets the hot path be fast without being a
// second source of truth.

func close9(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// compareSearches runs both search implementations on the snapshot and
// reports any divergence.
func compareSearches(t *testing.T, e *Estimator, s *Snapshot) {
	t.Helper()
	minM := regression.MinObservations(s.Dim())
	if s.Len() < minM {
		t.Fatalf("history too short: %d < %d", s.Len(), minM)
	}
	mmax := e.cfg.MMax
	if mmax == 0 || mmax > s.Len() {
		mmax = s.Len()
	}
	if mmax < minM {
		mmax = minM
	}
	inc, incErr := e.searchWindowIncremental(s, minM, mmax)
	ref, refErr := e.searchWindowSampled(s, minM, mmax)
	if (incErr == nil) != (refErr == nil) {
		t.Fatalf("search disagreement: incremental %v, reference %v", incErr, refErr)
	}
	if incErr != nil {
		return
	}
	if inc.windowSize != ref.windowSize || inc.converged != ref.converged || inc.refits != ref.refits {
		t.Fatalf("search shape diverged: incremental {m=%d conv=%v refits=%d} reference {m=%d conv=%v refits=%d}",
			inc.windowSize, inc.converged, inc.refits, ref.windowSize, ref.converged, ref.refits)
	}
	for n := range ref.models {
		if !close9(inc.r2s[n], ref.r2s[n]) {
			t.Fatalf("metric %d R²: %v (incremental) vs %v (reference)", n, inc.r2s[n], ref.r2s[n])
		}
		im, rm := inc.models[n], ref.models[n]
		if im.Ridge != rm.Ridge {
			t.Fatalf("metric %d ridge: %v (incremental) vs %v (reference)", n, im.Ridge, rm.Ridge)
		}
		if len(im.Beta) != len(rm.Beta) {
			t.Fatalf("metric %d: beta length %d vs %d", n, len(im.Beta), len(rm.Beta))
		}
		for j := range rm.Beta {
			if !close9(im.Beta[j], rm.Beta[j]) {
				t.Fatalf("metric %d β[%d]: %v (incremental) vs %v (reference)", n, j, im.Beta[j], rm.Beta[j])
			}
		}
		if !close9(im.SSE, rm.SSE) || !close9(im.SST, rm.SST) {
			t.Fatalf("metric %d SSE/SST: %v/%v vs %v/%v", n, im.SSE, im.SST, rm.SSE, rm.SST)
		}
	}
}

// TestPropertyIncrementalSearchMatchesReference randomizes history
// length, noise, metric count, MMax and the growth policy.
func TestPropertyIncrementalSearchMatchesReference(t *testing.T) {
	rng := stats.NewRNG(77)
	f := func(nRaw, mmaxRaw, noiseRaw, kRaw uint8, doubling bool) bool {
		k := int(kRaw%3) + 1
		metrics := make([]string, k)
		for i := range metrics {
			metrics[i] = fmt.Sprintf("m%d", i)
		}
		h, err := NewHistory(2, metrics...)
		if err != nil {
			return false
		}
		n := regression.MinObservations(2) + int(nRaw%60)
		noise := float64(noiseRaw%12) / 2
		for i := 0; i < n; i++ {
			x1, x2 := rng.Uniform(0, 10), rng.Uniform(0, 10)
			costs := make([]float64, k)
			for m := range costs {
				costs[m] = float64(m+1)*(1+2*x1+3*x2) + rng.Normal(0, noise)
			}
			if err := h.Append(Observation{X: []float64{x1, x2}, Costs: costs}); err != nil {
				return false
			}
		}
		growth := GrowByOne
		if doubling {
			growth = Doubling
		}
		e, err := NewEstimator(Config{
			RequiredR2: 0.9,
			MMax:       int(mmaxRaw % 50),
			Growth:     growth,
			CacheSize:  -1,
		})
		if err != nil {
			return false
		}
		compareSearches(t, e, h.Snapshot())
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestIncrementalSearchSingularWindows forces the ridge fallback: the
// newest observations are all identical, so every window up to the
// first distinct observation has a rank-1 Gram.
func TestIncrementalSearchSingularWindows(t *testing.T) {
	h := mustHistory(t, 2, "time", "money")
	rng := stats.NewRNG(5)
	for i := 0; i < 20; i++ {
		x1, x2 := rng.Uniform(0, 10), rng.Uniform(0, 10)
		if err := h.Append(Observation{X: []float64{x1, x2}, Costs: []float64{1 + x1 + x2, x1}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ { // a constant tail longer than the minimal window
		if err := h.Append(Observation{X: []float64{4, 4}, Costs: []float64{9, 4}}); err != nil {
			t.Fatal(err)
		}
	}
	e := mustEstimator(t, Config{RequiredR2: 0.95, CacheSize: -1})
	compareSearches(t, e, h.Snapshot())

	// The estimate path must survive the degenerate windows end to end.
	est, err := e.EstimateCostValue(h, []float64{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Metrics) != 2 {
		t.Fatalf("metrics = %d", len(est.Metrics))
	}
}

// TestIncrementalSearchStats pins the new observability counters: a
// grown search reports its rank-1 steps and the batch refits the
// legacy loop would have re-run.
func TestIncrementalSearchStats(t *testing.T) {
	h := mustHistory(t, 2, "time", "money")
	rng := stats.NewRNG(2)
	if err := fillLinear(h, rng, 60, 6); err != nil { // noisy: the window must grow
		t.Fatal(err)
	}
	e := mustEstimator(t, Config{RequiredR2: 0.97, MMax: 30, CacheSize: -1})
	est, err := e.EstimateCostValue(h, []float64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.IncrementalSteps != uint64(est.WindowSize) {
		t.Errorf("IncrementalSteps = %d, want the final window size %d", st.IncrementalSteps, est.WindowSize)
	}
	rounds := est.Refits / 2 // 2 metrics per round
	if want := uint64((rounds - 1) * 2); st.RefitsAvoided != want {
		t.Errorf("RefitsAvoided = %d, want %d ((rounds-1)·K)", st.RefitsAvoided, want)
	}
	if est.WindowSize <= regression.MinObservations(2) {
		t.Fatalf("window did not grow (m=%d); the counters were not exercised", est.WindowSize)
	}
}

// TestIncrementalSearchDeterministicUnderConcurrency is the
// Parallelism contract at the core layer: any number of goroutines
// hammering the same snapshot through pooled fitters must produce
// byte-identical estimates to a sequential run. (ires' scheduler-level
// determinism tests cover the same property across worker-pool sizes.)
func TestIncrementalSearchDeterministicUnderConcurrency(t *testing.T) {
	h := seedHistory(t, 60)
	e := mustEstimator(t, Config{RequiredR2: 0.95, MMax: 25, CacheSize: -1})
	s := h.Snapshot()

	render := func(est *Estimate) string {
		return fmt.Sprintf("%d|%v|%d|%+v", est.WindowSize, est.Converged, est.Refits, est.Values())
	}
	want := make([]string, 32)
	for i := range want {
		est, err := e.EstimateSnapshot(s, []float64{float64(i % 9)})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = render(est)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				for i := range want {
					est, err := e.EstimateSnapshot(s, []float64{float64(i % 9)})
					if err != nil {
						errs <- err
						return
					}
					if got := render(est); got != want[i] {
						errs <- fmt.Errorf("plan %d diverged under concurrency:\n got %s\nwant %s", i, got, want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestUniformSampleDrawsDistinctIndices pins the partial Fisher–Yates
// rewrite: a drawn window must hold m distinct observations.
func TestUniformSampleDrawsDistinctIndices(t *testing.T) {
	h := mustHistory(t, 1, "time")
	for i := 0; i < 40; i++ {
		// Unique x per index makes duplicates detectable from values.
		if err := h.Append(Observation{X: []float64{float64(i)}, Costs: []float64{float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	e := mustEstimator(t, Config{Window: UniformSample, Seed: 3})
	s := h.Snapshot()
	for _, m := range []int{3, 10, 40} {
		for trial := 0; trial < 20; trial++ {
			w := e.window(s, m)
			if len(w) != m {
				t.Fatalf("window size %d, want %d", len(w), m)
			}
			seen := make(map[float64]bool, m)
			for _, o := range w {
				if seen[o.X[0]] {
					t.Fatalf("m=%d trial %d: duplicate observation %v in window", m, trial, o.X[0])
				}
				seen[o.X[0]] = true
			}
		}
	}
}
