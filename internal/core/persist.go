package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// History persistence: a versioned JSON snapshot of the whole log.
//
// This format is now owned by internal/histstore, which layers an
// append-only WAL on top of it: a histstore shard's snapshot.json is
// exactly the document Save writes, and recovery is snapshot + WAL
// suffix. The whole-file round trip below is kept for two reasons:
//
//   - as the snapshot encoder/decoder histstore itself uses
//     (SaveSnapshot / LoadHistory), and
//   - as the ONE-WAY IMPORT PATH for legacy saves: a file written by
//     History.Save can be dropped in as (or imported via
//     histstore.Store.ImportLegacy into) a shard snapshot, after which
//     the shard's WAL takes over and the file is only ever rewritten
//     by checkpoints.
//
// Deprecated as a storage strategy: calling Save/LoadHistory directly
// gives you a point-in-time file with no durability for later appends
// and no crash story. New code should open histories through a
// histstore.Store (see internal/histstore and ires.SchedulerConfig.
// Store) and let checkpoints manage the snapshot.

// persistVersion is bumped on incompatible format changes.
const persistVersion = 1

// ErrBadSnapshot is returned when a snapshot fails validation.
var ErrBadSnapshot = errors.New("core: invalid history snapshot")

type historySnapshot struct {
	Version      int           `json:"version"`
	Dim          int           `json:"dim"`
	Metrics      []string      `json:"metrics"`
	Observations []obsSnapshot `json:"observations"`
}

type obsSnapshot struct {
	X     []float64 `json:"x"`
	Costs []float64 `json:"costs"`
}

// Save writes the history as versioned JSON. The write captures a
// point-in-time snapshot, so it is safe while other goroutines append.
//
// Deprecated: prefer a histstore.Store, which keeps this document as
// its compacting snapshot and adds a WAL for the appends in between.
// Save remains supported as the legacy export (and histstore import)
// format.
func (h *History) Save(w io.Writer) error {
	return SaveSnapshot(h.Snapshot(), w)
}

// SaveSnapshot writes a point-in-time history snapshot as versioned
// JSON — the same document History.Save produces, usable from an
// already-captured snapshot so durable checkpoints need not re-lock
// the live history.
func SaveSnapshot(s *Snapshot, w io.Writer) error {
	snap := historySnapshot{
		Version:      persistVersion,
		Dim:          s.Dim(),
		Metrics:      s.Metrics(),
		Observations: make([]obsSnapshot, s.Len()),
	}
	for i := range snap.Observations {
		o := s.At(i)
		snap.Observations[i] = obsSnapshot{X: o.X, Costs: o.Costs}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("core: saving history: %w", err)
	}
	return nil
}

// LoadHistory reads a history previously written by Save (or a
// histstore snapshot — same format), validating every observation
// against the declared dimensions.
func LoadHistory(r io.Reader) (*History, error) {
	var snap historySnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: loading history: %w", err)
	}
	if snap.Version != persistVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrBadSnapshot, snap.Version, persistVersion)
	}
	h, err := NewHistory(snap.Dim, snap.Metrics...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	for i, o := range snap.Observations {
		if err := h.Append(Observation{X: o.X, Costs: o.Costs}); err != nil {
			return nil, fmt.Errorf("%w: observation %d: %v", ErrBadSnapshot, i, err)
		}
	}
	return h, nil
}
