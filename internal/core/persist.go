package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// History persistence: MIDAS accumulates execution history across
// scheduler restarts, so the log must round-trip through storage. The
// format is a single versioned JSON document — small enough at
// realistic history sizes (DREAM itself only ever reads a near-N
// window) and diff-friendly for operations.

// persistVersion is bumped on incompatible format changes.
const persistVersion = 1

// ErrBadSnapshot is returned when a snapshot fails validation.
var ErrBadSnapshot = errors.New("core: invalid history snapshot")

type historySnapshot struct {
	Version      int           `json:"version"`
	Dim          int           `json:"dim"`
	Metrics      []string      `json:"metrics"`
	Observations []obsSnapshot `json:"observations"`
}

type obsSnapshot struct {
	X     []float64 `json:"x"`
	Costs []float64 `json:"costs"`
}

// Save writes the history as versioned JSON. The write captures a
// point-in-time snapshot, so it is safe while other goroutines append.
func (h *History) Save(w io.Writer) error {
	s := h.Snapshot()
	snap := historySnapshot{
		Version:      persistVersion,
		Dim:          h.dim,
		Metrics:      h.Metrics(),
		Observations: make([]obsSnapshot, s.Len()),
	}
	for i := range snap.Observations {
		o := s.At(i)
		snap.Observations[i] = obsSnapshot{X: o.X, Costs: o.Costs}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("core: saving history: %w", err)
	}
	return nil
}

// LoadHistory reads a history previously written by Save, validating
// every observation against the declared dimensions.
func LoadHistory(r io.Reader) (*History, error) {
	var snap historySnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: loading history: %w", err)
	}
	if snap.Version != persistVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrBadSnapshot, snap.Version, persistVersion)
	}
	h, err := NewHistory(snap.Dim, snap.Metrics...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	for i, o := range snap.Observations {
		if err := h.Append(Observation{X: o.X, Costs: o.Costs}); err != nil {
			return nil, fmt.Errorf("%w: observation %d: %v", ErrBadSnapshot, i, err)
		}
	}
	return h, nil
}
