package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/regression"
	"repro/internal/stats"
)

func mustHistory(t *testing.T, dim int, metrics ...string) *History {
	t.Helper()
	h, err := NewHistory(dim, metrics...)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func mustEstimator(t *testing.T, cfg Config) *Estimator {
	t.Helper()
	e, err := NewEstimator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// fillLinear appends n observations from a clean two-metric linear
// model: time = 1 + 2x₁ + 3x₂, money = 0.5 + x₁ + 0.1x₂ (+ optional noise).
func fillLinear(h *History, rng *stats.RNG, n int, noise float64) error {
	for i := 0; i < n; i++ {
		x1, x2 := rng.Uniform(0, 10), rng.Uniform(0, 10)
		timeC := 1 + 2*x1 + 3*x2
		moneyC := 0.5 + x1 + 0.1*x2
		if noise > 0 {
			timeC += rng.Normal(0, noise)
			moneyC += rng.Normal(0, noise)
		}
		if err := h.Append(Observation{X: []float64{x1, x2}, Costs: []float64{timeC, moneyC}}); err != nil {
			return err
		}
	}
	return nil
}

func TestNewHistoryValidation(t *testing.T) {
	if _, err := NewHistory(2); !errors.Is(err, ErrNoMetrics) {
		t.Errorf("no metrics: got %v, want ErrNoMetrics", err)
	}
	if _, err := NewHistory(0, "time"); err == nil {
		t.Error("zero dim accepted")
	}
	h := mustHistory(t, 2, "time", "money")
	if got := h.Metrics(); len(got) != 2 || got[0] != "time" {
		t.Errorf("Metrics = %v", got)
	}
	if h.Dim() != 2 {
		t.Errorf("Dim = %d", h.Dim())
	}
}

func TestHistoryAppendValidation(t *testing.T) {
	h := mustHistory(t, 2, "time")
	if err := h.Append(Observation{X: []float64{1}, Costs: []float64{1}}); err == nil {
		t.Error("short feature vector accepted")
	}
	if err := h.Append(Observation{X: []float64{1, 2}, Costs: []float64{1, 2}}); !errors.Is(err, ErrMetricCount) {
		t.Errorf("got %v, want ErrMetricCount", err)
	}
	if err := h.Append(Observation{X: []float64{1, 2}, Costs: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if h.Len() != 1 {
		t.Errorf("Len = %d, want 1", h.Len())
	}
}

func TestHistoryCopiesInputs(t *testing.T) {
	h := mustHistory(t, 1, "time")
	x := []float64{1}
	c := []float64{2}
	if err := h.Append(Observation{X: x, Costs: c}); err != nil {
		t.Fatal(err)
	}
	x[0], c[0] = 99, 99
	if h.At(0).X[0] != 1 || h.At(0).Costs[0] != 2 {
		t.Error("History aliases caller slices")
	}
}

func TestNewEstimatorValidation(t *testing.T) {
	if _, err := NewEstimator(Config{RequiredR2: 1.5}); err == nil {
		t.Error("RequiredR2 > 1 accepted")
	}
	if _, err := NewEstimator(Config{RequiredR2: -0.1}); err == nil {
		t.Error("negative RequiredR2 accepted")
	}
	if _, err := NewEstimator(Config{MMax: -1}); err == nil {
		t.Error("negative MMax accepted")
	}
	e := mustEstimator(t, Config{})
	if e.cfg.RequiredR2 != DefaultRequiredR2 {
		t.Errorf("default RequiredR2 = %v, want %v", e.cfg.RequiredR2, DefaultRequiredR2)
	}
}

func TestEstimateNeedsHistory(t *testing.T) {
	h := mustHistory(t, 2, "time")
	e := mustEstimator(t, Config{})
	if _, err := e.EstimateCostValue(h, []float64{1, 2}); !errors.Is(err, ErrInsufficientHistory) {
		t.Fatalf("got %v, want ErrInsufficientHistory", err)
	}
}

func TestEstimateFeatureDimension(t *testing.T) {
	h := mustHistory(t, 2, "time")
	e := mustEstimator(t, Config{})
	if _, err := e.EstimateCostValue(h, []float64{1}); err == nil {
		t.Error("wrong feature dimension accepted")
	}
}

func TestEstimateConvergesAtMinimumWindowOnCleanData(t *testing.T) {
	h := mustHistory(t, 2, "time", "money")
	rng := stats.NewRNG(1)
	if err := fillLinear(h, rng, 50, 0); err != nil {
		t.Fatal(err)
	}
	e := mustEstimator(t, Config{})
	est, err := e.EstimateCostValue(h, []float64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !est.Converged {
		t.Error("clean linear data should converge")
	}
	// On noise-free data the minimal window m = L+2 = 4 already has R² = 1.
	if est.WindowSize != regression.MinObservations(2) {
		t.Errorf("WindowSize = %d, want %d", est.WindowSize, regression.MinObservations(2))
	}
	wantTime := 1.0 + 2*5 + 3*5
	wantMoney := 0.5 + 5 + 0.1*5
	vals := est.Values()
	if math.Abs(vals[0]-wantTime) > 1e-6 {
		t.Errorf("time estimate = %v, want %v", vals[0], wantTime)
	}
	if math.Abs(vals[1]-wantMoney) > 1e-6 {
		t.Errorf("money estimate = %v, want %v", vals[1], wantMoney)
	}
	if est.Metrics[0].Metric != "time" || est.Metrics[1].Metric != "money" {
		t.Errorf("metric order wrong: %+v", est.Metrics)
	}
	for _, m := range est.Metrics {
		if m.R2 < DefaultRequiredR2 {
			t.Errorf("metric %s converged with R² %v < threshold", m.Metric, m.R2)
		}
	}
}

func TestEstimateGrowsWindowUnderNoise(t *testing.T) {
	h := mustHistory(t, 2, "time", "money")
	rng := stats.NewRNG(2)
	if err := fillLinear(h, rng, 200, 6); err != nil { // strong noise
		t.Fatal(err)
	}
	e := mustEstimator(t, Config{RequiredR2: 0.9})
	est, err := e.EstimateCostValue(h, []float64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if est.WindowSize <= regression.MinObservations(2) && est.Converged {
		t.Errorf("noisy data converged at minimal window %d — growth never exercised", est.WindowSize)
	}
	if est.WindowSize > h.Len() {
		t.Errorf("window %d exceeds history %d", est.WindowSize, h.Len())
	}
	if est.Refits < 2 {
		t.Errorf("Refits = %d, expected multiple fits under noise", est.Refits)
	}
}

func TestEstimateRespectsMMax(t *testing.T) {
	h := mustHistory(t, 2, "time")
	rng := stats.NewRNG(3)
	// Pure noise: R² will not reach 0.99, so the window must stop at MMax.
	for i := 0; i < 100; i++ {
		if err := h.Append(Observation{
			X:     []float64{rng.Uniform(0, 10), rng.Uniform(0, 10)},
			Costs: []float64{rng.Uniform(0, 100)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	e := mustEstimator(t, Config{RequiredR2: 0.99, MMax: 10})
	est, err := e.EstimateCostValue(h, []float64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if est.WindowSize > 10 {
		t.Errorf("window %d exceeds MMax 10", est.WindowSize)
	}
	if est.Converged {
		t.Error("pure noise reported convergence at R² ≥ 0.99")
	}
}

func TestEstimateUsesMostRecentData(t *testing.T) {
	// Regime change: old observations follow cost = x, recent ones
	// follow cost = 10x. DREAM on MostRecent must track the new regime.
	h := mustHistory(t, 1, "time")
	rng := stats.NewRNG(4)
	for i := 0; i < 50; i++ {
		x := rng.Uniform(1, 10)
		if err := h.Append(Observation{X: []float64{x}, Costs: []float64{x}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		x := rng.Uniform(1, 10)
		if err := h.Append(Observation{X: []float64{x}, Costs: []float64{10 * x}}); err != nil {
			t.Fatal(err)
		}
	}
	e := mustEstimator(t, Config{})
	est, err := e.EstimateCostValue(h, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	got := est.Values()[0]
	if math.Abs(got-50) > 5 {
		t.Errorf("estimate after regime change = %v, want ≈50 (new regime)", got)
	}
}

func TestDoublingGrowth(t *testing.T) {
	h := mustHistory(t, 1, "time")
	rng := stats.NewRNG(5)
	for i := 0; i < 64; i++ {
		x := rng.Uniform(1, 10)
		if err := h.Append(Observation{X: []float64{x}, Costs: []float64{rng.Uniform(0, 100)}}); err != nil {
			t.Fatal(err)
		}
	}
	one := mustEstimator(t, Config{RequiredR2: 0.999, Growth: GrowByOne})
	dbl := mustEstimator(t, Config{RequiredR2: 0.999, Growth: Doubling})
	estOne, err := one.EstimateCostValue(h, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	estDbl, err := dbl.EstimateCostValue(h, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if estDbl.Refits >= estOne.Refits {
		t.Errorf("doubling refits (%d) not fewer than grow-by-one (%d)", estDbl.Refits, estOne.Refits)
	}
}

func TestUniformSampleWindow(t *testing.T) {
	h := mustHistory(t, 1, "time")
	rng := stats.NewRNG(6)
	for i := 0; i < 30; i++ {
		x := rng.Uniform(1, 10)
		if err := h.Append(Observation{X: []float64{x}, Costs: []float64{2 * x}}); err != nil {
			t.Fatal(err)
		}
	}
	e := mustEstimator(t, Config{Window: UniformSample, Seed: 7})
	est, err := e.EstimateCostValue(h, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Values()[0]-10) > 1e-6 {
		t.Errorf("uniform-sample estimate = %v, want 10", est.Values()[0])
	}
}

func TestTrainingWindow(t *testing.T) {
	h := mustHistory(t, 2, "time", "money")
	rng := stats.NewRNG(8)
	if err := fillLinear(h, rng, 30, 0); err != nil {
		t.Fatal(err)
	}
	e := mustEstimator(t, Config{})
	win, err := e.TrainingWindow(h, []float64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(win) != regression.MinObservations(2) {
		t.Errorf("training window size = %d, want %d", len(win), regression.MinObservations(2))
	}
	// Must be the most recent observations.
	last := h.At(h.Len() - 1)
	got := win[len(win)-1]
	if got.X[0] != last.X[0] || got.Costs[0] != last.Costs[0] {
		t.Error("training window is not the most recent slice of history")
	}
}

func TestEstimateValuesOrder(t *testing.T) {
	h := mustHistory(t, 1, "a", "b", "c")
	rng := stats.NewRNG(9)
	for i := 0; i < 10; i++ {
		x := rng.Uniform(1, 10)
		if err := h.Append(Observation{X: []float64{x}, Costs: []float64{x, 2 * x, 3 * x}}); err != nil {
			t.Fatal(err)
		}
	}
	e := mustEstimator(t, Config{})
	est, err := e.EstimateCostValue(h, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	v := est.Values()
	if math.Abs(v[0]-2) > 1e-6 || math.Abs(v[1]-4) > 1e-6 || math.Abs(v[2]-6) > 1e-6 {
		t.Errorf("Values = %v, want [2 4 6]", v)
	}
}

// Property: the converged window is always within [L+2, max(MMax, L+2)]
// and never exceeds the history length.
func TestPropertyWindowBounds(t *testing.T) {
	rng := stats.NewRNG(10)
	f := func(nRaw, mmaxRaw uint8, noisy bool) bool {
		n := int(nRaw%60) + 4
		mmax := int(mmaxRaw % 40)
		h, err := NewHistory(1, "time")
		if err != nil {
			return false
		}
		noise := 0.0
		if noisy {
			noise = 5
		}
		for i := 0; i < n; i++ {
			x := rng.Uniform(1, 10)
			if err := h.Append(Observation{X: []float64{x}, Costs: []float64{3*x + rng.Normal(0, noise)}}); err != nil {
				return false
			}
		}
		e, err := NewEstimator(Config{MMax: mmax})
		if err != nil {
			return false
		}
		est, err := e.EstimateCostValue(h, []float64{5})
		if err != nil {
			return false
		}
		minM := regression.MinObservations(1)
		if est.WindowSize < minM || est.WindowSize > h.Len() {
			return false
		}
		if mmax >= minM && est.WindowSize > mmax && mmax <= h.Len() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: on noise-free linear histories DREAM's estimate equals the
// true model output regardless of history length.
func TestPropertyExactOnLinearData(t *testing.T) {
	rng := stats.NewRNG(11)
	f := func(nRaw uint8, b0f, b1f float64) bool {
		if math.IsNaN(b0f) || math.IsNaN(b1f) {
			return true
		}
		b0 := math.Mod(b0f, 100)
		b1 := math.Mod(b1f, 100)
		n := int(nRaw%40) + 3
		h, err := NewHistory(1, "time")
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			x := rng.Uniform(1, 10)
			if err := h.Append(Observation{X: []float64{x}, Costs: []float64{b0 + b1*x}}); err != nil {
				return false
			}
		}
		e, err := NewEstimator(Config{})
		if err != nil {
			return false
		}
		est, err := e.EstimateCostValue(h, []float64{4})
		if err != nil {
			return false
		}
		want := b0 + b1*4
		tol := 1e-5 * (1 + math.Abs(want))
		return math.Abs(est.Values()[0]-want) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestEstimateCarriesStdErr(t *testing.T) {
	h := mustHistory(t, 1, "time")
	rng := stats.NewRNG(31)
	for i := 0; i < 40; i++ {
		x := rng.Uniform(1, 10)
		if err := h.Append(Observation{X: []float64{x}, Costs: []float64{5 + 2*x + rng.Normal(0, 1)}}); err != nil {
			t.Fatal(err)
		}
	}
	e := mustEstimator(t, Config{RequiredR2: 0.95, MMax: 30})
	est, err := e.EstimateCostValue(h, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	se := est.Metrics[0].StdErr
	if math.IsNaN(se) || se < 0 {
		t.Fatalf("StdErr = %v", se)
	}
	// With real residual noise and a grown window the error bar should
	// be informative (neither zero nor absurd).
	if est.WindowSize > regression.MinObservations(1)+1 && (se < 0.3 || se > 5) {
		t.Errorf("StdErr = %v at window %d, want ≈1", se, est.WindowSize)
	}
}
