package stats

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with the distributions the simulators need. Every
// stochastic component in the reproduction draws from an explicitly
// seeded RNG so experiments are reproducible run to run.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform variate in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Uniform returns a uniform variate in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Normal returns a normal variate with the given mean and standard
// deviation — the ϵ ~ N(0, σ²) error term of the paper's MLR model
// (eq. 5) and the basis of the cloud-noise processes.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// LogNormal returns exp(N(mu, sigma²)); used for heavy-tailed latency
// spikes in the engine simulators.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// Intn returns a uniform integer in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer; used to
// derive independent child seeds.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool { return g.r.Float64() < p }

// Exponential returns an exponential variate with the given mean.
func (g *RNG) Exponential(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}
