package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m != 2.5 {
		t.Errorf("Mean = %v, want 2.5", m)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty mean: got %v, want ErrEmpty", err)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	v, err := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", v)
	}
	sd, err := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sd, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", sd)
	}
}

func TestSSEAndSST(t *testing.T) {
	sse, err := SSE([]float64{1, 2, 3}, []float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sse != 1 {
		t.Errorf("SSE = %v, want 1", sse)
	}
	sst, err := SST([]float64{1, 2, 3}) // mean 2 → 1+0+1
	if err != nil {
		t.Fatal(err)
	}
	if sst != 2 {
		t.Errorf("SST = %v, want 2", sst)
	}
	if _, err := SSE([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLength) {
		t.Errorf("length mismatch: got %v, want ErrLength", err)
	}
}

func TestRSquared(t *testing.T) {
	// Perfect fit.
	r2, err := RSquared([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r2 != 1 {
		t.Errorf("perfect fit R² = %v, want 1", r2)
	}
	// Fit equal to the mean gives R² = 0.
	r2, err = RSquared([]float64{1, 2, 3}, []float64{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r2, 0, 1e-12) {
		t.Errorf("mean fit R² = %v, want 0", r2)
	}
	// Constant responses.
	r2, err = RSquared([]float64{5, 5}, []float64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if r2 != 1 {
		t.Errorf("exact constant fit R² = %v, want 1", r2)
	}
	r2, err = RSquared([]float64{5, 5}, []float64{4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if r2 != 0 {
		t.Errorf("inexact constant fit R² = %v, want 0", r2)
	}
}

func TestMRE(t *testing.T) {
	// |1.1-1|/1 + |1.8-2|/2 = 0.1 + 0.1 → mean 0.1
	mre, err := MRE([]float64{1, 2}, []float64{1.1, 1.8})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mre, 0.1, 1e-12) {
		t.Errorf("MRE = %v, want 0.1", mre)
	}
	// Zero actuals are skipped.
	mre, err = MRE([]float64{0, 2}, []float64{5, 2.2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mre, 0.1, 1e-12) {
		t.Errorf("MRE with zero actual = %v, want 0.1", mre)
	}
	if _, err := MRE([]float64{0}, []float64{1}); !errors.Is(err, ErrEmpty) {
		t.Errorf("all-zero actuals: got %v, want ErrEmpty", err)
	}
}

func TestMAEAndRMSE(t *testing.T) {
	mae, err := MAE([]float64{1, 2}, []float64{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mae, 1.5, 1e-12) {
		t.Errorf("MAE = %v, want 1.5", mae)
	}
	rmse, err := RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(rmse, math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMSE = %v, want sqrt(12.5)", rmse)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	for _, tc := range []struct {
		q, want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	} {
		got, err := Quantile(xs, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty quantile: got %v, want ErrEmpty", err)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("out-of-range q accepted")
	}
	one, err := Quantile([]float64{7}, 0.3)
	if err != nil || one != 7 {
		t.Errorf("singleton quantile = %v, %v", one, err)
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	bm, _ := Mean(xs)
	bv, _ := Variance(xs)
	if o.N() != len(xs) {
		t.Errorf("N = %d, want %d", o.N(), len(xs))
	}
	if !almostEqual(o.Mean(), bm, 1e-10) {
		t.Errorf("online mean %v != batch %v", o.Mean(), bm)
	}
	if !almostEqual(o.Variance(), bv, 1e-10) {
		t.Errorf("online variance %v != batch %v", o.Variance(), bv)
	}
	if !almostEqual(o.StdDev(), math.Sqrt(bv), 1e-10) {
		t.Errorf("online stddev %v != sqrt(batch) %v", o.StdDev(), math.Sqrt(bv))
	}
}

func TestOnlineSmall(t *testing.T) {
	var o Online
	if o.Variance() != 0 || o.Mean() != 0 {
		t.Error("zero-value Online not zeroed")
	}
	o.Add(5)
	if o.Variance() != 0 {
		t.Error("variance of one observation should be 0")
	}
}

func TestPropertyR2AtMostOne(t *testing.T) {
	f := func(actual, fitted []float64) bool {
		if len(actual) != len(fitted) || len(actual) == 0 {
			return true
		}
		// Bound magnitudes so SSE/SST stay finite; overflow to ±Inf
		// makes R² meaningless, which is not the property under test.
		for _, v := range append(append([]float64{}, actual...), fitted...) {
			if math.IsNaN(v) || math.Abs(v) > 1e150 {
				return true
			}
		}
		r2, err := RSquared(actual, fitted)
		if err != nil {
			return true
		}
		return r2 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyOnlineMatchesBatch(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, v := range xs {
			if math.IsNaN(v) || math.Abs(v) > 1e6 {
				return true
			}
		}
		var o Online
		for _, x := range xs {
			o.Add(x)
		}
		bm, _ := Mean(xs)
		bv, _ := Variance(xs)
		scale := 1.0
		if bv > 1 {
			scale = bv
		}
		return almostEqual(o.Mean(), bm, 1e-6) && almostEqual(o.Variance(), bv, 1e-6*scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(100)
	same := true
	for i := 0; i < 10; i++ {
		if NewRNG(99).Normal(0, 1) != c.Normal(0, 1) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGDistributions(t *testing.T) {
	g := NewRNG(7)
	var o Online
	for i := 0; i < 20000; i++ {
		o.Add(g.Normal(10, 2))
	}
	if !almostEqual(o.Mean(), 10, 0.1) {
		t.Errorf("normal mean = %v, want ≈10", o.Mean())
	}
	if !almostEqual(o.StdDev(), 2, 0.1) {
		t.Errorf("normal stddev = %v, want ≈2", o.StdDev())
	}
	for i := 0; i < 1000; i++ {
		u := g.Uniform(3, 5)
		if u < 3 || u >= 5 {
			t.Fatalf("Uniform(3,5) out of range: %v", u)
		}
		if g.LogNormal(0, 0.5) <= 0 {
			t.Fatal("LogNormal produced non-positive value")
		}
		if e := g.Exponential(2); e < 0 {
			t.Fatalf("Exponential produced negative value: %v", e)
		}
	}
	var heads int
	for i := 0; i < 10000; i++ {
		if g.Bernoulli(0.3) {
			heads++
		}
	}
	if heads < 2700 || heads > 3300 {
		t.Errorf("Bernoulli(0.3) heads = %d / 10000", heads)
	}
	p := g.Perm(10)
	seen := make(map[int]bool, 10)
	for _, v := range p {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Perm(10) is not a permutation: %v", p)
	}
}
