// Package stats provides the statistical primitives shared across the
// reproduction: goodness-of-fit measures (SSE, SST, R²), the error
// metrics the paper evaluates with (Mean Relative Error, eq. 15), online
// moment accumulation, and deterministic random-variate helpers used by
// the cloud-variance and workload simulators.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by aggregate functions invoked on no data.
var ErrEmpty = errors.New("stats: empty input")

// ErrLength is returned when paired slices have different lengths.
var ErrLength = errors.New("stats: mismatched input lengths")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Variance returns the population variance of xs.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// SSE returns the sum of squared errors Σ(actual−fitted)² (paper eq. 11).
func SSE(actual, fitted []float64) (float64, error) {
	if len(actual) != len(fitted) {
		return 0, ErrLength
	}
	if len(actual) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for i := range actual {
		d := actual[i] - fitted[i]
		s += d * d
	}
	return s, nil
}

// SST returns the total sum of squares Σ(actual−mean)².
func SST(actual []float64) (float64, error) {
	m, err := Mean(actual)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, a := range actual {
		d := a - m
		s += d * d
	}
	return s, nil
}

// RSquared returns the coefficient of determination R² = 1 − SSE/SST
// (paper eq. 14). When the responses are constant (SST == 0), R² is 1
// if the fit is exact and 0 otherwise, matching the convention that a
// constant response carries no variance to explain.
func RSquared(actual, fitted []float64) (float64, error) {
	sse, err := SSE(actual, fitted)
	if err != nil {
		return 0, err
	}
	sst, err := SST(actual)
	if err != nil {
		return 0, err
	}
	if sst == 0 {
		if sse == 0 {
			return 1, nil
		}
		return 0, nil
	}
	return 1 - sse/sst, nil
}

// MRE returns the Mean Relative Error (1/M)·Σ|ĉᵢ−cᵢ|/cᵢ the paper uses
// to compare DREAM against the IReS models (eq. 15). Observations with
// cᵢ == 0 are skipped to avoid division by zero; if every observation
// is skipped the result is ErrEmpty.
func MRE(actual, predicted []float64) (float64, error) {
	if len(actual) != len(predicted) {
		return 0, ErrLength
	}
	var s float64
	n := 0
	for i := range actual {
		if actual[i] == 0 {
			continue
		}
		s += math.Abs(predicted[i]-actual[i]) / math.Abs(actual[i])
		n++
	}
	if n == 0 {
		return 0, ErrEmpty
	}
	return s / float64(n), nil
}

// MAE returns the mean absolute error.
func MAE(actual, predicted []float64) (float64, error) {
	if len(actual) != len(predicted) {
		return 0, ErrLength
	}
	if len(actual) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for i := range actual {
		s += math.Abs(predicted[i] - actual[i])
	}
	return s / float64(len(actual)), nil
}

// RMSE returns the root mean squared error.
func RMSE(actual, predicted []float64) (float64, error) {
	sse, err := SSE(actual, predicted)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(sse / float64(len(actual))), nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) (float64, error) {
	out, err := Quantiles(xs, q)
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// Quantiles returns several q-quantiles of xs with a single sort — the
// shape a latency report wants (p50/p90/p99 from one sample).
func Quantiles(xs []float64, qs ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	for _, q := range qs {
		if q < 0 || q > 1 {
			return nil, errors.New("stats: quantile out of [0,1]")
		}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out, nil
}

// quantileSorted interpolates the q-quantile of an already-sorted
// sample.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Online accumulates count, mean and variance incrementally using
// Welford's algorithm. The zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 when empty).
func (o *Online) Mean() float64 { return o.mean }

// SumSquaredDeviations returns Welford's running Σ(x−mean)² — the SST
// of the observations folded in so far, available without a second
// pass. (Variance() is this divided by n.)
func (o *Online) SumSquaredDeviations() float64 { return o.m2 }

// Reset returns the accumulator to its zero state so scratch
// accumulators can be recycled without reallocation.
func (o *Online) Reset() { *o = Online{} }

// Variance returns the running population variance (0 when n < 2).
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// StdDev returns the running population standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }
