package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // dropped: counters are monotone
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	if again := r.Counter("test_ops_total", "ops"); again != c {
		t.Fatalf("re-registration returned a different counter")
	}

	g := r.Gauge("test_depth", "depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
}

func TestVecSeriesIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_req_total", "requests", "federation", "query")
	a := v.With("main", "Q12")
	b := v.With("main", "Q13")
	if a == b {
		t.Fatalf("distinct label values shared a counter")
	}
	if v.With("main", "Q12") != a {
		t.Fatalf("same label values produced a new counter")
	}
	a.Inc()
	if b.Value() != 0 {
		t.Fatalf("increment leaked across series")
	}
}

func TestRegistrationConflictsPanic(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_x_total", "x")
	for name, f := range map[string]func(){
		"kind":   func() { r.Gauge("test_x_total", "x") },
		"help":   func() { r.Counter("test_x_total", "different") },
		"labels": func() { r.CounterVec("test_x_total", "x", "l") },
		"name":   func() { r.Counter("bad name", "x") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s conflict did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_lat_seconds", "latency", []float64{0.1, 0.2, 0.5, 1})
	// 100 observations spread uniformly over (0, 1): quantile estimates
	// should land near the true values at bucket-interpolation accuracy.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if math.Abs(h.Sum()-50.5) > 1e-9 {
		t.Fatalf("sum = %v, want 50.5", h.Sum())
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.50, 0.50, 0.02},
		{0.90, 0.90, 0.02},
		{0.99, 0.99, 0.02},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%v) = %v, want %v ± %v", tc.q, got, tc.want, tc.tol)
		}
	}
	// Above every finite bucket: the estimate clamps to the top bound.
	h.Observe(100)
	if got := h.Quantile(1); got != 1 {
		t.Errorf("Quantile(1) with +Inf observation = %v, want 1", got)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_empty_seconds", "empty", nil)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
}

func TestRenderParsesAndHistogramMonotone(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_a_total", "a").Add(3)
	r.GaugeVec("test_b", "b", "who").With(`we "quote" back\slash`).Set(-1.5)
	h := r.HistogramVec("test_c_seconds", "c", []float64{0.1, 1}, "query")
	h.With("Q12").Observe(0.05)
	h.With("Q12").Observe(0.5)
	h.With("Q12").Observe(5)
	r.GaugeFunc("test_d", "d", func() float64 { return 42 }, "kind", "func")
	r.CounterFunc("test_e_total", "e", func() float64 { return 7 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	sc, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("scrape does not parse: %v\n%s", err, text)
	}
	if sc.Types["test_a_total"] != KindCounter || sc.Types["test_c_seconds"] != KindHistogram {
		t.Fatalf("TYPE lines wrong: %v", sc.Types)
	}
	if got := sc.Values["test_a_total"]; got != 3 {
		t.Errorf("test_a_total = %v, want 3", got)
	}
	if got := sc.Values[`test_b{who="we \"quote\" back\\slash"}`]; got != -1.5 {
		t.Errorf("escaped gauge = %v, want -1.5 (values: %v)", got, sc.Values)
	}
	if got := sc.Values[`test_d{kind="func"}`]; got != 42 {
		t.Errorf("gauge func = %v, want 42", got)
	}
	if got := sc.Values["test_e_total"]; got != 7 {
		t.Errorf("counter func = %v, want 7", got)
	}
	// Histogram grammar: cumulative buckets are monotone and the +Inf
	// bucket equals _count.
	b1 := sc.Values[`test_c_seconds_bucket{query="Q12",le="0.1"}`]
	b2 := sc.Values[`test_c_seconds_bucket{query="Q12",le="1"}`]
	bInf := sc.Values[`test_c_seconds_bucket{query="Q12",le="+Inf"}`]
	count := sc.Values[`test_c_seconds_count{query="Q12"}`]
	if !(b1 <= b2 && b2 <= bInf) {
		t.Errorf("buckets not monotone: %v %v %v", b1, b2, bInf)
	}
	if b1 != 1 || b2 != 2 || bInf != 3 || count != 3 {
		t.Errorf("bucket counts = %v %v %v count %v, want 1 2 3 3", b1, b2, bInf, count)
	}
	if got := sc.Values[`test_c_seconds_sum{query="Q12"}`]; math.Abs(got-5.55) > 1e-9 {
		t.Errorf("sum = %v, want 5.55", got)
	}
	// Idle registry ⇒ byte-identical scrapes.
	var b2nd strings.Builder
	if err := r.WritePrometheus(&b2nd); err != nil {
		t.Fatal(err)
	}
	if b2nd.String() != text {
		t.Errorf("consecutive idle scrapes differ")
	}
}

func TestConcurrentObservationsUnderRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_race_total", "race")
	g := r.Gauge("test_race_gauge", "race")
	h := r.Histogram("test_race_seconds", "race", []float64{0.5})
	vec := r.CounterVec("test_race_vec_total", "race", "worker")

	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := vec.With("w") // all workers share one series
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%2) * 0.9)
				mine.Inc()
			}
		}(w)
		// A scraper races the writers; values must stay parseable.
		wg.Add(1)
		go func() {
			defer wg.Done()
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
			if _, err := ParseText(strings.NewReader(b.String())); err != nil {
				t.Errorf("mid-load scrape does not parse: %v", err)
			}
		}()
	}
	wg.Wait()
	want := float64(workers * perWorker)
	if c.Value() != want || g.Value() != want || vec.With("w").Value() != want {
		t.Fatalf("lost updates: counter %v gauge %v vec %v, want %v",
			c.Value(), g.Value(), vec.With("w").Value(), want)
	}
	if h.Count() != uint64(want) {
		t.Fatalf("histogram lost observations: %d, want %v", h.Count(), want)
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1e-6, 10, 4)
	want := []float64{1e-6, 1e-5, 1e-4, 1e-3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > want[i]*1e-12 {
			t.Fatalf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
}
