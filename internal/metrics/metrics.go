// Package metrics is a zero-dependency, concurrency-safe metrics
// registry for the serving stack: counters, gauges and fixed-bucket
// histograms (with p50/p90/p99 extraction), optionally labeled, plus
// callback collectors that read values owned elsewhere at scrape time.
// A Registry renders the whole set in the Prometheus text exposition
// format, which is what midasd serves at GET /metrics.
//
// The package exists so every layer of the repo — core's estimator,
// ires' sweep pipeline, histstore's WAL, the HTTP server — can be
// instrumented without pulling a client library into a dependency-free
// module. Instrumentation through it is observation-only by
// construction: instruments hold atomics next to the code they observe
// and never feed back into any decision path, so the byte-identical
// determinism contract of the scheduler is untouched.
//
// Registration is meant for startup wiring; registering the same name
// twice with a different type, help string or label set panics, the
// same way misusing a prometheus client does — a misconfigured
// instrument is a programmer error, not a runtime condition.
package metrics

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind discriminates the instrument families a Registry holds.
type Kind int

// The instrument kinds, matching the Prometheus TYPE names.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

var (
	nameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Registry owns a set of named instrument families. All methods are
// safe for concurrent use; a scrape renders every instrument's current
// value.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // registration order; rendering sorts, this keeps iteration stable
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is every series sharing one metric name.
type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string
	buckets    []float64 // histograms only

	mu     sync.Mutex
	series map[string]*series
	keys   []string // series registration order
}

// series is one labeled instrument (or scrape-time callback) of a
// family.
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	histogram   *Histogram
	fn          func() float64 // counter/gauge func collectors
}

// register returns the family for name, creating it on first use and
// panicking when a second registration disagrees on kind, help, label
// names or buckets.
func (r *Registry) register(name, help string, kind Kind, labelNames []string, buckets []float64) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labelNames {
		if !labelRE.MatchString(l) {
			panic(fmt.Sprintf("metrics: metric %q: invalid label name %q", name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name:       name,
			help:       help,
			kind:       kind,
			labelNames: append([]string(nil), labelNames...),
			buckets:    append([]float64(nil), buckets...),
			series:     make(map[string]*series),
		}
		r.families[name] = f
		r.names = append(r.names, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %q re-registered as %v, was %v", name, kind, f.kind))
	}
	if f.help != help {
		panic(fmt.Sprintf("metrics: %q re-registered with different help", name))
	}
	if !equalStrings(f.labelNames, labelNames) {
		panic(fmt.Sprintf("metrics: %q re-registered with labels %v, was %v", name, labelNames, f.labelNames))
	}
	if !equalFloats(f.buckets, buckets) {
		panic(fmt.Sprintf("metrics: %q re-registered with different buckets", name))
	}
	return f
}

// seriesFor returns (creating if needed) the series of f keyed by the
// given label values; build constructs the instrument on first use.
func (f *family) seriesFor(labelValues []string, build func() *series) *series {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("metrics: %q wants %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := seriesKey(labelValues)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = build()
		s.labelValues = append([]string(nil), labelValues...)
		f.series[key] = s
		f.keys = append(f.keys, key)
	}
	return s
}

// seriesKey builds an unambiguous map key from label values (values may
// contain any byte, so a separator alone would collide).
func seriesKey(values []string) string {
	var b []byte
	for _, v := range values {
		b = append(b, fmt.Sprintf("%d:", len(v))...)
		b = append(b, v...)
	}
	return string(b)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Counter

// Counter is a monotonically non-decreasing value. The zero value is
// not usable; obtain counters from a Registry.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v, which must be non-negative; negative deltas are dropped
// (a counter that can decrease is a gauge).
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	addFloat(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, KindCounter, nil, nil)
	s := f.seriesFor(nil, func() *series { return &series{counter: &Counter{}} })
	if s.counter == nil {
		panic(fmt.Sprintf("metrics: %q already registered as a func collector", name))
	}
	return s.counter
}

// CounterVec is a family of counters partitioned by label values.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	if len(labelNames) == 0 {
		panic(fmt.Sprintf("metrics: CounterVec %q needs at least one label", name))
	}
	return &CounterVec{f: r.register(name, help, KindCounter, labelNames, nil)}
}

// With returns the counter for the given label values (one per label
// name, in order), creating it on first use.
func (v *CounterVec) With(labelValues ...string) *Counter {
	s := v.f.seriesFor(labelValues, func() *series { return &series{counter: &Counter{}} })
	if s.counter == nil {
		panic(fmt.Sprintf("metrics: %q%v already registered as a func collector", v.f.name, labelValues))
	}
	return s.counter
}

// CounterFunc registers a counter whose value is read by fn at scrape
// time — the bridge for cumulative values owned by existing code (e.g.
// an estimator's cache-hit atomics). fn must be safe for concurrent
// use and must report a monotonically non-decreasing value. labelPairs
// alternates name, value, name, value…
func (r *Registry) CounterFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.registerFunc(name, help, KindCounter, fn, labelPairs)
}

// GaugeFunc registers a gauge read from fn at scrape time (e.g. a
// queue's current depth). fn must be safe for concurrent use.
// labelPairs alternates name, value, name, value…
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.registerFunc(name, help, KindGauge, fn, labelPairs)
}

func (r *Registry) registerFunc(name, help string, kind Kind, fn func() float64, labelPairs []string) {
	if fn == nil {
		panic(fmt.Sprintf("metrics: %q registered with nil func", name))
	}
	if len(labelPairs)%2 != 0 {
		panic(fmt.Sprintf("metrics: %q: odd label pair list", name))
	}
	names := make([]string, 0, len(labelPairs)/2)
	values := make([]string, 0, len(labelPairs)/2)
	for i := 0; i < len(labelPairs); i += 2 {
		names = append(names, labelPairs[i])
		values = append(values, labelPairs[i+1])
	}
	f := r.register(name, help, kind, names, nil)
	fresh := false
	s := f.seriesFor(values, func() *series { fresh = true; return &series{fn: fn} })
	if !fresh {
		panic(fmt.Sprintf("metrics: duplicate func collector %q%v", name, values))
	}
	_ = s
}

// ---------------------------------------------------------------------------
// Gauge

// Gauge is a value that can go up and down. The zero value is not
// usable; obtain gauges from a Registry.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (which may be negative).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, KindGauge, nil, nil)
	s := f.seriesFor(nil, func() *series { return &series{gauge: &Gauge{}} })
	if s.gauge == nil {
		panic(fmt.Sprintf("metrics: %q already registered as a func collector", name))
	}
	return s.gauge
}

// GaugeVec is a family of gauges partitioned by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	if len(labelNames) == 0 {
		panic(fmt.Sprintf("metrics: GaugeVec %q needs at least one label", name))
	}
	return &GaugeVec{f: r.register(name, help, KindGauge, labelNames, nil)}
}

// With returns the gauge for the given label values, creating it on
// first use.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	s := v.f.seriesFor(labelValues, func() *series { return &series{gauge: &Gauge{}} })
	if s.gauge == nil {
		panic(fmt.Sprintf("metrics: %q%v already registered as a func collector", v.f.name, labelValues))
	}
	return s.gauge
}

// addFloat atomically adds delta to the float64 stored as bits in u.
func addFloat(u *atomic.Uint64, delta float64) {
	for {
		old := u.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if u.CompareAndSwap(old, next) {
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Histogram

// Histogram counts observations into fixed buckets and tracks their
// sum — enough to render the Prometheus histogram series and to
// extract approximate quantiles. The zero value is not usable; obtain
// histograms from a Registry.
type Histogram struct {
	// upper bucket bounds, strictly increasing; the +Inf bucket is
	// implicit.
	bounds []float64
	counts []atomic.Uint64 // per-bucket (non-cumulative), len(bounds)+1
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	// First bucket whose upper bound contains v; the +Inf bucket is
	// index len(bounds).
	i := sort.SearchFloat64s(h.bounds, v)
	// SearchFloat64s finds the first bound >= v, which is exactly the
	// Prometheus le-semantics bucket.
	h.counts[i].Add(1)
	addFloat(&h.sum, v)
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket
// counts, interpolating linearly within the containing bucket — the
// same estimate Prometheus' histogram_quantile computes. The lowest
// bucket interpolates from 0; an observation landing in the +Inf
// bucket reports the highest finite bound. With no observations it
// returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if cum+c >= rank && c > 0 {
			if i == len(h.bounds) {
				// +Inf bucket: the best point estimate is the highest
				// finite bound (or 0 with no finite buckets).
				if len(h.bounds) == 0 {
					return 0
				}
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			frac := (rank - cum) / c
			if frac < 0 {
				frac = 0
			}
			return lower + (h.bounds[i]-lower)*frac
		}
		cum += c
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// Histogram registers (or fetches) an unlabeled histogram with the
// given bucket upper bounds (strictly increasing; +Inf implicit). Nil
// buckets select DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	buckets = checkBuckets(name, buckets)
	f := r.register(name, help, KindHistogram, nil, buckets)
	s := f.seriesFor(nil, func() *series { return &series{histogram: newHistogram(f.buckets)} })
	return s.histogram
}

// HistogramVec is a family of histograms partitioned by label values.
type HistogramVec struct{ f *family }

// HistogramVec registers (or fetches) a labeled histogram family. Nil
// buckets select DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if len(labelNames) == 0 {
		panic(fmt.Sprintf("metrics: HistogramVec %q needs at least one label", name))
	}
	buckets = checkBuckets(name, buckets)
	return &HistogramVec{f: r.register(name, help, KindHistogram, labelNames, buckets)}
}

// With returns the histogram for the given label values, creating it
// on first use.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	s := v.f.seriesFor(labelValues, func() *series { return &series{histogram: newHistogram(v.f.buckets)} })
	return s.histogram
}

func checkBuckets(name string, buckets []float64) []float64 {
	if buckets == nil {
		buckets = DefBuckets
	}
	if len(buckets) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q with no buckets", name))
	}
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i] > buckets[i-1]) {
			panic(fmt.Sprintf("metrics: histogram %q buckets not strictly increasing", name))
		}
	}
	if math.IsInf(buckets[len(buckets)-1], +1) {
		buckets = buckets[:len(buckets)-1] // +Inf is implicit
	}
	return buckets
}

// DefBuckets covers request/sweep latencies from 1 ms to 30 s — the
// range the serving stack's round trips actually span.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// ExponentialBuckets returns n bucket bounds starting at start and
// multiplying by factor — e.g. ExponentialBuckets(1e-6, 4, 8) spans
// 1 µs to ~16 ms for WAL append latencies. start must be positive and
// factor > 1.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("metrics: invalid ExponentialBuckets(%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
