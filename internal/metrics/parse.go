package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Scrape is a parsed Prometheus text-format exposition: every sample
// line keyed by its full series identity (name plus rendered label
// set, e.g. `midas_requests_total{federation="main"}`), plus the
// declared TYPE per family. The parser exists so tests — and operators
// poking at /metrics with Go tooling — can assert on scrapes without a
// Prometheus dependency; it validates the line grammar strictly and
// rejects samples for families that declared no TYPE.
type Scrape struct {
	// Values maps series identity to sample value.
	Values map[string]float64
	// Types maps family name to the declared TYPE.
	Types map[string]Kind
	// Order lists series identities in exposition order.
	Order []string
}

// ParseText parses a Prometheus text-format exposition. It is strict
// about the grammar this package renders (HELP/TYPE comments, sample
// lines with optional labels) and fails on anything malformed — the
// point is to prove a scrape is well-formed, not to accept arbitrary
// input.
func ParseText(r io.Reader) (*Scrape, error) {
	sc := &Scrape{
		Values: make(map[string]float64),
		Types:  make(map[string]Kind),
	}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			parts := strings.SplitN(rest, " ", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("metrics: line %d: malformed TYPE comment", lineNo)
			}
			kind, err := parseKind(parts[1])
			if err != nil {
				return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
			}
			sc.Types[parts[0]] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or free comment
		}
		id, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		base := seriesFamily(id)
		if _, ok := sc.Types[base]; !ok {
			return nil, fmt.Errorf("metrics: line %d: sample %q without TYPE", lineNo, id)
		}
		if _, dup := sc.Values[id]; dup {
			return nil, fmt.Errorf("metrics: line %d: duplicate series %q", lineNo, id)
		}
		sc.Values[id] = value
		sc.Order = append(sc.Order, id)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return sc, nil
}

func parseKind(s string) (Kind, error) {
	switch s {
	case "counter":
		return KindCounter, nil
	case "gauge":
		return KindGauge, nil
	case "histogram":
		return KindHistogram, nil
	default:
		return 0, fmt.Errorf("unknown metric type %q", s)
	}
}

// seriesFamily strips labels and the histogram sample suffixes so a
// series maps back to its TYPE-declaring family.
func seriesFamily(id string) string {
	name := id
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suffix) {
			return name[:len(name)-len(suffix)]
		}
	}
	return name
}

// parseSample splits one sample line into series identity and value.
func parseSample(line string) (string, float64, error) {
	// The value is the field after the last space outside braces; this
	// package never renders timestamps.
	cut := strings.LastIndexByte(line, ' ')
	if cut < 0 {
		return "", 0, fmt.Errorf("sample %q has no value", line)
	}
	id, raw := line[:cut], line[cut+1:]
	if id == "" {
		return "", 0, fmt.Errorf("sample %q has no name", line)
	}
	if err := checkSeriesID(id); err != nil {
		return "", 0, err
	}
	var value float64
	switch raw {
	case "+Inf":
		value = math.Inf(+1)
	case "-Inf":
		value = math.Inf(-1)
	default:
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return "", 0, fmt.Errorf("sample %q: bad value: %w", line, err)
		}
		value = v
	}
	return id, value, nil
}

// checkSeriesID validates `name` or `name{k="v",...}`.
func checkSeriesID(id string) error {
	name := id
	labels := ""
	if i := strings.IndexByte(id, '{'); i >= 0 {
		if !strings.HasSuffix(id, "}") {
			return fmt.Errorf("series %q: unterminated label set", id)
		}
		name, labels = id[:i], id[i+1:len(id)-1]
	}
	if !nameRE.MatchString(name) {
		return fmt.Errorf("series %q: invalid metric name", id)
	}
	rest := labels
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
			return fmt.Errorf("series %q: malformed labels", id)
		}
		if !labelRE.MatchString(rest[:eq]) && rest[:eq] != "le" {
			return fmt.Errorf("series %q: invalid label name %q", id, rest[:eq])
		}
		// Scan the quoted value respecting escapes.
		i := eq + 2
		for {
			if i >= len(rest) {
				return fmt.Errorf("series %q: unterminated label value", id)
			}
			if rest[i] == '\\' {
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			i++
		}
		rest = rest[i+1:]
		if rest == "" {
			break
		}
		if rest[0] != ',' {
			return fmt.Errorf("series %q: malformed label separator", id)
		}
		rest = rest[1:]
	}
	return nil
}
