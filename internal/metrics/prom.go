package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Registry in the Prometheus text exposition
// format (version 0.0.4): per family a # HELP and # TYPE line, then
// one sample line per series — histograms expand to the cumulative
// _bucket series plus _sum and _count. Families render in sorted name
// order and series in sorted label order, so consecutive scrapes of an
// idle registry are byte-identical (which the tests rely on).

// WritePrometheus renders every registered instrument to w.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, len(r.names))
	copy(names, r.names)
	families := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		families = append(families, r.families[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range families {
		f.render(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the registry as a GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

func (f *family) render(b *strings.Builder) {
	f.mu.Lock()
	keys := make([]string, len(f.keys))
	copy(keys, f.keys)
	sort.Strings(keys)
	all := make([]*series, 0, len(keys))
	for _, k := range keys {
		all = append(all, f.series[k])
	}
	f.mu.Unlock()
	if len(all) == 0 {
		return
	}

	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for _, s := range all {
		switch {
		case s.fn != nil:
			writeSample(b, f.name, f.labelNames, s.labelValues, "", "", s.fn())
		case s.counter != nil:
			writeSample(b, f.name, f.labelNames, s.labelValues, "", "", s.counter.Value())
		case s.gauge != nil:
			writeSample(b, f.name, f.labelNames, s.labelValues, "", "", s.gauge.Value())
		case s.histogram != nil:
			h := s.histogram
			// Load the per-bucket counts first, then render the
			// cumulative sums: a racing Observe can only make _count
			// lag the buckets' total, never exceed it.
			var cum uint64
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				writeSample(b, f.name+"_bucket", f.labelNames, s.labelValues,
					"le", formatBound(bound), float64(cum))
			}
			cum += h.counts[len(h.bounds)].Load()
			writeSample(b, f.name+"_bucket", f.labelNames, s.labelValues, "le", "+Inf", float64(cum))
			writeSample(b, f.name+"_sum", f.labelNames, s.labelValues, "", "", h.Sum())
			writeSample(b, f.name+"_count", f.labelNames, s.labelValues, "", "", float64(cum))
		}
	}
}

// writeSample renders one line: name{labels,extra} value. extraName
// carries the histogram "le" label.
func writeSample(b *strings.Builder, name string, labelNames, labelValues []string, extraName, extraValue string, v float64) {
	b.WriteString(name)
	if len(labelNames) > 0 || extraName != "" {
		b.WriteByte('{')
		first := true
		for i, ln := range labelNames {
			if !first {
				b.WriteByte(',')
			}
			first = false
			b.WriteString(ln)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(labelValues[i]))
			b.WriteByte('"')
		}
		if extraName != "" {
			if !first {
				b.WriteByte(',')
			}
			b.WriteString(extraName)
			b.WriteString(`="`)
			b.WriteString(extraValue)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// formatBound renders a bucket upper bound for the le label.
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}

// escapeHelp escapes a help string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}
