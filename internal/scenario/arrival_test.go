package scenario

import (
	"math"
	"testing"
	"time"
)

func gaps(t *testing.T, kind string, rate float64, seed int64, n int) []time.Duration {
	t.Helper()
	arr, err := NewArrival(kind, rate, seed)
	if err != nil {
		t.Fatalf("NewArrival(%q): %v", kind, err)
	}
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = arr.Next()
	}
	return out
}

func TestArrivalSameSeedSameGaps(t *testing.T) {
	for _, kind := range ArrivalKinds() {
		a := gaps(t, kind, 50, 42, 5000)
		b := gaps(t, kind, 50, 42, 5000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: gap %d diverged with the same seed: %v vs %v", kind, i, a[i], b[i])
			}
		}
		c := gaps(t, kind, 50, 43, 5000)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced identical gap sequences", kind)
		}
	}
}

func TestArrivalMeanRate(t *testing.T) {
	const rate, n = 40.0, 40000
	for _, kind := range ArrivalKinds() {
		var total float64
		for _, g := range gaps(t, kind, rate, 7, n) {
			total += g.Seconds()
		}
		got := float64(n) / total
		if math.Abs(got-rate)/rate > 0.10 {
			t.Fatalf("%s: long-run rate %.2f/s, want %.0f/s ±10%%", kind, got, rate)
		}
	}
}

// The MMPP must be visibly burstier than Poisson: its gap coefficient
// of variation exceeds the exponential's CV of 1.
func TestBurstyIsBurstier(t *testing.T) {
	cv := func(kind string) float64 {
		gs := gaps(t, kind, 40, 11, 30000)
		var sum, sumSq float64
		for _, g := range gs {
			s := g.Seconds()
			sum += s
			sumSq += s * s
		}
		mean := sum / float64(len(gs))
		variance := sumSq/float64(len(gs)) - mean*mean
		return math.Sqrt(variance) / mean
	}
	pois, burst := cv("poisson"), cv("bursty")
	if burst < pois*1.2 {
		t.Fatalf("bursty CV %.2f is not materially above poisson CV %.2f", burst, pois)
	}
}

// The diurnal process must actually modulate: the densest window of
// the cycle sees substantially more arrivals than the sparsest.
func TestDiurnalModulates(t *testing.T) {
	arr, err := NewArrival("diurnal", 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Bucket arrivals by phase within the 60s period (4 buckets).
	var buckets [4]int
	var now float64
	for i := 0; i < 20000; i++ {
		now += arr.Next().Seconds()
		phase := math.Mod(now, 60) / 60
		buckets[int(phase*4)%4]++
	}
	lo, hi := buckets[0], buckets[0]
	for _, b := range buckets[1:] {
		if b < lo {
			lo = b
		}
		if b > hi {
			hi = b
		}
	}
	if float64(hi) < 1.5*float64(lo) {
		t.Fatalf("diurnal peak/trough ratio %.2f too flat (buckets %v)", float64(hi)/float64(lo), buckets)
	}
}

func TestNewArrivalRejectsBadInput(t *testing.T) {
	if _, err := NewArrival("poisson", 0, 1); err == nil {
		t.Fatal("zero rate must error")
	}
	if _, err := NewArrival("tidal", 10, 1); err == nil {
		t.Fatal("unknown kind must error")
	}
}
