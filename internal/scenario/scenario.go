package scenario

import (
	"fmt"
	"time"

	"repro/internal/cloud"
	"repro/internal/federation"
	"repro/internal/stats"
)

// Spec names one scenario: an arrival process at a mean rate, a chaos
// profile, and the query mix to draw from. Generate turns it into a
// concrete event schedule; the same spec and seed always yield the
// same schedule.
type Spec struct {
	// Name labels the scenario in tables and artifacts; defaults to
	// "<arrival>/<chaos>".
	Name string
	// Arrival is the process kind: "poisson", "bursty" or "diurnal".
	Arrival string
	// Rate is the mean arrival rate in events/second (default 20).
	Rate float64
	// Chaos names the cloud.ChaosProfile to inject (default "none").
	Chaos string
	// Events is the schedule length (default 200).
	Events int
	// Federation tags the generated events (default "default").
	Federation string
	// Queries is the mix drawn from uniformly (default {"Q12"}).
	Queries []string
	// Seed drives the arrival process and the query picker.
	Seed int64
}

func (s Spec) withDefaults() Spec {
	if s.Arrival == "" {
		s.Arrival = "poisson"
	}
	if s.Rate <= 0 {
		s.Rate = 20
	}
	if s.Chaos == "" {
		s.Chaos = "none"
	}
	if s.Events <= 0 {
		s.Events = 200
	}
	if s.Federation == "" {
		s.Federation = "default"
	}
	if len(s.Queries) == 0 {
		s.Queries = []string{"Q12"}
	}
	if s.Name == "" {
		s.Name = s.Arrival + "/" + s.Chaos
	}
	return s
}

// Profile resolves the spec's chaos profile.
func (s Spec) Profile() (cloud.ChaosProfile, error) {
	return cloud.ParseChaosProfile(s.withDefaults().Chaos)
}

// Generate materializes the deterministic event schedule: arrival gaps
// from the seeded process, queries drawn uniformly from the mix by an
// independent RNG (seed+1) so changing the query mix does not perturb
// the arrival times.
func (s Spec) Generate() ([]Event, error) {
	s = s.withDefaults()
	if _, err := s.Profile(); err != nil {
		return nil, err
	}
	arr, err := NewArrival(s.Arrival, s.Rate, s.Seed)
	if err != nil {
		return nil, err
	}
	pick := stats.NewRNG(s.Seed + 1)
	events := make([]Event, 0, s.Events)
	var offset time.Duration
	for i := 0; i < s.Events; i++ {
		offset += arr.Next()
		events = append(events, Event{
			Offset:     offset,
			Federation: s.Federation,
			Query:      s.Queries[pick.Intn(len(s.Queries))],
		})
	}
	return events, nil
}

// matrixChaos is the chaos axis of the standard matrix. "autoscale" is
// deliberately folded into "mixed" to keep the nightly sweep at 15
// cells; run it alone via a custom Spec when isolating resize effects.
var matrixChaos = []string{"none", "outages", "stragglers", "price-spikes", "mixed"}

// Matrix is the standard scenario grid: every arrival process crossed
// with the representative chaos profiles, all deriving their seeds from
// one base seed so the whole sweep is reproducible from a single
// number.
func Matrix(seed int64) []Spec {
	var specs []Spec
	for ai, arrival := range ArrivalKinds() {
		for ci, chaos := range matrixChaos {
			specs = append(specs, Spec{
				Arrival: arrival,
				Chaos:   chaos,
				Seed:    seed + int64(ai*100+ci),
			}.withDefaults())
		}
	}
	return specs
}

// AttachChaos wires a fault injector into every site of a federation —
// the load process (outages, stragglers, resizes) and the provider
// pricing (spikes) — without the federation or the scheduler knowing:
// the Chaos seam lives entirely inside internal/cloud. Returns nil when
// the profile injects nothing. Per-site schedules derive from the site
// name, so map iteration order does not matter.
func AttachChaos(fed *federation.Federation, profile cloud.ChaosProfile, seed int64) *cloud.Chaos {
	if !profile.Enabled() {
		return nil
	}
	c := cloud.NewChaos(profile, seed)
	for name, site := range fed.Sites {
		sc := c.Site(name)
		site.Load.AttachChaos(sc)
		site.Provider.AttachChaos(sc)
	}
	return c
}

// DetachChaos removes any injector from every site, restoring the
// well-behaved cloud.
func DetachChaos(fed *federation.Federation) {
	for _, site := range fed.Sites {
		site.Load.AttachChaos(nil)
		site.Provider.AttachChaos(nil)
	}
}

// Describe summarizes a spec for logs and flag help.
func (s Spec) Describe() string {
	s = s.withDefaults()
	return fmt.Sprintf("%s: %s arrivals at %g/s, chaos=%s, %d events, seed %d",
		s.Name, s.Arrival, s.Rate, s.Chaos, s.Events, s.Seed)
}
