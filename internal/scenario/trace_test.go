package scenario

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"
)

func sampleEvents() []Event {
	return []Event{
		{Offset: 0, Federation: "default", Query: "Q12"},
		{Offset: 1500 * time.Microsecond, Federation: "default", Query: "Q13"},
		{Offset: 2 * time.Second, Federation: "paper", Query: "Q17"},
		{Offset: time.Hour, Federation: "wide", Query: "Q14"},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleEvents()) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, sampleEvents())
	}
}

func TestTraceBytesDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteTrace(&a, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&b, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical events serialized to different bytes")
	}
}

func TestTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty trace read back %d events", len(got))
	}
}

func TestTraceWriterCounts(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range sampleEvents() {
		if err := tw.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if tw.Events() != len(sampleEvents()) {
		t.Fatalf("writer counted %d events, want %d", tw.Events(), len(sampleEvents()))
	}
	if err := tw.Append(Event{Offset: -time.Second, Federation: "x", Query: "Q12"}); err == nil {
		t.Fatal("negative offset must be rejected")
	}
}

func TestTraceCorruptionDetected(t *testing.T) {
	var pristine bytes.Buffer
	if err := WriteTrace(&pristine, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	full := pristine.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), full...)
		b[0] ^= 0xFF
		if _, err := ReadTrace(bytes.NewReader(b)); !errors.Is(err, ErrTraceCorrupt) {
			t.Fatalf("want ErrTraceCorrupt, got %v", err)
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		b := append([]byte(nil), full...)
		b[len(b)-1] ^= 0xFF
		if _, err := ReadTrace(bytes.NewReader(b)); !errors.Is(err, ErrTraceCorrupt) {
			t.Fatalf("want ErrTraceCorrupt, got %v", err)
		}
	})
	t.Run("truncated tail", func(t *testing.T) {
		b := full[:len(full)-3]
		if _, err := ReadTrace(bytes.NewReader(b)); !errors.Is(err, ErrTraceCorrupt) {
			t.Fatalf("want ErrTraceCorrupt, got %v", err)
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		if _, err := ReadTrace(bytes.NewReader(full[:4])); !errors.Is(err, ErrTraceCorrupt) {
			t.Fatalf("want ErrTraceCorrupt, got %v", err)
		}
	})
}
