// Package scenario is the deterministic workload engine behind the
// chaos harness: open-loop arrival processes (Poisson, bursty MMPP,
// diurnal), a CRC-framed trace format for byte-exact record/replay,
// and named scenario specs that combine an arrival process with a
// cloud.ChaosProfile. Everything draws from explicitly seeded RNGs so
// the same spec and seed always produce the same trace — the
// reproducibility contract the scenario matrix and the cluster chaos
// tests pin.
package scenario

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/stats"
)

// ArrivalProcess produces inter-arrival gaps for an open-loop load
// schedule. Implementations are deterministic given their seed and are
// NOT safe for concurrent use; generate the schedule up front (see
// Spec.Generate) and share the resulting events instead.
type ArrivalProcess interface {
	// Name identifies the process kind ("poisson", "bursty", "diurnal").
	Name() string
	// Next returns the gap between the previous arrival and the next.
	Next() time.Duration
}

// arrivalKinds registers the constructors; rate is the mean arrival
// rate in events/second, seed drives the process RNG.
var arrivalKinds = map[string]func(rate float64, seed int64) ArrivalProcess{
	"poisson": func(rate float64, seed int64) ArrivalProcess {
		return &poisson{rng: stats.NewRNG(seed), mean: 1 / rate}
	},
	"bursty": func(rate float64, seed int64) ArrivalProcess {
		// Two-state MMPP: a calm state at rate/3 and a burst state at
		// 3×rate, with mean dwell times chosen so the long-run average
		// stays at the requested rate (equal expected arrivals per
		// state visit: calm dwells 3× longer than bursts).
		return &mmpp{
			rng:   stats.NewRNG(seed),
			rates: [2]float64{rate / 3, 3 * rate},
			dwell: [2]float64{6, 2}, // seconds
		}
	},
	"diurnal": func(rate float64, seed int64) ArrivalProcess {
		// Nonhomogeneous Poisson via thinning: λ(t) = rate·(1 + 0.8·sin)
		// over a 60-second "day" — compressed so short runs still see
		// both the peak and the trough.
		return &diurnal{
			rng:    stats.NewRNG(seed),
			base:   rate,
			amp:    0.8,
			period: 60,
		}
	},
}

// ArrivalKinds lists the registered process kinds, sorted.
func ArrivalKinds() []string {
	kinds := make([]string, 0, len(arrivalKinds))
	for k := range arrivalKinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// NewArrival builds a named arrival process at the given mean rate
// (events/second) and seed.
func NewArrival(kind string, rate float64, seed int64) (ArrivalProcess, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("scenario: arrival rate must be positive, got %v", rate)
	}
	mk, ok := arrivalKinds[kind]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown arrival process %q (have %s)",
			kind, strings.Join(ArrivalKinds(), ", "))
	}
	return mk(rate, seed), nil
}

// poisson is the memoryless baseline: exponential gaps.
type poisson struct {
	rng  *stats.RNG
	mean float64 // seconds between arrivals
}

func (p *poisson) Name() string { return "poisson" }

func (p *poisson) Next() time.Duration {
	return secondsToDuration(p.rng.Exponential(p.mean))
}

// mmpp is a two-state Markov-modulated Poisson process: arrivals are
// Poisson at the current state's rate, and the state itself flips after
// an exponentially distributed dwell — calm traffic punctuated by
// bursts several times the mean rate.
type mmpp struct {
	rng   *stats.RNG
	rates [2]float64 // arrivals/second per state
	dwell [2]float64 // mean seconds spent in each state

	state     int
	remaining float64 // seconds left in the current state
}

func (m *mmpp) Name() string { return "bursty" }

func (m *mmpp) Next() time.Duration {
	var total float64
	for {
		if m.remaining <= 0 {
			m.remaining = m.rng.Exponential(m.dwell[m.state])
		}
		gap := m.rng.Exponential(1 / m.rates[m.state])
		if gap <= m.remaining {
			m.remaining -= gap
			return secondsToDuration(total + gap)
		}
		// The state flips before the drawn arrival: consume the dwell
		// and redraw in the new state. Discarding the rest of the gap
		// is exact — the exponential is memoryless.
		total += m.remaining
		m.remaining = 0
		m.state = 1 - m.state
	}
}

// diurnal is a nonhomogeneous Poisson process with sinusoidal rate,
// sampled by Lewis–Shedler thinning against the peak rate.
type diurnal struct {
	rng    *stats.RNG
	base   float64 // mean arrivals/second
	amp    float64 // relative amplitude in [0, 1)
	period float64 // seconds per cycle

	now float64 // seconds since schedule start
}

func (d *diurnal) Name() string { return "diurnal" }

func (d *diurnal) Next() time.Duration {
	lambdaMax := d.base * (1 + d.amp)
	start := d.now
	for {
		d.now += d.rng.Exponential(1 / lambdaMax)
		rate := d.base * (1 + d.amp*math.Sin(2*math.Pi*d.now/d.period))
		if d.rng.Float64()*lambdaMax <= rate {
			return secondsToDuration(d.now - start)
		}
	}
}

// secondsToDuration converts with a 1µs floor so two arrivals never
// collapse onto the same trace timestamp.
func secondsToDuration(s float64) time.Duration {
	dur := time.Duration(s * float64(time.Second))
	if dur < time.Microsecond {
		dur = time.Microsecond
	}
	return dur
}
