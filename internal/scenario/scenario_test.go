package scenario

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/cloud"
	"repro/internal/federation"
)

// Same spec, same seed ⇒ byte-identical trace — the acceptance
// criterion the whole engine hangs off.
func TestSpecGenerateByteReproducible(t *testing.T) {
	for _, spec := range Matrix(42) {
		spec.Events = 300
		spec.Queries = []string{"Q12", "Q13", "Q14", "Q17"}
		a, err := spec.Generate()
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		b, err := spec.Generate()
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed generated different schedules", spec.Name)
		}
		var ba, bb bytes.Buffer
		if err := WriteTrace(&ba, a); err != nil {
			t.Fatal(err)
		}
		if err := WriteTrace(&bb, b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
			t.Fatalf("%s: same seed produced different trace bytes", spec.Name)
		}
	}
}

func TestSpecGenerateMonotoneOffsets(t *testing.T) {
	spec := Spec{Arrival: "bursty", Events: 500, Seed: 9}
	events, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Offset <= events[i-1].Offset {
			t.Fatalf("offsets not strictly increasing at %d: %v then %v",
				i, events[i-1].Offset, events[i].Offset)
		}
	}
}

func TestMatrixShape(t *testing.T) {
	specs := Matrix(7)
	want := len(ArrivalKinds()) * len(matrixChaos)
	if len(specs) != want {
		t.Fatalf("matrix has %d cells, want %d", len(specs), want)
	}
	names := map[string]bool{}
	seeds := map[int64]bool{}
	for _, s := range specs {
		if names[s.Name] {
			t.Fatalf("duplicate scenario name %q", s.Name)
		}
		names[s.Name] = true
		if seeds[s.Seed] {
			t.Fatalf("duplicate scenario seed %d", s.Seed)
		}
		seeds[s.Seed] = true
		if _, err := s.Profile(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
	}
}

func TestSpecRejectsUnknownChaos(t *testing.T) {
	if _, err := (Spec{Chaos: "gremlins"}).Generate(); err == nil {
		t.Fatal("unknown chaos profile must fail Generate")
	}
}

func TestAttachChaosWiresEverySite(t *testing.T) {
	fed, err := federation.DefaultTopology(1)
	if err != nil {
		t.Fatal(err)
	}
	// A certain, violent outage so one Tick is enough to observe it.
	prof := cloud.ChaosProfile{Name: "test", OutageProb: 1, OutageMinT: 10, OutageMaxT: 10, OutageFactor: 50}
	c := AttachChaos(fed, prof, 5)
	if c == nil {
		t.Fatal("enabled profile returned nil injector")
	}
	for name, site := range fed.Sites {
		if f := site.Load.Tick(); f <= site.Load.MaxFactor {
			t.Fatalf("site %s: outage not visible through Tick, factor %v", name, f)
		}
	}
	DetachChaos(fed)
	for name, site := range fed.Sites {
		if f := site.Load.Tick(); f > site.Load.MaxFactor {
			t.Fatalf("site %s: chaos still attached after detach, factor %v", name, f)
		}
	}

	if c := AttachChaos(fed, cloud.ChaosProfile{Name: "none"}, 5); c != nil {
		t.Fatal("disabled profile must return nil")
	}
}

func TestDescribeMentionsTheAxes(t *testing.T) {
	d := Spec{Arrival: "diurnal", Chaos: "mixed", Seed: 3}.Describe()
	for _, frag := range []string{"diurnal", "mixed"} {
		if !bytes.Contains([]byte(d), []byte(frag)) {
			t.Fatalf("Describe() = %q missing %q", d, frag)
		}
	}
}
