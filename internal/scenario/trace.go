package scenario

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"
)

// Event is one arrival in a recorded or generated schedule: fire the
// named query against the named federation Offset after the schedule
// starts. Offsets are absolute from the start (not inter-arrival gaps)
// so a replayer that falls behind can tell how late it is.
type Event struct {
	Offset     time.Duration
	Federation string
	Query      string
}

// Trace file layout — the histstore WAL framing with a magic header:
//
//	8 bytes  magic "MIDTRC01" (format version in the last two bytes)
//	frames:  len uint32 LE | crc uint32 LE | payload
//	payload: offsetNanos uint64 LE
//	         fedLen uint16 LE | federation bytes
//	         qLen   uint16 LE | query bytes
//
// The CRC is crc32.Castagnoli over the payload. Unlike the WAL, a
// torn or corrupt frame is a hard error: a trace is a complete
// artifact, and replaying a silent prefix would break the byte-exact
// reproducibility contract.
var traceMagic = [8]byte{'M', 'I', 'D', 'T', 'R', 'C', '0', '1'}

var traceCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrTraceCorrupt reports a malformed or truncated trace file.
var ErrTraceCorrupt = errors.New("scenario: corrupt trace")

const maxTracePayload = 1 << 16

// TraceWriter streams events into a trace; NewTraceWriter writes the
// header immediately so even an empty trace is well formed.
type TraceWriter struct {
	w   io.Writer
	buf []byte
	n   int
}

// NewTraceWriter writes the trace header and returns a writer.
func NewTraceWriter(w io.Writer) (*TraceWriter, error) {
	if _, err := w.Write(traceMagic[:]); err != nil {
		return nil, fmt.Errorf("scenario: write trace header: %w", err)
	}
	return &TraceWriter{w: w}, nil
}

// Events returns how many events have been appended.
func (tw *TraceWriter) Events() int { return tw.n }

// Append frames and writes one event.
func (tw *TraceWriter) Append(ev Event) error {
	if ev.Offset < 0 {
		return fmt.Errorf("scenario: negative event offset %v", ev.Offset)
	}
	if len(ev.Federation) > maxTracePayload/4 || len(ev.Query) > maxTracePayload/4 {
		return fmt.Errorf("scenario: event names too long (federation %d, query %d bytes)",
			len(ev.Federation), len(ev.Query))
	}
	payload := 8 + 2 + len(ev.Federation) + 2 + len(ev.Query)
	need := 8 + payload
	if cap(tw.buf) < need {
		tw.buf = make([]byte, need)
	}
	b := tw.buf[:need]
	binary.LittleEndian.PutUint32(b[0:4], uint32(payload))
	p := b[8:]
	binary.LittleEndian.PutUint64(p[0:8], uint64(ev.Offset))
	binary.LittleEndian.PutUint16(p[8:10], uint16(len(ev.Federation)))
	off := 10 + copy(p[10:], ev.Federation)
	binary.LittleEndian.PutUint16(p[off:off+2], uint16(len(ev.Query)))
	copy(p[off+2:], ev.Query)
	binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(p, traceCRC))
	if _, err := tw.w.Write(b); err != nil {
		return fmt.Errorf("scenario: write trace frame: %w", err)
	}
	tw.n++
	return nil
}

// WriteTrace writes a complete trace in one call.
func WriteTrace(w io.Writer, events []Event) error {
	tw, err := NewTraceWriter(w)
	if err != nil {
		return err
	}
	for _, ev := range events {
		if err := tw.Append(ev); err != nil {
			return err
		}
	}
	return nil
}

// ReadTrace parses a complete trace, verifying the header and every
// frame CRC.
func ReadTrace(r io.Reader) ([]Event, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: missing header: %v", ErrTraceCorrupt, err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrTraceCorrupt, magic[:])
	}
	var events []Event
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return events, nil
			}
			return nil, fmt.Errorf("%w: torn frame header: %v", ErrTraceCorrupt, err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		if n < 12 || n > maxTracePayload {
			return nil, fmt.Errorf("%w: frame payload %d bytes", ErrTraceCorrupt, n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("%w: torn frame payload: %v", ErrTraceCorrupt, err)
		}
		if crc32.Checksum(payload, traceCRC) != binary.LittleEndian.Uint32(hdr[4:8]) {
			return nil, fmt.Errorf("%w: frame %d CRC mismatch", ErrTraceCorrupt, len(events))
		}
		fedLen := int(binary.LittleEndian.Uint16(payload[8:10]))
		if 10+fedLen+2 > int(n) {
			return nil, fmt.Errorf("%w: frame %d name lengths exceed payload", ErrTraceCorrupt, len(events))
		}
		qOff := 10 + fedLen
		qLen := int(binary.LittleEndian.Uint16(payload[qOff : qOff+2]))
		if qOff+2+qLen != int(n) {
			return nil, fmt.Errorf("%w: frame %d name lengths exceed payload", ErrTraceCorrupt, len(events))
		}
		events = append(events, Event{
			Offset:     time.Duration(binary.LittleEndian.Uint64(payload[0:8])),
			Federation: string(payload[10:qOff]),
			Query:      string(payload[qOff+2 : qOff+2+qLen]),
		})
	}
}
