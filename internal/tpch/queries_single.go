package tpch

import "sort"

// Q1 and Q6 are the classic single-table lineitem queries of TPC-H.
// The paper's federation experiments need two-table queries (something
// must cross sites), but a complete engine also has to handle pure
// scan/aggregate workloads; these reference implementations anchor the
// engine plans in queries_single tests.

// Q1Params are the substitution parameters of TPC-H Q1.
type Q1Params struct {
	// DeltaDays shifts the shipdate cutoff back from 1998-12-01;
	// default 90.
	DeltaDays int
}

// DefaultQ1Params returns the spec's validation parameters.
func DefaultQ1Params() Q1Params { return Q1Params{DeltaDays: 90} }

// Q1Row is one output group of the pricing summary report.
type Q1Row struct {
	ReturnFlag byte
	LineStatus byte
	SumQty     float64
	SumBase    float64
	SumDisc    float64 // Σ extendedprice·(1−discount)
	SumCharge  float64 // Σ extendedprice·(1−discount)·(1+tax)
	AvgQty     float64
	AvgPrice   float64
	AvgDisc    float64
	Count      int64
}

// Q1 computes the "Pricing Summary Report".
func Q1(db *Database, p Q1Params) []Q1Row {
	cutoff := MakeDate(1998, 12, 1).AddDays(-p.DeltaDays)
	type key struct{ rf, ls byte }
	groups := make(map[key]*Q1Row)
	for i := range db.Lineitems {
		l := &db.Lineitems[i]
		if l.ShipDate > cutoff {
			continue
		}
		k := key{l.ReturnFlag, l.LineStatus}
		g := groups[k]
		if g == nil {
			g = &Q1Row{ReturnFlag: l.ReturnFlag, LineStatus: l.LineStatus}
			groups[k] = g
		}
		disc := l.ExtendedPrice * (1 - l.Discount)
		g.SumQty += l.Quantity
		g.SumBase += l.ExtendedPrice
		g.SumDisc += disc
		g.SumCharge += disc * (1 + l.Tax)
		g.AvgDisc += l.Discount
		g.Count++
	}
	out := make([]Q1Row, 0, len(groups))
	for _, g := range groups {
		n := float64(g.Count)
		g.AvgQty = g.SumQty / n
		g.AvgPrice = g.SumBase / n
		g.AvgDisc /= n
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ReturnFlag != out[j].ReturnFlag {
			return out[i].ReturnFlag < out[j].ReturnFlag
		}
		return out[i].LineStatus < out[j].LineStatus
	})
	return out
}

// Q6Params are the substitution parameters of TPC-H Q6.
type Q6Params struct {
	StartDate Date    // default 1994-01-01; window is one year
	Discount  float64 // default 0.06; band is ±0.01
	Quantity  float64 // default 24
}

// DefaultQ6Params returns the spec's validation parameters.
func DefaultQ6Params() Q6Params {
	return Q6Params{StartDate: MakeDate(1994, 1, 1), Discount: 0.06, Quantity: 24}
}

// Q6 computes the "Forecasting Revenue Change": the revenue that would
// have been kept had in-band discounts not been granted.
func Q6(db *Database, p Q6Params) float64 {
	end := p.StartDate.AddYears(1)
	lo, hi := p.Discount-0.01, p.Discount+0.01
	const eps = 1e-9 // the band bounds are inclusive at cent precision
	var revenue float64
	for i := range db.Lineitems {
		l := &db.Lineitems[i]
		if l.ShipDate < p.StartDate || l.ShipDate >= end {
			continue
		}
		if l.Discount < lo-eps || l.Discount > hi+eps {
			continue
		}
		if l.Quantity >= p.Quantity {
			continue
		}
		revenue += l.ExtendedPrice * l.Discount
	}
	return revenue
}
