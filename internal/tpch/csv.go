package tpch

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV export of the generated population, for feeding real external
// engines or inspecting the data. Column names follow the TPC-H
// convention (table-prefix abbreviations, lower case).

// CSVTables lists the exportable tables.
var CSVTables = []string{
	"region", "nation", "customer", "orders", "lineitem", "part", "supplier", "partsupp",
}

// WriteCSV streams one table as RFC-4180 CSV with a header row.
func (db *Database) WriteCSV(table string, w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	write := func(rec []string) error { return cw.Write(rec) }

	i64 := func(v int32) string { return strconv.FormatInt(int64(v), 10) }
	f64 := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

	switch table {
	case "region":
		if err := write([]string{"r_regionkey", "r_name"}); err != nil {
			return err
		}
		for _, r := range db.Regions {
			if err := write([]string{i64(r.RegionKey), r.Name}); err != nil {
				return err
			}
		}
	case "nation":
		if err := write([]string{"n_nationkey", "n_name", "n_regionkey"}); err != nil {
			return err
		}
		for _, n := range db.Nations {
			if err := write([]string{i64(n.NationKey), n.Name, i64(n.RegionKey)}); err != nil {
				return err
			}
		}
	case "customer":
		if err := write([]string{"c_custkey", "c_name", "c_nationkey", "c_acctbal", "c_mktsegment"}); err != nil {
			return err
		}
		for i := range db.Customers {
			c := &db.Customers[i]
			if err := write([]string{i64(c.CustKey), c.Name, i64(c.NationKey), f64(c.AcctBal), c.MktSegment}); err != nil {
				return err
			}
		}
	case "orders":
		if err := write([]string{"o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice", "o_orderdate", "o_orderpriority", "o_comment"}); err != nil {
			return err
		}
		for i := range db.Orders {
			o := &db.Orders[i]
			if err := write([]string{
				i64(o.OrderKey), i64(o.CustKey), string(o.OrderStatus),
				f64(o.TotalPrice), o.OrderDate.String(), o.OrderPriority, o.Comment,
			}); err != nil {
				return err
			}
		}
	case "lineitem":
		if err := write([]string{
			"l_orderkey", "l_partkey", "l_suppkey", "l_linenumber", "l_quantity",
			"l_extendedprice", "l_discount", "l_tax", "l_returnflag", "l_linestatus",
			"l_shipdate", "l_commitdate", "l_receiptdate", "l_shipinstruct", "l_shipmode",
		}); err != nil {
			return err
		}
		for i := range db.Lineitems {
			l := &db.Lineitems[i]
			if err := write([]string{
				i64(l.OrderKey), i64(l.PartKey), i64(l.SuppKey), i64(l.LineNumber),
				f64(l.Quantity), f64(l.ExtendedPrice), f64(l.Discount), f64(l.Tax),
				string(l.ReturnFlag), string(l.LineStatus),
				l.ShipDate.String(), l.CommitDate.String(), l.ReceiptDate.String(),
				l.ShipInstruct, l.ShipMode,
			}); err != nil {
				return err
			}
		}
	case "part":
		if err := write([]string{"p_partkey", "p_name", "p_mfgr", "p_brand", "p_type", "p_size", "p_container", "p_retailprice"}); err != nil {
			return err
		}
		for i := range db.Parts {
			p := &db.Parts[i]
			if err := write([]string{
				i64(p.PartKey), p.Name, p.Mfgr, p.Brand, p.Type,
				i64(p.Size), p.Container, f64(p.RetailPrice),
			}); err != nil {
				return err
			}
		}
	case "supplier":
		if err := write([]string{"s_suppkey", "s_name", "s_nationkey"}); err != nil {
			return err
		}
		for i := range db.Suppliers {
			s := &db.Suppliers[i]
			if err := write([]string{i64(s.SuppKey), s.Name, i64(s.NationKey)}); err != nil {
				return err
			}
		}
	case "partsupp":
		if err := write([]string{"ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"}); err != nil {
			return err
		}
		for i := range db.PartSupps {
			ps := &db.PartSupps[i]
			if err := write([]string{i64(ps.PartKey), i64(ps.SuppKey), i64(ps.AvailQty), f64(ps.SupplyCost)}); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("tpch: unknown table %q", table)
	}
	cw.Flush()
	return cw.Error()
}
