// Package tpch is a pure-Go, deterministic implementation of the TPC-H
// decision-support benchmark schema and data generator, scoped to what
// the paper's evaluation needs: the eight standard tables at a
// configurable scale factor and the four two-table queries the paper
// studies (Q12, Q13, Q14, Q17), each with a straightforward reference
// implementation that serves as ground truth for the query engines.
//
// Dates are stored as days since 1992-01-01 (the earliest date in the
// TPC-H population) so rows stay compact and comparisons stay integer.
package tpch

import (
	"fmt"
	"time"
)

// Epoch is day zero of the Date encoding.
var Epoch = time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)

// Date is a day offset from Epoch.
type Date int32

// MakeDate converts a calendar date to its Date offset.
func MakeDate(year, month, day int) Date {
	t := time.Date(year, time.Month(month), day, 0, 0, 0, 0, time.UTC)
	return Date(t.Sub(Epoch).Hours() / 24)
}

// Time converts back to a time.Time.
func (d Date) Time() time.Time { return Epoch.AddDate(0, 0, int(d)) }

// String renders as YYYY-MM-DD.
func (d Date) String() string { return d.Time().Format("2006-01-02") }

// AddDays returns d shifted by n days.
func (d Date) AddDays(n int) Date { return d + Date(n) }

// AddMonths returns d shifted by n calendar months.
func (d Date) AddMonths(n int) Date {
	t := d.Time().AddDate(0, n, 0)
	return Date(t.Sub(Epoch).Hours() / 24)
}

// AddYears returns d shifted by n calendar years.
func (d Date) AddYears(n int) Date {
	t := d.Time().AddDate(n, 0, 0)
	return Date(t.Sub(Epoch).Hours() / 24)
}

// Region mirrors TPC-H REGION.
type Region struct {
	RegionKey int32
	Name      string
}

// Nation mirrors TPC-H NATION.
type Nation struct {
	NationKey int32
	Name      string
	RegionKey int32
}

// Customer mirrors the TPC-H CUSTOMER columns the studied queries touch.
type Customer struct {
	CustKey    int32
	Name       string
	NationKey  int32
	AcctBal    float64
	MktSegment string
}

// Order mirrors TPC-H ORDERS.
type Order struct {
	OrderKey      int32
	CustKey       int32
	OrderStatus   byte
	TotalPrice    float64
	OrderDate     Date
	OrderPriority string
	Comment       string
}

// Lineitem mirrors TPC-H LINEITEM.
type Lineitem struct {
	OrderKey      int32
	PartKey       int32
	SuppKey       int32
	LineNumber    int32
	Quantity      float64
	ExtendedPrice float64
	Discount      float64
	Tax           float64
	ReturnFlag    byte
	LineStatus    byte
	ShipDate      Date
	CommitDate    Date
	ReceiptDate   Date
	ShipInstruct  string
	ShipMode      string
}

// Part mirrors TPC-H PART.
type Part struct {
	PartKey     int32
	Name        string
	Mfgr        string
	Brand       string
	Type        string
	Size        int32
	Container   string
	RetailPrice float64
}

// Supplier mirrors TPC-H SUPPLIER.
type Supplier struct {
	SuppKey   int32
	Name      string
	NationKey int32
}

// PartSupp mirrors TPC-H PARTSUPP.
type PartSupp struct {
	PartKey    int32
	SuppKey    int32
	AvailQty   int32
	SupplyCost float64
}

// Database holds one generated TPC-H population.
type Database struct {
	SF        float64
	Regions   []Region
	Nations   []Nation
	Customers []Customer
	Orders    []Order
	Lineitems []Lineitem
	Parts     []Part
	Suppliers []Supplier
	PartSupps []PartSupp
}

// approxRowBytes are the canonical average row widths (bytes) from the
// TPC-H specification, used to size tables without materializing text
// padding.
var approxRowBytes = map[string]float64{
	"region":   124,
	"nation":   128,
	"customer": 179,
	"orders":   104,
	"lineitem": 112,
	"part":     155,
	"supplier": 159,
	"partsupp": 144,
}

// TableBytes returns the approximate serialized size of a table in this
// database, for the cost features the estimators regress on.
func (db *Database) TableBytes(table string) (float64, error) {
	w, ok := approxRowBytes[table]
	if !ok {
		return 0, fmt.Errorf("tpch: unknown table %q", table)
	}
	var n int
	switch table {
	case "region":
		n = len(db.Regions)
	case "nation":
		n = len(db.Nations)
	case "customer":
		n = len(db.Customers)
	case "orders":
		n = len(db.Orders)
	case "lineitem":
		n = len(db.Lineitems)
	case "part":
		n = len(db.Parts)
	case "supplier":
		n = len(db.Suppliers)
	case "partsupp":
		n = len(db.PartSupps)
	}
	return w * float64(n), nil
}

// TableRows returns the row count of a table.
func (db *Database) TableRows(table string) (int, error) {
	switch table {
	case "region":
		return len(db.Regions), nil
	case "nation":
		return len(db.Nations), nil
	case "customer":
		return len(db.Customers), nil
	case "orders":
		return len(db.Orders), nil
	case "lineitem":
		return len(db.Lineitems), nil
	case "part":
		return len(db.Parts), nil
	case "supplier":
		return len(db.Suppliers), nil
	case "partsupp":
		return len(db.PartSupps), nil
	}
	return 0, fmt.Errorf("tpch: unknown table %q", table)
}

// TotalBytes returns the approximate size of the whole database.
func (db *Database) TotalBytes() float64 {
	var total float64
	for table := range approxRowBytes {
		b, err := db.TableBytes(table)
		if err == nil {
			total += b
		}
	}
	return total
}
