package tpch

import (
	"strings"
	"testing"
	"testing/quick"
)

func genSmall(t *testing.T, sf float64, seed int64) *Database {
	t.Helper()
	db, err := Generate(sf, GenOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestDateRoundTrip(t *testing.T) {
	d := MakeDate(1994, 1, 1)
	if got := d.String(); got != "1994-01-01" {
		t.Errorf("String = %q, want 1994-01-01", got)
	}
	if MakeDate(1992, 1, 1) != 0 {
		t.Error("epoch date should encode as 0")
	}
	if d.AddDays(31) != MakeDate(1994, 2, 1) {
		t.Error("AddDays(31) across January is wrong")
	}
	if d.AddMonths(1) != MakeDate(1994, 2, 1) {
		t.Error("AddMonths(1) wrong")
	}
	if d.AddYears(1) != MakeDate(1995, 1, 1) {
		t.Error("AddYears(1) wrong")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(0, GenOptions{}); err == nil {
		t.Error("SF=0 accepted")
	}
	if _, err := Generate(-1, GenOptions{}); err == nil {
		t.Error("negative SF accepted")
	}
}

func TestGenerateRowCountsScale(t *testing.T) {
	db := genSmall(t, 0.01, 1)
	if got, want := len(db.Customers), 1500; got != want {
		t.Errorf("customers = %d, want %d", got, want)
	}
	if got, want := len(db.Orders), 15000; got != want {
		t.Errorf("orders = %d, want %d", got, want)
	}
	if got, want := len(db.Parts), 2000; got != want {
		t.Errorf("parts = %d, want %d", got, want)
	}
	if got, want := len(db.Suppliers), 100; got != want {
		t.Errorf("suppliers = %d, want %d", got, want)
	}
	if got, want := len(db.PartSupps), 8000; got != want {
		t.Errorf("partsupps = %d, want %d", got, want)
	}
	if len(db.Regions) != 5 || len(db.Nations) != 25 {
		t.Errorf("regions/nations = %d/%d, want 5/25", len(db.Regions), len(db.Nations))
	}
	// ~4 lineitems per order on average (1..7 uniform).
	ratio := float64(len(db.Lineitems)) / float64(len(db.Orders))
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("lineitems per order = %v, want ≈4", ratio)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genSmall(t, 0.002, 42)
	b := genSmall(t, 0.002, 42)
	if len(a.Lineitems) != len(b.Lineitems) {
		t.Fatal("same-seed generations differ in size")
	}
	for i := range a.Lineitems {
		if a.Lineitems[i] != b.Lineitems[i] {
			t.Fatalf("lineitem %d differs between same-seed runs", i)
		}
	}
	c := genSmall(t, 0.002, 43)
	same := true
	for i := range a.Lineitems {
		if i >= len(c.Lineitems) || a.Lineitems[i] != c.Lineitems[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestReferentialIntegrity(t *testing.T) {
	db := genSmall(t, 0.005, 2)
	orderKeys := make(map[int32]bool, len(db.Orders))
	for _, o := range db.Orders {
		orderKeys[o.OrderKey] = true
		if o.CustKey < 1 || int(o.CustKey) > len(db.Customers) {
			t.Fatalf("order %d references missing customer %d", o.OrderKey, o.CustKey)
		}
	}
	for _, l := range db.Lineitems {
		if !orderKeys[l.OrderKey] {
			t.Fatalf("lineitem references missing order %d", l.OrderKey)
		}
		if l.PartKey < 1 || int(l.PartKey) > len(db.Parts) {
			t.Fatalf("lineitem references missing part %d", l.PartKey)
		}
		if l.SuppKey < 1 || int(l.SuppKey) > len(db.Suppliers) {
			t.Fatalf("lineitem references missing supplier %d", l.SuppKey)
		}
	}
	for _, n := range db.Nations {
		if n.RegionKey < 0 || int(n.RegionKey) >= len(db.Regions) {
			t.Fatalf("nation %s references missing region %d", n.Name, n.RegionKey)
		}
	}
}

func TestLineitemDateOrdering(t *testing.T) {
	db := genSmall(t, 0.003, 3)
	for _, l := range db.Lineitems {
		if l.ReceiptDate <= l.ShipDate {
			t.Fatalf("receipt %v not after ship %v", l.ReceiptDate, l.ShipDate)
		}
	}
}

func TestTableBytesAndRows(t *testing.T) {
	db := genSmall(t, 0.01, 4)
	b, err := db.TableBytes("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if b <= 0 {
		t.Error("lineitem bytes not positive")
	}
	n, err := db.TableRows("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if n != len(db.Lineitems) {
		t.Errorf("TableRows = %d, want %d", n, len(db.Lineitems))
	}
	if _, err := db.TableBytes("nope"); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := db.TableRows("nope"); err == nil {
		t.Error("unknown table accepted")
	}
	if db.TotalBytes() <= b {
		t.Error("TotalBytes should exceed a single table")
	}
	// SF 0.1 should be on the order of 100 MB: check scaling holds
	// within a loose factor using SF ratios instead of regenerating.
	perSF := db.TotalBytes() / 0.01
	if perSF < 0.5e9 || perSF > 2e9 {
		t.Errorf("extrapolated SF-1 size = %.2e bytes, want ≈1e9", perSF)
	}
}

func TestQ12Reference(t *testing.T) {
	db := genSmall(t, 0.01, 5)
	rows := Q12(db, DefaultQ12Params())
	if len(rows) == 0 || len(rows) > 2 {
		t.Fatalf("Q12 returned %d groups, want 1–2 (MAIL, SHIP)", len(rows))
	}
	for i, r := range rows {
		if r.ShipMode != "MAIL" && r.ShipMode != "SHIP" {
			t.Errorf("unexpected group %q", r.ShipMode)
		}
		if r.HighLineCount < 0 || r.LowLineCount < 0 || r.HighLineCount+r.LowLineCount == 0 {
			t.Errorf("group %q has empty counts", r.ShipMode)
		}
		if i > 0 && rows[i-1].ShipMode >= r.ShipMode {
			t.Error("Q12 output not sorted by shipmode")
		}
		// Priorities split roughly 2:3 (2 of 5 priorities are high).
		frac := float64(r.HighLineCount) / float64(r.HighLineCount+r.LowLineCount)
		if frac < 0.25 || frac > 0.55 {
			t.Errorf("group %q high fraction = %v, want ≈0.4", r.ShipMode, frac)
		}
	}
}

func TestQ13Reference(t *testing.T) {
	db := genSmall(t, 0.01, 6)
	rows := Q13(db, DefaultQ13Params())
	if len(rows) == 0 {
		t.Fatal("Q13 returned no groups")
	}
	var custSum int64
	for i, r := range rows {
		custSum += r.CustDist
		if i > 0 {
			prev := rows[i-1]
			if prev.CustDist < r.CustDist ||
				(prev.CustDist == r.CustDist && prev.CCount < r.CCount) {
				t.Error("Q13 output not sorted by (custdist desc, c_count desc)")
			}
		}
	}
	// Every customer lands in exactly one bucket.
	if custSum != int64(len(db.Customers)) {
		t.Errorf("Q13 distributes %d customers, want %d", custSum, len(db.Customers))
	}
}

func TestQ13ExcludesFilteredComments(t *testing.T) {
	db := genSmall(t, 0.01, 7)
	withFilter := Q13(db, DefaultQ13Params())
	withoutFilter := Q13(db, Q13Params{Word1: "zz", Word2: "zz"})
	// The filter removes ~5% of orders, so the zero-order bucket (or low
	// buckets) must differ.
	same := len(withFilter) == len(withoutFilter)
	if same {
		for i := range withFilter {
			if withFilter[i] != withoutFilter[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("comment filter had no effect on Q13")
	}
}

func TestMatchesLikePattern(t *testing.T) {
	cases := []struct {
		s    string
		want bool
	}{
		{"foo special bar requests baz", true},
		{"special requests", true},
		{"specialrequests", true},
		{"requests special", false}, // order matters
		{"special only", false},
		{"nothing here", false},
	}
	for _, c := range cases {
		if got := matchesLikePattern(c.s, "special", "requests"); got != c.want {
			t.Errorf("matchesLikePattern(%q) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestQ14Reference(t *testing.T) {
	db := genSmall(t, 0.01, 8)
	promo := Q14(db, DefaultQ14Params())
	// PROMO is 1 of 6 first type syllables → ≈16.7%.
	if promo < 5 || promo > 35 {
		t.Errorf("Q14 promo revenue = %v%%, want ≈16.7%%", promo)
	}
	// Manual cross-check on the filtered month.
	p := DefaultQ14Params()
	end := p.StartDate.AddMonths(1)
	types := make(map[int32]string)
	for _, pt := range db.Parts {
		types[pt.PartKey] = pt.Type
	}
	var promoRev, totalRev float64
	for _, l := range db.Lineitems {
		if l.ShipDate < p.StartDate || l.ShipDate >= end {
			continue
		}
		rev := l.ExtendedPrice * (1 - l.Discount)
		totalRev += rev
		if strings.HasPrefix(types[l.PartKey], "PROMO") {
			promoRev += rev
		}
	}
	want := 100 * promoRev / totalRev
	if diff := promo - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Q14 = %v, manual = %v", promo, want)
	}
}

func TestQ17Reference(t *testing.T) {
	db := genSmall(t, 0.02, 9)
	rev := Q17(db, DefaultQ17Params())
	if rev < 0 {
		t.Errorf("Q17 revenue = %v, want ≥ 0", rev)
	}
	// A brand/container combination that cannot exist returns 0.
	if got := Q17(db, Q17Params{Brand: "Brand#99", Container: "XX YY"}); got != 0 {
		t.Errorf("impossible filter returned %v, want 0", got)
	}
}

func TestQueryIDMetadata(t *testing.T) {
	for _, q := range AllQueries {
		l, r := q.Tables()
		if l == "" || r == "" {
			t.Errorf("%v has no tables", q)
		}
		if q.String() == "Q?" {
			t.Errorf("%v has no name", q)
		}
	}
	if QueryID(99).String() != "Q?" {
		t.Error("unknown query should render Q?")
	}
	l, r := QueryID(99).Tables()
	if l != "" || r != "" {
		t.Error("unknown query should have no tables")
	}
}

func TestPropertyGeneratorScalesMonotonically(t *testing.T) {
	f := func(a, b uint8) bool {
		sfA := float64(a%50+1) / 1000
		sfB := float64(b%50+1) / 1000
		if sfA > sfB {
			sfA, sfB = sfB, sfA
		}
		dbA, err := Generate(sfA, GenOptions{Seed: 1})
		if err != nil {
			return false
		}
		dbB, err := Generate(sfB, GenOptions{Seed: 1})
		if err != nil {
			return false
		}
		return len(dbA.Orders) <= len(dbB.Orders) &&
			len(dbA.Customers) <= len(dbB.Customers) &&
			len(dbA.Parts) <= len(dbB.Parts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
