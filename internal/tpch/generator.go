package tpch

import (
	"fmt"

	"repro/internal/stats"
)

// Row-count bases from the TPC-H specification (scale factor 1).
const (
	baseCustomers = 150_000
	baseOrders    = 1_500_000
	basePart      = 200_000
	baseSupplier  = 10_000
)

// ShipModes are the seven TPC-H shipping modes (Q12 groups on these).
var ShipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}

// OrderPriorities are the five TPC-H priorities (Q12 splits on urgency).
var OrderPriorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}

// Containers and Brands/Types use the spec's generative vocabulary.
var (
	containerSizes  = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
	containerShapes = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}
	typeSyllable1   = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyllable2   = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyllable3   = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	segments        = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	shipInstructs   = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	regionNames     = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames     = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
		"GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
		"MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
		"VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
	}
	nationRegion = []int32{0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1}
	commentWords = []string{
		"furiously", "quickly", "carefully", "blithely", "slyly", "express",
		"pending", "final", "regular", "special", "requests", "deposits",
		"accounts", "packages", "ideas", "theodolites", "instructions", "foxes",
	}
)

// GenOptions tunes the generator beyond the scale factor.
type GenOptions struct {
	// Seed controls every random column; the same (SF, Seed) pair
	// always produces the identical database.
	Seed int64
}

// Generate builds a TPC-H population at the given scale factor.
// SF = 1 corresponds to roughly 1 GB (≈8.6M rows across tables);
// the paper's datasets are SF 0.1 (100 MB) and SF 1 (1 GB).
func Generate(sf float64, opts GenOptions) (*Database, error) {
	if sf <= 0 {
		return nil, fmt.Errorf("tpch: non-positive scale factor %v", sf)
	}
	rng := stats.NewRNG(opts.Seed)
	db := &Database{SF: sf}

	db.Regions = make([]Region, len(regionNames))
	for i, name := range regionNames {
		db.Regions[i] = Region{RegionKey: int32(i), Name: name}
	}
	db.Nations = make([]Nation, len(nationNames))
	for i, name := range nationNames {
		db.Nations[i] = Nation{NationKey: int32(i), Name: name, RegionKey: nationRegion[i]}
	}

	nCust := scaled(baseCustomers, sf)
	nOrders := scaled(baseOrders, sf)
	nPart := scaled(basePart, sf)
	nSupp := scaled(baseSupplier, sf)

	db.Customers = make([]Customer, nCust)
	for i := range db.Customers {
		db.Customers[i] = Customer{
			CustKey:    int32(i + 1),
			Name:       fmt.Sprintf("Customer#%09d", i+1),
			NationKey:  int32(rng.Intn(len(nationNames))),
			AcctBal:    rng.Uniform(-999.99, 9999.99),
			MktSegment: segments[rng.Intn(len(segments))],
		}
	}

	db.Suppliers = make([]Supplier, nSupp)
	for i := range db.Suppliers {
		db.Suppliers[i] = Supplier{
			SuppKey:   int32(i + 1),
			Name:      fmt.Sprintf("Supplier#%09d", i+1),
			NationKey: int32(rng.Intn(len(nationNames))),
		}
	}

	db.Parts = make([]Part, nPart)
	for i := range db.Parts {
		mfgr := rng.Intn(5) + 1
		brand := mfgr*10 + rng.Intn(5) + 1
		db.Parts[i] = Part{
			PartKey: int32(i + 1),
			Name:    fmt.Sprintf("part %d", i+1),
			Mfgr:    fmt.Sprintf("Manufacturer#%d", mfgr),
			Brand:   fmt.Sprintf("Brand#%d", brand),
			Type: typeSyllable1[rng.Intn(len(typeSyllable1))] + " " +
				typeSyllable2[rng.Intn(len(typeSyllable2))] + " " +
				typeSyllable3[rng.Intn(len(typeSyllable3))],
			Size: int32(rng.Intn(50) + 1),
			Container: containerSizes[rng.Intn(len(containerSizes))] + " " +
				containerShapes[rng.Intn(len(containerShapes))],
			RetailPrice: 900 + float64((i+1)%200)/10 + rng.Uniform(0, 100),
		}
	}

	db.PartSupps = make([]PartSupp, 0, nPart*4)
	for i := 0; i < nPart; i++ {
		for s := 0; s < 4; s++ {
			db.PartSupps = append(db.PartSupps, PartSupp{
				PartKey:    int32(i + 1),
				SuppKey:    int32(rng.Intn(nSupp) + 1),
				AvailQty:   int32(rng.Intn(9999) + 1),
				SupplyCost: rng.Uniform(1, 1000),
			})
		}
	}

	// Orders span 1992-01-01 .. 1998-08-02 per the spec.
	lastOrderDay := int(MakeDate(1998, 8, 2))
	db.Orders = make([]Order, nOrders)
	db.Lineitems = make([]Lineitem, 0, nOrders*4)
	statuses := []byte{'F', 'O', 'P'}
	for i := range db.Orders {
		od := Date(rng.Intn(lastOrderDay + 1))
		o := Order{
			OrderKey:      int32(i + 1),
			CustKey:       int32(rng.Intn(nCust) + 1),
			OrderStatus:   statuses[rng.Intn(len(statuses))],
			OrderDate:     od,
			OrderPriority: OrderPriorities[rng.Intn(len(OrderPriorities))],
			Comment:       genComment(rng),
		}
		nLines := rng.Intn(7) + 1
		var total float64
		for ln := 0; ln < nLines; ln++ {
			qty := float64(rng.Intn(50) + 1)
			price := qty * rng.Uniform(900, 1100)
			ship := od.AddDays(rng.Intn(121) + 1)
			commit := od.AddDays(rng.Intn(91) + 30)
			receipt := ship.AddDays(rng.Intn(30) + 1)
			li := Lineitem{
				OrderKey:      o.OrderKey,
				PartKey:       int32(rng.Intn(nPart) + 1),
				SuppKey:       int32(rng.Intn(nSupp) + 1),
				LineNumber:    int32(ln + 1),
				Quantity:      qty,
				ExtendedPrice: price,
				Discount:      float64(rng.Intn(11)) / 100,
				Tax:           float64(rng.Intn(9)) / 100,
				ReturnFlag:    returnFlag(rng, receipt),
				LineStatus:    lineStatus(ship),
				ShipDate:      ship,
				CommitDate:    commit,
				ReceiptDate:   receipt,
				ShipInstruct:  shipInstructs[rng.Intn(len(shipInstructs))],
				ShipMode:      ShipModes[rng.Intn(len(ShipModes))],
			}
			total += li.ExtendedPrice * (1 - li.Discount) * (1 + li.Tax)
			db.Lineitems = append(db.Lineitems, li)
		}
		o.TotalPrice = total
		db.Orders[i] = o
	}
	return db, nil
}

// scaled returns max(1, base·sf).
func scaled(base int, sf float64) int {
	n := int(float64(base) * sf)
	if n < 1 {
		n = 1
	}
	return n
}

// genComment emits a short pseudo-text comment; ~5% of order comments
// contain the "special … requests" pattern Q13 filters out, mirroring
// the selectivity of the spec's text grammar.
func genComment(rng *stats.RNG) string {
	if rng.Bernoulli(0.05) {
		return commentWords[rng.Intn(len(commentWords))] + " special " +
			commentWords[rng.Intn(len(commentWords))] + " requests"
	}
	a := commentWords[rng.Intn(len(commentWords))]
	b := commentWords[rng.Intn(len(commentWords))]
	c := commentWords[rng.Intn(len(commentWords))]
	return a + " " + b + " " + c
}

func returnFlag(rng *stats.RNG, receipt Date) byte {
	if receipt <= MakeDate(1995, 6, 17) {
		if rng.Bernoulli(0.5) {
			return 'R'
		}
		return 'A'
	}
	return 'N'
}

func lineStatus(ship Date) byte {
	if ship > MakeDate(1995, 6, 17) {
		return 'O'
	}
	return 'F'
}
