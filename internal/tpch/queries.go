package tpch

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// The paper studies the four TPC-H queries that join exactly two
// tables — Q12 (lineitem ⋈ orders), Q13 (customer ⟕ orders),
// Q14 and Q17 (lineitem ⋈ part) — because each query's tables can live
// in different engines/clouds. The functions below are direct,
// loop-based reference implementations used as ground truth for the
// query engines and as the federation's "logical query" definitions.

// Q12Params are the substitution parameters of TPC-H Q12.
type Q12Params struct {
	ShipModes []string // two modes; default MAIL, SHIP
	StartDate Date     // default 1994-01-01
}

// DefaultQ12Params returns the spec's validation parameters.
func DefaultQ12Params() Q12Params {
	return Q12Params{ShipModes: []string{"MAIL", "SHIP"}, StartDate: MakeDate(1994, 1, 1)}
}

// Q12Row is one output group of Q12.
type Q12Row struct {
	ShipMode      string
	HighLineCount int64
	LowLineCount  int64
}

// Q12 computes "Shipping Modes and Order Priority".
func Q12(db *Database, p Q12Params) []Q12Row {
	end := p.StartDate.AddYears(1)
	modes := make(map[string]bool, len(p.ShipModes))
	for _, m := range p.ShipModes {
		modes[m] = true
	}
	prio := make(map[int32]string, len(db.Orders))
	for _, o := range db.Orders {
		prio[o.OrderKey] = o.OrderPriority
	}
	groups := make(map[string]*Q12Row)
	for i := range db.Lineitems {
		l := &db.Lineitems[i]
		if !modes[l.ShipMode] ||
			l.CommitDate >= l.ReceiptDate ||
			l.ShipDate >= l.CommitDate ||
			l.ReceiptDate < p.StartDate || l.ReceiptDate >= end {
			continue
		}
		op, ok := prio[l.OrderKey]
		if !ok {
			continue
		}
		g := groups[l.ShipMode]
		if g == nil {
			g = &Q12Row{ShipMode: l.ShipMode}
			groups[l.ShipMode] = g
		}
		if op == "1-URGENT" || op == "2-HIGH" {
			g.HighLineCount++
		} else {
			g.LowLineCount++
		}
	}
	out := make([]Q12Row, 0, len(groups))
	for _, g := range groups {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ShipMode < out[j].ShipMode })
	return out
}

// Q13Params are the substitution parameters of TPC-H Q13.
type Q13Params struct {
	Word1, Word2 string // default "special", "requests"
}

// DefaultQ13Params returns the spec's validation parameters.
func DefaultQ13Params() Q13Params { return Q13Params{Word1: "special", Word2: "requests"} }

// Q13Row is one output group of Q13.
type Q13Row struct {
	CCount   int64 // orders per customer
	CustDist int64 // customers with that many orders
}

// Q13 computes "Customer Distribution": the histogram of per-customer
// order counts, excluding orders whose comment matches
// %word1%word2%.
func Q13(db *Database, p Q13Params) []Q13Row {
	perCust := make(map[int32]int64, len(db.Customers))
	for _, c := range db.Customers {
		perCust[c.CustKey] = 0
	}
	for i := range db.Orders {
		o := &db.Orders[i]
		if matchesLikePattern(o.Comment, p.Word1, p.Word2) {
			continue
		}
		if _, ok := perCust[o.CustKey]; ok {
			perCust[o.CustKey]++
		}
	}
	hist := make(map[int64]int64)
	for _, n := range perCust {
		hist[n]++
	}
	out := make([]Q13Row, 0, len(hist))
	for c, d := range hist {
		out = append(out, Q13Row{CCount: c, CustDist: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CustDist != out[j].CustDist {
			return out[i].CustDist > out[j].CustDist
		}
		return out[i].CCount > out[j].CCount
	})
	return out
}

// matchesLikePattern implements LIKE '%w1%w2%': w1 somewhere, then w2
// somewhere after it.
func matchesLikePattern(s, w1, w2 string) bool {
	i := strings.Index(s, w1)
	if i < 0 {
		return false
	}
	return strings.Contains(s[i+len(w1):], w2)
}

// Q14Params are the substitution parameters of TPC-H Q14.
type Q14Params struct {
	StartDate Date // default 1995-09-01; window is one month
}

// DefaultQ14Params returns the spec's validation parameters.
func DefaultQ14Params() Q14Params { return Q14Params{StartDate: MakeDate(1995, 9, 1)} }

// Q14 computes "Promotion Effect": the percentage of revenue in the
// month that came from promotional parts.
func Q14(db *Database, p Q14Params) float64 {
	end := p.StartDate.AddMonths(1)
	types := make(map[int32]string, len(db.Parts))
	for _, pt := range db.Parts {
		types[pt.PartKey] = pt.Type
	}
	var promo, total float64
	for i := range db.Lineitems {
		l := &db.Lineitems[i]
		if l.ShipDate < p.StartDate || l.ShipDate >= end {
			continue
		}
		t, ok := types[l.PartKey]
		if !ok {
			continue
		}
		rev := l.ExtendedPrice * (1 - l.Discount)
		total += rev
		if strings.HasPrefix(t, "PROMO") {
			promo += rev
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * promo / total
}

// Q17Params are the substitution parameters of TPC-H Q17.
type Q17Params struct {
	Brand     string // default Brand#23
	Container string // default MED BOX
}

// DefaultQ17Params returns the spec's validation parameters.
func DefaultQ17Params() Q17Params { return Q17Params{Brand: "Brand#23", Container: "MED BOX"} }

// Q17 computes "Small-Quantity-Order Revenue": the average yearly
// revenue lost if small orders (below 20% of a part's average quantity)
// were not filled, over parts of one brand and container.
func Q17(db *Database, p Q17Params) float64 {
	// Candidate parts.
	cand := make(map[int32]bool)
	for i := range db.Parts {
		pt := &db.Parts[i]
		if pt.Brand == p.Brand && pt.Container == p.Container {
			cand[pt.PartKey] = true
		}
	}
	if len(cand) == 0 {
		return 0
	}
	// Per-part average quantity over ALL lineitems of that part.
	sum := make(map[int32]float64)
	cnt := make(map[int32]int64)
	for i := range db.Lineitems {
		l := &db.Lineitems[i]
		if cand[l.PartKey] {
			sum[l.PartKey] += l.Quantity
			cnt[l.PartKey]++
		}
	}
	var revenue float64
	for i := range db.Lineitems {
		l := &db.Lineitems[i]
		if !cand[l.PartKey] || cnt[l.PartKey] == 0 {
			continue
		}
		avg := sum[l.PartKey] / float64(cnt[l.PartKey])
		if l.Quantity < 0.2*avg {
			revenue += l.ExtendedPrice
		}
	}
	return revenue / 7.0
}

// QueryID names the four studied queries.
type QueryID int

// The four two-table queries of the paper's evaluation.
const (
	QueryQ12 QueryID = 12
	QueryQ13 QueryID = 13
	QueryQ14 QueryID = 14
	QueryQ17 QueryID = 17
)

// AllQueries lists the evaluation queries in paper order.
var AllQueries = []QueryID{QueryQ12, QueryQ13, QueryQ14, QueryQ17}

// Tables returns the two tables the query joins, in (left, right) order
// with the larger fact table first.
func (q QueryID) Tables() (string, string) {
	switch q {
	case QueryQ12:
		return "lineitem", "orders"
	case QueryQ13:
		return "orders", "customer"
	case QueryQ14, QueryQ17:
		return "lineitem", "part"
	}
	return "", ""
}

// ParseQueryID resolves a textual query name ("Q12", "q12" or "12") to
// a studied QueryID.
func ParseQueryID(s string) (QueryID, error) {
	t := strings.TrimPrefix(strings.TrimPrefix(strings.TrimSpace(s), "Q"), "q")
	n, err := strconv.Atoi(t)
	if err != nil {
		return 0, fmt.Errorf("tpch: unknown query %q", s)
	}
	for _, q := range AllQueries {
		if QueryID(n) == q {
			return q, nil
		}
	}
	return 0, fmt.Errorf("tpch: unknown query %q (studied: Q12, Q13, Q14, Q17)", s)
}

// String implements fmt.Stringer.
func (q QueryID) String() string {
	switch q {
	case QueryQ12:
		return "Q12"
	case QueryQ13:
		return "Q13"
	case QueryQ14:
		return "Q14"
	case QueryQ17:
		return "Q17"
	}
	return "Q?"
}
