package tpch

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
)

func TestWriteCSVAllTables(t *testing.T) {
	db := genSmall(t, 0.002, 40)
	for _, table := range CSVTables {
		var buf bytes.Buffer
		if err := db.WriteCSV(table, &buf); err != nil {
			t.Fatalf("%s: %v", table, err)
		}
		records, err := csv.NewReader(&buf).ReadAll()
		if err != nil {
			t.Fatalf("%s: re-parse: %v", table, err)
		}
		rows, err := db.TableRows(table)
		if err != nil {
			t.Fatal(err)
		}
		if len(records) != rows+1 { // header + data
			t.Errorf("%s: %d CSV rows, want %d", table, len(records), rows+1)
		}
		width := len(records[0])
		for i, rec := range records {
			if len(rec) != width {
				t.Fatalf("%s: row %d has %d fields, header has %d", table, i, len(rec), width)
			}
		}
	}
}

func TestWriteCSVUnknownTable(t *testing.T) {
	db := genSmall(t, 0.002, 41)
	if err := db.WriteCSV("nope", &bytes.Buffer{}); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestWriteCSVLineitemContent(t *testing.T) {
	db := genSmall(t, 0.002, 42)
	var buf bytes.Buffer
	if err := db.WriteCSV("lineitem", &buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	header := records[0]
	if header[0] != "l_orderkey" || header[len(header)-1] != "l_shipmode" {
		t.Errorf("unexpected header %v", header)
	}
	// Spot-check the first data row against the in-memory value.
	l := db.Lineitems[0]
	row := records[1]
	if row[0] != strconv.FormatInt(int64(l.OrderKey), 10) {
		t.Errorf("orderkey = %s, want %d", row[0], l.OrderKey)
	}
	if !strings.Contains(row[10], "-") {
		t.Errorf("shipdate %q not ISO formatted", row[10])
	}
	if row[14] != l.ShipMode {
		t.Errorf("shipmode = %s, want %s", row[14], l.ShipMode)
	}
}

func TestWriteCSVCommentQuoting(t *testing.T) {
	// Comments may contain spaces; ensure the CSV round-trips them.
	db := genSmall(t, 0.002, 43)
	var buf bytes.Buffer
	if err := db.WriteCSV("orders", &buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if records[1][6] != db.Orders[0].Comment {
		t.Errorf("comment %q does not round-trip (%q)", db.Orders[0].Comment, records[1][6])
	}
}
