package server

// Cluster mode: a midasd process can be one member of a consistent-hash
// sharded cluster. Every node hosts every federation spec, but each
// federation is *active* on exactly one node (its ring owner, possibly
// moved by an override); the others hold cold tenants that answer the
// federation's requests with a 307 redirect to the owner. Clients route
// themselves (GET /v1/cluster), so there is no proxy hop on the hot
// path — the serving loop pays one atomic load per request when
// clustered, nothing when standalone.
//
// Ownership moves two ways:
//
//   - POST /v1/admin/handoff — a live migration. The owner drains the
//     tenant's in-flight requests, checkpoints, streams every query
//     shard (snapshot + WAL suffix, CRC-framed) to the target, and the
//     target activates under a bumped routing epoch. Requests arriving
//     mid-handoff are redirected to the target, which holds them until
//     activation; nobody observes an error.
//   - POST /v1/admin/takeover — disaster recovery. A standby that has
//     been receiving the owner's WAL frames synchronously (see
//     Replicate) promotes itself from the replicated state after the
//     owner dies.
//
// Epochs order routing tables: every mutation bumps the epoch, nodes
// gossip tables after mutations (POST /v1/admin/route), and the higher
// epoch always wins, so a stale node converges on the first gossip or
// redirect it sees.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/histstore"
	"repro/internal/metrics"
	"repro/internal/tpch"
)

// ClusterConfig makes a Server one member of a midasd cluster.
type ClusterConfig struct {
	// NodeID names this member; must appear in Peers.
	NodeID string
	// Peers is the full member set, this node included. Federation
	// names are consistent-hashed over it.
	Peers []cluster.Member
	// VirtualNodes tunes ring balance (0 = cluster.DefaultVirtualNodes).
	VirtualNodes int
	// Replicate ships every owned federation's WAL appends to the
	// federation's standby (the ring's next distinct member)
	// synchronously: an acked write is on the standby before the
	// response leaves, so a SIGKILLed owner loses nothing a takeover
	// cannot serve. When the standby is down, replication degrades to
	// local durability rather than failing writes, and the sync loop
	// re-arms it with a fresh full sync once the standby answers again.
	Replicate bool
	// SyncInterval is the cadence of the standby sync loop (default 2s).
	SyncInterval time.Duration
	// PeerTimeout bounds one peer HTTP call (default 10s).
	PeerTimeout time.Duration
}

func (c *ClusterConfig) setDefaults() {
	if c.SyncInterval <= 0 {
		c.SyncInterval = 2 * time.Second
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 10 * time.Second
	}
}

// Tenant ownership states. The zero value is active so standalone
// servers never touch the state machine.
const (
	// tenantActive: this node owns the federation and serves it.
	tenantActive int32 = iota
	// tenantRemote: another node owns it; requests get 307.
	tenantRemote
	// tenantReceiving: an inbound handoff or takeover is materializing
	// state here; requests are held until activation.
	tenantReceiving
	// tenantSending: an outbound handoff is draining and streaming
	// state away; requests are redirected at the target.
	tenantSending
)

func tenantStateName(st int32) string {
	switch st {
	case tenantActive:
		return "active"
	case tenantRemote:
		return "remote"
	case tenantReceiving:
		return "receiving"
	case tenantSending:
		return "sending"
	}
	return "unknown"
}

// Optional scheduler capabilities the cluster layer drives when
// activating or releasing a tenant; ires.Scheduler implements all
// three, stubs may implement none.
type historyOpener interface {
	OpenHistory(q tpch.QueryID) (*core.History, error)
}

type bootstrapper interface {
	Bootstrap(q tpch.QueryID, n int) error
}

type historyDropper interface {
	DropHistories()
}

// clusterState is the Server's cluster half: node identity, the
// epoch-versioned routing table (atomically swapped, lock-free reads on
// the hot path), per-federation replicators and the peer HTTP client.
type clusterState struct {
	cfg   ClusterConfig
	self  cluster.Member
	table atomic.Pointer[cluster.Table]
	// repl holds one Replicator per federation when Replicate is on;
	// it doubles as each tenant store's histstore.Mirror.
	repl   map[string]*cluster.Replicator
	client *http.Client
	srv    *Server // set by newServer before any request or loop runs

	syncDone chan struct{} // closed when the standby sync loop exits

	redirects      *metrics.Counter
	handoffsOut    *metrics.Counter
	handoffsIn     *metrics.Counter
	takeovers      *metrics.Counter
	syncs          *metrics.Counter
	framesShipped  *metrics.Counter
	replDegradedN  *metrics.Counter
	handoffSeconds *metrics.Histogram
}

// newClusterState validates cfg.Cluster and builds the ring and routing
// table. Returns (nil, nil) when the config carries no cluster section.
func newClusterState(cfg *ClusterConfig) (*clusterState, error) {
	if cfg == nil {
		return nil, nil
	}
	c := *cfg
	c.setDefaults()
	ring, err := cluster.NewRing(c.Peers, c.VirtualNodes)
	if err != nil {
		return nil, fmt.Errorf("server: cluster: %w", err)
	}
	table := cluster.NewTable(ring)
	self, ok := table.Member(c.NodeID)
	if !ok {
		return nil, fmt.Errorf("server: cluster: node id %q is not in the peer set", c.NodeID)
	}
	cs := &clusterState{
		cfg:    c,
		self:   self,
		repl:   make(map[string]*cluster.Replicator),
		client: &http.Client{Timeout: c.PeerTimeout},
	}
	cs.table.Store(table)
	return cs, nil
}

// owns reports whether this node is fed's owner under the current
// table.
func (cs *clusterState) owns(fed string) bool {
	return cs.table.Load().Owner(fed).ID == cs.self.ID
}

// replicating reports whether this cluster ships WAL frames to
// standbys at all (needs a second member to ship to).
func (cs *clusterState) replicating() bool {
	return cs.cfg.Replicate && len(cs.cfg.Peers) > 1
}

// newReplicator builds fed's replicator-mirror: frames ship to
// whichever member the *current* table names as fed's standby.
func (cs *clusterState) newReplicator(fed string) *cluster.Replicator {
	rep := cluster.NewReplicator(func(shard string, from uint64, frames []byte, count int) error {
		standby, ok := cs.table.Load().Standby(fed)
		if !ok {
			return fmt.Errorf("federation %q has no standby", fed)
		}
		url := fmt.Sprintf("%s/v1/admin/replicate?federation=%s&query=%s&from=%d",
			standby.Addr, fed, shard, from)
		if err := cs.post(url, bytes.NewReader(frames)); err != nil {
			return err
		}
		cs.framesShipped.Add(float64(count))
		return nil
	})
	rep.OnDegrade = func(shard string, err error) {
		cs.replDegradedN.Inc()
		cs.srv.log.Warn("replication degraded", "federation", fed, "query", shard, "error", err.Error())
	}
	cs.repl[fed] = rep
	return rep
}

// post issues one peer POST and folds any non-2xx status into an error
// carrying the peer's body (the peers speak ErrorResponse JSON).
func (cs *clusterState) post(url string, body io.Reader) error {
	resp, err := cs.client.Post(url, "application/octet-stream", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("%s: %s: %s", url, resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

// applyOverride pins fed to node in the routing table, bumping the
// epoch to at least minEpoch, and returns the resulting epoch.
// Idempotent: a table that already places fed on node at minEpoch or
// later (the move's gossip beat the local apply) is left untouched, so
// one ownership change bumps the cluster-wide epoch exactly once.
func (cs *clusterState) applyOverride(fed, node string, minEpoch uint64) uint64 {
	for {
		cur := cs.table.Load()
		if cur.Epoch() >= minEpoch && cur.Owner(fed).ID == node {
			return cur.Epoch()
		}
		next, ok := cur.WithOverride(fed, node)
		if !ok {
			return cur.Epoch() // unknown member: keep the table
		}
		next = next.WithEpochAtLeast(minEpoch)
		if cs.table.CompareAndSwap(cur, next) {
			return next.Epoch()
		}
	}
}

// adoptTable installs a gossiped table if its epoch is newer.
func (cs *clusterState) adoptTable(epoch uint64, overrides map[string]string) bool {
	for {
		cur := cs.table.Load()
		if cur.Epoch() >= epoch {
			return false
		}
		if cs.table.CompareAndSwap(cur, cur.WithOverrides(epoch, overrides)) {
			return true
		}
	}
}

// gossip pushes this node's routing table to every other peer,
// best-effort and concurrently; losers of the epoch race simply ignore
// it.
func (cs *clusterState) gossip() {
	tab := cs.table.Load()
	body, _ := json.Marshal(RouteUpdate{Epoch: tab.Epoch(), Overrides: tab.Overrides()})
	for _, m := range tab.Ring().Members() {
		if m.ID == cs.self.ID {
			continue
		}
		go func(addr string) {
			_ = cs.post(addr+"/v1/admin/route", bytes.NewReader(body))
		}(m.Addr)
	}
}

// registerClusterMetrics publishes the midas_cluster_* series.
func (s *Server) registerClusterMetrics() {
	cs := s.cluster
	reg := s.cfg.Metrics
	reg.GaugeFunc("midas_cluster_epoch",
		"Epoch of this node's routing table; cluster-wide agreement means all nodes report the same value.",
		func() float64 { return float64(cs.table.Load().Epoch()) })
	reg.GaugeFunc("midas_cluster_members",
		"Configured cluster members.",
		func() float64 { return float64(len(cs.cfg.Peers)) })
	reg.GaugeFunc("midas_cluster_owned_federations",
		"Federations this node currently serves (tenant state active).",
		func() float64 {
			n := 0
			for _, t := range s.tenants {
				if t.state.Load() == tenantActive {
					n++
				}
			}
			return float64(n)
		})
	cs.redirects = reg.Counter("midas_cluster_redirects_total",
		"Tenant requests answered with a 307 redirect at the owning node.")
	hv := reg.CounterVec("midas_cluster_handoffs_total",
		"Completed tenant handoffs, by this node's role.", "role")
	cs.handoffsOut = hv.With("source")
	cs.handoffsIn = hv.With("target")
	cs.takeovers = reg.Counter("midas_cluster_takeovers_total",
		"Federations this node promoted itself to own after an owner failure.")
	cs.syncs = reg.Counter("midas_cluster_standby_syncs_total",
		"Full shard syncs shipped to standbys (initial arms and re-arms after degrade).")
	cs.framesShipped = reg.Counter("midas_cluster_frames_shipped_total",
		"WAL frames shipped to standbys on the synchronous replication stream.")
	cs.replDegradedN = reg.Counter("midas_cluster_replication_degraded_total",
		"Times a shard's replication stream degraded to local-only durability.")
	cs.handoffSeconds = reg.Histogram("midas_cluster_handoff_seconds",
		"End-to-end duration of outbound tenant handoffs.",
		metrics.ExponentialBuckets(1e-3, 4, 10))
}

// ---------------------------------------------------------------------
// Hot-path routing
// ---------------------------------------------------------------------

// routeTenant is the cluster gate on the submit path. It returns
// (0, true) when the request should be served locally; otherwise the
// response (redirect or hold-timeout error) is already rendered and the
// returned status stands. The caller has already registered the
// request in t.inflight, so an outbound handoff's drain cannot miss it.
func (s *Server) routeTenant(ctx context.Context, sc *serveScratch, t *tenant, resp *bytes.Buffer) (int, bool) {
	for {
		switch st := t.state.Load(); st {
		case tenantActive:
			return 0, true
		case tenantReceiving:
			// An inbound handoff is materializing this tenant here; it
			// completes in milliseconds, so holding the request beats
			// bouncing the client back to a source that is already
			// redirecting forward.
			if !t.waitActive(ctx) {
				return writeErrorBuf(resp, http.StatusServiceUnavailable,
					"federation %q handoff still in progress", t.name), false
			}
		default: // tenantRemote, tenantSending
			return s.writeRedirect(sc, t, resp), false
		}
	}
}

// writeRedirect renders the 307: the owner's submit URL goes in the
// Location header (handleSubmit copies it from the scratch), the body
// says why.
func (s *Server) writeRedirect(sc *serveScratch, t *tenant, resp *bytes.Buffer) int {
	cs := s.cluster
	tab := cs.table.Load()
	owner := tab.Owner(t.name)
	if owner.ID == cs.self.ID {
		// Mid-handoff the table still points here; the hint set when
		// the tenant entered sending names the real destination.
		if m := t.ownerHint.Load(); m != nil {
			owner = *m
		}
	}
	cs.redirects.Inc()
	sc.location = owner.Addr + "/v1/queries"
	return writeErrorBuf(resp, http.StatusTemporaryRedirect,
		"federation %q is served by %s (epoch %d)", t.name, owner.ID, tab.Epoch())
}

// ---------------------------------------------------------------------
// Cluster endpoints
// ---------------------------------------------------------------------

// handleCluster (GET /v1/cluster) serves the routing table clients use
// to send each federation's requests straight to its owner.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	cs := s.cluster
	tab := cs.table.Load()
	resp := ClusterResponse{
		Node:       cs.self.ID,
		Epoch:      tab.Epoch(),
		Members:    tab.Ring().Members(),
		Placements: make(map[string]ClusterPlacement, len(s.tenants)),
	}
	for name, t := range s.tenants {
		p := ClusterPlacement{
			Owner: tab.Owner(name).ID,
			State: tenantStateName(t.state.Load()),
		}
		if standby, ok := tab.Standby(name); ok {
			p.Standby = standby.ID
		}
		resp.Placements[name] = p
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleReadyz (GET /readyz) is the load-balancer readiness probe:
// false while draining and while any tenant handoff is in flight on
// this node. Liveness stays on /healthz.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if s.cluster != nil {
		for name, t := range s.tenants {
			if st := t.state.Load(); st == tenantReceiving || st == tenantSending {
				writeJSON(w, http.StatusServiceUnavailable,
					map[string]string{"status": "handoff", "federation": name})
				return
			}
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleRoute (POST /v1/admin/route) is table gossip: adopt the body's
// table if its epoch beats ours, answer with whichever table survived.
func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	var upd RouteUpdate
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&upd); err != nil {
		writeError(w, http.StatusBadRequest, "bad route update: %v", err)
		return
	}
	s.cluster.adoptTable(upd.Epoch, upd.Overrides)
	tab := s.cluster.table.Load()
	writeJSON(w, http.StatusOK, RouteUpdate{Epoch: tab.Epoch(), Overrides: tab.Overrides()})
}

// handleReplicate (POST /v1/admin/replicate?federation=&query=&from=)
// appends the body's raw WAL frames to the named shard's replica log —
// the standby half of synchronous replication. 409 on a sequence gap
// tells the owner to degrade and re-arm with a full sync.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	t, q, ok := s.clusterShardParams(w, r)
	if !ok {
		return
	}
	if t.state.Load() == tenantActive {
		writeError(w, http.StatusConflict, "federation %q is active on this node", t.name)
		return
	}
	if t.store == nil {
		writeError(w, http.StatusBadRequest, "federation %q has no durable store", t.name)
		return
	}
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad from sequence: %v", err)
		return
	}
	frames, err := io.ReadAll(http.MaxBytesReader(w, r.Body, int64(maxShipBytes)))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading frames: %v", err)
		return
	}
	next, err := t.store.AppendReplicaFrames(q.String(), from, frames)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, histstore.ErrReplicaGap) {
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ReplicateResponse{Next: next})
}

// maxShipBytes bounds one replication or handoff section body (1 GiB,
// matching histstore's stream section limit).
const maxShipBytes = 1 << 30

// clusterShardParams resolves the federation and query parameters
// shared by the shard-granular cluster endpoints.
func (s *Server) clusterShardParams(w http.ResponseWriter, r *http.Request) (*tenant, tpch.QueryID, bool) {
	t, ok := s.tenants[r.URL.Query().Get("federation")]
	if !ok {
		writeError(w, http.StatusNotFound, "server: unknown federation %q", r.URL.Query().Get("federation"))
		return nil, 0, false
	}
	q, err := tpch.ParseQueryID(r.URL.Query().Get("query"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, 0, false
	}
	if !t.queries[q] {
		writeError(w, http.StatusBadRequest, "federation %q does not serve %v", t.name, q)
		return nil, 0, false
	}
	return t, q, true
}

// ---------------------------------------------------------------------
// Handoff: source side
// ---------------------------------------------------------------------

// handleHandoff (POST /v1/admin/handoff?federation=&target=) is the
// operator entry point for a live migration, addressed to the current
// owner.
func (s *Server) handleHandoff(w http.ResponseWriter, r *http.Request) {
	cs := s.cluster
	fed := r.URL.Query().Get("federation")
	t, ok := s.tenants[fed]
	if !ok {
		writeError(w, http.StatusNotFound, "server: unknown federation %q", fed)
		return
	}
	target, ok := cs.table.Load().Member(r.URL.Query().Get("target"))
	if !ok {
		writeError(w, http.StatusBadRequest, "unknown target node %q", r.URL.Query().Get("target"))
		return
	}
	if target.ID == cs.self.ID {
		writeError(w, http.StatusBadRequest, "federation %q is already served here", fed)
		return
	}
	began := time.Now()
	epoch, moved, err := s.handoffTenant(r.Context(), t, target)
	if err != nil {
		status := http.StatusInternalServerError
		if t.state.Load() != tenantSending && t.state.Load() != tenantActive {
			status = http.StatusConflict
		}
		writeError(w, status, "handoff of %q to %s failed: %v", fed, target.ID, err)
		return
	}
	cs.handoffsOut.Inc()
	cs.handoffSeconds.Observe(time.Since(began).Seconds())
	writeJSON(w, http.StatusOK, HandoffResponse{
		Federation:   fed,
		From:         cs.self.ID,
		To:           target.ID,
		Epoch:        epoch,
		Observations: moved,
		DurationMS:   float64(time.Since(began)) / float64(time.Millisecond),
	})
}

// handoffTenant runs the source half of a live migration: flip to
// sending (new requests now chase the target), drain in-flight ones,
// checkpoint, stream every shard, activate the target under a bumped
// epoch, then release local state and gossip the new table. Any
// failure before activation aborts the target's half and restores the
// tenant to active — the handoff is all-or-nothing.
func (s *Server) handoffTenant(ctx context.Context, t *tenant, target cluster.Member) (uint64, map[string]int, error) {
	cs := s.cluster
	if !t.state.CompareAndSwap(tenantActive, tenantSending) {
		return 0, nil, fmt.Errorf("federation is %s here, not active", tenantStateName(t.state.Load()))
	}
	t.ownerHint.Store(&target)
	revert := func() {
		t.state.Store(tenantActive)
		t.ownerHint.Store(nil)
	}
	s.log.Info("handoff started", "federation", t.name, "target", target.ID)

	fedQ := "?federation=" + t.name
	if err := cs.post(target.Addr+"/v1/admin/handoff/prepare"+fedQ, nil); err != nil {
		revert()
		return 0, nil, fmt.Errorf("prepare: %w", err)
	}
	abort := func() {
		if err := cs.post(target.Addr+"/v1/admin/handoff/abort"+fedQ, nil); err != nil {
			s.log.Warn("handoff abort failed", "federation", t.name, "error", err.Error())
		}
		revert()
	}

	// Drain: requests that loaded state before the flip finish under
	// the old owner; everything after redirects. The inflight counter
	// is incremented before the state load, so a zero here proves no
	// straggler is still appending history.
	if err := t.drainInflight(ctx); err != nil {
		abort()
		return 0, nil, fmt.Errorf("drain: %w", err)
	}
	// Compact so the streamed state is a snapshot plus a short WAL
	// suffix rather than the whole append log.
	if err := t.checkpoint(); err != nil {
		abort()
		return 0, nil, fmt.Errorf("checkpoint: %w", err)
	}
	// The outbound stream supersedes any standby stream: the target
	// rebuilds its replica from the handoff itself.
	if rep := cs.repl[t.name]; rep != nil {
		rep.DisarmAll()
	}
	moved := make(map[string]int, len(t.queries))
	if t.store != nil {
		for _, q := range sortedQueries(t) {
			var buf bytes.Buffer
			if err := t.store.ExportShard(q.String(), &buf, nil); err != nil {
				abort()
				return 0, nil, fmt.Errorf("export %v: %w", q, err)
			}
			url := fmt.Sprintf("%s/v1/admin/handoff/receive%s&query=%s&mode=active", target.Addr, fedQ, q)
			if err := cs.post(url, bytes.NewReader(buf.Bytes())); err != nil {
				abort()
				return 0, nil, fmt.Errorf("ship %v: %w", q, err)
			}
			if h := t.sched.History(q); h != nil {
				moved[q.String()] = h.Len()
			}
		}
	}
	// Activation commits the move: the target opens the shipped state,
	// flips its tenant active and bumps the routing epoch.
	epoch := cs.table.Load().Epoch() + 1
	url := fmt.Sprintf("%s/v1/admin/handoff/activate%s&epoch=%d", target.Addr, fedQ, epoch)
	if err := cs.post(url, nil); err != nil {
		abort()
		return 0, nil, fmt.Errorf("activate: %w", err)
	}
	// Point of no return: the target is serving. Release local state —
	// the schedulers' histories and the store's WAL handles — so a
	// later handoff back (or standby duty) starts from disk.
	if hd, ok := t.sched.(historyDropper); ok {
		hd.DropHistories()
	}
	if t.store != nil {
		if err := t.store.Close(); err != nil {
			s.log.Warn("closing store after handoff", "federation", t.name, "error", err.Error())
		}
	}
	got := cs.applyOverride(t.name, target.ID, epoch)
	t.state.Store(tenantRemote)
	t.ownerHint.Store(nil)
	cs.gossip()
	s.log.Info("handoff complete", "federation", t.name, "target", target.ID, "epoch", got)
	return got, moved, nil
}

// drainInflight waits for the tenant's in-flight requests to finish;
// by the time it returns, every request routed before the state flip
// has completed (or ctx expired).
func (t *tenant) drainInflight(ctx context.Context) error {
	for t.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("%d requests still in flight: %w", t.inflight.Load(), ctx.Err())
		case <-time.After(500 * time.Microsecond):
		}
	}
	return nil
}

func sortedQueries(t *tenant) []tpch.QueryID {
	qs := make([]tpch.QueryID, 0, len(t.queries))
	for q := range t.queries {
		qs = append(qs, q)
	}
	sort.Slice(qs, func(i, j int) bool { return qs[i] < qs[j] })
	return qs
}

// ---------------------------------------------------------------------
// Handoff: target side
// ---------------------------------------------------------------------

// handleHandoffPrepare flips the tenant remote→receiving: from here
// until activate (or abort), this node holds the federation's requests
// instead of redirecting them back at the sending source.
func (s *Server) handleHandoffPrepare(w http.ResponseWriter, r *http.Request) {
	fed := r.URL.Query().Get("federation")
	t, ok := s.tenants[fed]
	if !ok {
		writeError(w, http.StatusNotFound, "server: unknown federation %q", fed)
		return
	}
	if !t.beginReceiving() {
		writeError(w, http.StatusConflict, "federation %q is %s here", fed, tenantStateName(t.state.Load()))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "receiving"})
}

// handleHandoffReceive imports one shard stream. mode=active is a step
// of an inbound handoff (tenant must be receiving); mode=standby is the
// full-sync half of standby replication (tenant must be remote).
func (s *Server) handleHandoffReceive(w http.ResponseWriter, r *http.Request) {
	t, q, ok := s.clusterShardParams(w, r)
	if !ok {
		return
	}
	st := t.state.Load()
	switch r.URL.Query().Get("mode") {
	case "active":
		if st != tenantReceiving {
			writeError(w, http.StatusConflict, "federation %q is %s, not receiving", t.name, tenantStateName(st))
			return
		}
	case "standby":
		if st != tenantRemote {
			writeError(w, http.StatusConflict, "federation %q is %s, not remote", t.name, tenantStateName(st))
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "mode must be active or standby")
		return
	}
	if t.store == nil {
		writeError(w, http.StatusBadRequest, "federation %q has no durable store", t.name)
		return
	}
	if err := t.store.ImportShard(q.String(), http.MaxBytesReader(w, r.Body, int64(maxShipBytes))); err != nil {
		writeError(w, http.StatusInternalServerError, "import %v: %v", q, err)
		return
	}
	next, err := t.store.ReplicaSeq(q.String())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ReplicateResponse{Next: next})
}

// handleHandoffActivate commits an inbound handoff: open the shipped
// state, start serving, bump the routing epoch.
func (s *Server) handleHandoffActivate(w http.ResponseWriter, r *http.Request) {
	cs := s.cluster
	fed := r.URL.Query().Get("federation")
	t, ok := s.tenants[fed]
	if !ok {
		writeError(w, http.StatusNotFound, "server: unknown federation %q", fed)
		return
	}
	if t.state.Load() != tenantReceiving {
		writeError(w, http.StatusConflict, "federation %q is %s, not receiving", fed, tenantStateName(t.state.Load()))
		return
	}
	epoch, err := strconv.ParseUint(r.URL.Query().Get("epoch"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad epoch: %v", err)
		return
	}
	if err := s.activateTenant(t); err != nil {
		t.finishReceiving(tenantRemote)
		writeError(w, http.StatusInternalServerError, "activating %q: %v", fed, err)
		return
	}
	got := cs.applyOverride(fed, cs.self.ID, epoch)
	t.finishReceiving(tenantActive)
	cs.handoffsIn.Inc()
	cs.gossip()
	s.log.Info("handoff received", "federation", fed, "epoch", got)
	writeJSON(w, http.StatusOK, map[string]uint64{"epoch": got})
}

// handleHandoffAbort rolls the target back to remote after a failed
// handoff; held requests chase the (reverted) owner.
func (s *Server) handleHandoffAbort(w http.ResponseWriter, r *http.Request) {
	fed := r.URL.Query().Get("federation")
	t, ok := s.tenants[fed]
	if !ok {
		writeError(w, http.StatusNotFound, "server: unknown federation %q", fed)
		return
	}
	if t.state.Load() == tenantReceiving {
		t.finishReceiving(tenantRemote)
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "aborted"})
}

// handleTakeover (POST /v1/admin/takeover?federation=) promotes this
// node to fed's owner from locally replicated state — the recovery
// path after the owner died. The receiving state holds requests that
// arrive mid-promotion.
func (s *Server) handleTakeover(w http.ResponseWriter, r *http.Request) {
	cs := s.cluster
	fed := r.URL.Query().Get("federation")
	t, ok := s.tenants[fed]
	if !ok {
		writeError(w, http.StatusNotFound, "server: unknown federation %q", fed)
		return
	}
	if !t.beginReceiving() {
		writeError(w, http.StatusConflict, "federation %q is %s here", fed, tenantStateName(t.state.Load()))
		return
	}
	if err := s.activateTenant(t); err != nil {
		t.finishReceiving(tenantRemote)
		writeError(w, http.StatusInternalServerError, "takeover of %q: %v", fed, err)
		return
	}
	epoch := cs.applyOverride(fed, cs.self.ID, cs.table.Load().Epoch()+1)
	t.finishReceiving(tenantActive)
	cs.takeovers.Inc()
	cs.gossip()
	recovered := make(map[string]int, len(t.queries))
	for _, q := range sortedQueries(t) {
		if h := t.sched.History(q); h != nil {
			recovered[q.String()] = h.Len()
		}
	}
	s.log.Info("takeover complete", "federation", fed, "epoch", epoch)
	writeJSON(w, http.StatusOK, HandoffResponse{
		Federation:   fed,
		To:           cs.self.ID,
		Epoch:        epoch,
		Observations: recovered,
	})
}

// activateTenant materializes a cold tenant's serving state: open each
// query's history (recovering whatever the store holds — a shipped
// handoff stream, a replica log, or nothing) and bootstrap any
// shortfall below the spec's target, exactly like a warm boot.
func (s *Server) activateTenant(t *tenant) error {
	qs := sortedQueries(t)
	if op, ok := t.sched.(historyOpener); ok {
		for _, q := range qs {
			if _, err := op.OpenHistory(q); err != nil {
				return err
			}
		}
	}
	if bs, ok := t.sched.(bootstrapper); ok {
		for _, q := range qs {
			h := t.sched.History(q)
			if h == nil {
				continue
			}
			if need := t.bootstrap - h.Len(); need > 0 {
				if err := bs.Bootstrap(q, need); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Standby sync loop
// ---------------------------------------------------------------------

// syncLoop keeps every owned tenant's standby armed: any shard whose
// replication stream is not currently streaming (never armed, or
// degraded by a standby outage) gets a fresh full sync — checkpoint,
// export, ship, release — after which the synchronous frame stream
// resumes. Runs until the server's lifetime context ends.
func (s *Server) syncLoop() {
	cs := s.cluster
	defer close(cs.syncDone)
	tick := time.NewTicker(cs.cfg.SyncInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.lifeCtx.Done():
			return
		case <-tick.C:
			for _, t := range s.tenants {
				s.syncTenant(t)
			}
		}
	}
}

// syncTenant full-syncs every non-streaming shard of one owned tenant
// to its standby.
func (s *Server) syncTenant(t *tenant) {
	cs := s.cluster
	rep := cs.repl[t.name]
	if rep == nil || t.store == nil || t.state.Load() != tenantActive {
		return
	}
	standby, ok := cs.table.Load().Standby(t.name)
	if !ok {
		return
	}
	checkpointed := false
	for _, q := range sortedQueries(t) {
		shard := q.String()
		if rep.Streaming(shard) {
			continue
		}
		if !checkpointed {
			// One compaction per round keeps each export a snapshot
			// plus a short suffix.
			if err := t.checkpoint(); err != nil {
				s.log.Warn("standby sync checkpoint failed", "federation", t.name, "error", err.Error())
				return
			}
			checkpointed = true
		}
		// Hold the stream at the export cut: frames appended while the
		// snapshot is in flight buffer locally and ship only after the
		// standby confirms the import they extend.
		var buf bytes.Buffer
		err := t.store.ExportShard(shard, &buf, func(next uint64) { rep.Hold(shard, next) })
		if err != nil {
			s.log.Warn("standby sync export failed", "federation", t.name, "query", shard, "error", err.Error())
			continue
		}
		url := fmt.Sprintf("%s/v1/admin/handoff/receive?federation=%s&query=%s&mode=standby",
			standby.Addr, t.name, shard)
		if err := cs.post(url, bytes.NewReader(buf.Bytes())); err != nil {
			rep.Disarm(shard)
			s.log.Warn("standby sync ship failed", "federation", t.name, "query", shard,
				"standby", standby.ID, "error", err.Error())
			continue
		}
		rep.Release(shard)
		cs.syncs.Inc()
		s.log.Info("standby armed", "federation", t.name, "query", shard, "standby", standby.ID)
	}
}
