package server

// Cluster mode: a midasd process can be one member of a consistent-hash
// sharded cluster. Every node hosts every federation spec, but each
// federation is *active* on exactly one node (its ring owner, possibly
// moved by an override); the others hold cold tenants that answer the
// federation's requests with a 307 redirect to the owner. Clients route
// themselves (GET /v1/cluster), so there is no proxy hop on the hot
// path — the serving loop pays one atomic load per request when
// clustered, nothing when standalone.
//
// Ownership moves two ways:
//
//   - POST /v1/admin/handoff — a live migration. The owner drains the
//     tenant's in-flight requests, checkpoints, streams every query
//     shard (snapshot + WAL suffix, CRC-framed) to the target, and the
//     target activates under a bumped routing epoch. Requests arriving
//     mid-handoff are redirected to the target, which holds them until
//     activation; nobody observes an error.
//   - POST /v1/admin/takeover — disaster recovery. A standby that has
//     been receiving the owner's WAL frames synchronously (see
//     Replicate) promotes itself from the replicated state after the
//     owner dies.
//
// Epochs order routing tables: every mutation bumps the epoch, nodes
// gossip tables after mutations (POST /v1/admin/route), and the higher
// epoch always wins, so a stale node converges on the first gossip or
// redirect it sees.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/histstore"
	"repro/internal/metrics"
	"repro/internal/tpch"
)

// ClusterConfig makes a Server one member of a midasd cluster.
type ClusterConfig struct {
	// NodeID names this member; must appear in Peers.
	NodeID string
	// Peers is the full member set, this node included. Federation
	// names are consistent-hashed over it.
	Peers []cluster.Member
	// VirtualNodes tunes ring balance (0 = cluster.DefaultVirtualNodes).
	VirtualNodes int
	// Replicate ships every owned federation's WAL appends to the
	// federation's standby (the ring's next distinct member)
	// synchronously: an acked write is on the standby before the
	// response leaves, so a SIGKILLed owner loses nothing a takeover
	// cannot serve. When the standby is down, replication degrades to
	// local durability rather than failing writes, and the sync loop
	// re-arms it with a fresh full sync once the standby answers again.
	Replicate bool
	// SyncInterval is the cadence of the standby sync loop (default 2s).
	SyncInterval time.Duration
	// PeerTimeout bounds one peer HTTP call (default 10s).
	PeerTimeout time.Duration
	// AutoFailover runs the failure detector and promotes this node's
	// standby federations automatically when their owner is confirmed
	// down — no operator takeover POST required. Off by default: the
	// detector can only be as good as its thresholds, and an operator
	// who prefers paging to automation keeps the manual path.
	AutoFailover bool
	// ProbeInterval is the failure detector's probe cadence (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default ProbeInterval).
	ProbeTimeout time.Duration
	// SuspectAfter / DownAfter are the consecutive-miss thresholds for
	// the suspect and down verdicts (defaults 3 and 2×SuspectAfter).
	SuspectAfter int
	DownAfter    int
	// AutoRebalance moves federations back onto their ring-computed
	// owner after membership settles (a dead node comes back, a new
	// node joins). Requires AutoFailover (it rides the same detector).
	AutoRebalance bool
}

func (c *ClusterConfig) setDefaults() {
	if c.SyncInterval <= 0 {
		c.SyncInterval = 2 * time.Second
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 10 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.ProbeInterval
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3
	}
	if c.DownAfter <= c.SuspectAfter {
		c.DownAfter = 2 * c.SuspectAfter
	}
}

// Tenant ownership states. The zero value is active so standalone
// servers never touch the state machine.
const (
	// tenantActive: this node owns the federation and serves it.
	tenantActive int32 = iota
	// tenantRemote: another node owns it; requests get 307.
	tenantRemote
	// tenantReceiving: an inbound handoff or takeover is materializing
	// state here; requests are held until activation.
	tenantReceiving
	// tenantSending: an outbound handoff is draining and streaming
	// state away; requests are redirected at the target.
	tenantSending
)

func tenantStateName(st int32) string {
	switch st {
	case tenantActive:
		return "active"
	case tenantRemote:
		return "remote"
	case tenantReceiving:
		return "receiving"
	case tenantSending:
		return "sending"
	}
	return "unknown"
}

// Optional scheduler capabilities the cluster layer drives when
// activating or releasing a tenant; ires.Scheduler implements all
// three, stubs may implement none.
type historyOpener interface {
	OpenHistory(q tpch.QueryID) (*core.History, error)
}

type bootstrapper interface {
	Bootstrap(q tpch.QueryID, n int) error
}

type historyDropper interface {
	DropHistories()
}

// clusterState is the Server's cluster half: node identity, the
// epoch-versioned routing table (atomically swapped, lock-free reads on
// the hot path), per-federation replicators and the peer HTTP client.
type clusterState struct {
	cfg   ClusterConfig
	self  cluster.Member
	table atomic.Pointer[cluster.Table]
	// repl holds one Replicator per federation when Replicate is on;
	// it doubles as each tenant store's histstore.Mirror.
	repl   map[string]*cluster.Replicator
	client *http.Client
	srv    *Server // set by newServer before any request or loop runs

	// routes persists every committed routing table so a restart recovers
	// the last known placements from disk before any gossip arrives. Nil
	// when the server has no durable store directory.
	routes *cluster.RouteLog
	// detector is the peer failure detector; nil unless AutoFailover.
	detector *cluster.Detector

	// peerMu guards peerRepl: the per-federation replication health each
	// peer reported on its last answered probe ("streaming", "arming",
	// "degraded", "off"). This is how a standby knows whether the dead
	// owner's stream was healthy — the eligibility gate for promoting
	// from the replica.
	peerMu   sync.Mutex
	peerRepl map[string]map[string]string

	syncDone chan struct{} // closed when the standby sync loop exits
	// rebalanceKick wakes the rebalance loop (buffered 1: a kick during
	// a rebalance coalesces into one more pass); rebalanceDone is closed
	// when the loop exits; rebalancing is 1 while a pass runs.
	rebalanceKick chan struct{}
	rebalanceDone chan struct{}
	rebalancing   atomic.Bool

	redirects        *metrics.Counter
	handoffsOut      *metrics.Counter
	handoffsIn       *metrics.Counter
	takeovers        *metrics.Counter
	autoTakeovers    *metrics.Counter
	autoBlocked      *metrics.Counter
	rebalances       *metrics.Counter
	routePersistErrs *metrics.Counter
	syncs            *metrics.Counter
	framesShipped    *metrics.Counter
	replDegradedN    *metrics.Counter
	handoffSeconds   *metrics.Histogram
	probeSeconds     *metrics.HistogramVec
}

// newClusterState validates cfg.Cluster and builds the ring and routing
// table. Returns (nil, nil) when the config carries no cluster section.
// When storeDir is non-empty the epoch-versioned override table is
// persisted there (under _cluster/routes.wal) and the last committed
// table is recovered *now*, before the caller decides which tenants to
// build warm — so a restarted former owner redirects from its first
// request instead of serving placements a takeover moved away.
func newClusterState(cfg *ClusterConfig, storeDir string) (*clusterState, error) {
	if cfg == nil {
		return nil, nil
	}
	c := *cfg
	c.setDefaults()
	ring, err := cluster.NewRing(c.Peers, c.VirtualNodes)
	if err != nil {
		return nil, fmt.Errorf("server: cluster: %w", err)
	}
	table := cluster.NewTable(ring)
	self, ok := table.Member(c.NodeID)
	if !ok {
		return nil, fmt.Errorf("server: cluster: node id %q is not in the peer set", c.NodeID)
	}
	cs := &clusterState{
		cfg:      c,
		self:     self,
		repl:     make(map[string]*cluster.Replicator),
		client:   &http.Client{Timeout: c.PeerTimeout},
		peerRepl: make(map[string]map[string]string),
	}
	if storeDir != "" {
		// "_cluster" cannot collide with a federation's directory: tenant
		// roots are url.PathEscape(name), which never produces it for the
		// federation names the registry accepts.
		log, err := cluster.OpenRouteLog(filepath.Join(storeDir, "_cluster", "routes.wal"))
		if err != nil {
			return nil, fmt.Errorf("server: cluster: %w", err)
		}
		cs.routes = log
		if epoch, overrides := log.Last(); epoch > table.Epoch() {
			table = table.WithOverrides(epoch, overrides)
		}
	}
	cs.table.Store(table)
	return cs, nil
}

// persistTable durably records a just-committed routing table. Failures
// are logged and counted, not propagated: the commit already happened
// in memory and is being gossiped; losing the disk copy only weakens
// the next restart, it cannot be allowed to wedge routing now.
func (cs *clusterState) persistTable(epoch uint64, overrides map[string]string) {
	if cs.routes == nil {
		return
	}
	if err := cs.routes.Append(epoch, overrides); err != nil {
		if cs.routePersistErrs != nil {
			cs.routePersistErrs.Inc()
		}
		if cs.srv != nil {
			cs.srv.log.Warn("persisting routing table failed", "epoch", epoch, "error", err.Error())
		}
	}
}

// owns reports whether this node is fed's owner under the current
// table.
func (cs *clusterState) owns(fed string) bool {
	return cs.table.Load().Owner(fed).ID == cs.self.ID
}

// replicating reports whether this cluster ships WAL frames to
// standbys at all (needs a second member to ship to).
func (cs *clusterState) replicating() bool {
	return cs.cfg.Replicate && len(cs.cfg.Peers) > 1
}

// newReplicator builds fed's replicator-mirror: frames ship to
// whichever member the *current* table names as fed's standby.
func (cs *clusterState) newReplicator(fed string) *cluster.Replicator {
	rep := cluster.NewReplicator(func(shard string, from uint64, frames []byte, count int) error {
		standby, ok := cs.table.Load().Standby(fed)
		if !ok {
			return fmt.Errorf("federation %q has no standby", fed)
		}
		url := fmt.Sprintf("%s/v1/admin/replicate?federation=%s&query=%s&from=%d",
			standby.Addr, fed, shard, from)
		if err := cs.post(url, bytes.NewReader(frames)); err != nil {
			return err
		}
		cs.framesShipped.Add(float64(count))
		return nil
	})
	rep.OnDegrade = func(shard string, err error) {
		cs.replDegradedN.Inc()
		cs.srv.log.Warn("replication degraded", "federation", fed, "query", shard, "error", err.Error())
	}
	cs.repl[fed] = rep
	return rep
}

// post issues one peer POST and folds any non-2xx status into an error
// carrying the peer's body (the peers speak ErrorResponse JSON).
func (cs *clusterState) post(url string, body io.Reader) error {
	resp, err := cs.client.Post(url, "application/octet-stream", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("%s: %s: %s", url, resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

// postJSON issues one peer POST and decodes the 2xx response body into
// out.
func (cs *clusterState) postJSON(url string, body []byte, out any) error {
	resp, err := cs.client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(out)
}

// applyOverride pins fed to node in the routing table, bumping the
// epoch to at least minEpoch, and returns the resulting epoch.
// Idempotent: a table that already places fed on node at minEpoch or
// later (the move's gossip beat the local apply) is left untouched, so
// one ownership change bumps the cluster-wide epoch exactly once.
func (cs *clusterState) applyOverride(fed, node string, minEpoch uint64) uint64 {
	for {
		cur := cs.table.Load()
		if cur.Epoch() >= minEpoch && cur.Owner(fed).ID == node {
			return cur.Epoch()
		}
		next, ok := cur.WithOverride(fed, node)
		if !ok {
			return cur.Epoch() // unknown member: keep the table
		}
		next = next.WithEpochAtLeast(minEpoch)
		if cs.table.CompareAndSwap(cur, next) {
			cs.persistTable(next.Epoch(), next.Overrides())
			return next.Epoch()
		}
	}
}

// adoptTable installs a gossiped table if its epoch is newer. Epochs
// are minted as local-epoch+1 with no global allocator, so two
// concurrent ownership changes (of different federations, or of the
// same one after a partition) can produce distinct tables at the SAME
// epoch; adopting one at an equal epoch merges the override sets
// deterministically — union, lexicographically smaller member ID on a
// per-federation conflict, so every node computes the same table
// regardless of arrival order — and bumps past both inputs so the
// merged table wins everywhere. Callers that adopt must reconcile local
// tenant state against the new table (Server.reconcileTenants).
func (cs *clusterState) adoptTable(epoch uint64, overrides map[string]string) bool {
	for {
		cur := cs.table.Load()
		if epoch < cur.Epoch() {
			return false
		}
		if epoch == cur.Epoch() {
			curOv := cur.Overrides()
			if overridesEqual(curOv, overrides) {
				return false
			}
			next := cur.WithOverrides(epoch+1, mergeOverrides(curOv, overrides))
			if cs.table.CompareAndSwap(cur, next) {
				cs.persistTable(next.Epoch(), next.Overrides())
				return true
			}
			continue
		}
		if next := cur.WithOverrides(epoch, overrides); cs.table.CompareAndSwap(cur, next) {
			cs.persistTable(next.Epoch(), next.Overrides())
			return true
		}
	}
}

// overridesEqual reports whether two override maps place the same
// federations on the same members.
func overridesEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for fed, id := range a {
		if b[fed] != id {
			return false
		}
	}
	return true
}

// mergeOverrides unions two override sets; a federation present in both
// with different owners resolves to the lexicographically smaller
// member ID. The merge is commutative, so nodes merging the same pair
// of tables in either order agree; the losing owner is demoted by the
// reconcile pass when the merged table reaches it.
func mergeOverrides(a, b map[string]string) map[string]string {
	out := make(map[string]string, len(a)+len(b))
	for fed, id := range a {
		out[fed] = id
	}
	for fed, id := range b {
		if cur, ok := out[fed]; !ok || id < cur {
			out[fed] = id
		}
	}
	return out
}

// gossip pushes this node's routing table to every other peer,
// best-effort and concurrently. Each exchange is bidirectional: the
// peer answers with whichever table survived on its side, and a newer
// (or mergeable same-epoch) answer is adopted here — so one exchange
// converges both ends, whichever was stale.
func (cs *clusterState) gossip() {
	tab := cs.table.Load()
	body, _ := json.Marshal(RouteUpdate{Epoch: tab.Epoch(), Overrides: tab.Overrides()})
	for _, m := range tab.Ring().Members() {
		if m.ID == cs.self.ID {
			continue
		}
		go func(addr string) {
			var peer RouteUpdate
			if err := cs.postJSON(addr+"/v1/admin/route", body, &peer); err != nil {
				return
			}
			if cs.adoptTable(peer.Epoch, peer.Overrides) {
				cs.srv.reconcileTenants()
			}
		}(m.Addr)
	}
}

// registerClusterMetrics publishes the midas_cluster_* series.
func (s *Server) registerClusterMetrics() {
	cs := s.cluster
	reg := s.cfg.Metrics
	reg.GaugeFunc("midas_cluster_epoch",
		"Epoch of this node's routing table; cluster-wide agreement means all nodes report the same value.",
		func() float64 { return float64(cs.table.Load().Epoch()) })
	reg.GaugeFunc("midas_cluster_members",
		"Configured cluster members.",
		func() float64 { return float64(len(cs.cfg.Peers)) })
	reg.GaugeFunc("midas_cluster_owned_federations",
		"Federations this node currently serves (tenant state active).",
		func() float64 {
			n := 0
			for _, t := range s.tenants {
				if t.state.Load() == tenantActive {
					n++
				}
			}
			return float64(n)
		})
	cs.redirects = reg.Counter("midas_cluster_redirects_total",
		"Tenant requests answered with a 307 redirect at the owning node.")
	hv := reg.CounterVec("midas_cluster_handoffs_total",
		"Completed tenant handoffs, by this node's role.", "role")
	cs.handoffsOut = hv.With("source")
	cs.handoffsIn = hv.With("target")
	cs.takeovers = reg.Counter("midas_cluster_takeovers_total",
		"Federations this node promoted itself to own after an owner failure.")
	cs.autoTakeovers = reg.Counter("midas_cluster_auto_takeovers_total",
		"Takeovers initiated by the failure detector, no operator involved.")
	cs.autoBlocked = reg.Counter("midas_cluster_auto_takeovers_blocked_total",
		"Auto-promotions the eligibility gate refused (replication degraded or never reported healthy).")
	cs.rebalances = reg.Counter("midas_cluster_rebalances_total",
		"Federations handed back to their ring-computed owner by the rebalance loop.")
	cs.routePersistErrs = reg.Counter("midas_cluster_route_persist_failures_total",
		"Routing-table commits whose durable append failed (in-memory routing unaffected).")
	if cs.detector != nil {
		for _, m := range cs.cfg.Peers {
			if m.ID == cs.self.ID {
				continue
			}
			peer := m.ID
			reg.GaugeFunc("midas_cluster_peer_up",
				"1 while the failure detector's last probe of the peer succeeded, else 0.",
				func() float64 {
					if cs.detector.Status(peer) == cluster.PeerUp {
						return 1
					}
					return 0
				}, "peer", peer)
		}
		reg.GaugeFunc("midas_cluster_peers_suspect",
			"Peers currently in the suspect state (rebalancing pauses while nonzero).",
			func() float64 {
				n := 0
				for _, h := range cs.detector.Snapshot() {
					if h.Status == cluster.PeerSuspect {
						n++
					}
				}
				return float64(n)
			})
		cs.probeSeconds = reg.HistogramVec("midas_cluster_probe_seconds",
			"Failure-detector probe round trips, by peer (failures included, capped at the probe timeout).",
			metrics.ExponentialBuckets(1e-4, 4, 10), "peer")
		reg.GaugeFunc("midas_cluster_rebalance_active",
			"1 while a rebalance pass is moving tenants, else 0.",
			func() float64 {
				if cs.rebalancing.Load() {
					return 1
				}
				return 0
			})
	}
	cs.syncs = reg.Counter("midas_cluster_standby_syncs_total",
		"Full shard syncs shipped to standbys (initial arms and re-arms after degrade).")
	cs.framesShipped = reg.Counter("midas_cluster_frames_shipped_total",
		"WAL frames shipped to standbys on the synchronous replication stream.")
	cs.replDegradedN = reg.Counter("midas_cluster_replication_degraded_total",
		"Times a shard's replication stream degraded to local-only durability.")
	cs.handoffSeconds = reg.Histogram("midas_cluster_handoff_seconds",
		"End-to-end duration of outbound tenant handoffs.",
		metrics.ExponentialBuckets(1e-3, 4, 10))
}

// ---------------------------------------------------------------------
// Hot-path routing
// ---------------------------------------------------------------------

// routeTenant is the cluster gate on the submit path. It returns
// (0, true) when the request should be served locally; otherwise the
// response (redirect or hold-timeout error) is already rendered and the
// returned status stands. The caller has already registered the
// request in t.inflight, so an outbound handoff's drain cannot miss it.
func (s *Server) routeTenant(ctx context.Context, sc *serveScratch, t *tenant, resp *bytes.Buffer) (int, bool) {
	for {
		switch st := t.state.Load(); st {
		case tenantActive:
			return 0, true
		case tenantReceiving:
			// An inbound handoff is materializing this tenant here; it
			// completes in milliseconds, so holding the request beats
			// bouncing the client back to a source that is already
			// redirecting forward.
			if !t.waitActive(ctx) {
				return writeErrorBuf(resp, http.StatusServiceUnavailable,
					"federation %q handoff still in progress", t.name), false
			}
		default: // tenantRemote, tenantSending
			return s.writeRedirect(sc, t, resp), false
		}
	}
}

// writeRedirect renders the 307: the owner's submit URL goes in the
// Location header (handleSubmit copies it from the scratch), the body
// says why.
func (s *Server) writeRedirect(sc *serveScratch, t *tenant, resp *bytes.Buffer) int {
	cs := s.cluster
	tab := cs.table.Load()
	owner := tab.Owner(t.name)
	if owner.ID == cs.self.ID {
		// Mid-handoff the table still points here; the hint set when
		// the tenant entered sending names the real destination.
		if m := t.ownerHint.Load(); m != nil {
			owner = *m
		}
	}
	cs.redirects.Inc()
	sc.location = owner.Addr + "/v1/queries"
	return writeErrorBuf(resp, http.StatusTemporaryRedirect,
		"federation %q is served by %s (epoch %d)", t.name, owner.ID, tab.Epoch())
}

// ---------------------------------------------------------------------
// Cluster endpoints
// ---------------------------------------------------------------------

// handleCluster (GET /v1/cluster) serves the routing table clients use
// to send each federation's requests straight to its owner.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	cs := s.cluster
	tab := cs.table.Load()
	resp := ClusterResponse{
		Node:       cs.self.ID,
		Epoch:      tab.Epoch(),
		Members:    tab.Ring().Members(),
		Placements: make(map[string]ClusterPlacement, len(s.tenants)),
	}
	for name, t := range s.tenants {
		p := ClusterPlacement{
			Owner: tab.Owner(name).ID,
			State: tenantStateName(t.state.Load()),
		}
		if standby, ok := tab.Standby(name); ok {
			p.Standby = standby.ID
		}
		resp.Placements[name] = p
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleReadyz (GET /readyz) is the load-balancer readiness probe:
// false while draining and while any tenant handoff is in flight on
// this node. Liveness stays on /healthz.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if s.cluster != nil {
		for name, t := range s.tenants {
			if st := t.state.Load(); st == tenantReceiving || st == tenantSending {
				writeJSON(w, http.StatusServiceUnavailable,
					map[string]string{"status": "handoff", "federation": name})
				return
			}
		}
		// Degraded replication means acked writes are on one disk instead
		// of two: stay live (the node still serves correctly) but tell the
		// load balancer so it can shed toward the fully durable node.
		if degraded := s.degradedFederations(); len(degraded) > 0 {
			writeJSON(w, http.StatusServiceUnavailable,
				map[string]any{"status": "degraded", "degraded": degraded})
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// degradedFederations lists the active federations whose replication
// stream has degraded to local-only durability, sorted for stable
// output. Empty when replication is off.
func (s *Server) degradedFederations() []string {
	if !s.cluster.replicating() {
		return nil
	}
	var out []string
	for name, t := range s.tenants {
		if t.state.Load() == tenantActive && s.cluster.replHealth(t) == "degraded" {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// handleRoute (POST /v1/admin/route) is table gossip: adopt the body's
// table if its epoch beats ours, answer with whichever table survived.
func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	var upd RouteUpdate
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&upd); err != nil {
		writeError(w, http.StatusBadRequest, "bad route update: %v", err)
		return
	}
	if s.cluster.adoptTable(upd.Epoch, upd.Overrides) {
		s.reconcileTenants()
	}
	tab := s.cluster.table.Load()
	writeJSON(w, http.StatusOK, RouteUpdate{Epoch: tab.Epoch(), Overrides: tab.Overrides()})
}

// handleReplicate (POST /v1/admin/replicate?federation=&query=&from=)
// appends the body's raw WAL frames to the named shard's replica log —
// the standby half of synchronous replication. 409 on a sequence gap
// tells the owner to degrade and re-arm with a full sync.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	t, q, ok := s.clusterShardParams(w, r)
	if !ok {
		return
	}
	if t.state.Load() == tenantActive {
		writeError(w, http.StatusConflict, "federation %q is active on this node", t.name)
		return
	}
	if t.store == nil {
		writeError(w, http.StatusBadRequest, "federation %q has no durable store", t.name)
		return
	}
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad from sequence: %v", err)
		return
	}
	frames, err := io.ReadAll(http.MaxBytesReader(w, r.Body, int64(maxShipBytes)))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading frames: %v", err)
		return
	}
	next, err := t.store.AppendReplicaFrames(q.String(), from, frames)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, histstore.ErrReplicaGap) {
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ReplicateResponse{Next: next})
}

// maxShipBytes bounds one replication or handoff section body (1 GiB,
// matching histstore's stream section limit).
const maxShipBytes = 1 << 30

// clusterShardParams resolves the federation and query parameters
// shared by the shard-granular cluster endpoints.
func (s *Server) clusterShardParams(w http.ResponseWriter, r *http.Request) (*tenant, tpch.QueryID, bool) {
	t, ok := s.tenants[r.URL.Query().Get("federation")]
	if !ok {
		writeError(w, http.StatusNotFound, "server: unknown federation %q", r.URL.Query().Get("federation"))
		return nil, 0, false
	}
	q, err := tpch.ParseQueryID(r.URL.Query().Get("query"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, 0, false
	}
	if !t.queries[q] {
		writeError(w, http.StatusBadRequest, "federation %q does not serve %v", t.name, q)
		return nil, 0, false
	}
	return t, q, true
}

// ---------------------------------------------------------------------
// Handoff: source side
// ---------------------------------------------------------------------

// handleHandoff (POST /v1/admin/handoff?federation=&target=) is the
// operator entry point for a live migration, addressed to the current
// owner.
func (s *Server) handleHandoff(w http.ResponseWriter, r *http.Request) {
	cs := s.cluster
	fed := r.URL.Query().Get("federation")
	t, ok := s.tenants[fed]
	if !ok {
		writeError(w, http.StatusNotFound, "server: unknown federation %q", fed)
		return
	}
	target, ok := cs.table.Load().Member(r.URL.Query().Get("target"))
	if !ok {
		writeError(w, http.StatusBadRequest, "unknown target node %q", r.URL.Query().Get("target"))
		return
	}
	if target.ID == cs.self.ID {
		writeError(w, http.StatusBadRequest, "federation %q is already served here", fed)
		return
	}
	began := time.Now()
	epoch, moved, err := s.handoffTenant(r.Context(), t, target)
	if err != nil {
		status := http.StatusInternalServerError
		if t.state.Load() != tenantSending && t.state.Load() != tenantActive {
			status = http.StatusConflict
		}
		writeError(w, status, "handoff of %q to %s failed: %v", fed, target.ID, err)
		return
	}
	cs.handoffSeconds.Observe(time.Since(began).Seconds())
	writeJSON(w, http.StatusOK, HandoffResponse{
		Federation:   fed,
		From:         cs.self.ID,
		To:           target.ID,
		Epoch:        epoch,
		Observations: moved,
		DurationMS:   float64(time.Since(began)) / float64(time.Millisecond),
	})
}

// handoffTenant runs the source half of a live migration: flip to
// sending (new requests now chase the target), drain in-flight ones,
// checkpoint, stream every shard, activate the target under a bumped
// epoch, then release local state and gossip the new table. Any
// failure before activation aborts the target's half and restores the
// tenant to active — the handoff is all-or-nothing. Activation itself
// is the one step whose failure cannot be taken at face value (the
// target may have committed and the ack been lost), so an activate
// error is settled by verification before anything is reverted.
func (s *Server) handoffTenant(ctx context.Context, t *tenant, target cluster.Member) (uint64, map[string]int, error) {
	cs := s.cluster
	if !t.state.CompareAndSwap(tenantActive, tenantSending) {
		return 0, nil, fmt.Errorf("federation is %s here, not active", tenantStateName(t.state.Load()))
	}
	t.ownerHint.Store(&target)
	revert := func() {
		t.state.Store(tenantActive)
		t.ownerHint.Store(nil)
	}
	s.log.Info("handoff started", "federation", t.name, "target", target.ID)

	fedQ := "?federation=" + t.name
	if err := cs.post(target.Addr+"/v1/admin/handoff/prepare"+fedQ, nil); err != nil {
		revert()
		return 0, nil, fmt.Errorf("prepare: %w", err)
	}
	abort := func() {
		if err := cs.post(target.Addr+"/v1/admin/handoff/abort"+fedQ, nil); err != nil {
			s.log.Warn("handoff abort failed", "federation", t.name, "error", err.Error())
		}
		revert()
	}

	// Drain: requests that loaded state before the flip finish under
	// the old owner; everything after redirects. The inflight counter
	// is incremented before the state load, so a zero here proves no
	// straggler is still appending history.
	if err := t.drainInflight(ctx); err != nil {
		abort()
		return 0, nil, fmt.Errorf("drain: %w", err)
	}
	// Compact so the streamed state is a snapshot plus a short WAL
	// suffix rather than the whole append log.
	if err := t.checkpoint(); err != nil {
		abort()
		return 0, nil, fmt.Errorf("checkpoint: %w", err)
	}
	// The outbound stream supersedes any standby stream: the target
	// rebuilds its replica from the handoff itself.
	if rep := cs.repl[t.name]; rep != nil {
		rep.DisarmAll()
	}
	moved := make(map[string]int, len(t.queries))
	if t.store != nil {
		for _, q := range sortedQueries(t) {
			var buf bytes.Buffer
			if err := t.store.ExportShard(q.String(), &buf, nil); err != nil {
				abort()
				return 0, nil, fmt.Errorf("export %v: %w", q, err)
			}
			url := fmt.Sprintf("%s/v1/admin/handoff/receive%s&query=%s&mode=active", target.Addr, fedQ, q)
			if err := cs.post(url, bytes.NewReader(buf.Bytes())); err != nil {
				abort()
				return 0, nil, fmt.Errorf("ship %v: %w", q, err)
			}
			if h := t.sched.History(q); h != nil {
				moved[q.String()] = h.Len()
			}
		}
	}
	// Activation commits the move: the target opens the shipped state,
	// flips its tenant active and bumps the routing epoch.
	epoch := cs.table.Load().Epoch() + 1
	url := fmt.Sprintf("%s/v1/admin/handoff/activate%s&epoch=%d", target.Addr, fedQ, epoch)
	if err := cs.post(url, nil); err != nil {
		// A failed POST does not mean a failed activation: opening the
		// shipped shards can outlive PeerTimeout, and the ack may have
		// been lost after the target committed. Reverting to active
		// while the target serves at a higher epoch would fork the
		// federation's history, so settle the outcome first — activation
		// is idempotent, making both the retry and the question safe.
		committed, known := s.verifyActivation(t, target, url)
		switch {
		case committed:
			// The move happened; fall through to the commit path.
		case known:
			// The target is verifiably not active: the all-or-nothing
			// abort is safe.
			abort()
			return 0, nil, fmt.Errorf("activate: %w", err)
		default:
			// Target unreachable: the outcome is unknowable right now.
			// The tenant stays in sending — redirecting at the target,
			// which is correct whichever way it resolves — and a
			// background resolver completes or rolls back the move once
			// the target answers again.
			go s.resolveHandoff(t, target, epoch, url)
			return 0, nil, fmt.Errorf("activate outcome unknown (target unreachable), resolving in background: %w", err)
		}
	}
	got := s.finishHandoffSource(t, target, epoch)
	return got, moved, nil
}

// finishHandoffSource commits the source half of a handoff whose
// activation is known to have succeeded: release local state — the
// schedulers' histories and the store's WAL handles, so a later handoff
// back (or standby duty) starts from disk — adopt the override and
// gossip the new table. The sending→remote CAS makes it single-entry,
// so the synchronous path and the background resolver cannot both
// commit.
func (s *Server) finishHandoffSource(t *tenant, target cluster.Member, epoch uint64) uint64 {
	cs := s.cluster
	if !t.state.CompareAndSwap(tenantSending, tenantRemote) {
		return cs.table.Load().Epoch()
	}
	s.releaseTenantState(t)
	got := cs.applyOverride(t.name, target.ID, epoch)
	t.ownerHint.Store(nil)
	cs.handoffsOut.Inc()
	cs.gossip()
	s.log.Info("handoff complete", "federation", t.name, "target", target.ID, "epoch", got)
	return got
}

// releaseTenantState drops the scheduler's in-memory histories and
// closes the tenant's WAL handles; the next activation (handoff back,
// takeover) rebuilds from disk.
func (s *Server) releaseTenantState(t *tenant) {
	if hd, ok := t.sched.(historyDropper); ok {
		hd.DropHistories()
	}
	if t.store != nil {
		if err := t.store.Close(); err != nil {
			s.log.Warn("closing store on ownership release", "federation", t.name, "error", err.Error())
		}
	}
}

// verifyActivation settles an activate POST that errored: committed
// reports whether the target activated, known whether the outcome could
// be determined at all. The target's /v1/cluster placement state is the
// source of truth; while it reads "receiving" (activation may still be
// running behind a lost ack) the idempotent activate is retried.
func (s *Server) verifyActivation(t *tenant, target cluster.Member, activateURL string) (committed, known bool) {
	cs := s.cluster
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			time.Sleep(250 * time.Millisecond)
		}
		st, err := s.peerTenantState(target, t.name)
		if err == nil {
			switch st {
			case "active":
				return true, true
			case "remote":
				return false, true
			}
		}
		if err := cs.post(activateURL, nil); err == nil {
			return true, true
		}
	}
	return false, false
}

// peerTenantState asks a peer which ownership state its tenant for fed
// is in, via the placement section of its /v1/cluster table.
func (s *Server) peerTenantState(peer cluster.Member, fed string) (string, error) {
	resp, err := s.cluster.client.Get(peer.Addr + "/v1/cluster")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: %s", peer.Addr, resp.Status)
	}
	var cr ClusterResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(&cr); err != nil {
		return "", err
	}
	p, ok := cr.Placements[fed]
	if !ok {
		return "", fmt.Errorf("peer %s does not host federation %q", peer.ID, fed)
	}
	return p.State, nil
}

// resolveHandoff settles a handoff whose activation outcome could not
// be determined synchronously. The tenant stays in sending — new
// requests chase the target, which is correct in both outcomes — until
// the target answers: active commits the source half, remote rolls the
// tenant back to serving here. Runs until resolution or server
// shutdown.
func (s *Server) resolveHandoff(t *tenant, target cluster.Member, epoch uint64, activateURL string) {
	cs := s.cluster
	tick := time.NewTicker(cs.cfg.SyncInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.lifeCtx.Done():
			return
		case <-tick.C:
		}
		if t.state.Load() != tenantSending {
			return // resolved by another path
		}
		st, err := s.peerTenantState(target, t.name)
		if err != nil {
			continue
		}
		switch st {
		case "active":
			s.finishHandoffSource(t, target, epoch)
			return
		case "remote":
			if t.state.CompareAndSwap(tenantSending, tenantActive) {
				t.ownerHint.Store(nil)
				s.log.Warn("handoff rolled back, target never activated",
					"federation", t.name, "target", target.ID)
			}
			return
		default:
			// Still receiving: the activation may have been lost before
			// reaching the target — nudge the idempotent activate.
			if cs.post(activateURL, nil) == nil {
				s.finishHandoffSource(t, target, epoch)
				return
			}
		}
	}
}

// drainInflight waits for the tenant's in-flight requests to finish;
// by the time it returns, every request routed before the state flip
// has completed (or ctx expired).
func (t *tenant) drainInflight(ctx context.Context) error {
	for t.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("%d requests still in flight: %w", t.inflight.Load(), ctx.Err())
		case <-time.After(500 * time.Microsecond):
		}
	}
	return nil
}

func sortedQueries(t *tenant) []tpch.QueryID {
	qs := make([]tpch.QueryID, 0, len(t.queries))
	for q := range t.queries {
		qs = append(qs, q)
	}
	sort.Slice(qs, func(i, j int) bool { return qs[i] < qs[j] })
	return qs
}

// ---------------------------------------------------------------------
// Handoff: target side
// ---------------------------------------------------------------------

// handleHandoffPrepare flips the tenant remote→receiving: from here
// until activate (or abort), this node holds the federation's requests
// instead of redirecting them back at the sending source.
func (s *Server) handleHandoffPrepare(w http.ResponseWriter, r *http.Request) {
	fed := r.URL.Query().Get("federation")
	t, ok := s.tenants[fed]
	if !ok {
		writeError(w, http.StatusNotFound, "server: unknown federation %q", fed)
		return
	}
	if !t.beginReceiving() {
		writeError(w, http.StatusConflict, "federation %q is %s here", fed, tenantStateName(t.state.Load()))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "receiving"})
}

// handleHandoffReceive imports one shard stream. mode=active is a step
// of an inbound handoff (tenant must be receiving); mode=standby is the
// full-sync half of standby replication (tenant must be remote).
func (s *Server) handleHandoffReceive(w http.ResponseWriter, r *http.Request) {
	t, q, ok := s.clusterShardParams(w, r)
	if !ok {
		return
	}
	st := t.state.Load()
	switch r.URL.Query().Get("mode") {
	case "active":
		if st != tenantReceiving {
			writeError(w, http.StatusConflict, "federation %q is %s, not receiving", t.name, tenantStateName(st))
			return
		}
	case "standby":
		if st != tenantRemote {
			writeError(w, http.StatusConflict, "federation %q is %s, not remote", t.name, tenantStateName(st))
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "mode must be active or standby")
		return
	}
	if t.store == nil {
		writeError(w, http.StatusBadRequest, "federation %q has no durable store", t.name)
		return
	}
	if err := t.store.ImportShard(q.String(), http.MaxBytesReader(w, r.Body, int64(maxShipBytes))); err != nil {
		writeError(w, http.StatusInternalServerError, "import %v: %v", q, err)
		return
	}
	next, err := t.store.ReplicaSeq(q.String())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ReplicateResponse{Next: next})
}

// handleHandoffActivate commits an inbound handoff: open the shipped
// state, start serving, bump the routing epoch. Idempotent — a source
// whose ack was lost (activation can outlive its PeerTimeout) re-sends
// the activate, and a tenant already activated by this handoff answers
// with the committed epoch instead of an error. activateMu single-
// flights the commit, so the retry waits for the first attempt rather
// than racing a second open of the same shards.
func (s *Server) handleHandoffActivate(w http.ResponseWriter, r *http.Request) {
	cs := s.cluster
	fed := r.URL.Query().Get("federation")
	t, ok := s.tenants[fed]
	if !ok {
		writeError(w, http.StatusNotFound, "server: unknown federation %q", fed)
		return
	}
	epoch, err := strconv.ParseUint(r.URL.Query().Get("epoch"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad epoch: %v", err)
		return
	}
	t.activateMu.Lock()
	defer t.activateMu.Unlock()
	switch st := t.state.Load(); st {
	case tenantActive:
		// Retried commit: re-assert the override at the requested epoch
		// and report success again.
		got := cs.applyOverride(fed, cs.self.ID, epoch)
		writeJSON(w, http.StatusOK, map[string]uint64{"epoch": got})
		return
	case tenantReceiving:
	default:
		writeError(w, http.StatusConflict, "federation %q is %s, not receiving", fed, tenantStateName(st))
		return
	}
	if err := s.activateTenant(t); err != nil {
		t.finishReceiving(tenantRemote)
		writeError(w, http.StatusInternalServerError, "activating %q: %v", fed, err)
		return
	}
	got := cs.applyOverride(fed, cs.self.ID, epoch)
	t.finishReceiving(tenantActive)
	cs.handoffsIn.Inc()
	cs.gossip()
	s.log.Info("handoff received", "federation", fed, "epoch", got)
	writeJSON(w, http.StatusOK, map[string]uint64{"epoch": got})
}

// handleHandoffAbort rolls the target back to remote after a failed
// handoff; held requests chase the (reverted) owner. Serialized with
// activation: an abort racing an in-flight activate waits, then finds
// the tenant active and leaves it alone — the source only aborts after
// verifying the target did not activate.
func (s *Server) handleHandoffAbort(w http.ResponseWriter, r *http.Request) {
	fed := r.URL.Query().Get("federation")
	t, ok := s.tenants[fed]
	if !ok {
		writeError(w, http.StatusNotFound, "server: unknown federation %q", fed)
		return
	}
	t.activateMu.Lock()
	if t.state.Load() == tenantReceiving {
		t.finishReceiving(tenantRemote)
	}
	t.activateMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"status": "aborted"})
}

// handleTakeover (POST /v1/admin/takeover?federation=) promotes this
// node to fed's owner from locally replicated state — the recovery
// path after the owner died. The receiving state holds requests that
// arrive mid-promotion.
func (s *Server) handleTakeover(w http.ResponseWriter, r *http.Request) {
	cs := s.cluster
	fed := r.URL.Query().Get("federation")
	t, ok := s.tenants[fed]
	if !ok {
		writeError(w, http.StatusNotFound, "server: unknown federation %q", fed)
		return
	}
	if !t.beginReceiving() {
		writeError(w, http.StatusConflict, "federation %q is %s here", fed, tenantStateName(t.state.Load()))
		return
	}
	t.activateMu.Lock()
	if err := s.activateTenant(t); err != nil {
		t.finishReceiving(tenantRemote)
		t.activateMu.Unlock()
		writeError(w, http.StatusInternalServerError, "takeover of %q: %v", fed, err)
		return
	}
	epoch := cs.applyOverride(fed, cs.self.ID, cs.table.Load().Epoch()+1)
	t.finishReceiving(tenantActive)
	t.activateMu.Unlock()
	cs.takeovers.Inc()
	cs.gossip()
	recovered := make(map[string]int, len(t.queries))
	for _, q := range sortedQueries(t) {
		if h := t.sched.History(q); h != nil {
			recovered[q.String()] = h.Len()
		}
	}
	s.log.Info("takeover complete", "federation", fed, "epoch", epoch)
	writeJSON(w, http.StatusOK, HandoffResponse{
		Federation:   fed,
		To:           cs.self.ID,
		Epoch:        epoch,
		Observations: recovered,
	})
}

// activateTenant materializes a cold tenant's serving state: open each
// query's history (recovering whatever the store holds — a shipped
// handoff stream, a replica log, or nothing) and bootstrap any
// shortfall below the spec's target, exactly like a warm boot.
func (s *Server) activateTenant(t *tenant) error {
	qs := sortedQueries(t)
	if op, ok := t.sched.(historyOpener); ok {
		for _, q := range qs {
			if _, err := op.OpenHistory(q); err != nil {
				return err
			}
		}
	}
	if bs, ok := t.sched.(bootstrapper); ok {
		for _, q := range qs {
			h := t.sched.History(q)
			if h == nil {
				continue
			}
			if need := t.bootstrap - h.Len(); need > 0 {
				if err := bs.Bootstrap(q, need); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Table reconciliation
// ---------------------------------------------------------------------

// reconcileTenants squares local tenant state with the current routing
// table: any tenant this node is serving (active) that the table maps
// to another member is demoted. This is the convergence path for a
// former owner that slept through a takeover or handoff — a restarted
// node boots at epoch 1 with its ring-owned tenants active, and without
// this step it would keep serving stale state forever after gossip
// hands it the newer table. Called after every table adoption.
func (s *Server) reconcileTenants() {
	cs := s.cluster
	tab := cs.table.Load()
	for name, t := range s.tenants {
		owner := tab.Owner(name)
		if owner.ID == cs.self.ID || t.state.Load() != tenantActive {
			continue
		}
		// Demotion drains and does peer-free file work; keep it off the
		// gossip handler's request path.
		go s.demoteStaleOwner(t, owner)
	}
}

// demoteStaleOwner stops serving a federation the routing table has
// moved elsewhere: redirect new requests at the adopted owner, drain
// the in-flight ones, then release local state so the next activation
// here starts from disk. The active→sending CAS makes it single-entry
// and yields to a concurrent operator-driven handoff.
func (s *Server) demoteStaleOwner(t *tenant, owner cluster.Member) {
	cs := s.cluster
	if !t.state.CompareAndSwap(tenantActive, tenantSending) {
		return
	}
	if cs.table.Load().Owner(t.name).ID == cs.self.ID {
		// The table moved back underneath the CAS; keep serving.
		t.state.Store(tenantActive)
		return
	}
	t.ownerHint.Store(&owner)
	ctx, cancel := context.WithTimeout(s.lifeCtx, cs.cfg.PeerTimeout)
	err := t.drainInflight(ctx)
	cancel()
	if err != nil {
		// Stragglers get errors from the closed store rather than this
		// node silently forking the federation's history.
		s.log.Warn("demotion drain incomplete", "federation", t.name, "error", err.Error())
	}
	if rep := cs.repl[t.name]; rep != nil {
		rep.DisarmAll()
	}
	s.releaseTenantState(t)
	t.state.Store(tenantRemote)
	t.ownerHint.Store(nil)
	s.log.Warn("demoted stale ownership", "federation", t.name,
		"owner", owner.ID, "epoch", cs.table.Load().Epoch())
}

// bootstrapRoutes exchanges routing tables with peers at boot, so a
// restarted node (whose table starts from the persisted copy, or epoch
// 1 without one) learns about ownership moves it slept through before
// serving stale state for long, even if no further mutation ever
// gossips. Best-effort: retries until at least one peer answers, then
// leaves freshness to gossip-on-mutation and the reconcile pass. Peers
// are tried in a per-node shuffled order with jittered retries, so a
// whole cluster restarting at once fans its first exchanges out instead
// of hammering whichever member sorts first.
func (s *Server) bootstrapRoutes() {
	cs := s.cluster
	h := fnv.New64a()
	h.Write([]byte(cs.self.ID))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	for {
		tab := cs.table.Load()
		body, _ := json.Marshal(RouteUpdate{Epoch: tab.Epoch(), Overrides: tab.Overrides()})
		members := append([]cluster.Member(nil), tab.Ring().Members()...)
		rng.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
		reached := false
		for _, m := range members {
			if m.ID == cs.self.ID {
				continue
			}
			var peer RouteUpdate
			if err := cs.postJSON(m.Addr+"/v1/admin/route", body, &peer); err != nil {
				continue
			}
			reached = true
			if cs.adoptTable(peer.Epoch, peer.Overrides) {
				s.reconcileTenants()
			}
		}
		if reached {
			return
		}
		select {
		case <-s.lifeCtx.Done():
			return
		case <-time.After(cs.cfg.SyncInterval/2 + time.Duration(rng.Int63n(int64(cs.cfg.SyncInterval)))):
		}
	}
}

// ---------------------------------------------------------------------
// Standby sync loop
// ---------------------------------------------------------------------

// syncLoop keeps every owned tenant's standby armed: any shard whose
// replication stream is not currently streaming (never armed, or
// degraded by a standby outage) gets a fresh full sync — checkpoint,
// export, ship, release — after which the synchronous frame stream
// resumes. A standby that keeps failing (down, hung, partitioned) is
// retried under exponential backoff — up to 2^5 intervals between
// attempts — so a dead peer costs one slow ship per backoff window
// instead of one per tick. Holding a stream no longer blocks acks (see
// cluster.Replicator.Hold), so even an in-flight failed attempt never
// stalls the write path. Runs until the server's lifetime context ends.
func (s *Server) syncLoop() {
	cs := s.cluster
	defer close(cs.syncDone)
	tick := time.NewTicker(cs.cfg.SyncInterval)
	defer tick.Stop()
	// Per-tenant backoff state, touched only by this goroutine.
	skip := make(map[string]int)
	fails := make(map[string]int)
	for {
		select {
		case <-s.lifeCtx.Done():
			return
		case <-tick.C:
			for _, t := range s.tenants {
				if skip[t.name] > 0 {
					skip[t.name]--
					continue
				}
				if s.syncTenant(t) {
					fails[t.name] = 0
					continue
				}
				fails[t.name]++
				n := fails[t.name]
				if n > 5 {
					n = 5
				}
				skip[t.name] = 1 << n
			}
		}
	}
}

// syncTenant full-syncs every non-streaming shard of one owned tenant
// to its standby. Returns false when any shard's sync failed, so the
// loop can back off instead of re-attempting every tick.
func (s *Server) syncTenant(t *tenant) bool {
	cs := s.cluster
	rep := cs.repl[t.name]
	if rep == nil || t.store == nil || t.state.Load() != tenantActive {
		return true
	}
	standby, ok := cs.table.Load().Standby(t.name)
	if !ok {
		return true
	}
	checkpointed := false
	healthy := true
	for _, q := range sortedQueries(t) {
		shard := q.String()
		if rep.Streaming(shard) {
			continue
		}
		if !checkpointed {
			// One compaction per round keeps each export a snapshot
			// plus a short suffix.
			if err := t.checkpoint(); err != nil {
				s.log.Warn("standby sync checkpoint failed", "federation", t.name, "error", err.Error())
				return false
			}
			checkpointed = true
		}
		// Hold the stream at the export cut: frames appended while the
		// snapshot is in flight buffer locally and ship only after the
		// standby confirms the import they extend. Acks do not wait on
		// a held stream, so a hung standby slows only this sync.
		var buf bytes.Buffer
		err := t.store.ExportShard(shard, &buf, func(next uint64) { rep.Hold(shard, next) })
		if err != nil {
			s.log.Warn("standby sync export failed", "federation", t.name, "query", shard, "error", err.Error())
			healthy = false
			continue
		}
		url := fmt.Sprintf("%s/v1/admin/handoff/receive?federation=%s&query=%s&mode=standby",
			standby.Addr, t.name, shard)
		if err := cs.post(url, bytes.NewReader(buf.Bytes())); err != nil {
			rep.Disarm(shard)
			s.log.Warn("standby sync ship failed", "federation", t.name, "query", shard,
				"standby", standby.ID, "error", err.Error())
			healthy = false
			continue
		}
		rep.Release(shard)
		cs.syncs.Inc()
		s.log.Info("standby armed", "federation", t.name, "query", shard, "standby", standby.ID)
	}
	return healthy
}
