package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/tpch"
)

func TestHistoryPagingAndTruncationStats(t *testing.T) {
	stub := &stubSched{}
	h := stub.History(tpch.QueryQ13)
	for i := 0; i < 5; i++ {
		if err := h.Append(core.Observation{
			X:     []float64{float64(i), 1, 1, 1, 0},
			Costs: []float64{float64(i) * 10, float64(i)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	srv := newTestServer(t, stub, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	getPage := func(query string) HistoryResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", query, resp.StatusCode)
		}
		var hr HistoryResponse
		if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
			t.Fatal(err)
		}
		return hr
	}

	// No params: everything fits under the default cap.
	hr := getPage("/v1/history/Q13")
	if hr.Len != 5 || len(hr.Observations) != 5 || hr.Truncated || hr.Offset != 0 {
		t.Fatalf("default page: %+v", hr)
	}
	// offset walks back in time; the cut page is flagged as truncated.
	hr = getPage("/v1/history/Q13?offset=2&limit=2")
	if len(hr.Observations) != 2 || hr.Offset != 2 || !hr.Truncated {
		t.Fatalf("offset page: %+v", hr)
	}
	if hr.Observations[0].X[0] != 2 || hr.Observations[1].X[0] != 1 {
		t.Fatalf("offset page order: %+v", hr.Observations)
	}
	// limit=0 is the cheap length probe.
	hr = getPage("/v1/history/Q13?limit=0")
	if hr.Len != 5 || len(hr.Observations) != 0 || !hr.Truncated {
		t.Fatalf("length probe: %+v", hr)
	}
	// Past-the-end offset is an empty page, not an error.
	hr = getPage("/v1/history/Q13?offset=99")
	if len(hr.Observations) != 0 || hr.Truncated {
		t.Fatalf("past-the-end page: %+v", hr)
	}

	if got := srv.tenants["test"].stats.histTruncated.Load(); got != 2 {
		t.Fatalf("history_truncated = %d, want 2", got)
	}
	resp, err := http.Get(ts.URL + "/v1/history/Q13?offset=-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative offset: status %d", resp.StatusCode)
	}
}

// cpSched is a stub scheduler with the Checkpointer capability.
type cpSched struct {
	stubSched
	cpCalls atomic.Int64
	cpErr   error
}

func (s *cpSched) Checkpoint() error {
	s.cpCalls.Add(1)
	return s.cpErr
}

func TestAdminCheckpointEndpoint(t *testing.T) {
	stub := &cpSched{}
	srv, err := NewWithSchedulers(Config{}, map[string]QueryScheduler{"test": stub}, tpch.AllQueries)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/admin/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var cr CheckpointResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || cr.Federations["test"] != "ok" {
		t.Fatalf("checkpoint: status %d, body %+v", resp.StatusCode, cr)
	}
	if stub.cpCalls.Load() != 1 {
		t.Fatalf("scheduler checkpoints = %d, want 1", stub.cpCalls.Load())
	}
	if got := srv.tenants["test"].stats.checkpoints.Load(); got != 1 {
		t.Fatalf("checkpoint counter = %d, want 1", got)
	}

	resp, err = http.Post(ts.URL+"/v1/admin/checkpoint?federation=nope", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown federation: status %d", resp.StatusCode)
	}

	stub.cpErr = errors.New("disk on fire")
	resp, err = http.Post(ts.URL+"/v1/admin/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError || cr.Federations["test"] != "disk on fire" {
		t.Fatalf("failing checkpoint: status %d, body %+v", resp.StatusCode, cr)
	}
	if got := srv.tenants["test"].stats.checkpointErr.Load(); got != 1 {
		t.Fatalf("checkpoint_failures = %d, want 1", got)
	}
}

// TestDrainChecksPointsTenants: a clean drain runs the final checkpoint
// on every tenant.
func TestDrainCheckpointsTenants(t *testing.T) {
	stub := &cpSched{}
	srv, err := NewWithSchedulers(Config{}, map[string]QueryScheduler{"test": stub}, tpch.AllQueries)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if stub.cpCalls.Load() != 1 {
		t.Fatalf("drain ran %d checkpoints, want 1", stub.cpCalls.Load())
	}
}

// TestServeRestartRecoversHistory is the kill-and-restart acceptance
// test over the full stack: a durable server is killed without any
// drain or checkpoint (WAL-only state), restarted, and must serve its
// first post-restart decision from a history — and therefore a DREAM
// window fit — identical to a never-restarted control run fed the same
// appends. A second restart after a clean drain then exercises the
// snapshot path.
func TestServeRestartRecoversHistory(t *testing.T) {
	if testing.Short() {
		t.Skip("full serving stack")
	}
	spec := FederationSpec{
		Name:        "paper",
		SF:          0.05,
		NodeChoices: []int{1, 2},
		Bootstrap:   12,
		Queries:     []string{"Q12"},
	}
	dir := t.TempDir()
	durable := Config{Federations: []FederationSpec{spec}, Store: StoreConfig{Dir: dir}}

	histLen := func(ts *httptest.Server) int {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/history/Q12?limit=0")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var hr HistoryResponse
		if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
			t.Fatal(err)
		}
		return hr.Len
	}
	submit := func(ts *httptest.Server) QueryResponse {
		t.Helper()
		resp, body := postQuery(t, ts.URL, QueryRequest{Query: "Q12", Weights: []float64{1, 1}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit: %d %s", resp.StatusCode, body)
		}
		var qr QueryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		return qr
	}

	// Victim: durable, two decisions, then "killed" — no drain, no
	// checkpoint, the WAL is all that survives.
	srv1, err := New(durable)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	submit(ts1)
	submit(ts1)
	if got := histLen(ts1); got != 14 {
		t.Fatalf("victim history = %d, want 14", got)
	}
	ts1.Close() // the crash

	// Control: identical spec and request sequence, never restarted.
	ctrl, err := New(Config{Federations: []FederationSpec{spec}})
	if err != nil {
		t.Fatal(err)
	}
	tsC := httptest.NewServer(ctrl.Handler())
	defer tsC.Close()
	submit(tsC)
	submit(tsC)
	want := submit(tsC) // the control's third decision

	// Restart over the same data dir: recovery must replay all 14
	// observations (12 bootstrap + 2 decisions) and skip re-bootstrap.
	srv2, err := New(durable)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if got := histLen(ts2); got != 14 {
		t.Fatalf("recovered history = %d, want 14", got)
	}
	got := submit(ts2)
	// Estimation is a pure function of (history, plan space): the
	// recovered run must pick the same plan with the same estimated
	// costs as the never-restarted control. (Measured costs differ —
	// the simulated cloud's noise RNG is process-local.)
	if got.Plan != want.Plan {
		t.Fatalf("post-restart plan %+v, control chose %+v", got.Plan, want.Plan)
	}
	if got.EstimatedTimeS != want.EstimatedTimeS || got.EstimatedUSD != want.EstimatedUSD {
		t.Fatalf("post-restart estimates (%v, %v), control (%v, %v)",
			got.EstimatedTimeS, got.EstimatedUSD, want.EstimatedTimeS, want.EstimatedUSD)
	}
	if got.ParetoSize != want.ParetoSize || got.PlanSpace != want.PlanSpace {
		t.Fatalf("post-restart front %d/%d, control %d/%d",
			got.ParetoSize, got.PlanSpace, want.ParetoSize, want.PlanSpace)
	}

	// Clean drain → final checkpoint → snapshot-based recovery.
	if err := srv2.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv3, err := New(durable)
	if err != nil {
		t.Fatal(err)
	}
	ts3 := httptest.NewServer(srv3.Handler())
	defer ts3.Close()
	if got := histLen(ts3); got != 15 {
		t.Fatalf("post-drain recovery = %d, want 15", got)
	}
	if err := srv3.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
