// Package server exposes the IReS scheduler pipeline as a long-running
// federation query service — the serving layer of the reproduction's
// "heavy traffic" story. It hosts a registry of named federations (each
// with its own scheduler and histories), admits requests through a
// bounded queue, and batches concurrent submissions of the same query
// so they share one plan sweep through the snapshot/cache estimation
// pipeline: the expensive, policy-independent half of a round is paid
// once per batch, while selection and execution stay per-request.
//
// With Config.Store.Dir set, every tenant's histories are durable: one
// histstore root per federation, observations written ahead to a WAL as
// they are recorded, snapshots compacted on a timer, on demand and at
// drain, and schedulers warm-started from the recovered histories on
// boot — a restarted midasd estimates from exactly the history it had
// when it stopped.
//
// With Config.Cluster set, the server is one member of a consistent-
// hash sharded cluster (see cluster.go): it owns a subset of the hosted
// federations, answers requests for the rest with 307 + the owner's
// address, and can hand live tenants off to peers (or take over a dead
// peer's tenants from their replicated WALs) without losing an acked
// write.
//
// Endpoints:
//
//	POST /v1/queries          submit a query + policy, get the decision
//	GET  /v1/history/{query}  recorded executions of one query (paged)
//	GET  /v1/stats            counters and latency percentiles
//	POST /v1/admin/checkpoint compact histories to durable snapshots
//	GET  /healthz             liveness (503 while draining)
//	GET  /readyz              readiness (503 while draining or mid-handoff)
//
// Cluster mode only:
//
//	GET  /v1/cluster          epoch-versioned routing table
//	POST /v1/admin/handoff    live-migrate a federation to a peer
//	POST /v1/admin/takeover   promote this standby after an owner death
//	POST /v1/admin/route      table gossip (server-to-server)
//	POST /v1/admin/replicate  standby WAL shipping (server-to-server)
//	POST /v1/admin/handoff/{prepare,receive,activate,abort}
//	                          handoff sub-steps (server-to-server)
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/histstore"
	"repro/internal/ires"
	"repro/internal/metrics"
	"repro/internal/tpch"
)

// defaultHistoryLimit caps GET /v1/history responses when the client
// does not pass ?limit= — large enough for any dashboard, small enough
// that a long-lived tenant's full log cannot be serialized by accident.
// Responses that drop observations set "truncated" and are counted in
// /v1/stats.
const defaultHistoryLimit = 500

// StoreConfig declares where (and how) tenant histories persist.
type StoreConfig struct {
	// Dir is the root data directory; each federation gets its own
	// subdirectory of per-query WAL+snapshot shards. Empty disables
	// persistence entirely — histories live and die in memory, the
	// pre-durability behavior.
	Dir string
	// CheckpointInterval compacts every tenant's WALs into snapshots on
	// this period. 0 disables the timer; checkpoints still run at drain
	// and via POST /v1/admin/checkpoint, and the WAL alone already makes
	// every recorded execution durable.
	CheckpointInterval time.Duration
	// Fsync syncs the WAL after every recorded execution (histstore
	// Options.Fsync): durable against machine crashes, much slower.
	Fsync bool
	// GroupCommit coalesces concurrent WAL appends onto shared fsyncs
	// (histstore Options.GroupCommit): the same machine-crash
	// durability as Fsync — no response leaves the server before the
	// fsync covering its recorded execution returns — at a fraction of
	// the fsync count. Supersedes Fsync's per-append sync when both
	// are set.
	GroupCommit bool
	// CommitInterval and CommitBatch tune the group committer
	// (histstore Options.CommitInterval / CommitBatchSize). Zero
	// CommitInterval adds no artificial delay — fsyncs batch whatever
	// accumulated while the previous one was in flight; zero
	// CommitBatch takes the histstore default.
	CommitInterval time.Duration
	CommitBatch    int
}

// Config assembles a Server.
type Config struct {
	// Federations declares the hosted tenants; at least one.
	Federations []FederationSpec
	// QueueDepth bounds concurrently admitted requests per federation;
	// excess submissions to that tenant are rejected with 429 (default
	// 1024). The bound is per tenant so one hot federation saturating
	// its queue cannot head-of-line-block the others.
	QueueDepth int
	// RequestTimeout caps one submission end to end unless the request
	// carries its own shorter timeout_ms (default 30s; negative
	// disables the per-request deadline entirely). Expiry → 504.
	RequestTimeout time.Duration
	// SweepTimeout caps one plan sweep. Sweeps run detached from the
	// requesting client so coalesced followers can still use them
	// (default 60s; negative disables the sweep deadline, which also
	// keeps the deadline context's allocations off the hot path).
	SweepTimeout time.Duration
	// Store makes tenant histories durable; the zero value keeps them
	// in memory.
	Store StoreConfig
	// Cluster makes this server one member of a consistent-hash
	// sharded midasd cluster (see cluster.go); nil — the default —
	// serves every federation standalone.
	Cluster *ClusterConfig
	// Metrics is the registry every layer under this server publishes
	// into — request latency histograms, sweep and model-cache series,
	// histstore WAL health — and the registry GET /metrics renders. Nil
	// creates a fresh registry (so /metrics always works); pass one to
	// embed the server's metrics in a larger process. A registry backs
	// at most one Server: instruments are registered per tenant name,
	// and registering the same tenant twice panics.
	Metrics *metrics.Registry
	// Logger receives the server's structured logs (request-scoped
	// completions at Debug, lifecycle at Info, failures at Warn). Nil
	// discards everything, the zero-cost default for embedders;
	// cmd/midasd wires a JSON handler.
	Logger *slog.Logger
}

func (c *Config) setDefaults() {
	// Zero takes the default (a negative depth would panic make(chan)).
	// A negative RequestTimeout is meaningful: no per-request deadline,
	// which also keeps context.WithTimeout's allocations off the hot
	// path for embedders that bound requests elsewhere.
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.SweepTimeout == 0 {
		c.SweepTimeout = 60 * time.Second
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
}

// Server hosts the federations and implements the HTTP API.
type Server struct {
	cfg     Config
	tenants map[string]*tenant
	sole    string // tenant name when exactly one is hosted

	// reqSeconds is the per-(federation, query) request latency
	// histogram (the hot path observes through the tenants' pre-bound
	// children, not With); log is the structured logger (never nil
	// after setDefaults).
	reqSeconds *metrics.HistogramVec
	log        *slog.Logger

	start time.Time

	// draining mirrors the drain state for lock-free handler reads; the
	// authoritative transition happens under drainMu together with the
	// in-flight count, so no request can slip past a drain.
	draining  atomic.Bool
	drainMu   sync.Mutex
	inflightN int
	// idle is non-nil while a drain waits for in-flight requests; it is
	// closed when the last one finishes.
	idle chan struct{}

	// lifeCtx outlives any single request; sweeps run under it so a
	// disconnecting client cannot cancel a batch others joined.
	lifeCtx  context.Context
	lifeStop context.CancelFunc
	// sweepCtx is the newSweepCtx method value, bound once so the hot
	// path does not allocate a fresh closure per request.
	sweepCtx func() (context.Context, context.CancelFunc)

	// cpDone is closed when the periodic checkpoint loop exits; nil
	// when no loop was started.
	cpDone chan struct{}

	// cluster is this server's cluster membership; nil in standalone
	// mode, which keeps the submit hot path to a single pointer check.
	cluster *clusterState
}

// beginRequest registers an in-flight request unless the server is
// draining.
func (s *Server) beginRequest() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.inflightN++
	return true
}

// endRequest retires an in-flight request, waking a waiting drain when
// it was the last one.
func (s *Server) endRequest() {
	s.drainMu.Lock()
	s.inflightN--
	if s.inflightN == 0 && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
	s.drainMu.Unlock()
}

// New builds the tenants declared in cfg (topology, calibration,
// bootstrap — this is the slow part) and returns a ready Server.
func New(cfg Config) (*Server, error) {
	if len(cfg.Federations) == 0 {
		return nil, errors.New("server: no federations configured")
	}
	// Defaults are resolved before tenant builds so the metrics
	// registry exists for the scheduler and store instruments to land
	// in.
	cfg.setDefaults()
	// Duplicate names must be rejected before any tenant is built:
	// building the second twin would re-register its per-federation
	// metric series and panic instead of returning this error.
	seen := make(map[string]bool, len(cfg.Federations))
	for i := range cfg.Federations {
		name := cfg.Federations[i].Name
		if name == "" {
			continue // buildTenant reports the nameless-spec error
		}
		if seen[name] {
			return nil, fmt.Errorf("server: duplicate federation name %q", name)
		}
		seen[name] = true
	}
	// The cluster state recovers the persisted routing table (if any)
	// here, before tenants are built — the owned/cold decisions below
	// must reflect the placements this node last committed, not the
	// ring's defaults.
	cs, err := newClusterState(cfg.Cluster, cfg.Store.Dir)
	if err != nil {
		return nil, err
	}
	tenants := make(map[string]*tenant, len(cfg.Federations))
	// A failed build releases the WAL handles of every tenant already
	// built, so a caller retrying New does not leak file descriptors.
	closeBuilt := func() {
		for _, t := range tenants {
			_ = t.closeStore()
		}
	}
	for i := range cfg.Federations {
		// In cluster mode every node builds every tenant — the
		// scheduler assembly is deterministic, so activation after a
		// handoff or takeover only has to open histories — but only
		// the ring owner's tenants open and bootstrap theirs now.
		owned := cs == nil || cs.owns(cfg.Federations[i].Name)
		var mirror histstore.Mirror
		if cs != nil && cs.replicating() {
			mirror = cs.newReplicator(cfg.Federations[i].Name)
		}
		t, err := buildTenant(cfg.Federations[i], cfg.Store, cfg.Metrics, !owned, mirror)
		if err != nil {
			closeBuilt()
			return nil, err
		}
		if _, dup := tenants[t.name]; dup {
			_ = t.closeStore()
			closeBuilt()
			return nil, fmt.Errorf("server: duplicate federation name %q", t.name)
		}
		if !owned {
			t.state.Store(tenantRemote)
		}
		tenants[t.name] = t
	}
	return newServer(cfg, tenants, cs), nil
}

// NewWithSchedulers wires pre-built schedulers directly into a Server —
// the assembly hook tests and embedders use to skip calibration and
// bootstrap. Each scheduler serves the given queries under its map key.
func NewWithSchedulers(cfg Config, scheds map[string]QueryScheduler, queries []tpch.QueryID) (*Server, error) {
	if len(scheds) == 0 {
		return nil, errors.New("server: no schedulers")
	}
	cs, err := newClusterState(cfg.Cluster, cfg.Store.Dir)
	if err != nil {
		return nil, err
	}
	tenants := make(map[string]*tenant, len(scheds))
	for name, sched := range scheds {
		t := newTenant(name, sched, queries)
		if cs != nil && !cs.owns(name) {
			t.state.Store(tenantRemote)
		}
		tenants[name] = t
	}
	return newServer(cfg, tenants, cs), nil
}

func newServer(cfg Config, tenants map[string]*tenant, cs *clusterState) *Server {
	cfg.setDefaults()
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		tenants:  tenants,
		log:      cfg.Logger,
		start:    time.Now(),
		lifeCtx:  ctx,
		lifeStop: stop,
	}
	s.sweepCtx = s.newSweepCtx
	s.cluster = cs
	// Admission is sharded per tenant: each federation gets its own
	// QueueDepth-slot semaphore, so a hot tenant saturating its queue
	// sheds its own load without head-of-line-blocking the others.
	for _, t := range tenants {
		t.admit = make(chan struct{}, cfg.QueueDepth)
	}
	if len(tenants) == 1 {
		for name := range tenants {
			s.sole = name
		}
	}
	s.registerMetrics()
	if cs != nil {
		cs.srv = s
		if cs.cfg.AutoFailover && len(cs.cfg.Peers) > 1 {
			// The detector must exist before registerClusterMetrics so
			// the peer-health gauges can read it.
			s.initDetector()
		}
		s.registerClusterMetrics()
		if len(cs.cfg.Peers) > 1 {
			// Catch up on routing moves this node slept through (a
			// restarted former owner must not serve stale tenants until
			// the next mutation happens to gossip).
			go s.bootstrapRoutes()
		}
		if cs.replicating() {
			cs.syncDone = make(chan struct{})
			go s.syncLoop()
		}
		if cs.detector != nil {
			cs.rebalanceKick = make(chan struct{}, 1)
			cs.rebalanceDone = make(chan struct{})
			go s.rebalanceLoop()
			cs.detector.Start()
		}
	}
	if cfg.Store.CheckpointInterval > 0 {
		s.cpDone = make(chan struct{})
		go s.checkpointLoop()
	}
	return s
}

// Metrics returns the registry backing GET /metrics — the hook for
// embedders that want to add their own instruments or scrape without
// HTTP.
func (s *Server) Metrics() *metrics.Registry { return s.cfg.Metrics }

// registerMetrics wires the serving-layer instruments: admission and
// drain gauges, the per-(federation, query) latency histogram, and one
// set of counter collectors per tenant reading the same atomics
// /v1/stats reports (so the two surfaces can never disagree).
func (s *Server) registerMetrics() {
	reg := s.cfg.Metrics
	for _, t := range s.tenants {
		t := t
		reg.GaugeFunc("midas_admission_queue_depth",
			"Requests currently holding one of this federation's admission slots.",
			func() float64 { return float64(len(t.admit)) },
			"federation", t.name)
		reg.GaugeFunc("midas_admission_queue_capacity",
			"Per-federation admission slot limit (ServerConfig.QueueDepth); beyond it submissions get 429.",
			func() float64 { return float64(cap(t.admit)) },
			"federation", t.name)
	}
	reg.GaugeFunc("midas_inflight_requests",
		"Admitted requests between drain registration and completion.",
		func() float64 {
			s.drainMu.Lock()
			defer s.drainMu.Unlock()
			return float64(s.inflightN)
		})
	reg.GaugeFunc("midas_draining",
		"1 while the server drains (healthz 503, submissions rejected), else 0.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("midas_uptime_seconds",
		"Seconds since the server was assembled.",
		func() float64 { return time.Since(s.start).Seconds() })
	s.reqSeconds = reg.HistogramVec("midas_request_duration_seconds",
		"Server-side wall time of one completed scheduling round.",
		nil, "federation", "query")
	for _, t := range s.tenants {
		t.registerMetrics(reg)
		// Pre-bind each (federation, query) latency child: HistogramVec
		// label resolution allocates, so the hot path reads this map
		// (immutable once serving starts) instead of calling With.
		t.latency = make(map[tpch.QueryID]*metrics.Histogram, len(t.queries))
		for q := range t.queries {
			t.latency[q] = s.reqSeconds.With(t.name, q.String())
		}
	}
}

// Checkpointer is the optional scheduler capability behind periodic,
// admin and drain-time checkpoints; ires.Scheduler implements it (a
// no-op without an attached store). Stub schedulers without it simply
// have nothing to compact.
type Checkpointer interface {
	Checkpoint() error
}

// checkpointLoop compacts every tenant's histories on the configured
// period until the server's lifetime context ends.
func (s *Server) checkpointLoop() {
	defer close(s.cpDone)
	tick := time.NewTicker(s.cfg.Store.CheckpointInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.lifeCtx.Done():
			return
		case <-tick.C:
			s.checkpointAll()
		}
	}
}

// checkpointAll checkpoints every tenant, returning the first error
// (every tenant is attempted regardless).
func (s *Server) checkpointAll() error {
	var first error
	for _, t := range s.tenants {
		if err := t.checkpoint(); err != nil {
			s.log.Warn("checkpoint failed", "federation", t.name, "error", err.Error())
			if first == nil {
				first = err
			}
		}
	}
	return first
}

// Handler returns the API routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/queries", s.handleSubmit)
	mux.HandleFunc("GET /v1/history/{query}", s.handleHistory)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/admin/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.Handle("GET /metrics", s.cfg.Metrics.Handler())
	if s.cluster != nil {
		mux.HandleFunc("GET /v1/cluster", s.handleCluster)
		mux.HandleFunc("GET /v1/cluster/health", s.handleClusterHealth)
		mux.HandleFunc("POST /v1/admin/handoff", s.handleHandoff)
		mux.HandleFunc("POST /v1/admin/handoff/prepare", s.handleHandoffPrepare)
		mux.HandleFunc("POST /v1/admin/handoff/receive", s.handleHandoffReceive)
		mux.HandleFunc("POST /v1/admin/handoff/activate", s.handleHandoffActivate)
		mux.HandleFunc("POST /v1/admin/handoff/abort", s.handleHandoffAbort)
		mux.HandleFunc("POST /v1/admin/route", s.handleRoute)
		mux.HandleFunc("POST /v1/admin/replicate", s.handleReplicate)
		mux.HandleFunc("POST /v1/admin/takeover", s.handleTakeover)
	}
	return mux
}

// Drain stops admitting work and waits for in-flight requests to
// complete, or for ctx to expire. New submissions — and health checks —
// get 503 immediately, so load balancers rotate the instance out while
// accepted work finishes.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining.Store(true)
	s.log.Info("drain started", "inflight", s.inflightN)
	var idle chan struct{}
	if s.inflightN > 0 {
		if s.idle == nil {
			s.idle = make(chan struct{})
		}
		idle = s.idle
	}
	s.drainMu.Unlock()
	if idle != nil {
		select {
		case <-idle:
		case <-ctx.Done():
			// Best-effort final checkpoint even on an aborted drain:
			// snapshot-based compaction is safe under the appends the
			// straggling requests may still make, and the WAL covers
			// whatever lands after it. Stores stay open for those
			// stragglers; the process is exiting anyway.
			s.stopCheckpointLoop()
			_ = s.checkpointAll()
			return fmt.Errorf("server: drain aborted with requests in flight: %w", ctx.Err())
		}
	}
	// Stop the periodic checkpoint loop before the final checkpoint so
	// a late tick cannot race the store close below and record spurious
	// failures on a clean shutdown.
	s.stopCheckpointLoop()
	// Final checkpoint: a cleanly drained instance restarts from a
	// compact snapshot with an empty WAL.
	err := s.checkpointAll()
	for _, t := range s.tenants {
		if cerr := t.closeStore(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if cs := s.cluster; cs != nil && cs.routes != nil {
		if cerr := cs.routes.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	s.log.Info("drain complete", "clean", err == nil)
	return err
}

// stopCheckpointLoop cancels the server lifetime context and waits for
// the periodic checkpoint, standby sync, failure detector and rebalance
// loops (those that were started) to exit.
func (s *Server) stopCheckpointLoop() {
	s.lifeStop()
	if s.cpDone != nil {
		<-s.cpDone
	}
	if cs := s.cluster; cs != nil {
		if cs.detector != nil {
			cs.detector.Stop()
		}
		if cs.rebalanceDone != nil {
			<-cs.rebalanceDone
		}
		if cs.syncDone != nil {
			<-cs.syncDone
		}
	}
}

// handleCheckpoint (POST /v1/admin/checkpoint) compacts histories to
// durable snapshots on demand — the hook operators hit before risky
// deploys. With ?federation= only that tenant is checkpointed.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		// The drain itself runs the final checkpoint; after it the
		// stores are closed and a checkpoint would only report errors.
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	name := r.URL.Query().Get("federation")
	var tenants []*tenant
	if name == "" {
		for _, t := range s.tenants {
			tenants = append(tenants, t)
		}
	} else {
		t, ok := s.tenants[name]
		if !ok {
			writeError(w, http.StatusNotFound, "server: unknown federation %q", name)
			return
		}
		tenants = []*tenant{t}
	}
	resp := CheckpointResponse{Federations: make(map[string]string, len(tenants))}
	status := http.StatusOK
	for _, t := range tenants {
		if err := t.checkpoint(); err != nil {
			resp.Federations[t.name] = err.Error()
			status = http.StatusInternalServerError
		} else {
			resp.Federations[t.name] = "ok"
		}
	}
	writeJSON(w, status, resp)
}

// tenantFor resolves the request's federation name.
func (s *Server) tenantFor(name string) (*tenant, error) {
	if name == "" {
		if s.sole != "" {
			return s.tenants[s.sole], nil
		}
		return nil, fmt.Errorf("server: %d federations hosted, request must name one", len(s.tenants))
	}
	t, ok := s.tenants[name]
	if !ok {
		return nil, fmt.Errorf("server: unknown federation %q", name)
	}
	return t, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// policyOf translates the wire policy to the scheduler's.
func policyOf(req *QueryRequest) (ires.Policy, error) {
	pol := ires.Policy{
		Weights:      req.Weights,
		Constraints:  req.Constraints,
		LexOrder:     req.LexOrder,
		LexTolerance: req.LexTolerance,
	}
	switch req.Strategy {
	case "", "weighted":
		pol.Strategy = ires.WeightedSumSelection
	case "knee":
		pol.Strategy = ires.KneeSelection
	case "lex":
		pol.Strategy = ires.LexicographicSelection
	default:
		return pol, fmt.Errorf("unknown strategy %q (weighted, knee, lex)", req.Strategy)
	}
	return pol, nil
}

// maxBodyBytes bounds POST /v1/queries bodies: a QueryRequest is a few
// hundred bytes, so a megabyte is generous headroom and keeps a
// malicious body from ballooning the pooled buffers.
const maxBodyBytes = 1 << 20

// serveScratch is the pooled per-request hot-path state: the HTTP
// body buffer, the decoded request (slice capacities reused across
// requests), the response buffer + object, and a long-lived encoder.
// One request holds at most one scratch from decode to respond, so the
// pool's steady-state size tracks peak concurrency.
type serveScratch struct {
	body []byte
	req  QueryRequest
	resp QueryResponse
	buf  bytes.Buffer
	dst  swapWriter
	enc  *json.Encoder
	// location, when set by a cluster redirect, becomes the response's
	// Location header (the body buffer API has nowhere else to carry
	// it); cleared at the top of every serveSubmit.
	location string
	// rd + dec decode request bodies: a long-lived json.Decoder keeps
	// its scanner state across requests (json.Unmarshal rebuilds it
	// per call), so steady-state decoding only allocates the decoded
	// values themselves.
	rd  *bytes.Reader
	dec *json.Decoder
}

// decodeRequest decodes one body into sc.req through the pooled
// decoder, enforcing Unmarshal's single-value semantics: trailing
// non-whitespace is an error, not silently buffered input for the
// next request that borrows this scratch.
func (sc *serveScratch) decodeRequest(body []byte) error {
	sc.req.reset()
	sc.rd.Reset(body)
	if err := sc.dec.Decode(&sc.req); err != nil {
		// The decoder's buffer now holds an undefined tail; rebuild it
		// so the next request starts clean (error path only).
		sc.dec = json.NewDecoder(sc.rd)
		return err
	}
	// More() skips trailing whitespace (draining it from the buffer)
	// and reports whether another value follows.
	if sc.dec.More() {
		sc.dec = json.NewDecoder(sc.rd)
		return errors.New("trailing data after JSON value")
	}
	return nil
}

// swapWriter lets one long-lived json.Encoder target a different
// destination per request (an Encoder binds its writer at
// construction).
type swapWriter struct{ w io.Writer }

func (s *swapWriter) Write(p []byte) (int, error) { return s.w.Write(p) }

var servePool = sync.Pool{New: func() any {
	sc := &serveScratch{}
	sc.enc = json.NewEncoder(&sc.dst)
	sc.rd = bytes.NewReader(nil)
	sc.dec = json.NewDecoder(sc.rd)
	return sc
}}

// reset clears the decoded request while keeping slice capacity, so
// json.Unmarshal appends into the existing arrays. Needed because
// Unmarshal leaves fields absent from the body untouched.
func (r *QueryRequest) reset() {
	r.Federation = ""
	r.Query = ""
	r.Weights = r.Weights[:0]
	r.Constraints = r.Constraints[:0]
	r.Strategy = ""
	r.LexOrder = r.LexOrder[:0]
	r.LexTolerance = 0
	r.TimeoutMS = 0
}

// readBody reads r's body into buf (reusing its capacity), bounded by
// maxBodyBytes.
func readBody(r *http.Request, buf []byte) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
		if len(buf) > maxBodyBytes {
			return buf, fmt.Errorf("body exceeds %d bytes", maxBodyBytes)
		}
	}
}

// writeErrorBuf renders an error body into resp and returns the
// status — the buffer-level twin of writeError. Error paths may
// allocate; only the success path is held allocation-free.
func writeErrorBuf(resp *bytes.Buffer, status int, format string, args ...any) int {
	_ = json.NewEncoder(resp).Encode(ErrorResponse{Error: fmt.Sprintf(format, args...)})
	return status
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	sc := servePool.Get().(*serveScratch)
	defer servePool.Put(sc)
	body, err := readBody(r, sc.body[:0])
	if cap(body) > cap(sc.body) {
		sc.body = body // keep the grown buffer for the next request
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	sc.buf.Reset()
	status := s.serveSubmit(r.Context(), sc, body, &sc.buf)
	if sc.location != "" {
		w.Header().Set("Location", sc.location)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(sc.buf.Bytes())
}

// ServeSubmit runs one query submission end to end — decode,
// admission, shared sweep, selection, execution, history record —
// without the net/http plumbing: body is the JSON QueryRequest and the
// JSON response body is appended to resp (pass it empty). The return
// value is the HTTP status the response corresponds to. handleSubmit
// wraps this; benchmarks drive it directly so the serving path's
// allocations are measurable without an HTTP stack in the way.
func (s *Server) ServeSubmit(ctx context.Context, body []byte, resp *bytes.Buffer) int {
	sc := servePool.Get().(*serveScratch)
	defer servePool.Put(sc)
	return s.serveSubmit(ctx, sc, body, resp)
}

func (s *Server) serveSubmit(ctx context.Context, sc *serveScratch, body []byte, resp *bytes.Buffer) int {
	sc.location = ""
	if s.draining.Load() {
		return writeErrorBuf(resp, http.StatusServiceUnavailable, "server is draining")
	}
	if err := sc.decodeRequest(body); err != nil {
		return writeErrorBuf(resp, http.StatusBadRequest, "bad request body: %v", err)
	}
	t, err := s.tenantFor(sc.req.Federation)
	if err != nil {
		return writeErrorBuf(resp, http.StatusNotFound, "%v", err)
	}
	q, err := tpch.ParseQueryID(sc.req.Query)
	if err != nil {
		return writeErrorBuf(resp, http.StatusBadRequest, "%v", err)
	}
	if !t.queries[q] {
		return writeErrorBuf(resp, http.StatusBadRequest, "federation %q does not serve %v", t.name, q)
	}
	if s.cluster != nil {
		// The inflight registration precedes the state load, so an
		// outbound handoff that flips the state afterwards still sees
		// this request in its drain.
		t.inflight.Add(1)
		defer t.inflight.Add(-1)
		if status, local := s.routeTenant(ctx, sc, t, resp); !local {
			return status
		}
	}
	pol, err := policyOf(&sc.req)
	if err != nil {
		return writeErrorBuf(resp, http.StatusBadRequest, "%v", err)
	}

	t.stats.received.Add(1)

	// Admission: the tenant's queue bounds how many of its submissions
	// may be in flight at once; beyond that the server sheds this
	// tenant's load instead of queueing unboundedly (other tenants'
	// queues are unaffected).
	select {
	case t.admit <- struct{}{}:
	default:
		t.stats.rejected.Add(1)
		// Debug, not Info: under sustained overload a line per shed
		// request would turn the log into its own incident.
		s.log.LogAttrs(ctx, slog.LevelDebug, "request rejected",
			slog.String("federation", t.name), slog.String("query", q.String()),
			slog.Int("status", http.StatusTooManyRequests))
		return writeErrorBuf(resp, http.StatusTooManyRequests, "admission queue full (depth %d)", s.cfg.QueueDepth)
	}
	defer func() { <-t.admit }()

	// Register with the drain accounting; a drain that began after the
	// entry check wins here, so no request starts work the drained
	// lifeCtx would immediately cancel.
	if !s.beginRequest() {
		return writeErrorBuf(resp, http.StatusServiceUnavailable, "server is draining")
	}
	defer s.endRequest()

	timeout := s.cfg.RequestTimeout
	if sc.req.TimeoutMS > 0 {
		if d := time.Duration(sc.req.TimeoutMS) * time.Millisecond; timeout <= 0 || d < timeout {
			timeout = d
		}
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	began := time.Now()
	dec, coalesced, err := s.submit(ctx, t, q, pol)
	latency := time.Since(began)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			t.stats.timeouts.Add(1)
			s.logRequest(ctx, t.name, q, nil, coalesced, latency, http.StatusGatewayTimeout, err)
			return writeErrorBuf(resp, http.StatusGatewayTimeout, "timed out after %v", timeout)
		}
		if errors.Is(err, context.Canceled) {
			// The client went away; nobody reads this response, but the
			// abandonment should not be counted as a server failure.
			t.stats.timeouts.Add(1)
			s.logRequest(ctx, t.name, q, nil, coalesced, latency, http.StatusGatewayTimeout, err)
			return writeErrorBuf(resp, http.StatusGatewayTimeout, "request cancelled")
		}
		t.stats.failed.Add(1)
		s.logRequest(ctx, t.name, q, nil, coalesced, latency, http.StatusInternalServerError, err)
		return writeErrorBuf(resp, http.StatusInternalServerError, "%v", err)
	}
	t.stats.completed.Add(1)
	if coalesced {
		t.stats.coalesced.Add(1)
	} else {
		// Sweep-leader requests account for the sweep's estimation work
		// exactly once; coalesced followers shared it.
		t.stats.plansEstimated.Add(int64(dec.PlansEstimated))
		t.stats.planSpace.Store(int64(dec.PlanSpace))
	}
	t.stats.observe(float64(latency) / float64(time.Millisecond))
	t.latency[q].Observe(latency.Seconds())
	s.logRequest(ctx, t.name, q, dec, coalesced, latency, http.StatusOK, nil)
	sc.resp = QueryResponse{
		Federation: t.name,
		Query:      q.String(),
		Plan: PlanJSON{
			Query:      dec.Plan.Query.String(),
			JoinAtLeft: dec.Plan.JoinAtLeft,
			NodesLeft:  dec.Plan.NodesLeft,
			NodesRight: dec.Plan.NodesRight,
		},
		EstimatedTimeS: dec.Estimated[0],
		EstimatedUSD:   dec.Estimated[1],
		MeasuredTimeS:  dec.Outcome.TimeS,
		MeasuredUSD:    dec.Outcome.MoneyUSD,
		ParetoSize:     dec.ParetoSize,
		PlanSpace:      dec.PlanSpace,
		PlansEstimated: dec.PlansEstimated,
		PrunePolicy:    dec.PrunePolicy,
		Coalesced:      coalesced,
		LatencyMS:      float64(latency) / float64(time.Millisecond),
	}
	if cs := s.cluster; cs != nil {
		sc.resp.Node = cs.self.ID
		sc.resp.Epoch = cs.table.Load().Epoch()
	}
	sc.dst.w = resp
	_ = sc.enc.Encode(&sc.resp)
	return http.StatusOK
}

// logRequest emits one request-scoped structured log line. Successful
// rounds log at Debug (per-request logging at serving rates is opt-in
// via the log level), shed/expired ones at Info, server faults at
// Warn. The attrs are the request's whole story: tenant, query, the
// decision taken, whether it rode a shared sweep, and wall time. dec
// is nil on failures; passing the decision (not a pre-rendered string)
// keeps Plan.String off the hot path when Debug logging is disabled.
func (s *Server) logRequest(ctx context.Context, federation string, q tpch.QueryID, dec *ires.Decision, coalesced bool, latency time.Duration, status int, err error) {
	level := slog.LevelDebug
	switch {
	case status == http.StatusInternalServerError:
		level = slog.LevelWarn
	case status != http.StatusOK:
		level = slog.LevelInfo
	}
	if !s.log.Enabled(ctx, level) {
		return
	}
	attrs := []slog.Attr{
		slog.String("federation", federation),
		slog.String("query", q.String()),
		slog.Int("status", status),
		slog.Bool("coalesced", coalesced),
		slog.Float64("duration_ms", float64(latency)/float64(time.Millisecond)),
	}
	if dec != nil {
		attrs = append(attrs, slog.String("decision", dec.Plan.String()))
	}
	if err != nil {
		attrs = append(attrs, slog.String("error", err.Error()))
	}
	s.log.LogAttrs(ctx, level, "request", attrs...)
}

// newSweepCtx hands a sweep its own budget, rooted in the server's
// lifetime rather than any request's: only the sweep goroutine itself
// cancels it. A negative SweepTimeout skips the deadline context
// entirely — sweeps then run until done or server shutdown.
func (s *Server) newSweepCtx() (context.Context, context.CancelFunc) {
	if s.cfg.SweepTimeout < 0 {
		return s.lifeCtx, noopCancel
	}
	return context.WithTimeout(s.lifeCtx, s.cfg.SweepTimeout)
}

// noopCancel stands in for a CancelFunc when no deadline context was
// created (package-level so handing it out never allocates).
func noopCancel() {}

// submit runs one admitted round: share a sweep, then select + execute
// under this request's policy.
func (s *Server) submit(ctx context.Context, t *tenant, q tpch.QueryID, pol ires.Policy) (*ires.Decision, bool, error) {
	sw, coalesced, err := t.sharedSweep(ctx, s.sweepCtx, q)
	if err != nil {
		return nil, coalesced, err
	}
	// The sweep may have been shared; the expiry of *this* request is
	// checked before paying for an execution.
	if err := ctx.Err(); err != nil {
		return nil, coalesced, err
	}
	dec, err := t.sched.DecideFromSweep(sw, pol)
	if err != nil {
		return nil, coalesced, err
	}
	return dec, coalesced, nil
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenantFor(r.URL.Query().Get("federation"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	q, err := tpch.ParseQueryID(r.PathValue("query"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !t.queries[q] {
		writeError(w, http.StatusBadRequest, "federation %q does not serve %v", t.name, q)
		return
	}
	snap := t.sched.History(q).Snapshot()
	// Paged, most recent first: a serving dashboard cares about now,
	// and a warm multi-thousand-observation history must not be
	// serialized whole by default. offset skips the newest entries, so
	// offset+limit walks back in time page by page.
	limit := defaultHistoryLimit
	if s := r.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q", s)
			return
		}
		limit = n
	}
	offset := 0
	if s := r.URL.Query().Get("offset"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad offset %q", s)
			return
		}
		offset = n
	}
	total := snap.Len()
	if offset > total {
		offset = total
	}
	page := total - offset // observations at or before the offset
	if limit < page {
		page = limit
	}
	resp := HistoryResponse{
		Federation:   t.name,
		Query:        q.String(),
		Len:          total,
		Offset:       offset,
		Metrics:      snap.Metrics(),
		Observations: make([]ObservationJSON, 0, page),
	}
	for i := total - 1 - offset; i >= total-offset-page; i-- {
		obs := snap.At(i)
		resp.Observations = append(resp.Observations, ObservationJSON{X: obs.X, Costs: obs.Costs})
	}
	if resp.Truncated = page < total-offset; resp.Truncated {
		t.stats.histTruncated.Add(1)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		UptimeS:     time.Since(s.start).Seconds(),
		Draining:    s.draining.Load(),
		Federations: make(map[string]FederationStats, len(s.tenants)),
	}
	for name, t := range s.tenants {
		resp.Federations[name] = t.stats.snapshot()
	}
	if cs := s.cluster; cs != nil {
		tab := cs.table.Load()
		owned := make([]string, 0, len(s.tenants))
		for name, t := range s.tenants {
			if t.state.Load() == tenantActive {
				owned = append(owned, name)
			}
		}
		sort.Strings(owned)
		resp.Cluster = &ClusterStats{
			Node:    cs.self.ID,
			Epoch:   tab.Epoch(),
			Members: tab.Ring().Size(),
			Owned:   owned,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
