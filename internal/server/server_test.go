package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/ires"
	"repro/internal/tpch"
)

// stubSched is a QueryScheduler with controllable latency and failure,
// so batching and timeout semantics can be tested deterministically.
type stubSched struct {
	mu         sync.Mutex
	sweepCalls int
	// block, when non-nil, holds every sweep until the channel closes
	// (or the sweep context expires).
	block chan struct{}
	// started is closed when the first sweep begins.
	started   chan struct{}
	failSweep error
	hist      *core.History
}

func (s *stubSched) PlanSweep(ctx context.Context, q tpch.QueryID) (*ires.Sweep, error) {
	s.mu.Lock()
	s.sweepCalls++
	first := s.sweepCalls == 1
	block := s.block
	s.mu.Unlock()
	if first && s.started != nil {
		close(s.started)
	}
	if block != nil {
		select {
		case <-block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if s.failSweep != nil {
		return nil, s.failSweep
	}
	return &ires.Sweep{
		Query:      q,
		Plans:      []federation.Plan{{Query: q, JoinAtLeft: true, NodesLeft: 1, NodesRight: 1}},
		Costs:      [][]float64{{1, 2}},
		FrontIdx:   []int{0},
		FrontCosts: [][]float64{{1, 2}},
		Normalized: [][]float64{{0, 0}},
	}, nil
}

func (s *stubSched) DecideFromSweep(sw *ires.Sweep, pol ires.Policy) (*ires.Decision, error) {
	idx, err := sw.Select(pol)
	if err != nil {
		return nil, err
	}
	return &ires.Decision{
		Plan:       sw.Plans[idx],
		Estimated:  sw.Costs[idx],
		Outcome:    &federation.Outcome{TimeS: 1, MoneyUSD: 2},
		ParetoSize: len(sw.FrontIdx),
		PlanSpace:  len(sw.Plans),
	}, nil
}

func (s *stubSched) History(q tpch.QueryID) *core.History {
	if s.hist == nil {
		h, err := core.NewHistory(federation.FeatureDim, federation.Metrics...)
		if err != nil {
			panic(err)
		}
		s.hist = h
	}
	return s.hist
}

func (s *stubSched) calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sweepCalls
}

// newTestServer wires one stub tenant named "test".
func newTestServer(t *testing.T, stub *stubSched, cfg Config) *Server {
	t.Helper()
	srv, err := NewWithSchedulers(cfg, map[string]QueryScheduler{"test": stub}, tpch.AllQueries)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// tryPostQuery submits a query without failing the test — safe from
// any goroutine.
func tryPostQuery(url string, req QueryRequest) (*http.Response, []byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	resp, err := http.Post(url+"/v1/queries", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, nil, err
	}
	return resp, buf.Bytes(), nil
}

func postQuery(t *testing.T, url string, req QueryRequest) (*http.Response, []byte) {
	t.Helper()
	resp, body, err := tryPostQuery(url, req)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestSubmitRoundTrip(t *testing.T) {
	srv := newTestServer(t, &stubSched{}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postQuery(t, ts.URL, QueryRequest{Query: "Q12", Weights: []float64{1, 1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Query != "Q12" || qr.Federation != "test" {
		t.Fatalf("unexpected response %+v", qr)
	}
	if qr.MeasuredTimeS != 1 || qr.MeasuredUSD != 2 {
		t.Fatalf("measured costs = %v/%v", qr.MeasuredTimeS, qr.MeasuredUSD)
	}
	if qr.PlanSpace != 1 || qr.ParetoSize != 1 {
		t.Fatalf("plan space %d pareto %d", qr.PlanSpace, qr.ParetoSize)
	}
}

func TestSubmitValidation(t *testing.T) {
	srv := newTestServer(t, &stubSched{}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		req  QueryRequest
		want int
	}{
		{"unknown query", QueryRequest{Query: "Q99"}, http.StatusBadRequest},
		{"empty query", QueryRequest{}, http.StatusBadRequest},
		{"unknown federation", QueryRequest{Query: "Q12", Federation: "nope"}, http.StatusNotFound},
		{"unknown strategy", QueryRequest{Query: "Q12", Strategy: "psychic"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postQuery(t, ts.URL, tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d (want %d), body %s", tc.name, resp.StatusCode, tc.want, body)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: expected error body, got %s", tc.name, body)
		}
	}

	resp, err := http.Post(ts.URL+"/v1/queries", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status = %d", resp.StatusCode)
	}
}

func TestSubmitSchedulerError(t *testing.T) {
	stub := &stubSched{failSweep: errors.New("boom")}
	srv := newTestServer(t, stub, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postQuery(t, ts.URL, QueryRequest{Query: "Q12"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if got := srv.tenants["test"].stats.failed.Load(); got != 1 {
		t.Fatalf("failed counter = %d", got)
	}
}

func TestHealthz(t *testing.T) {
	srv := newTestServer(t, &stubSched{}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}

func TestHistoryEndpoint(t *testing.T) {
	stub := &stubSched{}
	h := stub.History(tpch.QueryQ13)
	for i := 0; i < 5; i++ {
		if err := h.Append(core.Observation{
			X:     []float64{float64(i), 1, 1, 1, 0},
			Costs: []float64{float64(i) * 10, float64(i)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	srv := newTestServer(t, stub, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/history/Q13?limit=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("history = %d", resp.StatusCode)
	}
	var hr HistoryResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Len != 5 || len(hr.Observations) != 2 {
		t.Fatalf("len = %d, observations = %d", hr.Len, len(hr.Observations))
	}
	// Most recent first.
	if hr.Observations[0].X[0] != 4 || hr.Observations[1].X[0] != 3 {
		t.Fatalf("unexpected order: %+v", hr.Observations)
	}

	for _, bad := range []string{"/v1/history/Q99", "/v1/history/Q12?limit=x"} {
		resp, err := http.Get(ts.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d", bad, resp.StatusCode)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv := newTestServer(t, &stubSched{}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, body := postQuery(t, ts.URL, QueryRequest{Query: "Q12"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	fs, ok := sr.Federations["test"]
	if !ok {
		t.Fatalf("no stats for tenant: %+v", sr)
	}
	if fs.Received != 3 || fs.Completed != 3 {
		t.Fatalf("received/completed = %d/%d", fs.Received, fs.Completed)
	}
	if fs.P50MS <= 0 {
		t.Fatalf("p50 = %v", fs.P50MS)
	}
}

func TestMultiTenantRouting(t *testing.T) {
	a, b := &stubSched{}, &stubSched{}
	srv, err := NewWithSchedulers(Config{}, map[string]QueryScheduler{"a": a, "b": b}, tpch.AllQueries)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Ambiguous: several tenants, no federation named.
	resp, _ := postQuery(t, ts.URL, QueryRequest{Query: "Q12"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ambiguous tenant: status = %d", resp.StatusCode)
	}
	resp, body := postQuery(t, ts.URL, QueryRequest{Query: "Q12", Federation: "b"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant b: %d %s", resp.StatusCode, body)
	}
	if a.calls() != 0 || b.calls() != 1 {
		t.Fatalf("sweep calls a=%d b=%d", a.calls(), b.calls())
	}
}

func TestLatencyQuantiles(t *testing.T) {
	if p50, p90, p99 := latencyQuantiles(nil); p50 != 0 || p90 != 0 || p99 != 0 {
		t.Fatalf("empty quantiles = %v/%v/%v", p50, p90, p99)
	}
	sample := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	p50, p90, p99 := latencyQuantiles(sample)
	if p50 < 5 || p50 > 6 || p90 < 9 || p99 > 10 || p99 < p90 || p90 < p50 {
		t.Fatalf("quantiles = %v/%v/%v", p50, p90, p99)
	}
}

func TestLatencyRingWraps(t *testing.T) {
	st := newTenantStats()
	for i := 0; i < latencyWindow+10; i++ {
		st.observe(float64(i))
	}
	snap := st.snapshot()
	if snap.P50MS == 0 {
		t.Fatalf("p50 = 0 after %d observations", latencyWindow+10)
	}
}

// TestServeIntegration exercises the full stack — real scheduler, real
// scaled executor — through the HTTP API once.
func TestServeIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack serve test")
	}
	srv, err := New(Config{Federations: []FederationSpec{{
		Name:        "paper",
		SF:          0.05,
		NodeChoices: []int{1, 2},
		Bootstrap:   12,
		Queries:     []string{"Q12"},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postQuery(t, ts.URL, QueryRequest{Query: "Q12", Weights: []float64{1, 1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.MeasuredTimeS <= 0 || qr.PlanSpace < 2 {
		t.Fatalf("implausible decision: %+v", qr)
	}
	if qr.PrunePolicy != "full" || qr.PlansEstimated != qr.PlanSpace {
		t.Fatalf("default prune bookkeeping: policy=%q estimated=%d space=%d",
			qr.PrunePolicy, qr.PlansEstimated, qr.PlanSpace)
	}
	// A second submission must land in history: bootstrap(12) + 1.
	hresp, err := http.Get(ts.URL + "/v1/history/Q12?limit=1")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var hr HistoryResponse
	if err := json.NewDecoder(hresp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Len != 13 {
		t.Fatalf("history len = %d, want 13", hr.Len)
	}
	// Serving a query outside the tenant's menu is a client error.
	resp, _ = postQuery(t, ts.URL, QueryRequest{Query: "Q13"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unserved query: status = %d", resp.StatusCode)
	}
}

// TestPrunePolicyOnTheWire builds a real tenant under the "greedy"
// prune policy and checks the policy and sweep accounting surface in
// both the query response and /v1/stats.
func TestPrunePolicyOnTheWire(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack serve test")
	}
	srv, err := New(Config{Federations: []FederationSpec{{
		Name:        "pruned",
		SF:          0.05,
		NodeChoices: []int{1, 2},
		Bootstrap:   12,
		Queries:     []string{"Q12"},
		PrunePolicy: "greedy",
		PruneBudget: 64,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postQuery(t, ts.URL, QueryRequest{Query: "Q12", Weights: []float64{1, 1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	// The 8-plan lattice is under the budget, so greedy sweeps it in
	// full — but the policy label and accounting must still surface.
	if qr.PrunePolicy != "greedy" || qr.PlansEstimated < 1 || qr.PlansEstimated > qr.PlanSpace {
		t.Fatalf("prune fields: %+v", qr)
	}

	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	fs, ok := sr.Federations["pruned"]
	if !ok {
		t.Fatalf("stats missing tenant: %+v", sr)
	}
	if fs.PrunePolicy != "greedy" || fs.PlanSpace != int64(qr.PlanSpace) || fs.PlansEstimated != int64(qr.PlansEstimated) {
		t.Fatalf("stats prune fields: %+v vs response %+v", fs, qr)
	}
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
