package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/scenario"
)

// This file is the cluster half of the chaos harness: each test injects
// one failure mode the field actually produces — a target dying
// mid-handoff, a gossip partition, an owner SIGKILLed under replay load
// — and asserts the two invariants the cluster promises: zero
// acked-write loss, and decisions that stay byte-identical to an
// unchaosed control (PR 8's determinism invariant).

// chaosPaperSpec is the shared real-stack federation: small enough to
// calibrate quickly, real enough that decisions come from the live
// DREAM model rather than a stub.
func chaosPaperSpec() FederationSpec {
	return FederationSpec{
		Name:        "paper",
		SF:          0.05,
		NodeChoices: []int{1, 2},
		Bootstrap:   12,
		Queries:     []string{"Q12"},
	}
}

// newReplicatedPair builds two real nodes with synchronous WAL
// replication armed for Q12 and returns them with the current owner
// index. Callers kill nodes by closing the httptest listener.
func newReplicatedPair(t *testing.T) (servers []*Server, https []*httptest.Server, members []cluster.Member, owner int) {
	servers, https, members, owner, _ = newReplicatedPairCfg(t, nil)
	return servers, https, members, owner
}

// newReplicatedPairCfg is newReplicatedPair with a cluster-config hook
// (the auto-failover chaos tests turn the detector on and speed up its
// probes) and the swappable handlers returned for fault injection.
func newReplicatedPairCfg(t *testing.T, mutate func(*ClusterConfig)) (servers []*Server, https []*httptest.Server, members []cluster.Member, owner int, late []*lateHandler) {
	t.Helper()
	spec := chaosPaperSpec()
	late = []*lateHandler{{}, {}}
	for i := 0; i < 2; i++ {
		ts := httptest.NewServer(late[i])
		t.Cleanup(ts.Close)
		https = append(https, ts)
		members = append(members, cluster.Member{ID: fmt.Sprintf("n%d", i), Addr: ts.URL})
	}
	for i := 0; i < 2; i++ {
		ccfg := &ClusterConfig{
			NodeID: members[i].ID, Peers: members,
			Replicate:    true,
			SyncInterval: 50 * time.Millisecond,
			PeerTimeout:  30 * time.Second,
		}
		if mutate != nil {
			mutate(ccfg)
		}
		srv, err := New(Config{
			Federations: []FederationSpec{spec},
			Store:       StoreConfig{Dir: t.TempDir()},
			Cluster:     ccfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		h := srv.Handler()
		late[i].h.Store(&h)
		servers = append(servers, srv)
	}
	owner = -1
	for i, srv := range servers {
		if srv.tenants["paper"].state.Load() == tenantActive {
			owner = i
		}
	}
	if owner < 0 {
		t.Fatal("no owner")
	}
	rep := servers[owner].cluster.repl["paper"]
	deadline := time.Now().Add(15 * time.Second)
	for !rep.Streaming("Q12") {
		if time.Now().After(deadline) {
			t.Fatal("replication never armed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	return servers, https, members, owner, late
}

// chaosSubmit posts one Q12 request without following redirects and
// requires a 200.
func chaosSubmit(t *testing.T, url string) QueryResponse {
	t.Helper()
	resp, body := postQueryNoRedirect(t, url, QueryRequest{Federation: "paper", Query: "Q12", Weights: []float64{1, 1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	return qr
}

// chaosHistLen reads the observation count for paper/Q12 at a node.
func chaosHistLen(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url + "/v1/history/Q12?federation=paper&limit=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr HistoryResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	return hr.Len
}

// TestChaosKillTargetMidHandoff kills the handoff target at the worst
// moment — the prepare round-trip, before any state has crossed. The
// handoff is all-or-nothing: the source must report failure, stay the
// one active owner at the old epoch, and keep serving.
func TestChaosKillTargetMidHandoff(t *testing.T) {
	tc := newTestCluster(t, 2, []string{"alpha"})
	owner := tc.ownerIdx(t, "alpha")
	target := 1 - owner

	// "Kill" the target for admin traffic: every handoff endpoint
	// answers like a dead TCP peer would (refused), while the data
	// plane keeps routing so we can observe the aftermath.
	real := tc.servers[target].Handler()
	var dead atomic.Bool
	dead.Store(true)
	wrapped := http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if dead.Load() && strings.HasPrefix(r.URL.Path, "/v1/admin/handoff") {
			http.Error(w, "injected: node down", http.StatusBadGateway)
			return
		}
		real.ServeHTTP(w, r)
	}))
	tc.late[target].h.Store(&wrapped)

	resp, err := http.Post(tc.https[owner].URL+"/v1/admin/handoff?federation=alpha&target="+tc.members[target].ID, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("handoff to a dead target succeeded: %s", body)
	}

	// All-or-nothing: the source reverted to active, the target never
	// materialized the tenant, the epoch never moved.
	if st := tc.servers[owner].tenants["alpha"].state.Load(); st != tenantActive {
		t.Fatalf("source tenant is %s after failed handoff, want active", tenantStateName(st))
	}
	if st := tc.servers[target].tenants["alpha"].state.Load(); st != tenantRemote {
		t.Fatalf("target tenant is %s after failed handoff, want remote", tenantStateName(st))
	}
	for i := range tc.https {
		if cr := getClusterTable(t, tc.https[i].URL); cr.Epoch != 1 {
			t.Fatalf("node %d epoch %d after aborted handoff, want 1", i, cr.Epoch)
		}
	}

	// The source still serves; the revived target still redirects to it.
	req := QueryRequest{Federation: "alpha", Query: "Q12", Weights: []float64{1, 1}}
	resp2, body2 := postQueryNoRedirect(t, tc.https[owner].URL, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("owner returned %d after aborted handoff: %s", resp2.StatusCode, body2)
	}
	dead.Store(false)
	resp2, _ = postQueryNoRedirect(t, tc.https[target].URL, req)
	if resp2.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("revived target returned %d, want redirect to the unmoved owner", resp2.StatusCode)
	}

	// And the aborted handoff left nothing sticky: the same move retried
	// against the healthy target completes.
	resp3, err := http.Post(tc.https[owner].URL+"/v1/admin/handoff?federation=alpha&target="+tc.members[target].ID, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("retried handoff = %d", resp3.StatusCode)
	}
	if st := tc.servers[target].tenants["alpha"].state.Load(); st != tenantActive {
		t.Fatalf("target is %s after retried handoff, want active", tenantStateName(st))
	}
}

// TestChaosGossipPartitionDuringHandoff partitions a bystander node
// away from gossip while ownership moves between the other two. While
// partitioned the bystander serves from a stale table — which must
// still reach the data via a redirect chain, never lose a request —
// and after the partition heals one gossip exchange converges it:
// exactly one active owner, all tables agreeing.
func TestChaosGossipPartitionDuringHandoff(t *testing.T) {
	tc := newTestCluster(t, 3, []string{"alpha"})
	owner := tc.ownerIdx(t, "alpha")
	target := (owner + 1) % 3
	third := 3 - owner - target

	// Partition: the third node drops every gossip exchange (inbound
	// route posts), as a switch dropping its control-plane traffic
	// would. Data-plane requests still flow.
	real := tc.servers[third].Handler()
	var partitioned atomic.Bool
	partitioned.Store(true)
	wrapped := http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if partitioned.Load() && r.URL.Path == "/v1/admin/route" {
			http.Error(w, "injected: partitioned", http.StatusServiceUnavailable)
			return
		}
		real.ServeHTTP(w, r)
	}))
	tc.late[third].h.Store(&wrapped)

	// Ownership moves while the third node cannot hear about it.
	resp, err := http.Post(tc.https[owner].URL+"/v1/admin/handoff?federation=alpha&target="+tc.members[target].ID, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("handoff during partition = %d", resp.StatusCode)
	}

	// The third node's table is stale (epoch 1, old owner)…
	if cr := getClusterTable(t, tc.https[third].URL); cr.Epoch != 1 {
		t.Fatalf("partitioned node adopted epoch %d; partition leaked", cr.Epoch)
	}
	// …but a client hitting it still lands: stale redirect to the old
	// owner, which forwards to the new one. Zero loss during the
	// partition.
	body, _ := json.Marshal(QueryRequest{Federation: "alpha", Query: "Q12", Weights: []float64{1, 1}})
	full, err := http.Post(tc.https[third].URL+"/v1/queries", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(full.Body)
	full.Body.Close()
	if full.StatusCode != http.StatusOK {
		t.Fatalf("request via partitioned node = %d: %s", full.StatusCode, b)
	}
	var qr QueryResponse
	if err := json.Unmarshal(b, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Node != tc.members[target].ID {
		t.Fatalf("stale redirect chain ended at %q, want new owner %q", qr.Node, tc.members[target].ID)
	}

	// Heal, then let the stale node gossip once: the exchange is
	// bidirectional, so pushing its stale table yields back the newer
	// one, which it adopts and reconciles against.
	partitioned.Store(false)
	tc.servers[third].cluster.gossip()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if cr := getClusterTable(t, tc.https[third].URL); cr.Epoch >= 2 &&
			cr.Placements["alpha"].Owner == tc.members[target].ID {
			break
		}
		if time.Now().After(deadline) {
			cr := getClusterTable(t, tc.https[third].URL)
			t.Fatalf("healed node never converged: epoch=%d owner=%q",
				cr.Epoch, cr.Placements["alpha"].Owner)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Exactly one active owner across the healed cluster, and every
	// table names it.
	active := 0
	for i, srv := range tc.servers {
		if srv.tenants["alpha"].state.Load() == tenantActive {
			active++
			if i != target {
				t.Fatalf("node %d active, want only %d", i, target)
			}
		}
	}
	if active != 1 {
		t.Fatalf("%d active owners after heal, want exactly 1", active)
	}
	for i := range tc.https {
		cr := getClusterTable(t, tc.https[i].URL)
		if cr.Placements["alpha"].Owner != tc.members[target].ID {
			t.Fatalf("node %d table places alpha on %q after heal", i, cr.Placements["alpha"].Owner)
		}
	}
}

// TestChaosTakeoverDuringReplay SIGKILLs the owner (listener closed, no
// drain, no checkpoint) halfway through an open-loop scenario replay
// and promotes the standby. Every acked event must survive into the
// promoted history: 12 bootstrap + one observation per 200 the client
// saw, before and after the kill.
func TestChaosTakeoverDuringReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("full serving stack")
	}
	servers, https, _, owner := newReplicatedPair(t)
	standby := 1 - owner

	// A deterministic replay schedule from the scenario engine; the
	// test compresses time (no sleeping) — ordering is what matters.
	events, err := scenario.Spec{
		Arrival: "poisson", Rate: 200, Events: 8, Seed: 11,
		Federation: "paper", Queries: []string{"Q12"},
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	split := len(events) / 2

	// Replay aims at the standby throughout, like a load balancer with
	// a stale backend list: before the kill each request rides a 307 to
	// the owner, after the takeover the standby serves directly.
	replay := func(evs []scenario.Event) int {
		t.Helper()
		acked := 0
		for _, ev := range evs {
			body, err := json.Marshal(QueryRequest{Federation: "paper", Query: ev.Query, Weights: []float64{1, 1}})
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.Post(https[standby].URL+"/v1/queries", "application/json", bytes.NewReader(body))
			if err != nil {
				continue // dead hop mid-redirect: not acked, not counted
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				acked++
			}
		}
		return acked
	}

	ackedBefore := replay(events[:split])
	if ackedBefore != split {
		t.Fatalf("pre-kill replay acked %d/%d", ackedBefore, split)
	}

	// SIGKILL the owner mid-replay and promote the standby from its
	// synchronously replicated WAL.
	https[owner].Close()
	resp, err := http.Post(https[standby].URL+"/v1/admin/takeover?federation=paper", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var hr HandoffResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("takeover: %d (%+v)", resp.StatusCode, hr)
	}
	if want := 12 + ackedBefore; hr.Observations["Q12"] != want {
		t.Fatalf("takeover recovered %d observations, want %d (12 bootstrap + %d acked): acked write lost",
			hr.Observations["Q12"], want, ackedBefore)
	}

	ackedAfter := replay(events[split:])
	if ackedAfter != len(events)-split {
		t.Fatalf("post-takeover replay acked %d/%d", ackedAfter, len(events)-split)
	}
	if got, want := chaosHistLen(t, https[standby].URL), 12+ackedBefore+ackedAfter; got != want {
		t.Fatalf("final history %d, want %d: acked write lost across takeover", got, want)
	}
	if err := servers[standby].Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// chaosDetectorKnobs arms auto-failover on a replicated pair with
// probes fast enough to detect a kill in well under a second, but a
// DownAfter that needs ~500ms of *consecutive* misses — construction
// 503s (the second node's calibration runs while the first node's
// detector is already probing) and scheduler hiccups don't reach a
// false death verdict, and the eligibility gate (no cached "streaming"
// report yet) blocks promotion even if one slips through.
func chaosDetectorKnobs(cc *ClusterConfig) {
	cc.AutoFailover = true
	cc.ProbeInterval = 10 * time.Millisecond
	cc.SuspectAfter = 5
	cc.DownAfter = 50
}

// waitPeerReplStreaming blocks until srv's probe loop has cached peer's
// replication report for fed as "streaming" — the eligibility record an
// auto-promotion will consult after that peer dies.
func waitPeerReplStreaming(t *testing.T, srv *Server, peer, fed string) {
	t.Helper()
	cs := srv.cluster
	deadline := time.Now().Add(15 * time.Second)
	for {
		cs.peerMu.Lock()
		health := cs.peerRepl[peer][fed]
		cs.peerMu.Unlock()
		if health == "streaming" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("probe cache never reported %s/%s streaming (last %q)", peer, fed, health)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosProbePartitionFalsePositive partitions the failure
// detector's probes — and only the probes — between two live nodes: the
// classic false positive, where the standby declares a perfectly
// healthy owner dead. The standby promotes (its cached eligibility says
// the replica is current), minting epoch 2 over both nodes' epoch-1
// tables; gossip still flows, so the real owner adopts the higher epoch
// and stands itself down. The invariants: the cluster settles on
// exactly one active owner, and no client request errors at any point —
// a false positive costs a spurious ownership move, never correctness.
func TestChaosProbePartitionFalsePositive(t *testing.T) {
	if testing.Short() {
		t.Skip("full serving stack")
	}
	servers, https, members, owner, late := newReplicatedPairCfg(t, chaosDetectorKnobs)
	standby := 1 - owner
	waitPeerReplStreaming(t, servers[standby], members[owner].ID, "paper")

	// Drop health probes in both directions; every other path — queries,
	// replication, gossip — stays connected.
	var partitioned atomic.Bool
	partitioned.Store(true)
	for i := 0; i < 2; i++ {
		real := servers[i].Handler()
		wrapped := http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if partitioned.Load() && r.URL.Path == "/v1/cluster/health" {
				http.Error(w, "injected: probe partition", http.StatusServiceUnavailable)
				return
			}
			real.ServeHTTP(w, r)
		}))
		late[i].h.Store(&wrapped)
	}

	// Clients keep hitting BOTH nodes (following redirects) while the
	// standby walks owner through suspect → down → auto-promotion and
	// gossip demotes the real owner. Every request must land.
	submitBoth := func() {
		t.Helper()
		for i := 0; i < 2; i++ {
			body, _ := json.Marshal(QueryRequest{Federation: "paper", Query: "Q12", Weights: []float64{1, 1}})
			resp, err := http.Post(https[i].URL+"/v1/queries", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatalf("client-visible error via node %d during false positive: %v", i, err)
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("client-visible error via node %d during false positive: %d %s", i, resp.StatusCode, b)
			}
		}
	}

	deadline := time.Now().Add(20 * time.Second)
	for {
		submitBoth()
		// Settled: the false-positive promotion committed AND the demoted
		// real owner is back to remote — exactly one active owner.
		if servers[standby].tenants["paper"].state.Load() == tenantActive &&
			servers[owner].tenants["paper"].state.Load() == tenantRemote {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never settled after probe partition: owner=%s standby=%s",
				tenantStateName(servers[owner].tenants["paper"].state.Load()),
				tenantStateName(servers[standby].tenants["paper"].state.Load()))
		}
		time.Sleep(10 * time.Millisecond)
	}
	submitBoth()

	// Both tables agree on the new owner at the promoted epoch.
	for i := range https {
		cr := getClusterTable(t, https[i].URL)
		if cr.Epoch != 2 || cr.Placements["paper"].Owner != members[standby].ID {
			t.Fatalf("node %d table epoch=%d owner=%q after settle, want 2/%q",
				i, cr.Epoch, cr.Placements["paper"].Owner, members[standby].ID)
		}
	}
	if got := servers[standby].cluster.autoTakeovers.Value(); got != 1 {
		t.Fatalf("auto-takeovers = %v, want exactly 1 (the fence must stop a second commit)", got)
	}

	partitioned.Store(false)
	for i := range servers {
		if err := servers[i].Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestChaosAutoPromotionDeterminism extends the determinism probe to
// the detector-driven path: SIGKILL the owner and let the failure
// detector promote the standby with NO operator takeover, then require
// the first post-promotion decision byte-identical to an unchaosed
// standalone control.
func TestChaosAutoPromotionDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full serving stack")
	}
	servers, https, members, owner, _ := newReplicatedPairCfg(t, chaosDetectorKnobs)
	standby := 1 - owner

	ctrl, err := New(Config{Federations: []FederationSpec{chaosPaperSpec()}})
	if err != nil {
		t.Fatal(err)
	}
	tsC := httptest.NewServer(ctrl.Handler())
	defer tsC.Close()

	for i := 0; i < 3; i++ {
		chaosSubmit(t, https[owner].URL)
		chaosSubmit(t, tsC.URL)
	}
	want := chaosSubmit(t, tsC.URL) // the control's fourth decision

	// The standby must hold the owner's "streaming" report before the
	// kill, or the eligibility gate (correctly) refuses to promote.
	waitPeerReplStreaming(t, servers[standby], members[owner].ID, "paper")
	https[owner].Close()

	deadline := time.Now().Add(20 * time.Second)
	for servers[standby].tenants["paper"].state.Load() != tenantActive {
		if time.Now().After(deadline) {
			t.Fatalf("standby never auto-promoted (state %s, owner judged %v)",
				tenantStateName(servers[standby].tenants["paper"].state.Load()),
				servers[standby].cluster.detector.Status(members[owner].ID))
		}
		time.Sleep(10 * time.Millisecond)
	}

	got := chaosSubmit(t, https[standby].URL)
	if got.Plan != want.Plan {
		t.Fatalf("post-promotion plan %+v, unchaosed control chose %+v", got.Plan, want.Plan)
	}
	if got.EstimatedTimeS != want.EstimatedTimeS || got.EstimatedUSD != want.EstimatedUSD {
		t.Fatalf("post-promotion estimates (%v, %v), control (%v, %v)",
			got.EstimatedTimeS, got.EstimatedUSD, want.EstimatedTimeS, want.EstimatedUSD)
	}
	if got.ParetoSize != want.ParetoSize || got.PlanSpace != want.PlanSpace {
		t.Fatalf("post-promotion front %d/%d, control %d/%d",
			got.ParetoSize, got.PlanSpace, want.ParetoSize, want.PlanSpace)
	}
	if got.Node != members[standby].ID || got.Epoch != 2 {
		t.Fatalf("post-promotion stamp node=%q epoch=%d, want %q/2", got.Node, got.Epoch, members[standby].ID)
	}
	if err := servers[standby].Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestReadyzDegradedReplication kills a standby and asserts the owner's
// /readyz flips to 503 with the degraded federations named, once a
// write forces the replicator to fall back to local-only durability.
func TestReadyzDegradedReplication(t *testing.T) {
	if testing.Short() {
		t.Skip("full serving stack")
	}
	servers, https, _, owner := newReplicatedPair(t)
	standby := 1 - owner

	// Healthy pair: ready.
	resp, err := http.Get(https[owner].URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz on healthy owner = %d", resp.StatusCode)
	}

	// Kill the standby; the next acked write's frame ship fails and the
	// stream degrades to local-only durability.
	https[standby].Close()
	chaosSubmit(t, https[owner].URL)

	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(https[owner].URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		var rz struct {
			Status   string   `json:"status"`
			Degraded []string `json:"degraded"`
		}
		err = json.NewDecoder(resp.Body).Decode(&rz)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if err != nil {
				t.Fatal(err)
			}
			if rz.Status != "degraded" || len(rz.Degraded) != 1 || rz.Degraded[0] != "paper" {
				t.Fatalf("degraded readyz body %+v", rz)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz never reported degraded replication (last %d)", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := servers[owner].Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestChaosKillTakeoverDeterminism is the chaos form of PR 8's
// acceptance invariant: after an owner is killed without warning and
// the standby promotes from the replicated WAL, the first post-recovery
// decision must be byte-identical — plan, both estimates, Pareto front,
// plan space — to a standalone control that never saw a failure.
func TestChaosKillTakeoverDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full serving stack")
	}
	servers, https, members, owner := newReplicatedPair(t)
	standby := 1 - owner

	// Control: same spec, same request sequence, no cluster, no chaos.
	ctrl, err := New(Config{Federations: []FederationSpec{chaosPaperSpec()}})
	if err != nil {
		t.Fatal(err)
	}
	tsC := httptest.NewServer(ctrl.Handler())
	defer tsC.Close()

	for i := 0; i < 3; i++ {
		chaosSubmit(t, https[owner].URL)
		chaosSubmit(t, tsC.URL)
	}
	want := chaosSubmit(t, tsC.URL) // the control's fourth decision

	https[owner].Close()
	resp, err := http.Post(https[standby].URL+"/v1/admin/takeover?federation=paper", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("takeover: %d", resp.StatusCode)
	}

	got := chaosSubmit(t, https[standby].URL)
	if got.Plan != want.Plan {
		t.Fatalf("post-recovery plan %+v, unchaosed control chose %+v", got.Plan, want.Plan)
	}
	if got.EstimatedTimeS != want.EstimatedTimeS || got.EstimatedUSD != want.EstimatedUSD {
		t.Fatalf("post-recovery estimates (%v, %v), control (%v, %v)",
			got.EstimatedTimeS, got.EstimatedUSD, want.EstimatedTimeS, want.EstimatedUSD)
	}
	if got.ParetoSize != want.ParetoSize || got.PlanSpace != want.PlanSpace {
		t.Fatalf("post-recovery front %d/%d, control %d/%d",
			got.ParetoSize, got.PlanSpace, want.ParetoSize, want.PlanSpace)
	}
	if got.Node != members[standby].ID || got.Epoch != 2 {
		t.Fatalf("post-recovery stamp node=%q epoch=%d", got.Node, got.Epoch)
	}
	if err := servers[standby].Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
