package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/tpch"
)

// lateHandler lets an httptest.Server start before the midas Server
// whose handler it will front exists — cluster member addresses must
// be known when the Server is built.
type lateHandler struct{ h atomic.Pointer[http.Handler] }

func (l *lateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := l.h.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	http.Error(w, "not ready", http.StatusServiceUnavailable)
}

// testCluster is n stub-backed cluster members hosting the same
// federations.
type testCluster struct {
	servers []*Server
	https   []*httptest.Server
	members []cluster.Member
	// late are the swappable handlers fronting each member; a test can
	// re-Store one to wrap a node's real handler with fault injection.
	late []*lateHandler
}

func newTestCluster(t *testing.T, n int, feds []string) *testCluster {
	return newTestClusterCfg(t, n, feds, nil)
}

// newTestClusterCfg is newTestCluster with a per-node config hook, for
// tests that need extra knobs (auto-failover, durable store dirs).
func newTestClusterCfg(t *testing.T, n int, feds []string, mutate func(i int, cfg *Config)) *testCluster {
	t.Helper()
	tc := &testCluster{}
	late := make([]*lateHandler, n)
	for i := 0; i < n; i++ {
		late[i] = &lateHandler{}
		ts := httptest.NewServer(late[i])
		t.Cleanup(ts.Close)
		tc.https = append(tc.https, ts)
		tc.members = append(tc.members, cluster.Member{ID: fmt.Sprintf("n%d", i), Addr: ts.URL})
	}
	tc.late = late
	for i := 0; i < n; i++ {
		scheds := make(map[string]QueryScheduler, len(feds))
		for _, f := range feds {
			scheds[f] = &stubSched{}
		}
		cfg := Config{Cluster: &ClusterConfig{
			NodeID:      tc.members[i].ID,
			Peers:       tc.members,
			PeerTimeout: 5 * time.Second,
		}}
		if mutate != nil {
			mutate(i, &cfg)
		}
		srv, err := NewWithSchedulers(cfg, scheds, tpch.AllQueries)
		if err != nil {
			t.Fatal(err)
		}
		h := srv.Handler()
		late[i].h.Store(&h)
		tc.servers = append(tc.servers, srv)
	}
	return tc
}

// ownerIdx returns the index of the node whose tenant for fed is
// active.
func (tc *testCluster) ownerIdx(t *testing.T, fed string) int {
	t.Helper()
	for i, srv := range tc.servers {
		if srv.tenants[fed].state.Load() == tenantActive {
			return i
		}
	}
	t.Fatalf("no node owns %q", fed)
	return -1
}

// noRedirectClient surfaces 307s instead of following them.
var noRedirectClient = &http.Client{
	CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
}

func postQueryNoRedirect(t *testing.T, url string, req QueryRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := noRedirectClient.Post(url+"/v1/queries", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func getClusterTable(t *testing.T, url string) ClusterResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cr ClusterResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	return cr
}

func TestClusterRoutingAndRedirect(t *testing.T) {
	tc := newTestCluster(t, 2, []string{"alpha"})
	owner := tc.ownerIdx(t, "alpha")
	other := 1 - owner
	req := QueryRequest{Federation: "alpha", Query: "Q12", Weights: []float64{1, 1}}

	// The non-owner answers with 307 + the owner's submit URL.
	resp, body := postQueryNoRedirect(t, tc.https[other].URL, req)
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("non-owner returned %d: %s", resp.StatusCode, body)
	}
	wantLoc := tc.members[owner].Addr + "/v1/queries"
	if loc := resp.Header.Get("Location"); loc != wantLoc {
		t.Fatalf("Location %q, want %q", loc, wantLoc)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || !strings.Contains(er.Error, tc.members[owner].ID) {
		t.Fatalf("redirect body %q should name the owner (err %v)", body, err)
	}

	// The owner serves, stamping node and epoch.
	resp, body = postQueryNoRedirect(t, tc.https[owner].URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner returned %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Node != tc.members[owner].ID || qr.Epoch != 1 {
		t.Fatalf("response stamped node=%q epoch=%d, want %q/1", qr.Node, qr.Epoch, tc.members[owner].ID)
	}

	// Both nodes publish the same routing table.
	for i := range tc.https {
		cr := getClusterTable(t, tc.https[i].URL)
		if cr.Epoch != 1 || len(cr.Members) != 2 {
			t.Fatalf("node %d table: epoch=%d members=%d", i, cr.Epoch, len(cr.Members))
		}
		p := cr.Placements["alpha"]
		if p.Owner != tc.members[owner].ID {
			t.Fatalf("node %d places alpha on %q, want %q", i, p.Owner, tc.members[owner].ID)
		}
		if p.Standby != tc.members[other].ID {
			t.Fatalf("node %d standby %q, want %q", i, p.Standby, tc.members[other].ID)
		}
	}
}

func TestReadyzTracksDrainAndHandoff(t *testing.T) {
	tc := newTestCluster(t, 2, []string{"alpha"})
	other := 1 - tc.ownerIdx(t, "alpha")

	getStatus := func(url string) (int, map[string]string) {
		t.Helper()
		resp, err := http.Get(url + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&m)
		return resp.StatusCode, m
	}
	if code, _ := getStatus(tc.https[other].URL); code != http.StatusOK {
		t.Fatalf("idle readyz = %d", code)
	}
	// A prepared (receiving) handoff flips readiness off…
	resp, err := http.Post(tc.https[other].URL+"/v1/admin/handoff/prepare?federation=alpha", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prepare = %d", resp.StatusCode)
	}
	code, m := getStatus(tc.https[other].URL)
	if code != http.StatusServiceUnavailable || m["status"] != "handoff" {
		t.Fatalf("mid-handoff readyz = %d %v", code, m)
	}
	// …and liveness stays on.
	resp, err = http.Get(tc.https[other].URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mid-handoff healthz = %d", resp.StatusCode)
	}
	// Abort restores readiness.
	resp, err = http.Post(tc.https[other].URL+"/v1/admin/handoff/abort?federation=alpha", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if code, _ := getStatus(tc.https[other].URL); code != http.StatusOK {
		t.Fatalf("post-abort readyz = %d", code)
	}
	// Draining flips it off for good.
	if err := tc.servers[other].Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	code, m = getStatus(tc.https[other].URL)
	if code != http.StatusServiceUnavailable || m["status"] != "draining" {
		t.Fatalf("draining readyz = %d %v", code, m)
	}
}

func TestClusterHandoffMovesOwnership(t *testing.T) {
	tc := newTestCluster(t, 3, []string{"alpha"})
	owner := tc.ownerIdx(t, "alpha")
	target := (owner + 1) % 3
	req := QueryRequest{Federation: "alpha", Query: "Q12", Weights: []float64{1, 1}}

	// Handoff must be addressed to the owner.
	resp, err := http.Post(tc.https[target].URL+"/v1/admin/handoff?federation=alpha&target="+tc.members[owner].ID, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("handoff initiated at a non-owner succeeded")
	}

	resp, err = http.Post(tc.https[owner].URL+"/v1/admin/handoff?federation=alpha&target="+tc.members[target].ID, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var hr HandoffResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("handoff = %d", resp.StatusCode)
	}
	if hr.From != tc.members[owner].ID || hr.To != tc.members[target].ID || hr.Epoch != 2 {
		t.Fatalf("handoff response %+v", hr)
	}

	// The old owner now redirects at the new one…
	resp2, _ := postQueryNoRedirect(t, tc.https[owner].URL, req)
	if resp2.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("old owner returned %d", resp2.StatusCode)
	}
	if loc := resp2.Header.Get("Location"); loc != tc.members[target].Addr+"/v1/queries" {
		t.Fatalf("old owner redirects to %q", loc)
	}
	// …and the new owner serves under the bumped epoch.
	resp2, body := postQueryNoRedirect(t, tc.https[target].URL, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("new owner returned %d: %s", resp2.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Node != tc.members[target].ID || qr.Epoch != 2 {
		t.Fatalf("post-handoff response node=%q epoch=%d", qr.Node, qr.Epoch)
	}

	// Gossip converges the third node's table (async, so poll).
	third := 3 - owner - target
	deadline := time.Now().Add(5 * time.Second)
	for {
		if cr := getClusterTable(t, tc.https[third].URL); cr.Epoch >= 2 {
			if cr.Placements["alpha"].Owner != tc.members[target].ID {
				t.Fatalf("third node places alpha on %q", cr.Placements["alpha"].Owner)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("gossip never reached the third node")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterHandoffSubmitHammer bounces ownership back and forth
// while clients hammer both nodes; every request must complete 200
// after at most a few redirects — nobody may observe an error from the
// migration machinery. Run with -race this doubles as the concurrency
// check on the tenant state machine.
func TestClusterHandoffSubmitHammer(t *testing.T) {
	tc := newTestCluster(t, 2, []string{"alpha"})
	req, _ := json.Marshal(QueryRequest{Federation: "alpha", Query: "Q12", Weights: []float64{1, 1}})

	stop := make(chan struct{})
	var completed atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Start at alternating nodes and follow redirects by
				// hand, bounded by a budget.
				url := tc.https[(w+i)%2].URL + "/v1/queries"
				status := 0
				for hop := 0; hop < 8; hop++ {
					resp, err := noRedirectClient.Post(url, "application/json", strings.NewReader(string(req)))
					if err != nil {
						select {
						case errCh <- err:
						default:
						}
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					status = resp.StatusCode
					if status == http.StatusTemporaryRedirect {
						url = resp.Header.Get("Location")
						continue
					}
					break
				}
				if status != http.StatusOK {
					select {
					case errCh <- fmt.Errorf("request ended %d", status):
					default:
					}
					return
				}
				completed.Add(1)
			}
		}(w)
	}

	// Bounce ownership back and forth under load.
	for round := 0; round < 6; round++ {
		owner := tc.ownerIdx(t, "alpha")
		target := 1 - owner
		resp, err := http.Post(tc.https[owner].URL+"/v1/admin/handoff?federation=alpha&target="+tc.members[target].ID, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d handoff: %d %s", round, resp.StatusCode, body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("hammer worker failed: %v", err)
	default:
	}
	if completed.Load() == 0 {
		t.Fatal("no requests completed")
	}
	// Six handoffs bump the epoch six times.
	for i, srv := range tc.servers {
		if e := srv.cluster.table.Load().Epoch(); e != 7 {
			t.Fatalf("node %d at epoch %d, want 7", i, e)
		}
	}
}

// TestClusterMigrationDeterminism is the acceptance test for the
// tentpole: a live handoff moves a federation between two real nodes
// mid-workload and the first decision on the new owner is byte-
// identical (plan, estimates, Pareto front) to a control that never
// moved — and no acked write is lost.
func TestClusterMigrationDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full serving stack")
	}
	spec := FederationSpec{
		Name:        "paper",
		SF:          0.05,
		NodeChoices: []int{1, 2},
		Bootstrap:   12,
		Queries:     []string{"Q12"},
	}
	// Two real nodes, separate data dirs, shared ring.
	late := []*lateHandler{{}, {}}
	var https []*httptest.Server
	var members []cluster.Member
	for i := 0; i < 2; i++ {
		ts := httptest.NewServer(late[i])
		defer ts.Close()
		https = append(https, ts)
		members = append(members, cluster.Member{ID: fmt.Sprintf("n%d", i), Addr: ts.URL})
	}
	var servers []*Server
	for i := 0; i < 2; i++ {
		srv, err := New(Config{
			Federations: []FederationSpec{spec},
			Store:       StoreConfig{Dir: t.TempDir()},
			Cluster: &ClusterConfig{
				NodeID: members[i].ID, Peers: members, PeerTimeout: 30 * time.Second,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		h := srv.Handler()
		late[i].h.Store(&h)
		servers = append(servers, srv)
	}
	owner := -1
	for i, srv := range servers {
		if srv.tenants["paper"].state.Load() == tenantActive {
			owner = i
		}
	}
	if owner < 0 {
		t.Fatal("no owner")
	}
	target := 1 - owner

	submitQ := func(url string) QueryResponse {
		t.Helper()
		resp, body := postQueryNoRedirect(t, url, QueryRequest{Federation: "paper", Query: "Q12", Weights: []float64{1, 1}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit: %d %s", resp.StatusCode, body)
		}
		var qr QueryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		return qr
	}
	histLen := func(url string) int {
		t.Helper()
		resp, err := http.Get(url + "/v1/history/Q12?federation=paper&limit=0")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var hr HistoryResponse
		if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
			t.Fatal(err)
		}
		return hr.Len
	}

	// Two decisions on the original owner.
	submitQ(https[owner].URL)
	submitQ(https[owner].URL)

	// Control: identical spec and request sequence on a standalone
	// server that never migrates.
	ctrl, err := New(Config{Federations: []FederationSpec{spec}})
	if err != nil {
		t.Fatal(err)
	}
	tsC := httptest.NewServer(ctrl.Handler())
	defer tsC.Close()
	submitQ(tsC.URL)
	submitQ(tsC.URL)
	want := submitQ(tsC.URL) // the control's third decision

	// Live migration.
	resp, err := http.Post(https[owner].URL+"/v1/admin/handoff?federation=paper&target="+members[target].ID, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var hr HandoffResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("handoff: %d (%+v)", resp.StatusCode, hr)
	}
	// Zero acked-write loss: all 14 observations (12 bootstrap + 2
	// decisions) crossed.
	if hr.Observations["Q12"] != 14 {
		t.Fatalf("handoff moved %d observations, want 14", hr.Observations["Q12"])
	}
	if got := histLen(https[target].URL); got != 14 {
		t.Fatalf("new owner history = %d, want 14", got)
	}

	// The first post-handoff decision must match the never-moved
	// control exactly: estimation is a pure function of (history, plan
	// space), both of which the handoff moved bit-for-bit.
	got := submitQ(https[target].URL)
	if got.Plan != want.Plan {
		t.Fatalf("post-handoff plan %+v, control chose %+v", got.Plan, want.Plan)
	}
	if got.EstimatedTimeS != want.EstimatedTimeS || got.EstimatedUSD != want.EstimatedUSD {
		t.Fatalf("post-handoff estimates (%v, %v), control (%v, %v)",
			got.EstimatedTimeS, got.EstimatedUSD, want.EstimatedTimeS, want.EstimatedUSD)
	}
	if got.ParetoSize != want.ParetoSize || got.PlanSpace != want.PlanSpace {
		t.Fatalf("post-handoff front %d/%d, control %d/%d",
			got.ParetoSize, got.PlanSpace, want.ParetoSize, want.PlanSpace)
	}
	if got.Node != members[target].ID || got.Epoch != 2 {
		t.Fatalf("post-handoff stamp node=%q epoch=%d", got.Node, got.Epoch)
	}

	// The old owner redirects, and a handoff *back* works too (the
	// source rebuilt serving state from the returned stream).
	resp2, _ := postQueryNoRedirect(t, https[owner].URL, QueryRequest{Federation: "paper", Query: "Q12"})
	if resp2.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("old owner returned %d", resp2.StatusCode)
	}
	resp, err = http.Post(https[target].URL+"/v1/admin/handoff?federation=paper&target="+members[owner].ID, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("handoff back: %d", resp.StatusCode)
	}
	if got := histLen(https[owner].URL); got != 15 {
		t.Fatalf("after round trip history = %d, want 15", got)
	}
	for _, srv := range servers {
		if err := srv.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if err := ctrl.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestClusterReplicationTakeover kills an owner (no drain, no
// checkpoint) and promotes the standby from its synchronously
// replicated WAL: every acked decision must survive.
func TestClusterReplicationTakeover(t *testing.T) {
	if testing.Short() {
		t.Skip("full serving stack")
	}
	spec := FederationSpec{
		Name:        "paper",
		SF:          0.05,
		NodeChoices: []int{1, 2},
		Bootstrap:   12,
		Queries:     []string{"Q12"},
	}
	late := []*lateHandler{{}, {}}
	var https []*httptest.Server
	var members []cluster.Member
	for i := 0; i < 2; i++ {
		ts := httptest.NewServer(late[i])
		defer ts.Close()
		https = append(https, ts)
		members = append(members, cluster.Member{ID: fmt.Sprintf("n%d", i), Addr: ts.URL})
	}
	var servers []*Server
	for i := 0; i < 2; i++ {
		srv, err := New(Config{
			Federations: []FederationSpec{spec},
			Store:       StoreConfig{Dir: t.TempDir()},
			Cluster: &ClusterConfig{
				NodeID: members[i].ID, Peers: members,
				Replicate:    true,
				SyncInterval: 50 * time.Millisecond,
				PeerTimeout:  30 * time.Second,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		h := srv.Handler()
		late[i].h.Store(&h)
		servers = append(servers, srv)
	}
	owner := -1
	for i, srv := range servers {
		if srv.tenants["paper"].state.Load() == tenantActive {
			owner = i
		}
	}
	if owner < 0 {
		t.Fatal("no owner")
	}
	standby := 1 - owner

	// Wait for the sync loop to arm the replication stream.
	rep := servers[owner].cluster.repl["paper"]
	deadline := time.Now().Add(15 * time.Second)
	for !rep.Streaming("Q12") {
		if time.Now().After(deadline) {
			t.Fatal("replication never armed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Acked decisions on the owner; each one's WAL frame is on the
	// standby before the response returns.
	for i := 0; i < 3; i++ {
		resp, body := postQueryNoRedirect(t, https[owner].URL,
			QueryRequest{Federation: "paper", Query: "Q12", Weights: []float64{1, 1}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, body)
		}
	}

	// Kill the owner: close its listener without drain or checkpoint.
	https[owner].Close()

	// Promote the standby from replicated state.
	resp, err := http.Post(https[standby].URL+"/v1/admin/takeover?federation=paper", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var hr HandoffResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("takeover: %d (%+v)", resp.StatusCode, hr)
	}
	// Zero acked-write loss: 12 bootstrap + 3 decisions.
	if hr.Observations["Q12"] != 15 {
		t.Fatalf("takeover recovered %d observations, want 15", hr.Observations["Q12"])
	}
	// The promoted node serves.
	resp2, body := postQueryNoRedirect(t, https[standby].URL,
		QueryRequest{Federation: "paper", Query: "Q12", Weights: []float64{1, 1}})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-takeover submit: %d %s", resp2.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Node != members[standby].ID || qr.Epoch != 2 {
		t.Fatalf("post-takeover stamp node=%q epoch=%d", qr.Node, qr.Epoch)
	}
	if err := servers[standby].Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestClusterStatsAndResponseEpochs covers the epoch-stamped stats
// surface in cluster mode.
func TestClusterStatsEpochStamp(t *testing.T) {
	tc := newTestCluster(t, 2, []string{"alpha", "beta"})
	resp, err := http.Get(tc.https[0].URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Cluster == nil {
		t.Fatal("cluster stats absent in cluster mode")
	}
	if sr.Cluster.Node != "n0" || sr.Cluster.Epoch != 1 || sr.Cluster.Members != 2 {
		t.Fatalf("cluster stats %+v", sr.Cluster)
	}
	owned := 0
	for _, fed := range []string{"alpha", "beta"} {
		if tc.servers[0].tenants[fed].state.Load() == tenantActive {
			owned++
		}
	}
	if len(sr.Cluster.Owned) != owned {
		t.Fatalf("stats report %d owned, state machine says %d", len(sr.Cluster.Owned), owned)
	}
}

// TestClusterHandoffActivateAckLost drives the two-generals corner of
// a handoff: the target commits activation but the source never sees
// the ack (the response is swallowed and replaced with a 502). The
// source must NOT revert to active — that would leave two owners at
// different epochs — but verify the outcome against the target and
// commit its half of the move.
func TestClusterHandoffActivateAckLost(t *testing.T) {
	tc := newTestCluster(t, 2, []string{"alpha"})
	owner := tc.ownerIdx(t, "alpha")
	target := 1 - owner

	// Wrap the target: the first activate POST runs through the real
	// handler (so activation commits) but the caller gets a 502.
	real := tc.servers[target].Handler()
	var swallowed atomic.Bool
	wrapped := http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/admin/handoff/activate" && swallowed.CompareAndSwap(false, true) {
			rec := httptest.NewRecorder()
			real.ServeHTTP(rec, r)
			if rec.Code != http.StatusOK {
				t.Errorf("real activate handler returned %d: %s", rec.Code, rec.Body)
			}
			http.Error(w, "injected: ack lost", http.StatusBadGateway)
			return
		}
		real.ServeHTTP(w, r)
	}))
	tc.late[target].h.Store(&wrapped)

	resp, err := http.Post(tc.https[owner].URL+"/v1/admin/handoff?federation=alpha&target="+tc.members[target].ID, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("handoff with lost activate ack = %d: %s", resp.StatusCode, body)
	}
	var hr HandoffResponse
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Epoch != 2 || hr.To != tc.members[target].ID {
		t.Fatalf("handoff response %+v", hr)
	}
	if !swallowed.Load() {
		t.Fatal("fault injection never fired")
	}

	// Exactly one owner: source remote, target active.
	if st := tc.servers[owner].tenants["alpha"].state.Load(); st != tenantRemote {
		t.Fatalf("source tenant is %s, want remote", tenantStateName(st))
	}
	if st := tc.servers[target].tenants["alpha"].state.Load(); st != tenantActive {
		t.Fatalf("target tenant is %s, want active", tenantStateName(st))
	}

	// The source redirects at the target, which serves at the new epoch.
	req := QueryRequest{Federation: "alpha", Query: "Q12", Weights: []float64{1, 1}}
	resp2, _ := postQueryNoRedirect(t, tc.https[owner].URL, req)
	if resp2.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("old owner returned %d", resp2.StatusCode)
	}
	if loc := resp2.Header.Get("Location"); loc != tc.members[target].Addr+"/v1/queries" {
		t.Fatalf("old owner redirects to %q", loc)
	}
	resp2, qbody := postQueryNoRedirect(t, tc.https[target].URL, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("new owner returned %d: %s", resp2.StatusCode, qbody)
	}
	var qr QueryResponse
	if err := json.Unmarshal(qbody, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Node != tc.members[target].ID || qr.Epoch < 2 {
		t.Fatalf("post-handoff response node=%q epoch=%d", qr.Node, qr.Epoch)
	}
}

// TestClusterStaleOwnerDemoted exercises the split-brain convergence
// path: ownership moves via takeover while the old owner is alive (the
// stand-in for a restarted former owner that boots with its ring-owned
// tenants active), and the old owner must demote itself once gossip
// hands it the newer table instead of serving stale state forever.
func TestClusterStaleOwnerDemoted(t *testing.T) {
	tc := newTestCluster(t, 2, []string{"alpha"})
	owner := tc.ownerIdx(t, "alpha")
	other := 1 - owner

	resp, err := http.Post(tc.https[other].URL+"/v1/admin/takeover?federation=alpha", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("takeover = %d: %s", resp.StatusCode, body)
	}

	// Gossip carries the epoch-2 table to the old owner, whose
	// reconcile pass demotes the now-stale tenant (both async; poll).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if tc.servers[owner].tenants["alpha"].state.Load() == tenantRemote {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("old owner never demoted; state=%s table-epoch=%d",
				tenantStateName(tc.servers[owner].tenants["alpha"].state.Load()),
				tc.servers[owner].cluster.table.Load().Epoch())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The demoted node redirects at the adopted owner.
	req := QueryRequest{Federation: "alpha", Query: "Q12", Weights: []float64{1, 1}}
	resp2, _ := postQueryNoRedirect(t, tc.https[owner].URL, req)
	if resp2.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("demoted node returned %d", resp2.StatusCode)
	}
	if loc := resp2.Header.Get("Location"); loc != tc.members[other].Addr+"/v1/queries" {
		t.Fatalf("demoted node redirects to %q", loc)
	}
	// Both tables agree on the new owner.
	for i := range tc.https {
		cr := getClusterTable(t, tc.https[i].URL)
		if cr.Epoch < 2 || cr.Placements["alpha"].Owner != tc.members[other].ID {
			t.Fatalf("node %d table epoch=%d owner=%q", i, cr.Epoch, cr.Placements["alpha"].Owner)
		}
	}
}

// TestAdoptTableMergesEqualEpochs pins the equal-epoch merge: epochs
// are minted locally, so two concurrent moves can produce distinct
// tables at the same epoch, and adoption must merge them the same way
// on every node rather than ignoring one side.
func TestAdoptTableMergesEqualEpochs(t *testing.T) {
	mk := func() *clusterState {
		cs, err := newClusterState(&ClusterConfig{
			NodeID: "a",
			Peers: []cluster.Member{
				{ID: "a", Addr: "http://a"},
				{ID: "b", Addr: "http://b"},
				{ID: "c", Addr: "http://c"},
			},
		}, "")
		if err != nil {
			t.Fatal(err)
		}
		return cs
	}

	cs := mk()
	if got := cs.applyOverride("f1", "b", 2); got != 2 {
		t.Fatalf("applyOverride epoch = %d", got)
	}
	// A disjoint same-epoch table merges: union, epoch bumped past both.
	if !cs.adoptTable(2, map[string]string{"f2": "c"}) {
		t.Fatal("same-epoch disjoint table not adopted")
	}
	tab := cs.table.Load()
	if tab.Epoch() != 3 || tab.Owner("f1").ID != "b" || tab.Owner("f2").ID != "c" {
		t.Fatalf("merged table epoch=%d f1=%q f2=%q", tab.Epoch(), tab.Owner("f1").ID, tab.Owner("f2").ID)
	}
	// Adopting an identical table is a no-op, not an epoch bump.
	if cs.adoptTable(tab.Epoch(), tab.Overrides()) {
		t.Fatal("identical table adopted")
	}
	// A same-federation conflict resolves to the smaller member ID.
	if !cs.adoptTable(3, map[string]string{"f1": "a", "f2": "c"}) {
		t.Fatal("same-epoch conflicting table not adopted")
	}
	tab = cs.table.Load()
	if tab.Epoch() != 4 || tab.Owner("f1").ID != "a" {
		t.Fatalf("conflict merge epoch=%d f1=%q", tab.Epoch(), tab.Owner("f1").ID)
	}
	// Stale epochs are refused.
	if cs.adoptTable(1, map[string]string{"f1": "c"}) {
		t.Fatal("stale table adopted")
	}

	// The merge is commutative: two nodes seeing the same pair of
	// same-epoch tables in opposite orders converge on one table.
	ovA := map[string]string{"f1": "b", "f3": "c"}
	ovB := map[string]string{"f1": "a", "f2": "b"}
	cs1, cs2 := mk(), mk()
	cs1.adoptTable(2, ovA)
	cs1.adoptTable(2, ovB)
	cs2.adoptTable(2, ovB)
	cs2.adoptTable(2, ovA)
	t1, t2 := cs1.table.Load(), cs2.table.Load()
	if t1.Epoch() != t2.Epoch() || !overridesEqual(t1.Overrides(), t2.Overrides()) {
		t.Fatalf("merge not commutative: epoch %d vs %d, overrides %v vs %v",
			t1.Epoch(), t2.Epoch(), t1.Overrides(), t2.Overrides())
	}
	if t1.Owner("f1").ID != "a" {
		t.Fatalf("commutative merge f1=%q, want a", t1.Owner("f1").ID)
	}
}
