package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/histstore"
	"repro/internal/ires"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/tpch"
)

// QueryScheduler is the slice of ires.Scheduler the serving layer
// drives. Narrowing to an interface keeps the admission/batching
// machinery testable against stub schedulers with controllable latency.
type QueryScheduler interface {
	// PlanSweep runs the policy-independent half of a round (enumerate,
	// estimate, Pareto-reduce); the result is shared across coalesced
	// submissions.
	PlanSweep(ctx context.Context, q tpch.QueryID) (*ires.Sweep, error)
	// DecideFromSweep selects under one request's policy, executes the
	// winner and records the outcome.
	DecideFromSweep(sw *ires.Sweep, pol ires.Policy) (*ires.Decision, error)
	// History exposes the query's execution log for /v1/history.
	History(q tpch.QueryID) *core.History
}

var _ QueryScheduler = (*ires.Scheduler)(nil)

// FederationSpec declares one hosted federation: which topology to
// build, at what simulated data scale, and how to assemble its
// scheduler. The zero value of every optional field takes a documented
// default, so {"name":"main"} is a complete spec.
type FederationSpec struct {
	// Name keys the tenant in the API ("federation" request field).
	Name string `json:"name"`
	// Topology is "default" (the paper's two-site Hive+PostgreSQL
	// deployment, the default) or "threecloud" (adds Spark-on-Google).
	Topology string `json:"topology,omitempty"`
	// Seed drives every stochastic component of the tenant.
	Seed int64 `json:"seed,omitempty"`
	// SF is the simulated data scale (default 0.1 ≈ 100 MiB).
	SF float64 `json:"sf,omitempty"`
	// CalibSF is the calibration scale (default 0.004).
	CalibSF float64 `json:"calib_sf,omitempty"`
	// NodeChoices is the cluster-size menu (default {1, 2, 4}).
	NodeChoices []int `json:"node_choices,omitempty"`
	// Parallelism bounds the scheduler's estimation pool (0 =
	// GOMAXPROCS).
	Parallelism int `json:"parallelism,omitempty"`
	// CacheSize tunes the Modelling module's model cache (0 = default).
	CacheSize int `json:"cache_size,omitempty"`
	// PrunePolicy selects which QEPs of the lattice each sweep
	// estimates: "full" (every plan — the default and the paper's
	// behavior), "greedy" (cost-ordered lattice walk with early
	// termination), or "topk" (deterministic uniform sample).
	PrunePolicy string `json:"prune_policy,omitempty"`
	// PruneBudget caps the plans estimated per sweep for "greedy" and
	// "topk" (0 = policy default; rejected for "full").
	PruneBudget int `json:"prune_budget,omitempty"`
	// Bootstrap seeds each query's history with this many random
	// executions before serving (default 20).
	Bootstrap int `json:"bootstrap,omitempty"`
	// Queries restricts which queries the tenant serves (default: all
	// four studied queries).
	Queries []string `json:"queries,omitempty"`
	// Chaos names a fault-injection profile ("none", "outages",
	// "stragglers", "price-spikes", "autoscale", "mixed") applied to the
	// tenant's cloud after boot: bootstrap trains on the well-behaved
	// cloud, serving weathers the faults. Empty means none.
	Chaos string `json:"chaos,omitempty"`
	// ChaosSeed seeds the fault schedule (default: Seed), so a chaosed
	// deployment is as replayable as a clean one.
	ChaosSeed int64 `json:"chaos_seed,omitempty"`
}

func (sp *FederationSpec) withDefaults() FederationSpec {
	out := *sp
	if out.Topology == "" {
		out.Topology = "default"
	}
	if out.Seed == 0 {
		out.Seed = 42
	}
	if out.SF == 0 {
		out.SF = 0.1
	}
	if out.CalibSF == 0 {
		out.CalibSF = 0.004
	}
	if len(out.NodeChoices) == 0 {
		out.NodeChoices = []int{1, 2, 4}
	}
	if out.Bootstrap == 0 {
		out.Bootstrap = 20
	}
	return out
}

// queries resolves the spec's query names.
func (sp *FederationSpec) queries() ([]tpch.QueryID, error) {
	if len(sp.Queries) == 0 {
		return append([]tpch.QueryID(nil), tpch.AllQueries...), nil
	}
	out := make([]tpch.QueryID, 0, len(sp.Queries))
	for _, name := range sp.Queries {
		q, err := tpch.ParseQueryID(name)
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	return out, nil
}

// buildTenant assembles the spec's scheduler: topology, calibration,
// scaled executor, DREAM model, and — with a store configured — the
// tenant's durable history root. Every served query is then opened
// (recovering whatever the store holds) and bootstrapped only up to
// the shortfall: a warm-started tenant whose recovered history already
// meets the bootstrap target executes nothing before serving.
//
// cold builds the tenant without opening or bootstrapping histories —
// the shape of a cluster node that does not own the federation. The
// scheduler assembly itself is deterministic (same spec, same seed →
// same topology, calibration and models on every node), so a cold
// tenant activated later by a handoff or takeover decides exactly as a
// warm-built one would. mirror, when non-nil, receives every WAL
// append of the tenant's store (cluster replication).
func buildTenant(spec FederationSpec, storeCfg StoreConfig, reg *metrics.Registry, cold bool, mirror histstore.Mirror) (*tenant, error) {
	sp := spec.withDefaults()
	if sp.Name == "" {
		return nil, fmt.Errorf("server: federation spec without a name")
	}
	queries, err := sp.queries()
	if err != nil {
		return nil, fmt.Errorf("server: federation %q: %w", sp.Name, err)
	}
	// Parse the prune policy before the expensive topology/calibration
	// work so a misconfigured spec fails the boot immediately.
	pruner, err := ires.ParsePrunePolicy(sp.PrunePolicy, sp.PruneBudget)
	if err != nil {
		return nil, fmt.Errorf("server: federation %q: %w", sp.Name, err)
	}
	chaosProfile, err := cloud.ParseChaosProfile(sp.Chaos)
	if err != nil {
		return nil, fmt.Errorf("server: federation %q: %w", sp.Name, err)
	}
	var fed *federation.Federation
	switch sp.Topology {
	case "default":
		fed, err = federation.DefaultTopology(sp.Seed)
	case "threecloud":
		fed, err = federation.ThreeCloudTopology(sp.Seed)
	default:
		err = fmt.Errorf("unknown topology %q (default, threecloud)", sp.Topology)
	}
	if err != nil {
		return nil, fmt.Errorf("server: federation %q: %w", sp.Name, err)
	}
	cal, err := federation.Calibrate(fed, sp.CalibSF, sp.Seed)
	if err != nil {
		return nil, fmt.Errorf("server: federation %q: calibrate: %w", sp.Name, err)
	}
	exec, err := federation.NewScaledExecutor(fed, cal, sp.SF)
	if err != nil {
		return nil, fmt.Errorf("server: federation %q: %w", sp.Name, err)
	}
	model, err := ires.NewDREAMModel(core.Config{MMax: 3 * (federation.FeatureDim + 2)})
	if err != nil {
		return nil, fmt.Errorf("server: federation %q: %w", sp.Name, err)
	}
	schedCfg := ires.SchedulerConfig{
		NodeChoices:       sp.NodeChoices,
		Seed:              sp.Seed,
		Parallelism:       sp.Parallelism,
		CacheSize:         sp.CacheSize,
		Prune:             pruner,
		Metrics:           reg,
		MetricsFederation: sp.Name,
	}
	var store *histstore.Store
	if storeCfg.Dir != "" {
		// One store root per tenant; the name is path-escaped so any
		// federation name is a single safe directory element.
		root := filepath.Join(storeCfg.Dir, url.PathEscape(sp.Name))
		store, err = histstore.Open(root, histstore.Options{
			Fsync:           storeCfg.Fsync,
			GroupCommit:     storeCfg.GroupCommit,
			CommitInterval:  storeCfg.CommitInterval,
			CommitBatchSize: storeCfg.CommitBatch,
			Mirror:          mirror,
			Metrics:         reg,
			MetricsStore:    sp.Name,
		})
		if err != nil {
			return nil, fmt.Errorf("server: federation %q: opening history store: %w", sp.Name, err)
		}
		schedCfg.Store = store
	}
	// From here on a failed build must release the store's WAL handles.
	fail := func(err error) (*tenant, error) {
		if store != nil {
			store.Close()
		}
		return nil, err
	}
	sched, err := ires.NewSchedulerWithConfig(fed, exec, model, schedCfg)
	if err != nil {
		return fail(fmt.Errorf("server: federation %q: %w", sp.Name, err))
	}
	if !cold {
		for _, q := range queries {
			// Opening here recovers durable state, so corruption fails
			// the boot (not a request), and a warm start only
			// bootstraps the shortfall below the target.
			h, err := sched.OpenHistory(q)
			if err != nil {
				return fail(fmt.Errorf("server: federation %q: %w", sp.Name, err))
			}
			if need := sp.Bootstrap - h.Len(); need > 0 {
				if err := sched.Bootstrap(q, need); err != nil {
					return fail(fmt.Errorf("server: federation %q: bootstrap %v: %w", sp.Name, q, err))
				}
			}
		}
	}
	// Chaos attaches only after bootstrap so the model trains on the
	// well-behaved cloud and the faults land on serving, where they are
	// measured. The schedule is seeded, so a chaosed tenant replays.
	if chaosProfile.Enabled() {
		chaosSeed := sp.ChaosSeed
		if chaosSeed == 0 {
			chaosSeed = sp.Seed
		}
		scenario.AttachChaos(fed, chaosProfile, chaosSeed)
	}
	t := newTenant(sp.Name, sched, queries)
	t.store = store
	t.bootstrap = sp.Bootstrap
	t.stats.prunePolicy = pruner.Name()
	return t, nil
}

// LoadSpecs reads a JSON federation config: either a bare array of
// specs or {"federations": [...]}.
func LoadSpecs(r io.Reader) ([]FederationSpec, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	// The first token decides the shape, so a malformed file reports
	// the error of the parse that was actually intended.
	if trimmed := bytes.TrimLeft(raw, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '[' {
		var specs []FederationSpec
		if err := json.Unmarshal(raw, &specs); err != nil {
			return nil, fmt.Errorf("server: parsing federation config: %w", err)
		}
		return specs, nil
	}
	var wrapped struct {
		Federations []FederationSpec `json:"federations"`
	}
	if err := json.Unmarshal(raw, &wrapped); err != nil {
		return nil, fmt.Errorf("server: parsing federation config: %w", err)
	}
	return wrapped.Federations, nil
}

// LoadSpecsFile reads LoadSpecs from a path.
func LoadSpecsFile(path string) ([]FederationSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSpecs(f)
}
