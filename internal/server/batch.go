package server

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/histstore"
	"repro/internal/ires"
	"repro/internal/metrics"
	"repro/internal/tpch"
)

// tenant is one hosted federation: a scheduler, the queries it serves,
// the per-query sweep batcher, its serving stats and (when durable)
// its history store.
type tenant struct {
	name    string
	sched   QueryScheduler
	queries map[tpch.QueryID]bool
	stats   *tenantStats
	// store is the tenant's durable history root; nil when running in
	// memory. The scheduler owns the flow of data through it — the
	// tenant only closes it at drain.
	store *histstore.Store
	// admit is this tenant's admission semaphore (one per federation so
	// tenants cannot head-of-line-block each other); sized and set by
	// newServer before any request is served.
	admit chan struct{}
	// latency holds the pre-bound per-query request-latency histograms
	// (see Server.registerMetrics); immutable once serving starts.
	latency map[tpch.QueryID]*metrics.Histogram

	// Cluster-mode ownership state (see cluster.go). The zero state is
	// tenantActive, so standalone servers never touch any of this.
	state atomic.Int32
	// inflight counts submissions between the cluster routing gate and
	// completion; an outbound handoff flips state to sending, then
	// waits for this to reach zero before streaming the histories.
	inflight atomic.Int64
	// ownerHint names the handoff target while state is sending — the
	// routing table only learns the new owner once the move commits.
	ownerHint atomic.Pointer[cluster.Member]
	// bootstrap is the spec's per-query bootstrap target, replayed when
	// a cold tenant activates (handoff in, takeover).
	bootstrap int
	// actMu guards activated, the channel requests held during an
	// inbound handoff wait on; closed when the handoff resolves.
	actMu     sync.Mutex
	activated chan struct{}
	// activateMu single-flights inbound activation (handoff activate,
	// takeover) and serializes it against abort: a retried activate —
	// the source re-sends after a lost ack, activation being idempotent
	// — blocks here until the first attempt resolves instead of racing
	// a second OpenHistory pass over the same shards.
	activateMu sync.Mutex

	mu      sync.Mutex
	pending map[tpch.QueryID]*sweepBatch
}

// beginReceiving flips the tenant remote→receiving and opens the
// activation channel requests will wait on. False when the tenant is
// not remote (already active here, or another handoff is in flight).
func (t *tenant) beginReceiving() bool {
	t.actMu.Lock()
	defer t.actMu.Unlock()
	if !t.state.CompareAndSwap(tenantRemote, tenantReceiving) {
		return false
	}
	t.activated = make(chan struct{})
	return true
}

// finishReceiving resolves an inbound handoff to final (tenantActive on
// success, tenantRemote on abort) and releases every held request.
func (t *tenant) finishReceiving(final int32) {
	t.actMu.Lock()
	defer t.actMu.Unlock()
	t.state.Store(final)
	if t.activated != nil {
		close(t.activated)
		t.activated = nil
	}
}

// waitActive blocks a request while an inbound handoff resolves.
// Returns true when the wait ended (re-check the state), false when
// ctx expired first.
func (t *tenant) waitActive(ctx context.Context) bool {
	t.actMu.Lock()
	ch := t.activated
	t.actMu.Unlock()
	if ch == nil {
		return true // already resolved between the state load and here
	}
	select {
	case <-ch:
		return true
	case <-ctx.Done():
		return false
	}
}

func newTenant(name string, sched QueryScheduler, queries []tpch.QueryID) *tenant {
	qs := make(map[tpch.QueryID]bool, len(queries))
	for _, q := range queries {
		qs[q] = true
	}
	return &tenant{
		name:    name,
		sched:   sched,
		queries: qs,
		stats:   newTenantStats(),
		pending: make(map[tpch.QueryID]*sweepBatch),
	}
}

// registerMetrics publishes the tenant's serving counters on reg,
// labeled with the federation name.
func (t *tenant) registerMetrics(reg *metrics.Registry) {
	t.stats.register(reg, t.name)
}

// checkpoint compacts the tenant's histories to durable snapshots when
// its scheduler supports it; schedulers without the Checkpointer
// capability (or without a store) have nothing to compact.
func (t *tenant) checkpoint() error {
	cp, ok := t.sched.(Checkpointer)
	if !ok {
		return nil
	}
	if err := cp.Checkpoint(); err != nil {
		t.stats.checkpointErr.Add(1)
		return err
	}
	t.stats.checkpoints.Add(1)
	return nil
}

// closeStore releases the tenant's WAL handles at drain.
func (t *tenant) closeStore() error {
	if t.store == nil {
		return nil
	}
	return t.store.Close()
}

// sweepBatch is one in-flight plan sweep that any number of concurrent
// submissions of the same query share. The leader runs the sweep and
// publishes (sweep, err) before closing done; followers only wait.
type sweepBatch struct {
	done  chan struct{}
	sweep *ires.Sweep
	err   error
	// joined counts the followers waiting on this batch (observability
	// and test synchronization).
	joined atomic.Int64
}

// sharedSweep returns a plan sweep for q, coalescing with an in-flight
// sweep when one exists. The second return reports whether the caller
// joined another request's sweep (false = this call was the leader).
//
// waitCtx bounds only this caller's wait. The sweep itself runs under a
// context obtained from newSweepCtx *inside the detached goroutine and
// cancelled only when the sweep returns* — so neither a follower giving
// up, nor the leading request timing out or its client disconnecting,
// can cancel work other requests are waiting on.
func (t *tenant) sharedSweep(waitCtx context.Context, newSweepCtx func() (context.Context, context.CancelFunc), q tpch.QueryID) (*ires.Sweep, bool, error) {
	t.mu.Lock()
	if b, ok := t.pending[q]; ok {
		t.mu.Unlock()
		b.joined.Add(1)
		select {
		case <-b.done:
			return b.sweep, true, b.err
		case <-waitCtx.Done():
			return nil, true, waitCtx.Err()
		}
	}
	b := &sweepBatch{done: make(chan struct{})}
	t.pending[q] = b
	t.mu.Unlock()

	t.stats.sweeps.Add(1)
	// A leader that cannot be cancelled (Done() == nil, e.g. an
	// embedder driving ServeSubmit with context.Background) would wait
	// out the whole sweep regardless, so the detached goroutine buys
	// nothing — run the sweep inline and skip the spawn. Followers
	// still coalesce through t.pending either way.
	if waitCtx.Done() == nil {
		sweepCtx, cancel := newSweepCtx()
		b.sweep, b.err = t.sched.PlanSweep(sweepCtx, q)
		cancel()
		t.mu.Lock()
		delete(t.pending, q)
		t.mu.Unlock()
		close(b.done)
		return b.sweep, false, b.err
	}

	// The sweep runs detached: if the leading request times out or its
	// client disconnects, the batch still completes for the requests
	// that joined it.
	go func() {
		sweepCtx, cancel := newSweepCtx()
		defer cancel()
		b.sweep, b.err = t.sched.PlanSweep(sweepCtx, q)
		t.mu.Lock()
		delete(t.pending, q)
		t.mu.Unlock()
		close(b.done)
	}()
	select {
	case <-b.done:
		return b.sweep, false, b.err
	case <-waitCtx.Done():
		return nil, false, waitCtx.Err()
	}
}
