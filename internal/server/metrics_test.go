package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
)

// scrape fetches and parses GET /metrics.
func scrape(t *testing.T, url string) *Scrape {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := metrics.ParseText(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatalf("scrape does not parse: %v\n%s", err, raw)
	}
	return sc
}

// Scrape aliases the parser's result for test readability.
type Scrape = metrics.Scrape

func TestMetricsEndpoint(t *testing.T) {
	srv := newTestServer(t, &stubSched{}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, body := postQuery(t, ts.URL, QueryRequest{Query: "Q12", Weights: []float64{1, 1}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit = %d, body %s", resp.StatusCode, body)
		}
	}
	sc := scrape(t, ts.URL)

	// The serving counters mirror /v1/stats.
	if got := sc.Values[`midas_requests_received_total{federation="test"}`]; got != 3 {
		t.Errorf("received = %v, want 3", got)
	}
	if got := sc.Values[`midas_requests_completed_total{federation="test"}`]; got != 3 {
		t.Errorf("completed = %v, want 3", got)
	}
	// The per-query latency histogram exists and is coherent.
	if got := sc.Values[`midas_request_duration_seconds_count{federation="test",query="Q12"}`]; got != 3 {
		t.Errorf("latency count = %v, want 3", got)
	}
	if sc.Types["midas_request_duration_seconds"] != metrics.KindHistogram {
		t.Errorf("latency TYPE = %v, want histogram", sc.Types["midas_request_duration_seconds"])
	}
	// Cumulative buckets are monotone and end at _count.
	var prev float64
	var bucketCount int
	for _, id := range sc.Order {
		if !strings.HasPrefix(id, `midas_request_duration_seconds_bucket{federation="test",query="Q12"`) {
			continue
		}
		v := sc.Values[id]
		if v < prev {
			t.Errorf("bucket %s = %v below previous %v", id, v, prev)
		}
		prev = v
		bucketCount++
	}
	if bucketCount == 0 {
		t.Fatalf("no latency buckets rendered")
	}
	if prev != sc.Values[`midas_request_duration_seconds_count{federation="test",query="Q12"}`] {
		t.Errorf("+Inf bucket %v != count", prev)
	}
	// Admission gauges render, labeled per federation (the queue is
	// sharded per tenant).
	if got := sc.Values[`midas_admission_queue_capacity{federation="test"}`]; got != 1024 {
		t.Errorf("queue capacity = %v, want default 1024", got)
	}
	if _, ok := sc.Values[`midas_admission_queue_depth{federation="test"}`]; !ok {
		t.Errorf("per-federation queue depth gauge missing")
	}
}

// TestMetricsCountersMonotoneUnderLoad hammers the server from many
// goroutines while scraping concurrently: every scrape must parse, and
// counters across consecutive scrapes must never decrease.
func TestMetricsCountersMonotoneUnderLoad(t *testing.T) {
	srv := newTestServer(t, &stubSched{}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const writers, perWriter, scrapes = 8, 25, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, _, err := tryPostQuery(ts.URL, QueryRequest{Query: "Q12", Weights: []float64{1, 1}}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	counters := []string{
		`midas_requests_received_total{federation="test"}`,
		`midas_requests_completed_total{federation="test"}`,
		`midas_request_duration_seconds_count{federation="test",query="Q12"}`,
		`midas_sweeps_started_total{federation="test"}`,
	}
	prev := make(map[string]float64)
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < scrapes; i++ {
			sc := scrape(t, ts.URL)
			for _, c := range counters {
				if v := sc.Values[c]; v < prev[c] {
					t.Errorf("scrape %d: %s went backwards: %v -> %v", i, c, prev[c], v)
				} else {
					prev[c] = v
				}
			}
		}
		close(done)
	}()
	wg.Wait()
	<-done

	// Settled state: every submission is accounted for exactly once.
	sc := scrape(t, ts.URL)
	want := float64(writers * perWriter)
	if got := sc.Values[`midas_requests_received_total{federation="test"}`]; got != want {
		t.Errorf("received = %v, want %v", got, want)
	}
	if got := sc.Values[`midas_requests_completed_total{federation="test"}`]; got != want {
		t.Errorf("completed = %v, want %v", got, want)
	}
	if got := sc.Values[`midas_request_duration_seconds_count{federation="test",query="Q12"}`]; got != want {
		t.Errorf("latency observations = %v, want %v", got, want)
	}
	// Coalesced + sweeps cover every completion (a request either led a
	// sweep or joined one).
	coalesced := sc.Values[`midas_requests_coalesced_total{federation="test"}`]
	if coalesced < 0 || coalesced > want {
		t.Errorf("coalesced = %v outside [0, %v]", coalesced, want)
	}
}

// TestMetricsMirrorsStats: the JSON stats endpoint and the Prometheus
// endpoint read the same atomics, so their counts must agree when the
// server is quiescent.
func TestMetricsMirrorsStats(t *testing.T) {
	srv := newTestServer(t, &stubSched{}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 5; i++ {
		postQuery(t, ts.URL, QueryRequest{Query: "Q13", Weights: []float64{1, 1}})
	}
	sc := scrape(t, ts.URL)
	stats := srv.tenants["test"].stats.snapshot()
	if got := sc.Values[`midas_requests_completed_total{federation="test"}`]; got != float64(stats.Completed) {
		t.Errorf("metrics completed %v != stats %d", got, stats.Completed)
	}
	if got := sc.Values[`midas_sweeps_started_total{federation="test"}`]; got != float64(stats.Sweeps) {
		t.Errorf("metrics sweeps %v != stats %d", got, stats.Sweeps)
	}
}
