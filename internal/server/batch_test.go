package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ires"
	"repro/internal/tpch"
)

// TestSharedSweepCoalesces pins the batching contract at the tenant
// level, where it is deterministic: while one sweep is in flight, every
// submission of the same query joins it and receives the identical
// Sweep from a single PlanSweep call.
func TestSharedSweepCoalesces(t *testing.T) {
	stub := &stubSched{block: make(chan struct{}), started: make(chan struct{})}
	tn := newTenant("test", stub, tpch.AllQueries)
	ctx := context.Background()

	type result struct {
		sw        *ires.Sweep
		coalesced bool
		err       error
	}
	const followers = 10
	results := make(chan result, followers+1)
	bgSweep := func() (context.Context, context.CancelFunc) {
		return context.WithCancel(context.Background())
	}
	run := func() {
		sw, co, err := tn.sharedSweep(ctx, bgSweep, tpch.QueryQ12)
		results <- result{sw, co, err}
	}

	go run() // leader
	<-stub.started
	// The batch stays pending until the sweep finishes, so every
	// follower launched now must join it; wait until all of them are
	// verifiably parked on the batch before releasing the sweep.
	for i := 0; i < followers; i++ {
		go run()
	}
	batch := pendingBatch(t, tn, tpch.QueryQ12)
	waitFor(t, 5*time.Second, func() bool { return batch.joined.Load() == followers })
	close(stub.block)

	sweeps := make(map[*ires.Sweep]bool)
	coalesced := 0
	for i := 0; i < followers+1; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		sweeps[r.sw] = true
		if r.coalesced {
			coalesced++
		}
	}
	if len(sweeps) != 1 {
		t.Fatalf("got %d distinct sweeps, want 1", len(sweeps))
	}
	if got := stub.calls(); got != 1 {
		t.Fatalf("PlanSweep calls = %d, want 1", got)
	}
	if coalesced != followers {
		t.Fatalf("coalesced = %d, want %d", coalesced, followers)
	}
}

// TestLeaderTimeoutKeepsSweepAlive pins the detachment contract: the
// leading request giving up must not cancel the sweep that coalesced
// followers are waiting on.
func TestLeaderTimeoutKeepsSweepAlive(t *testing.T) {
	stub := &stubSched{block: make(chan struct{}), started: make(chan struct{})}
	tn := newTenant("test", stub, tpch.AllQueries)
	bgSweep := func() (context.Context, context.CancelFunc) {
		return context.WithCancel(context.Background())
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := tn.sharedSweep(leaderCtx, bgSweep, tpch.QueryQ12)
		leaderDone <- err
	}()
	<-stub.started

	followerDone := make(chan error, 1)
	go func() {
		sw, coalesced, err := tn.sharedSweep(context.Background(), bgSweep, tpch.QueryQ12)
		if err == nil && (sw == nil || !coalesced) {
			err = errors.New("follower did not coalesce onto a live sweep")
		}
		followerDone <- err
	}()
	batch := pendingBatch(t, tn, tpch.QueryQ12)
	waitFor(t, 5*time.Second, func() bool { return batch.joined.Load() == 1 })

	// The leader abandons its wait mid-sweep...
	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v", err)
	}
	// ...and the follower still gets the completed sweep.
	close(stub.block)
	if err := <-followerDone; err != nil {
		t.Fatalf("follower err = %v", err)
	}
	if got := stub.calls(); got != 1 {
		t.Fatalf("PlanSweep calls = %d, want 1", got)
	}
}

// pendingBatch returns the tenant's in-flight batch for q.
func pendingBatch(t *testing.T, tn *tenant, q tpch.QueryID) *sweepBatch {
	t.Helper()
	tn.mu.Lock()
	defer tn.mu.Unlock()
	b := tn.pending[q]
	if b == nil {
		t.Fatal("no pending batch")
	}
	return b
}

// TestSubmitHammer fires many concurrent POST /v1/queries (the -race
// detector watches the whole stack) and requires every response to
// succeed while same-query submissions coalesce into far fewer sweeps.
func TestSubmitHammer(t *testing.T) {
	stub := &stubSched{}
	srv := newTestServer(t, stub, Config{QueueDepth: 4096})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ts.Config.SetKeepAlivesEnabled(true)

	const clients = 64
	const perClient = 5
	var wg sync.WaitGroup
	var errs atomic.Int64
	queries := []string{"Q12", "Q13", "Q14", "Q17"}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, body, err := tryPostQuery(ts.URL, QueryRequest{
					Query:   queries[c%len(queries)],
					Weights: []float64{1, 1},
				})
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					errs.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: status %d body %s", c, resp.StatusCode, body)
					errs.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	if errs.Load() != 0 {
		t.Fatalf("%d failed submissions", errs.Load())
	}
	st := srv.tenants["test"].stats
	total := int64(clients * perClient)
	if st.completed.Load() != total {
		t.Fatalf("completed = %d, want %d", st.completed.Load(), total)
	}
	if st.coalesced.Load()+st.sweeps.Load() != total {
		t.Fatalf("coalesced(%d) + sweeps(%d) != %d",
			st.coalesced.Load(), st.sweeps.Load(), total)
	}
}

// TestRequestTimeout504 verifies that a submission whose budget expires
// while its sweep is still running surfaces as 504, and that the
// timeout is counted.
func TestRequestTimeout504(t *testing.T) {
	stub := &stubSched{block: make(chan struct{})}
	defer close(stub.block)
	srv := newTestServer(t, stub, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postQuery(t, ts.URL, QueryRequest{Query: "Q12", TimeoutMS: 30})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if got := srv.tenants["test"].stats.timeouts.Load(); got != 1 {
		t.Fatalf("timeouts = %d", got)
	}
}

// TestQueueFull429 verifies bounded admission: with a depth-1 queue and
// the only slot held by a blocked request, the next submission is shed
// with 429 instead of queueing.
func TestQueueFull429(t *testing.T) {
	stub := &stubSched{block: make(chan struct{}), started: make(chan struct{})}
	srv := newTestServer(t, stub, Config{QueueDepth: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first := make(chan int, 1)
	go func() {
		resp, _, err := tryPostQuery(ts.URL, QueryRequest{Query: "Q12"})
		if err != nil {
			first <- 0
			return
		}
		first <- resp.StatusCode
	}()
	<-stub.started

	resp, body := postQuery(t, ts.URL, QueryRequest{Query: "Q13"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if got := srv.tenants["test"].stats.rejected.Load(); got != 1 {
		t.Fatalf("rejected = %d", got)
	}
	close(stub.block)
	if got := <-first; got != http.StatusOK {
		t.Fatalf("first request status = %d", got)
	}
}

// TestDrainCompletesInflight verifies graceful shutdown: requests in
// flight when Drain begins complete with 200, new submissions and
// health checks are refused with 503, and Drain returns once the last
// in-flight request finishes.
func TestDrainCompletesInflight(t *testing.T) {
	stub := &stubSched{block: make(chan struct{}), started: make(chan struct{})}
	srv := newTestServer(t, stub, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	inflight := make(chan int, 1)
	go func() {
		resp, _, err := tryPostQuery(ts.URL, QueryRequest{Query: "Q12"})
		if err != nil {
			inflight <- 0
			return
		}
		inflight <- resp.StatusCode
	}()
	<-stub.started

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()
	waitFor(t, 5*time.Second, func() bool { return srv.draining.Load() })

	// New work is refused while draining...
	resp, _ := postQuery(t, ts.URL, QueryRequest{Query: "Q13"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d", hresp.StatusCode)
	}
	var sr StatsResponse
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if !sr.Draining {
		t.Fatal("stats should report draining")
	}

	// ...but the in-flight request still completes, and only then does
	// Drain return.
	select {
	case err := <-drained:
		t.Fatalf("drain returned before in-flight completed: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(stub.block)
	if got := <-inflight; got != http.StatusOK {
		t.Fatalf("in-flight request status = %d", got)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestDrainTimeout verifies that a drain bounded by an already-expired
// context reports the requests it abandoned.
func TestDrainTimeout(t *testing.T) {
	stub := &stubSched{block: make(chan struct{}), started: make(chan struct{})}
	defer close(stub.block)
	srv := newTestServer(t, stub, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	go func() { _, _, _ = tryPostQuery(ts.URL, QueryRequest{Query: "Q12"}) }()
	<-stub.started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err == nil {
		t.Fatal("drain with stuck request should error")
	}
}
