package server

// Wire types of the HTTP/JSON API. cmd/midasload and external clients
// marshal the same structs, so the contract lives in one place.

import "repro/internal/cluster"

// QueryRequest is the body of POST /v1/queries: which query to run on
// which federation, under what policy.
type QueryRequest struct {
	// Federation names the target tenant; empty selects the sole
	// registered federation (an error when several are hosted).
	Federation string `json:"federation,omitempty"`
	// Query is the TPC-H query name: "Q12", "q13" or plain "14".
	Query string `json:"query"`
	// Weights and Constraints are Algorithm 2's user policy: weighted-
	// sum preferences over (time, money) and optional per-metric upper
	// bounds. Empty weights default to {1, 1}.
	Weights     []float64 `json:"weights,omitempty"`
	Constraints []float64 `json:"constraints,omitempty"`
	// Strategy selects the Pareto-set selection rule: "" or "weighted"
	// (Algorithm 2), "knee", or "lex".
	Strategy string `json:"strategy,omitempty"`
	// LexOrder and LexTolerance configure the "lex" strategy.
	LexOrder     []int   `json:"lex_order,omitempty"`
	LexTolerance float64 `json:"lex_tolerance,omitempty"`
	// TimeoutMS caps this request's wait for its plan sweep; 0 uses the
	// server default. Expiry returns 504. Execution of the chosen plan
	// begins only while the budget is live but, once begun, runs to
	// completion (the measurement is recorded either way).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// PlanJSON describes one chosen QEP.
type PlanJSON struct {
	Query      string `json:"query"`
	JoinAtLeft bool   `json:"join_at_left"`
	NodesLeft  int    `json:"nodes_left"`
	NodesRight int    `json:"nodes_right"`
}

// QueryResponse reports one completed scheduling round.
type QueryResponse struct {
	Federation string   `json:"federation"`
	Query      string   `json:"query"`
	Plan       PlanJSON `json:"plan"`
	// EstimatedTimeS/EstimatedUSD are the Modelling module's predicted
	// costs for the chosen plan; MeasuredTimeS/MeasuredUSD what the
	// execution actually cost.
	EstimatedTimeS float64 `json:"estimated_time_s"`
	EstimatedUSD   float64 `json:"estimated_usd"`
	MeasuredTimeS  float64 `json:"measured_time_s"`
	MeasuredUSD    float64 `json:"measured_usd"`
	// ParetoSize and PlanSpace size the Pareto set and the full QEP
	// lattice the choice was made from; PlansEstimated counts the QEPs
	// the Modelling module actually scored for this round's sweep
	// (equal to PlanSpace under the default "full" prune policy,
	// smaller under "greedy"/"topk").
	ParetoSize     int `json:"pareto_size"`
	PlanSpace      int `json:"plan_space"`
	PlansEstimated int `json:"plans_estimated"`
	// PrunePolicy names the prune policy that shaped this round's sweep.
	PrunePolicy string `json:"prune_policy"`
	// Coalesced reports whether this request shared another request's
	// plan sweep instead of running its own.
	Coalesced bool `json:"coalesced"`
	// LatencyMS is the server-side wall time of the round.
	LatencyMS float64 `json:"latency_ms"`
	// Node and Epoch stamp cluster-mode responses with the serving
	// member and its routing-table epoch, so clients (midasload's
	// per-node breakdown, debugging) can attribute every decision.
	// Absent in standalone mode.
	Node  string `json:"node,omitempty"`
	Epoch uint64 `json:"epoch,omitempty"`
}

// ObservationJSON is one recorded execution.
type ObservationJSON struct {
	X     []float64 `json:"x"`
	Costs []float64 `json:"costs"`
}

// HistoryResponse is the body of GET /v1/history/{query}. Observations
// are most recent first, paged by ?limit= (default 500) and ?offset=
// (entries to skip from the newest end); Len is always the full
// history length, so offset+len(observations) < Len means more pages
// remain (also flagged by Truncated).
type HistoryResponse struct {
	Federation   string            `json:"federation"`
	Query        string            `json:"query"`
	Len          int               `json:"len"`
	Offset       int               `json:"offset"`
	Truncated    bool              `json:"truncated"`
	Metrics      []string          `json:"metrics"`
	Observations []ObservationJSON `json:"observations"`
}

// CheckpointResponse is the body of POST /v1/admin/checkpoint: per
// federation, "ok" or the checkpoint error.
type CheckpointResponse struct {
	Federations map[string]string `json:"federations"`
}

// FederationStats is one tenant's slice of GET /v1/stats.
type FederationStats struct {
	// Counters over the server's lifetime.
	Received  int64 `json:"received"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Rejected  int64 `json:"rejected"`
	Timeouts  int64 `json:"timeouts"`
	// Coalesced counts requests that joined another request's sweep;
	// Sweeps the plan sweeps actually run. Completed - Sweeps requests
	// were served without paying for estimation.
	Coalesced int64 `json:"coalesced"`
	Sweeps    int64 `json:"sweeps"`
	// PlansEstimated totals the QEPs scored by this tenant's Modelling
	// module across all sweeps (after pruning); PlanSpace is the full
	// lattice size of the most recent sweep, so PlanSpace×Sweeps vs
	// PlansEstimated reads the realized pruning ratio. PrunePolicy is
	// the tenant's configured policy ("full", "greedy", "topk").
	PlansEstimated int64  `json:"plans_estimated"`
	PlanSpace      int64  `json:"plan_space"`
	PrunePolicy    string `json:"prune_policy"`
	// HistoryTruncated counts /v1/history responses that dropped
	// observations to the page limit.
	HistoryTruncated int64 `json:"history_truncated"`
	// Checkpoints and CheckpointFailures count durable history
	// compactions (periodic, admin-triggered and drain-time).
	Checkpoints        int64 `json:"checkpoints"`
	CheckpointFailures int64 `json:"checkpoint_failures"`
	// Latency percentiles (ms) over the most recent completions.
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeS     float64                    `json:"uptime_s"`
	Draining    bool                       `json:"draining"`
	Federations map[string]FederationStats `json:"federations"`
	// Cluster is present only in cluster mode.
	Cluster *ClusterStats `json:"cluster,omitempty"`
}

// ClusterStats is the cluster slice of GET /v1/stats.
type ClusterStats struct {
	Node    string   `json:"node"`
	Epoch   uint64   `json:"epoch"`
	Members int      `json:"members"`
	Owned   []string `json:"owned"`
}

// ErrorResponse carries a non-2xx outcome.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ClusterResponse is the body of GET /v1/cluster: the routing table a
// client needs to send each federation's requests straight to its
// owner. Epoch orders tables; a client holding two should trust the
// higher one.
type ClusterResponse struct {
	Node       string                      `json:"node"`
	Epoch      uint64                      `json:"epoch"`
	Members    []cluster.Member            `json:"members"`
	Placements map[string]ClusterPlacement `json:"placements"`
}

// ClusterPlacement locates one federation: its owning member, its
// standby (absent in a single-member cluster) and the *local* tenant
// state on the answering node.
type ClusterPlacement struct {
	Owner   string `json:"owner"`
	Standby string `json:"standby,omitempty"`
	State   string `json:"state"`
}

// RouteUpdate is the body of POST /v1/admin/route (table gossip) and
// its response: an epoch plus the override set that moves federations
// off their ring placement. Higher epoch wins.
type RouteUpdate struct {
	Epoch     uint64            `json:"epoch"`
	Overrides map[string]string `json:"overrides,omitempty"`
}

// ReplicateResponse reports the standby's next expected WAL sequence
// after a replica append or shard import.
type ReplicateResponse struct {
	Next uint64 `json:"next"`
}

// HandoffResponse reports a completed handoff or takeover:
// Observations maps each query to the history length that moved.
type HandoffResponse struct {
	Federation   string         `json:"federation"`
	From         string         `json:"from,omitempty"`
	To           string         `json:"to"`
	Epoch        uint64         `json:"epoch"`
	Observations map[string]int `json:"observations,omitempty"`
	DurationMS   float64        `json:"duration_ms,omitempty"`
}

// ClusterHealthResponse is the body of GET /v1/cluster/health — the
// failure detector's probe target. Replication maps each federation
// *actively served by the answering node* to its outbound replication
// health ("streaming", "arming", "degraded", "off"); a probing standby
// caches it as the eligibility record for auto-promotion after this
// node dies. Peers is the answering node's own detector view (absent
// when auto-failover is off there).
type ClusterHealthResponse struct {
	Node        string                    `json:"node"`
	Epoch       uint64                    `json:"epoch"`
	Replication map[string]string         `json:"replication,omitempty"`
	Peers       map[string]PeerHealthJSON `json:"peers,omitempty"`
}

// PeerHealthJSON is one peer's detector state as reported over HTTP.
type PeerHealthJSON struct {
	Status string  `json:"status"`
	Misses int     `json:"misses,omitempty"`
	RTTMS  float64 `json:"rtt_ms,omitempty"`
}
