package server

import (
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// latencyWindow bounds the per-tenant latency reservoir; percentiles
// are computed over the most recent observations, which is what a
// serving dashboard wants anyway.
const latencyWindow = 1 << 14

// tenantStats aggregates one federation's serving counters and latency
// distribution. All methods are safe for concurrent use.
type tenantStats struct {
	received      atomic.Int64
	completed     atomic.Int64
	failed        atomic.Int64
	rejected      atomic.Int64
	timeouts      atomic.Int64
	coalesced     atomic.Int64
	sweeps        atomic.Int64
	histTruncated atomic.Int64
	checkpoints   atomic.Int64
	checkpointErr atomic.Int64
	// plansEstimated totals QEPs scored (after pruning); planSpace holds
	// the most recent sweep's full lattice size. Both are fed from the
	// decision on the serving hot path, so they are plain atomics.
	plansEstimated atomic.Int64
	planSpace      atomic.Int64
	// prunePolicy is the tenant's configured prune policy name, set once
	// at assembly before serving starts (newTenantStats defaults it to
	// "full", matching the scheduler default).
	prunePolicy string

	mu   sync.Mutex
	ring []float64 // most recent completion latencies, ms
	next int
	n    int // filled entries, ≤ len(ring)
}

func newTenantStats() *tenantStats {
	return &tenantStats{ring: make([]float64, latencyWindow), prunePolicy: "full"}
}

// register publishes the counters as scrape-time collectors reading
// the very atomics /v1/stats reports — one source of truth, two
// renderings.
func (t *tenantStats) register(reg *metrics.Registry, federation string) {
	counter := func(name, help string, v *atomic.Int64) {
		reg.CounterFunc(name, help,
			func() float64 { return float64(v.Load()) },
			"federation", federation)
	}
	counter("midas_requests_received_total",
		"Query submissions that passed request validation.", &t.received)
	counter("midas_requests_completed_total",
		"Scheduling rounds that returned a decision.", &t.completed)
	counter("midas_requests_failed_total",
		"Submissions that failed server-side (HTTP 500).", &t.failed)
	counter("midas_requests_rejected_total",
		"Submissions shed at the admission queue (HTTP 429).", &t.rejected)
	counter("midas_request_timeouts_total",
		"Submissions that exceeded their budget or were abandoned (HTTP 504).", &t.timeouts)
	counter("midas_requests_coalesced_total",
		"Completed requests that joined another request's plan sweep.", &t.coalesced)
	counter("midas_sweeps_started_total",
		"Plan sweeps actually run; completed - coalesced requests led one.", &t.sweeps)
	counter("midas_history_responses_truncated_total",
		"GET /v1/history responses that dropped observations to the page limit.", &t.histTruncated)
	counter("midas_checkpoints_total",
		"Tenant history checkpoints (periodic, admin and drain-time).", &t.checkpoints)
	counter("midas_checkpoint_failures_total",
		"Tenant history checkpoints that failed.", &t.checkpointErr)
	reg.GaugeFunc("midas_sweep_coalescing_ratio",
		"Fraction of completed requests served from a shared plan sweep.",
		func() float64 {
			completed := t.completed.Load()
			if completed == 0 {
				return 0
			}
			return float64(t.coalesced.Load()) / float64(completed)
		},
		"federation", federation)
}

// observe records one completion latency in milliseconds.
func (t *tenantStats) observe(ms float64) {
	t.mu.Lock()
	t.ring[t.next] = ms
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
}

// latencyQuantiles renders p50/p90/p99 of a sample; an empty sample
// reports zeros rather than an error.
func latencyQuantiles(sample []float64) (p50, p90, p99 float64) {
	qs, err := stats.Quantiles(sample, 0.50, 0.90, 0.99)
	if err != nil {
		return 0, 0, 0
	}
	return qs[0], qs[1], qs[2]
}

// snapshot renders the stats for /v1/stats.
func (t *tenantStats) snapshot() FederationStats {
	t.mu.Lock()
	sample := make([]float64, t.n)
	copy(sample, t.ring[:t.n])
	t.mu.Unlock()
	p50, p90, p99 := latencyQuantiles(sample)
	return FederationStats{
		Received:           t.received.Load(),
		Completed:          t.completed.Load(),
		Failed:             t.failed.Load(),
		Rejected:           t.rejected.Load(),
		Timeouts:           t.timeouts.Load(),
		Coalesced:          t.coalesced.Load(),
		Sweeps:             t.sweeps.Load(),
		PlansEstimated:     t.plansEstimated.Load(),
		PlanSpace:          t.planSpace.Load(),
		PrunePolicy:        t.prunePolicy,
		HistoryTruncated:   t.histTruncated.Load(),
		Checkpoints:        t.checkpoints.Load(),
		CheckpointFailures: t.checkpointErr.Load(),
		P50MS:              p50,
		P90MS:              p90,
		P99MS:              p99,
	}
}
