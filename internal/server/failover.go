package server

// Auto-failover: the failure detector probes every peer's
// /v1/cluster/health, and a confirmed death (DownAfter consecutive
// misses) promotes this node's standby federations through the same
// activation path an operator takeover uses — gated by an epoch fence
// so two nodes observing the same death cannot silently both commit,
// and by the dead owner's last replication-health report so a standby
// never promotes from a replica the owner knew was stale. The
// rebalancer rides the same detector: when membership settles after a
// change, federations drift back to their ring-computed owners one
// live handoff at a time.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/cluster"
)

// initDetector builds the failure detector over this node's peers. The
// probe doubles as the replication-health exchange: each successful
// probe caches the peer's per-federation report, which is what decides
// auto-promotion eligibility after that peer dies.
func (s *Server) initDetector() {
	cs := s.cluster
	peers := make([]cluster.Member, 0, len(cs.cfg.Peers))
	for _, m := range cs.cfg.Peers {
		if m.ID != cs.self.ID {
			peers = append(peers, m)
		}
	}
	d := cluster.NewDetector(cluster.DetectorConfig{
		ProbeInterval: cs.cfg.ProbeInterval,
		ProbeTimeout:  cs.cfg.ProbeTimeout,
		SuspectAfter:  cs.cfg.SuspectAfter,
		DownAfter:     cs.cfg.DownAfter,
	}, peers, s.probePeer)
	d.OnProbe = func(peer cluster.Member, rtt time.Duration, err error) {
		if cs.probeSeconds != nil {
			cs.probeSeconds.With(peer.ID).Observe(rtt.Seconds())
		}
	}
	d.OnTransition = func(peer cluster.Member, from, to cluster.PeerStatus) {
		s.log.Warn("peer status changed", "peer", peer.ID,
			"from", from.String(), "to", to.String())
		if to == cluster.PeerDown {
			go s.autoFailover(peer)
		}
		// Any transition can change what the rebalancer should do:
		// up→suspect pauses it, down→up means a returned owner wants its
		// federations back, suspect→down unblocks a paused pass.
		s.kickRebalance()
	}
	cs.detector = d
}

// probePeer is one failure-detector probe: GET the peer's cluster
// health, and on success cache its replication report.
func (s *Server) probePeer(ctx context.Context, peer cluster.Member) error {
	cs := s.cluster
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer.Addr+"/v1/cluster/health", nil)
	if err != nil {
		return err
	}
	resp, err := cs.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", peer.Addr, resp.Status)
	}
	var health ClusterHealthResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(&health); err != nil {
		return err
	}
	cs.peerMu.Lock()
	cs.peerRepl[peer.ID] = health.Replication
	cs.peerMu.Unlock()
	return nil
}

// replHealth classifies one federation's outbound replication on this
// node: "off" when replication is not configured, "degraded" when any
// shard's stream fell back to local-only durability, "arming" while any
// shard awaits its initial (or re-arm) full sync, else "streaming".
func (cs *clusterState) replHealth(t *tenant) string {
	rep := cs.repl[t.name]
	if rep == nil || t.store == nil || !cs.replicating() {
		return "off"
	}
	health := "streaming"
	for _, q := range sortedQueries(t) {
		shard := q.String()
		if rep.Degraded(shard) {
			return "degraded"
		}
		if !rep.Streaming(shard) {
			health = "arming"
		}
	}
	return health
}

// handleClusterHealth (GET /v1/cluster/health) is the failure
// detector's probe target and the operator's per-node health view: the
// node's routing epoch, each actively served federation's replication
// health, and (when the detector runs here) this node's judgment of its
// peers.
func (s *Server) handleClusterHealth(w http.ResponseWriter, r *http.Request) {
	cs := s.cluster
	resp := ClusterHealthResponse{
		Node:        cs.self.ID,
		Epoch:       cs.table.Load().Epoch(),
		Replication: make(map[string]string),
	}
	for name, t := range s.tenants {
		if t.state.Load() == tenantActive {
			resp.Replication[name] = cs.replHealth(t)
		}
	}
	if cs.detector != nil {
		resp.Peers = make(map[string]PeerHealthJSON)
		for id, h := range cs.detector.Snapshot() {
			resp.Peers[id] = PeerHealthJSON{
				Status: h.Status.String(),
				Misses: h.Misses,
				RTTMS:  float64(h.RTT) / float64(time.Millisecond),
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// autoFailover promotes this node's standby federations after the
// detector confirmed their owner dead. Runs in its own goroutine per
// death; each federation is fenced and promoted independently.
func (s *Server) autoFailover(dead cluster.Member) {
	cs := s.cluster
	for _, name := range sortedTenantNames(s.tenants) {
		t := s.tenants[name]
		tab := cs.table.Load()
		if tab.Owner(name).ID != dead.ID {
			continue
		}
		standby, ok := tab.Standby(name)
		if !ok || standby.ID != cs.self.ID {
			continue
		}
		s.promoteStandby(t, dead)
	}
}

// promoteStandby runs one fenced auto-promotion. The fence is the
// routing epoch observed before activation: if the table moved while
// shipped state was being opened — another node promoted first and its
// gossip arrived, or the owner turned out alive and moved the tenant —
// the promotion aborts and releases what it opened, rather than
// committing a second owner on top of a table it no longer understands.
// Two nodes fencing on the SAME observed epoch can still both commit
// (neither sees the other's move until gossip); they mint equal epochs,
// and the commutative equal-epoch merge in adoptTable settles on one
// owner while demoteStaleOwner stands the loser down — the documented
// settle path, reached only through a window the fence already made
// narrow.
func (s *Server) promoteStandby(t *tenant, dead cluster.Member) bool {
	cs := s.cluster
	// Eligibility: when replication is on, promote only from a replica
	// the dead owner last reported streaming. A degraded (or never
	// reported) stream means this standby's copy may be missing acked
	// writes; promoting would serve a silently truncated history, which
	// is worse than staying down until an operator decides.
	if cs.replicating() {
		cs.peerMu.Lock()
		health := cs.peerRepl[dead.ID][t.name]
		cs.peerMu.Unlock()
		if health != "streaming" {
			cs.autoBlocked.Inc()
			s.log.Warn("auto-promotion blocked",
				"federation", t.name, "owner", dead.ID,
				"replication", health,
				"hint", "operator can still POST /v1/admin/takeover")
			return false
		}
	}
	fence := cs.table.Load().Epoch()
	if !t.beginReceiving() {
		return false // an operator takeover or inbound handoff got here first
	}
	t.activateMu.Lock()
	defer t.activateMu.Unlock()
	if err := s.activateTenant(t); err != nil {
		t.finishReceiving(tenantRemote)
		s.log.Warn("auto-promotion failed", "federation", t.name, "error", err.Error())
		return false
	}
	// Re-check the fence after activation: opening shipped state takes
	// real time, and the table may have moved underneath it.
	tab := cs.table.Load()
	if tab.Epoch() != fence || tab.Owner(t.name).ID != dead.ID {
		s.releaseTenantState(t)
		t.finishReceiving(tenantRemote)
		s.log.Warn("auto-promotion fenced off", "federation", t.name,
			"fence", fence, "epoch", tab.Epoch(), "owner", tab.Owner(t.name).ID)
		return false
	}
	epoch := cs.applyOverride(t.name, cs.self.ID, fence+1)
	t.finishReceiving(tenantActive)
	cs.takeovers.Inc()
	cs.autoTakeovers.Inc()
	cs.gossip()
	s.log.Warn("auto-promoted federation after owner death",
		"federation", t.name, "owner", dead.ID, "epoch", epoch)
	return true
}

// kickRebalance wakes the rebalance loop; a kick while one is queued
// coalesces (the loop recomputes the full plan every pass anyway).
func (s *Server) kickRebalance() {
	select {
	case s.cluster.rebalanceKick <- struct{}{}:
	default:
	}
}

// rebalanceLoop is the single-flighted rebalancer: each kick (a
// detector transition) triggers at most one pass, and a pass moves one
// tenant at a time. Only the current table owner of a federation offers
// it back, so at most ~2/N of the key space — the consistent-hash
// movement bound for one membership change — is ever in flight.
func (s *Server) rebalanceLoop() {
	cs := s.cluster
	defer close(cs.rebalanceDone)
	for {
		select {
		case <-s.lifeCtx.Done():
			return
		case <-cs.rebalanceKick:
		}
		if !cs.cfg.AutoRebalance {
			continue
		}
		if !s.awaitNoSuspects() {
			return
		}
		s.rebalanceOnce()
	}
}

// awaitNoSuspects blocks while any peer is suspect — an unsettled
// member set means the ring's verdict may be about to change, and
// moving tenants under it risks moving them twice (or into a grave).
// Returns false when the server shut down while waiting.
func (s *Server) awaitNoSuspects() bool {
	cs := s.cluster
	for cs.detector.AnySuspect() {
		select {
		case <-s.lifeCtx.Done():
			return false
		case <-time.After(cs.cfg.ProbeInterval):
		}
	}
	return true
}

// rebalanceOnce hands every federation this node serves away from its
// ring-computed placement back to its (live) ring owner, one at a time
// with per-tenant retry and backoff. Failures leave the tenant where it
// is — serving here is correct, just unbalanced — for the next kick.
func (s *Server) rebalanceOnce() {
	cs := s.cluster
	cs.rebalancing.Store(true)
	defer cs.rebalancing.Store(false)
	for _, name := range sortedTenantNames(s.tenants) {
		t := s.tenants[name]
		tab := cs.table.Load()
		ringOwner := tab.Ring().Owner(name)
		if ringOwner.ID == cs.self.ID || tab.Owner(name).ID != cs.self.ID {
			continue
		}
		if t.state.Load() != tenantActive {
			continue
		}
		if cs.detector.Status(ringOwner.ID) != cluster.PeerUp {
			continue
		}
		for attempt := 0; attempt < 3; attempt++ {
			if attempt > 0 {
				select {
				case <-s.lifeCtx.Done():
					return
				case <-time.After(cs.cfg.ProbeInterval << attempt):
				}
			}
			ctx, cancel := context.WithTimeout(s.lifeCtx, cs.cfg.PeerTimeout)
			_, _, err := s.handoffTenant(ctx, t, ringOwner)
			cancel()
			if err == nil {
				cs.rebalances.Inc()
				s.log.Info("rebalanced federation to ring owner",
					"federation", name, "target", ringOwner.ID)
				break
			}
			s.log.Warn("rebalance handoff failed", "federation", name,
				"target", ringOwner.ID, "attempt", attempt+1, "error", err.Error())
			if s.lifeCtx.Err() != nil || t.state.Load() != tenantActive {
				break
			}
		}
	}
}

// sortedTenantNames fixes iteration order wherever tenants are walked
// for side effects, so promotions and rebalances happen in a
// deterministic sequence.
func sortedTenantNames(tenants map[string]*tenant) []string {
	names := make([]string, 0, len(tenants))
	for name := range tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
