package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/tpch"
)

// TestServeSubmitPooledConcurrent drives the embedded hot path from
// many goroutines (run with -race): every request decodes through a
// pooled scratch, so a response leaking another request's decoded
// fields or buffered body would show up as a wrong query/weights echo.
func TestServeSubmitPooledConcurrent(t *testing.T) {
	srv := newTestServer(t, &stubSched{}, Config{})
	const workers, perWorker = 8, 200
	queries := []string{"Q12", "Q13", "Q14", "Q17"}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var resp bytes.Buffer
			for i := 0; i < perWorker; i++ {
				q := queries[(w+i)%len(queries)]
				// Distinct weights per request so cross-request scratch
				// contamination cannot produce an accidentally valid body.
				body := fmt.Sprintf(`{"query": %q, "weights": [%d, %d]}`, q, w+1, i+1)
				resp.Reset()
				if status := srv.ServeSubmit(context.Background(), []byte(body), &resp); status != http.StatusOK {
					t.Errorf("worker %d request %d: status %d: %s", w, i, status, resp.String())
					return
				}
				var qr QueryResponse
				if err := json.Unmarshal(resp.Bytes(), &qr); err != nil {
					t.Errorf("worker %d request %d: bad response: %v", w, i, err)
					return
				}
				if qr.Query != q {
					t.Errorf("worker %d request %d: response query %q, want %q", w, i, qr.Query, q)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestServeSubmitDecoderIsolation: a malformed body must fail its own
// request only. The pooled decoder buffers input across requests, so a
// poisoned buffer (trailing garbage, truncated JSON) would otherwise
// corrupt the next request that borrows the same scratch.
func TestServeSubmitDecoderIsolation(t *testing.T) {
	srv := newTestServer(t, &stubSched{}, Config{})
	var resp bytes.Buffer
	good := []byte(`{"query": "Q12", "weights": [1, 1]}`)
	for i, bad := range [][]byte{
		[]byte(`{"query": "Q12"} trailing garbage`),
		[]byte(`{"query": "Q12", "weights": [1, 1]`), // truncated
		[]byte(`not json at all`),
		[]byte(``),
		[]byte(`{"query": "Q12"}{"query": "Q13"}`), // second value
	} {
		resp.Reset()
		if status := srv.ServeSubmit(context.Background(), bad, &resp); status != http.StatusBadRequest {
			t.Fatalf("bad body %d: status %d, want 400 (%s)", i, status, resp.String())
		}
		// The very next request through the (sole, hence same) pooled
		// scratch must decode cleanly.
		resp.Reset()
		if status := srv.ServeSubmit(context.Background(), good, &resp); status != http.StatusOK {
			t.Fatalf("good request after bad body %d: status %d: %s", i, status, resp.String())
		}
	}
	// Trailing whitespace is not garbage.
	resp.Reset()
	if status := srv.ServeSubmit(context.Background(), append(append([]byte(nil), good...), " \n\t "...), &resp); status != http.StatusOK {
		t.Fatalf("trailing whitespace rejected: %d: %s", status, resp.String())
	}
}

// TestAdmissionPerTenant: the admission queue is sharded per
// federation, so a hot tenant saturating its own queue must shed its
// own load (429) while the other tenant keeps serving (200).
func TestAdmissionPerTenant(t *testing.T) {
	hot := &stubSched{block: make(chan struct{}), started: make(chan struct{})}
	cold := &stubSched{}
	srv, err := NewWithSchedulers(Config{QueueDepth: 1},
		map[string]QueryScheduler{"hot": hot, "cold": cold}, tpch.AllQueries)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy hot's only admission slot with a request whose sweep
	// blocks until we release it.
	doneHot := make(chan struct{})
	go func() {
		defer close(doneHot)
		resp, body, err := tryPostQuery(ts.URL, QueryRequest{Federation: "hot", Query: "Q12", Weights: []float64{1, 1}})
		if err != nil {
			t.Error(err)
			return
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("blocked hot request finished %d: %s", resp.StatusCode, body)
		}
	}()
	<-hot.started

	// Hot's queue is full: its next submission is shed...
	resp, body := postQuery(t, ts.URL, QueryRequest{Federation: "hot", Query: "Q12", Weights: []float64{1, 1}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("hot overflow = %d, want 429: %s", resp.StatusCode, body)
	}
	// ...while cold — same server, same moment — still serves.
	resp, body = postQuery(t, ts.URL, QueryRequest{Federation: "cold", Query: "Q12", Weights: []float64{1, 1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold tenant = %d, want 200 while hot is saturated: %s", resp.StatusCode, body)
	}

	close(hot.block)
	<-doneHot
	// With the slot released, hot serves again.
	resp, body = postQuery(t, ts.URL, QueryRequest{Federation: "hot", Query: "Q12", Weights: []float64{1, 1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hot after release = %d: %s", resp.StatusCode, body)
	}
}
