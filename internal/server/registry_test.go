package server

import (
	"strings"
	"testing"
)

func TestLoadSpecsWrappedAndBare(t *testing.T) {
	wrapped := `{"federations": [{"name": "a", "sf": 0.2}, {"name": "b", "topology": "threecloud"}]}`
	specs, err := LoadSpecs(strings.NewReader(wrapped))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Name != "a" || specs[0].SF != 0.2 || specs[1].Topology != "threecloud" {
		t.Fatalf("wrapped parse: %+v", specs)
	}

	bare := `[{"name": "solo", "queries": ["Q12", "Q14"]}]`
	specs, err = LoadSpecs(strings.NewReader(bare))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || len(specs[0].Queries) != 2 {
		t.Fatalf("bare parse: %+v", specs)
	}

	if _, err := LoadSpecs(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage config should error")
	}
}

func TestSpecDefaults(t *testing.T) {
	sp := (&FederationSpec{Name: "x"}).withDefaults()
	if sp.Topology != "default" || sp.SF != 0.1 || sp.CalibSF != 0.004 || sp.Bootstrap != 20 {
		t.Fatalf("defaults: %+v", sp)
	}
	qs, err := sp.queries()
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 4 {
		t.Fatalf("default queries: %v", qs)
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := buildTenant(FederationSpec{}, StoreConfig{}, nil, false, nil); err == nil {
		t.Fatal("nameless spec should error")
	}
	if _, err := buildTenant(FederationSpec{Name: "x", Topology: "mars"}, StoreConfig{}, nil, false, nil); err == nil {
		t.Fatal("unknown topology should error")
	}
	if _, err := buildTenant(FederationSpec{Name: "x", Queries: []string{"Q1"}}, StoreConfig{}, nil, false, nil); err == nil {
		t.Fatal("unstudied query should error")
	}
	if _, err := buildTenant(FederationSpec{Name: "x", PrunePolicy: "mars"}, StoreConfig{}, nil, false, nil); err == nil {
		t.Fatal("unknown prune policy should error")
	}
	if _, err := buildTenant(FederationSpec{Name: "x", PruneBudget: 100}, StoreConfig{}, nil, false, nil); err == nil {
		t.Fatal("prune budget without a pruning policy should error")
	}
	if _, err := buildTenant(FederationSpec{Name: "x", PrunePolicy: "greedy", PruneBudget: -1}, StoreConfig{}, nil, false, nil); err == nil {
		t.Fatal("negative prune budget should error")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config should error")
	}
	// Duplicate names must surface as an error before any tenant (and
	// its per-federation metric series) is built — not as a duplicate-
	// collector panic from the second twin's registration.
	if _, err := New(Config{Federations: []FederationSpec{{Name: "twin"}, {Name: "twin"}}}); err == nil ||
		!strings.Contains(err.Error(), "duplicate federation") {
		t.Fatalf("duplicate names: got %v, want duplicate-federation error", err)
	}
	if _, err := NewWithSchedulers(Config{}, nil, nil); err == nil {
		t.Fatal("no schedulers should error")
	}
}
