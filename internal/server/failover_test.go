package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/tpch"
)

// autoFailoverKnobs turns the detector on with probe settings fast
// enough for tests but a DownAfter tolerant of build-time probe misses:
// a node's handler is installed shortly after its peer's detector
// starts, and those construction-window 503s must not add up to a false
// death (which would auto-promote the wrong node before the test even
// begins).
func autoFailoverKnobs(cc *ClusterConfig) {
	cc.AutoFailover = true
	cc.ProbeInterval = 5 * time.Millisecond
	cc.SuspectAfter = 5
	cc.DownAfter = 100 // ~500ms of solid failure before a death verdict
}

// waitPeerUp blocks until srv's detector judges peer up.
func waitPeerUp(t *testing.T, srv *Server, peer string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for srv.cluster.detector.Status(peer) != cluster.PeerUp {
		if time.Now().After(deadline) {
			t.Fatalf("detector never saw %s up (currently %v)", peer, srv.cluster.detector.Status(peer))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAutoFailoverPromotesStandby kills a stub cluster's owner and
// asserts the standby promotes itself — no takeover POST anywhere —
// under a bumped epoch, counted as an automatic takeover.
func TestAutoFailoverPromotesStandby(t *testing.T) {
	tc := newTestClusterCfg(t, 2, []string{"alpha"}, func(i int, cfg *Config) {
		autoFailoverKnobs(cfg.Cluster)
	})
	owner := tc.ownerIdx(t, "alpha")
	survivor := 1 - owner
	waitPeerUp(t, tc.servers[survivor], tc.members[owner].ID)
	epochBefore := tc.servers[survivor].cluster.table.Load().Epoch()

	// SIGKILL: the owner's listener dies; its process state is irrelevant
	// from the survivor's point of view.
	tc.https[owner].Close()

	deadline := time.Now().Add(15 * time.Second)
	for tc.servers[survivor].tenants["alpha"].state.Load() != tenantActive {
		if time.Now().After(deadline) {
			t.Fatalf("standby never auto-promoted (state %s, peer %v)",
				tenantStateName(tc.servers[survivor].tenants["alpha"].state.Load()),
				tc.servers[survivor].cluster.detector.Status(tc.members[owner].ID))
		}
		time.Sleep(5 * time.Millisecond)
	}
	tab := tc.servers[survivor].cluster.table.Load()
	if tab.Owner("alpha").ID != tc.members[survivor].ID {
		t.Fatalf("promoted table places alpha on %q", tab.Owner("alpha").ID)
	}
	if tab.Epoch() <= epochBefore {
		t.Fatalf("promotion did not bump the epoch: %d -> %d", epochBefore, tab.Epoch())
	}

	// The survivor serves the federation directly.
	resp, body := postQueryNoRedirect(t, tc.https[survivor].URL,
		QueryRequest{Federation: "alpha", Query: "Q12", Weights: []float64{1, 1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promoted node returned %d: %s", resp.StatusCode, body)
	}
	if err := tc.servers[survivor].Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestAutoRebalanceReturnsTenantToRingOwner moves a federation off its
// ring owner by operator handoff, then kicks the rebalancer on the new
// (non-ring) owner and asserts it hands the federation back to the live
// ring owner on its own — no second operator action.
func TestAutoRebalanceReturnsTenantToRingOwner(t *testing.T) {
	tc := newTestClusterCfg(t, 2, []string{"alpha"}, func(i int, cfg *Config) {
		autoFailoverKnobs(cfg.Cluster)
		cfg.Cluster.AutoRebalance = true
	})
	ringOwner := tc.ownerIdx(t, "alpha")
	other := 1 - ringOwner

	resp, err := http.Post(tc.https[ringOwner].URL+"/v1/admin/handoff?federation=alpha&target="+tc.members[other].ID, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("handoff = %d", resp.StatusCode)
	}
	if tc.ownerIdx(t, "alpha") != other {
		t.Fatal("handoff did not move alpha")
	}

	// Both peers are up and alpha sits off its ring placement: one kick
	// (in production, any detector transition) must drift it home.
	waitPeerUp(t, tc.servers[other], tc.members[ringOwner].ID)
	tc.servers[other].kickRebalance()

	deadline := time.Now().Add(15 * time.Second)
	for tc.servers[ringOwner].tenants["alpha"].state.Load() != tenantActive {
		if time.Now().After(deadline) {
			t.Fatalf("rebalancer never returned alpha to the ring owner (state there: %s)",
				tenantStateName(tc.servers[ringOwner].tenants["alpha"].state.Load()))
		}
		time.Sleep(5 * time.Millisecond)
	}
	tab := tc.servers[ringOwner].cluster.table.Load()
	if got := tab.Owner("alpha").ID; got != tc.members[ringOwner].ID {
		t.Fatalf("table places alpha on %q after rebalance", got)
	}
	if got := tc.servers[other].cluster.rebalances.Value(); got != 1 {
		t.Fatalf("rebalances counter = %v, want 1", got)
	}
	for i := range tc.servers {
		if err := tc.servers[i].Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDurableRoutingSurvivesRestart moves a federation off its ring
// owner, restarts that former owner alone (its only peer address now
// points at a dead port, so no gossip can reach it), and asserts the
// restarted node serves the *persisted* table: correct 307s at the
// moved federation and the committed epoch, before any gossip.
func TestDurableRoutingSurvivesRestart(t *testing.T) {
	dirs := []string{t.TempDir(), t.TempDir()}
	tc := newTestClusterCfg(t, 2, []string{"alpha"}, func(i int, cfg *Config) {
		cfg.Store.Dir = dirs[i]
	})
	owner := tc.ownerIdx(t, "alpha")
	target := 1 - owner

	// Move alpha off its ring owner; the override is the state that must
	// survive the owner's restart.
	resp, err := http.Post(tc.https[owner].URL+"/v1/admin/handoff?federation=alpha&target="+tc.members[target].ID, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var hr HandoffResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hr.Epoch != 2 {
		t.Fatalf("handoff = %d (%+v)", resp.StatusCode, hr)
	}

	// Restart the former owner from its store dir, with the target's
	// address replaced by a dead port: the recovered table is all it has.
	if err := tc.servers[owner].Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	deadPeers := append([]cluster.Member(nil), tc.members...)
	deadPeers[target].Addr = "http://127.0.0.1:1"
	reborn, err := NewWithSchedulers(Config{
		Store: StoreConfig{Dir: dirs[owner]},
		Cluster: &ClusterConfig{
			NodeID:       tc.members[owner].ID,
			Peers:        deadPeers,
			PeerTimeout:  250 * time.Millisecond,
			SyncInterval: 50 * time.Millisecond,
		},
	}, map[string]QueryScheduler{"alpha": &stubSched{}}, tpch.AllQueries)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reborn.Handler())
	defer ts.Close()

	// Before any gossip: the tenant is remote, the table is the
	// committed one, and requests 307 at the real owner.
	if st := reborn.tenants["alpha"].state.Load(); st != tenantRemote {
		t.Fatalf("restarted former owner boots alpha %s, want remote", tenantStateName(st))
	}
	tab := reborn.cluster.table.Load()
	if tab.Epoch() != 2 || tab.Owner("alpha").ID != tc.members[target].ID {
		t.Fatalf("recovered table epoch=%d owner=%q, want 2/%q",
			tab.Epoch(), tab.Owner("alpha").ID, tc.members[target].ID)
	}
	qresp, _ := postQueryNoRedirect(t, ts.URL,
		QueryRequest{Federation: "alpha", Query: "Q12", Weights: []float64{1, 1}})
	if qresp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("restarted former owner returned %d, want 307 from the persisted table", qresp.StatusCode)
	}
	if loc := qresp.Header.Get("Location"); loc != deadPeers[target].Addr+"/v1/queries" {
		t.Fatalf("redirect Location %q, want the persisted owner", loc)
	}
	if err := reborn.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := tc.servers[target].Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestClusterHealthEndpoint checks the probe target's shape: node,
// epoch, per-active-federation replication health, and (with the
// detector on) a peers section.
func TestClusterHealthEndpoint(t *testing.T) {
	tc := newTestClusterCfg(t, 2, []string{"alpha"}, func(i int, cfg *Config) {
		autoFailoverKnobs(cfg.Cluster)
	})
	owner := tc.ownerIdx(t, "alpha")
	resp, err := http.Get(tc.https[owner].URL + "/v1/cluster/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health = %d", resp.StatusCode)
	}
	var ch ClusterHealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&ch); err != nil {
		t.Fatal(err)
	}
	if ch.Node != tc.members[owner].ID || ch.Epoch != 1 {
		t.Fatalf("health stamp node=%q epoch=%d", ch.Node, ch.Epoch)
	}
	// Replication is off in the stub cluster, so the active federation
	// reports "off" — present, because the node serves it.
	if got := ch.Replication["alpha"]; got != "off" {
		t.Fatalf("replication health %q, want off (replication disabled)", got)
	}
	if _, ok := ch.Peers[tc.members[1-owner].ID]; !ok {
		t.Fatalf("peers section missing %s: %+v", tc.members[1-owner].ID, ch.Peers)
	}
}
