package federation

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/tpch"
)

// Executor runs a plan and reports its measured cost.
type Executor interface {
	// Execute runs plan p and returns the outcome.
	Execute(p Plan) (*Outcome, error)
	// Features returns the estimation feature vector for p (the input
	// data sizes are the executor's, so they ride along here).
	Features(p Plan) ([]float64, error)
}

// ---------------------------------------------------------------------------
// FullExecutor

// FullExecutor executes the relational plans for real over a generated
// database, returning both the answer and the simulated cost. Use it at
// small scale factors where materializing the data is cheap.
type FullExecutor struct {
	Fed *Federation
	DB  *tpch.Database

	// relations caches ToRelation conversions.
	relations map[string]*engine.Relation
}

// NewFullExecutor builds a FullExecutor.
func NewFullExecutor(fed *Federation, db *tpch.Database) *FullExecutor {
	return &FullExecutor{Fed: fed, DB: db, relations: make(map[string]*engine.Relation)}
}

func (e *FullExecutor) relation(table string) (*engine.Relation, error) {
	if rel, ok := e.relations[table]; ok {
		return rel, nil
	}
	rel, err := engine.ToRelation(e.DB, table)
	if err != nil {
		return nil, err
	}
	e.relations[table] = rel
	return rel, nil
}

// run executes the three plan pieces and returns both the result and
// the raw statistics.
func (e *FullExecutor) run(q tpch.QueryID) (*engine.Relation, pieces, error) {
	qp, err := engine.BuildPlan(q)
	if err != nil {
		return nil, pieces{}, err
	}
	leftBase, err := e.relation(qp.LeftTable)
	if err != nil {
		return nil, pieces{}, err
	}
	rightBase, err := e.relation(qp.RightTable)
	if err != nil {
		return nil, pieces{}, err
	}
	leftRel, leftStats, err := engine.Run(qp.LeftPrep, map[string]*engine.Relation{qp.LeftTable: leftBase})
	if err != nil {
		return nil, pieces{}, fmt.Errorf("federation: %v left prep: %w", q, err)
	}
	rightRel, rightStats, err := engine.Run(qp.RightPrep, map[string]*engine.Relation{qp.RightTable: rightBase})
	if err != nil {
		return nil, pieces{}, fmt.Errorf("federation: %v right prep: %w", q, err)
	}
	result, finalStats, err := engine.Run(qp.Final, map[string]*engine.Relation{"left": leftRel, "right": rightRel})
	if err != nil {
		return nil, pieces{}, fmt.Errorf("federation: %v final: %w", q, err)
	}
	return result, pieces{
		leftStats:      leftStats,
		rightStats:     rightStats,
		finalStats:     finalStats,
		leftPrepBytes:  leftRel.ApproxBytes(),
		rightPrepBytes: rightRel.ApproxBytes(),
	}, nil
}

// Execute implements Executor.
func (e *FullExecutor) Execute(p Plan) (*Outcome, error) {
	result, pc, err := e.run(p.Query)
	if err != nil {
		return nil, err
	}
	out, err := e.Fed.cost(p.Query, p, pc)
	if err != nil {
		return nil, err
	}
	out.Result = result
	return out, nil
}

// Features implements Executor.
func (e *FullExecutor) Features(p Plan) ([]float64, error) {
	leftTable, rightTable := p.Query.Tables()
	lb, err := e.DB.TableBytes(leftTable)
	if err != nil {
		return nil, err
	}
	rb, err := e.DB.TableBytes(rightTable)
	if err != nil {
		return nil, err
	}
	return Features(p, lb, rb), nil
}

// ---------------------------------------------------------------------------
// ScaledExecutor

// Calibration holds the per-query operator statistics measured by one
// full execution at a known scale factor.
type Calibration struct {
	SF      float64
	PerSF   map[tpch.QueryID]pieces // statistics normalized per unit SF
	tblByte map[string]float64      // table bytes per unit SF
}

// Calibrate runs every studied query once over a calibration database
// and normalizes the measured statistics per unit of scale factor.
func Calibrate(fed *Federation, calibSF float64, seed int64) (*Calibration, error) {
	db, err := tpch.Generate(calibSF, tpch.GenOptions{Seed: seed})
	if err != nil {
		return nil, err
	}
	full := NewFullExecutor(fed, db)
	cal := &Calibration{
		SF:      calibSF,
		PerSF:   make(map[tpch.QueryID]pieces, len(tpch.AllQueries)),
		tblByte: make(map[string]float64),
	}
	for _, q := range tpch.AllQueries {
		_, pc, err := full.run(q)
		if err != nil {
			return nil, err
		}
		cal.PerSF[q] = scalePieces(pc, 1/calibSF)
	}
	for _, table := range []string{"lineitem", "orders", "customer", "part"} {
		b, err := db.TableBytes(table)
		if err != nil {
			return nil, err
		}
		cal.tblByte[table] = b / calibSF
	}
	return cal, nil
}

// scalePieces multiplies all row/byte statistics by ratio; stage counts
// are structural and stay fixed.
func scalePieces(pc pieces, ratio float64) pieces {
	return pieces{
		leftStats:      scaleStats(pc.leftStats, ratio),
		rightStats:     scaleStats(pc.rightStats, ratio),
		finalStats:     scaleStats(pc.finalStats, ratio),
		leftPrepBytes:  pc.leftPrepBytes * ratio,
		rightPrepBytes: pc.rightPrepBytes * ratio,
	}
}

func scaleStats(s engine.Stats, ratio float64) engine.Stats {
	return engine.Stats{
		RowsScanned:   int(math.Round(float64(s.RowsScanned) * ratio)),
		RowsProcessed: int(math.Round(float64(s.RowsProcessed) * ratio)),
		RowsOutput:    int(math.Round(float64(s.RowsOutput) * ratio)),
		ShuffleBytes:  s.ShuffleBytes * ratio,
		Stages:        s.Stages,
	}
}

// ScaledExecutor replays calibrated statistics at an arbitrary scale
// factor. It cannot return query answers (Result stays nil) but its
// cost structure matches FullExecutor by construction, which the tests
// verify.
type ScaledExecutor struct {
	Fed *Federation
	Cal *Calibration
	// SF is the simulated data scale (0.1 ≈ the paper's 100 MiB
	// dataset, 1 ≈ 1 GiB).
	SF float64
}

// NewScaledExecutor builds a ScaledExecutor at the given scale.
func NewScaledExecutor(fed *Federation, cal *Calibration, sf float64) (*ScaledExecutor, error) {
	if sf <= 0 {
		return nil, fmt.Errorf("federation: non-positive scale factor %v", sf)
	}
	return &ScaledExecutor{Fed: fed, Cal: cal, SF: sf}, nil
}

// Execute implements Executor.
func (e *ScaledExecutor) Execute(p Plan) (*Outcome, error) {
	pc, ok := e.Cal.PerSF[p.Query]
	if !ok {
		return nil, fmt.Errorf("federation: query %v not calibrated", p.Query)
	}
	return e.Fed.cost(p.Query, p, scalePieces(pc, e.SF))
}

// Features implements Executor.
func (e *ScaledExecutor) Features(p Plan) ([]float64, error) {
	leftTable, rightTable := p.Query.Tables()
	lb, ok := e.Cal.tblByte[leftTable]
	if !ok {
		return nil, fmt.Errorf("federation: table %q not calibrated", leftTable)
	}
	rb, ok := e.Cal.tblByte[rightTable]
	if !ok {
		return nil, fmt.Errorf("federation: table %q not calibrated", rightTable)
	}
	return Features(p, lb*e.SF, rb*e.SF), nil
}
