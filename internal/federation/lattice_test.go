package federation

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/tpch"
)

func TestValidateNodeChoices(t *testing.T) {
	cases := []struct {
		name    string
		choices []int
		ok      bool
	}{
		{"valid", []int{1, 2, 4}, true},
		{"valid-over-capacity", []int{1, 8, 64}, true},
		{"empty", nil, false},
		{"zero", []int{1, 0}, false},
		{"negative", []int{-2, 1}, false},
		{"duplicate", []int{1, 2, 2}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateNodeChoices(tc.choices)
			if tc.ok && err != nil {
				t.Fatalf("ValidateNodeChoices(%v) = %v, want nil", tc.choices, err)
			}
			if !tc.ok {
				if !errors.Is(err, ErrBadNodeChoices) {
					t.Fatalf("ValidateNodeChoices(%v) = %v, want ErrBadNodeChoices", tc.choices, err)
				}
			}
		})
	}
}

func TestEnumeratePlansRejectsBadMenus(t *testing.T) {
	fed := defaultFed(t)
	for _, choices := range [][]int{nil, {}, {0}, {-1, 2}, {2, 2}} {
		if _, err := fed.EnumeratePlans(tpch.QueryQ12, choices); !errors.Is(err, ErrBadNodeChoices) {
			t.Errorf("EnumeratePlans(%v) err = %v, want ErrBadNodeChoices", choices, err)
		}
	}
	// A menu entirely above one site's capacity enumerates zero plans on
	// that axis; that degenerate lattice is an error too (postgres-azure
	// caps at 4 nodes in the default topology).
	if _, err := fed.EnumeratePlans(tpch.QueryQ12, []int{8, 16}); !errors.Is(err, ErrBadNodeChoices) {
		t.Errorf("all-over-capacity menu err = %v, want ErrBadNodeChoices", err)
	}
}

// TestIteratorMatchesEnumerate pins the iterator contract: draining
// Next reproduces the batch slice exactly, Reset rewinds, and the
// positional At view agrees with the cursor order.
func TestIteratorMatchesEnumerate(t *testing.T) {
	fed := defaultFed(t)
	choices := []int{1, 2, 4, 8, 16} // 8 and 16 exceed postgres-azure capacity
	plans, err := fed.EnumeratePlans(tpch.QueryQ12, choices)
	if err != nil {
		t.Fatal(err)
	}
	it, err := fed.PlanIterator(tpch.QueryQ12, choices)
	if err != nil {
		t.Fatal(err)
	}
	if it.Size() != len(plans) {
		t.Fatalf("iterator Size = %d, want %d", it.Size(), len(plans))
	}
	for pass := 0; pass < 2; pass++ {
		for i, want := range plans {
			got, ok := it.Next()
			if !ok {
				t.Fatalf("pass %d: iterator exhausted at %d/%d", pass, i, len(plans))
			}
			if got != want {
				t.Fatalf("pass %d: plan %d = %v, want %v", pass, i, got, want)
			}
			if at := it.At(i); at != want {
				t.Fatalf("At(%d) = %v, want %v", i, at, want)
			}
		}
		if _, ok := it.Next(); ok {
			t.Fatalf("pass %d: iterator yields past Size", pass)
		}
		it.Reset()
	}
}

func TestLatticeDimsAndIndex(t *testing.T) {
	fed := defaultFed(t)
	lat, err := fed.PlanLattice(tpch.QueryQ12, []int{1, 2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	sides, left, right := lat.Dims()
	// hive-aws keeps all 5 choices, postgres-azure (MaxNodes 4) keeps 3.
	if sides != 2 || left != 5 || right != 3 {
		t.Fatalf("Dims = (%d, %d, %d), want (2, 5, 3)", sides, left, right)
	}
	if lat.Size() != sides*left*right {
		t.Fatalf("Size = %d, want %d", lat.Size(), sides*left*right)
	}
	// Index must be the inverse of At's decoding over the whole lattice.
	i := 0
	for s := 0; s < sides; s++ {
		for li := 0; li < left; li++ {
			for ri := 0; ri < right; ri++ {
				if got := lat.Index(s, li, ri); got != i {
					t.Fatalf("Index(%d,%d,%d) = %d, want %d", s, li, ri, got, i)
				}
				i++
			}
		}
	}
	if lat.Query() != tpch.QueryQ12 {
		t.Fatalf("Query = %v", lat.Query())
	}
}

func TestNodeRange(t *testing.T) {
	if got := NodeRange(4); !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Fatalf("NodeRange(4) = %v", got)
	}
	if got := NodeRange(0); got != nil {
		t.Fatalf("NodeRange(0) = %v, want nil", got)
	}
}

// TestWideTopologyReachesPaperRegime checks the Example 3.1 scale: a
// 96-node-wide federation with the dense menu enumerates at least the
// paper's 18,200 equivalent QEPs.
func TestWideTopologyReachesPaperRegime(t *testing.T) {
	fed, err := WideTopology(1, 96)
	if err != nil {
		t.Fatal(err)
	}
	it, err := fed.PlanIterator(tpch.QueryQ12, NodeRange(96))
	if err != nil {
		t.Fatal(err)
	}
	if it.Size() != 2*96*96 {
		t.Fatalf("Size = %d, want %d", it.Size(), 2*96*96)
	}
	if it.Size() < 18200 {
		t.Fatalf("Size = %d, below the paper's 18,200-plan regime", it.Size())
	}
	if _, err := WideTopology(1, 0); err == nil {
		t.Fatal("WideTopology(…, 0) accepted")
	}
}
