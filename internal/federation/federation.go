// Package federation models the MIDAS cloud federation: sites that pair
// a cloud provider with a database engine, a catalog mapping TPC-H
// tables to sites, wide-area links between sites, and the space of
// equivalent Query Execution Plans (QEPs) for the paper's two-table
// queries — every combination of join site and per-site cluster size
// (paper Example 3.1: one logical plan explodes into thousands of
// equivalent QEPs once resource configurations are choices).
//
// Two executors produce cost observations. FullExecutor actually runs
// the relational plans over a generated database, so results can be
// checked against the TPC-H reference answers. ScaledExecutor replays
// operator statistics calibrated from one full run and rescales them to
// any data size, which makes the paper-scale experiments (hundreds of
// runs at 100 MiB / 1 GiB) take milliseconds while preserving the cost
// structure. Both feed time through the site's engine profile under a
// drifting load process and multiplicative noise — the federation
// variance DREAM is built to track.
package federation

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/cloud"
	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/tpch"
)

// ErrUnknownSite is returned when a site name is not in the federation.
var ErrUnknownSite = errors.New("federation: unknown site")

// ErrNoCatalogEntry is returned when a table has no owning site.
var ErrNoCatalogEntry = errors.New("federation: table not in catalog")

// Site is one member of the federation: an engine deployed on a
// provider's VMs at one location.
type Site struct {
	Name     string
	Provider *cloud.Provider
	Engine   engine.Profile
	// Instance is the VM shape clusters at this site are built from.
	Instance string
	// MaxNodes bounds the rentable cluster size.
	MaxNodes int
	// Load is this site's time-varying load process.
	Load *cloud.LoadProcess
}

// Federation is the MIDAS topology.
type Federation struct {
	Sites   map[string]*Site
	Catalog map[string]string // table → site name
	// Links maps "from→to" to the WAN link; missing entries use Default.
	Links map[string]cloud.Link
	// DefaultLink is used for unlisted site pairs.
	DefaultLink cloud.Link
	// NoiseStd is the sigma of the multiplicative log-normal execution
	// noise (0 disables noise).
	NoiseStd float64

	rngMu sync.Mutex
	rng   *stats.RNG

	// clusterMu guards clusterCache, the per-(site, size) cluster
	// handles cost() reuses across executions (see cluster).
	clusterMu    sync.RWMutex
	clusterCache map[clusterKey]*cloud.Cluster
}

// clusterKey identifies one cached cluster handle.
type clusterKey struct {
	site  string
	nodes int
}

// Config assembles a Federation.
type Config struct {
	Sites       []*Site
	Catalog     map[string]string
	Links       map[string]cloud.Link
	DefaultLink cloud.Link
	NoiseStd    float64
	Seed        int64
}

// New validates and builds a federation.
func New(cfg Config) (*Federation, error) {
	if len(cfg.Sites) == 0 {
		return nil, errors.New("federation: no sites")
	}
	f := &Federation{
		Sites:       make(map[string]*Site, len(cfg.Sites)),
		Catalog:     make(map[string]string, len(cfg.Catalog)),
		Links:       cfg.Links,
		DefaultLink: cfg.DefaultLink,
		NoiseStd:    cfg.NoiseStd,
		rng:         stats.NewRNG(cfg.Seed),
	}
	if f.DefaultLink.BandwidthMiBps == 0 {
		f.DefaultLink = cloud.Link{BandwidthMiBps: 120, LatencyS: 0.08}
	}
	for _, s := range cfg.Sites {
		if s.Name == "" || s.Provider == nil || s.Load == nil {
			return nil, fmt.Errorf("federation: site %+v incompletely specified", s)
		}
		if _, err := s.Provider.Instance(s.Instance); err != nil {
			return nil, err
		}
		if s.MaxNodes <= 0 {
			return nil, fmt.Errorf("federation: site %q has no capacity", s.Name)
		}
		if _, dup := f.Sites[s.Name]; dup {
			return nil, fmt.Errorf("federation: duplicate site %q", s.Name)
		}
		f.Sites[s.Name] = s
	}
	for table, site := range cfg.Catalog {
		if _, ok := f.Sites[site]; !ok {
			return nil, fmt.Errorf("%w: catalog maps %q to %q", ErrUnknownSite, table, site)
		}
		f.Catalog[table] = site
	}
	return f, nil
}

// SiteOf returns the site owning a table.
func (f *Federation) SiteOf(table string) (*Site, error) {
	name, ok := f.Catalog[table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoCatalogEntry, table)
	}
	return f.Sites[name], nil
}

// link returns the WAN link from one site to another.
func (f *Federation) link(from, to string) cloud.Link {
	if l, ok := f.Links[from+"→"+to]; ok {
		return l
	}
	return f.DefaultLink
}

// Plan is one equivalent QEP of a two-table query: which site executes
// the join (and final aggregation) and how many VMs each site's
// cluster uses.
type Plan struct {
	Query tpch.QueryID
	// JoinAtLeft places the join at the left (fact) table's site when
	// true, otherwise at the right table's site.
	JoinAtLeft bool
	// NodesLeft and NodesRight size the two clusters.
	NodesLeft, NodesRight int
}

// String renders the plan compactly.
func (p Plan) String() string {
	side := "right"
	if p.JoinAtLeft {
		side = "left"
	}
	return fmt.Sprintf("%v[join@%s nL=%d nR=%d]", p.Query, side, p.NodesLeft, p.NodesRight)
}

// EnumeratePlans expands a query into its equivalent QEPs over the
// given cluster-size choices (paper Example 3.1). It is the batch
// convenience form of PlanIterator: the returned slice is the
// iterator's walk materialized in the same deterministic order
// (join-at-left first, then per-site sizes in menu order). Node
// choices beyond a site's MaxNodes are skipped; empty, non-positive,
// or duplicate menus are rejected (see ValidateNodeChoices). The slice
// is shared with the lattice — treat it as read-only.
func (f *Federation) EnumeratePlans(q tpch.QueryID, nodeChoices []int) ([]Plan, error) {
	lat, err := f.PlanLattice(q, nodeChoices)
	if err != nil {
		return nil, err
	}
	return lat.Plans(), nil
}

// FeatureDim is the length of plan feature vectors.
const FeatureDim = 5

// FeatureNames documents the regression features, following the paper's
// Example 2.1 (table sizes and per-cloud node counts) plus the join
// placement indicator.
var FeatureNames = [FeatureDim]string{
	"left_mib", "right_mib", "nodes_left", "nodes_right", "join_at_left",
}

// Features maps a plan plus data sizes to the estimation feature vector
// x of the paper's cost model (eq. 5): the sizes of the two input
// tables in MiB and the number of VMs at each cloud.
func Features(p Plan, leftBytes, rightBytes float64) []float64 {
	joinLeft := 0.0
	if p.JoinAtLeft {
		joinLeft = 1
	}
	return []float64{
		leftBytes / (1024 * 1024),
		rightBytes / (1024 * 1024),
		float64(p.NodesLeft),
		float64(p.NodesRight),
		joinLeft,
	}
}

// Metrics are the two cost objectives of every experiment in the paper.
var Metrics = []string{"time_s", "money_usd"}

// BreakdownMetrics extends Metrics with the per-operator timings of a
// federated execution, enabling IReS-style operator-level cost models
// (each operator gets its own regression; plan cost is reassembled from
// the pieces).
var BreakdownMetrics = []string{
	"time_s", "money_usd", "left_s", "right_s", "ship_s", "final_s",
}

// Outcome is the measured cost of one plan execution.
type Outcome struct {
	// TimeS is the end-to-end simulated execution time in seconds.
	TimeS float64
	// MoneyUSD is the pay-as-you-go monetary cost: VM occupancy at
	// both sites plus egress for the shipped intermediate result.
	MoneyUSD float64
	// Result is the query answer (nil for scaled executions).
	Result *engine.Relation
	// Breakdown diagnostics.
	LeftTimeS, RightTimeS, ShipTimeS, FinalTimeS float64
	ShippedBytes                                 float64
	LoadLeft, LoadRight                          float64
}

// Costs returns the cost vector in Metrics order.
func (o *Outcome) Costs() []float64 { return []float64{o.TimeS, o.MoneyUSD} }

// BreakdownCosts returns the cost vector in BreakdownMetrics order.
func (o *Outcome) BreakdownCosts() []float64 {
	return []float64{o.TimeS, o.MoneyUSD, o.LeftTimeS, o.RightTimeS, o.ShipTimeS, o.FinalTimeS}
}

// cluster returns the (site, size) cluster handle, built once and
// cached: a Cluster is immutable (provider, instance type, node count
// — all fixed for the federation's lifetime), and rebuilding two of
// them per execution put cloud.NewCluster on the serving hot path's
// allocation profile.
func (f *Federation) cluster(s *Site, nodes int) (*cloud.Cluster, error) {
	key := clusterKey{site: s.Name, nodes: nodes}
	f.clusterMu.RLock()
	c, ok := f.clusterCache[key]
	f.clusterMu.RUnlock()
	if ok {
		return c, nil
	}
	c, err := cloud.NewCluster(s.Provider, s.Instance, nodes)
	if err != nil {
		return nil, err
	}
	f.clusterMu.Lock()
	if f.clusterCache == nil {
		f.clusterCache = make(map[clusterKey]*cloud.Cluster)
	}
	f.clusterCache[key] = c
	f.clusterMu.Unlock()
	return c, nil
}

// noiseFactor draws one multiplicative noise sample. Safe for
// concurrent use: executions from many goroutines share one noise RNG.
func (f *Federation) noiseFactor() float64 {
	if f.NoiseStd <= 0 {
		return 1
	}
	f.rngMu.Lock()
	defer f.rngMu.Unlock()
	return f.rng.LogNormal(0, f.NoiseStd)
}

// pieces are the operator statistics of one federated execution, either
// measured (FullExecutor) or rescaled from calibration (ScaledExecutor).
type pieces struct {
	leftStats, rightStats, finalStats engine.Stats
	leftPrepBytes, rightPrepBytes     float64
}

// cost turns execution pieces into an Outcome under current load and
// fresh noise. Prep runs at the two sites in parallel; the remote prep
// result ships to the join site; the final plan runs there.
func (f *Federation) cost(q tpch.QueryID, p Plan, pc pieces) (*Outcome, error) {
	leftTable, rightTable := q.Tables()
	leftSite, err := f.SiteOf(leftTable)
	if err != nil {
		return nil, err
	}
	rightSite, err := f.SiteOf(rightTable)
	if err != nil {
		return nil, err
	}
	if p.NodesLeft < 1 || p.NodesLeft > leftSite.MaxNodes {
		return nil, fmt.Errorf("federation: plan %v exceeds %q capacity %d", p, leftSite.Name, leftSite.MaxNodes)
	}
	if p.NodesRight < 1 || p.NodesRight > rightSite.MaxNodes {
		return nil, fmt.Errorf("federation: plan %v exceeds %q capacity %d", p, rightSite.Name, rightSite.MaxNodes)
	}

	loadLeft := leftSite.Load.Tick()
	loadRight := rightSite.Load.Tick()

	out := &Outcome{LoadLeft: loadLeft, LoadRight: loadRight}
	out.LeftTimeS = leftSite.Engine.SimulateSeconds(pc.leftStats, p.NodesLeft, loadLeft) * f.noiseFactor()
	out.RightTimeS = rightSite.Engine.SimulateSeconds(pc.rightStats, p.NodesRight, loadRight) * f.noiseFactor()

	joinSite, joinNodes, joinLoad := rightSite, p.NodesRight, loadRight
	shipFrom, shipBytes := leftSite, pc.leftPrepBytes
	if p.JoinAtLeft {
		joinSite, joinNodes, joinLoad = leftSite, p.NodesLeft, loadLeft
		shipFrom, shipBytes = rightSite, pc.rightPrepBytes
	}
	out.ShippedBytes = shipBytes
	if shipFrom.Name != joinSite.Name {
		out.ShipTimeS = f.link(shipFrom.Name, joinSite.Name).TransferTime(shipBytes) * f.noiseFactor()
	}
	out.FinalTimeS = joinSite.Engine.SimulateSeconds(pc.finalStats, joinNodes, joinLoad) * f.noiseFactor()

	prepTime := out.LeftTimeS
	if out.RightTimeS > prepTime {
		prepTime = out.RightTimeS
	}
	out.TimeS = prepTime + out.ShipTimeS + out.FinalTimeS

	leftCluster, err := f.cluster(leftSite, p.NodesLeft)
	if err != nil {
		return nil, err
	}
	rightCluster, err := f.cluster(rightSite, p.NodesRight)
	if err != nil {
		return nil, err
	}
	leftBusy := out.LeftTimeS
	rightBusy := out.RightTimeS
	if p.JoinAtLeft {
		leftBusy += out.FinalTimeS
	} else {
		rightBusy += out.FinalTimeS
	}
	out.MoneyUSD = leftCluster.Cost(leftBusy) + rightCluster.Cost(rightBusy)
	if shipFrom.Name != joinSite.Name {
		out.MoneyUSD += cloud.TransferCost(shipFrom.Provider, shipBytes)
	}
	return out, nil
}
