package federation

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/tpch"
)

// This file is the streaming half of plan enumeration. A PlanLattice is
// the validated descriptor of one query's QEP space — 2 join placements
// × the feasible cluster sizes at each site — and a PlanIterator walks
// it lazily in a fixed order. EnumeratePlans (federation.go's historic
// batch API) is a thin wrapper that materializes the walk; everything
// downstream that wants to avoid touching all ~18,200 plans of the
// paper's Example 3.1 regime pulls from the iterator instead.

// ErrBadNodeChoices wraps every node-choice validation failure, so
// callers can distinguish a malformed menu from enumeration errors.
var ErrBadNodeChoices = errors.New("federation: bad node choices")

// ValidateNodeChoices rejects degenerate cluster-size menus up front:
// empty menus, non-positive sizes, and duplicate entries all produce a
// descriptive error instead of a silently empty or double-counted plan
// lattice. Choices above a site's MaxNodes stay legal — capacity is a
// per-site property, and the lattice simply skips them for that site.
func ValidateNodeChoices(nodeChoices []int) error {
	if len(nodeChoices) == 0 {
		return fmt.Errorf("%w: empty menu", ErrBadNodeChoices)
	}
	seen := make(map[int]struct{}, len(nodeChoices))
	for i, n := range nodeChoices {
		if n < 1 {
			return fmt.Errorf("%w: non-positive entry %d at index %d", ErrBadNodeChoices, n, i)
		}
		if _, dup := seen[n]; dup {
			return fmt.Errorf("%w: duplicate entry %d at index %d", ErrBadNodeChoices, n, i)
		}
		seen[n] = struct{}{}
	}
	return nil
}

// NodeRange returns the dense cluster-size menu {1, 2, ..., n} — the
// convenient way to drive a site to its full capacity and reach the
// paper's Example 3.1 plan counts (NodeRange(96) on WideTopology gives
// 2×96×96 = 18,432 QEPs per query).
func NodeRange(n int) []int {
	if n < 1 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// PlanLattice is one query's space of equivalent QEPs: the cross
// product of join placement (left or right site) with the feasible
// cluster sizes at each site. It is immutable after construction;
// Size and At are O(1), so the lattice can be consumed positionally
// from many goroutines without materializing a slice.
type PlanLattice struct {
	query tpch.QueryID
	// left and right hold the in-capacity cluster sizes per site, in
	// menu order — the axes of the lattice.
	left, right []int

	// plans materializes the full walk on first use of Plans().
	plansOnce sync.Once
	plans     []Plan
}

// PlanLattice validates nodeChoices and builds the QEP lattice for q.
// Beyond ValidateNodeChoices failures, it errors when a site ends up
// with no feasible cluster size at all (every menu entry above
// MaxNodes), which would otherwise enumerate zero plans.
func (f *Federation) PlanLattice(q tpch.QueryID, nodeChoices []int) (*PlanLattice, error) {
	if err := ValidateNodeChoices(nodeChoices); err != nil {
		return nil, fmt.Errorf("%w (query %v)", err, q)
	}
	leftTable, rightTable := q.Tables()
	if leftTable == "" {
		return nil, fmt.Errorf("federation: query %v has no table metadata", q)
	}
	left, err := f.SiteOf(leftTable)
	if err != nil {
		return nil, err
	}
	right, err := f.SiteOf(rightTable)
	if err != nil {
		return nil, err
	}
	feasible := func(site *Site) []int {
		out := make([]int, 0, len(nodeChoices))
		for _, n := range nodeChoices {
			if n <= site.MaxNodes {
				out = append(out, n)
			}
		}
		return out
	}
	lc, rc := feasible(left), feasible(right)
	if len(lc) == 0 {
		return nil, fmt.Errorf("%w: no entry within site %q capacity %d (query %v)",
			ErrBadNodeChoices, left.Name, left.MaxNodes, q)
	}
	if len(rc) == 0 {
		return nil, fmt.Errorf("%w: no entry within site %q capacity %d (query %v)",
			ErrBadNodeChoices, right.Name, right.MaxNodes, q)
	}
	return &PlanLattice{query: q, left: lc, right: rc}, nil
}

// Query returns the query the lattice enumerates plans for.
func (l *PlanLattice) Query() tpch.QueryID { return l.query }

// Size is the number of QEPs in the lattice: 2 join placements × the
// feasible sizes per site.
func (l *PlanLattice) Size() int { return 2 * len(l.left) * len(l.right) }

// Dims reports the lattice axes: join placements (always 2) and the
// number of feasible cluster sizes at the left and right site. Size()
// == sides×left×right.
func (l *PlanLattice) Dims() (sides, left, right int) {
	return 2, len(l.left), len(l.right)
}

// Index maps a lattice point to its flat position in iteration order
// (side-major, then left axis, then right axis — the order Next and At
// share). side 0 is join-at-left, matching the historic EnumeratePlans
// order.
func (l *PlanLattice) Index(side, li, ri int) int {
	return side*len(l.left)*len(l.right) + li*len(l.right) + ri
}

// At returns the i-th plan of the deterministic iteration order.
// It panics if i is out of [0, Size()).
func (l *PlanLattice) At(i int) Plan {
	block := len(l.left) * len(l.right)
	if i < 0 || i >= 2*block {
		panic(fmt.Sprintf("federation: plan index %d out of range [0, %d)", i, 2*block))
	}
	side, rem := i/block, i%block
	return Plan{
		Query:      l.query,
		JoinAtLeft: side == 0,
		NodesLeft:  l.left[rem/len(l.right)],
		NodesRight: l.right[rem%len(l.right)],
	}
}

// Plans materializes the full lattice walk once and returns the shared
// slice. Callers must treat it as read-only; it is the batch form
// EnumeratePlans hands out.
func (l *PlanLattice) Plans() []Plan {
	l.plansOnce.Do(func() {
		plans := make([]Plan, l.Size())
		for i := range plans {
			plans[i] = l.At(i)
		}
		l.plans = plans
	})
	return l.plans
}

// Iterator returns a fresh cursor over the lattice. Iterators are
// cheap; take one per consumer rather than sharing (a PlanIterator is
// not safe for concurrent use, but its positional At/Size views are).
func (l *PlanLattice) Iterator() *PlanIterator {
	return &PlanIterator{lat: l}
}

// PlanIterator is a lazy, resettable generator over a PlanLattice in
// deterministic order: join-at-left plans first, then join-at-right,
// each in (left size, right size) menu order — exactly the historic
// EnumeratePlans order, so a full drain is byte-identical to the batch
// API. It also exposes the positional (Size/At) and shape (Dims/Index)
// views prune policies use to sample the lattice without draining it.
type PlanIterator struct {
	lat  *PlanLattice
	next int
}

// Next returns the next plan in iteration order, or ok=false once the
// lattice is exhausted.
func (it *PlanIterator) Next() (Plan, bool) {
	if it.next >= it.lat.Size() {
		return Plan{}, false
	}
	p := it.lat.At(it.next)
	it.next++
	return p, true
}

// Reset rewinds the iterator to the first plan.
func (it *PlanIterator) Reset() { it.next = 0 }

// Size is the total number of plans the iterator ranges over.
func (it *PlanIterator) Size() int { return it.lat.Size() }

// At returns the i-th plan without moving the cursor.
func (it *PlanIterator) At(i int) Plan { return it.lat.At(i) }

// Dims exposes the underlying lattice shape (see PlanLattice.Dims).
func (it *PlanIterator) Dims() (sides, left, right int) { return it.lat.Dims() }

// Index maps a lattice point to its flat position (see
// PlanLattice.Index).
func (it *PlanIterator) Index(side, li, ri int) int { return it.lat.Index(side, li, ri) }

// Lattice returns the iterated lattice.
func (it *PlanIterator) Lattice() *PlanLattice { return it.lat }

// PlanIterator builds the lattice for q and returns a cursor over it —
// the streaming counterpart of EnumeratePlans.
func (f *Federation) PlanIterator(q tpch.QueryID, nodeChoices []int) (*PlanIterator, error) {
	lat, err := f.PlanLattice(q, nodeChoices)
	if err != nil {
		return nil, err
	}
	return lat.Iterator(), nil
}
