package federation

import (
	"errors"
	"testing"

	"repro/internal/tpch"
)

func flakySetup(t *testing.T, prob float64) (*FlakyExecutor, Plan) {
	t.Helper()
	fed, err := DefaultTopology(30)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := Calibrate(fed, 0.004, 30)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := NewScaledExecutor(fed, cal, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	flaky, err := NewFlakyExecutor(inner, prob, 30)
	if err != nil {
		t.Fatal(err)
	}
	return flaky, Plan{Query: tpch.QueryQ12, JoinAtLeft: true, NodesLeft: 2, NodesRight: 1}
}

func TestFlakyExecutorInjectsFailures(t *testing.T) {
	flaky, plan := flakySetup(t, 0.5)
	failures := 0
	for i := 0; i < 200; i++ {
		if _, err := flaky.Execute(plan); err != nil {
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("non-transient error: %v", err)
			}
			failures++
		}
	}
	if failures < 60 || failures > 140 {
		t.Errorf("injected %d/200 failures at p=0.5", failures)
	}
	if flaky.Attempts() != 200 || flaky.Failures() != failures {
		t.Errorf("counters: attempts %d failures %d", flaky.Attempts(), flaky.Failures())
	}
	// Features never fail.
	if _, err := flaky.Features(plan); err != nil {
		t.Fatal(err)
	}
}

func TestFlakyExecutorValidation(t *testing.T) {
	if _, err := NewFlakyExecutor(nil, 0.5, 1); err == nil {
		t.Error("nil inner accepted")
	}
	inner, _ := flakySetup(t, 0)
	if _, err := NewFlakyExecutor(inner, 1.5, 1); err == nil {
		t.Error("probability > 1 accepted")
	}
}

func TestRetryingExecutorSurvivesFlakiness(t *testing.T) {
	flaky, plan := flakySetup(t, 0.3)
	retry, err := NewRetryingExecutor(flaky, 5)
	if err != nil {
		t.Fatal(err)
	}
	// With p=0.3 and 6 attempts, failure probability per call is
	// 0.3⁶ ≈ 0.07%; 100 calls should all succeed.
	for i := 0; i < 100; i++ {
		if _, err := retry.Execute(plan); err != nil {
			t.Fatalf("call %d failed through retries: %v", i, err)
		}
	}
	if flaky.Failures() == 0 {
		t.Error("no failures injected — test is vacuous")
	}
	if _, err := retry.Features(plan); err != nil {
		t.Fatal(err)
	}
}

func TestRetryingExecutorGivesUp(t *testing.T) {
	flaky, plan := flakySetup(t, 1) // always fails
	retry, err := NewRetryingExecutor(flaky, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = retry.Execute(plan)
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("got %v, want wrapped ErrTransient", err)
	}
	if flaky.Attempts() != 3 { // 1 + 2 retries
		t.Errorf("attempts = %d, want 3", flaky.Attempts())
	}
}

func TestRetryingExecutorPassesThroughHardErrors(t *testing.T) {
	fed, err := DefaultTopology(31)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := Calibrate(fed, 0.004, 31)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := NewScaledExecutor(fed, cal, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	retry, err := NewRetryingExecutor(inner, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Over-capacity plan is a hard error: no retries, immediate surface.
	if _, err := retry.Execute(Plan{Query: tpch.QueryQ12, NodesLeft: 999, NodesRight: 1}); err == nil {
		t.Error("hard error swallowed")
	}
	if _, err := NewRetryingExecutor(nil, 1); err == nil {
		t.Error("nil inner accepted")
	}
}

// TestSchedulerPipelineUnderChaos drives the whole pipeline through a
// flaky executor wrapped in retries — the integration-level contract.
func TestSchedulerPipelineUnderChaos(t *testing.T) {
	flaky, _ := flakySetup(t, 0.25)
	retry, err := NewRetryingExecutor(flaky, 6)
	if err != nil {
		t.Fatal(err)
	}
	// The ires package cannot be imported here (cycle-free layering:
	// ires imports federation); exercise the executor contract the
	// scheduler relies on instead.
	plans := []Plan{
		{Query: tpch.QueryQ12, JoinAtLeft: true, NodesLeft: 1, NodesRight: 1},
		{Query: tpch.QueryQ13, JoinAtLeft: false, NodesLeft: 2, NodesRight: 2},
		{Query: tpch.QueryQ14, JoinAtLeft: true, NodesLeft: 4, NodesRight: 1},
	}
	for _, p := range plans {
		out, err := retry.Execute(p)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if out.TimeS <= 0 {
			t.Fatalf("%v: degenerate outcome", p)
		}
		x, err := retry.Features(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(x) != FeatureDim {
			t.Fatalf("feature dim %d", len(x))
		}
	}
}
