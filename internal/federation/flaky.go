package federation

import (
	"errors"
	"fmt"

	"repro/internal/stats"
)

// ErrTransient marks an injected execution failure. Cloud federations
// fail in exactly this transient way — preempted spot VMs, dropped WAN
// connections, engine timeouts — and the scheduler must retry through
// it rather than surface every blip.
var ErrTransient = errors.New("federation: transient execution failure")

// FlakyExecutor wraps an Executor and makes Execute fail with a fixed
// probability, deterministically per seed. Feature extraction never
// fails (it is pure metadata). Use it in tests and chaos experiments to
// validate retry behaviour.
type FlakyExecutor struct {
	Inner Executor
	// FailureProb is the per-execution failure probability in [0, 1].
	FailureProb float64

	rng      *stats.RNG
	attempts int
	failures int
}

// NewFlakyExecutor wraps inner with seeded failure injection.
func NewFlakyExecutor(inner Executor, failureProb float64, seed int64) (*FlakyExecutor, error) {
	if inner == nil {
		return nil, errors.New("federation: nil inner executor")
	}
	if failureProb < 0 || failureProb > 1 {
		return nil, fmt.Errorf("federation: failure probability %v outside [0,1]", failureProb)
	}
	return &FlakyExecutor{Inner: inner, FailureProb: failureProb, rng: stats.NewRNG(seed)}, nil
}

// Execute implements Executor with injected failures.
func (f *FlakyExecutor) Execute(p Plan) (*Outcome, error) {
	f.attempts++
	if f.rng.Bernoulli(f.FailureProb) {
		f.failures++
		return nil, fmt.Errorf("%w: plan %v (attempt %d)", ErrTransient, p, f.attempts)
	}
	return f.Inner.Execute(p)
}

// Features implements Executor (never fails by injection).
func (f *FlakyExecutor) Features(p Plan) ([]float64, error) {
	return f.Inner.Features(p)
}

// Attempts returns the number of Execute calls observed.
func (f *FlakyExecutor) Attempts() int { return f.attempts }

// Failures returns the number of injected failures.
func (f *FlakyExecutor) Failures() int { return f.failures }

// RetryingExecutor wraps an Executor and retries transient failures up
// to MaxRetries additional attempts. Non-transient errors surface
// immediately.
type RetryingExecutor struct {
	Inner Executor
	// MaxRetries is the number of re-attempts after the first failure;
	// default 3.
	MaxRetries int
}

// NewRetryingExecutor wraps inner with retry-on-transient behaviour.
func NewRetryingExecutor(inner Executor, maxRetries int) (*RetryingExecutor, error) {
	if inner == nil {
		return nil, errors.New("federation: nil inner executor")
	}
	if maxRetries <= 0 {
		maxRetries = 3
	}
	return &RetryingExecutor{Inner: inner, MaxRetries: maxRetries}, nil
}

// Execute implements Executor with retries.
func (r *RetryingExecutor) Execute(p Plan) (*Outcome, error) {
	var lastErr error
	for attempt := 0; attempt <= r.MaxRetries; attempt++ {
		out, err := r.Inner.Execute(p)
		if err == nil {
			return out, nil
		}
		if !errors.Is(err, ErrTransient) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("federation: plan %v failed after %d attempts: %w",
		p, r.MaxRetries+1, lastErr)
}

// Features implements Executor.
func (r *RetryingExecutor) Features(p Plan) ([]float64, error) {
	return r.Inner.Features(p)
}
