package federation

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/engine"
)

// DefaultTopology reproduces the paper's experimental setup as a
// two-site federation: a Hive deployment (on Amazon instances) holding
// the large fact tables and a PostgreSQL deployment (on Microsoft
// instances) holding the dimension tables, so that each of the four
// studied queries joins tables living in *different* engines and
// clouds, exactly the scenario of the paper's Example 2.1.
//
//	site "hive-aws":     lineitem, customer
//	site "postgres-azure": orders, part
//
// Q12 = lineitem(A) ⋈ orders(B), Q13 = orders(B) ⟕ customer(A),
// Q14/Q17 = lineitem(A) ⋈ part(B): all cross-site.
func DefaultTopology(seed int64) (*Federation, error) {
	hiveSite := &Site{
		Name:     "hive-aws",
		Provider: cloud.Amazon(),
		Engine:   engine.Hive(),
		Instance: "a1.xlarge",
		MaxNodes: 16,
		Load:     cloud.NewLoadProcess(seed + 1),
	}
	pgSite := &Site{
		Name:     "postgres-azure",
		Provider: cloud.Microsoft(),
		Engine:   engine.Postgres(),
		Instance: "B2MS",
		MaxNodes: 4, // PostgreSQL does not scale out; small pool
		Load:     cloud.NewLoadProcess(seed + 2),
	}
	return New(Config{
		Sites: []*Site{hiveSite, pgSite},
		Catalog: map[string]string{
			"lineitem": hiveSite.Name,
			"customer": hiveSite.Name,
			"orders":   pgSite.Name,
			"part":     pgSite.Name,
		},
		DefaultLink: cloud.Link{BandwidthMiBps: 110, LatencyS: 0.07},
		NoiseStd:    0.10,
		Seed:        seed + 3,
	})
}

// WideTopology is the default two-site deployment scaled out until the
// QEP lattice reaches the regime of the paper's Example 3.1 (18,200
// equivalent plans for one query): both sites rent clusters of up to
// maxNodes VMs, so with the dense menu NodeRange(maxNodes) a query
// enumerates 2×maxNodes² QEPs — maxNodes 96 gives 18,432 ≥ 18,200.
// Engines, catalog, links, and noise match DefaultTopology; only the
// capacity ceiling changes, which keeps costs comparable across the
// ablation's federation sizes.
func WideTopology(seed int64, maxNodes int) (*Federation, error) {
	if maxNodes < 1 {
		return nil, fmt.Errorf("federation: wide topology needs maxNodes >= 1, got %d", maxNodes)
	}
	hiveSite := &Site{
		Name:     "hive-aws",
		Provider: cloud.Amazon(),
		Engine:   engine.Hive(),
		Instance: "a1.xlarge",
		MaxNodes: maxNodes,
		Load:     cloud.NewLoadProcess(seed + 1),
	}
	pgSite := &Site{
		Name:     "postgres-azure",
		Provider: cloud.Microsoft(),
		Engine:   engine.Postgres(),
		Instance: "B2MS",
		MaxNodes: maxNodes,
		Load:     cloud.NewLoadProcess(seed + 2),
	}
	return New(Config{
		Sites: []*Site{hiveSite, pgSite},
		Catalog: map[string]string{
			"lineitem": hiveSite.Name,
			"customer": hiveSite.Name,
			"orders":   pgSite.Name,
			"part":     pgSite.Name,
		},
		DefaultLink: cloud.Link{BandwidthMiBps: 110, LatencyS: 0.07},
		NoiseStd:    0.10,
		Seed:        seed + 3,
	})
}

// ThreeCloudTopology extends the default deployment with a third site —
// Spark on Google Cloud holding the customer table — realizing the
// three-provider architecture of the paper's Figure 1 and its
// future-work plan to "validate with more cloud providers (and their
// associated pricing model and services)".
//
//	hive-aws (Hive, Amazon):        lineitem
//	spark-gcp (Spark, Google):      customer
//	postgres-azure (PG, Microsoft): orders, part
//
// Q12/Q14/Q17 stay AWS↔Azure; Q13 becomes Azure↔GCP.
func ThreeCloudTopology(seed int64) (*Federation, error) {
	hiveSite := &Site{
		Name:     "hive-aws",
		Provider: cloud.Amazon(),
		Engine:   engine.Hive(),
		Instance: "a1.xlarge",
		MaxNodes: 16,
		Load:     cloud.NewLoadProcess(seed + 1),
	}
	pgSite := &Site{
		Name:     "postgres-azure",
		Provider: cloud.Microsoft(),
		Engine:   engine.Postgres(),
		Instance: "B2MS",
		MaxNodes: 4,
		Load:     cloud.NewLoadProcess(seed + 2),
	}
	sparkSite := &Site{
		Name:     "spark-gcp",
		Provider: cloud.Google(),
		Engine:   engine.Spark(),
		Instance: "e2-standard-4",
		MaxNodes: 12,
		Load:     cloud.NewLoadProcess(seed + 4),
	}
	return New(Config{
		Sites: []*Site{hiveSite, pgSite, sparkSite},
		Catalog: map[string]string{
			"lineitem": hiveSite.Name,
			"customer": sparkSite.Name,
			"orders":   pgSite.Name,
			"part":     pgSite.Name,
		},
		Links: map[string]cloud.Link{
			// Intra-continent pairs are faster than the default.
			"hive-aws→spark-gcp": {BandwidthMiBps: 220, LatencyS: 0.03},
			"spark-gcp→hive-aws": {BandwidthMiBps: 220, LatencyS: 0.03},
		},
		DefaultLink: cloud.Link{BandwidthMiBps: 110, LatencyS: 0.07},
		NoiseStd:    0.10,
		Seed:        seed + 3,
	})
}
