package federation

import (
	"testing"

	"repro/internal/tpch"
)

func TestThreeCloudTopology(t *testing.T) {
	fed, err := ThreeCloudTopology(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(fed.Sites) != 3 {
		t.Fatalf("sites = %d, want 3", len(fed.Sites))
	}
	// All studied queries must remain cross-site.
	for _, q := range tpch.AllQueries {
		lt, rt := q.Tables()
		ls, err := fed.SiteOf(lt)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := fed.SiteOf(rt)
		if err != nil {
			t.Fatal(err)
		}
		if ls.Name == rs.Name {
			t.Errorf("%v: both tables at %q", q, ls.Name)
		}
	}
	// Q13 spans Azure↔GCP specifically.
	s, err := fed.SiteOf("customer")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "spark-gcp" {
		t.Errorf("customer at %q, want spark-gcp", s.Name)
	}
	if s.Engine.Name != "spark" {
		t.Errorf("customer engine %q, want spark", s.Engine.Name)
	}
	// The custom link is honored.
	l := fed.link("hive-aws", "spark-gcp")
	if l.BandwidthMiBps != 220 {
		t.Errorf("custom link bandwidth = %v, want 220", l.BandwidthMiBps)
	}
	if def := fed.link("hive-aws", "postgres-azure"); def.BandwidthMiBps != 110 {
		t.Errorf("default link bandwidth = %v, want 110", def.BandwidthMiBps)
	}
}

func TestThreeCloudEndToEnd(t *testing.T) {
	fed, err := ThreeCloudTopology(10)
	if err != nil {
		t.Fatal(err)
	}
	fed.NoiseStd = 0
	db, err := tpch.Generate(0.005, tpch.GenOptions{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	ex := NewFullExecutor(fed, db)
	// Q13 across Spark and PostgreSQL: answer must match the reference.
	out, err := ex.Execute(Plan{Query: tpch.QueryQ13, JoinAtLeft: false, NodesLeft: 2, NodesRight: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := tpch.Q13(db, tpch.DefaultQ13Params())
	if len(out.Result.Rows) != len(want) {
		t.Fatalf("Q13 rows = %d, reference %d", len(out.Result.Rows), len(want))
	}
	if out.TimeS <= 0 || out.MoneyUSD <= 0 {
		t.Errorf("degenerate costs %+v", out)
	}
	// Calibration works on the three-site topology too.
	cal, err := Calibrate(fed, 0.004, 10)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewScaledExecutor(fed, cal, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := se.Execute(Plan{Query: tpch.QueryQ13, JoinAtLeft: true, NodesLeft: 4, NodesRight: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestSparkProfileCharacter(t *testing.T) {
	fed, err := ThreeCloudTopology(11)
	if err != nil {
		t.Fatal(err)
	}
	spark := fed.Sites["spark-gcp"].Engine
	hive := fed.Sites["hive-aws"].Engine
	if spark.StartupS >= hive.StartupS {
		t.Errorf("spark startup %v should undercut hive %v", spark.StartupS, hive.StartupS)
	}
	if spark.ParallelExponent <= 0 {
		t.Error("spark should scale out")
	}
}
