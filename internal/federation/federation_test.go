package federation

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cloud"
	"repro/internal/engine"
	"repro/internal/tpch"
)

func defaultFed(t *testing.T) *Federation {
	t.Helper()
	fed, err := DefaultTopology(1)
	if err != nil {
		t.Fatal(err)
	}
	return fed
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	site := &Site{
		Name: "s", Provider: cloud.Amazon(), Engine: engine.Hive(),
		Instance: "a1.large", MaxNodes: 4, Load: cloud.NewLoadProcess(1),
	}
	if _, err := New(Config{Sites: []*Site{site, site}}); err == nil {
		t.Error("duplicate site accepted")
	}
	bad := *site
	bad.Name = "bad"
	bad.Instance = "nope"
	if _, err := New(Config{Sites: []*Site{&bad}}); !errors.Is(err, cloud.ErrUnknownInstance) {
		t.Errorf("got %v, want ErrUnknownInstance", err)
	}
	if _, err := New(Config{
		Sites:   []*Site{site},
		Catalog: map[string]string{"t": "missing"},
	}); !errors.Is(err, ErrUnknownSite) {
		t.Errorf("got %v, want ErrUnknownSite", err)
	}
	zeroCap := *site
	zeroCap.Name = "zc"
	zeroCap.MaxNodes = 0
	if _, err := New(Config{Sites: []*Site{&zeroCap}}); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestDefaultTopologyCrossSite(t *testing.T) {
	fed := defaultFed(t)
	for _, q := range tpch.AllQueries {
		lt, rt := q.Tables()
		ls, err := fed.SiteOf(lt)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := fed.SiteOf(rt)
		if err != nil {
			t.Fatal(err)
		}
		if ls.Name == rs.Name {
			t.Errorf("%v: both tables at %q — not a federation scenario", q, ls.Name)
		}
	}
	if _, err := fed.SiteOf("unmapped"); !errors.Is(err, ErrNoCatalogEntry) {
		t.Errorf("got %v, want ErrNoCatalogEntry", err)
	}
}

func TestEnumeratePlans(t *testing.T) {
	fed := defaultFed(t)
	plans, err := fed.EnumeratePlans(tpch.QueryQ12, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	// 2 join sites × 3 left × 3 right = 18.
	if len(plans) != 18 {
		t.Fatalf("enumerated %d plans, want 18", len(plans))
	}
	seen := make(map[string]bool)
	for _, p := range plans {
		if seen[p.String()] {
			t.Errorf("duplicate plan %v", p)
		}
		seen[p.String()] = true
	}
	// Node choices above MaxNodes are skipped (postgres-azure caps at 4).
	plans, err = fed.EnumeratePlans(tpch.QueryQ12, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if p.NodesRight == 8 {
			t.Errorf("plan %v exceeds right-site capacity", p)
		}
	}
}

func TestFeatures(t *testing.T) {
	p := Plan{Query: tpch.QueryQ12, JoinAtLeft: true, NodesLeft: 4, NodesRight: 2}
	x := Features(p, 100*1024*1024, 10*1024*1024)
	if len(x) != FeatureDim {
		t.Fatalf("feature dim = %d, want %d", len(x), FeatureDim)
	}
	if math.Abs(x[0]-100) > 1e-9 || math.Abs(x[1]-10) > 1e-9 {
		t.Errorf("size features = %v, want [100 10 ...]", x[:2])
	}
	if x[2] != 4 || x[3] != 2 || x[4] != 1 {
		t.Errorf("features = %v", x)
	}
	p.JoinAtLeft = false
	if Features(p, 1, 1)[4] != 0 {
		t.Error("join_at_left indicator wrong")
	}
}

func smallDB(t *testing.T) *tpch.Database {
	t.Helper()
	db, err := tpch.Generate(0.005, tpch.GenOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestFullExecutorAnswersMatchReference(t *testing.T) {
	fed := defaultFed(t)
	db := smallDB(t)
	ex := NewFullExecutor(fed, db)
	out, err := ex.Execute(Plan{Query: tpch.QueryQ14, JoinAtLeft: true, NodesLeft: 2, NodesRight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Result == nil || len(out.Result.Rows) != 1 {
		t.Fatal("no result relation")
	}
	got := out.Result.Rows[0][0].(float64)
	want := tpch.Q14(db, tpch.DefaultQ14Params())
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Q14 via federation = %v, reference = %v", got, want)
	}
	if out.TimeS <= 0 || out.MoneyUSD <= 0 {
		t.Errorf("non-positive costs: %+v", out)
	}
}

func TestPlanChoiceChangesCostNotAnswer(t *testing.T) {
	fed := defaultFed(t)
	fed.NoiseStd = 0 // deterministic for the comparison
	db := smallDB(t)
	ex := NewFullExecutor(fed, db)
	a, err := ex.Execute(Plan{Query: tpch.QueryQ12, JoinAtLeft: true, NodesLeft: 4, NodesRight: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ex.Execute(Plan{Query: tpch.QueryQ12, JoinAtLeft: false, NodesLeft: 1, NodesRight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Result.Rows) != len(b.Result.Rows) {
		t.Fatal("different plans produced different answers")
	}
	for i := range a.Result.Rows {
		for j := range a.Result.Rows[i] {
			if a.Result.Rows[i][j] != b.Result.Rows[i][j] {
				t.Fatalf("row %d differs across plans", i)
			}
		}
	}
	if a.TimeS == b.TimeS && a.MoneyUSD == b.MoneyUSD {
		t.Error("different plans have identical costs — plan space is degenerate")
	}
}

func TestExecuteRejectsOverCapacityPlan(t *testing.T) {
	fed := defaultFed(t)
	ex := NewFullExecutor(fed, smallDB(t))
	if _, err := ex.Execute(Plan{Query: tpch.QueryQ12, NodesLeft: 99, NodesRight: 1}); err == nil {
		t.Error("over-capacity plan accepted")
	}
	if _, err := ex.Execute(Plan{Query: tpch.QueryQ12, NodesLeft: 1, NodesRight: 0}); err == nil {
		t.Error("zero-node plan accepted")
	}
}

func TestFullExecutorFeatures(t *testing.T) {
	fed := defaultFed(t)
	db := smallDB(t)
	ex := NewFullExecutor(fed, db)
	x, err := ex.Features(Plan{Query: tpch.QueryQ12, NodesLeft: 2, NodesRight: 1})
	if err != nil {
		t.Fatal(err)
	}
	lb, _ := db.TableBytes("lineitem")
	if math.Abs(x[0]-lb/1024/1024) > 1e-9 {
		t.Errorf("left size feature = %v, want %v", x[0], lb/1024/1024)
	}
}

func TestCalibrationAndScaledExecutor(t *testing.T) {
	fed := defaultFed(t)
	fed.NoiseStd = 0
	cal, err := Calibrate(fed, 0.005, 21)
	if err != nil {
		t.Fatal(err)
	}
	// A scaled executor at the calibration SF must closely match a full
	// executor on the same-sized data (same seed).
	db, err := tpch.Generate(0.005, tpch.GenOptions{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	full := NewFullExecutor(fed, db)
	scaled, err := NewScaledExecutor(fed, cal, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	plan := Plan{Query: tpch.QueryQ12, JoinAtLeft: true, NodesLeft: 4, NodesRight: 2}
	fo, err := full.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	so, err := scaled.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Loads tick independently between the two executions, so compare
	// with a tolerant bound driven by the load clamp range.
	if so.TimeS <= 0 || fo.TimeS <= 0 {
		t.Fatal("non-positive times")
	}
	ratio := so.TimeS / fo.TimeS
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("scaled/full time ratio = %v — calibration drifted", ratio)
	}

	// Scaling up the SF must scale the data-dependent cost up.
	scaledBig, err := NewScaledExecutor(fed, cal, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	bo, err := scaledBig.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if bo.TimeS <= so.TimeS {
		t.Errorf("100x data did not increase time: %v vs %v", bo.TimeS, so.TimeS)
	}
	// Features scale linearly with SF.
	xs, err := scaled.Features(plan)
	if err != nil {
		t.Fatal(err)
	}
	xb, err := scaledBig.Features(plan)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(xb[0]/xs[0]-100) > 1 {
		t.Errorf("feature scaling = %v, want ≈100", xb[0]/xs[0])
	}
}

func TestScaledExecutorValidation(t *testing.T) {
	fed := defaultFed(t)
	cal, err := Calibrate(fed, 0.005, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewScaledExecutor(fed, cal, 0); err == nil {
		t.Error("zero SF accepted")
	}
	se, err := NewScaledExecutor(fed, cal, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := se.Execute(Plan{Query: tpch.QueryID(99), NodesLeft: 1, NodesRight: 1}); err == nil {
		t.Error("uncalibrated query accepted")
	}
}

func TestOutcomeCostsOrder(t *testing.T) {
	o := &Outcome{TimeS: 12, MoneyUSD: 0.5}
	c := o.Costs()
	if c[0] != 12 || c[1] != 0.5 {
		t.Errorf("Costs = %v, want [12 0.5]", c)
	}
	if len(Metrics) != len(c) {
		t.Error("Metrics and Costs out of sync")
	}
}

func TestMoneyDependsOnClusterSize(t *testing.T) {
	fed := defaultFed(t)
	fed.NoiseStd = 0
	cal, err := Calibrate(fed, 0.005, 31)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewScaledExecutor(fed, cal, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	small, err := se.Execute(Plan{Query: tpch.QueryQ14, JoinAtLeft: true, NodesLeft: 1, NodesRight: 1})
	if err != nil {
		t.Fatal(err)
	}
	big, err := se.Execute(Plan{Query: tpch.QueryQ14, JoinAtLeft: true, NodesLeft: 16, NodesRight: 1})
	if err != nil {
		t.Fatal(err)
	}
	// More nodes: faster (hive side parallelism) but the money/time
	// tradeoff must be real — the 16-node run must not be cheaper AND
	// slower-or-equal simultaneously; typically it is faster and more
	// expensive per active second.
	if big.TimeS >= small.TimeS {
		t.Errorf("16 nodes not faster: %v vs %v", big.TimeS, small.TimeS)
	}
}

func TestShippingAccounted(t *testing.T) {
	fed := defaultFed(t)
	fed.NoiseStd = 0
	ex := NewFullExecutor(fed, smallDB(t))
	out, err := ex.Execute(Plan{Query: tpch.QueryQ12, JoinAtLeft: true, NodesLeft: 2, NodesRight: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Cross-site plan must ship bytes and spend transfer time.
	if out.ShippedBytes <= 0 {
		t.Error("no bytes shipped for a cross-site join")
	}
	if out.ShipTimeS <= 0 {
		t.Error("no ship time for a cross-site join")
	}
}
