// Package regression implements the Multiple Linear Regression model of
// the paper's Section 2.5: the cost function c = β₀ + β₁x₁ + … + β_L x_L + ϵ,
// fitted by ordinary least squares through the normal equations
// B = (AᵀA)⁻¹AᵀC (eq. 12), with the coefficient of determination
// R² = 1 − SSE/SST (eq. 14) as the fit-quality signal DREAM drives on.
package regression

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/stats"
)

// MinObservations returns the smallest usable dataset size for a model
// with l variables. The paper (Section 3, citing Soong) uses M = L + 2:
// one more observation than parameters so SSE has a degree of freedom.
func MinObservations(l int) int { return l + 2 }

// ErrTooFewObservations is returned when a fit is requested with fewer
// than MinObservations samples.
var ErrTooFewObservations = errors.New("regression: too few observations")

// ErrDimension is returned when samples disagree on feature dimension.
var ErrDimension = errors.New("regression: inconsistent feature dimensions")

// RidgeFallback is the automatic diagonal regularizer applied when a
// window of observations makes the normal matrix singular (collinear
// observations are common in small DREAM windows), as a fraction of
// the normal matrix's dominant diagonal entry: scaling keeps the
// fallback meaningful — and solvable — whether the features are unit
// booleans or hundred-megabyte data sizes. Both the batch and the
// incremental solver use the same rule so their fallback behavior is
// identical.
const RidgeFallback = 1e-8

// fallbackRidge returns the scaled automatic regularizer for a
// singular normal matrix.
func fallbackRidge(ata *linalg.Matrix) float64 {
	var maxDiag float64
	for i := 0; i < ata.Rows(); i++ {
		if d := math.Abs(ata.At(i, i)); d > maxDiag {
			maxDiag = d
		}
	}
	if maxDiag < 1 {
		maxDiag = 1
	}
	return RidgeFallback * maxDiag
}

// Sample pairs a feature vector x with an observed cost c.
type Sample struct {
	X []float64 // independent variables (data sizes, node counts, …)
	C float64   // observed cost (time, money, energy, …)
}

// Dataset is an ordered collection of samples; order matters because
// DREAM windows select the most recent observations.
type Dataset struct {
	dim     int
	samples []Sample
}

// NewDataset returns an empty dataset for feature dimension dim.
func NewDataset(dim int) *Dataset {
	return &Dataset{dim: dim}
}

// Dim returns the feature dimension L.
func (d *Dataset) Dim() int { return d.dim }

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.samples) }

// Add appends a sample, validating its dimension.
func (d *Dataset) Add(s Sample) error {
	if len(s.X) != d.dim {
		return fmt.Errorf("%w: sample has %d features, dataset wants %d", ErrDimension, len(s.X), d.dim)
	}
	d.samples = append(d.samples, s)
	return nil
}

// At returns the i-th sample (oldest first).
func (d *Dataset) At(i int) Sample { return d.samples[i] }

// Tail returns the m most recent samples (a view; do not mutate).
func (d *Dataset) Tail(m int) []Sample {
	if m >= len(d.samples) {
		return d.samples
	}
	return d.samples[len(d.samples)-m:]
}

// Head returns the m oldest samples (a view; do not mutate).
func (d *Dataset) Head(m int) []Sample {
	if m >= len(d.samples) {
		return d.samples
	}
	return d.samples[:m]
}

// Model is a fitted MLR model.
type Model struct {
	// Beta holds the fitted coefficients [β̂₀, β̂₁, …, β̂_L]; Beta[0] is
	// the intercept.
	Beta []float64
	// R2 is the coefficient of determination on the training samples.
	R2 float64
	// AdjustedR2 penalizes R2 for the number of predictors.
	AdjustedR2 float64
	// SSE and SST are the error decomposition on the training samples.
	SSE float64
	SST float64
	// N is the number of training samples; L the number of variables.
	N, L int
	// Ridge is the diagonal regularizer that was needed to make the
	// normal equations solvable (0 for a plain OLS fit).
	Ridge float64
	// sigma2 is the residual variance estimate SSE/(N−L−1); chol the
	// Cholesky factor of the solved normal matrix, both retained for
	// prediction intervals. The factor replaces the old eagerly-computed
	// (AᵀA)⁻¹: the interval's quadratic form needs one triangular solve,
	// not a whole inverse, and plan sweeps never ask for intervals on
	// most models they fit. It is nil when the fit needed the automatic
	// ridge fallback (the unregularized normal matrix carries no usable
	// interval geometry, matching the old nil-inverse behavior).
	sigma2 float64
	chol   *linalg.Cholesky
}

// Predict evaluates the fitted equation ĉ = β̂₀ + Σ β̂ᵢxᵢ (eq. 6).
func (m *Model) Predict(x []float64) (float64, error) {
	if len(x) != m.L {
		return 0, fmt.Errorf("%w: got %d features, model has %d", ErrDimension, len(x), m.L)
	}
	c := m.Beta[0]
	for i, xi := range x {
		c += m.Beta[i+1] * xi
	}
	return c, nil
}

// FitOptions tunes the solver.
type FitOptions struct {
	// Ridge adds λ·I to AᵀA before solving. Zero requests plain OLS
	// with an automatic tiny-λ retry if the window is singular
	// (collinear observations are common in small DREAM windows).
	Ridge float64
	// DisableRidgeFallback fails hard on singular windows instead of
	// retrying with regularization.
	DisableRidgeFallback bool
}

// Fit solves the normal equations over the given samples.
func Fit(samples []Sample, opts FitOptions) (*Model, error) {
	if len(samples) == 0 {
		return nil, ErrTooFewObservations
	}
	l := len(samples[0].X)
	if len(samples) < MinObservations(l) {
		return nil, fmt.Errorf("%w: have %d, need at least %d for %d variables",
			ErrTooFewObservations, len(samples), MinObservations(l), l)
	}
	for i, s := range samples {
		if len(s.X) != l {
			return nil, fmt.Errorf("%w: sample %d has %d features, want %d", ErrDimension, i, len(s.X), l)
		}
	}

	// Design matrix A (paper eq. 8) with a leading column of ones, and
	// response vector C (eq. 9).
	a := linalg.New(len(samples), l+1)
	c := make([]float64, len(samples))
	for i, s := range samples {
		a.Set(i, 0, 1)
		for j, x := range s.X {
			a.Set(i, j+1, x)
		}
		c[i] = s.C
	}

	at := a.T()
	ata, err := at.Mul(a)
	if err != nil {
		return nil, err
	}
	atc, err := at.MulVec(c)
	if err != nil {
		return nil, err
	}

	// The normal matrix is SPD whenever the window is non-singular, so a
	// Cholesky factorization both solves the system and hands the
	// prediction-interval path its factor for free.
	ridge := opts.Ridge
	fellBack := false
	ch := &linalg.Cholesky{}
	err = ch.Factorize(ata, ridge)
	if errors.Is(err, linalg.ErrSingular) && ridge == 0 && !opts.DisableRidgeFallback {
		// Singular window: regularize just enough to get a solution.
		ridge = fallbackRidge(ata)
		fellBack = true
		err = ch.Factorize(ata, ridge)
	}
	if err != nil {
		return nil, err
	}
	beta, err := ch.SolveVec(atc)
	if err != nil {
		return nil, err
	}

	fitted, err := a.MulVec(beta)
	if err != nil {
		return nil, err
	}
	sse, err := stats.SSE(c, fitted)
	if err != nil {
		return nil, err
	}
	sst, err := stats.SST(c)
	if err != nil {
		return nil, err
	}
	r2, err := stats.RSquared(c, fitted)
	if err != nil {
		return nil, err
	}

	m := &Model{
		Beta:  beta,
		R2:    r2,
		SSE:   sse,
		SST:   sst,
		N:     len(samples),
		L:     l,
		Ridge: ridge,
	}
	if dof := m.N - m.L - 1; dof > 0 && m.N > 1 {
		m.AdjustedR2 = 1 - (1-r2)*float64(m.N-1)/float64(dof)
		m.sigma2 = sse / float64(dof)
	} else {
		m.AdjustedR2 = r2
	}
	if !fellBack {
		m.chol = ch
	}
	return m, nil
}

// PredictWithInterval returns the point estimate plus the standard
// error of a *new* observation at x: sqrt(σ̂²·(1 + xᵀ(AᵀA)⁻¹x)). The
// caller multiplies by the desired quantile (≈2 for a 95% band). A zero
// standard error means the model had no residual degrees of freedom or
// the normal matrix was not invertible; treat such intervals as
// unknown-width rather than perfectly tight. The quadratic form is
// evaluated from the stored Cholesky factor (one triangular solve), so
// models that never serve intervals never pay for an inverse.
func (m *Model) PredictWithInterval(x []float64) (pred, stderr float64, err error) {
	pred, err = m.Predict(x)
	if err != nil {
		return 0, 0, err
	}
	if m.sigma2 <= 0 || m.chol == nil {
		return pred, 0, nil
	}
	aug := make([]float64, len(x)+1)
	aug[0] = 1
	copy(aug[1:], x)
	quad, err := m.chol.QuadForm(aug)
	if err != nil {
		return 0, 0, err
	}
	if quad < 0 {
		quad = 0 // numerical guard: (AᵀA)⁻¹ is PSD in exact arithmetic
	}
	return pred, math.Sqrt(m.sigma2 * (1 + quad)), nil
}

// FitDataset fits over the full dataset.
func FitDataset(d *Dataset, opts FitOptions) (*Model, error) {
	return Fit(d.samples, opts)
}
