package regression

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// paperTable2 is the exact 10-observation, 2-variable dataset published
// in the paper's Table 2, used there to motivate DREAM's R²-driven
// window sizing. Fitting the first M rows must reproduce the published
// R² column.
var paperTable2 = []Sample{
	{X: []float64{0.4916, 0.2977}, C: 20.640},
	{X: []float64{0.6313, 0.0482}, C: 15.557},
	{X: []float64{0.9481, 0.8232}, C: 20.971},
	{X: []float64{0.4855, 2.7056}, C: 24.878},
	{X: []float64{0.0125, 2.7268}, C: 23.274},
	{X: []float64{0.9029, 2.6456}, C: 30.216},
	{X: []float64{0.7233, 3.0640}, C: 29.978},
	{X: []float64{0.8749, 4.2847}, C: 31.702},
	{X: []float64{0.3354, 2.1082}, C: 20.860},
	{X: []float64{0.8521, 4.8217}, C: 32.836},
}

// paperTable2R2 is the published R² for M = 4 … 10.
var paperTable2R2 = map[int]float64{
	4:  0.7571,
	5:  0.7705,
	6:  0.8371,
	7:  0.8788,
	8:  0.8876,
	9:  0.8751,
	10: 0.8945,
}

func TestFitReproducesPaperTable2(t *testing.T) {
	for m := 4; m <= 10; m++ {
		model, err := Fit(paperTable2[:m], FitOptions{})
		if err != nil {
			t.Fatalf("M=%d: %v", m, err)
		}
		want := paperTable2R2[m]
		if math.Abs(model.R2-want) > 5e-4 {
			t.Errorf("M=%d: R² = %.4f, paper reports %.4f", m, model.R2, want)
		}
	}
}

func TestFitRecoversKnownCoefficients(t *testing.T) {
	// c = 3 + 2x₁ − x₂ exactly (no noise): the fit must be exact.
	rng := stats.NewRNG(11)
	var samples []Sample
	for i := 0; i < 40; i++ {
		x1, x2 := rng.Uniform(0, 10), rng.Uniform(0, 10)
		samples = append(samples, Sample{X: []float64{x1, x2}, C: 3 + 2*x1 - x2})
	}
	m, err := Fit(samples, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -1}
	for i, w := range want {
		if math.Abs(m.Beta[i]-w) > 1e-8 {
			t.Errorf("β[%d] = %v, want %v", i, m.Beta[i], w)
		}
	}
	if m.R2 < 1-1e-10 {
		t.Errorf("noise-free fit R² = %v, want 1", m.R2)
	}
	pred, err := m.Predict([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred-4) > 1e-8 {
		t.Errorf("Predict(1,1) = %v, want 4", pred)
	}
}

func TestFitWithNoise(t *testing.T) {
	rng := stats.NewRNG(5)
	var samples []Sample
	for i := 0; i < 500; i++ {
		x := rng.Uniform(0, 100)
		samples = append(samples, Sample{X: []float64{x}, C: 10 + 0.5*x + rng.Normal(0, 1)})
	}
	m, err := Fit(samples, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Beta[0]-10) > 0.5 || math.Abs(m.Beta[1]-0.5) > 0.01 {
		t.Errorf("β = %v, want ≈[10 0.5]", m.Beta)
	}
	if m.R2 < 0.99 {
		t.Errorf("R² = %v, want > 0.99 on low-noise data", m.R2)
	}
	if m.AdjustedR2 > m.R2 {
		t.Errorf("adjusted R² %v exceeds R² %v", m.AdjustedR2, m.R2)
	}
}

func TestFitTooFewObservations(t *testing.T) {
	samples := []Sample{
		{X: []float64{1, 2}, C: 1},
		{X: []float64{2, 3}, C: 2},
		{X: []float64{3, 4}, C: 3},
	}
	if _, err := Fit(samples, FitOptions{}); !errors.Is(err, ErrTooFewObservations) {
		t.Fatalf("got %v, want ErrTooFewObservations", err)
	}
	if _, err := Fit(nil, FitOptions{}); !errors.Is(err, ErrTooFewObservations) {
		t.Fatalf("nil samples: got %v, want ErrTooFewObservations", err)
	}
}

func TestFitDimensionMismatch(t *testing.T) {
	samples := []Sample{
		{X: []float64{1, 2}, C: 1},
		{X: []float64{2}, C: 2},
		{X: []float64{3, 4}, C: 3},
		{X: []float64{4, 5}, C: 4},
	}
	if _, err := Fit(samples, FitOptions{}); !errors.Is(err, ErrDimension) {
		t.Fatalf("got %v, want ErrDimension", err)
	}
}

func TestFitSingularFallsBackToRidge(t *testing.T) {
	// x₂ = 2x₁ exactly: AᵀA is singular, the ridge fallback must kick in.
	var samples []Sample
	for i := 1; i <= 8; i++ {
		x := float64(i)
		samples = append(samples, Sample{X: []float64{x, 2 * x}, C: 5 * x})
	}
	m, err := Fit(samples, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Ridge == 0 {
		t.Error("expected ridge fallback on collinear data")
	}
	pred, err := m.Predict([]float64{3, 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred-15) > 0.1 {
		t.Errorf("ridge prediction = %v, want ≈15", pred)
	}
}

func TestFitSingularHardFailure(t *testing.T) {
	var samples []Sample
	for i := 1; i <= 8; i++ {
		x := float64(i)
		samples = append(samples, Sample{X: []float64{x, 2 * x}, C: 5 * x})
	}
	if _, err := Fit(samples, FitOptions{DisableRidgeFallback: true}); err == nil {
		t.Fatal("expected error with ridge fallback disabled")
	}
}

func TestExplicitRidge(t *testing.T) {
	rng := stats.NewRNG(3)
	var samples []Sample
	for i := 0; i < 30; i++ {
		x := rng.Uniform(0, 10)
		samples = append(samples, Sample{X: []float64{x}, C: 2 * x})
	}
	m, err := Fit(samples, FitOptions{Ridge: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Ridge != 0.1 {
		t.Errorf("Ridge = %v, want 0.1", m.Ridge)
	}
}

func TestPredictDimensionError(t *testing.T) {
	m := &Model{Beta: []float64{1, 2}, L: 1}
	if _, err := m.Predict([]float64{1, 2}); !errors.Is(err, ErrDimension) {
		t.Fatalf("got %v, want ErrDimension", err)
	}
}

func TestDataset(t *testing.T) {
	d := NewDataset(2)
	if d.Dim() != 2 || d.Len() != 0 {
		t.Fatal("fresh dataset wrong shape")
	}
	for i := 0; i < 5; i++ {
		if err := d.Add(Sample{X: []float64{float64(i), float64(2 * i)}, C: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Add(Sample{X: []float64{1}, C: 0}); !errors.Is(err, ErrDimension) {
		t.Fatalf("got %v, want ErrDimension", err)
	}
	if d.Len() != 5 {
		t.Errorf("Len = %d, want 5", d.Len())
	}
	if got := d.At(3).C; got != 3 {
		t.Errorf("At(3).C = %v, want 3", got)
	}
	tail := d.Tail(2)
	if len(tail) != 2 || tail[0].C != 3 || tail[1].C != 4 {
		t.Errorf("Tail(2) = %v", tail)
	}
	head := d.Head(2)
	if len(head) != 2 || head[0].C != 0 || head[1].C != 1 {
		t.Errorf("Head(2) = %v", head)
	}
	if len(d.Tail(99)) != 5 || len(d.Head(99)) != 5 {
		t.Error("oversized window should clamp to Len")
	}
	m, err := FitDataset(d, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 5 {
		t.Errorf("model N = %d, want 5", m.N)
	}
}

func TestMinObservations(t *testing.T) {
	for l := 1; l < 10; l++ {
		if got := MinObservations(l); got != l+2 {
			t.Errorf("MinObservations(%d) = %d, want %d", l, got, l+2)
		}
	}
}

// TestPropertyR2NonDecreasingWithPerfectModel: adding samples generated
// by the true linear model keeps R² at 1.
func TestPropertyPerfectModelAlwaysR2One(t *testing.T) {
	rng := stats.NewRNG(21)
	f := func(nRaw uint8, b0, b1 float64) bool {
		if math.IsNaN(b0) || math.IsNaN(b1) || math.Abs(b0) > 1e6 || math.Abs(b1) > 1e6 {
			return true
		}
		n := int(nRaw%30) + 3 // ≥ MinObservations(1)
		samples := make([]Sample, n)
		for i := range samples {
			x := rng.Uniform(0, 100)
			samples[i] = Sample{X: []float64{x}, C: b0 + b1*x}
		}
		m, err := Fit(samples, FitOptions{})
		if err != nil {
			return false
		}
		return m.R2 > 1-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: fitted R² never exceeds 1 and the model reproduces training
// responses at least as well as the mean predictor.
func TestPropertyR2Bounds(t *testing.T) {
	rng := stats.NewRNG(33)
	f := func(nRaw uint8, noise float64) bool {
		if math.IsNaN(noise) {
			return true
		}
		sigma := math.Mod(math.Abs(noise), 5)
		n := int(nRaw%40) + 4
		samples := make([]Sample, n)
		for i := range samples {
			x1 := rng.Uniform(0, 10)
			x2 := rng.Uniform(0, 10)
			samples[i] = Sample{X: []float64{x1, x2}, C: 1 + x1 + x2 + rng.Normal(0, sigma)}
		}
		m, err := Fit(samples, FitOptions{})
		if err != nil {
			return true // singular tiny windows are allowed to fail
		}
		// OLS minimizes SSE, so R² ≥ 0 on training data (mean predictor
		// is in the hypothesis space via β = [mean, 0, 0]).
		return m.R2 <= 1+1e-9 && m.R2 >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPredictWithInterval(t *testing.T) {
	rng := stats.NewRNG(17)
	var samples []Sample
	for i := 0; i < 60; i++ {
		x := rng.Uniform(0, 10)
		samples = append(samples, Sample{X: []float64{x}, C: 5 + 2*x + rng.Normal(0, 1)})
	}
	m, err := Fit(samples, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Interior point: stderr close to the noise sigma.
	pred, se, err := m.PredictWithInterval([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred-15) > 1 {
		t.Errorf("pred = %v, want ≈15", pred)
	}
	if se < 0.7 || se > 1.5 {
		t.Errorf("interior stderr = %v, want ≈1", se)
	}
	// Extrapolation point: wider interval.
	_, seFar, err := m.PredictWithInterval([]float64{50})
	if err != nil {
		t.Fatal(err)
	}
	if seFar <= se {
		t.Errorf("extrapolation stderr %v not wider than interior %v", seFar, se)
	}
	// Coverage: ~95% of fresh observations inside ±2σ̂.
	inside := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		x := rng.Uniform(0, 10)
		truth := 5 + 2*x + rng.Normal(0, 1)
		p, s, err := m.PredictWithInterval([]float64{x})
		if err != nil {
			t.Fatal(err)
		}
		if truth >= p-2*s && truth <= p+2*s {
			inside++
		}
	}
	if frac := float64(inside) / trials; frac < 0.90 || frac > 0.995 {
		t.Errorf("±2σ coverage = %v, want ≈0.95", frac)
	}
	// Dimension error propagates.
	if _, _, err := m.PredictWithInterval([]float64{1, 2}); err == nil {
		t.Error("wrong dimension accepted")
	}
}

func TestPredictWithIntervalDegenerate(t *testing.T) {
	// Minimal window: zero residual dof → stderr 0 (unknown), not NaN.
	samples := []Sample{
		{X: []float64{1}, C: 1},
		{X: []float64{2}, C: 2},
		{X: []float64{3}, C: 3.1},
	}
	m, err := Fit(samples, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, se, err := m.PredictWithInterval([]float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(se) {
		t.Error("stderr is NaN on degenerate fit")
	}
}
