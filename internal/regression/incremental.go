package regression

import (
	"errors"
	"fmt"

	"repro/internal/linalg"
	"repro/internal/stats"
)

// IncrementalFitter maintains the normal-equation state of Algorithm
// 1's window — the Gram matrix AᵀA, one right-hand side Aᵀc_k per cost
// metric, and running mean/SST accumulators (Welford) — so that growing
// the window by one observation is a rank-1 update instead of a
// from-scratch refit:
//
//   - AddObservation folds one execution into every metric at once:
//     O(L² + K·L).
//   - Solve factors the shared Gram exactly once per window size
//     (Cholesky, O(L³)) and back-substitutes K times (O(K·L²)),
//     deriving each SSE algebraically from the incrementally-maintained
//     centered co-moments so R² needs no second pass over the window.
//
// The design matrix never materializes and no per-window state is
// rebuilt, which turns the window search's total cost from
// O(M²·L²·K) into O(M·L²  +  M·(L³ + K·L²)) — linear in the window.
// Gram sums are order-independent, so a window that grows at its *old*
// end (DREAM's most-recent-suffix windows) feeds observations in any
// convenient order.
//
// The batch Fit remains the reference implementation; the two are held
// equivalent (coefficients, R², ridge-fallback behavior) by property
// tests. An IncrementalFitter is not safe for concurrent use; the
// estimator pools one per in-flight search.
type IncrementalFitter struct {
	l, k int // feature dimension, metric count
	n    int // observations folded in

	gram *linalg.Matrix // (L+1)×(L+1) running AᵀA
	rhs  []float64      // K stacked right-hand sides Aᵀc_k, each L+1 long
	// comoment holds K stacked centered right-hand sides Aᵀd_k where
	// d_k = c_k − mean(c_k), maintained incrementally Welford-style.
	// The error decomposition is computed from these centered
	// quantities: the naive cᵀc − βᵀ(Aᵀc) form is a difference of two
	// numbers of magnitude ‖c‖², which cancels catastrophically for
	// metrics whose mean dwarfs their spread, while every centered term
	// is O(‖d‖²).
	comoment []float64
	acc      []stats.Online // per metric: running mean / Σ(c−mean)²
	row      []float64      // scratch design row [1, x…]
	colSums  []float64      // scratch: Gram row 0 (column sums of A) before the update

	// Solve outputs, overwritten by the next Solve or AddObservation.
	chol     linalg.Cholesky
	beta     []float64 // K stacked coefficient vectors
	betac    []float64 // scratch: mean-shifted coefficients for the SSE form
	sse, sst []float64 // per metric error decomposition
	r2       []float64
	ridge    float64 // effective regularizer of the last Solve
	fellBack bool    // last Solve needed the automatic ridge fallback
	solved   bool
}

// NewIncrementalFitter returns an empty fitter for l features and k
// metrics.
func NewIncrementalFitter(l, k int) *IncrementalFitter {
	f := &IncrementalFitter{}
	f.Reset(l, k)
	return f
}

// Reset empties the fitter and reshapes it for l features and k
// metrics, reusing the existing storage whenever it is large enough —
// the estimator's scratch pool calls this once per window search, so
// steady-state searches allocate nothing here.
func (f *IncrementalFitter) Reset(l, k int) {
	if l <= 0 || k <= 0 {
		panic(fmt.Sprintf("regression: invalid fitter shape l=%d k=%d", l, k))
	}
	p := l + 1
	if f.gram == nil || f.gram.Rows() != p {
		f.gram = linalg.New(p, p)
	} else {
		f.gram.Zero()
	}
	f.rhs = resizeZero(f.rhs, k*p)
	f.comoment = resizeZero(f.comoment, k*p)
	f.beta = resizeZero(f.beta, k*p)
	f.betac = resizeZero(f.betac, p)
	f.row = resizeZero(f.row, p)
	f.colSums = resizeZero(f.colSums, p)
	f.sse = resizeZero(f.sse, k)
	f.sst = resizeZero(f.sst, k)
	f.r2 = resizeZero(f.r2, k)
	if cap(f.acc) < k {
		f.acc = make([]stats.Online, k)
	}
	f.acc = f.acc[:k]
	for i := range f.acc {
		f.acc[i].Reset()
	}
	f.l, f.k, f.n = l, k, 0
	f.ridge, f.fellBack, f.solved = 0, false, false
}

func resizeZero(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// Dim returns the feature dimension L.
func (f *IncrementalFitter) Dim() int { return f.l }

// Metrics returns the metric count K.
func (f *IncrementalFitter) Metrics() int { return f.k }

// N returns the number of observations folded in.
func (f *IncrementalFitter) N() int { return f.n }

// AddObservation folds one execution — feature vector x, one observed
// cost per metric — into the shared state: a rank-1 Gram update plus K
// right-hand-side and moment updates, O(L² + K·L) total.
func (f *IncrementalFitter) AddObservation(x []float64, costs []float64) error {
	if len(x) != f.l {
		return fmt.Errorf("%w: observation has %d features, fitter wants %d", ErrDimension, len(x), f.l)
	}
	if len(costs) != f.k {
		return fmt.Errorf("%w: observation has %d costs, fitter wants %d metrics", ErrDimension, len(costs), f.k)
	}
	p := f.l + 1
	f.row[0] = 1
	copy(f.row[1:], x)
	// Column sums of A over the *previous* observations = Gram row 0
	// (the design matrix's leading ones column); the centered co-moment
	// update needs them before the rank-1 Gram update lands.
	for j := 0; j < p; j++ {
		f.colSums[j] = f.gram.At(0, j)
	}
	if err := f.gram.AddOuter(f.row); err != nil {
		return err
	}
	for m, c := range costs {
		b := f.rhs[m*p : (m+1)*p]
		q := f.comoment[m*p : (m+1)*p]
		meanOld := f.acc[m].Mean()
		f.acc[m].Add(c)
		meanNew := f.acc[m].Mean()
		// q = Σᵢ (cᵢ − c̄)aᵢ, exactly updated for the shifted mean:
		// every previous term moves by (c̄old − c̄new)·Σaᵢ.
		for j, a := range f.row {
			b[j] += c * a
			q[j] += (meanOld-meanNew)*f.colSums[j] + (c-meanNew)*a
		}
	}
	f.n++
	f.solved = false
	return nil
}

// Solve fits all K metrics against the current window: one Cholesky
// factorization of the shared Gram, K back-substitutions, and a
// closed-form error decomposition per metric. The ridge semantics
// mirror Fit exactly: an explicit opts.Ridge is applied up front; a
// singular plain window retries once with RidgeFallback unless
// DisableRidgeFallback is set. Solve allocates nothing, so it can run
// once per growth step of a window search.
func (f *IncrementalFitter) Solve(opts FitOptions) error {
	if f.n < MinObservations(f.l) {
		return fmt.Errorf("%w: have %d, need at least %d for %d variables",
			ErrTooFewObservations, f.n, MinObservations(f.l), f.l)
	}
	ridge := opts.Ridge
	fellBack := false
	err := f.chol.Factorize(f.gram, ridge)
	if errors.Is(err, linalg.ErrSingular) && ridge == 0 && !opts.DisableRidgeFallback {
		ridge = fallbackRidge(f.gram)
		fellBack = true
		err = f.chol.Factorize(f.gram, ridge)
	}
	if err != nil {
		return err
	}

	p := f.l + 1
	for m := 0; m < f.k; m++ {
		b := f.rhs[m*p : (m+1)*p]
		beta := f.beta[m*p : (m+1)*p]
		if err := f.chol.SolveVecInto(beta, b); err != nil {
			return err
		}
		// SSE = ‖c − Aβ‖² in centered form. Shifting the intercept by
		// the response mean (β̃ = β with β̃₀ −= c̄) turns the fitted
		// values into deviations, so with d = c − c̄ and q = Aᵀd:
		//
		//   SSE = ‖d − Aβ̃‖² = Σd² − 2·β̃ᵀq + β̃ᵀ(AᵀA)β̃
		//
		// an identity for *any* β̃ (no normal-equation or ridge
		// assumption), whose every term is O(‖d‖²) — immune to the
		// catastrophic cancellation the naive cᵀc − βᵀ(Aᵀc) form
		// suffers when a metric's mean dwarfs its spread. Σd² and q are
		// maintained incrementally, so no pass over the window is
		// needed. Clamp at 0: the combination can go epsilon-negative
		// on near-perfect fits.
		mean := f.acc[m].Mean()
		copy(f.betac, beta)
		f.betac[0] -= mean
		q := f.comoment[m*p : (m+1)*p]
		var bq, bgb float64
		for j, bj := range f.betac {
			bq += bj * q[j]
			var s float64
			for i, bi := range f.betac {
				s += f.gram.At(j, i) * bi
			}
			bgb += bj * s
		}
		sse := f.acc[m].SumSquaredDeviations() - 2*bq + bgb
		if sse < 0 {
			sse = 0
		}
		sst := f.acc[m].SumSquaredDeviations()
		f.sse[m], f.sst[m] = sse, sst
		// Same convention as stats.RSquared: a constant response carries
		// no variance to explain.
		switch {
		case sst != 0:
			f.r2[m] = 1 - sse/sst
		case sse == 0:
			f.r2[m] = 1
		default:
			f.r2[m] = 0
		}
	}
	f.ridge, f.fellBack, f.solved = ridge, fellBack, true
	return nil
}

func (f *IncrementalFitter) mustSolved(what string) {
	if !f.solved {
		panic("regression: " + what + " before a successful Solve")
	}
}

// R2 returns metric m's coefficient of determination from the last
// Solve.
func (f *IncrementalFitter) R2(m int) float64 {
	f.mustSolved("R2")
	return f.r2[m]
}

// Beta returns metric m's coefficient vector from the last Solve as a
// view into scratch storage: valid until the next AddObservation,
// Solve, or Reset.
func (f *IncrementalFitter) Beta(m int) []float64 {
	f.mustSolved("Beta")
	p := f.l + 1
	return f.beta[m*p : (m+1)*p]
}

// Ridge reports the effective regularizer of the last Solve and
// whether it came from the automatic singular-window fallback.
func (f *IncrementalFitter) Ridge() (ridge float64, fellBack bool) {
	f.mustSolved("Ridge")
	return f.ridge, f.fellBack
}

// Model materializes an owned *Model for metric m from the last Solve
// — identical in shape and semantics to what the batch Fit returns,
// including the retained Cholesky factor for prediction intervals
// (omitted after a ridge fallback, matching Fit). The returned model
// is independent of the fitter's scratch. factor, if non-nil, is used
// as the shared interval factor; pass the result of SharedFactor()
// once per Solve so K sibling models share one copy.
func (f *IncrementalFitter) Model(m int, factor *linalg.Cholesky) *Model {
	f.mustSolved("Model")
	p := f.l + 1
	beta := make([]float64, p)
	copy(beta, f.beta[m*p:(m+1)*p])
	out := &Model{
		Beta:  beta,
		R2:    f.r2[m],
		SSE:   f.sse[m],
		SST:   f.sst[m],
		N:     f.n,
		L:     f.l,
		Ridge: f.ridge,
		chol:  factor,
	}
	if dof := out.N - out.L - 1; dof > 0 && out.N > 1 {
		out.AdjustedR2 = 1 - (1-out.R2)*float64(out.N-1)/float64(dof)
		out.sigma2 = out.SSE / float64(dof)
	} else {
		out.AdjustedR2 = out.R2
	}
	return out
}

// SharedFactor clones the last Solve's Cholesky factor for retention
// beyond the fitter's lifetime, or returns nil after a ridge fallback
// (whose factor carries no usable interval geometry — the same
// contract as the batch Fit).
func (f *IncrementalFitter) SharedFactor() *linalg.Cholesky {
	f.mustSolved("SharedFactor")
	if f.fellBack {
		return nil
	}
	return f.chol.Clone()
}
