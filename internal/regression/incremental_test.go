package regression

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// multiSample is the incremental fitter's natural input: one feature
// vector, K observed costs.
type multiSample struct {
	x     []float64
	costs []float64
}

// metricView projects metric m of a multi-metric window into batch
// samples.
func metricView(obs []multiSample, m int) []Sample {
	out := make([]Sample, len(obs))
	for i, o := range obs {
		out[i] = Sample{X: o.x, C: o.costs[m]}
	}
	return out
}

// close9 is the PR's equivalence contract: agreement within 1e-9,
// scaled by magnitude.
func close9(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// compareToBatch fits every metric of the window both ways and fails on
// any divergence in coefficients, R², SSE, SST, or ridge behavior.
func compareToBatch(t *testing.T, obs []multiSample, opts FitOptions) {
	t.Helper()
	l, k := len(obs[0].x), len(obs[0].costs)
	f := NewIncrementalFitter(l, k)
	for _, o := range obs {
		if err := f.AddObservation(o.x, o.costs); err != nil {
			t.Fatal(err)
		}
	}
	incErr := f.Solve(opts)
	for m := 0; m < k; m++ {
		batch, batchErr := Fit(metricView(obs, m), opts)
		if (incErr == nil) != (batchErr == nil) {
			t.Fatalf("metric %d: solve disagreement: incremental %v, batch %v", m, incErr, batchErr)
		}
		if incErr != nil {
			continue
		}
		ridge, _ := f.Ridge()
		if ridge != batch.Ridge {
			t.Fatalf("metric %d: ridge %v (incremental) vs %v (batch)", m, ridge, batch.Ridge)
		}
		for j, want := range batch.Beta {
			if got := f.Beta(m)[j]; !close9(got, want) {
				t.Fatalf("metric %d β[%d]: %v (incremental) vs %v (batch)", m, j, got, want)
			}
		}
		if !close9(f.R2(m), batch.R2) {
			t.Fatalf("metric %d R²: %v (incremental) vs %v (batch)", m, f.R2(m), batch.R2)
		}
		model := f.Model(m, f.SharedFactor())
		if !close9(model.SSE, batch.SSE) || !close9(model.SST, batch.SST) {
			t.Fatalf("metric %d SSE/SST: %v/%v (incremental) vs %v/%v (batch)",
				m, model.SSE, model.SST, batch.SSE, batch.SST)
		}
		if !close9(model.AdjustedR2, batch.AdjustedR2) {
			t.Fatalf("metric %d adjusted R²: %v vs %v", m, model.AdjustedR2, batch.AdjustedR2)
		}
	}
}

// linearWindow draws n observations from a random K-metric linear model
// with the given noise; collinear duplicates feature 0 into the last
// feature, making the plain normal matrix exactly singular.
func linearWindow(rng *stats.RNG, n, l, k int, noise float64, collinear bool) []multiSample {
	b0 := make([]float64, k)
	b := make([][]float64, k)
	for m := 0; m < k; m++ {
		b0[m] = rng.Uniform(-5, 5)
		b[m] = make([]float64, l)
		for j := range b[m] {
			b[m][j] = rng.Uniform(-3, 3)
		}
	}
	out := make([]multiSample, n)
	for i := range out {
		x := make([]float64, l)
		for j := range x {
			x[j] = rng.Uniform(0, 10)
		}
		if collinear && l >= 2 {
			x[l-1] = 2 * x[0]
		}
		costs := make([]float64, k)
		for m := 0; m < k; m++ {
			c := b0[m]
			for j, xj := range x {
				c += b[m][j] * xj
			}
			costs[m] = c + rng.Normal(0, noise)
		}
		out[i] = multiSample{x: x, costs: costs}
	}
	return out
}

func TestIncrementalMatchesBatchOnPaperData(t *testing.T) {
	// The paper's Table 2 windows, solved incrementally, must reproduce
	// the batch fit (and therefore the published R² column).
	for m := 4; m <= 10; m++ {
		obs := make([]multiSample, m)
		for i, s := range paperTable2[:m] {
			obs[i] = multiSample{x: s.X, costs: []float64{s.C}}
		}
		compareToBatch(t, obs, FitOptions{})
	}
}

// TestPropertyIncrementalMatchesBatch is the tentpole equivalence
// contract: across randomized window shapes, noise levels, and the
// exactly-singular collinear case (ridge fallback), the incremental
// solve agrees with the batch reference within 1e-9.
func TestPropertyIncrementalMatchesBatch(t *testing.T) {
	rng := stats.NewRNG(101)
	f := func(nRaw, lRaw, kRaw, noiseRaw uint8, collinear bool) bool {
		l := int(lRaw%3) + 1
		k := int(kRaw%3) + 1
		n := MinObservations(l) + int(nRaw%30)
		noise := float64(noiseRaw%10) / 2
		obs := linearWindow(rng, n, l, k, noise, collinear)
		compareToBatch(t, obs, FitOptions{})
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestIncrementalMatchesBatchAsWindowGrows replays the exact access
// pattern of Algorithm 1's search: a suffix window growing one
// observation at a time at its old end, solved after every step.
func TestIncrementalMatchesBatchAsWindowGrows(t *testing.T) {
	rng := stats.NewRNG(7)
	const total = 24
	obs := linearWindow(rng, total, 2, 2, 2.5, false)
	minM := MinObservations(2)

	f := NewIncrementalFitter(2, 2)
	// Seed with the newest minM observations, then grow backwards.
	for _, o := range obs[total-minM:] {
		if err := f.AddObservation(o.x, o.costs); err != nil {
			t.Fatal(err)
		}
	}
	for m := minM; m <= total; m++ {
		window := obs[total-m:]
		if err := f.Solve(FitOptions{}); err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		for metric := 0; metric < 2; metric++ {
			batch, err := Fit(metricView(window, metric), FitOptions{})
			if err != nil {
				t.Fatalf("m=%d: %v", m, err)
			}
			if !close9(f.R2(metric), batch.R2) {
				t.Fatalf("m=%d metric %d: R² %v vs %v", m, metric, f.R2(metric), batch.R2)
			}
			for j := range batch.Beta {
				if !close9(f.Beta(metric)[j], batch.Beta[j]) {
					t.Fatalf("m=%d metric %d β[%d]: %v vs %v", m, metric, j, f.Beta(metric)[j], batch.Beta[j])
				}
			}
		}
		if m < total {
			o := obs[total-m-1] // grow at the old end
			if err := f.AddObservation(o.x, o.costs); err != nil {
				t.Fatal(err)
			}
		}
	}
	if f.N() != total {
		t.Fatalf("N = %d, want %d", f.N(), total)
	}
}

// TestIncrementalLargeMeanSmallSpread is the catastrophic-cancellation
// regression test: a metric whose mean (1e8) dwarfs its spread (~1)
// must not collapse SSE to 0 (and R² to a spurious 1) in the
// incremental path. The naive cᵀc − βᵀ(Aᵀc) decomposition loses the
// entire signal to rounding here; the centered co-moment form keeps
// every term at the spread's scale.
func TestIncrementalLargeMeanSmallSpread(t *testing.T) {
	rng := stats.NewRNG(41)
	const mean, n = 1e8, 21
	obs := make([]multiSample, n)
	for i := range obs {
		x := []float64{rng.Uniform(0, 10), rng.Uniform(0, 10)}
		// Pure noise around the huge mean: no feature explains it, so
		// the true R² is near 0 — the worst place for a spurious 1.
		obs[i] = multiSample{x: x, costs: []float64{mean + rng.Normal(0, 1)}}
	}
	f := NewIncrementalFitter(2, 1)
	for _, o := range obs {
		if err := f.AddObservation(o.x, o.costs); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Solve(FitOptions{}); err != nil {
		t.Fatal(err)
	}
	batch, err := Fit(metricView(obs, 0), FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if f.R2(0) > 0.9 {
		t.Fatalf("R² = %v on pure noise: SSE cancelled to ~0", f.R2(0))
	}
	// At this magnitude ratio even the residual-based batch SSE carries
	// ~1e-8 relative rounding, so the cross-check tolerance is looser
	// than the 1e-9 used on moderate data.
	if math.Abs(f.R2(0)-batch.R2) > 1e-6 {
		t.Fatalf("R² %v (incremental) vs %v (batch)", f.R2(0), batch.R2)
	}
	model := f.Model(0, f.SharedFactor())
	if rel := math.Abs(model.SSE-batch.SSE) / (1 + batch.SSE); rel > 1e-6 {
		t.Fatalf("SSE %v (incremental) vs %v (batch), rel %v", model.SSE, batch.SSE, rel)
	}
}

func TestIncrementalExplicitRidge(t *testing.T) {
	rng := stats.NewRNG(9)
	obs := linearWindow(rng, 20, 2, 1, 1, false)
	compareToBatch(t, obs, FitOptions{Ridge: 0.1})
}

func TestIncrementalSingularHardFailure(t *testing.T) {
	rng := stats.NewRNG(10)
	obs := linearWindow(rng, 12, 2, 1, 0, true)
	f := NewIncrementalFitter(2, 1)
	for _, o := range obs {
		if err := f.AddObservation(o.x, o.costs); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Solve(FitOptions{DisableRidgeFallback: true}); err == nil {
		t.Fatal("singular window accepted with the fallback disabled")
	}
	// With the fallback allowed it must solve, flag the ridge, and skip
	// the interval factor — exactly like the batch path.
	if err := f.Solve(FitOptions{}); err != nil {
		t.Fatal(err)
	}
	if ridge, fellBack := f.Ridge(); ridge <= 0 || !fellBack {
		t.Fatalf("Ridge() = %v, %v; want a positive fallback ridge", ridge, fellBack)
	}
	if f.SharedFactor() != nil {
		t.Fatal("fallback fit retained an interval factor")
	}
}

func TestIncrementalModelPredictsLikeBatch(t *testing.T) {
	rng := stats.NewRNG(11)
	obs := linearWindow(rng, 30, 2, 2, 1.5, false)
	f := NewIncrementalFitter(2, 2)
	for _, o := range obs {
		if err := f.AddObservation(o.x, o.costs); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Solve(FitOptions{}); err != nil {
		t.Fatal(err)
	}
	factor := f.SharedFactor()
	for m := 0; m < 2; m++ {
		batch, err := Fit(metricView(obs, m), FitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		model := f.Model(m, factor)
		for trial := 0; trial < 10; trial++ {
			x := []float64{rng.Uniform(0, 10), rng.Uniform(0, 10)}
			wantP, wantSE, err := batch.PredictWithInterval(x)
			if err != nil {
				t.Fatal(err)
			}
			gotP, gotSE, err := model.PredictWithInterval(x)
			if err != nil {
				t.Fatal(err)
			}
			if !close9(gotP, wantP) || !close9(gotSE, wantSE) {
				t.Fatalf("metric %d at %v: pred/SE %v/%v vs batch %v/%v", m, x, gotP, gotSE, wantP, wantSE)
			}
		}
	}
}

func TestIncrementalValidation(t *testing.T) {
	f := NewIncrementalFitter(2, 1)
	if err := f.AddObservation([]float64{1}, []float64{1}); !errors.Is(err, ErrDimension) {
		t.Fatalf("short features: got %v, want ErrDimension", err)
	}
	if err := f.AddObservation([]float64{1, 2}, []float64{1, 2}); !errors.Is(err, ErrDimension) {
		t.Fatalf("extra costs: got %v, want ErrDimension", err)
	}
	if err := f.Solve(FitOptions{}); !errors.Is(err, ErrTooFewObservations) {
		t.Fatalf("empty solve: got %v, want ErrTooFewObservations", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("R2 before Solve did not panic")
		}
	}()
	f.R2(0)
}

func TestIncrementalResetReuses(t *testing.T) {
	rng := stats.NewRNG(13)
	f := NewIncrementalFitter(3, 2)
	for _, o := range linearWindow(rng, 12, 3, 2, 1, false) {
		if err := f.AddObservation(o.x, o.costs); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Solve(FitOptions{}); err != nil {
		t.Fatal(err)
	}
	// Shrinking reshape, then verify the recycled fitter still matches
	// the batch reference — stale state would poison the Gram.
	f.Reset(1, 1)
	if f.N() != 0 {
		t.Fatalf("N after Reset = %d", f.N())
	}
	obs := linearWindow(rng, 10, 1, 1, 0.5, false)
	for _, o := range obs {
		if err := f.AddObservation(o.x, o.costs); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Solve(FitOptions{}); err != nil {
		t.Fatal(err)
	}
	batch, err := Fit(metricView(obs, 0), FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !close9(f.R2(0), batch.R2) {
		t.Fatalf("recycled fitter R² %v vs batch %v", f.R2(0), batch.R2)
	}
}

// ---------------------------------------------------------------------------

// BenchmarkIncrementalVsBatchFit contrasts the two solvers on the exact
// workload of one Algorithm 1 window search: a 2-metric suffix window
// growing from L+2 to M, refit at every step.
func BenchmarkIncrementalVsBatchFit(b *testing.B) {
	const l, k, m = 5, 2, 64
	rng := stats.NewRNG(1)
	obs := linearWindow(rng, m, l, k, 3, false)
	minM := MinObservations(l)

	b.Run("Batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for w := minM; w <= m; w++ {
				window := obs[m-w:]
				for metric := 0; metric < k; metric++ {
					if _, err := Fit(metricView(window, metric), FitOptions{}); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
	b.Run("Incremental", func(b *testing.B) {
		b.ReportAllocs()
		f := NewIncrementalFitter(l, k)
		for i := 0; i < b.N; i++ {
			f.Reset(l, k)
			for _, o := range obs[m-minM:] {
				if err := f.AddObservation(o.x, o.costs); err != nil {
					b.Fatal(err)
				}
			}
			for w := minM; ; w++ {
				if err := f.Solve(FitOptions{}); err != nil {
					b.Fatal(err)
				}
				if w == m {
					break
				}
				o := obs[m-w-1]
				if err := f.AddObservation(o.x, o.costs); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
