// Package linalg provides the small dense linear-algebra kernel used by
// the regression and machine-learning packages: row-major matrices,
// products, transposes, and Gaussian-elimination solves.
//
// The package is deliberately minimal — it implements exactly what the
// normal-equation solution of Multiple Linear Regression (paper eq. 12,
// B = (AᵀA)⁻¹AᵀC) and the baseline learners need, with defensive error
// returns instead of panics so callers can fall back (e.g. to ridge
// regularization) when a window of observations is singular.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is returned when a solve or inverse meets a (numerically)
// singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("linalg: incompatible matrix shapes")

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a zero-valued rows×cols matrix.
// It panics if either dimension is not positive, since that is always a
// programming error at the call site.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("%w: empty row set", ErrShape)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrShape, i, len(r), m.cols)
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m, nil
}

// ColumnVector wraps a slice as an n×1 matrix. The slice is copied.
func ColumnVector(v []float64) *Matrix {
	m := New(len(v), 1)
	copy(m.data, v)
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the matrix product m·n.
func (m *Matrix) Mul(n *Matrix) (*Matrix, error) {
	if m.cols != n.rows {
		return nil, fmt.Errorf("%w: %dx%d · %dx%d", ErrShape, m.rows, m.cols, n.rows, n.cols)
	}
	out := New(m.rows, n.cols)
	for i := 0; i < m.rows; i++ {
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			nrow := n.data[k*n.cols : (k+1)*n.cols]
			for j, nv := range nrow {
				orow[j] += mv * nv
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m·v as a slice.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.cols != len(v) {
		return nil, fmt.Errorf("%w: %dx%d · vec(%d)", ErrShape, m.rows, m.cols, len(v))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// Add returns m + n.
func (m *Matrix) Add(n *Matrix) (*Matrix, error) {
	if m.rows != n.rows || m.cols != n.cols {
		return nil, fmt.Errorf("%w: %dx%d + %dx%d", ErrShape, m.rows, m.cols, n.rows, n.cols)
	}
	out := New(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] + n.data[i]
	}
	return out, nil
}

// Scale returns s·m as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	out := New(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = s * m.data[i]
	}
	return out
}

// AddOuter adds the outer product v·vᵀ to the square matrix m in
// place — the rank-1 Gram update (AᵀA += a·aᵀ) at the heart of the
// incremental window search.
func (m *Matrix) AddOuter(v []float64) error {
	if m.rows != m.cols {
		return fmt.Errorf("%w: AddOuter on %dx%d", ErrShape, m.rows, m.cols)
	}
	if len(v) != m.rows {
		return fmt.Errorf("%w: AddOuter %dx%d with vector %d", ErrShape, m.rows, m.cols, len(v))
	}
	for i, vi := range v {
		if vi == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, vj := range v {
			row[j] += vi * vj
		}
	}
	return nil
}

// Zero resets every element in place, so scratch matrices can be
// recycled without reallocating.
func (m *Matrix) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// AddDiagonal returns a copy of m with d added to each diagonal element.
// It is the ridge-regularization primitive used when a window of
// observations makes AᵀA singular.
func (m *Matrix) AddDiagonal(d float64) (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("%w: AddDiagonal on %dx%d", ErrShape, m.rows, m.cols)
	}
	out := m.Clone()
	for i := 0; i < m.rows; i++ {
		out.data[i*m.cols+i] += d
	}
	return out, nil
}

// Solve solves m·x = b for x using Gaussian elimination with partial
// pivoting. b must have the same number of rows as m; the returned x
// has shape cols(m)×cols(b).
func (m *Matrix) Solve(b *Matrix) (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("%w: solve needs square matrix, got %dx%d", ErrShape, m.rows, m.cols)
	}
	if b.rows != m.rows {
		return nil, fmt.Errorf("%w: rhs has %d rows, want %d", ErrShape, b.rows, m.rows)
	}
	n := m.rows
	// Work on augmented copies so m and b are untouched.
	a := m.Clone()
	x := b.Clone()

	for col := 0; col < n; col++ {
		// Partial pivot: find the largest |a[row][col]| at or below the diagonal.
		pivot := col
		maxAbs := math.Abs(a.data[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.data[r*n+col]); v > maxAbs {
				maxAbs, pivot = v, r
			}
		}
		if maxAbs < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(x, pivot, col)
		}
		pv := a.data[col*n+col]
		for r := col + 1; r < n; r++ {
			f := a.data[r*n+col] / pv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a.data[r*n+c] -= f * a.data[col*n+c]
			}
			for c := 0; c < x.cols; c++ {
				x.data[r*x.cols+c] -= f * x.data[col*x.cols+c]
			}
		}
	}
	// Back substitution.
	for col := n - 1; col >= 0; col-- {
		pv := a.data[col*n+col]
		for c := 0; c < x.cols; c++ {
			s := x.data[col*x.cols+c]
			for k := col + 1; k < n; k++ {
				s -= a.data[col*n+k] * x.data[k*x.cols+c]
			}
			x.data[col*x.cols+c] = s / pv
		}
	}
	return x, nil
}

// SolveVec solves m·x = b for a vector right-hand side.
func (m *Matrix) SolveVec(b []float64) ([]float64, error) {
	x, err := m.Solve(ColumnVector(b))
	if err != nil {
		return nil, err
	}
	return x.Col(0), nil
}

// Inverse returns m⁻¹ via Solve against the identity.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("%w: inverse of %dx%d", ErrShape, m.rows, m.cols)
	}
	return m.Solve(Identity(m.rows))
}

// Equal reports whether m and n have the same shape and all elements
// within tol of each other.
func (m *Matrix) Equal(n *Matrix, tol float64) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-n.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%.6g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}

func swapRows(m *Matrix, i, j int) {
	ri := m.data[i*m.cols : (i+1)*m.cols]
	rj := m.data[j*m.cols : (j+1)*m.cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}
