package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 3) did not panic")
		}
	}()
	New(0, 3)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("got %dx%d, want 3x2", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %v, want 6", m.At(2, 1))
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrShape) {
		t.Fatalf("ragged rows: got %v, want ErrShape", err)
	}
	if _, err := FromRows(nil); !errors.Is(err, ErrShape) {
		t.Fatalf("nil rows: got %v, want ErrShape", err)
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d, want 3x2", tr.Rows(), tr.Cols())
	}
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Errorf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	p, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if p.At(i, j) != want[i][j] {
				t.Errorf("Mul(%d,%d) = %v, want %v", i, j, p.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulShapeError(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	if _, err := a.Mul(b); !errors.Is(err, ErrShape) {
		t.Fatalf("got %v, want ErrShape", err)
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	v, err := a.MulVec([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 6 || v[1] != 15 {
		t.Errorf("MulVec = %v, want [6 15]", v)
	}
	if _, err := a.MulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("short vector: got %v, want ErrShape", err)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3.
	a, _ := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := a.SolveVec([]float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("solution = %v, want [1 3]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := a.SolveVec([]float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("got %v, want ErrSingular", err)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a, _ := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := a.SolveVec([]float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Errorf("solution = %v, want [3 2]", x)
	}
}

func TestInverseIdentity(t *testing.T) {
	id := Identity(4)
	inv, err := id.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Equal(id, 1e-12) {
		t.Error("inverse of identity is not identity")
	}
}

func TestAddAndScale(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{10, 20}, {30, 40}})
	s, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if s.At(1, 1) != 44 {
		t.Errorf("Add(1,1) = %v, want 44", s.At(1, 1))
	}
	sc := a.Scale(2)
	if sc.At(0, 1) != 4 {
		t.Errorf("Scale(0,1) = %v, want 4", sc.At(0, 1))
	}
	if _, err := a.Add(New(3, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("Add shape mismatch: got %v, want ErrShape", err)
	}
}

func TestAddDiagonal(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	d, err := a.AddDiagonal(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if d.At(0, 0) != 1.5 || d.At(1, 1) != 4.5 || d.At(0, 1) != 2 {
		t.Errorf("AddDiagonal wrong: %v", d)
	}
	if _, err := New(2, 3).AddDiagonal(1); !errors.Is(err, ErrShape) {
		t.Errorf("non-square: got %v, want ErrShape", err)
	}
}

func TestRowColClone(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	r := a.Row(1)
	r[0] = 99 // must not alias
	if a.At(1, 0) != 3 {
		t.Error("Row aliases the matrix")
	}
	c := a.Col(1)
	if c[0] != 2 || c[1] != 4 {
		t.Errorf("Col = %v, want [2 4]", c)
	}
	cl := a.Clone()
	cl.Set(0, 0, -1)
	if a.At(0, 0) != 1 {
		t.Error("Clone aliases the matrix")
	}
}

func TestStringSmoke(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}})
	if got := a.String(); got == "" {
		t.Error("String returned empty")
	}
}

// randomWellConditioned builds a random diagonally dominant matrix,
// which is guaranteed nonsingular.
func randomWellConditioned(rng *rand.Rand, n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := rng.Float64()*2 - 1
			m.Set(i, j, v)
			rowSum += math.Abs(v)
		}
		m.Set(i, i, rowSum+1+rng.Float64())
	}
	return m
}

func TestPropertyInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%6) + 1
		_ = seed
		m := randomWellConditioned(rng, n)
		inv, err := m.Inverse()
		if err != nil {
			return false
		}
		prod, err := m.Mul(inv)
		if err != nil {
			return false
		}
		return prod.Equal(Identity(n), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertySolveConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(nRaw uint8) bool {
		n := int(nRaw%5) + 2
		m := randomWellConditioned(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()*10 - 5
		}
		x, err := m.SolveVec(b)
		if err != nil {
			return false
		}
		back, err := m.MulVec(x)
		if err != nil {
			return false
		}
		for i := range b {
			if math.Abs(back[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTransposeInvolution(t *testing.T) {
	f := func(rows [][]float64) bool {
		// Normalize: drop empties and force rectangular input.
		if len(rows) == 0 || len(rows[0]) == 0 {
			return true
		}
		w := len(rows[0])
		rect := make([][]float64, 0, len(rows))
		for _, r := range rows {
			if len(r) != w {
				return true
			}
			rect = append(rect, r)
		}
		m, err := FromRows(rect)
		if err != nil {
			return true
		}
		return m.T().T().Equal(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSolve32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := randomWellConditioned(rng, 32)
	rhs := make([]float64, 32)
	for i := range rhs {
		rhs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SolveVec(rhs); err != nil {
			b.Fatal(err)
		}
	}
}
