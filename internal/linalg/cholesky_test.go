package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// randSPD builds a random symmetric positive definite matrix AᵀA + d·I
// the way the regression layer does: from a random design matrix.
func randSPD(rng *stats.RNG, n, rows int) *Matrix {
	a := New(rows, n)
	for i := 0; i < rows; i++ {
		a.Set(i, 0, 1)
		for j := 1; j < n; j++ {
			a.Set(i, j, rng.Uniform(-5, 5))
		}
	}
	ata, err := a.T().Mul(a)
	if err != nil {
		panic(err)
	}
	return ata
}

func TestCholeskyMatchesGaussianSolve(t *testing.T) {
	rng := stats.NewRNG(1)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(5)
		spd := randSPD(rng, n, n+2+rng.Intn(10))
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Uniform(-10, 10)
		}
		ge, err := spd.SolveVec(b)
		if err != nil {
			continue // a singular draw is not this test's subject
		}
		ch, err := NewCholesky(spd, 0)
		if err != nil {
			t.Fatalf("trial %d: Cholesky failed where GE solved: %v", trial, err)
		}
		got, err := ch.SolveVec(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if math.Abs(got[i]-ge[i]) > 1e-8*(1+math.Abs(ge[i])) {
				t.Fatalf("trial %d: x[%d] = %v (Cholesky) vs %v (GE)", trial, i, got[i], ge[i])
			}
		}
	}
}

func TestCholeskyReconstructs(t *testing.T) {
	rng := stats.NewRNG(2)
	spd := randSPD(rng, 4, 12)
	ch, err := NewCholesky(spd, 0)
	if err != nil {
		t.Fatal(err)
	}
	// L·Lᵀ must reproduce the input.
	n := ch.Size()
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			l.Set(i, j, ch.l[i*n+j])
		}
	}
	back, err := l.Mul(l.T())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(spd, 1e-9) {
		t.Fatalf("L·Lᵀ != A:\n%v\nvs\n%v", back, spd)
	}
}

func TestCholeskySingular(t *testing.T) {
	// Rank-deficient: second column is twice the first.
	a := New(3, 3)
	vals := [][]float64{{1, 2, 3}, {2, 4, 6}, {3, 6, 10}}
	for i := range vals {
		for j, v := range vals[i] {
			a.Set(i, j, v)
		}
	}
	ch := &Cholesky{}
	if err := ch.Factorize(a, 0); !errors.Is(err, ErrSingular) {
		t.Fatalf("got %v, want ErrSingular", err)
	}
	if _, err := ch.SolveVec([]float64{1, 2, 3}); err == nil {
		t.Fatal("solve against a failed factor accepted")
	}
	// The same matrix with a ridge becomes solvable.
	if err := ch.Factorize(a, 1e-6); err != nil {
		t.Fatalf("ridge factorization failed: %v", err)
	}
}

func TestCholeskyNotSquare(t *testing.T) {
	ch := &Cholesky{}
	if err := ch.Factorize(New(2, 3), 0); !errors.Is(err, ErrShape) {
		t.Fatalf("got %v, want ErrShape", err)
	}
}

func TestCholeskyInverseMatchesGaussian(t *testing.T) {
	rng := stats.NewRNG(3)
	spd := randSPD(rng, 4, 16)
	want, err := spd.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewCholesky(spd, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ch.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-8) {
		t.Fatalf("inverse mismatch:\n%v\nvs\n%v", got, want)
	}
}

func TestCholeskyMultiRHS(t *testing.T) {
	rng := stats.NewRNG(4)
	spd := randSPD(rng, 3, 9)
	b := New(3, 4)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			b.Set(i, j, rng.Uniform(-3, 3))
		}
	}
	want, err := spd.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewCholesky(spd, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ch.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-8) {
		t.Fatalf("multi-RHS mismatch:\n%v\nvs\n%v", got, want)
	}
}

func TestCholeskyQuadForm(t *testing.T) {
	rng := stats.NewRNG(5)
	f := func(seed uint8) bool {
		n := 2 + int(seed%4)
		spd := randSPD(rng, n, n+6)
		inv, err := spd.Inverse()
		if err != nil {
			return true
		}
		ch, err := NewCholesky(spd, 0)
		if err != nil {
			return false
		}
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Uniform(-4, 4)
		}
		tmp, err := inv.MulVec(v)
		if err != nil {
			return false
		}
		var want float64
		for i := range v {
			want += v[i] * tmp[i]
		}
		got, err := ch.QuadForm(v)
		if err != nil {
			return false
		}
		return math.Abs(got-want) <= 1e-8*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCholeskyReuseShrinksAndGrows(t *testing.T) {
	rng := stats.NewRNG(6)
	ch := &Cholesky{}
	for _, n := range []int{5, 2, 7, 3} {
		spd := randSPD(rng, n, n+8)
		if err := ch.Factorize(spd, 0); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if ch.Size() != n {
			t.Fatalf("Size = %d, want %d", ch.Size(), n)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Uniform(-1, 1)
		}
		x, err := ch.SolveVec(b)
		if err != nil {
			t.Fatal(err)
		}
		back, err := spd.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range back {
			if math.Abs(back[i]-b[i]) > 1e-8 {
				t.Fatalf("n=%d: A·x != b at %d: %v vs %v", n, i, back[i], b[i])
			}
		}
	}
}

func TestAddOuter(t *testing.T) {
	m := New(3, 3)
	if err := m.AddOuter([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddOuter([]float64{0, 1, -1}); err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{1, 2, 3}, {2, 5, 5}, {3, 5, 10}}
	for i := range want {
		for j, w := range want[i] {
			if math.Abs(m.At(i, j)-w) > 1e-12 {
				t.Fatalf("m[%d][%d] = %v, want %v", i, j, m.At(i, j), w)
			}
		}
	}
	if err := m.AddOuter([]float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("short vector: got %v, want ErrShape", err)
	}
	if err := New(2, 3).AddOuter([]float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("non-square: got %v, want ErrShape", err)
	}
	m.Zero()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != 0 {
				t.Fatal("Zero left a non-zero element")
			}
		}
	}
}
