package linalg

import (
	"fmt"
	"math"
)

// Cholesky is the factorization A = L·Lᵀ of a symmetric positive
// definite matrix, the shape the regression normal matrix AᵀA always
// has when a window of observations is non-singular. Factoring once and
// back-substituting per right-hand side is what lets the shared-Gram
// window search solve all K metrics of a window for one O(L³)
// factorization instead of K Gaussian eliminations.
//
// The zero value is ready for Factorize; a factor can be re-used across
// factorizations of equal (or smaller) size without allocating, which
// is what the estimator's per-search scratch relies on.
type Cholesky struct {
	n int
	l []float64 // row-major lower triangle; entries above the diagonal unused
}

// cholPivotTol is the relative pivot floor: a diagonal pivot at or
// below cholPivotTol times the largest diagonal entry of the input is
// treated as (numerically) singular. The window search reacts to
// ErrSingular with the same tiny-ridge fallback the batch solver uses,
// so a conservative floor only costs a harmless 1e-8 regularization.
const cholPivotTol = 1e-12

// Factorize computes the Cholesky factor of a + ridge·I, leaving a
// untouched. It reuses the receiver's storage when the capacity allows,
// so steady-state refactorization is allocation-free. A non-symmetric
// shape is an ErrShape; loss of positive definiteness (a singular or
// indefinite matrix) is an ErrSingular, which callers treat exactly
// like a singular Gaussian elimination.
func (ch *Cholesky) Factorize(a *Matrix, ridge float64) error {
	if a.rows != a.cols {
		return fmt.Errorf("%w: Cholesky of %dx%d", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	if cap(ch.l) < n*n {
		ch.l = make([]float64, n*n)
	}
	ch.n = n
	l := ch.l[:n*n]

	// Pivot floor scaled by the dominant diagonal entry (plus the ridge
	// the caller is already adding).
	var maxDiag float64
	for i := 0; i < n; i++ {
		if d := math.Abs(a.data[i*a.cols+i] + ridge); d > maxDiag {
			maxDiag = d
		}
	}
	tol := cholPivotTol * maxDiag
	if tol == 0 {
		tol = cholPivotTol
	}

	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.data[i*a.cols+j]
			if i == j {
				s += ridge
			}
			for k := 0; k < j; k++ {
				s -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if s <= tol {
					ch.n = 0 // invalidate: a failed factor must not be solved against
					return ErrSingular
				}
				l[i*n+i] = math.Sqrt(s)
			} else {
				l[i*n+j] = s / l[j*n+j]
			}
		}
	}
	return nil
}

// NewCholesky factors a + ridge·I into a fresh factorization.
func NewCholesky(a *Matrix, ridge float64) (*Cholesky, error) {
	ch := &Cholesky{}
	if err := ch.Factorize(a, ridge); err != nil {
		return nil, err
	}
	return ch, nil
}

// Size returns the dimension of the factored matrix (0 before the
// first successful Factorize).
func (ch *Cholesky) Size() int { return ch.n }

// Clone returns an independent copy of the factor, safe to retain
// after the receiver is refactored or recycled.
func (ch *Cholesky) Clone() *Cholesky {
	out := &Cholesky{n: ch.n, l: make([]float64, ch.n*ch.n)}
	copy(out.l, ch.l[:ch.n*ch.n])
	return out
}

// SolveVecInto solves (L·Lᵀ)·x = b into dst, which must have length n
// and may alias b. No allocation: this is the per-metric
// back-substitution of the shared-Gram solve.
func (ch *Cholesky) SolveVecInto(dst, b []float64) error {
	n := ch.n
	if n == 0 {
		return fmt.Errorf("%w: solve against an empty factor", ErrShape)
	}
	if len(b) != n || len(dst) != n {
		return fmt.Errorf("%w: %dx%d factor, rhs %d, dst %d", ErrShape, n, n, len(b), len(dst))
	}
	l := ch.l
	// Forward: L·y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l[i*n+k] * dst[k]
		}
		dst[i] = s / l[i*n+i]
	}
	// Backward: Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		s := dst[i]
		for k := i + 1; k < n; k++ {
			s -= l[k*n+i] * dst[k]
		}
		dst[i] = s / l[i*n+i]
	}
	return nil
}

// SolveVec solves (L·Lᵀ)·x = b into a fresh slice.
func (ch *Cholesky) SolveVec(b []float64) ([]float64, error) {
	out := make([]float64, len(b))
	if err := ch.SolveVecInto(out, b); err != nil {
		return nil, err
	}
	return out, nil
}

// Solve solves against a multi-column right-hand side, one
// back-substitution per column.
func (ch *Cholesky) Solve(b *Matrix) (*Matrix, error) {
	if b.rows != ch.n {
		return nil, fmt.Errorf("%w: rhs has %d rows, factor is %dx%d", ErrShape, b.rows, ch.n, ch.n)
	}
	out := New(b.rows, b.cols)
	col := make([]float64, ch.n)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < b.rows; i++ {
			col[i] = b.data[i*b.cols+j]
		}
		if err := ch.SolveVecInto(col, col); err != nil {
			return nil, err
		}
		for i := 0; i < b.rows; i++ {
			out.data[i*out.cols+j] = col[i]
		}
	}
	return out, nil
}

// Inverse reconstructs (L·Lᵀ)⁻¹ by solving against the identity —
// retained for callers that genuinely need the whole inverse; quadratic
// forms should use QuadForm, which needs only one triangular solve.
func (ch *Cholesky) Inverse() (*Matrix, error) {
	if ch.n == 0 {
		return nil, fmt.Errorf("%w: inverse of an empty factor", ErrShape)
	}
	return ch.Solve(Identity(ch.n))
}

// QuadForm evaluates vᵀ·(L·Lᵀ)⁻¹·v = ‖L⁻¹v‖², the quadratic form of
// the prediction-interval width, with a single forward substitution.
// It allocates its own scratch, so one factor may serve concurrent
// callers.
func (ch *Cholesky) QuadForm(v []float64) (float64, error) {
	n := ch.n
	if n == 0 {
		return 0, fmt.Errorf("%w: quadratic form against an empty factor", ErrShape)
	}
	if len(v) != n {
		return 0, fmt.Errorf("%w: %dx%d factor, vector %d", ErrShape, n, n, len(v))
	}
	y := make([]float64, n)
	l := ch.l
	var quad float64
	for i := 0; i < n; i++ {
		s := v[i]
		for k := 0; k < i; k++ {
			s -= l[i*n+k] * y[k]
		}
		y[i] = s / l[i*n+i]
		quad += y[i] * y[i]
	}
	return quad, nil
}
