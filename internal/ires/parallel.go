package ires

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/metrics"
)

// The paper's Example 3.1 counts 18,200 equivalent QEPs for one query
// on a 70-vCPU/260-GB pool — per-plan estimation is the scheduler's
// hottest path. This file fans that path out over a bounded worker
// pool. Cost vectors are collected positionally, so the pipeline's
// output is byte-identical to the sequential loop for any worker count
// whenever estimation is a pure function of (history snapshot,
// features) — true for every model in this package under the default
// MostRecent window; see Scheduler.Parallelism for the UniformSample
// caveat.

// SchedulerConfig bundles the scheduler assembly knobs, including the
// parallel-estimation ones this package adds on top of the paper's
// pipeline.
type SchedulerConfig struct {
	// NodeChoices is the cluster-size menu used when enumerating QEPs;
	// nil selects the default {1, 2, 4, 8, 16}.
	NodeChoices []int
	// Seed drives the scheduler's own randomness (Bootstrap sampling).
	Seed int64
	// Parallelism bounds the estimation worker pool used by Submit,
	// OptimizeWSM and population evaluation. 0 means GOMAXPROCS;
	// 1 forces the sequential path.
	Parallelism int
	// CacheSize overrides the Modelling module's per-(history, version)
	// model cache when the model supports it (DREAM variants do).
	// 0 keeps the model's own configuration; negative disables caching.
	CacheSize int
	// Prune selects which QEPs of the lattice PlanSweep estimates. Nil
	// keeps the default FullSweep() — every plan, byte-identical to the
	// historic eager enumeration. See GreedyPrune and TopK for the
	// bounded-budget policies.
	Prune PrunePolicy
	// Store injects a durable history store (see HistoryStore): query
	// histories are recovered from it at first touch and every recorded
	// execution is persisted through it. Nil keeps histories in memory.
	Store HistoryStore
	// Metrics, when non-nil, registers the scheduler's observation-only
	// instruments (sweep duration, plans estimated, DREAM window and
	// model-cache series) on the given registry, labeled with
	// MetricsFederation. See Scheduler.InstrumentScheduler.
	Metrics *metrics.Registry
	// MetricsFederation is the value of the "federation" label on every
	// metric series this scheduler emits (empty = "default").
	MetricsFederation string
}

// ModelCacheSizer is implemented by Modelling modules whose underlying
// estimator keeps a per-(history, version) model cache.
type ModelCacheSizer interface {
	SetModelCacheSize(n int)
}

// NewSchedulerWithConfig assembles a scheduler with explicit
// parallelism and caching knobs.
func NewSchedulerWithConfig(fed *federation.Federation, exec federation.Executor, model CostModel, cfg SchedulerConfig) (*Scheduler, error) {
	s, err := NewScheduler(fed, exec, model, cfg.NodeChoices, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s.Parallelism = cfg.Parallelism
	s.Store = cfg.Store
	s.Prune = cfg.Prune
	if cfg.CacheSize != 0 {
		if ms, ok := model.(ModelCacheSizer); ok {
			ms.SetModelCacheSize(cfg.CacheSize)
		}
	}
	if cfg.Metrics != nil {
		s.InstrumentScheduler(cfg.Metrics, cfg.MetricsFederation)
	}
	return s, nil
}

// workers resolves the effective pool size for n independent tasks.
func (s *Scheduler) workers(n int) int {
	w := s.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// estimateFn returns the per-plan scoring function for one scheduling
// round. Snapshot-capable models get a single point-in-time snapshot,
// so every plan of the round is scored against one history version
// even while other goroutines append observations.
func (s *Scheduler) estimateFn(h *core.History) func(x []float64) ([]float64, error) {
	if sm, ok := s.Model.(SnapshotCostModel); ok {
		snap := h.Snapshot()
		return func(x []float64) ([]float64, error) { return sm.EstimateSnapshot(snap, x) }
	}
	return func(x []float64) ([]float64, error) { return s.Model.Estimate(h, x) }
}

// estimatePlans maps every plan to its clamped model cost vector, in
// plan order. With more than one worker the plans are fanned out over a
// bounded pool; the first error (by lowest plan index among those
// actually estimated) cancels the remaining work.
func (s *Scheduler) estimatePlans(ctx context.Context, h *core.History, plans []federation.Plan) ([][]float64, error) {
	return s.estimateIndexed(ctx, s.estimateFn(h),
		func(i int) federation.Plan { return plans[i] }, len(plans))
}

// estimateIndexed is the estimation fan-out behind estimatePlans and
// every prune policy: it scores the n plans addressed by planAt with a
// round's estimateX closure, collecting cost vectors positionally.
// planAt must be cheap and safe for concurrent use (a lattice At or a
// slice index).
func (s *Scheduler) estimateIndexed(ctx context.Context, estimateX func(x []float64) ([]float64, error), planAt func(i int) federation.Plan, n int) ([][]float64, error) {
	costs := make([][]float64, n)
	estimate := func(i int) error {
		p := planAt(i)
		x, err := s.Exec.Features(p)
		if err != nil {
			return err
		}
		c, err := estimateX(x)
		if err != nil {
			return fmt.Errorf("ires: estimating %v: %w", p, err)
		}
		// Negative predictions are meaningless for time/money; clamp
		// so dominance computations stay sane.
		for j, v := range c {
			if v < 0 {
				c[j] = 0
			}
		}
		costs[i] = c
		return nil
	}

	if s.workers(n) == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := estimate(i); err != nil {
				return nil, err
			}
		}
		return costs, nil
	}

	poolCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     int64 = -1
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel()
	}
	for g := 0; g < s.workers(n); g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n || poolCtx.Err() != nil {
					return
				}
				if err := estimate(i); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return costs, nil
}
