package ires

import (
	"testing"

	"repro/internal/federation"
	"repro/internal/tpch"
)

// TestSchedulerSurvivesTransientFailures runs the full pipeline with a
// 25%-flaky executor behind retries: bootstrap and submission must
// complete, and the history must only contain successful executions.
func TestSchedulerSurvivesTransientFailures(t *testing.T) {
	fed, err := federation.DefaultTopology(51)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := federation.Calibrate(fed, 0.004, 51)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := federation.NewScaledExecutor(fed, cal, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	flaky, err := federation.NewFlakyExecutor(inner, 0.25, 51)
	if err != nil {
		t.Fatal(err)
	}
	retry, err := federation.NewRetryingExecutor(flaky, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(fed, retry, dreamModel(t), []int{1, 2, 4}, 51)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Bootstrap(tpch.QueryQ14, 25); err != nil {
		t.Fatalf("bootstrap under chaos: %v", err)
	}
	dec, err := s.Submit(tpch.QueryQ14, Policy{Weights: []float64{1, 1}})
	if err != nil {
		t.Fatalf("submit under chaos: %v", err)
	}
	if dec.Outcome == nil || dec.Outcome.TimeS <= 0 {
		t.Fatal("no outcome under chaos")
	}
	if flaky.Failures() == 0 {
		t.Error("chaos test injected no failures")
	}
	if s.History(tpch.QueryQ14).Len() != 26 {
		t.Errorf("history = %d, want 26 (only successes recorded)", s.History(tpch.QueryQ14).Len())
	}
}
