package ires

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/federation"
	"repro/internal/moo"
	"repro/internal/tpch"
)

// This file implements the two Multi-Objective Query Processing
// approaches the paper contrasts in Figure 3:
//
//   - the genetic-algorithm path: NSGA-II searches the plan space,
//     produces a Pareto plan set once, and the user policy only picks
//     within it (cheap to re-run when weights change);
//   - the Weighted Sum Model path: every plan is scalarized directly
//     with the current weights, and any weight change restarts the
//     whole optimization.

// planProblem embeds the discrete QEP space into a continuous box for
// NSGA-II: x = (joinAtLeft?, leftChoice, rightChoice) ∈ [0,1]³, decoded
// by thresholding and index rounding. Objective values come from the
// Modelling module. Evaluate is safe for concurrent use, so the moo
// optimizers may fan fitness evaluation out over their Workers pool;
// each decoded plan is estimated exactly once (single-flight cache).
type planProblem struct {
	sched *Scheduler
	query tpch.QueryID
	// estimateX scores a feature vector against the round's history
	// snapshot (or live history for non-snapshot models).
	estimateX func(x []float64) ([]float64, error)
	choices   []int
	// maxLeft/maxRight cap the decoded node counts at the owning
	// sites' capacities, so the front only contains executable plans.
	maxLeft, maxRight int

	mu sync.Mutex
	// evals counts Modelling evaluations (the expensive step).
	evals int
	// cache avoids re-estimating the same decoded plan.
	cache map[federation.Plan]*planEval
	err   error
}

// planEval is a single-flight cache slot for one decoded plan.
type planEval struct {
	once  sync.Once
	costs []float64
}

// Bounds implements moo.Problem.
func (p *planProblem) Bounds() (lo, hi []float64) {
	return []float64{0, 0, 0}, []float64{1, 1, 1}
}

// decode maps a continuous decision vector to a concrete plan.
func (p *planProblem) decode(x []float64) federation.Plan {
	pick := func(v float64, cap int) int {
		i := int(v * float64(len(p.choices)))
		if i >= len(p.choices) {
			i = len(p.choices) - 1
		}
		n := p.choices[i]
		if cap > 0 && n > cap {
			n = cap
		}
		return n
	}
	return federation.Plan{
		Query:      p.query,
		JoinAtLeft: x[0] >= 0.5,
		NodesLeft:  pick(x[1], p.maxLeft),
		NodesRight: pick(x[2], p.maxRight),
	}
}

// Evaluate implements moo.Problem.
func (p *planProblem) Evaluate(x []float64) []float64 {
	plan := p.decode(x)
	p.mu.Lock()
	e, ok := p.cache[plan]
	if !ok {
		e = &planEval{}
		p.cache[plan] = e
	}
	p.mu.Unlock()
	e.once.Do(func() { e.costs = p.estimate(plan) })
	return e.costs
}

// estimate scores one decoded plan with the Modelling module, recording
// the first error encountered.
func (p *planProblem) estimate(plan federation.Plan) []float64 {
	feats, err := p.sched.Exec.Features(plan)
	if err != nil {
		p.setErr(err)
		return []float64{math.Inf(1), math.Inf(1)}
	}
	c, err := p.estimateX(feats)
	if err != nil {
		p.setErr(err)
		return []float64{math.Inf(1), math.Inf(1)}
	}
	for j, v := range c {
		if v < 0 {
			c[j] = 0
		}
	}
	p.mu.Lock()
	p.evals++
	p.mu.Unlock()
	return c
}

func (p *planProblem) setErr(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

// GAResult is the reusable output of the GA optimization path.
type GAResult struct {
	// Plans and Costs are the Pareto plan set with the model's cost
	// vectors, deduplicated.
	Plans []federation.Plan
	Costs [][]float64
	// ModelEvaluations counts distinct plan estimations performed.
	ModelEvaluations int
}

// Select applies a user policy to the precomputed Pareto set — the
// cheap per-policy step of the GA path (Figure 3, left). The policy's
// Strategy field picks between Algorithm 2's weighted sum, knee-point
// and lexicographic selection.
func (r *GAResult) Select(pol Policy) (federation.Plan, error) {
	if len(r.Plans) == 0 {
		return federation.Plan{}, moo.ErrNoPlans
	}
	normalized := moo.NormalizeCosts(r.Costs)
	idx, err := selectFromParetoSet(r.Costs, normalized, pol)
	if err != nil {
		return federation.Plan{}, err
	}
	return r.Plans[idx], nil
}

// OptimizeGA runs the NSGA-II path once for query q, returning the
// Pareto plan set for later policy selections.
func (s *Scheduler) OptimizeGA(q tpch.QueryID, cfg moo.NSGAIIConfig) (*GAResult, error) {
	h, err := s.OpenHistory(q)
	if err != nil {
		return nil, err
	}
	if h.Len() == 0 {
		return nil, fmt.Errorf("%w: %v", ErrNoHistory, q)
	}
	leftTable, rightTable := q.Tables()
	leftSite, err := s.Fed.SiteOf(leftTable)
	if err != nil {
		return nil, err
	}
	rightSite, err := s.Fed.SiteOf(rightTable)
	if err != nil {
		return nil, err
	}
	prob := &planProblem{
		sched:     s,
		query:     q,
		estimateX: s.estimateFn(h),
		choices:   s.NodeChoices,
		maxLeft:   leftSite.MaxNodes,
		maxRight:  rightSite.MaxNodes,
		cache:     make(map[federation.Plan]*planEval),
	}
	if cfg.Workers == 0 {
		// Inherit the scheduler's estimation parallelism: fitness
		// evaluation goes through the same Modelling hot path.
		if s.Parallelism == 0 {
			cfg.Workers = -1 // GOMAXPROCS
		} else {
			cfg.Workers = s.Parallelism
		}
	}
	res, err := moo.NSGAII(prob, cfg)
	if err != nil {
		return nil, err
	}
	if prob.err != nil {
		return nil, prob.err
	}
	out := &GAResult{ModelEvaluations: prob.evals}
	seen := make(map[federation.Plan]bool)
	for _, ind := range res.Front {
		plan := prob.decode(ind.X)
		if seen[plan] {
			continue
		}
		seen[plan] = true
		out.Plans = append(out.Plans, plan)
		out.Costs = append(out.Costs, prob.cache[plan].costs)
	}
	return out, nil
}

// WSMResult reports one run of the Weighted Sum Model path.
type WSMResult struct {
	Plan federation.Plan
	// ModelEvaluations counts plan estimations; the WSM path pays this
	// again for every policy change.
	ModelEvaluations int
}

// OptimizeWSM runs the weighted-sum path (Figure 3, right): estimate
// every enumerated plan, scalarize with the current weights, return the
// argmin. There is no reusable artifact — a changed policy reruns this.
func (s *Scheduler) OptimizeWSM(q tpch.QueryID, pol Policy) (*WSMResult, error) {
	return s.OptimizeWSMContext(context.Background(), q, pol)
}

// OptimizeWSMContext is OptimizeWSM with cancellation: the per-plan
// estimation sweep observes ctx and aborts early when it is cancelled.
func (s *Scheduler) OptimizeWSMContext(ctx context.Context, q tpch.QueryID, pol Policy) (*WSMResult, error) {
	h, err := s.OpenHistory(q)
	if err != nil {
		return nil, err
	}
	if h.Len() == 0 {
		return nil, fmt.Errorf("%w: %v", ErrNoHistory, q)
	}
	plans, err := s.Fed.EnumeratePlans(q, s.NodeChoices)
	if err != nil {
		return nil, err
	}
	if len(plans) == 0 {
		return nil, moo.ErrNoPlans
	}
	costs, err := s.estimatePlans(ctx, h, plans)
	if err != nil {
		return nil, err
	}
	evals := len(plans)
	weights := pol.Weights
	if len(weights) == 0 {
		weights = []float64{1, 1}
	}
	idx, err := moo.ArgminWeightedSum(moo.NormalizeCosts(costs), weights)
	if err != nil {
		return nil, err
	}
	return &WSMResult{Plan: plans[idx], ModelEvaluations: evals}, nil
}
