package ires

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/moo"
	"repro/internal/tpch"
)

// This file implements the two Multi-Objective Query Processing
// approaches the paper contrasts in Figure 3:
//
//   - the genetic-algorithm path: NSGA-II searches the plan space,
//     produces a Pareto plan set once, and the user policy only picks
//     within it (cheap to re-run when weights change);
//   - the Weighted Sum Model path: every plan is scalarized directly
//     with the current weights, and any weight change restarts the
//     whole optimization.

// planProblem embeds the discrete QEP space into a continuous box for
// NSGA-II: x = (joinAtLeft?, leftChoice, rightChoice) ∈ [0,1]³, decoded
// by thresholding and index rounding. Objective values come from the
// Modelling module.
type planProblem struct {
	sched   *Scheduler
	query   tpch.QueryID
	history *core.History
	choices []int
	// maxLeft/maxRight cap the decoded node counts at the owning
	// sites' capacities, so the front only contains executable plans.
	maxLeft, maxRight int
	// evals counts Modelling evaluations (the expensive step).
	evals int
	// cache avoids re-estimating the same decoded plan.
	cache map[federation.Plan][]float64
	err   error
}

// Bounds implements moo.Problem.
func (p *planProblem) Bounds() (lo, hi []float64) {
	return []float64{0, 0, 0}, []float64{1, 1, 1}
}

// decode maps a continuous decision vector to a concrete plan.
func (p *planProblem) decode(x []float64) federation.Plan {
	pick := func(v float64, cap int) int {
		i := int(v * float64(len(p.choices)))
		if i >= len(p.choices) {
			i = len(p.choices) - 1
		}
		n := p.choices[i]
		if cap > 0 && n > cap {
			n = cap
		}
		return n
	}
	return federation.Plan{
		Query:      p.query,
		JoinAtLeft: x[0] >= 0.5,
		NodesLeft:  pick(x[1], p.maxLeft),
		NodesRight: pick(x[2], p.maxRight),
	}
}

// Evaluate implements moo.Problem.
func (p *planProblem) Evaluate(x []float64) []float64 {
	plan := p.decode(x)
	if c, ok := p.cache[plan]; ok {
		return c
	}
	feats, err := p.sched.Exec.Features(plan)
	if err != nil {
		p.err = err
		return []float64{math.Inf(1), math.Inf(1)}
	}
	c, err := p.sched.Model.Estimate(p.history, feats)
	if err != nil {
		p.err = err
		return []float64{math.Inf(1), math.Inf(1)}
	}
	for j, v := range c {
		if v < 0 {
			c[j] = 0
		}
	}
	p.evals++
	p.cache[plan] = c
	return c
}

// GAResult is the reusable output of the GA optimization path.
type GAResult struct {
	// Plans and Costs are the Pareto plan set with the model's cost
	// vectors, deduplicated.
	Plans []federation.Plan
	Costs [][]float64
	// ModelEvaluations counts distinct plan estimations performed.
	ModelEvaluations int
}

// Select applies a user policy to the precomputed Pareto set — the
// cheap per-policy step of the GA path (Figure 3, left). The policy's
// Strategy field picks between Algorithm 2's weighted sum, knee-point
// and lexicographic selection.
func (r *GAResult) Select(pol Policy) (federation.Plan, error) {
	if len(r.Plans) == 0 {
		return federation.Plan{}, moo.ErrNoPlans
	}
	normalized := moo.NormalizeCosts(r.Costs)
	idx, err := selectFromParetoSet(r.Costs, normalized, pol)
	if err != nil {
		return federation.Plan{}, err
	}
	return r.Plans[idx], nil
}

// OptimizeGA runs the NSGA-II path once for query q, returning the
// Pareto plan set for later policy selections.
func (s *Scheduler) OptimizeGA(q tpch.QueryID, cfg moo.NSGAIIConfig) (*GAResult, error) {
	h := s.History(q)
	if h.Len() == 0 {
		return nil, fmt.Errorf("%w: %v", ErrNoHistory, q)
	}
	leftTable, rightTable := q.Tables()
	leftSite, err := s.Fed.SiteOf(leftTable)
	if err != nil {
		return nil, err
	}
	rightSite, err := s.Fed.SiteOf(rightTable)
	if err != nil {
		return nil, err
	}
	prob := &planProblem{
		sched:    s,
		query:    q,
		history:  h,
		choices:  s.NodeChoices,
		maxLeft:  leftSite.MaxNodes,
		maxRight: rightSite.MaxNodes,
		cache:    make(map[federation.Plan][]float64),
	}
	res, err := moo.NSGAII(prob, cfg)
	if err != nil {
		return nil, err
	}
	if prob.err != nil {
		return nil, prob.err
	}
	out := &GAResult{ModelEvaluations: prob.evals}
	seen := make(map[federation.Plan]bool)
	for _, ind := range res.Front {
		plan := prob.decode(ind.X)
		if seen[plan] {
			continue
		}
		seen[plan] = true
		out.Plans = append(out.Plans, plan)
		out.Costs = append(out.Costs, prob.cache[plan])
	}
	return out, nil
}

// WSMResult reports one run of the Weighted Sum Model path.
type WSMResult struct {
	Plan federation.Plan
	// ModelEvaluations counts plan estimations; the WSM path pays this
	// again for every policy change.
	ModelEvaluations int
}

// OptimizeWSM runs the weighted-sum path (Figure 3, right): estimate
// every enumerated plan, scalarize with the current weights, return the
// argmin. There is no reusable artifact — a changed policy reruns this.
func (s *Scheduler) OptimizeWSM(q tpch.QueryID, pol Policy) (*WSMResult, error) {
	h := s.History(q)
	if h.Len() == 0 {
		return nil, fmt.Errorf("%w: %v", ErrNoHistory, q)
	}
	plans, err := s.Fed.EnumeratePlans(q, s.NodeChoices)
	if err != nil {
		return nil, err
	}
	if len(plans) == 0 {
		return nil, moo.ErrNoPlans
	}
	costs := make([][]float64, len(plans))
	evals := 0
	for i, p := range plans {
		x, err := s.Exec.Features(p)
		if err != nil {
			return nil, err
		}
		c, err := s.Model.Estimate(h, x)
		if err != nil {
			return nil, err
		}
		for j, v := range c {
			if v < 0 {
				c[j] = 0
			}
		}
		costs[i] = c
		evals++
	}
	weights := pol.Weights
	if len(weights) == 0 {
		weights = []float64{1, 1}
	}
	idx, err := moo.ArgminWeightedSum(moo.NormalizeCosts(costs), weights)
	if err != nil {
		return nil, err
	}
	return &WSMResult{Plan: plans[idx], ModelEvaluations: evals}, nil
}
