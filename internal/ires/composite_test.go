package ires

import (
	"testing"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/stats"
)

func TestCompositeModelValidation(t *testing.T) {
	if _, err := NewCompositeDREAMModel(core.Config{RequiredR2: 5}); err == nil {
		t.Error("invalid config accepted")
	}
	m, err := NewCompositeDREAMModel(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "dream-composite" {
		t.Errorf("Name = %q", m.Name())
	}
	// A plain 2-metric history is rejected.
	h, err := core.NewHistory(federation.FeatureDim, federation.Metrics...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Estimate(h, make([]float64, federation.FeatureDim)); err == nil {
		t.Error("2-metric history accepted by composite model")
	}
}

func TestCompositeModelReassemblesTime(t *testing.T) {
	// Build a synthetic breakdown history where the pieces are clean
	// linear functions; the composite must reproduce max+sum exactly.
	h, err := core.NewHistory(federation.FeatureDim, federation.BreakdownMetrics...)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(61)
	piece := func(x []float64) (left, right, ship, final float64) {
		left = 1 + 0.02*x[0] + 0.5*x[2]
		right = 2 + 0.1*x[1]
		ship = 0.5 + 0.001*x[0]
		final = 1 + 0.01*x[0]
		return
	}
	for i := 0; i < 60; i++ {
		x := []float64{rng.Uniform(50, 150), rng.Uniform(5, 15), float64(rng.Intn(4) + 1), float64(rng.Intn(4) + 1), float64(rng.Intn(2))}
		l, r, s, f := piece(x)
		total := l
		if r > total {
			total = r
		}
		total += s + f
		money := total * 0.001
		if err := h.Append(core.Observation{X: x, Costs: []float64{total, money, l, r, s, f}}); err != nil {
			t.Fatal(err)
		}
	}
	m, err := NewCompositeDREAMModel(core.Config{MMax: 21})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{100, 10, 2, 2, 1}
	got, err := m.Estimate(h, x)
	if err != nil {
		t.Fatal(err)
	}
	l, r, s, f := piece(x)
	want := l
	if r > want {
		want = r
	}
	want += s + f
	if diff := got[0] - want; diff > 0.3 || diff < -0.3 {
		t.Errorf("composite time = %v, want ≈%v", got[0], want)
	}
	if len(got) != 2 {
		t.Errorf("composite returns %d metrics, want 2", len(got))
	}
}
