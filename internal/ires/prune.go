package ires

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/federation"
	"repro/internal/moo"
	"repro/internal/stats"
)

// The plan-supply seam. PlanSweep no longer estimates a pre-built
// slice: it hands a PlanSource (the lazy lattice iterator) to a
// PrunePolicy, which decides which QEPs are worth scoring and pulls
// exactly those through the scheduler's bounded worker pool. FullSweep
// is the reference — every plan, in lattice order, byte-identical to
// the historic eager path. GreedyPrune and TopK trade a bounded amount
// of decision quality for an order-of-magnitude cheaper sweep in the
// paper's Example 3.1 regime (≈18,200 QEPs per query); the tolerance is
// pinned by experiments.AblationPrune and the property tests in
// prune_test.go. SNIPPETS-adjacent prior art: greedy enumeration with
// early termination routinely keeps plan quality within ~13% while
// planning orders of magnitude faster.

// PlanSource supplies plans to a sweep: a lazy, resettable,
// deterministic-order generator with a positional view (Size/At), so
// prune policies can sample the space without draining it and the
// estimation fan-out can address work by index. The canonical
// implementation is *federation.PlanIterator.
type PlanSource interface {
	// Next yields plans in a fixed order until exhausted.
	Next() (federation.Plan, bool)
	// Reset rewinds Next to the first plan.
	Reset()
	// Size is the total number of plans.
	Size() int
	// At returns the i-th plan of the fixed order without moving the
	// cursor. Must be safe for concurrent use.
	At(i int) federation.Plan
}

// LatticeSource is the optional PlanSource capability that exposes the
// plan lattice's shape. GreedyPrune walks axis neighborhoods when the
// source has one and falls back to flat-index strides otherwise.
type LatticeSource interface {
	PlanSource
	// Dims reports the axis lengths; Size() == sides×left×right.
	Dims() (sides, left, right int)
	// Index maps a lattice point to its flat position.
	Index(side, li, ri int) int
}

var _ LatticeSource = (*federation.PlanIterator)(nil)

// planSweeper is the machinery a PrunePolicy drives: the plan source,
// the round's snapshot-bound estimator, and the scheduler's bounded
// worker pool.
type planSweeper struct {
	s         *Scheduler
	src       PlanSource
	estimateX func(x []float64) ([]float64, error)
}

// estimateAt scores the plans at the given source positions, fanned out
// over the scheduler's pool; the returned cost vectors are positional
// with idx.
func (ps *planSweeper) estimateAt(ctx context.Context, idx []int) ([][]float64, error) {
	return ps.s.estimateIndexed(ctx, ps.estimateX,
		func(i int) federation.Plan { return ps.src.At(idx[i]) }, len(idx))
}

// estimateAll scores every plan in source order.
func (ps *planSweeper) estimateAll(ctx context.Context) ([][]float64, error) {
	return ps.s.estimateIndexed(ctx, ps.estimateX, ps.src.At, ps.src.Size())
}

// plansOf materializes the full source. The lattice-backed iterator
// shares its cached batch slice (callers treat it as read-only);
// generic sources are drained.
func plansOf(src PlanSource) []federation.Plan {
	if it, ok := src.(*federation.PlanIterator); ok {
		return it.Lattice().Plans()
	}
	src.Reset()
	out := make([]federation.Plan, 0, src.Size())
	for p, ok := src.Next(); ok; p, ok = src.Next() {
		out = append(out, p)
	}
	return out
}

// PrunePolicy decides which QEPs of a plan source get estimated during
// a sweep. Policies must be deterministic for a fixed (source, history
// snapshot) regardless of the scheduler's Parallelism — the PR 1
// byte-identical-decisions guarantee extends to pruned sweeps. The
// policy set is closed (the sweep hook is unexported); construct one
// with FullSweep, GreedyPrune, or TopK, or parse a wire name with
// ParsePrunePolicy.
type PrunePolicy interface {
	// Name is the policy's wire identifier ("full", "greedy", "topk"),
	// surfaced in Sweep/Decision and the serving API.
	Name() string
	// sweep selects and scores plans, returning the estimated subset
	// and its cost vectors in matching deterministic order.
	sweep(ctx context.Context, ps *planSweeper) ([]federation.Plan, [][]float64, error)
}

// ---------------------------------------------------------------------------
// FullSweep

// fullSweep estimates every plan of the source in order — the paper's
// behavior and the reference the pruned policies are measured against.
type fullSweep struct{}

// FullSweep returns the default prune policy: no pruning. Every QEP in
// the lattice is estimated, in lattice order; sweeps are byte-identical
// to the historic eager enumeration.
func FullSweep() PrunePolicy { return fullSweep{} }

// Name implements PrunePolicy.
func (fullSweep) Name() string { return "full" }

func (fullSweep) sweep(ctx context.Context, ps *planSweeper) ([]federation.Plan, [][]float64, error) {
	costs, err := ps.estimateAll(ctx)
	if err != nil {
		return nil, nil, err
	}
	return plansOf(ps.src), costs, nil
}

// ---------------------------------------------------------------------------
// GreedyPrune

// greedyPrune is the cost-ordered lattice walk: estimate a coarse
// scaffold of the lattice, then refine around the running Pareto front
// in best-first order, stopping early once a whole chunk of candidates
// fails to improve the front (a dominated prefix) or the budget is
// spent.
type greedyPrune struct {
	budget int
}

// GreedyPrune returns the cost-ordered pruning policy. budget caps the
// number of plans estimated per sweep; 0 picks max(256, latticeSize/16),
// a ≥10× reduction in the paper's 18,200-plan regime. Lattices no
// larger than the budget are swept in full, so small federations see
// the exact reference behavior.
//
// Why greedy holds up here: DREAM's cost model is affine in the
// per-site node counts for each join placement, so the model's Pareto
// front hugs the lattice boundary; a strided scaffold plus axis-aligned
// refinement around scaffold front members recovers it without touching
// the interior. The ablation (experiments.AblationPrune) and the
// property test in prune_test.go pin the selected decision within 15%
// of the full sweep's choice.
func GreedyPrune(budget int) PrunePolicy { return greedyPrune{budget: budget} }

// Name implements PrunePolicy.
func (greedyPrune) Name() string { return "greedy" }

// greedyChunk is the refinement batch size. It is a fixed constant —
// never derived from the worker count — so the estimated set (and with
// it the sweep) is byte-identical at any Parallelism.
const greedyChunk = 64

func (g greedyPrune) sweep(ctx context.Context, ps *planSweeper) ([]federation.Plan, [][]float64, error) {
	n := ps.src.Size()
	budget := g.budget
	if budget <= 0 {
		budget = n / 16
		if budget < 256 {
			budget = 256
		}
	}
	if budget >= n {
		return fullSweep{}.sweep(ctx, ps)
	}

	scaffold, strides := greedyScaffold(ps.src, budget/2)
	costs, err := ps.estimateAt(ctx, scaffold)
	if err != nil {
		return nil, nil, err
	}
	sel := append([]int(nil), scaffold...)
	seen := make(map[int]bool, budget)
	for _, i := range scaffold {
		seen[i] = true
	}

	// Running Pareto front over the estimated set, as positions into
	// sel/costs. Only used to order refinement and detect dominated
	// prefixes; the sweep's real front is recomputed globally by the
	// caller.
	var front []int
	insert := func(pos int) (bool, error) {
		kept := front[:0]
		for _, f := range front {
			dom, err := moo.Dominates(costs[f], costs[pos])
			if err != nil {
				return false, err
			}
			if dom {
				return false, nil
			}
			dominated, err := moo.Dominates(costs[pos], costs[f])
			if err != nil {
				return false, err
			}
			if !dominated {
				kept = append(kept, f)
			}
		}
		front = append(kept, pos)
		return true, nil
	}
	for pos := range sel {
		if _, err := insert(pos); err != nil {
			return nil, nil, err
		}
	}

	queue := greedyCandidates(ps.src, sel, costs, front, strides, seen)
	remaining := budget - len(sel)
	if remaining < 0 {
		remaining = 0
	}
	if len(queue) > remaining {
		queue = queue[:remaining]
	}
	for len(queue) > 0 {
		chunk := queue
		if len(chunk) > greedyChunk {
			chunk = chunk[:greedyChunk]
		}
		queue = queue[len(chunk):]
		chunkCosts, err := ps.estimateAt(ctx, chunk)
		if err != nil {
			return nil, nil, err
		}
		improved := false
		for i, flat := range chunk {
			sel = append(sel, flat)
			costs = append(costs, chunkCosts[i])
			ok, err := insert(len(sel) - 1)
			if err != nil {
				return nil, nil, err
			}
			improved = improved || ok
		}
		if !improved {
			// Dominated prefix: the best-first queue has stopped paying;
			// everything behind it is ordered worse still.
			break
		}
	}

	plans := make([]federation.Plan, len(sel))
	for i, flat := range sel {
		plans[i] = ps.src.At(flat)
	}
	return plans, costs, nil
}

// greedyScaffold picks the coarse sample of the source: an even grid
// over the lattice axes (endpoints always included) when the source
// exposes its shape, a flat-index stride otherwise. It returns the
// flat positions in deterministic order plus the per-axis strides the
// refinement phase walks.
func greedyScaffold(src PlanSource, target int) (scaffold []int, strides [2]int) {
	if target < 4 {
		target = 4
	}
	if lat, ok := src.(LatticeSource); ok {
		sides, left, right := lat.Dims()
		k := int(math.Sqrt(float64(target / sides)))
		if k < 2 {
			k = 2
		}
		li := axisSamples(left, k)
		ri := axisSamples(right, k)
		for s := 0; s < sides; s++ {
			for _, l := range li {
				for _, r := range ri {
					scaffold = append(scaffold, lat.Index(s, l, r))
				}
			}
		}
		strides[0] = axisStride(left, k)
		strides[1] = axisStride(right, k)
		return scaffold, strides
	}
	n := src.Size()
	stride := (n + target - 1) / target
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < n; i += stride {
		scaffold = append(scaffold, i)
	}
	if last := scaffold[len(scaffold)-1]; last != n-1 {
		scaffold = append(scaffold, n-1)
	}
	strides[0] = stride
	return scaffold, strides
}

// axisStride is the sampling stride that covers an axis of length n
// with about k points.
func axisStride(n, k int) int {
	stride := (n + k - 1) / k
	if stride < 1 {
		return 1
	}
	return stride
}

// axisSamples returns the sampled indices of one axis: every stride-th
// point plus the far endpoint (the model's extrapolation anchor).
func axisSamples(n, k int) []int {
	stride := axisStride(n, k)
	out := make([]int, 0, n/stride+2)
	for i := 0; i < n; i += stride {
		out = append(out, i)
	}
	if out[len(out)-1] != n-1 {
		out = append(out, n-1)
	}
	return out
}

// greedyCandidates builds the refinement queue: the unseen neighbors of
// the scaffold's Pareto-front members, parents visited best-first
// (weighted-normalized scaffold cost, flat index breaking ties) and
// each parent's neighborhood emitted in a fixed axis/distance order —
// the "cost-ordered lattice walk".
func greedyCandidates(src PlanSource, sel []int, costs [][]float64, front []int, strides [2]int, seen map[int]bool) []int {
	if len(front) == 0 {
		return nil
	}
	// Min-max normalize over the scaffold so seconds and dollars weigh
	// equally in the parent ordering.
	dim := len(costs[0])
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	copy(lo, costs[0])
	copy(hi, costs[0])
	for _, c := range costs {
		for j, v := range c {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	weight := func(c []float64) float64 {
		w := 0.0
		for j, v := range c {
			if hi[j] > lo[j] {
				w += (v - lo[j]) / (hi[j] - lo[j])
			}
		}
		return w
	}
	parents := append([]int(nil), front...)
	sort.Slice(parents, func(a, b int) bool {
		wa, wb := weight(costs[parents[a]]), weight(costs[parents[b]])
		if wa != wb {
			return wa < wb
		}
		return sel[parents[a]] < sel[parents[b]]
	})

	var queue []int
	push := func(flat int) {
		if flat < 0 || flat >= src.Size() || seen[flat] {
			return
		}
		seen[flat] = true
		queue = append(queue, flat)
	}
	lat, isLattice := src.(LatticeSource)
	for _, p := range parents {
		flat := sel[p]
		if !isLattice {
			for d := 1; d < strides[0]; d++ {
				push(flat - d)
				push(flat + d)
			}
			continue
		}
		sides, left, right := lat.Dims()
		_ = sides
		block := left * right
		side, rem := flat/block, flat%block
		li, ri := rem/right, rem%right
		for d := 1; d < strides[0]; d++ {
			if li-d >= 0 {
				push(lat.Index(side, li-d, ri))
			}
			if li+d < left {
				push(lat.Index(side, li+d, ri))
			}
		}
		for d := 1; d < strides[1]; d++ {
			if ri-d >= 0 {
				push(lat.Index(side, li, ri-d))
			}
			if ri+d < right {
				push(lat.Index(side, li, ri+d))
			}
		}
	}
	return queue
}

// ---------------------------------------------------------------------------
// TopK

// topKPrune estimates a deterministic uniform sample of the lattice —
// the cheap, model-agnostic baseline between FullSweep and GreedyPrune.
type topKPrune struct {
	k    int
	seed int64
}

// TopK returns the sampling policy: k plans drawn uniformly (without
// replacement) from the lattice by a deterministic seed-derived
// permutation, then estimated in lattice order. k ≤ 0 picks
// max(256, latticeSize/10); lattices no larger than k are swept in
// full. Unlike GreedyPrune it ignores the cost structure entirely,
// which makes it the honest "how much did the walk actually buy"
// control in ablations.
func TopK(k int, seed int64) PrunePolicy { return topKPrune{k: k, seed: seed} }

// Name implements PrunePolicy.
func (topKPrune) Name() string { return "topk" }

func (t topKPrune) sweep(ctx context.Context, ps *planSweeper) ([]federation.Plan, [][]float64, error) {
	n := ps.src.Size()
	k := t.k
	if k <= 0 {
		k = n / 10
		if k < 256 {
			k = 256
		}
	}
	if k >= n {
		return fullSweep{}.sweep(ctx, ps)
	}
	// Partial Fisher-Yates: the first k entries of a seed-determined
	// permutation, independent of Parallelism by construction.
	rng := stats.NewRNG(t.seed ^ int64(n)<<17 ^ 0x746f706b) // "topk"
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	idx := perm[:k]
	sort.Ints(idx)
	costs, err := ps.estimateAt(ctx, idx)
	if err != nil {
		return nil, nil, err
	}
	plans := make([]federation.Plan, len(idx))
	for i, flat := range idx {
		plans[i] = ps.src.At(flat)
	}
	return plans, costs, nil
}

// ---------------------------------------------------------------------------
// Parsing

// ParsePrunePolicy resolves a wire/flag policy name: "full" (or empty),
// "greedy", or "topk". budget feeds the named policy's plan cap
// (GreedyPrune's budget, TopK's k; 0 = policy default) and is rejected
// when negative or set for "full".
func ParsePrunePolicy(name string, budget int) (PrunePolicy, error) {
	if budget < 0 {
		return nil, fmt.Errorf("ires: negative prune budget %d", budget)
	}
	switch strings.ToLower(name) {
	case "", "full":
		if budget != 0 {
			return nil, fmt.Errorf("ires: prune budget %d is meaningless for the full sweep", budget)
		}
		return FullSweep(), nil
	case "greedy":
		return GreedyPrune(budget), nil
	case "topk":
		return TopK(budget, 0), nil
	default:
		return nil, fmt.Errorf("ires: unknown prune policy %q (full, greedy, topk)", name)
	}
}
